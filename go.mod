module pleroma

go 1.22
