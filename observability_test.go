package pleroma

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"pleroma/internal/obs"
)

// obsFixture builds an instrumented testbed system with one publisher and
// one subscriber and runs a few publications through it.
func obsFixture(t *testing.T, opts ...Option) (*System, *Publisher) {
	t.Helper()
	sch, err := NewSchema(Attribute{Name: "v", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch, append([]Option{WithObservability(0)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe("s", hosts[7], NewFilter(), func(Delivery) {}); err != nil {
		t.Fatal(err)
	}
	return sys, pub
}

func TestSystemMetricsSnapshot(t *testing.T) {
	sys, pub := obsFixture(t)
	for i := 0; i < 3; i++ {
		if err := pub.Publish(uint32(100 * i)); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run()

	snap := sys.Metrics()
	if got := snap.Total(obs.MRequests); got != 2 { // advertise + subscribe
		t.Errorf("requests total = %v, want 2", got)
	}
	if got, ok := snap.Counter(obs.MRequests, "advertise"); !ok || got != 1 {
		t.Errorf("advertise requests = %v (ok=%v), want 1", got, ok)
	}
	if got := snap.Total(obs.MDeliveries); got != 3 {
		t.Errorf("deliveries = %v, want 3", got)
	}
	if got := snap.Total(obs.MFlowMods); got == 0 {
		t.Error("no FlowMods counted")
	}
	if got := snap.Total(obs.MReconfigCases); got == 0 {
		t.Error("no Algorithm-1 cases counted")
	}
	if got := snap.Total(obs.MLinkPackets); got == 0 {
		t.Error("no link packets counted")
	}
	// Occupancy gauges must agree with the data plane's ground truth.
	var occ float64
	for _, f := range snap.Families {
		if f.Name == obs.MFlowTableOccupancy {
			for _, smp := range f.Samples {
				occ += smp.Value
			}
		}
	}
	if occ == 0 {
		t.Error("flow-table occupancy all zero with installed flows")
	}

	// The facade Stats view and the registry must agree.
	st := sys.Stats()
	if got := snap.Total(obs.MDeliveries); got != float64(st.Deliveries) {
		t.Errorf("registry deliveries %v != Stats %d", got, st.Deliveries)
	}
}

func TestSystemMetricsDisabled(t *testing.T) {
	sch, err := NewSchema(Attribute{Name: "v", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch)
	if err != nil {
		t.Fatal(err)
	}
	if snap := sys.Metrics(); len(snap.Families) != 0 {
		t.Errorf("disabled system exported %d families", len(snap.Families))
	}
	if tr := sys.Traces(); tr != nil {
		t.Errorf("disabled system recorded traces: %v", tr)
	}
	// The handler still answers health probes.
	srv, err := sys.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", resp.StatusCode)
	}
}

func TestSystemTraces(t *testing.T) {
	sys, pub := obsFixture(t)
	if err := pub.Publish(1); err != nil {
		t.Fatal(err)
	}
	sys.Run()

	spans := sys.Traces()
	if len(spans) < 2 {
		t.Fatalf("want >=2 spans (advertise, subscribe), got %d", len(spans))
	}
	ops := make(map[string]bool)
	for _, sp := range spans {
		ops[sp.Op] = true
	}
	if !ops["advertise"] || !ops["subscribe"] {
		t.Errorf("span ops = %v, want advertise and subscribe", ops)
	}
}

func TestObservabilityEndpoint(t *testing.T) {
	sys, pub := obsFixture(t)
	if err := pub.Publish(1); err != nil {
		t.Fatal(err)
	}
	sys.Run()

	srv, err := sys.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		obs.MRequests, obs.MFlowMods, obs.MReconfigCases,
		obs.MFlowTableOccupancy, obs.MReconfigDuration + "_bucket",
		obs.MDeliveries, obs.MLinkPackets,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", code)
	}
	code, body = get("/traces")
	if code != http.StatusOK || !strings.Contains(body, "op=advertise") {
		t.Errorf("/traces = %d, body %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", code)
	}
}

// TestHealthzDegradesOnQuarantine drives a switch into quarantine via
// injected southbound faults and watches /healthz flip to 503 and back.
func TestHealthzDegradesOnQuarantine(t *testing.T) {
	sch, err := NewSchema(Attribute{Name: "v", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch,
		WithObservability(0),
		WithSouthboundFaults(FaultConfig{FailCalls: []uint64{1, 2, 3, 4, 5, 6, 7, 8}, DownCalls: 0}),
	)
	if err != nil {
		t.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe("s", hosts[7], NewFilter(), nil); err != nil {
		t.Fatal(err)
	}
	_ = pub.Advertise(NewFilter()) // scripted faults quarantine switches

	if len(sys.Degraded()) == 0 {
		t.Fatal("scripted faults did not quarantine any switch")
	}
	srv, err := sys.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with quarantined switches = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "degraded switches") {
		t.Errorf("/healthz body %q", body)
	}

	snap := sys.Metrics()
	if got := snap.Total(obs.MQuarantines); got == 0 {
		t.Error("quarantine counter is zero")
	}
	if got := snap.Total(obs.MInjectedFaults); got == 0 {
		t.Error("injected-fault counter is zero")
	}

	// Heal and resync; health recovers.
	sys.HealFaults()
	if _, ok := sys.ResyncUntilHealthy(5); !ok {
		t.Fatal("resync did not converge")
	}
	resp, err = http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after resync = %d, want 200", resp.StatusCode)
	}
	if got := sys.Metrics().Total(obs.MResyncs); got == 0 {
		t.Error("resync counter is zero after resync")
	}
}

// TestInterdomainObservability checks the fabric counters reach the
// registry in a partitioned deployment.
func TestInterdomainObservability(t *testing.T) {
	sch, err := NewSchema(Attribute{Name: "v", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch, WithObservability(0), WithTopology(TopologyRing20), WithPartitions(4))
	if err != nil {
		t.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe("s", hosts[len(hosts)-1], NewFilter(), nil); err != nil {
		t.Fatal(err)
	}
	snap := sys.Metrics()
	got := snap.Total(obs.MInterdomainMessages)
	if got == 0 {
		t.Fatal("no interdomain messages counted")
	}
	if want := sys.fab.Stats().MessagesSent; got != float64(want) {
		t.Errorf("registry interdomain messages %v != fabric stats %d", got, want)
	}
}
