package pleroma

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"pleroma/internal/space"
	"pleroma/internal/wire"
)

// netWorkload is a deterministic pub/sub workload applied identically
// through the in-process facade and through TCP clients.
type netWorkload struct {
	subs []struct {
		id   string
		host int
		f    Filter
	}
	pubs []struct {
		id   string
		host int
		f    Filter
	}
	events []struct {
		pub  string
		vals []uint32
	}
}

func makeNetWorkload(seed int64, hosts int) netWorkload {
	rng := rand.New(rand.NewSource(seed))
	var w netWorkload
	for i := 0; i < 8; i++ {
		lo := uint32(rng.Intn(512))
		hi := lo + uint32(rng.Intn(512))
		w.subs = append(w.subs, struct {
			id   string
			host int
			f    Filter
		}{fmt.Sprintf("sub-%d", i), rng.Intn(hosts), NewFilter().Range("price", lo, hi)})
	}
	for i := 0; i < 2; i++ {
		w.pubs = append(w.pubs, struct {
			id   string
			host int
			f    Filter
		}{fmt.Sprintf("pub-%d", i), rng.Intn(hosts), NewFilter()})
	}
	for i := 0; i < 40; i++ {
		w.events = append(w.events, struct {
			pub  string
			vals []uint32
		}{w.pubs[rng.Intn(len(w.pubs))].id, []uint32{uint32(rng.Intn(1024)), uint32(rng.Intn(1024))}})
	}
	return w
}

func netTestSchema(t *testing.T) *Schema {
	t.Helper()
	sch, err := NewSchema(Attribute{Name: "price", Bits: 10}, Attribute{Name: "volume", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// deliveryKey renders a delivery for multiset comparison.
func deliveryKey(d Delivery) string {
	return fmt.Sprintf("%s|%v|%v|%v|%t", d.SubscriptionID, d.Event.Values, d.At, d.Latency, d.FalsePositive)
}

// TestLoopbackEquivalence is the golden test of the networked mode: the
// same seeded workload driven (a) through the in-process facade and (b)
// through TCP clients against a daemonized system on 127.0.0.1 must
// yield identical delivery multisets and identical control-plane
// digests. The transport boundary adds no semantics.
func TestLoopbackEquivalence(t *testing.T) {
	runLoopbackEquivalence(t, nil, nil, false)
}

// TestLoopbackEquivalencePipelined re-runs the golden equivalence with the
// publishes driven through the pipelined async path (coalesced multi-event
// frames, windowed acks) and a tiny publish window to force backpressure.
// The pipeline must be purely a transport optimization — identical
// delivery multisets, identical digests.
func TestLoopbackEquivalencePipelined(t *testing.T) {
	runLoopbackEquivalence(t, nil,
		[]DialOption{WithDialTransport(TransportOptions{Window: 2, BatchEvents: 8})},
		true)
}

// TestLoopbackEquivalenceTraced re-runs the golden equivalence with the
// full tracing stack on: observability on both systems, a traced client
// minting a distributed trace per publish. Tracing must be purely
// observational — identical deliveries, identical digests.
func TestLoopbackEquivalenceTraced(t *testing.T) {
	runLoopbackEquivalence(t,
		[]Option{WithObservability(4096)},
		[]DialOption{WithDialObservability(4096)},
		false)
}

func runLoopbackEquivalence(t *testing.T, extraSys []Option, extraDial []DialOption, pipelined bool) {
	opts := append([]Option{WithTopology(TopologyRing20), WithPartitions(4)}, extraSys...)
	w := makeNetWorkload(7, 20)

	// (a) in-process.
	inSys, err := NewSystem(netTestSchema(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer inSys.Close()
	hosts := inSys.Hosts()
	var inDeliveries []string
	for _, s := range w.subs {
		s := s
		if err := inSys.Subscribe(s.id, hosts[s.host], s.f, func(d Delivery) {
			inDeliveries = append(inDeliveries, deliveryKey(d))
		}); err != nil {
			t.Fatal(err)
		}
	}
	pubs := map[string]*Publisher{}
	for _, p := range w.pubs {
		pub, err := inSys.NewPublisher(p.id, hosts[p.host])
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Advertise(p.f); err != nil {
			t.Fatal(err)
		}
		pubs[p.id] = pub
	}
	for _, ev := range w.events {
		if err := pubs[ev.pub].Publish(ev.vals...); err != nil {
			t.Fatal(err)
		}
	}
	inSys.Run()
	inDigest, err := inSys.StateDigest()
	if err != nil {
		t.Fatal(err)
	}

	// (b) daemonized on 127.0.0.1, driven by two separate client
	// processes' worth of connections (one for subs, one for pubs).
	netSys, err := NewSystem(netTestSchema(t), append(opts, WithListener("127.0.0.1:0"))...)
	if err != nil {
		t.Fatal(err)
	}
	defer netSys.Close()
	subCli, err := Dial(netSys.ListenAddr(), append([]DialOption{WithDialID("equiv-sub")}, extraDial...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer subCli.Close()
	pubCli, err := Dial(netSys.ListenAddr(), append([]DialOption{WithDialID("equiv-pub")}, extraDial...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer pubCli.Close()
	rHosts := subCli.Hosts()
	if len(rHosts) != len(hosts) {
		t.Fatalf("daemon reports %d hosts, in-process %d", len(rHosts), len(hosts))
	}
	var mu sync.Mutex
	var netDeliveries []string
	for _, s := range w.subs {
		if err := subCli.Subscribe(s.id, rHosts[s.host], s.f, func(d Delivery) {
			mu.Lock()
			netDeliveries = append(netDeliveries, deliveryKey(d))
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range w.pubs {
		if err := pubCli.Advertise(p.id, rHosts[p.host], p.f); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range w.events {
		if pipelined {
			err = pubCli.PublishAsync(ev.pub, ev.vals...)
		} else {
			err = pubCli.Publish(ev.pub, ev.vals...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if pipelined {
		// The ack barrier: every coalesced publish is applied at the daemon
		// before Run admits the simulated work.
		if err := pubCli.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pubCli.Run(); err != nil {
		t.Fatal(err)
	}
	// Receive barrier: all deliveries queued for the sub connection during
	// Run have been dispatched once Sync returns.
	if err := subCli.Sync(); err != nil {
		t.Fatal(err)
	}
	netDigest, err := subCli.StateDigest()
	if err != nil {
		t.Fatal(err)
	}

	if len(inDeliveries) == 0 {
		t.Fatal("workload produced no deliveries; equivalence vacuous")
	}
	sort.Strings(inDeliveries)
	mu.Lock()
	sort.Strings(netDeliveries)
	mu.Unlock()
	if len(inDeliveries) != len(netDeliveries) {
		t.Fatalf("delivery counts differ: in-process %d, networked %d", len(inDeliveries), len(netDeliveries))
	}
	for i := range inDeliveries {
		if inDeliveries[i] != netDeliveries[i] {
			t.Fatalf("delivery %d differs:\n  in-process: %s\n  networked:  %s", i, inDeliveries[i], netDeliveries[i])
		}
	}
	if !bytes.Equal(inDigest, netDigest) {
		t.Fatalf("control-plane digests differ:\n  in-process: %x\n  networked:  %x", inDigest, netDigest)
	}
}

// TestNetworkKillAndReconnect severs every client connection of a live
// daemon. The client must transparently redial, replay its
// advertisements and subscriptions (idempotent rebinds — control state
// untouched), and keep receiving deliveries; a resync afterwards finds
// nothing to repair.
func TestNetworkKillAndReconnect(t *testing.T) {
	sys, err := NewSystem(netTestSchema(t),
		WithTopology(TopologyRing20), WithPartitions(4), WithJournal(),
		WithListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	c, err := Dial(sys.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hosts := c.Hosts()
	var mu sync.Mutex
	var got []string
	if err := c.Subscribe("s", hosts[6], NewFilter().Range("price", 0, 511), func(d Delivery) {
		mu.Lock()
		got = append(got, deliveryKey(d))
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advertise("p", hosts[0], NewFilter()); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("p", 100, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	digestBefore, err := c.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	before := len(got)
	mu.Unlock()
	if before != 1 {
		t.Fatalf("baseline deliveries: %d, want 1", before)
	}

	// Sever every connection — a daemon-side crash of the client links.
	sys.server.DropConnections()

	// The next operation redials and replays the registrations. A second
	// identical advertise/subscribe must not duplicate control state.
	if err := c.Publish("p", 50, 60); err != nil {
		t.Fatalf("publish after kill: %v", err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	after := len(got)
	seen := map[string]int{}
	for _, k := range got {
		seen[k]++
	}
	mu.Unlock()
	if after != 2 {
		t.Fatalf("deliveries after reconnect: %d, want 2 (no loss, no duplication)", after)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("delivery %q received %d times", k, n)
		}
	}

	digestAfter, err := c.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(digestBefore, digestAfter) {
		t.Fatalf("control-plane digest changed across reconnect replay:\n  before: %x\n  after:  %x", digestBefore, digestAfter)
	}
	rr, err := sys.Resync()
	if err != nil {
		t.Fatal(err)
	}
	if repairs := rr.FlowAdds + rr.FlowDeletes + rr.FlowModifies; repairs != 0 {
		t.Fatalf("resync repaired %d flows after reconnect; switch state should be untouched", repairs)
	}
}

// TestPipelinedReconnectMidWindow severs every connection twice while a
// window of async publishes is in flight. The pipeline must redial on its
// own, replay the unacked window in order, and the daemon's per-publisher
// sequence dedup must absorb the replays: after Flush+Run+Sync the
// delivery multiset holds every published event exactly once.
func TestPipelinedReconnectMidWindow(t *testing.T) {
	sys, err := NewSystem(netTestSchema(t),
		WithTopology(TopologyRing20), WithListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	c, err := Dial(sys.ListenAddr(),
		WithDialRetry(RetryPolicy{
			MaxAttempts: 20, BaseBackoff: time.Millisecond,
			MaxBackoff: 10 * time.Millisecond, OpDeadline: 5 * time.Second,
		}),
		WithDialTransport(TransportOptions{Window: 4, BatchEvents: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hosts := c.Hosts()
	var mu sync.Mutex
	seen := map[uint32]int{}
	if err := c.Subscribe("s", hosts[6], NewFilter(), func(d Delivery) {
		mu.Lock()
		seen[d.Event.Values[0]]++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advertise("p", hosts[0], NewFilter()); err != nil {
		t.Fatal(err)
	}

	const total = 60
	for i := 0; i < total; i++ {
		if err := c.PublishAsync("p", uint32(i), uint32(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if i == 15 || i == 40 {
			// Kill the link with a partially-acked window in flight.
			sys.server.DropConnections()
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	for i := uint32(0); i < total; i++ {
		switch seen[i] {
		case 1:
		case 0:
			t.Errorf("event %d lost across reconnect", i)
		default:
			t.Errorf("event %d delivered %d times", i, seen[i])
		}
	}
	if len(seen) != total {
		t.Fatalf("distinct events delivered: %d, want %d", len(seen), total)
	}
}

// TestNetworkGracefulDrain stops the listener of a system with queued
// deliveries: every delivery already accepted must reach the client
// (flush-then-goodbye), and subsequent requests must fail cleanly.
func TestNetworkGracefulDrain(t *testing.T) {
	sys, err := NewSystem(netTestSchema(t), WithListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// A tight retry policy so the post-shutdown failure is quick.
	c, err := Dial(sys.ListenAddr(), WithDialRetry(RetryPolicy{
		MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		OpDeadline: time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hosts := c.Hosts()
	var mu sync.Mutex
	count := 0
	if err := c.Subscribe("s", hosts[1], NewFilter(), func(Delivery) {
		mu.Lock()
		count++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advertise("p", hosts[0], NewFilter()); err != nil {
		t.Fatal(err)
	}
	const burst = 25
	tuples := make([][]uint32, burst)
	for i := range tuples {
		tuples[i] = []uint32{uint32(i), uint32(i)}
	}
	if err := c.PublishBatch("p", tuples...); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}

	// Deliveries ride the connection FIFO ahead of the Run response, so
	// they have all been dispatched already; the drain must not lose that
	// invariant while shutting down.
	sys.StopListener()
	mu.Lock()
	n := count
	mu.Unlock()
	if n != burst {
		t.Fatalf("deliveries after drain: %d, want %d", n, burst)
	}
	if err := c.Sync(); err == nil {
		t.Fatal("request after StopListener succeeded; want failure")
	}
}

// TestPublishDedupOnRetry: the transport retries publishes at-least-once
// (a connection lost between the backend applying a publish and the OK
// arriving makes the client re-send it). The backend's per-publisher
// sequence numbers must make the retry idempotent.
func TestPublishDedupOnRetry(t *testing.T) {
	sys, err := NewSystem(netTestSchema(t), WithTopology(TopologyRing20))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	b := &netBackend{sys: sys, advs: make(map[string]netReg), subs: make(map[string]netReg)}
	hosts := sys.Hosts()
	if err := b.Control(wire.ControlReq{Op: "advertise", ID: "p", Host: uint32(hosts[0])}, nil); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	err = b.Control(wire.ControlReq{Op: "subscribe", ID: "s", Host: uint32(hosts[5]),
		Ranges: []wire.Range{{Attr: "price", Lo: 0, Hi: 1023}}},
		func(wire.Delivery) { mu.Lock(); count++; mu.Unlock() })
	if err != nil {
		t.Fatal(err)
	}

	pub := wire.PublishReq{ID: "p", Seq: 1, Events: []space.Event{{Values: []uint32{5, 6}}}}
	if err := b.Publish(pub); err != nil {
		t.Fatal(err)
	}
	// The retry re-sends the identical request: acknowledged, not applied.
	if err := b.Publish(pub); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := count
	mu.Unlock()
	if n != 1 {
		t.Fatalf("deliveries after duplicate publish: %d, want 1", n)
	}

	// The next sequence number applies normally.
	if err := b.Publish(wire.PublishReq{ID: "p", Seq: 2, Events: []space.Event{{Values: []uint32{7, 8}}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n = count
	mu.Unlock()
	if n != 2 {
		t.Fatalf("deliveries after fresh publish: %d, want 2", n)
	}
}

// TestPersistSnapshotDurableOrdering: the journal may be compacted only
// after the snapshot covering it is durable on disk — a persist that
// cannot reach stable storage must leave every journal record in place.
func TestPersistSnapshotDurableOrdering(t *testing.T) {
	dir := t.TempDir()
	sys, err := NewSystem(netTestSchema(t), WithTopology(TopologyRing20), WithPartitions(1), WithJournalDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	hosts := sys.Hosts()
	for i := 0; i < 5; i++ {
		if err := sys.Subscribe(fmt.Sprintf("s%d", i), hosts[i],
			NewFilter().Range("price", uint32(i*10), uint32(i*10+9)), nil); err != nil {
			t.Fatal(err)
		}
	}
	p := sys.Partitions()[0]
	jpath := JournalPath(dir, p)
	before, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() == 0 {
		t.Fatal("journal empty before snapshot")
	}

	if err := sys.PersistSnapshot(p, filepath.Join(dir, "missing")); err == nil {
		t.Fatal("persist into a missing directory succeeded")
	}
	after, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("failed persist changed the journal: %d -> %d bytes", before.Size(), after.Size())
	}

	if err := sys.PersistSnapshot(p, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(SnapshotPath(dir, p)); err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}
	compacted, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= before.Size() {
		t.Fatalf("journal not compacted after durable snapshot: %d -> %d bytes", before.Size(), compacted.Size())
	}
}

// TestSystemRestartWithState closes a file-journaled system and rebuilds
// an identical control plane in a fresh process-equivalent: Recover
// replays snapshot + journal suffix per partition and reinstalls the
// same flow tables.
func TestSystemRestartWithState(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithTopology(TopologyRing20), WithPartitions(2), WithJournalDir(dir)}

	sys1, err := NewSystem(netTestSchema(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	hosts := sys1.Hosts()
	pub, err := sys1.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := sys1.Subscribe(fmt.Sprintf("s%d", i), hosts[(i*3)%len(hosts)],
			NewFilter().Range("price", uint32(i*100), uint32(i*100+99)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot mid-stream so recovery exercises snapshot + journal suffix.
	snaps := map[int][]byte{}
	for _, p := range sys1.Partitions() {
		snap, err := sys1.Snapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		snaps[p] = snap
	}
	for i := 6; i < 10; i++ {
		if err := sys1.Subscribe(fmt.Sprintf("s%d", i), hosts[(i*3)%len(hosts)],
			NewFilter().Range("volume", uint32(i*50), uint32(i*50+49)), nil); err != nil {
			t.Fatal(err)
		}
	}
	want := flowDump(t, sys1)
	sys1.Close()

	// "Process restart": a fresh system over the same journal directory.
	sys2, err := NewSystem(netTestSchema(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	replayed := 0
	for _, p := range sys2.Partitions() {
		rep, err := sys2.Recover(p, snaps[p])
		if err != nil {
			t.Fatalf("recover partition %d: %v", p, err)
		}
		if !rep.FromSnapshot {
			t.Errorf("partition %d recovered without the snapshot", p)
		}
		replayed += rep.Replayed
	}
	if replayed == 0 {
		t.Error("no journal suffix replayed; post-snapshot ops lost")
	}
	if got := flowDump(t, sys2); got != want {
		t.Errorf("recovered flow tables differ from pre-restart tables:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if err := sys2.VerifyTables(); err != nil {
		t.Errorf("recovered tables out of sync with controllers: %v", err)
	}

	// The recovered system keeps working end to end.
	count := 0
	if err := sys2.Subscribe("fresh", hosts[4], NewFilter(), func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	pub2, err := sys2.NewPublisher("p2", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub2.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	if err := pub2.Publish(1, 2); err != nil {
		t.Fatal(err)
	}
	sys2.Run()
	if count != 1 {
		t.Fatalf("post-recovery deliveries: %d, want 1", count)
	}
}

// flowDump renders every switch's flow table canonically (sorted, IDs
// ignored — installation order may differ across a recovery).
func flowDump(t *testing.T, s *System) string {
	t.Helper()
	var out []string
	for _, sw := range s.g.Switches() {
		flows, err := s.dp.Flows(sw)
		if err != nil {
			t.Fatal(err)
		}
		lines := make([]string, len(flows))
		for i, f := range flows {
			lines[i] = fmt.Sprintf("sw%d expr=%s prio=%d actions=%v", sw, f.Expr, f.Priority, f.Actions)
		}
		sort.Strings(lines)
		out = append(out, lines...)
	}
	return fmt.Sprintf("%d flows\n", len(out)) + fmt.Sprint(out)
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("price:0-511,volume:10-20")
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Ranges["price"]; r != [2]uint32{0, 511} {
		t.Errorf("price range %v", r)
	}
	if r := f.Ranges["volume"]; r != [2]uint32{10, 20} {
		t.Errorf("volume range %v", r)
	}
	if f, err := ParseFilter(""); err != nil || len(f.Ranges) != 0 {
		t.Errorf("empty filter: %v %v", f, err)
	}
	for _, bad := range []string{"price", "price:1", "price:a-2", "price:1-b"} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) accepted", bad)
		}
	}
}

// TestJournalDirLayout pins the on-disk naming convention the daemon
// relies on.
func TestJournalDirLayout(t *testing.T) {
	dir := t.TempDir()
	sys, err := NewSystem(netTestSchema(t), WithTopology(TopologyRing20), WithPartitions(2), WithJournalDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, p := range sys.Partitions() {
		if _, err := os.Stat(JournalPath(dir, p)); err != nil {
			t.Errorf("partition %d journal missing: %v", p, err)
		}
	}
}
