package pleroma

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// soakDelivery records one delivery for ground-truth comparison.
type soakDelivery struct {
	sub   string
	event [2]uint32
}

// TestSoakChurnExactDelivery drives a randomized workload with full client
// churn — advertisements and subscriptions appearing and disappearing —
// through the public API and checks every publish round against ground
// truth: a live subscription receives exactly the events that match its
// filter and fall inside a live advertisement, exactly once, with no
// false positives (decomposition runs at full precision).
func TestSoakChurnExactDelivery(t *testing.T) {
	topologies := []struct {
		name string
		opts []Option
	}{
		{"testbed", nil},
		{"ring20-4part", []Option{WithTopology(TopologyRing20), WithPartitions(4)}},
	}
	for _, tc := range topologies {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			soakRun(t, tc.opts, 12345+int64(len(tc.name)))
		})
	}
}

func soakRun(t *testing.T, opts []Option, seed int64) {
	t.Helper()
	soakDrive(t, opts, seed, nil)
}

// soakDrive runs the churn/publish soak and returns the per-round delivery
// logs (each sorted) so two runs with the same seed can be compared as
// multisets. The workload consumes the seeded generator in a fixed order —
// map iterations are sorted before any r.Intn draw — so runs differing only
// in fault injection produce identical churn and event sequences.
// beforePublish, when non-nil, runs between the round's churn and its
// publish batch (e.g. an anti-entropy pass under fault injection).
func soakDrive(t *testing.T, opts []Option, seed int64, beforePublish func(sys *System, round int)) [][]soakDelivery {
	t.Helper()
	sch, err := NewSchema(
		Attribute{Name: "x", Bits: 10},
		Attribute{Name: "y", Bits: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Full precision: 20-bit dz over two attributes, generous subspace
	// budget — the decomposition is exact, so no false positives may occur.
	opts = append([]Option{WithMaxDzLen(20), WithMaxSubspaces(4096)}, opts...)
	sys, err := NewSystem(sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	hosts := sys.Hosts()
	r := rand.New(rand.NewSource(seed))

	type pubState struct {
		pub  *Publisher
		rect [2][2]uint32 // advertised region
	}
	type subRec struct {
		filter [2][2]uint32
		host   HostID
	}
	var (
		pubs   = make(map[string]*pubState)
		subs   = make(map[string]*subRec)
		nextID int
		// received is appended from subscription handlers, which run on
		// shard worker goroutines when the soak is driven with WithShards.
		recvMu   sync.Mutex
		received []soakDelivery
	)
	randRange := func() [2]uint32 {
		a := uint32(r.Intn(1024))
		b := a + uint32(r.Intn(int(1024-a)))
		return [2]uint32{a, b}
	}
	addPub := func() {
		nextID++
		id := fmt.Sprintf("p%d", nextID)
		pub, err := sys.NewPublisher(id, hosts[r.Intn(len(hosts))])
		if err != nil {
			t.Fatal(err)
		}
		rect := [2][2]uint32{randRange(), randRange()}
		if err := pub.Advertise(NewFilter().
			Range("x", rect[0][0], rect[0][1]).
			Range("y", rect[1][0], rect[1][1])); err != nil {
			t.Fatal(err)
		}
		pubs[id] = &pubState{pub: pub, rect: rect}
	}
	addSub := func() {
		nextID++
		id := fmt.Sprintf("s%d", nextID)
		filter := [2][2]uint32{randRange(), randRange()}
		host := hosts[r.Intn(len(hosts))]
		if err := sys.Subscribe(id, host,
			NewFilter().
				Range("x", filter[0][0], filter[0][1]).
				Range("y", filter[1][0], filter[1][1]),
			func(d Delivery) {
				if d.FalsePositive {
					t.Errorf("false positive at full precision: sub=%s event=%v",
						d.SubscriptionID, d.Event.Values)
				}
				recvMu.Lock()
				received = append(received, soakDelivery{
					sub:   d.SubscriptionID,
					event: [2]uint32{d.Event.Values[0], d.Event.Values[1]},
				})
				recvMu.Unlock()
			}); err != nil {
			t.Fatal(err)
		}
		subs[id] = &subRec{filter: filter, host: host}
	}
	removeRandom := func(m map[string]bool) string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		if len(keys) == 0 {
			return ""
		}
		sort.Strings(keys)
		return keys[r.Intn(len(keys))]
	}

	// Seed population.
	for i := 0; i < 2; i++ {
		addPub()
	}
	for i := 0; i < 4; i++ {
		addSub()
	}

	var rounds [][]soakDelivery
	for round := 0; round < 12; round++ {
		// Churn.
		switch r.Intn(5) {
		case 0:
			addPub()
		case 1:
			addSub()
		case 2:
			if len(subs) > 1 {
				set := make(map[string]bool, len(subs))
				for k := range subs {
					set[k] = true
				}
				id := removeRandom(set)
				if err := sys.Unsubscribe(id); err != nil {
					t.Fatal(err)
				}
				delete(subs, id)
			}
		case 3:
			if len(pubs) > 1 {
				set := make(map[string]bool, len(pubs))
				for k := range pubs {
					set[k] = true
				}
				id := removeRandom(set)
				if err := pubs[id].pub.Unadvertise(); err != nil {
					t.Fatal(err)
				}
				delete(pubs, id)
			}
		}

		if beforePublish != nil {
			beforePublish(sys, round)
		}

		// Publish a batch from every live publisher, inside its region.
		// (The mutex is formally redundant here and below — Run() joins the
		// shard workers before returning — but keeps the ownership story
		// uniform.)
		recvMu.Lock()
		received = received[:0]
		recvMu.Unlock()
		type sent struct {
			event [2]uint32
		}
		var batch []sent
		pubIDs := make([]string, 0, len(pubs))
		for id := range pubs {
			pubIDs = append(pubIDs, id)
		}
		sort.Strings(pubIDs)
		for _, id := range pubIDs {
			ps := pubs[id]
			for j := 0; j < 5; j++ {
				x := ps.rect[0][0] + uint32(r.Intn(int(ps.rect[0][1]-ps.rect[0][0]+1)))
				y := ps.rect[1][0] + uint32(r.Intn(int(ps.rect[1][1]-ps.rect[1][0]+1)))
				if err := ps.pub.Publish(x, y); err != nil {
					t.Fatal(err)
				}
				batch = append(batch, sent{event: [2]uint32{x, y}})
			}
		}
		sys.Run()

		// Ground truth: count expected (sub, event) pairs.
		expected := make(map[soakDelivery]int)
		for _, b := range batch {
			for id, sr := range subs {
				if b.event[0] >= sr.filter[0][0] && b.event[0] <= sr.filter[0][1] &&
					b.event[1] >= sr.filter[1][0] && b.event[1] <= sr.filter[1][1] {
					expected[soakDelivery{sub: id, event: b.event}]++
				}
			}
		}
		recvMu.Lock()
		got := make(map[soakDelivery]int)
		for _, d := range received {
			got[d]++
		}
		log := append([]soakDelivery(nil), received...)
		recvMu.Unlock()
		for k, want := range expected {
			if got[k] != want {
				t.Fatalf("round %d: %v delivered %d times, want %d (pubs=%d subs=%d)",
					round, k, got[k], want, len(pubs), len(subs))
			}
		}
		for k, g := range got {
			if expected[k] != g {
				t.Fatalf("round %d: unexpected delivery %v ×%d (expected %d)",
					round, k, g, expected[k])
			}
		}

		sort.Slice(log, func(i, j int) bool {
			if log[i].sub != log[j].sub {
				return log[i].sub < log[j].sub
			}
			if log[i].event[0] != log[j].event[0] {
				return log[i].event[0] < log[j].event[0]
			}
			return log[i].event[1] < log[j].event[1]
		})
		rounds = append(rounds, log)
	}
	return rounds
}

// TestSoakFaultChurnConvergence is the end-to-end acceptance check for the
// southbound fault-tolerance layer: the same churn workload runs once
// fault-free and once behind a fault injector (random mid-stream failures
// plus one scripted fault so at least one always fires). Every round the
// faulted run resyncs until no switch is degraded and verifies the flow
// state clean before publishing; its delivery multisets must then match the
// fault-free run round for round — faults, retries, quarantines and repairs
// are invisible to subscribers.
func TestSoakFaultChurnConvergence(t *testing.T) {
	const seed = 424242
	baseline := soakDrive(t, nil, seed, nil)

	faultOpts := []Option{
		WithSouthboundFaults(FaultConfig{Seed: 1, Rate: 0.03, FailCalls: []uint64{5}}),
		WithRetryPolicy(RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			Sleep:       func(time.Duration) {}, // no wall-clock waits in tests
		}),
	}
	var sys *System
	faulted := soakDrive(t, faultOpts, seed, func(s *System, round int) {
		sys = s
		if _, ok := s.ResyncUntilHealthy(100); !ok {
			t.Fatalf("round %d: resync did not converge (degraded=%v)",
				round, s.Degraded())
		}
		if err := s.VerifyTables(); err != nil {
			t.Fatalf("round %d: VerifyTables after resync: %v", round, err)
		}
	})

	if got := sys.FaultStats().Injected; got == 0 {
		t.Fatal("no faults injected; the soak exercised nothing")
	}
	if len(baseline) != len(faulted) {
		t.Fatalf("round counts differ: baseline %d, faulted %d",
			len(baseline), len(faulted))
	}
	for round := range baseline {
		if !reflect.DeepEqual(baseline[round], faulted[round]) {
			t.Errorf("round %d deliveries diverge under faults:\nbaseline: %v\nfaulted:  %v",
				round, baseline[round], faulted[round])
		}
	}
}
