package pleroma

import (
	"sort"

	"pleroma/internal/topo"
)

// The paper's conclusion (Section 8) names overload detection as future
// work: "new mechanisms need to be introduced in order to detect and react
// to overload situations in the presence of a dynamic workload". This file
// implements the detection half as a first-class API: the System inspects
// its emulated data plane for saturated hosts and lossy links so a
// deployment (or an operator policy built on top) can react.

// HostLoad describes one end host's ingestion behaviour.
type HostLoad struct {
	Host     HostID
	Received uint64
	Dropped  uint64
}

// DropRate returns the fraction of arriving events the host dropped.
func (h HostLoad) DropRate() float64 {
	total := h.Received + h.Dropped
	if total == 0 {
		return 0
	}
	return float64(h.Dropped) / float64(total)
}

// LinkLoad describes one link direction's utilisation.
type LinkLoad struct {
	From, To topo.NodeID
	Packets  uint64
	Bytes    uint64
	Dropped  uint64
}

// OverloadReport summarises data-plane pressure points.
type OverloadReport struct {
	// OverloadedHosts lists hosts that dropped events, worst first.
	OverloadedHosts []HostLoad
	// HottestLinks lists the busiest link directions, busiest first
	// (bounded to the top ten).
	HottestLinks []LinkLoad
	// LossyLinks lists link directions that tail-dropped packets.
	LossyLinks []LinkLoad
}

// Overloaded reports whether any host or link dropped traffic.
func (r OverloadReport) Overloaded() bool {
	return len(r.OverloadedHosts) > 0 || len(r.LossyLinks) > 0
}

// OverloadReport inspects the data plane and returns the current pressure
// points. Counters are cumulative since system construction.
func (s *System) OverloadReport() OverloadReport {
	var rep OverloadReport
	for _, h := range s.g.Hosts() {
		dropped := s.dp.HostDropped(h)
		if dropped == 0 {
			continue
		}
		rep.OverloadedHosts = append(rep.OverloadedHosts, HostLoad{
			Host:     h,
			Received: s.dp.HostReceived(h),
			Dropped:  dropped,
		})
	}
	sort.Slice(rep.OverloadedHosts, func(i, j int) bool {
		return rep.OverloadedHosts[i].Dropped > rep.OverloadedHosts[j].Dropped
	})

	var all []LinkLoad
	for _, l := range s.g.Links() {
		ls := s.dp.LinkStatsFor(l)
		if ls == nil {
			continue
		}
		for _, from := range []topo.NodeID{l.A, l.B} {
			if ls.Packets[from] == 0 && ls.Dropped[from] == 0 {
				continue
			}
			to, _ := l.Other(from)
			ll := LinkLoad{
				From:    from,
				To:      to,
				Packets: ls.Packets[from],
				Bytes:   ls.Bytes[from],
				Dropped: ls.Dropped[from],
			}
			all = append(all, ll)
			if ll.Dropped > 0 {
				rep.LossyLinks = append(rep.LossyLinks, ll)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Packets != all[j].Packets {
			return all[i].Packets > all[j].Packets
		}
		return all[i].From < all[j].From
	})
	if len(all) > 10 {
		all = all[:10]
	}
	rep.HottestLinks = all
	sort.Slice(rep.LossyLinks, func(i, j int) bool {
		return rep.LossyLinks[i].Dropped > rep.LossyLinks[j].Dropped
	})
	return rep
}
