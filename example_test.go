package pleroma_test

import (
	"fmt"

	"pleroma"
	"pleroma/internal/topo"
)

// The canonical flow: advertise, subscribe, publish, drain the simulated
// network, observe content-filtered deliveries.
func Example() {
	sch, _ := pleroma.NewSchema(
		pleroma.Attribute{Name: "price", Bits: 10},
		pleroma.Attribute{Name: "volume", Bits: 10},
	)
	sys, _ := pleroma.NewSystem(sch)
	hosts := sys.Hosts()

	ticker, _ := sys.NewPublisher("ticker", hosts[0])
	_ = ticker.Advertise(pleroma.NewFilter())

	_ = sys.Subscribe("cheap", hosts[7],
		pleroma.NewFilter().Range("price", 0, 99),
		func(d pleroma.Delivery) {
			fmt.Println("delivered price", d.Event.Values[0])
		})

	_ = ticker.Publish(42, 1000) // matches
	_ = ticker.Publish(500, 10)  // filtered inside the network
	sys.Run()
	// Output:
	// delivered price 42
}

// Subscriptions can span independently controlled network partitions: the
// fabric floods advertisements between controllers and forwards the
// subscription along the reverse path (Section 4 of the paper).
func ExampleSystem_multiPartition() {
	sch, _ := pleroma.NewSchema(pleroma.Attribute{Name: "load", Bits: 10})
	sys, _ := pleroma.NewSystem(sch,
		pleroma.WithTopology(pleroma.TopologyRing20),
		pleroma.WithPartitions(4),
	)
	hosts := sys.Hosts()

	pub, _ := sys.NewPublisher("p", hosts[0])
	_ = pub.Advertise(pleroma.NewFilter())
	_ = sys.Subscribe("s", hosts[10], pleroma.NewFilter().Range("load", 900, 1023),
		func(d pleroma.Delivery) { fmt.Println("hot:", d.Event.Values[0]) })

	_ = pub.Publish(950)
	_ = pub.Publish(100)
	sys.Run()

	fmt.Println("partitions:", sys.Stats().Partitions)
	// Output:
	// hot: 950
	// partitions: 4
}

// ReindexDimensions runs the paper's Section 5 loop: PCA over recent
// traffic picks the informative attributes and the deployment re-indexes
// onto them.
func ExampleSystem_ReindexDimensions() {
	sch, _ := pleroma.NewSchema(
		pleroma.Attribute{Name: "hot", Bits: 10},
		pleroma.Attribute{Name: "cold", Bits: 10},
	)
	sys, _ := pleroma.NewSystem(sch)
	hosts := sys.Hosts()

	pub, _ := sys.NewPublisher("p", hosts[0])
	_ = pub.Advertise(pleroma.NewFilter())
	_ = sys.Subscribe("s", hosts[3], pleroma.NewFilter().Range("hot", 0, 100), nil)

	// Events vary on "hot" only.
	for i := 0; i < 100; i++ {
		_ = pub.Publish(uint32((i*53)%1024), 512)
	}
	sys.Run()

	sel, _ := sys.ReindexDimensions(0.9)
	fmt.Println("selected dimensions:", sel.Selected)
	// Output:
	// selected dimensions: [0]
}

// Link failures are handled by the controllers: trees are rebuilt around
// the failed link and delivery continues over redundant paths.
func ExampleSystem_FailLink() {
	sch, _ := pleroma.NewSchema(pleroma.Attribute{Name: "v", Bits: 10})
	sys, _ := pleroma.NewSystem(sch)
	hosts := sys.Hosts()

	pub, _ := sys.NewPublisher("p", hosts[0])
	_ = pub.Advertise(pleroma.NewFilter())
	_ = sys.Subscribe("s", hosts[7], pleroma.NewFilter(),
		func(d pleroma.Delivery) { fmt.Println("got", d.Event.Values[0]) })

	_ = pub.Publish(1)
	sys.Run()

	// Cut a switch-switch link the flow used.
	for _, l := range sys.Links() {
		if ls := linkBusy(sys, l); ls {
			_ = sys.FailLink(l.A, l.B)
			break
		}
	}
	_ = pub.Publish(2)
	sys.Run()
	// Output:
	// got 1
	// got 2
}

// linkBusy reports whether a switch-switch link carried packets.
func linkBusy(sys *pleroma.System, l *topo.Link) bool {
	switches := map[pleroma.HostID]bool{}
	for _, s := range sys.Switches() {
		switches[s] = true
	}
	if !switches[l.A] || !switches[l.B] {
		return false
	}
	for _, ll := range sys.OverloadReport().HottestLinks {
		if (ll.From == l.A && ll.To == l.B) || (ll.From == l.B && ll.To == l.A) {
			return true
		}
	}
	return false
}
