package pleroma

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"pleroma/internal/obs"
)

// System-level acceptance tests for the sharded parallel engine: the same
// seeded workloads driven through WithShards(1) and WithShards(n>1) must
// produce identical delivery multisets and counters, sharded runs must be
// bit-for-bit deterministic at a fixed shard count, and the coordinator's
// health metrics must surface through the facade's registry.

// testShardCount picks a multi-core shard count for equivalence tests:
// at least 2 so the parallel path actually runs, capped so CI machines
// with many cores don't shard a small topology into slivers.
func testShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	if n > 8 {
		n = 8
	}
	return n
}

// TestShardedSoakMatchesSingleEngine is the headline equivalence check:
// the full churn soak (which already verifies every round against ground
// truth internally) run on shard workers yields the exact per-round
// delivery multisets of the single-engine run.
func TestShardedSoakMatchesSingleEngine(t *testing.T) {
	topologies := []struct {
		name string
		opts []Option
	}{
		{"testbed", nil},
		{"fattree4", []Option{WithFatTree(4, 4, 2)}},
	}
	for _, tc := range topologies {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seed := 55000 + int64(len(tc.name))
			baseline := soakDrive(t, tc.opts, seed, nil)
			sharded := soakDrive(t,
				append([]Option{WithShards(testShardCount())}, tc.opts...),
				seed, nil)
			if len(baseline) != len(sharded) {
				t.Fatalf("round counts differ: single %d, sharded %d",
					len(baseline), len(sharded))
			}
			for round := range baseline {
				if !reflect.DeepEqual(baseline[round], sharded[round]) {
					t.Errorf("round %d deliveries diverge across shard counts:\nsingle:  %v\nsharded: %v",
						round, baseline[round], sharded[round])
				}
			}
		})
	}
}

// TestShardedFaultChurnSoak composes the two hardest layers: southbound
// fault injection with retry/quarantine/resync AND parallel shard
// execution. After each round's anti-entropy pass the faulted, sharded
// run must match the clean single-engine baseline round for round.
func TestShardedFaultChurnSoak(t *testing.T) {
	const seed = 98765
	baseline := soakDrive(t, nil, seed, nil)

	opts := []Option{
		WithShards(testShardCount()),
		WithSouthboundFaults(FaultConfig{Seed: 2, Rate: 0.03, FailCalls: []uint64{5}}),
		WithRetryPolicy(RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			Sleep:       func(time.Duration) {}, // no wall-clock waits in tests
		}),
	}
	var sys *System
	faulted := soakDrive(t, opts, seed, func(s *System, round int) {
		sys = s
		if _, ok := s.ResyncUntilHealthy(100); !ok {
			t.Fatalf("round %d: resync did not converge (degraded=%v)",
				round, s.Degraded())
		}
		if err := s.VerifyTables(); err != nil {
			t.Fatalf("round %d: VerifyTables after resync: %v", round, err)
		}
	})

	if sys.Shards() < 2 {
		t.Fatalf("soak ran on %d shards; the parallel path was not exercised", sys.Shards())
	}
	if got := sys.FaultStats().Injected; got == 0 {
		t.Fatal("no faults injected; the soak exercised nothing")
	}
	if len(baseline) != len(faulted) {
		t.Fatalf("round counts differ: baseline %d, faulted %d",
			len(baseline), len(faulted))
	}
	for round := range baseline {
		if !reflect.DeepEqual(baseline[round], faulted[round]) {
			t.Errorf("round %d deliveries diverge under sharded faults:\nbaseline: %v\nsharded:  %v",
				round, baseline[round], faulted[round])
		}
	}
}

// shardRec is one delivery with full observable detail, for bit-for-bit
// determinism comparison.
type shardRec struct {
	sub  string
	vals [2]uint32
	at   time.Duration
	lat  time.Duration
	fp   bool
}

// driveShardGolden runs a fixed seeded fan-out workload — every host
// subscribed, several publishers bursting at the same instants — and
// returns the sorted delivery log, the final clock, and the final stats.
func driveShardGolden(t *testing.T, seed int64, extra ...Option) ([]shardRec, time.Duration, Stats) {
	t.Helper()
	sch, err := NewSchema(
		Attribute{Name: "x", Bits: 10},
		Attribute{Name: "y", Bits: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]Option{WithFatTree(4, 4, 2), WithMaxDzLen(16)}, extra...)
	sys, err := NewSystem(sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	hosts := sys.Hosts()
	r := rand.New(rand.NewSource(seed))

	var mu sync.Mutex
	var recs []shardRec
	for i, h := range hosts {
		lo := uint32(r.Intn(512))
		hi := lo + uint32(r.Intn(int(1024-lo)))
		if err := sys.Subscribe(fmt.Sprintf("s%d", i), h,
			NewFilter().Range("x", lo, hi),
			func(d Delivery) {
				mu.Lock()
				recs = append(recs, shardRec{
					sub:  d.SubscriptionID,
					vals: [2]uint32{d.Event.Values[0], d.Event.Values[1]},
					at:   d.At,
					lat:  d.Latency,
					fp:   d.FalsePositive,
				})
				mu.Unlock()
			}); err != nil {
			t.Fatal(err)
		}
	}
	var pubs []*Publisher
	for i := 0; i < 4; i++ {
		pub, err := sys.NewPublisher(fmt.Sprintf("p%d", i), hosts[(i*7)%len(hosts)])
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Advertise(NewFilter()); err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, pub)
	}
	for round := 0; round < 4; round++ {
		for _, pub := range pubs {
			tuples := make([][]uint32, 12)
			for j := range tuples {
				tuples[j] = []uint32{uint32(r.Intn(1024)), uint32(r.Intn(1024))}
			}
			if err := pub.PublishBatch(tuples...); err != nil {
				t.Fatal(err)
			}
		}
		sys.Run()
	}
	end := sys.Now()

	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.sub != b.sub {
			return a.sub < b.sub
		}
		if a.vals != b.vals {
			return a.vals[0] < b.vals[0] ||
				(a.vals[0] == b.vals[0] && a.vals[1] < b.vals[1])
		}
		if a.at != b.at {
			return a.at < b.at
		}
		return a.lat < b.lat
	})
	return recs, end, sys.Stats()
}

// TestShardedGoldenWorkloadEquivalence pins the acceptance criterion
// directly: WithShards(n>1) reproduces the single-engine delivery
// multiset, counters, and final clock on a seeded golden workload.
func TestShardedGoldenWorkloadEquivalence(t *testing.T) {
	const seed = 31337
	single, singleEnd, singleStats := driveShardGolden(t, seed, WithShards(1))
	shard, shardEnd, shardStats := driveShardGolden(t, seed, WithShards(testShardCount()))

	if len(single) == 0 {
		t.Fatal("golden workload delivered nothing")
	}
	if singleStats != shardStats {
		t.Errorf("stats differ:\nsingle:  %+v\nsharded: %+v", singleStats, shardStats)
	}
	// Compare the content multiset, not per-delivery timestamps: bursts
	// from several publishers tie for serialization slots at the same
	// simulated instant, and (as WithShards documents) the tie order may
	// permute timestamps among the tied packets across shard counts. The
	// delivered (subscription, event, false-positive) multiset and every
	// counter are invariant. The final clock is close but not pinned — a
	// tie swap can shift which packet's multicast fan-out finishes last.
	content := func(recs []shardRec) map[shardRec]int {
		m := make(map[shardRec]int, len(recs))
		for _, r := range recs {
			r.at, r.lat = 0, 0
			m[r]++
		}
		return m
	}
	if !reflect.DeepEqual(content(single), content(shard)) {
		t.Fatalf("delivery content multisets differ (single %d recs ending %v, sharded %d recs ending %v)",
			len(single), singleEnd, len(shard), shardEnd)
	}
}

// TestShardedRunsDeterministic pins the determinism contract: at a fixed
// shard count, two runs of the same seeded workload are bit-for-bit
// identical — timestamps and all.
func TestShardedRunsDeterministic(t *testing.T) {
	const seed = 6060
	n := testShardCount()
	a, aEnd, aStats := driveShardGolden(t, seed, WithShards(n))
	b, bEnd, bStats := driveShardGolden(t, seed, WithShards(n))
	if aEnd != bEnd {
		t.Errorf("final clocks differ across identical runs: %v vs %v", aEnd, bEnd)
	}
	if aStats != bStats {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", aStats, bStats)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sharded run is not deterministic at %d shards", n)
	}
}

// TestShardedMetricsExported pins the observability wiring end to end:
// shard-health families appear in the facade's snapshot with sane values
// after a sharded run, and never appear on a single-engine system.
func TestShardedMetricsExported(t *testing.T) {
	find := func(snap MetricsSnapshot, name string) ([]obs.Sample, bool) {
		for _, f := range snap.Families {
			if f.Name == name {
				return f.Samples, true
			}
		}
		return nil, false
	}

	sch, err := NewSchema(Attribute{Name: "x", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch,
		WithFatTree(4, 4, 2), WithShards(4), WithObservability(64))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	hosts := sys.Hosts()
	for i, h := range hosts {
		if err := sys.Subscribe(fmt.Sprintf("s%d", i), h, NewFilter(),
			func(Delivery) {}); err != nil {
			t.Fatal(err)
		}
	}
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	tuples := make([][]uint32, 64)
	for i := range tuples {
		tuples[i] = []uint32{uint32(i * 16)}
	}
	if err := pub.PublishBatch(tuples...); err != nil {
		t.Fatal(err)
	}
	end := sys.Run()

	snap := sys.Metrics()
	if s, ok := find(snap, obs.MShardWindows); !ok || len(s) == 0 || s[0].Value < 1 {
		t.Errorf("%s missing or zero after a sharded run: %v", obs.MShardWindows, s)
	}
	if s, ok := find(snap, obs.MShardCrossMessages); !ok || len(s) == 0 || s[0].Value < 1 {
		t.Errorf("%s missing or zero: a one-to-all fan-out must cross shards: %v",
			obs.MShardCrossMessages, s)
	}
	if s, ok := find(snap, obs.MShardHorizon); !ok || len(s) == 0 || s[0].Value < float64(end) {
		t.Errorf("%s = %v, want >= final clock %d", obs.MShardHorizon, s, end)
	}
	if s, ok := find(snap, obs.MShardQueueDepth); !ok || len(s) != sys.Shards() {
		t.Errorf("%s has %d samples, want one per shard (%d)",
			obs.MShardQueueDepth, len(s), sys.Shards())
	} else {
		for _, smp := range s {
			if smp.Value != 0 {
				t.Errorf("shard %s queue depth %v after full drain, want 0",
					smp.LabelValue, smp.Value)
			}
		}
	}
	if _, ok := find(snap, obs.MShardMailbox); !ok {
		t.Errorf("%s family missing", obs.MShardMailbox)
	}
	if _, ok := find(snap, obs.MShardStalls); !ok {
		t.Errorf("%s family missing", obs.MShardStalls)
	}

	// A single-engine system must not export shard families at all.
	solo, err := NewSystem(sch, WithObservability(64))
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	for _, name := range []string{obs.MShardWindows, obs.MShardCrossMessages, obs.MShardQueueDepth} {
		if _, ok := find(solo.Metrics(), name); ok {
			t.Errorf("single-engine system exports %s", name)
		}
	}
}

// TestWithShardsGuards covers the construction-time contract: explicit
// errors for the incompatible scheduling options and clamping to the
// switch count.
func TestWithShardsGuards(t *testing.T) {
	sch, err := NewSchema(Attribute{Name: "x", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(sch, WithShards(2),
		WithInBandSignalling(100*time.Microsecond)); err == nil {
		t.Error("WithShards+WithInBandSignalling accepted; want error")
	}
	if _, err := NewSystem(sch, WithShards(2),
		WithAutoReindex(time.Second, 0.5)); err == nil {
		t.Error("WithShards+WithAutoReindex accepted; want error")
	}

	// WithFatTree(4,4,2) has 4 core + 4*(2+2) pod switches = 20.
	sys, err := NewSystem(sch, WithFatTree(4, 4, 2), WithShards(64))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if got := sys.Shards(); got != 20 {
		t.Errorf("Shards() = %d after WithShards(64) on 20 switches, want 20", got)
	}

	solo, err := NewSystem(sch, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	if got := solo.Shards(); got != 1 {
		t.Errorf("Shards() = %d for WithShards(1), want 1", got)
	}
}
