// Package pleroma is the public API of the PLEROMA middleware
// reproduction: software-defined-networking-based content pub/sub in which
// subscriptions compile into TCAM flow rules (IPv6-prefix matches over
// dz-encoded subspaces) and a per-partition controller reconfigures the
// network as publishers and subscribers come and go.
//
// A System bundles an emulated SDN deployment: a topology, its data plane,
// and one PLEROMA controller per partition, all driven by a deterministic
// simulated clock. Typical use:
//
//	sch, _ := pleroma.NewSchema(
//	    pleroma.Attribute{Name: "price", Bits: 10},
//	    pleroma.Attribute{Name: "volume", Bits: 10},
//	)
//	sys, _ := pleroma.NewSystem(sch)
//	hosts := sys.Hosts()
//
//	pub, _ := sys.NewPublisher("ticker", hosts[0])
//	_ = pub.Advertise(pleroma.NewFilter()) // whole event space
//
//	_, _ = sys.Subscribe("alerts", hosts[7],
//	    pleroma.NewFilter().Range("price", 0, 99),
//	    func(d pleroma.Delivery) { fmt.Println("got", d.Event) })
//
//	_ = pub.Publish(42, 1000)
//	sys.Run() // drain the simulated network
//
// A System and everything attached to it runs on a single simulated clock
// and is not safe for concurrent use; drive it from one goroutine.
package pleroma

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync/atomic"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/dimsel"
	"pleroma/internal/dz"
	"pleroma/internal/interdomain"
	"pleroma/internal/netem"
	"pleroma/internal/obs"
	"pleroma/internal/sim"
	"pleroma/internal/sim/shard"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/transport"
	"pleroma/internal/wire"
)

// Re-exported content-model types.
type (
	// Attribute describes one dimension of the event space.
	Attribute = space.Attribute
	// Filter is a conjunction of per-attribute range constraints; it is
	// the content form of subscriptions and advertisements.
	Filter = space.Filter
	// Event is one published attribute-value tuple.
	Event = space.Event
	// Schema is the ordered attribute set of the event space.
	Schema = space.Schema
	// HostID identifies an end host of the deployment.
	HostID = topo.NodeID
)

// NewSchema builds an event-space schema from attributes.
func NewSchema(attrs ...Attribute) (*Schema, error) { return space.NewSchema(attrs...) }

// NewFilter returns an empty (match-everything) filter; add constraints
// with Filter.Range.
func NewFilter() Filter { return space.NewFilter() }

// Delivery is one event handed to a subscriber.
type Delivery struct {
	// SubscriptionID identifies the receiving subscription.
	SubscriptionID string
	// Event is the received payload.
	Event Event
	// At is the simulated delivery time.
	At time.Duration
	// Latency is the end-to-end delay since publication.
	Latency time.Duration
	// FalsePositive marks events delivered due to dz truncation that do
	// not match the subscription filter exactly.
	FalsePositive bool
	// Hops is the number of switch hops the event traversed.
	Hops int
	// TraceID links the delivery to its distributed trace (0 untraced).
	TraceID uint64
	// SpanID is the delivery span recorded under TraceID (0 untraced).
	SpanID uint64
	// WallLatency is the wall-clock publish→delivery delay when the
	// publish carried an origin stamp (0 otherwise). Across processes on
	// different machines it includes clock skew; see PubWallNanos for the
	// skew-free client-side measure.
	WallLatency time.Duration
	// PubWallNanos echoes the publisher's wall-clock stamp
	// (UnixNano; 0 unstamped). Meaningful only in the publisher's clock
	// domain: a subscriber on the same machine — or the publishing client
	// itself — can subtract it from its own clock without skew.
	PubWallNanos int64
}

// Topology selects the emulated network layout.
type Topology int

// Available topologies.
const (
	// TopologyTestbedFatTree is the paper's 10-switch/8-host testbed
	// (Figure 6). The default.
	TopologyTestbedFatTree Topology = iota + 1
	// TopologyFatTree20 is the 20-switch Mininet fat-tree.
	TopologyFatTree20
	// TopologyRing20 is the 20-switch Mininet ring.
	TopologyRing20
)

// Option configures a System.
type Option func(*config)

type config struct {
	topology      Topology
	partitions    int
	maxDzLen      int
	maxSubs       int
	linkParams    topo.LinkParams
	hostCap       int
	inBandDelay   time.Duration
	reindexEvery  time.Duration
	reindexThresh float64
	// shards selects the parallel simulation engine (see WithShards);
	// values <= 1 keep the classic single-engine path.
	shards int
	// fatTree, when set, overrides topology with a custom pod fat-tree
	// (see WithFatTree).
	fatTree *fatTreeShape
	// faults, when set, interposes a fault-injection layer between the
	// controllers and the switches (see WithSouthboundFaults).
	faults *netem.FaultConfig
	// retry, when set, overrides the controllers' southbound retry policy.
	retry *core.RetryPolicy
	// journal enables controller HA: per-partition op journals plus the
	// Snapshot/Restore/Failover surface (see WithJournal in ha.go).
	journal bool
	// journalDir makes the HA journals file-backed (see WithJournalDir in
	// network.go); implies journal.
	journalDir string
	// listenAddr makes the system serve its control and southbound
	// surfaces over TCP (see WithListener in network.go).
	listenAddr string
	// transport tunes the TCP data path (see WithTransport in network.go).
	transport transport.Options
	// obsEnabled/obsTraceCap/obsTraceSink configure the observability
	// layer (see WithObservability in observability.go).
	obsEnabled   bool
	obsTraceCap  int
	obsTraceSink *slog.Logger
}

// WithTopology selects the emulated network layout.
func WithTopology(t Topology) Option { return func(c *config) { c.topology = t } }

// WithPartitions splits the network into n independently controlled
// partitions (Section 4). Only ring and fat-tree topologies support n>1.
func WithPartitions(n int) Option { return func(c *config) { c.partitions = n } }

// WithMaxDzLen bounds the dz bits embedded in flow matches (L_dz).
func WithMaxDzLen(n int) Option { return func(c *config) { c.maxDzLen = n } }

// WithMaxSubspaces caps the DZ set size per subscription/advertisement.
func WithMaxSubspaces(n int) Option { return func(c *config) { c.maxSubs = n } }

// WithLinkParams overrides the physical link model.
func WithLinkParams(p topo.LinkParams) Option { return func(c *config) { c.linkParams = p } }

// WithHostCapacity bounds every host's event ingestion rate (events/s);
// zero means unlimited.
func WithHostCapacity(eventsPerSec int) Option {
	return func(c *config) { c.hostCap = eventsPerSec }
}

// WithInBandSignalling makes control requests travel the data plane as
// IP_vir packets punted to the controller (Section 2 of the paper),
// taking effect only after the network path plus the given controller
// processing delay of simulated time. Off by default: requests apply
// synchronously, modelling an idealised out-of-band control channel.
func WithInBandSignalling(processingDelay time.Duration) Option {
	return func(c *config) { c.inBandDelay = processingDelay }
}

type fatTreeShape struct{ pods, cores, hostsPerEdge int }

// WithFatTree replaces the topology with a custom pod-based fat-tree:
// pods pods of 2 aggregation + 2 edge switches, cores core switches, and
// hostsPerEdge hosts per edge switch — the knob for the scale regimes the
// fixed topologies cannot reach (e.g. WithFatTree(8, 8, 2): 40 switches,
// 32 hosts). Takes precedence over WithTopology.
func WithFatTree(pods, cores, hostsPerEdge int) Option {
	return func(c *config) { c.fatTree = &fatTreeShape{pods, cores, hostsPerEdge} }
}

// WithShards runs the simulation on n parallel shard engines under
// conservative lookahead synchronization: the topology is partitioned
// into contiguous regions (hosts stay with their switch), each region
// executes on its own engine/goroutine, and cross-region packet hops are
// exchanged at barrier windows bounded by the minimum inter-region link
// latency. Delivery multisets and counters match the single-engine run:
// the protocol never reorders events within a shard and cross-shard hops
// arrive at their exact simulated instants. When distinct packets contend
// at the same simulated instant (a serialization slot on a shared link),
// the tie may resolve in a different order than the single-engine
// schedule — permuting timestamps among the tied packets but leaving
// contents and totals unchanged; if such a tie races for the last place
// in a bounded queue, which of the tied packets is dropped may differ as
// well. For a fixed shard count, runs are bit-for-bit deterministic.
//
// n <= 1 (the default) keeps the classic single-engine path, and n is
// clamped to the number of switches. With n > 1, subscription handlers
// run on shard worker goroutines — at most one per host at a time, but
// handlers for hosts on different shards run concurrently and must
// synchronize shared state — and publishing is only legal between Run
// calls, not from inside handlers. Incompatible with WithInBandSignalling
// and WithAutoReindex, which schedule control work on the simulated
// clock.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// Errors the public API can return.
var (
	// ErrNotAdvertised is returned when publishing without a prior
	// advertisement (the paper requires advertisements before events).
	ErrNotAdvertised = errors.New("pleroma: publisher has not advertised")
	// ErrUnknownSubscription is returned for operations on missing ids.
	ErrUnknownSubscription = errors.New("pleroma: unknown subscription")
)

// System is one emulated PLEROMA deployment.
type System struct {
	cfg config
	sch *Schema
	g   *topo.Graph
	eng *sim.Engine
	// coord drives parallel shard execution; nil with WithShards(1).
	coord *shard.Coordinator
	dp    *netem.DataPlane
	fab   *interdomain.Fabric
	// faulty is the interposed fault-injection layer; nil without
	// WithSouthboundFaults.
	faulty *netem.FaultyProgrammer
	subs   map[string]*subState
	byHost map[HostID][]*subState
	pubs   map[string]*Publisher
	// pubOrder/subOrder preserve registration order for re-indexing.
	pubOrder []string
	subOrder []string
	// proj is the active dimension selection (nil = full space).
	proj *projection

	// window is a ring of recent events for dimension selection: once
	// full, winStart marks the oldest slot and new events overwrite in
	// place (O(1) per publish). winTotal counts every event ever recorded.
	window   []Event
	winStart int
	winTotal uint64
	// periodic re-selection state (Section 5's adaptation loop).
	reindexArmed  bool
	reindexSeen   uint64
	reindexRounds int
	// delivery accounting for the FPR metric of Section 6.4. Atomics:
	// with shards enabled, dispatch runs concurrently on shard workers.
	deliveries     atomic.Uint64
	falsePositives atomic.Uint64

	// Networked deployment surface (nil without WithListener /
	// WithJournalDir; see network.go).
	server       *transport.Server
	lnAddr       net.Addr
	fileJournals []*core.FileJournal

	// Observability (nil without WithObservability; see observability.go).
	reg    *obs.Registry
	tracer *obs.Tracer
	// Facade-level delivery instruments; nil-safe no-ops when disabled.
	obsDeliveries      *obs.Counter
	obsFalsePositives  *obs.Counter
	obsDeliveryLatency *obs.Histogram
	// lat is the delivery-latency instrument family (per-tree and
	// per-partition histograms, hop counts, wall latency, slowest ring);
	// nil without WithObservability.
	lat *obs.DeliveryLatency

	// stampPubs enables origin-stamping publications (observability or a
	// TCP listener); without either, publishes skip the tree lookup and
	// wall-clock read entirely.
	stampPubs bool
	// hostPart caches each host's controller partition (-1 unknown) so
	// per-publish stamping avoids the fabric lookup.
	hostPart []int32
}

type subState struct {
	id      string
	host    HostID
	rect    dz.Rect
	set     dz.Set // truncated DZ region, cached for demultiplexing
	handler func(Delivery)
}

// NewSystem builds a deployment over the given schema.
func NewSystem(sch *Schema, opts ...Option) (*System, error) {
	if sch == nil {
		return nil, fmt.Errorf("pleroma: nil schema")
	}
	cfg := config{
		topology:   TopologyTestbedFatTree,
		partitions: 1,
		maxDzLen:   24,
		maxSubs:    16,
		linkParams: topo.DefaultLinkParams,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.maxDzLen <= 0 || cfg.maxSubs <= 0 {
		return nil, fmt.Errorf("pleroma: maxDzLen and maxSubspaces must be positive")
	}

	var (
		g   *topo.Graph
		err error
	)
	switch {
	case cfg.fatTree != nil:
		ft := cfg.fatTree
		g, err = topo.FatTree(ft.pods, ft.cores, ft.hostsPerEdge, cfg.linkParams)
		if err == nil && cfg.partitions > 1 {
			err = topo.PartitionFatTree(g, cfg.partitions)
		}
	case cfg.topology == TopologyTestbedFatTree:
		g, err = topo.TestbedFatTree(cfg.linkParams)
		if err == nil && cfg.partitions > 1 {
			err = fmt.Errorf("pleroma: testbed fat-tree supports a single partition")
		}
	case cfg.topology == TopologyFatTree20:
		g, err = topo.FatTree(4, 4, 1, cfg.linkParams)
		if err == nil && cfg.partitions > 1 {
			err = topo.PartitionFatTree(g, cfg.partitions)
		}
	case cfg.topology == TopologyRing20:
		g, err = topo.Ring(20, cfg.linkParams)
		if err == nil {
			err = topo.PartitionRing(g, cfg.partitions)
		}
	default:
		err = fmt.Errorf("pleroma: unknown topology %d", int(cfg.topology))
	}
	if err != nil {
		return nil, err
	}

	// Parallel shard engine (WithShards). The coordinator owns one engine
	// per shard; the data plane is built on shard 0's engine so single
	// mode and shard 0 are the same code path.
	var coord *shard.Coordinator
	var eng *sim.Engine
	var assign []int32
	if cfg.shards > 1 {
		if cfg.inBandDelay > 0 {
			return nil, fmt.Errorf("pleroma: WithShards(>1) is incompatible with WithInBandSignalling (in-band control schedules work on the simulated clock from handler context)")
		}
		if cfg.reindexEvery > 0 {
			return nil, fmt.Errorf("pleroma: WithShards(>1) is incompatible with WithAutoReindex (periodic re-indexing schedules control work on the simulated clock)")
		}
		var n int
		assign, n = topo.ShardNodes(g, cfg.shards)
		lookahead, _ := topo.MinCutLatency(g, assign)
		coord, err = shard.New(n, lookahead)
		if err != nil {
			return nil, fmt.Errorf("pleroma: %w", err)
		}
		eng = coord.Engine(0)
	} else {
		eng = sim.NewEngine()
	}
	dp := netem.New(g, eng)
	if coord != nil {
		if err := dp.EnableSharding(coord, assign); err != nil {
			coord.Close()
			return nil, err
		}
	}
	reg, tracer := cfg.initObservability()
	var fabOpts []interdomain.Option
	var faulty *netem.FaultyProgrammer
	if cfg.faults != nil {
		faulty = netem.WithFaults(dp, *cfg.faults)
		fabOpts = append(fabOpts, interdomain.WithFlowProgrammer(faulty))
	}
	if cfg.retry != nil {
		fabOpts = append(fabOpts, interdomain.WithControllerOptions(core.WithRetryPolicy(*cfg.retry)))
	}
	if reg != nil {
		fabOpts = append(fabOpts, interdomain.WithObservability(reg, tracer))
	}
	var fileJournals []*core.FileJournal
	switch {
	case cfg.journalDir != "":
		fabOpts = append(fabOpts, interdomain.WithHAJournal(func(partition int) (core.CompactableJournal, error) {
			j, err := core.OpenFileJournal(JournalPath(cfg.journalDir, partition))
			if err != nil {
				return nil, err
			}
			fileJournals = append(fileJournals, j)
			return j, nil
		}))
	case cfg.journal:
		fabOpts = append(fabOpts, interdomain.WithHA())
	}
	fab, err := interdomain.NewFabric(g, dp, fabOpts...)
	if err != nil {
		for _, j := range fileJournals {
			j.Close()
		}
		return nil, err
	}
	sys := &System{
		cfg:    cfg,
		sch:    sch,
		g:      g,
		eng:    eng,
		coord:  coord,
		dp:     dp,
		fab:    fab,
		faulty: faulty,
		reg:    reg,
		tracer: tracer,
		subs:   make(map[string]*subState),
		byHost: make(map[HostID][]*subState),
		pubs:   make(map[string]*Publisher),
	}
	if reg != nil {
		dp.Instrument(reg)
		if coord != nil {
			coord.Instrument(reg)
		}
		if faulty != nil {
			faulty.Instrument(reg)
		}
		sys.instrumentDispatch()
	}
	if reg != nil || cfg.listenAddr != "" {
		sys.enableStamping()
	}
	for _, h := range g.Hosts() {
		h := h
		hc := netem.HostConfig{CapacityPerSec: cfg.hostCap}
		if err := dp.ConfigureHost(h, hc, func(d netem.Delivery) {
			sys.dispatch(h, d)
		}); err != nil {
			return nil, err
		}
	}
	if cfg.inBandDelay > 0 {
		fab.EnableInBandSignalling(cfg.inBandDelay)
	}
	sys.fileJournals = fileJournals
	if cfg.listenAddr != "" {
		if err := sys.startListener(cfg.listenAddr); err != nil {
			sys.Close()
			return nil, err
		}
	}
	return sys, nil
}

// control routes one request either as an in-band IP_vir packet (taking
// effect asynchronously in simulated time) or synchronously against the
// fabric.
func (s *System) control(req interdomain.SignalRequest) error {
	if s.cfg.inBandDelay > 0 {
		return s.fab.SendSignal(req)
	}
	switch req.Op {
	case interdomain.OpAdvertise:
		return s.fab.Advertise(req.ID, req.Host, req.Set)
	case interdomain.OpSubscribe:
		return s.fab.Subscribe(req.ID, req.Host, req.Set)
	case interdomain.OpUnsubscribe:
		return s.fab.Unsubscribe(req.ID)
	case interdomain.OpUnadvertise:
		return s.fab.Unadvertise(req.ID)
	default:
		return fmt.Errorf("pleroma: unknown control op %q", req.Op)
	}
}

// Hosts returns the end hosts of the deployment.
func (s *System) Hosts() []HostID { return s.g.Hosts() }

// Schema returns the event-space schema.
func (s *System) Schema() *Schema { return s.sch }

// Now returns the current simulated time.
func (s *System) Now() time.Duration {
	if s.coord != nil {
		return s.coord.Now()
	}
	return s.eng.Now()
}

// Run drains all pending simulated work and returns the final time. With
// shards enabled this is the coordinator's parallel barrier drain.
func (s *System) Run() time.Duration { return s.dp.Run() }

// RunFor advances the simulation by d.
func (s *System) RunFor(d time.Duration) time.Duration {
	return s.dp.RunUntil(s.Now() + d)
}

// Shards returns the number of parallel simulation shards (1 without
// WithShards).
func (s *System) Shards() int {
	if s.coord == nil {
		return 1
	}
	return s.coord.Shards()
}

// Close releases the shard worker goroutines of a WithShards(n>1)
// system. The system must not be used afterwards. Optional — an
// abandoned system is reaped by a finalizer — but deterministic cleanup
// keeps goroutine-leak checkers quiet. Safe to call on any system,
// idempotent, and safe to call concurrently (e.g. racing the finalizer
// path or a deferred double-Close).
func (s *System) Close() {
	if s.server != nil {
		s.server.Stop()
	}
	for _, j := range s.fileJournals {
		j.Close()
	}
	if s.coord != nil {
		s.coord.Close()
	}
}

// dispatch routes a data-plane delivery to the matching subscriptions on
// the host.
func (s *System) dispatch(host HostID, d netem.Delivery) {
	// Control frames (LLDP probes, signalling) and malformed payloads are
	// not events; hosts drop them silently.
	if d.Packet.Control != nil || len(d.Packet.Event.Values) != s.sch.Dims() {
		return
	}
	expr := d.Packet.Expr.Truncate(s.cfg.maxDzLen)
	stamp := d.Packet.Stamp
	// One wall-clock read per packet, only for stamped publishes with a
	// consumer (the latency family or a traced delivery to hand out).
	var wall time.Duration
	if stamp.OriginWall != 0 && (s.lat != nil || stamp.TraceID != 0) {
		wall = time.Duration(time.Now().UnixNano() - stamp.OriginWall)
	}
	for _, st := range s.byHost[host] {
		// The host receives one copy; hand it to every subscription whose
		// truncated region overlaps the event's dz (kernel-level demux).
		if !st.set.Overlaps(expr) {
			continue
		}
		fp := !dz.RectContainsPoint(st.rect, d.Packet.Event.Values)
		lat := d.At - d.Packet.SentAt
		s.deliveries.Add(1)
		s.obsDeliveries.Inc()
		s.obsDeliveryLatency.Observe(lat)
		if fp {
			s.falsePositives.Add(1)
			s.obsFalsePositives.Inc()
		}
		if s.lat != nil {
			tree, part := int64(stamp.Tree), int64(stamp.Partition)
			if stamp.OriginWall == 0 {
				// Unstamped packet (direct data-plane injection): no
				// tree/partition knowledge, only hops and latency.
				tree, part = -1, -1
			} else if stamp.Tree == 0 {
				tree = -1 // stamped but no owning tree resolved
			}
			s.lat.Record(obs.DeliverySample{
				TraceID:        stamp.TraceID,
				SubscriptionID: st.id,
				Tree:           tree,
				Partition:      part,
				Latency:        lat,
				WallLatency:    wall,
				Hops:           int(d.Packet.Hops),
				At:             d.At,
				FalsePositive:  fp,
			})
		}
		// A traced publish gets one delivery span per matched subscription,
		// parented to the publish span it arrived with. Untraced packets —
		// including every local benchmark publish — skip this entirely, so
		// the hot path stays allocation-free.
		var spanID uint64
		if s.tracer != nil && stamp.TraceID != 0 {
			sp := s.tracer.StartRemoteSpan(stamp.TraceID, stamp.SpanID, "deliver", st.id)
			if sp != nil {
				sp.End(nil)
				spanID = sp.ID
			}
		}
		if st.handler == nil {
			continue
		}
		st.handler(Delivery{
			SubscriptionID: st.id,
			Event:          d.Packet.Event,
			At:             d.At,
			Latency:        lat,
			FalsePositive:  fp,
			Hops:           int(d.Packet.Hops),
			TraceID:        stamp.TraceID,
			SpanID:         spanID,
			WallLatency:    wall,
			PubWallNanos:   stamp.OriginWall,
		})
	}
}

// enableStamping turns on publication origin-stamping and caches each
// host's controller partition so the per-publish lookup is a slice index.
// Called when observability or a TCP listener is configured; idempotent.
func (s *System) enableStamping() {
	s.stampPubs = true
	if s.hostPart != nil {
		return
	}
	hosts := s.g.Hosts()
	var max HostID
	for _, h := range hosts {
		if h > max {
			max = h
		}
	}
	hp := make([]int32, int(max)+1)
	for i := range hp {
		hp[i] = -1
	}
	for _, h := range hosts {
		if part, err := s.fab.HomePartition(h); err == nil {
			hp[h] = int32(part)
		}
	}
	s.hostPart = hp
}

// Publisher produces events from one host.
type Publisher struct {
	sys        *System
	id         string
	host       HostID
	advertised bool
	// advRect is the advertised region in the full event space, kept for
	// re-indexing.
	advRect dz.Rect
}

// NewPublisher registers a publisher on a host.
func (s *System) NewPublisher(id string, host HostID) (*Publisher, error) {
	if _, dup := s.pubs[id]; dup {
		return nil, fmt.Errorf("pleroma: duplicate publisher id %q", id)
	}
	if _, err := s.g.AttachedSwitch(host); err != nil {
		return nil, fmt.Errorf("pleroma: publisher host: %w", err)
	}
	p := &Publisher{sys: s, id: id, host: host}
	s.pubs[id] = p
	return p, nil
}

// Advertise announces the region of the event space this publisher will
// publish into. It must precede Publish.
func (p *Publisher) Advertise(f Filter) error {
	rect, err := p.sys.sch.Rect(f)
	if err != nil {
		return err
	}
	set, err := p.sys.decomposeRect(rect)
	if err != nil {
		return err
	}
	if err := p.sys.control(interdomain.SignalRequest{
		Op: interdomain.OpAdvertise, ID: p.id, Host: p.host, Set: set,
	}); err != nil {
		return err
	}
	p.advertised = true
	p.advRect = rect
	p.sys.pubOrder = append(p.sys.pubOrder, p.id)
	return nil
}

// Unadvertise withdraws the advertisement.
func (p *Publisher) Unadvertise() error {
	if !p.advertised {
		return ErrNotAdvertised
	}
	if err := p.sys.control(interdomain.SignalRequest{
		Op: interdomain.OpUnadvertise, ID: p.id, Host: p.host,
	}); err != nil {
		return err
	}
	p.advertised = false
	p.sys.pubOrder = removeID(p.sys.pubOrder, p.id)
	return nil
}

// Publish injects one event (attribute values in schema order) into the
// network at the current simulated time.
func (p *Publisher) Publish(values ...uint32) error {
	return p.publishTraced(wire.TraceContext{}, values...)
}

// publishTraced is Publish with an explicit trace context — the transport
// server's path: a remote client's publish carries its trace so every
// resulting delivery joins it.
func (p *Publisher) publishTraced(tc wire.TraceContext, values ...uint32) error {
	if !p.advertised {
		return ErrNotAdvertised
	}
	ev, err := p.sys.sch.NewEvent(values...)
	if err != nil {
		return err
	}
	idxSch := p.sys.indexSchema()
	maxLen := idxSch.Geometry().MaxLen()
	if p.sys.cfg.maxDzLen < maxLen {
		maxLen = p.sys.cfg.maxDzLen
	}
	expr, err := idxSch.Encode(p.sys.indexEvent(ev), maxLen)
	if err != nil {
		return err
	}
	p.sys.recordEvent(ev)
	p.sys.maybeArmReindex()
	return p.sys.dp.PublishStamped(p.host, expr, ev, netem.DefaultPacketSize, p.stampFor(expr, tc))
}

// stampFor builds the data-plane origin stamp for one publication: the
// owning dissemination tree, the publisher's home partition, the
// wall-clock origin, and — on the transport path — the remote client's
// trace context. The zero stamp when stamping is disabled (no
// observability and no listener) keeps the default hot path free of the
// tree lookup and clock read.
func (p *Publisher) stampFor(expr dz.Expr, tc wire.TraceContext) netem.Stamp {
	s := p.sys
	if !s.stampPubs {
		return netem.Stamp{}
	}
	st := netem.Stamp{
		TraceID:    tc.TraceID,
		SpanID:     tc.SpanID,
		OriginWall: time.Now().UnixNano(),
		Partition:  -1,
	}
	if tc.PubWallNanos != 0 {
		// Keep the remote publisher's clock so the stamp echoed back in
		// the Deliver frame stays in the client's clock domain.
		st.OriginWall = tc.PubWallNanos
	}
	if int(p.host) < len(s.hostPart) {
		st.Partition = s.hostPart[p.host]
	}
	if st.Partition >= 0 {
		if ctl, err := s.fab.Controller(int(st.Partition)); err == nil {
			if id, ok := ctl.TreeFor(expr); ok {
				st.Tree = int32(id)
			}
		}
	}
	return st
}

// PublishBatch injects a burst of events — one attribute-value tuple per
// event — at the current simulated time. All encoding happens up front and
// the data plane assigns every sequence number under a single lock
// acquisition, so high-rate publishers (the throughput experiments) avoid
// per-event locking. Deliveries, timestamps, and sequence numbers are
// identical to publishing the tuples one by one with Publish; on an
// encoding error nothing is injected.
func (p *Publisher) PublishBatch(tuples ...[]uint32) error {
	return p.publishBatchTraced(wire.TraceContext{}, tuples...)
}

// publishBatchTraced is PublishBatch with an explicit trace context (see
// publishTraced); the whole batch shares one trace.
func (p *Publisher) publishBatchTraced(tc wire.TraceContext, tuples ...[]uint32) error {
	if !p.advertised {
		return ErrNotAdvertised
	}
	if len(tuples) == 0 {
		return nil
	}
	idxSch := p.sys.indexSchema()
	maxLen := idxSch.Geometry().MaxLen()
	if p.sys.cfg.maxDzLen < maxLen {
		maxLen = p.sys.cfg.maxDzLen
	}
	pubs := make([]netem.Publication, len(tuples))
	for i, vals := range tuples {
		ev, err := p.sys.sch.NewEvent(vals...)
		if err != nil {
			return err
		}
		expr, err := idxSch.Encode(p.sys.indexEvent(ev), maxLen)
		if err != nil {
			return err
		}
		pubs[i] = netem.Publication{Expr: expr, Event: ev, Size: netem.DefaultPacketSize, Stamp: p.stampFor(expr, tc)}
	}
	for _, pb := range pubs {
		p.sys.recordEvent(pb.Event)
	}
	p.sys.maybeArmReindex()
	return p.sys.dp.PublishBatch(p.host, pubs)
}

// Subscribe registers a content subscription on a host; handler fires for
// every delivered event (with false-positive marking).
func (s *System) Subscribe(id string, host HostID, f Filter, handler func(Delivery)) error {
	if _, dup := s.subs[id]; dup {
		return fmt.Errorf("pleroma: duplicate subscription id %q", id)
	}
	rect, err := s.sch.Rect(f)
	if err != nil {
		return err
	}
	set, err := s.decomposeRect(rect)
	if err != nil {
		return err
	}
	if err := s.control(interdomain.SignalRequest{
		Op: interdomain.OpSubscribe, ID: id, Host: host, Set: set,
	}); err != nil {
		return err
	}
	st := &subState{id: id, host: host, rect: rect, set: set, handler: handler}
	s.subs[id] = st
	s.byHost[host] = append(s.byHost[host], st)
	s.subOrder = append(s.subOrder, id)
	return nil
}

// Unsubscribe withdraws a subscription.
func (s *System) Unsubscribe(id string) error {
	st, ok := s.subs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSubscription, id)
	}
	if err := s.control(interdomain.SignalRequest{
		Op: interdomain.OpUnsubscribe, ID: id, Host: st.host,
	}); err != nil {
		return err
	}
	delete(s.subs, id)
	s.subOrder = removeID(s.subOrder, id)
	list := s.byHost[st.host]
	for i, cur := range list {
		if cur == st {
			list[i] = list[len(list)-1]
			s.byHost[st.host] = list[:len(list)-1]
			break
		}
	}
	return nil
}

func removeID(s []string, id string) []string {
	out := s[:0]
	for _, x := range s {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// recordEvent keeps a bounded window of recent events for dimension
// selection.
const maxEventWindow = 2048

func (s *System) recordEvent(ev Event) {
	s.winTotal++
	if len(s.window) >= maxEventWindow {
		// Overwrite the oldest slot instead of shifting the whole window:
		// publish admission must stay O(1) per event.
		s.window[s.winStart] = ev
		s.winStart = (s.winStart + 1) % maxEventWindow
		return
	}
	s.window = append(s.window, ev)
}

// DimensionSelection reports the PCA ranking of the schema attributes
// based on the current subscriptions and the recent event window
// (Section 5). threshold in (0,1] picks how much coefficient mass the
// selected set must cover.
type DimensionSelection struct {
	// Ranking lists attribute indices, most informative first.
	Ranking []int
	// Selected is the chosen Ω_D (the first K of Ranking).
	Selected []int
	// K is the number of selected dimensions.
	K int
}

// SelectDimensions runs the Section 5 analysis on live state.
func (s *System) SelectDimensions(threshold float64) (DimensionSelection, error) {
	if len(s.window) == 0 {
		return DimensionSelection{}, fmt.Errorf("pleroma: no events recorded yet")
	}
	rects := make([]dz.Rect, 0, len(s.subs))
	for _, st := range s.subs {
		rects = append(rects, st.rect)
	}
	res, err := dimsel.SelectFromWorkload(rects, s.window, threshold)
	if err != nil {
		return DimensionSelection{}, err
	}
	return DimensionSelection{Ranking: res.Ranking, Selected: res.Selected, K: res.K}, nil
}

// Stats summarises the deployment's control- and data-plane activity.
type Stats struct {
	// Partitions is the number of controllers.
	Partitions int
	// ControlMessages counts inter-controller messages.
	ControlMessages uint64
	// FlowMods counts FlowMod operations applied to switches.
	FlowMods uint64
	// LinkPackets counts event transmissions over physical links.
	LinkPackets uint64
	// Deliveries counts events handed to subscription handlers.
	Deliveries uint64
	// FalsePositives counts deliveries that did not match the receiving
	// subscription exactly (dz truncation artefacts, Section 6.4).
	FalsePositives uint64
}

// FPRPercent returns the false positive rate as a percentage of all
// deliveries — the paper's bandwidth-efficiency metric.
func (st Stats) FPRPercent() float64 {
	if st.Deliveries == 0 {
		return 0
	}
	return 100 * float64(st.FalsePositives) / float64(st.Deliveries)
}

// Stats returns a snapshot of the system counters.
func (s *System) Stats() Stats {
	fst := s.fab.Stats()
	return Stats{
		Partitions:      len(s.fab.Partitions()),
		ControlMessages: fst.MessagesSent,
		FlowMods:        s.dp.FlowModCount(),
		LinkPackets:     s.dp.TotalLinkPackets(),
		Deliveries:      s.deliveries.Load(),
		FalsePositives:  s.falsePositives.Load(),
	}
}

// Switches returns the switch nodes of the deployment (for link-failure
// injection and inspection).
func (s *System) Switches() []HostID { return s.g.Switches() }

// FailLink marks the link between two nodes as failed and makes every
// controller rebuild its dissemination trees around it. Publications in
// flight on the failed link are lost; new publications take the repaired
// paths.
func (s *System) FailLink(a, b HostID) error {
	if err := s.g.SetLinkState(a, b, true); err != nil {
		return err
	}
	return s.fab.HandleTopologyChange()
}

// RestoreLink brings a failed link back and re-optimises the trees.
func (s *System) RestoreLink(a, b HostID) error {
	if err := s.g.SetLinkState(a, b, false); err != nil {
		return err
	}
	return s.fab.HandleTopologyChange()
}

// Links returns the topology's links (for inspection and failure
// injection).
func (s *System) Links() []*topo.Link { return s.g.Links() }

// Resubscribe atomically replaces a subscription's filter, keeping its
// identity and handler — the "parametric subscription" pattern of the
// paper's introduction (moving range queries, sliding price thresholds),
// where a subscription's parameters change far more often than its
// lifetime.
func (s *System) Resubscribe(id string, f Filter) error {
	st, ok := s.subs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSubscription, id)
	}
	rect, err := s.sch.Rect(f)
	if err != nil {
		return err
	}
	set, err := s.decomposeRect(rect)
	if err != nil {
		return err
	}
	if err := s.control(interdomain.SignalRequest{
		Op: interdomain.OpUnsubscribe, ID: id, Host: st.host,
	}); err != nil {
		return err
	}
	if err := s.control(interdomain.SignalRequest{
		Op: interdomain.OpSubscribe, ID: id, Host: st.host, Set: set,
	}); err != nil {
		return err
	}
	st.rect = rect
	st.set = set
	return nil
}
