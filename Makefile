GO ?= go

# Packages with dedicated concurrency stress coverage; raced separately so
# `make check` stays fast while still catching locking regressions.
RACE_PKGS := ./internal/core/... ./internal/netem/... ./internal/openflow/... ./internal/workload/...

.PHONY: check vet build test race soak bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -run 'Fault|Resync' -count=1 .

# Long-running churn soaks against the public API, raced: exact-delivery
# ground truth plus fault-injection convergence (resync heals every round).
soak:
	$(GO) test -race -run Soak -count=1 -v .

bench:
	$(GO) test -run XXX -bench . -benchtime 100x ./internal/core/... ./internal/openflow/...
