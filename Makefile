GO ?= go

# Packages with dedicated concurrency stress coverage; raced separately so
# `make check` stays fast while still catching locking regressions.
RACE_PKGS := ./internal/core/... ./internal/netem/... ./internal/openflow/... ./internal/workload/... ./internal/obs/... ./internal/metrics/... ./internal/sim/... ./internal/interdomain/... ./internal/wire/... ./internal/transport/...

.PHONY: check vet build test race soak bench bench-obs bench-dataplane bench-parallel bench-transport obs-demo daemon-demo

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -run 'Fault|Resync|Sharded|WithShards|Failover|Snapshot|Journal|Close|Loopback|Network|Restart|Trace|Pipelined' -count=1 .

# Long-running churn soaks against the public API, raced: exact-delivery
# ground truth plus fault-injection convergence (resync heals every round).
soak:
	$(GO) test -race -run Soak -count=1 -v .

# Micro-benchmarks for the prefix index (Set algebra, table lookup) plus the
# system-level publish/subscribe benchmarks. Output is teed into benchmarks/
# so successive runs can be diffed against benchmarks/before.txt.
bench:
	mkdir -p benchmarks
	$(GO) test -run XXX -bench 'BenchmarkSet|BenchmarkTableLookup|BenchmarkLookup' -benchmem ./internal/dz/... ./internal/openflow/... | tee benchmarks/micro.txt
	$(GO) test -run XXX -bench 'BenchmarkSystemPublishDeliver(Obs)?$$' -benchtime 100x -benchmem . | tee benchmarks/system.txt
	$(GO) test -run XXX -bench 'BenchmarkSubscribeAt' -benchmem ./internal/core/... | tee -a benchmarks/system.txt

# Data-plane fast-path benchmarks: engine scheduling, raw forwarding, and
# the end-to-end publish/deliver path (single and batched). Results are
# appended to benchmarks/dataplane.txt, which keeps the pre-fast-path
# records as comments; compare before/after with
#   benchstat old.txt new.txt
# (or eyeball ns/op and allocs/op — the committed file carries both eras).
bench-dataplane:
	mkdir -p benchmarks
	$(GO) test -run XXX -bench 'BenchmarkEngineScheduleRun|BenchmarkScheduleRun' -benchtime 100000x -benchmem ./internal/sim/ | tee -a benchmarks/dataplane.txt
	$(GO) test -run XXX -bench 'BenchmarkDataPlaneForward' -benchtime 50000x -benchmem ./internal/netem/ | tee -a benchmarks/dataplane.txt
	$(GO) test -run XXX -bench 'BenchmarkSystemPublishDeliver$$|BenchmarkSystemPublishBatch' -benchtime 5000x -count 3 -benchmem . | tee -a benchmarks/dataplane.txt

# Observability overhead: the publish/delivery benchmark with the obs layer
# off and on, teed for comparison against the committed benchmarks/obs.txt.
bench-obs:
	mkdir -p benchmarks
	$(GO) test -run XXX -bench 'BenchmarkSystemPublishDeliver(Obs)?$$' -benchtime 5000x -count 3 -benchmem . | tee benchmarks/obs.txt

# Parallel engine speedup: the sharded fat-tree fan-out benchmark swept
# across -cpu 1,2,4,8. GOMAXPROCS doubles as the shard count, so -cpu 1 is
# the classic single-engine path and -cpu N runs N-way barrier windows;
# compare ns/op down the sweep for the speedup. Teed into
# benchmarks/parallel.txt (the committed file keeps reference runs as
# comments).
bench-parallel:
	mkdir -p benchmarks
	$(GO) test -run XXX -bench 'BenchmarkSystemPublishDeliverFatTree8' -benchtime 50x -count 1 -cpu 1,2,4,8 -benchmem . | tee -a benchmarks/parallel.txt

# Pipelined transport data path: loopback-TCP publish→deliver throughput,
# the per-call baseline (one round trip per publish, per-event delivery
# frames) against the windowed async path swept over window size and
# coalescing threshold. Appended to benchmarks/transport.txt, which keeps
# the pre-pipeline record as comments — compare events/s and allocs/op.
bench-transport:
	mkdir -p benchmarks
	$(GO) test -run XXX -bench 'BenchmarkTransportPublishDeliver' -benchtime 20000x -count 1 -benchmem . | tee -a benchmarks/transport.txt

# Networked deployment smoke test: boot pleroma-d on loopback, attach a
# subscriber process and a publisher process, and check the delivery
# lands — the README quickstart, end to end.
daemon-demo:
	@set -e; \
	$(GO) build -o /tmp/pleroma-d ./cmd/pleroma-d; \
	$(GO) build -o /tmp/pleroma-pub ./cmd/pleroma-pub; \
	$(GO) build -o /tmp/pleroma-sub ./cmd/pleroma-sub; \
	/tmp/pleroma-d -listen 127.0.0.1:9478 > /tmp/pleroma-d.log & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 20); do \
		grep -q 'listening on' /tmp/pleroma-d.log 2>/dev/null && break; sleep 0.5; \
	done; \
	echo "--- daemon"; cat /tmp/pleroma-d.log; \
	/tmp/pleroma-sub -addr 127.0.0.1:9478 -id alerts -filter "price:0-99" -n 1 -for 30s > /tmp/pleroma-sub.log & spid=$$!; \
	for i in $$(seq 1 20); do \
		grep -q 'subscribed' /tmp/pleroma-sub.log 2>/dev/null && break; sleep 0.5; \
	done; \
	echo "--- publisher"; /tmp/pleroma-pub -addr 127.0.0.1:9478 -id ticker -events "42,1000;500,17"; \
	wait $$spid; \
	echo "--- subscriber"; cat /tmp/pleroma-sub.log; \
	grep -q 'received 1 deliveries' /tmp/pleroma-sub.log; \
	kill -TERM $$pid; wait $$pid || true; \
	echo "daemon-demo: OK"

# Boot an instrumented demo deployment, probe its operational endpoints,
# and shut it down — a smoke test for the /metrics and /healthz surface.
obs-demo:
	@set -e; \
	$(GO) run ./cmd/pleroma-sim -obs-addr 127.0.0.1:9477 -obs-duration 10s & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 20); do \
		curl -fsS http://127.0.0.1:9477/healthz >/dev/null 2>&1 && break; sleep 0.5; \
	done; \
	echo "--- /healthz"; curl -fsS http://127.0.0.1:9477/healthz; \
	echo "--- /metrics (head)"; curl -fsS http://127.0.0.1:9477/metrics | head -n 25; \
	echo "--- /traces (head)"; curl -fsS http://127.0.0.1:9477/traces | head -n 10; \
	wait $$pid
