GO ?= go

# Packages with dedicated concurrency stress coverage; raced separately so
# `make check` stays fast while still catching locking regressions.
RACE_PKGS := ./internal/core/... ./internal/netem/... ./internal/openflow/... ./internal/workload/...

.PHONY: check vet build test race soak bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -run 'Fault|Resync' -count=1 .

# Long-running churn soaks against the public API, raced: exact-delivery
# ground truth plus fault-injection convergence (resync heals every round).
soak:
	$(GO) test -race -run Soak -count=1 -v .

# Micro-benchmarks for the prefix index (Set algebra, table lookup) plus the
# system-level publish/subscribe benchmarks. Output is teed into benchmarks/
# so successive runs can be diffed against benchmarks/before.txt.
bench:
	mkdir -p benchmarks
	$(GO) test -run XXX -bench 'BenchmarkSet|BenchmarkTableLookup|BenchmarkLookup' -benchmem ./internal/dz/... ./internal/openflow/... | tee benchmarks/micro.txt
	$(GO) test -run XXX -bench 'BenchmarkSystemPublishDeliver' -benchtime 100x -benchmem . | tee benchmarks/system.txt
	$(GO) test -run XXX -bench 'BenchmarkSubscribeAt' -benchmem ./internal/core/... | tee -a benchmarks/system.txt
