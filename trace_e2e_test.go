package pleroma

import (
	"strings"
	"sync"
	"testing"

	"pleroma/internal/space"
	"pleroma/internal/wire"
)

// TestEndToEndTrace is the acceptance test of the tracing tentpole: one
// client publish produces exactly one distributed trace spanning the
// client (publish root span, recv span), the transport boundary, the
// daemon's data plane (server publish span, per-delivery spans), with
// the delivery-latency instruments populated along the way.
func TestEndToEndTrace(t *testing.T) {
	sys, err := NewSystem(netTestSchema(t),
		WithObservability(0), WithListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	c, err := Dial(sys.ListenAddr(), WithDialObservability(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hosts := c.Hosts()
	if err := c.Advertise("p", hosts[0], NewFilter()); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []Delivery
	if err := c.Subscribe("s", hosts[5], NewFilter(), func(d Delivery) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("p", 100, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("deliveries: %d, want 1", len(got))
	}
	d := got[0]
	if d.TraceID == 0 {
		t.Fatal("delivery carries no trace id")
	}
	if d.Hops == 0 {
		t.Fatal("delivery carries no hop count")
	}
	if d.PubWallNanos == 0 || d.WallLatency <= 0 {
		t.Fatalf("delivery wall accounting: stamp=%d latency=%v", d.PubWallNanos, d.WallLatency)
	}

	// Client half of the trace: the root publish span and the recv span
	// closing the loop.
	cspans := c.TraceByID(d.TraceID)
	ops := map[string]int{}
	var rootSpanID uint64
	for _, sp := range cspans {
		ops[sp.Op]++
		if sp.Op == "publish" {
			if sp.ParentID != 0 {
				t.Errorf("client publish span has parent %d, want root", sp.ParentID)
			}
			rootSpanID = sp.ID
		}
	}
	if ops["publish"] != 1 || ops["recv"] != 1 {
		t.Fatalf("client spans for trace %d: %v, want one publish + one recv", d.TraceID, ops)
	}

	// Daemon half: a server publish span parented to the client's root,
	// and one deliver span per matched subscription under it.
	sspans := sys.TraceByID(d.TraceID)
	ops = map[string]int{}
	var serverPubID uint64
	for _, sp := range sspans {
		ops[sp.Op]++
		if sp.Op == "publish" {
			if sp.ParentID != rootSpanID {
				t.Errorf("server publish span parent %d, want client span %d", sp.ParentID, rootSpanID)
			}
			serverPubID = sp.ID
		}
	}
	if ops["publish"] != 1 || ops["deliver"] != 1 {
		t.Fatalf("daemon spans for trace %d: %v, want one publish + one deliver", d.TraceID, ops)
	}
	for _, sp := range sspans {
		if sp.Op == "deliver" && sp.ParentID != serverPubID {
			t.Errorf("deliver span parent %d, want server publish span %d", sp.ParentID, serverPubID)
		}
	}

	// Latency accounting populated end to end.
	rep := sys.DeliveryLatency()
	if rep.Count == 0 {
		t.Fatal("delivery latency histogram empty")
	}
	if len(rep.ByTree) == 0 || len(rep.ByPartition) == 0 {
		t.Fatalf("per-tree/per-partition breakdowns empty: %v / %v", rep.ByTree, rep.ByPartition)
	}
	if rep.Hops == nil || rep.Hops.Count == 0 {
		t.Fatal("hop histogram empty")
	}
	if rep.Wall == nil || rep.Wall.Count == 0 {
		t.Fatal("wall latency histogram empty")
	}
	if len(rep.Slowest) == 0 || rep.Slowest[0].TraceID != d.TraceID {
		t.Fatalf("slowest ring: %+v", rep.Slowest)
	}

	// The client's own registry has the skew-free wall measure.
	found := false
	for _, f := range c.Metrics().Families {
		if f.Name == "pleroma_client_delivery_wall_latency_seconds" {
			for _, s := range f.Samples {
				if s.Hist != nil && s.Hist.Count > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("client wall-latency histogram not populated")
	}
}

// TestTraceCoherenceAcrossReconnect: a publish retried over a reconnect
// must stay one coherent trace — the client mints its span once and
// re-sends the same bytes, so the dedup'd retry keeps a single trace id
// and produces no orphan spans.
func TestTraceCoherenceAcrossReconnect(t *testing.T) {
	sys, err := NewSystem(netTestSchema(t),
		WithObservability(0), WithListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	c, err := Dial(sys.ListenAddr(), WithDialObservability(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hosts := c.Hosts()
	if err := c.Advertise("p", hosts[0], NewFilter()); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var traces []uint64
	if err := c.Subscribe("s", hosts[5], NewFilter(), func(d Delivery) {
		mu.Lock()
		traces = append(traces, d.TraceID)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	// Sever the connection: the next publish fails its first attempt,
	// redials (replaying the registrations), and re-sends the identical
	// frame — same sequence number, same trace context.
	sys.server.DropConnections()
	if err := c.Publish("p", 100, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	if len(traces) != 1 || traces[0] == 0 {
		mu.Unlock()
		t.Fatalf("deliveries after reconnect: %v, want one traced delivery", traces)
	}
	tid := traces[0]
	mu.Unlock()

	// One publish span on the client despite the retry.
	pubs := 0
	for _, sp := range c.TraceByID(tid) {
		if sp.Op == "publish" {
			pubs++
		}
	}
	if pubs != 1 {
		t.Fatalf("client publish spans: %d, want 1 (span minted once per publish)", pubs)
	}
	// No orphans daemon-side: every span belongs to the one trace and
	// deliver spans parent onto a publish span present in the same trace.
	ids := map[uint64]bool{}
	sspans := sys.TraceByID(tid)
	for _, sp := range sspans {
		ids[sp.ID] = true
	}
	for _, sp := range sspans {
		if sp.Op == "deliver" && !ids[sp.ParentID] {
			t.Errorf("deliver span %d orphaned: parent %d not in trace", sp.ID, sp.ParentID)
		}
	}
}

// TestTraceDedupKeepsSingleSpanSet drives the backend directly with a
// duplicated traced publish (the at-least-once retry the transport
// performs): the second application must be acknowledged without
// re-injecting events, so the trace gains no second set of deliver spans.
func TestTraceDedupKeepsSingleSpanSet(t *testing.T) {
	sys, err := NewSystem(netTestSchema(t), WithObservability(0), WithTopology(TopologyRing20))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.enableStamping()
	b := &netBackend{sys: sys, advs: make(map[string]netReg), subs: make(map[string]netReg)}
	hosts := sys.Hosts()
	if err := b.Control(wire.ControlReq{Op: "advertise", ID: "p", Host: uint32(hosts[0])}, nil); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var wds []wire.Delivery
	err = b.Control(wire.ControlReq{Op: "subscribe", ID: "s", Host: uint32(hosts[5]),
		Ranges: []wire.Range{{Attr: "price", Lo: 0, Hi: 1023}}},
		func(d wire.Delivery) { mu.Lock(); wds = append(wds, d); mu.Unlock() })
	if err != nil {
		t.Fatal(err)
	}

	req := wire.PublishReq{ID: "p", Seq: 1,
		Trace:  wire.TraceContext{TraceID: 777, SpanID: 3, PubWallNanos: 1},
		Events: []space.Event{{Values: []uint32{5, 6}}}}
	if err := b.Publish(req); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(req); err != nil { // the retry: deduplicated
		t.Fatal(err)
	}
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(wds) != 1 {
		t.Fatalf("deliveries: %d, want 1 (retry deduplicated)", len(wds))
	}
	if wds[0].Trace.TraceID != 777 {
		t.Fatalf("delivery trace id %d, want 777", wds[0].Trace.TraceID)
	}
	delivers := 0
	for _, sp := range sys.TraceByID(777) {
		if sp.Op == "deliver" {
			delivers++
		}
	}
	if delivers != 1 {
		t.Fatalf("deliver spans in trace: %d, want 1", delivers)
	}
}

// TestUntracedClientGetsV1Deliveries: a client without a tracer never
// negotiates the capability, so the daemon strips trace contexts and the
// facade surfaces untraced deliveries — version compatibility with old
// clients.
func TestUntracedClientGetsV1Deliveries(t *testing.T) {
	sys, err := NewSystem(netTestSchema(t),
		WithObservability(0), WithListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	c, err := Dial(sys.ListenAddr()) // no WithDialObservability: no tracer
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hosts := c.Hosts()
	if err := c.Advertise("p", hosts[0], NewFilter()); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []Delivery
	if err := c.Subscribe("s", hosts[5], NewFilter(), func(d Delivery) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("p", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("deliveries: %d, want 1", len(got))
	}
	if got[0].TraceID != 0 || got[0].Hops != 0 || got[0].PubWallNanos != 0 {
		t.Fatalf("un-negotiated connection leaked trace data: %+v", got[0])
	}
	// The daemon still accounts for latency internally (it stamps its own
	// publications), just without a trace.
	if rep := sys.DeliveryLatency(); rep.Count == 0 {
		t.Fatal("daemon latency histogram empty")
	}
	if strings.Contains(deliveryKey(got[0]), "trace") {
		t.Fatal("deliveryKey must stay trace-agnostic for the equivalence tests")
	}
}
