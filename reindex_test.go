package pleroma

import (
	"testing"
	"time"
)

// reindexFixture builds a workload where only the first attribute carries
// information: subscriptions are selective on "hot" and unconstrained on
// "cold"; events vary on "hot" and are constant on "cold".
func reindexFixture(t *testing.T) (*System, *Publisher, *int) {
	t.Helper()
	sch, err := NewSchema(
		Attribute{Name: "hot", Bits: 10},
		Attribute{Name: "cold", Bits: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch, WithMaxDzLen(8))
	if err != nil {
		t.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := new(int)
	if err := sys.Subscribe("s", hosts[7],
		NewFilter().Range("hot", 100, 200),
		func(d Delivery) { *count++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id := "extra" + string(rune('a'+i))
		lo := uint32(i * 150)
		if err := sys.Subscribe(id, hosts[1+i%6],
			NewFilter().Range("hot", lo, lo+60), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Seed the event window: hot varies, cold constant.
	for i := 0; i < 150; i++ {
		if err := pub.Publish(uint32((i*61)%1024), 512); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run()
	return sys, pub, count
}

func TestReindexSelectsInformativeDimension(t *testing.T) {
	sys, _, _ := reindexFixture(t)
	sel, err := sys.ReindexDimensions(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) == 0 || sel.Selected[0] != 0 {
		t.Fatalf("selection=%+v, want 'hot' (dim 0) first", sel)
	}
	if sel.K != 1 {
		t.Errorf("K=%d, want 1 (cold is constant)", sel.K)
	}
}

func TestReindexKeepsDeliveryCorrect(t *testing.T) {
	sys, pub, count := reindexFixture(t)
	if _, err := sys.ReindexDimensions(0.8); err != nil {
		t.Fatal(err)
	}
	before := *count
	// Matching event (hot ∈ [100,200]).
	if err := pub.Publish(150, 512); err != nil {
		t.Fatal(err)
	}
	// Non-matching on the selected dimension.
	if err := pub.Publish(900, 512); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if got := *count - before; got != 1 {
		t.Errorf("deliveries after reindex=%d, want 1", got)
	}
}

func TestReindexImprovesGranularity(t *testing.T) {
	// With L_dz = 8 over two dimensions, the full index spends 4 bits per
	// dimension; after selecting the single informative dimension, all 8
	// bits refine it. A borderline event that truncation previously let
	// through must now be filtered in-network.
	sys, pub, count := reindexFixture(t)

	// Event just outside [100,200] on hot: at 4 hot-bits the cell size is
	// 64, so 210 can share a cell boundary region with 200.
	probe := func() int {
		before := *count
		if err := pub.Publish(205, 512); err != nil {
			t.Fatal(err)
		}
		sys.Run()
		return *count - before
	}
	fullSpace := probe()
	if _, err := sys.ReindexDimensions(0.8); err != nil {
		t.Fatal(err)
	}
	projected := probe()
	if projected > fullSpace {
		t.Errorf("reindexing must not add false positives: full=%d projected=%d",
			fullSpace, projected)
	}
}

func TestResetDimensions(t *testing.T) {
	sys, pub, count := reindexFixture(t)
	if _, err := sys.ReindexDimensions(0.8); err != nil {
		t.Fatal(err)
	}
	if err := sys.ResetDimensions(); err != nil {
		t.Fatal(err)
	}
	before := *count
	if err := pub.Publish(150, 512); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if got := *count - before; got != 1 {
		t.Errorf("delivery after reset=%d, want 1", got)
	}
}

func TestReindexWithoutEventsFails(t *testing.T) {
	sch, err := NewSchema(Attribute{Name: "a", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ReindexDimensions(0.5); err == nil {
		t.Error("reindex without an event window must fail")
	}
}

func TestAutoReindex(t *testing.T) {
	sch, err := NewSchema(
		Attribute{Name: "hot", Bits: 10},
		Attribute{Name: "cold", Bits: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch, WithMaxDzLen(8),
		WithAutoReindex(time.Millisecond, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := sys.Subscribe("s", hosts[5],
		NewFilter().Range("hot", 100, 200),
		func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	// Traffic varying only on "hot": the periodic loop must fire and
	// re-index without breaking delivery.
	for round := 0; round < 3; round++ {
		for i := 0; i < 60; i++ {
			if err := pub.Publish(uint32((i*61)%1024), 512); err != nil {
				t.Fatal(err)
			}
		}
		sys.Run() // drains traffic AND the pending reindex timer
	}
	if sys.ReindexRounds() == 0 {
		t.Fatal("auto reindex never ran")
	}
	before := count
	if err := pub.Publish(150, 512); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(900, 512); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if got := count - before; got != 1 {
		t.Errorf("delivery after auto reindex: %d, want 1", got)
	}
}

func TestAutoReindexRunTerminates(t *testing.T) {
	// The periodic timer must not keep the simulation alive forever.
	sch, err := NewSchema(Attribute{Name: "a", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch, WithAutoReindex(time.Millisecond, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := sys.NewPublisher("p", sys.Hosts()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pub.Publish(uint32(i * 100)); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run() // must return
}
