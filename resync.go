package pleroma

import (
	"pleroma/internal/core"
	"pleroma/internal/netem"
)

// The paper's conclusion (Section 8) also names reacting to failures as
// open: the evaluated system assumes an always-healthy southbound channel.
// This file exposes the fault-tolerance half as a first-class API, the
// counterpart of the overload detection in overload.go: deployments can
// inject southbound faults (for testing and chaos-style soaks), shape the
// controllers' retry behaviour, inspect which switches fell behind, and
// run the anti-entropy pass that heals them.

// Re-exported fault-tolerance types.
type (
	// FaultConfig shapes injected southbound faults (see
	// WithSouthboundFaults).
	FaultConfig = netem.FaultConfig
	// FaultStats counts the faults the injection layer produced.
	FaultStats = netem.FaultStats
	// RetryPolicy shapes the controllers' southbound retries (see
	// WithRetryPolicy).
	RetryPolicy = core.RetryPolicy
	// ResyncReport summarises one anti-entropy pass.
	ResyncReport = core.ResyncReport
	// DegradedSwitch describes one switch whose flow table lags the
	// canonical state after its southbound retries exhausted.
	DegradedSwitch = core.DegradedSwitch
)

// DefaultRetryPolicy is the production-shaped retry policy of the
// controllers (see core.DefaultRetryPolicy).
var DefaultRetryPolicy = core.DefaultRetryPolicy

// WithSouthboundFaults interposes a fault-injection layer between the
// controllers and the emulated switches: southbound programming calls fail
// according to cfg (seeded-random rates, scripted call indices, transient
// switch-down windows, TCAM-pressure bursts). Reads and event forwarding
// are never faulted. Combine with WithRetryPolicy and System.Resync to
// exercise the full degradation/heal lifecycle.
func WithSouthboundFaults(cfg FaultConfig) Option {
	return func(c *config) { c.faults = &cfg }
}

// WithRetryPolicy makes every partition controller retry transient
// southbound failures with capped exponential backoff before quarantining
// the switch (see RetryPolicy). Without it controllers attempt each
// southbound call once.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) { c.retry = &p }
}

// SouthboundReport summarises the health of the controller→switch channel.
type SouthboundReport struct {
	// Degraded lists quarantined switches: their retries exhausted, their
	// tables lag the canonical state, and the next Resync heals them.
	Degraded []DegradedSwitch
	// Retries counts southbound attempts repeated after transient errors.
	Retries uint64
	// Quarantines counts switches that entered the degraded set.
	Quarantines uint64
	// Resyncs counts anti-entropy passes over single switches.
	Resyncs uint64
	// RepairedFlows counts FlowMods issued by resync passes.
	RepairedFlows uint64
	// InjectedFaults counts faults produced by the injection layer (zero
	// without WithSouthboundFaults).
	InjectedFaults uint64
}

// Healthy reports whether every switch's flow table currently matches the
// canonical state as far as the controllers know (no quarantined
// switches).
func (r SouthboundReport) Healthy() bool { return len(r.Degraded) == 0 }

// SouthboundReport returns a snapshot of southbound fault-tolerance
// activity, the counterpart of OverloadReport for the control plane.
func (s *System) SouthboundReport() SouthboundReport {
	rep := SouthboundReport{Degraded: s.fab.DegradedSwitches()}
	for _, p := range s.fab.Partitions() {
		ctl, err := s.fab.Controller(p)
		if err != nil {
			continue
		}
		st := ctl.Stats()
		rep.Retries += st.Retries
		rep.Quarantines += st.Quarantines
		rep.Resyncs += st.Resyncs
		rep.RepairedFlows += st.RepairedFlows
	}
	if s.faulty != nil {
		rep.InjectedFaults = s.faulty.Stats().Injected
	}
	return rep
}

// FaultStats returns the injection layer's counters; the zero value
// without WithSouthboundFaults.
func (s *System) FaultStats() FaultStats {
	if s.faulty == nil {
		return FaultStats{}
	}
	return s.faulty.Stats()
}

// HealFaults closes every open injected switch-down window (no-op without
// WithSouthboundFaults). Tests use it to let a quarantined deployment
// recover deterministically before a Resync.
func (s *System) HealFaults() {
	if s.faulty != nil {
		s.faulty.Heal()
	}
}

// SetFaultRate replaces the random fault probability of the injection
// layer (no-op without WithSouthboundFaults).
func (s *System) SetFaultRate(rate float64) {
	if s.faulty != nil {
		s.faulty.SetRate(rate)
	}
}

// Resync runs the anti-entropy pass over every partition controller: each
// switch's desired flow table is recomputed from the canonical state,
// diffed against the switch's actual flows, and repaired with the minimal
// FlowMod batch. Quarantined switches that repair fully are healed. The
// pass is best-effort; switches that fail transiently again stay
// quarantined for the next pass and are listed in the report.
func (s *System) Resync() (ResyncReport, error) {
	return s.fab.ResyncAll()
}

// ResyncUntilHealthy runs Resync passes until no switch is degraded or
// maxPasses is exhausted; it returns the merged report and true when the
// deployment converged. With ongoing fault injection convergence is
// probabilistic per pass, so soaks pick maxPasses from their fault rate.
func (s *System) ResyncUntilHealthy(maxPasses int) (ResyncReport, bool) {
	var total ResyncReport
	for i := 0; i < maxPasses; i++ {
		rr, err := s.Resync()
		total.Switches += rr.Switches
		total.FlowAdds += rr.FlowAdds
		total.FlowDeletes += rr.FlowDeletes
		total.FlowModifies += rr.FlowModifies
		total.Retries += rr.Retries
		total.Healed += rr.Healed
		total.SouthboundCalls += rr.SouthboundCalls
		total.StillDegraded = rr.StillDegraded
		if err == nil && len(rr.StillDegraded) == 0 {
			return total, true
		}
	}
	return total, len(total.StillDegraded) == 0
}

// VerifyTables cross-checks every controller's incrementally maintained
// flow state against the full canonical derivation and the emulated
// switches' actual tables; it returns the first inconsistency. A healthy
// deployment (SouthboundReport().Healthy() after a Resync) verifies clean.
func (s *System) VerifyTables() error {
	return s.fab.VerifyTables()
}

// Degraded returns the switches whose flow tables are known to lag the
// canonical state, ordered by switch ID.
func (s *System) Degraded() []DegradedSwitch {
	return s.fab.DegradedSwitches()
}
