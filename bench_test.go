package pleroma_test

import (
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"pleroma"
	"pleroma/internal/experiments"
	"pleroma/internal/metrics"
)

// The benchmarks below regenerate every figure of the paper's evaluation
// (Section 6, Figure 7 panels a–h) plus the DESIGN.md ablations, one bench
// per figure. Each iteration executes the full (quick-mode) experiment;
// headline numbers are attached as custom benchmark metrics so the shape
// of the paper's results is visible straight from `go test -bench`.
// Full-scale parameter sweeps: `go run ./cmd/pleroma-sim -exp all -full`.

// runExperiment executes one registered experiment per iteration and
// returns the final tables for metric extraction.
func runExperiment(b *testing.B, id string) []*metrics.Table {
	b.Helper()
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Run(id, experiments.DefaultConfig)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

func cellFloat(b *testing.B, t *metrics.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		d, derr := time.ParseDuration(t.Rows[row][col])
		if derr != nil {
			b.Fatalf("cell (%d,%d)=%q: %v / %v", row, col, t.Rows[row][col], err, derr)
		}
		return float64(d.Nanoseconds())
	}
	return v
}

func BenchmarkFig7aDelayVsFlows(b *testing.B) {
	tables := runExperiment(b, "fig7a")
	t := tables[0]
	b.ReportMetric(cellFloat(b, t, 0, 1), "delay-min-flows-ns")
	b.ReportMetric(cellFloat(b, t, len(t.Rows)-1, 1), "delay-max-flows-ns")
}

func BenchmarkFig7bDelayVsSubscriptions(b *testing.B) {
	tables := runExperiment(b, "fig7b")
	t := tables[0]
	b.ReportMetric(cellFloat(b, t, 0, 1), "delay-min-subs-ns")
	b.ReportMetric(cellFloat(b, t, len(t.Rows)-1, 1), "delay-max-subs-ns")
}

func BenchmarkFig7cThroughput(b *testing.B) {
	tables := runExperiment(b, "fig7c")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cellFloat(b, t, last, 1), "received-at-max-rate/s")
	b.ReportMetric(cellFloat(b, t, last, 2), "received-fast-host/s")
}

func BenchmarkFig7dFPRVsDzLength(b *testing.B) {
	tables := runExperiment(b, "fig7d")
	t := tables[0]
	b.ReportMetric(cellFloat(b, t, 0, 1), "fpr-shortest-dz-%")
	b.ReportMetric(cellFloat(b, t, len(t.Rows)-1, 1), "fpr-longest-dz-%")
}

func BenchmarkFig7eFPRDimSelection(b *testing.B) {
	tables := runExperiment(b, "fig7e")
	t := tables[0]
	// Restricted workload 3: best k vs all dimensions.
	col := len(t.Columns) - 1
	best := cellFloat(b, t, 0, col)
	for r := 1; r < len(t.Rows); r++ {
		if v := cellFloat(b, t, r, col); v < best {
			best = v
		}
	}
	b.ReportMetric(best, "fpr-best-k-%")
	b.ReportMetric(cellFloat(b, t, len(t.Rows)-1, col), "fpr-all-dims-%")
}

func BenchmarkFig7fReconfigDelay(b *testing.B) {
	tables := runExperiment(b, "fig7f")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cellFloat(b, t, last, 5), "subs/sec-at-max-deployed")
	b.ReportMetric(cellFloat(b, t, last, 4), "flowmods/sub")
}

func BenchmarkFig7gControllerOverhead(b *testing.B) {
	tables := runExperiment(b, "fig7g")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cellFloat(b, t, last, len(t.Columns)-1), "norm-overhead-max-partitions-%")
}

func BenchmarkFig7hControlTraffic(b *testing.B) {
	tables := runExperiment(b, "fig7h")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cellFloat(b, t, 0, 1), "traffic-1-controller")
	b.ReportMetric(cellFloat(b, t, last, 1), "traffic-max-controllers")
}

func BenchmarkAblationBrokerVsSDN(b *testing.B) {
	tables := runExperiment(b, "abl-broker")
	t := tables[0]
	b.ReportMetric(cellFloat(b, t, 0, 1), "pleroma-delay-ns")
	b.ReportMetric(cellFloat(b, t, 1, 1), "broker-delay-ns")
}

func BenchmarkAblationTreeStrategy(b *testing.B) {
	tables := runExperiment(b, "abl-trees")
	t := tables[0]
	b.ReportMetric(cellFloat(b, t, 0, 2), "single-tree-max-link-pkts")
	b.ReportMetric(cellFloat(b, t, 1, 2), "multi-tree-max-link-pkts")
}

func BenchmarkAblationCoveringForwarding(b *testing.B) {
	tables := runExperiment(b, "abl-cover")
	t := tables[0]
	b.ReportMetric(cellFloat(b, t, 0, 1), "messages-covering-on")
	b.ReportMetric(cellFloat(b, t, 1, 1), "messages-covering-off")
}

// --- end-to-end micro-benchmarks of the public API ---

func BenchmarkSystemSubscribe(b *testing.B) {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "a", Bits: 10},
		pleroma.Attribute{Name: "b", Bits: 10},
	)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := pleroma.NewSystem(sch)
	if err != nil {
		b.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		b.Fatal(err)
	}
	if err := pub.Advertise(pleroma.NewFilter()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := "s" + strconv.Itoa(i)
		lo := uint32(i % 900)
		if err := sys.Subscribe(id, hosts[1+i%7],
			pleroma.NewFilter().Range("a", lo, lo+100), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemPublishDeliver(b *testing.B) {
	benchPublishDeliver(b)
}

// BenchmarkSystemPublishDeliverObs is the same workload with the
// observability layer enabled; the delta against the plain benchmark is
// the hot-path instrumentation overhead (recorded in benchmarks/obs.txt).
func BenchmarkSystemPublishDeliverObs(b *testing.B) {
	benchPublishDeliver(b, pleroma.WithObservability(0))
}

func benchPublishDeliver(b *testing.B, opts ...pleroma.Option) {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "a", Bits: 10},
		pleroma.Attribute{Name: "b", Bits: 10},
	)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := pleroma.NewSystem(sch, opts...)
	if err != nil {
		b.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		b.Fatal(err)
	}
	if err := pub.Advertise(pleroma.NewFilter()); err != nil {
		b.Fatal(err)
	}
	delivered := 0
	for i := 1; i < 8; i++ {
		if err := sys.Subscribe("s"+strconv.Itoa(i), hosts[i],
			pleroma.NewFilter(), func(pleroma.Delivery) { delivered++ }); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish(uint32(i%1024), uint32((i*7)%1024)); err != nil {
			b.Fatal(err)
		}
		sys.Run()
	}
	if delivered == 0 {
		b.Fatal("no deliveries")
	}
}

// BenchmarkSystemPublishDeliverFatTree8 is the parallel-engine speedup
// benchmark: a k=8-style fat-tree (40 switches, 32 hosts, all of them
// subscribed) with 8 publishers bursting batches into a full fan-out. The
// shard count tracks GOMAXPROCS, so sweeping `-cpu 1,2,4,8` sweeps the
// engine from the classic single-shard path (-cpu 1) to 8-way parallel
// windows; ns/op at -cpu 1 over ns/op at -cpu N is the speedup
// (`make bench-parallel` records the sweep in benchmarks/parallel.txt).
func BenchmarkSystemPublishDeliverFatTree8(b *testing.B) {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "a", Bits: 10},
		pleroma.Attribute{Name: "b", Bits: 10},
	)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := pleroma.NewSystem(sch,
		pleroma.WithFatTree(8, 8, 2),
		pleroma.WithShards(runtime.GOMAXPROCS(0)))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	hosts := sys.Hosts()
	var delivered atomic.Uint64 // handlers run on shard workers
	for i, h := range hosts {
		if err := sys.Subscribe("s"+strconv.Itoa(i), h,
			pleroma.NewFilter(), func(pleroma.Delivery) { delivered.Add(1) }); err != nil {
			b.Fatal(err)
		}
	}
	const numPubs = 8
	const batch = 16
	var pubs []*pleroma.Publisher
	for i := 0; i < numPubs; i++ {
		// Spread publishers across pods so bursts traverse the core.
		pub, err := sys.NewPublisher("p"+strconv.Itoa(i), hosts[(i*5)%len(hosts)])
		if err != nil {
			b.Fatal(err)
		}
		if err := pub.Advertise(pleroma.NewFilter()); err != nil {
			b.Fatal(err)
		}
		pubs = append(pubs, pub)
	}
	tuples := make([][]uint32, batch)
	for j := range tuples {
		tuples[j] = []uint32{uint32(j * 61 % 1024), uint32(j * 97 % 1024)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pub := range pubs {
			if err := pub.PublishBatch(tuples...); err != nil {
				b.Fatal(err)
			}
		}
		sys.Run()
	}
	b.StopTimer()
	if delivered.Load() == 0 {
		b.Fatal("no deliveries")
	}
	b.ReportMetric(float64(numPubs*batch), "events/op")
	b.ReportMetric(float64(delivered.Load())/float64(b.N), "deliveries/op")
}

// BenchmarkSystemPublishBatch is the batched-ingestion counterpart of
// BenchmarkSystemPublishDeliver: same fanout workload, events injected 16
// per PublishBatch call. ns/op and allocs/op are per event.
func BenchmarkSystemPublishBatch(b *testing.B) {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "a", Bits: 10},
		pleroma.Attribute{Name: "b", Bits: 10},
	)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := pleroma.NewSystem(sch)
	if err != nil {
		b.Fatal(err)
	}
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		b.Fatal(err)
	}
	if err := pub.Advertise(pleroma.NewFilter()); err != nil {
		b.Fatal(err)
	}
	delivered := 0
	for i := 1; i < 8; i++ {
		if err := sys.Subscribe("s"+strconv.Itoa(i), hosts[i],
			pleroma.NewFilter(), func(pleroma.Delivery) { delivered++ }); err != nil {
			b.Fatal(err)
		}
	}
	const batch = 16
	pool := make([][][]uint32, 64)
	for i := range pool {
		pool[i] = make([][]uint32, batch)
		for j := range pool[i] {
			k := i*batch + j
			pool[i][j] = []uint32{uint32(k % 1024), uint32((k * 7) % 1024)}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		if err := pub.PublishBatch(pool[(i/batch)%len(pool)]...); err != nil {
			b.Fatal(err)
		}
		sys.Run()
	}
	if delivered == 0 {
		b.Fatal("no deliveries")
	}
}

func BenchmarkAblationMergeThreshold(b *testing.B) {
	tables := runExperiment(b, "abl-merge")
	t := tables[0]
	b.ReportMetric(cellFloat(b, t, 0, 3), "flow-ops-single-tree")
	b.ReportMetric(cellFloat(b, t, len(t.Rows)-1, 3), "flow-ops-unlimited")
}

func BenchmarkAblationFlowBudget(b *testing.B) {
	tables := runExperiment(b, "abl-flows")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cellFloat(b, t, 0, 2), "flows-tightest-budget")
	b.ReportMetric(cellFloat(b, t, last, 2), "flows-loosest-budget")
	b.ReportMetric(cellFloat(b, t, last, 4), "fpr-loosest-%")
}

func BenchmarkExtActivationLatency(b *testing.B) {
	tables := runExperiment(b, "ext-activation")
	t := tables[0]
	b.ReportMetric(cellFloat(b, t, len(t.Rows)-1, 1), "activation-mean-ns")
}
