package pleroma

import (
	"testing"

	"pleroma/internal/topo"
)

// engineVariants runs a scenario against both the classic single-engine
// System and a sharded one: failure handling must not depend on which
// simulation engine drives the network.
func engineVariants(t *testing.T, scenario func(t *testing.T, opts ...Option)) {
	t.Helper()
	t.Run("single", func(t *testing.T) { scenario(t) })
	t.Run("shards4", func(t *testing.T) { scenario(t, WithShards(4)) })
}

// failoverFixture: a testbed fat-tree System with one publisher streaming
// to one subscriber across pods, so the path crosses aggregation and core
// switches with redundant alternatives.
func failoverFixture(t *testing.T, opts ...Option) (*System, *Publisher, *int) {
	t.Helper()
	sch, err := NewSchema(Attribute{Name: "v", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := new(int)
	if err := sys.Subscribe("s", hosts[7], NewFilter(), func(Delivery) { *count++ }); err != nil {
		t.Fatal(err)
	}
	return sys, pub, count
}

// pathSwitchLinks returns the switch-switch links currently carrying
// traffic between publisher and subscriber (identified by probing).
func usedSwitchLinks(t *testing.T, sys *System) []*topo.Link {
	t.Helper()
	var used []*topo.Link
	for _, l := range sys.g.Links() {
		na, _ := sys.g.Node(l.A)
		nb, _ := sys.g.Node(l.B)
		if na.Kind != topo.KindSwitch || nb.Kind != topo.KindSwitch {
			continue
		}
		if ls := sys.dp.LinkStatsFor(l); ls != nil {
			for _, c := range ls.Packets {
				if c > 0 {
					used = append(used, l)
					break
				}
			}
		}
	}
	return used
}

func TestFailLinkReroutesTraffic(t *testing.T) {
	engineVariants(t, failLinkReroutesTraffic)
}

func failLinkReroutesTraffic(t *testing.T, opts ...Option) {
	sys, pub, count := failoverFixture(t, opts...)

	if err := pub.Publish(100); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if *count != 1 {
		t.Fatalf("baseline delivery failed: %d", *count)
	}

	// Fail every switch-switch link the flow currently uses, one at a
	// time, verifying the controller reroutes around each.
	used := usedSwitchLinks(t, sys)
	if len(used) == 0 {
		t.Fatal("no switch-switch links in use")
	}
	l := used[0]
	if err := sys.FailLink(l.A, l.B); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(200); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if *count != 2 {
		t.Fatalf("delivery after link failure: %d, want 2", *count)
	}

	// Restoring the link keeps everything working.
	if err := sys.RestoreLink(l.A, l.B); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(300); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if *count != 3 {
		t.Fatalf("delivery after restore: %d, want 3", *count)
	}
}

func TestFailLinkValidation(t *testing.T) {
	sys, _, _ := failoverFixture(t)
	hosts := sys.Hosts()
	if err := sys.FailLink(hosts[0], hosts[7]); err == nil {
		t.Error("failing a non-existent link must fail")
	}
	if got := len(sys.Switches()); got != 10 {
		t.Errorf("Switches=%d, want 10", got)
	}
}

func TestFailAccessLinkDisconnectsSubscriber(t *testing.T) {
	sys, pub, count := failoverFixture(t)
	hosts := sys.Hosts()
	sw, err := sys.g.AttachedSwitch(hosts[7])
	if err != nil {
		t.Fatal(err)
	}
	// Failing the subscriber's only access link makes its paths
	// unroutable: the rebuild must surface an error rather than silently
	// blackholing.
	if err := sys.FailLink(hosts[7], sw); err == nil {
		t.Fatal("rebuilding with an unreachable subscriber must fail")
	}
	// The publisher side still works for other subscribers after restore.
	if err := sys.RestoreLink(hosts[7], sw); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(5); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if *count != 1 {
		t.Errorf("delivery after restore: %d", *count)
	}
}

func TestFailLinkUnderChurn(t *testing.T) {
	engineVariants(t, failLinkUnderChurn)
}

func failLinkUnderChurn(t *testing.T, opts ...Option) {
	// The soak-style check: exact delivery continues across repeated
	// fail/restore cycles of core links.
	sys, pub, count := failoverFixture(t, opts...)
	var coreLinks []*topo.Link
	for _, l := range sys.g.Links() {
		na, _ := sys.g.Node(l.A)
		nb, _ := sys.g.Node(l.B)
		if na.Kind == topo.KindSwitch && nb.Kind == topo.KindSwitch {
			coreLinks = append(coreLinks, l)
		}
	}
	want := 0
	for i, l := range coreLinks {
		if err := sys.FailLink(l.A, l.B); err != nil {
			t.Fatalf("fail link %d: %v", i, err)
		}
		if err := pub.Publish(uint32(i)); err != nil {
			t.Fatal(err)
		}
		sys.Run()
		want++
		if *count != want {
			t.Fatalf("after failing link %d: deliveries=%d, want %d", i, *count, want)
		}
		if err := sys.RestoreLink(l.A, l.B); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBorderLinkFailureReroutesAroundRing(t *testing.T) {
	engineVariants(t, borderLinkFailureReroutesAroundRing)
}

func borderLinkFailureReroutesAroundRing(t *testing.T, opts ...Option) {
	// Four partitions in a ring: failing the border between the
	// publisher's and the subscriber's partitions must push traffic the
	// long way around.
	sch, err := NewSchema(Attribute{Name: "v", Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithTopology(TopologyRing20), WithPartitions(4)}, opts...)
	sys, err := NewSystem(sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	hosts := sys.Hosts()
	pub, err := sys.NewPublisher("p", hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Advertise(NewFilter()); err != nil {
		t.Fatal(err)
	}
	count := 0
	// hosts[6] sits in partition 1 (5 hosts per partition).
	if err := sys.Subscribe("s", hosts[6], NewFilter(), func(Delivery) { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(1); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if count != 1 {
		t.Fatalf("baseline: %d", count)
	}

	// Fail every border link between partition 0 and partition 1.
	failed := 0
	for _, l := range sys.Links() {
		na, _ := sys.g.Node(l.A)
		nb, _ := sys.g.Node(l.B)
		if na.Kind != topo.KindSwitch || nb.Kind != topo.KindSwitch {
			continue
		}
		pa, pb := sys.g.Partition(l.A), sys.g.Partition(l.B)
		if (pa == 0 && pb == 1) || (pa == 1 && pb == 0) {
			if err := sys.FailLink(l.A, l.B); err != nil {
				t.Fatal(err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no border link between partitions 0 and 1 found")
	}

	if err := pub.Publish(2); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if count != 2 {
		t.Fatalf("delivery after border failure: %d, want 2 (rerouted around the ring)", count)
	}
	st := sys.Stats()
	if st.Partitions != 4 {
		t.Fatalf("partitions=%d", st.Partitions)
	}
}
