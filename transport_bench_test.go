package pleroma_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pleroma"
)

// BenchmarkTransportPublishDeliver measures the loopback-TCP data path
// end to end: a dialed client publishes b.N events into a daemonized
// system and a whole-space subscription receives every one of them, with
// Run+Sync barriers every benchChunk events. The baseline sub-benchmark
// pays one request/response round trip per event (the pre-pipeline
// transport); the pipelined sub-benchmarks drive the windowed async path,
// swept over window size and coalescing threshold. ns/op and allocs/op
// are per event; `make bench-transport` records the sweep in
// benchmarks/transport.txt.
func BenchmarkTransportPublishDeliver(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		// The pre-pipeline protocol: one request/response round trip per
		// Publish and one KindDeliver frame per delivery (NoBatching).
		benchTransport(b,
			[]pleroma.DialOption{pleroma.WithDialTransport(pleroma.TransportOptions{NoBatching: true})},
			func(c *pleroma.Client, i int) error {
				return c.Publish("p", uint32(i%1024), uint32((i*7)%1024))
			}, nil)
	})
	for _, cfg := range []struct{ window, batch int }{
		{8, 16},
		{32, 64},
		{128, 256},
	} {
		opts := pleroma.TransportOptions{Window: cfg.window, BatchEvents: cfg.batch}
		b.Run(fmt.Sprintf("pipelined/window=%d,batch=%d", cfg.window, cfg.batch), func(b *testing.B) {
			benchTransport(b,
				[]pleroma.DialOption{pleroma.WithDialTransport(opts)},
				func(c *pleroma.Client, i int) error {
					return c.PublishAsync("p", uint32(i%1024), uint32((i*7)%1024))
				},
				func(c *pleroma.Client) error { return c.Flush() })
		})
	}
}

// benchChunk is the events-per-barrier granularity: both paths pay the
// same simulation and delivery cost per chunk, so the sub-benchmark deltas
// isolate the transport data path.
const benchChunk = 1024

func benchTransport(b *testing.B, dialOpts []pleroma.DialOption, publish func(*pleroma.Client, int) error, flush func(*pleroma.Client) error) {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "a", Bits: 10},
		pleroma.Attribute{Name: "b", Bits: 10},
	)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := pleroma.NewSystem(sch, pleroma.WithListener("127.0.0.1:0"))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	c, err := pleroma.Dial(sys.ListenAddr(), dialOpts...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	hosts := c.Hosts()
	var delivered atomic.Uint64
	if err := c.Subscribe("s", hosts[0], pleroma.NewFilter(), func(pleroma.Delivery) {
		delivered.Add(1)
	}); err != nil {
		b.Fatal(err)
	}
	if err := c.Advertise("p", hosts[0], pleroma.NewFilter()); err != nil {
		b.Fatal(err)
	}
	barrier := func() {
		if flush != nil {
			if err := flush(c); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
		if err := c.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := publish(c, i); err != nil {
			b.Fatal(err)
		}
		if (i+1)%benchChunk == 0 {
			barrier()
		}
	}
	barrier()
	b.StopTimer()
	if got := delivered.Load(); got != uint64(b.N) {
		b.Fatalf("delivered %d of %d events", got, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
