package pleroma

import (
	"fmt"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/space"
)

// projection is the active dimension selection Ω_D: spatial indexing runs
// over the projected schema while ground-truth matching keeps using the
// full event space.
type projection struct {
	dims []int
	sch  *space.Schema
}

// project maps a full-space rectangle into the selected dimensions.
func (p *projection) rect(r dz.Rect) dz.Rect {
	out := make(dz.Rect, len(p.dims))
	for i, d := range p.dims {
		out[i] = r[d]
	}
	return out
}

// indexSchema returns the schema spatial indexing currently runs on.
func (s *System) indexSchema() *Schema {
	if s.proj != nil {
		return s.proj.sch
	}
	return s.sch
}

// indexRect maps a rectangle into the active index space.
func (s *System) indexRect(r dz.Rect) dz.Rect {
	if s.proj != nil {
		return s.proj.rect(r)
	}
	return r
}

// indexEvent maps an event into the active index space.
func (s *System) indexEvent(ev Event) Event {
	if s.proj != nil {
		return ev.Project(s.proj.dims)
	}
	return ev
}

// ReindexDimensions runs the Section 5 pipeline end to end: it selects the
// most informative dimensions from the current subscriptions and the
// recent event window, then re-indexes the whole deployment over Ω_D —
// regenerating the DZ sets of every advertisement and subscription,
// reinstalling the flows, and switching future publications to the
// projected encoding (the controller's "notify publishers" step).
//
// Re-indexing concentrates the L_dz address budget on the dimensions that
// actually discriminate events, cutting false positives and flow-table
// pressure (Figures 7d/7e).
func (s *System) ReindexDimensions(threshold float64) (DimensionSelection, error) {
	sel, err := s.SelectDimensions(threshold)
	if err != nil {
		return DimensionSelection{}, err
	}
	if err := s.applyProjection(sel.Selected); err != nil {
		return DimensionSelection{}, err
	}
	return sel, nil
}

// ResetDimensions restores indexing over the full attribute set.
func (s *System) ResetDimensions() error {
	return s.applyProjection(nil)
}

// applyProjection swaps the active index space and re-registers every
// client with freshly decomposed DZ sets.
func (s *System) applyProjection(dims []int) error {
	if len(dims) == 0 {
		s.proj = nil
	} else {
		proj, err := s.sch.Project(dims)
		if err != nil {
			return err
		}
		s.proj = &projection{dims: append([]int(nil), dims...), sch: proj}
	}

	// Re-register advertisements in their original order.
	for _, id := range s.pubOrder {
		pub := s.pubs[id]
		if !pub.advertised {
			continue
		}
		if err := s.fab.Unadvertise(id); err != nil {
			return fmt.Errorf("pleroma: reindex advertisement %q: %w", id, err)
		}
		set, err := s.decomposeRect(pub.advRect)
		if err != nil {
			return err
		}
		if err := s.fab.Advertise(id, pub.host, set); err != nil {
			return fmt.Errorf("pleroma: reindex advertisement %q: %w", id, err)
		}
	}
	// Re-register subscriptions.
	for _, id := range s.subOrder {
		st, ok := s.subs[id]
		if !ok {
			continue
		}
		if err := s.fab.Unsubscribe(id); err != nil {
			return fmt.Errorf("pleroma: reindex subscription %q: %w", id, err)
		}
		set, err := s.decomposeRect(st.rect)
		if err != nil {
			return err
		}
		if err := s.fab.Subscribe(id, st.host, set); err != nil {
			return fmt.Errorf("pleroma: reindex subscription %q: %w", id, err)
		}
		st.set = set
	}
	return nil
}

// decomposeRect converts a full-space rectangle into the capped DZ set of
// the active index space.
func (s *System) decomposeRect(r dz.Rect) (dz.Set, error) {
	sch := s.indexSchema()
	maxLen := s.cfg.maxDzLen
	if m := sch.Geometry().MaxLen(); maxLen > m {
		maxLen = m
	}
	return sch.DecomposeRectLimited(s.indexRect(r), maxLen, s.cfg.maxSubs)
}

// WithAutoReindex makes the System repeat the Section 5 dimension
// selection periodically in simulated time: whenever events have been
// published, a timer fires after the interval and — if the window grew —
// re-runs SelectDimensions and re-indexes the deployment. This is the
// paper's "controller periodically collects information about the events
// disseminated in the recent time window and repeats the dimension
// selection process".
func WithAutoReindex(interval time.Duration, threshold float64) Option {
	return func(c *config) {
		c.reindexEvery = interval
		c.reindexThresh = threshold
	}
}

// maybeArmReindex schedules the next periodic re-selection; it is called
// on every publish so the timer only exists while traffic flows (keeping
// System.Run terminating).
func (s *System) maybeArmReindex() {
	if s.cfg.reindexEvery <= 0 || s.reindexArmed {
		return
	}
	s.reindexArmed = true
	s.eng.Schedule(s.cfg.reindexEvery, func() {
		s.reindexArmed = false
		if s.winTotal == s.reindexSeen {
			return // no new traffic since the last round
		}
		s.reindexSeen = s.winTotal
		if _, err := s.ReindexDimensions(s.cfg.reindexThresh); err == nil {
			s.reindexRounds++
		}
	})
}

// ReindexRounds reports how many automatic re-selections have run.
func (s *System) ReindexRounds() int { return s.reindexRounds }
