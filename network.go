package pleroma

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/transport"
	"pleroma/internal/wire"
)

// This file is the facade's networked deployment surface. WithListener
// serves a System's control ops, publishes, and southbound FlowMod
// surface over TCP (internal/transport), so publisher and subscriber
// processes — and even a remote controller — can live outside the
// daemon's process. Dial returns the matching thin client. The emulator
// stays the default backend behind the same interfaces: a System without
// WithListener behaves exactly as before.

// WithListener makes the system serve its control and southbound
// surfaces on a TCP address (e.g. "127.0.0.1:0"); ListenAddr reports the
// bound address. Remote clients (Dial, cmd/pleroma-pub, cmd/pleroma-sub)
// then drive the same deployment an in-process caller would.
func WithListener(addr string) Option {
	return func(c *config) { c.listenAddr = addr }
}

// TransportOptions tunes the TCP data path on either end: read/write
// deadlines, the async publish window, publish coalescing thresholds, and
// the NoBatching legacy switch. The zero value selects the transport
// defaults.
type TransportOptions = transport.Options

// WithTransport tunes the listener's transport data path (deadlines,
// delivery batching). Meaningful only together with WithListener.
func WithTransport(o TransportOptions) Option {
	return func(c *config) { c.transport = o }
}

// WithJournalDir enables controller HA like WithJournal, but with every
// partition journal file-backed under dir (core.FileJournal), so control
// state survives a daemon restart: on boot, Recover rebuilds each
// partition from an optional snapshot plus the journal suffix on disk.
func WithJournalDir(dir string) Option {
	return func(c *config) {
		c.journal = true
		c.journalDir = dir
	}
}

// JournalPath names partition p's journal file under dir — the layout
// WithJournalDir uses.
func JournalPath(dir string, p int) string {
	return filepath.Join(dir, fmt.Sprintf("part-%d.journal", p))
}

// SnapshotPath names partition p's snapshot file under dir — the
// convention pleroma-d uses for restart-with-state.
func SnapshotPath(dir string, p int) string {
	return filepath.Join(dir, fmt.Sprintf("part-%d.snap", p))
}

// StopListener gracefully stops serving the TCP surface: no new
// connections are accepted, in-flight requests finish, queued deliveries
// flush, and every client receives a goodbye frame. Idempotent; Close
// implies it. A daemon shutting down calls this before its final
// Snapshot so no request races the serialization.
func (s *System) StopListener() {
	if s.server != nil {
		s.server.Stop()
	}
}

// ListenAddr returns the bound listener address ("" without
// WithListener).
func (s *System) ListenAddr() string {
	if s.lnAddr == nil {
		return ""
	}
	return s.lnAddr.String()
}

// StateDigest returns the deterministic digest of the whole control
// plane: the per-partition snapshot digests concatenated in ascending
// partition order. Two systems that processed equivalent control
// operations produce identical digests, which is how the loopback
// equivalence and reconnect tests compare an in-process run against a
// TCP-deployed one.
func (s *System) StateDigest() ([]byte, error) {
	var out []byte
	for _, p := range s.fab.Partitions() {
		d, err := s.fab.DigestPartition(p)
		if err != nil {
			return nil, err
		}
		out = append(out, d...)
	}
	return out, nil
}

// Recover rebuilds the partition's controller from a persisted snapshot
// (nil for journal-only recovery) plus the partition journal's suffix —
// the daemon's restart-with-state path. Requires WithJournal or
// WithJournalDir.
func (s *System) Recover(partition int, snap []byte) (FailoverReport, error) {
	if !s.cfg.journal {
		return FailoverReport{}, fmt.Errorf("pleroma: Recover requires WithJournal or WithJournalDir")
	}
	return s.fab.RecoverPartition(partition, snap)
}

// StartListener begins serving the TCP surface on addr for a System built
// without WithListener and returns the bound address. This is the
// recovery-safe construction order for a daemon: build the System,
// Recover every partition, then open the listener — no client request can
// race the controller swap. Serving an already-listening System is an
// error.
func (s *System) StartListener(addr string) (string, error) {
	if s.server != nil {
		return "", fmt.Errorf("pleroma: listener already started on %s", s.ListenAddr())
	}
	if err := s.startListener(addr); err != nil {
		return "", err
	}
	return s.ListenAddr(), nil
}

// PersistSnapshot durably persists partition's snapshot under dir and
// only then compacts the partition journal. The write is crash-safe:
// snapshot bytes go to a temp file which is fsynced, renamed over
// SnapshotPath(dir, partition), and the directory fsynced, before a
// single journal record is truncated — so at every instant either the
// journal still holds the acknowledged ops or the snapshot covering them
// is durable. Requires WithJournal or WithJournalDir.
func (s *System) PersistSnapshot(partition int, dir string) error {
	if !s.cfg.journal {
		return fmt.Errorf("pleroma: PersistSnapshot requires WithJournal or WithJournalDir")
	}
	snap, seq, err := s.fab.EncodeSnapshotPartition(partition)
	if err != nil {
		return err
	}
	path := SnapshotPath(dir, partition)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	d.Close()
	return s.fab.CompactPartition(partition, seq)
}

// startListener builds the transport backend and starts serving.
func (s *System) startListener(addr string) error {
	s.enableStamping()
	opts := []transport.ServerOption{transport.WithServerOptions(s.cfg.transport)}
	if s.reg != nil {
		opts = append(opts, transport.WithServerObservability(s.reg))
	}
	if s.tracer != nil {
		opts = append(opts, transport.WithServerTracer(s.tracer))
	}
	srv := transport.NewServer(&netBackend{
		sys:  s,
		advs: make(map[string]netReg),
		subs: make(map[string]netReg),
	}, opts...)
	a, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	s.server = srv
	s.lnAddr = a
	return nil
}

// netReg records one remote registration for idempotence checks: a
// reconnecting client replays its advertisements and subscriptions, and
// an identical replay must rebind without touching control state.
// lastPubSeq is the highest client publish sequence number applied through
// this advertisement — a retried publish with a Seq at or below it has
// already been applied and is acknowledged without re-injecting events.
type netReg struct {
	host       uint32
	key        string
	pub        *Publisher
	lastPubSeq uint64
}

// regKey canonicalizes a registration's parameters. ControlReq ranges
// arrive sorted by attribute (the codec enforces it), so the rendering is
// deterministic.
func regKey(host uint32, ranges []wire.Range) string {
	var b strings.Builder
	fmt.Fprintf(&b, "h%d", host)
	for _, r := range ranges {
		fmt.Fprintf(&b, "|%s:%d-%d", r.Attr, r.Lo, r.Hi)
	}
	return b.String()
}

func rangesFilter(ranges []wire.Range) Filter {
	f := NewFilter()
	for _, r := range ranges {
		f = f.Range(r.Attr, r.Lo, r.Hi)
	}
	return f
}

// netBackend adapts a System as the transport Backend. The transport
// server serializes calls, matching the System's single-goroutine
// contract; subscription handlers convert deliveries to wire form and
// push them onto the owning connection's write queue (safe from shard
// worker goroutines — the sink never blocks).
type netBackend struct {
	sys  *System
	advs map[string]netReg
	subs map[string]netReg
}

func (b *netBackend) Info() transport.Info {
	hosts := b.sys.Hosts()
	info := transport.Info{Hosts: make([]uint32, len(hosts))}
	for i, h := range hosts {
		info.Hosts[i] = uint32(h)
	}
	for _, p := range b.sys.fab.Partitions() {
		info.Partitions = append(info.Partitions, int32(p))
	}
	return info
}

func (b *netBackend) Control(req wire.ControlReq, deliver func(wire.Delivery)) error {
	switch req.Op {
	case "advertise":
		key := regKey(req.Host, req.Ranges)
		if e, ok := b.advs[req.ID]; ok {
			if e.key == key {
				return nil // reconnect replay: idempotent
			}
			return fmt.Errorf("pleroma: advertisement %q re-registered with different parameters", req.ID)
		}
		pub, err := b.sys.NewPublisher(req.ID, HostID(req.Host))
		if err != nil {
			return err
		}
		if err := pub.Advertise(rangesFilter(req.Ranges)); err != nil {
			delete(b.sys.pubs, req.ID)
			return err
		}
		b.advs[req.ID] = netReg{host: req.Host, key: key, pub: pub}
		return nil

	case "subscribe":
		if deliver == nil {
			return fmt.Errorf("pleroma: subscribe without a delivery sink")
		}
		h := func(d Delivery) {
			deliver(wire.Delivery{
				SubscriptionID: d.SubscriptionID,
				Event:          d.Event,
				At:             d.At,
				Latency:        d.Latency,
				FalsePositive:  d.FalsePositive,
				Hops:           uint16(d.Hops),
				Trace: wire.TraceContext{
					TraceID:      d.TraceID,
					SpanID:       d.SpanID,
					PubWallNanos: d.PubWallNanos,
				},
			})
		}
		key := regKey(req.Host, req.Ranges)
		if e, ok := b.subs[req.ID]; ok {
			if e.key != key {
				return fmt.Errorf("pleroma: subscription %q re-registered with different parameters", req.ID)
			}
			// Reconnect replay: rebind the delivery sink to the new
			// connection; control state, journal, and digest untouched.
			b.sys.subs[req.ID].handler = h
			return nil
		}
		if err := b.sys.Subscribe(req.ID, HostID(req.Host), rangesFilter(req.Ranges), h); err != nil {
			return err
		}
		b.subs[req.ID] = netReg{host: req.Host, key: key}
		return nil

	case "unsubscribe":
		if _, ok := b.subs[req.ID]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownSubscription, req.ID)
		}
		if err := b.sys.Unsubscribe(req.ID); err != nil {
			return err
		}
		delete(b.subs, req.ID)
		return nil

	case "unadvertise":
		e, ok := b.advs[req.ID]
		if !ok {
			return fmt.Errorf("pleroma: unknown advertisement %q", req.ID)
		}
		if err := e.pub.Unadvertise(); err != nil {
			return err
		}
		delete(b.advs, req.ID)
		return nil

	default:
		return fmt.Errorf("pleroma: unknown control op %q", req.Op)
	}
}

func (b *netBackend) Publish(req wire.PublishReq) error {
	e, ok := b.advs[req.ID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotAdvertised, req.ID)
	}
	// The client's transport retry is at-least-once: a connection lost
	// after the backend applied a publish but before the OK arrived makes
	// the client re-send the same request. Sequence numbers (per client,
	// strictly increasing per publisher) make the retry idempotent.
	if req.Seq != 0 && req.Seq <= e.lastPubSeq {
		return nil // duplicate of an already-applied publish
	}
	tuples := make([][]uint32, len(req.Events))
	for i, ev := range req.Events {
		tuples[i] = ev.Values
	}
	// The request's trace context (when the connection negotiated tracing)
	// rides the publication stamp so every delivery joins the client's
	// trace; the whole batch shares one publish span.
	if err := e.pub.publishBatchTraced(req.Trace, tuples...); err != nil {
		return err
	}
	if req.Seq != 0 {
		e.lastPubSeq = req.Seq
		b.advs[req.ID] = e
	}
	return nil
}

func (b *netBackend) Run() (time.Duration, error) { return b.sys.Run(), nil }

func (b *netBackend) Digest() ([]byte, error) { return b.sys.StateDigest() }

func (b *netBackend) ApplyFlowBatch(sw uint32, ops []openflow.FlowOp) ([]openflow.FlowID, error) {
	return b.sys.dp.ApplyBatch(topo.NodeID(sw), ops)
}

func (b *netBackend) Flows(sw uint32) ([]openflow.Flow, error) {
	return b.sys.dp.Flows(topo.NodeID(sw))
}

// ParseFilter parses the CLI filter syntax "attr:lo-hi,attr:lo-hi"
// ("" yields the match-everything filter) used by cmd/pleroma-pub and
// cmd/pleroma-sub.
func ParseFilter(s string) (Filter, error) {
	f := NewFilter()
	if s == "" {
		return f, nil
	}
	for _, part := range strings.Split(s, ",") {
		attr, bounds, ok := strings.Cut(part, ":")
		if !ok {
			return Filter{}, fmt.Errorf("pleroma: filter term %q: want attr:lo-hi", part)
		}
		loStr, hiStr, ok := strings.Cut(bounds, "-")
		if !ok {
			return Filter{}, fmt.Errorf("pleroma: filter term %q: want attr:lo-hi", part)
		}
		lo, err := strconv.ParseUint(loStr, 10, 32)
		if err != nil {
			return Filter{}, fmt.Errorf("pleroma: filter term %q: %w", part, err)
		}
		hi, err := strconv.ParseUint(hiStr, 10, 32)
		if err != nil {
			return Filter{}, fmt.Errorf("pleroma: filter term %q: %w", part, err)
		}
		f = f.Range(attr, uint32(lo), uint32(hi))
	}
	return f, nil
}

// DialOption configures a Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	id        string
	retry     *RetryPolicy
	obs       bool
	traceCap  int
	transport *TransportOptions
}

// WithDialID names the client in its handshake (diagnostics only).
func WithDialID(id string) DialOption { return func(c *dialConfig) { c.id = id } }

// WithDialObservability gives the client its own metrics registry and
// tracer (traceCapacity spans, 0 for the default): transport counters,
// the client-side wall-clock delivery-latency histogram, and — when the
// daemon negotiates the tracing capability — one distributed trace per
// publish, spanning this client, the daemon, and every delivery.
func WithDialObservability(traceCapacity int) DialOption {
	return func(c *dialConfig) {
		c.obs = true
		c.traceCap = traceCapacity
	}
}

// WithDialRetry sets the client's reconnect/backoff policy (default
// DefaultRetryPolicy). After a lost connection the client redials with
// capped exponential backoff and replays its advertisements and
// subscriptions before retrying the interrupted request.
func WithDialRetry(p RetryPolicy) DialOption { return func(c *dialConfig) { c.retry = &p } }

// WithDialTransport tunes the client's transport data path: deadlines,
// the PublishAsync window and coalescing thresholds, and the NoBatching
// legacy switch.
func WithDialTransport(o TransportOptions) DialOption {
	return func(c *dialConfig) { c.transport = &o }
}

// Client is a remote handle on a listening System (a pleroma-d daemon):
// the same advertise/subscribe/publish/run surface, spoken over TCP.
type Client struct {
	tc     *transport.Client
	reg    *obs.Registry
	tracer *obs.Tracer
}

// Dial connects to a daemon at addr.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{id: "pleroma-client"}
	for _, opt := range opts {
		opt(&cfg)
	}
	topts := []transport.ClientOption{transport.WithClientID(cfg.id)}
	if cfg.retry != nil {
		topts = append(topts, transport.WithClientRetry(*cfg.retry))
	}
	if cfg.transport != nil {
		topts = append(topts, transport.WithClientOptions(*cfg.transport))
	}
	c := &Client{}
	if cfg.obs {
		cap := cfg.traceCap
		if cap <= 0 {
			cap = defaultTraceCapacity
		}
		c.reg = obs.NewRegistry()
		c.tracer = obs.NewTracer(cap)
		topts = append(topts,
			transport.WithClientObservability(c.reg),
			transport.WithClientTracer(c.tracer))
	}
	tc, err := transport.Dial(addr, topts...)
	if err != nil {
		return nil, err
	}
	c.tc = tc
	return c, nil
}

// Metrics snapshots the client's own registry (zero without
// WithDialObservability).
func (c *Client) Metrics() MetricsSnapshot {
	if c.reg == nil {
		return MetricsSnapshot{}
	}
	return c.reg.Snapshot()
}

// Traces returns the client's recorded spans, oldest first (nil without
// WithDialObservability).
func (c *Client) Traces() []*TraceSpan {
	if c.tracer == nil {
		return nil
	}
	return c.tracer.Spans()
}

// TraceByID returns the client-side spans of one distributed trace; the
// daemon holds the matching server-side spans under the same id.
func (c *Client) TraceByID(id uint64) []*TraceSpan {
	if c.tracer == nil {
		return nil
	}
	return c.tracer.SpansByTrace(id)
}

// Hosts returns the daemon deployment's end hosts.
func (c *Client) Hosts() []HostID {
	info := c.tc.Info()
	hosts := make([]HostID, len(info.Hosts))
	for i, h := range info.Hosts {
		hosts[i] = HostID(h)
	}
	return hosts
}

// Partitions returns the daemon deployment's partition ids.
func (c *Client) Partitions() []int {
	info := c.tc.Info()
	parts := make([]int, len(info.Partitions))
	for i, p := range info.Partitions {
		parts[i] = int(p)
	}
	return parts
}

// filterRanges renders a Filter as sorted wire ranges.
func filterRanges(f Filter) []wire.Range {
	attrs := make([]string, 0, len(f.Ranges))
	for a := range f.Ranges {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	out := make([]wire.Range, len(attrs))
	for i, a := range attrs {
		r := f.Ranges[a]
		out[i] = wire.Range{Attr: a, Lo: r[0], Hi: r[1]}
	}
	return out
}

// Advertise announces a publisher's region on a host.
func (c *Client) Advertise(id string, host HostID, f Filter) error {
	return c.tc.Advertise(id, uint32(host), filterRanges(f))
}

// Unadvertise withdraws an advertisement.
func (c *Client) Unadvertise(id string) error { return c.tc.Unadvertise(id) }

// Subscribe registers a subscription; handler fires on the client's
// network reader goroutine for every delivered event.
func (c *Client) Subscribe(id string, host HostID, f Filter, handler func(Delivery)) error {
	var wh func(wire.Delivery)
	if handler != nil {
		wh = func(d wire.Delivery) {
			fd := Delivery{
				SubscriptionID: d.SubscriptionID,
				Event:          d.Event,
				At:             d.At,
				Latency:        d.Latency,
				FalsePositive:  d.FalsePositive,
				Hops:           int(d.Hops),
				TraceID:        d.Trace.TraceID,
				SpanID:         d.Trace.SpanID,
				PubWallNanos:   d.Trace.PubWallNanos,
			}
			if d.Trace.PubWallNanos != 0 {
				// Client-side wall latency: the echoed publish stamp is in
				// this process's clock domain when this client published,
				// so the subtraction is skew-free for self-subscriptions.
				fd.WallLatency = time.Duration(time.Now().UnixNano() - d.Trace.PubWallNanos)
			}
			handler(fd)
		}
	}
	return c.tc.Subscribe(id, uint32(host), filterRanges(f), wh)
}

// Unsubscribe withdraws a subscription.
func (c *Client) Unsubscribe(id string) error { return c.tc.Unsubscribe(id) }

// Publish injects one event from the advertised publisher id.
func (c *Client) Publish(id string, values ...uint32) error {
	return c.tc.Publish(id, []space.Event{{Values: values}})
}

// PublishBatch injects a burst of events in one request.
func (c *Client) PublishBatch(id string, tuples ...[]uint32) error {
	if len(tuples) == 0 {
		return nil
	}
	events := make([]space.Event, len(tuples))
	for i, vals := range tuples {
		events[i] = space.Event{Values: vals}
	}
	return c.tc.Publish(id, events)
}

// PublishAsync injects one event into the pipelined publish path: events
// coalesce into multi-event requests and up to a window of them stay in
// flight without waiting for acks. It blocks only when the window is full
// (backpressure); failures are sticky and surface here, on Flush, or on
// Err. Call Flush before relying on the events being applied.
func (c *Client) PublishAsync(id string, values ...uint32) error {
	return c.tc.PublishAsync(id, []space.Event{{Values: values}})
}

// PublishBatchAsync injects a burst of events into the pipelined publish
// path (see PublishAsync).
func (c *Client) PublishBatchAsync(id string, tuples ...[]uint32) error {
	if len(tuples) == 0 {
		return nil
	}
	events := make([]space.Event, len(tuples))
	for i, vals := range tuples {
		events[i] = space.Event{Values: vals}
	}
	return c.tc.PublishAsync(id, events)
}

// Flush seals pending async batches and blocks until every pipelined
// publish is acked (nil) or the pipeline failed (the sticky error).
func (c *Client) Flush() error { return c.tc.Flush() }

// AsyncErr returns the pipelined publish path's sticky error without
// blocking (nil while healthy).
func (c *Client) AsyncErr() error { return c.tc.Err() }

// Run drains the daemon's pending simulated work and returns the final
// simulated time.
func (c *Client) Run() (time.Duration, error) { return c.tc.Run() }

// Sync blocks until every delivery the daemon queued for this client
// before the call has been received and dispatched to its handler.
func (c *Client) Sync() error { return c.tc.Sync() }

// StateDigest returns the daemon's control-plane digest (see
// System.StateDigest).
func (c *Client) StateDigest() ([]byte, error) { return c.tc.Digest() }

// Close disconnects from the daemon. Registrations persist server-side.
func (c *Client) Close() error { return c.tc.Close() }
