// Stockticker: the latency-sensitive financial workload the paper's
// introduction motivates. Traders continuously adjust price thresholds —
// a highly dynamic subscription workload — while a ticker publishes
// quotes at a steady rate. The example measures delivery latency and the
// reconfiguration activity caused by threshold updates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pleroma"
	"pleroma/internal/metrics"
)

const (
	numTraders = 6
	rounds     = 8
	quotesPer  = 50
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "price", Bits: 10},
		pleroma.Attribute{Name: "volume", Bits: 10},
	)
	if err != nil {
		return err
	}
	sys, err := pleroma.NewSystem(sch)
	if err != nil {
		return err
	}
	hosts := sys.Hosts()
	r := rand.New(rand.NewSource(7))

	ticker, err := sys.NewPublisher("ticker", hosts[0])
	if err != nil {
		return err
	}
	if err := ticker.Advertise(pleroma.NewFilter()); err != nil {
		return err
	}

	lat := &metrics.Latency{}
	received := make([]int, numTraders)
	subscribe := func(trader int, gen int, lo, hi uint32) error {
		id := fmt.Sprintf("trader%d-gen%d", trader, gen)
		return sys.Subscribe(id, hosts[1+trader],
			pleroma.NewFilter().Range("price", lo, hi),
			func(d pleroma.Delivery) {
				received[trader]++
				lat.Add(d.Latency)
			})
	}

	// Initial thresholds.
	thresholds := make([][2]uint32, numTraders)
	for tr := 0; tr < numTraders; tr++ {
		lo := uint32(r.Intn(900))
		thresholds[tr] = [2]uint32{lo, lo + 100}
		if err := subscribe(tr, 0, lo, lo+100); err != nil {
			return err
		}
	}

	fmt.Printf("%-6s %-28s %s\n", "round", "re-subscriptions", "quotes delivered so far")
	for round := 0; round < rounds; round++ {
		// Publish a burst of quotes.
		for q := 0; q < quotesPer; q++ {
			price := uint32(r.Intn(1024))
			volume := uint32(r.Intn(1024))
			if err := ticker.Publish(price, volume); err != nil {
				return err
			}
			sys.RunFor(time.Millisecond)
		}
		sys.Run()

		// Every round, half the traders move their threshold — the
		// parametric-subscription dynamics of the introduction.
		moved := 0
		for tr := 0; tr < numTraders; tr++ {
			if r.Intn(2) == 0 {
				continue
			}
			oldID := fmt.Sprintf("trader%d-gen%d", tr, round)
			if err := sys.Unsubscribe(oldID); err != nil {
				// Trader did not move last round: try the prior gen ids.
				continue
			}
			lo := uint32(r.Intn(900))
			thresholds[tr] = [2]uint32{lo, lo + 100}
			if err := subscribe(tr, round+1, lo, lo+100); err != nil {
				return err
			}
			moved++
		}
		// Keep ids in sync: traders that did not move re-register under
		// the next generation so the id bookkeeping above stays simple.
		for tr := 0; tr < numTraders; tr++ {
			oldID := fmt.Sprintf("trader%d-gen%d", tr, round)
			if err := sys.Unsubscribe(oldID); err != nil {
				continue // already moved
			}
			if err := subscribe(tr, round+1, thresholds[tr][0], thresholds[tr][1]); err != nil {
				return err
			}
		}
		total := 0
		for _, c := range received {
			total += c
		}
		fmt.Printf("%-6d %-28s %d\n", round+1,
			fmt.Sprintf("%d traders moved thresholds", moved), total)
	}

	st := sys.Stats()
	fmt.Printf("\nmean delivery latency : %v (p99 %v over %d quotes)\n",
		lat.Mean(), lat.Percentile(0.99), lat.Count())
	fmt.Printf("flow mods (all rounds): %d\n", st.FlowMods)
	return nil
}
