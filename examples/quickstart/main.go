// Quickstart: one publisher, two subscribers on the paper's testbed
// fat-tree. Shows the minimal PLEROMA flow: advertise → subscribe →
// publish → receive, with in-network filtering deciding who gets what.
package main

import (
	"fmt"
	"log"

	"pleroma"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "temperature", Bits: 10},
		pleroma.Attribute{Name: "humidity", Bits: 10},
	)
	if err != nil {
		return err
	}
	sys, err := pleroma.NewSystem(sch)
	if err != nil {
		return err
	}
	hosts := sys.Hosts()

	sensor, err := sys.NewPublisher("sensor-1", hosts[0])
	if err != nil {
		return err
	}
	// The sensor publishes anywhere in the event space.
	if err := sensor.Advertise(pleroma.NewFilter()); err != nil {
		return err
	}

	// The HVAC controller cares about hot readings only.
	if err := sys.Subscribe("hvac", hosts[6],
		pleroma.NewFilter().Range("temperature", 700, 1023),
		func(d pleroma.Delivery) {
			fmt.Printf("[hvac]    temp=%4d humidity=%4d  (latency %v)\n",
				d.Event.Values[0], d.Event.Values[1], d.Latency)
		}); err != nil {
		return err
	}
	// The logger wants everything.
	if err := sys.Subscribe("logger", hosts[7],
		pleroma.NewFilter(),
		func(d pleroma.Delivery) {
			fmt.Printf("[logger]  temp=%4d humidity=%4d\n",
				d.Event.Values[0], d.Event.Values[1])
		}); err != nil {
		return err
	}

	fmt.Println("publishing three readings...")
	for _, reading := range [][2]uint32{{300, 500}, {800, 420}, {950, 100}} {
		if err := sensor.Publish(reading[0], reading[1]); err != nil {
			return err
		}
	}
	sys.Run()

	st := sys.Stats()
	fmt.Printf("\nflow mods issued: %d, packets on links: %d\n",
		st.FlowMods, st.LinkPackets)
	return nil
}
