// Multidomain: publish/subscribe across independently controlled network
// partitions (Section 4 of the paper). A 20-switch ring is split into four
// partitions, each with its own controller; a publisher in partition 0
// reaches subscribers in all partitions, with advertisements flooding the
// partition graph and subscriptions following their reverse paths —
// suppressed where covering subscriptions were already forwarded.
package main

import (
	"fmt"
	"log"

	"pleroma"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "severity", Bits: 10},
		pleroma.Attribute{Name: "zone", Bits: 10},
	)
	if err != nil {
		return err
	}
	sys, err := pleroma.NewSystem(sch,
		pleroma.WithTopology(pleroma.TopologyRing20),
		pleroma.WithPartitions(4),
	)
	if err != nil {
		return err
	}
	hosts := sys.Hosts()

	alerts, err := sys.NewPublisher("alert-source", hosts[0])
	if err != nil {
		return err
	}
	if err := alerts.Advertise(pleroma.NewFilter()); err != nil {
		return err
	}
	fmt.Printf("after advertisement : %d controller-to-controller messages\n",
		sys.Stats().ControlMessages)

	// One dashboard per ring quadrant: hosts 5, 10, 15 live in different
	// partitions than the publisher.
	for i, h := range []pleroma.HostID{hosts[5], hosts[10], hosts[15]} {
		name := fmt.Sprintf("dashboard-%d", i)
		sevMin := uint32(i * 300)
		if err := sys.Subscribe(name, h,
			pleroma.NewFilter().Range("severity", sevMin, 1023),
			func(d pleroma.Delivery) {
				fmt.Printf("  %-12s got severity=%4d zone=%4d (latency %v)\n",
					name, d.Event.Values[0], d.Event.Values[1], d.Latency)
			}); err != nil {
			return err
		}
	}
	fmt.Printf("after subscriptions : %d controller-to-controller messages\n",
		sys.Stats().ControlMessages)

	fmt.Println("\npublishing alerts of increasing severity:")
	for _, sev := range []uint32{100, 450, 900} {
		if err := alerts.Publish(sev, 7); err != nil {
			return err
		}
	}
	sys.Run()

	st := sys.Stats()
	fmt.Printf("\npartitions: %d, flow mods: %d, link packets: %d\n",
		st.Partitions, st.FlowMods, st.LinkPackets)
	return nil
}
