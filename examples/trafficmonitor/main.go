// Trafficmonitor: moving range queries over vehicle positions — the
// location-dependent workload (traffic monitoring / online gaming) the
// paper's introduction cites. Each monitor tracks a window around its own
// moving position and re-subscribes every tick; vehicles publish position
// updates. The example reports the reconfiguration cost of the moving
// queries and the precision of in-network filtering.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pleroma"
)

const (
	numVehicles = 4
	numMonitors = 3
	ticks       = 10
	window      = 80 // half-width of the monitored square
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch, err := pleroma.NewSchema(
		pleroma.Attribute{Name: "x", Bits: 10},
		pleroma.Attribute{Name: "y", Bits: 10},
	)
	if err != nil {
		return err
	}
	sys, err := pleroma.NewSystem(sch)
	if err != nil {
		return err
	}
	hosts := sys.Hosts()
	r := rand.New(rand.NewSource(99))

	// Vehicles publish their positions.
	type vehicle struct {
		pub  *pleroma.Publisher
		x, y int
	}
	vehicles := make([]*vehicle, numVehicles)
	for i := range vehicles {
		pub, err := sys.NewPublisher(fmt.Sprintf("vehicle%d", i), hosts[i])
		if err != nil {
			return err
		}
		if err := pub.Advertise(pleroma.NewFilter()); err != nil {
			return err
		}
		vehicles[i] = &vehicle{pub: pub, x: r.Intn(1024), y: r.Intn(1024)}
	}

	// Monitors track a moving range query around their own position.
	type monitor struct {
		host     pleroma.HostID
		x, y     int
		relevant int // deliveries inside the current window
		total    int
	}
	monitors := make([]*monitor, numMonitors)
	for i := range monitors {
		monitors[i] = &monitor{host: hosts[numVehicles+i], x: r.Intn(1024), y: r.Intn(1024)}
	}
	clampRange := func(c int) (uint32, uint32) {
		lo, hi := c-window, c+window
		if lo < 0 {
			lo = 0
		}
		if hi > 1023 {
			hi = 1023
		}
		return uint32(lo), uint32(hi)
	}
	query := func(i int) pleroma.Filter {
		m := monitors[i]
		xlo, xhi := clampRange(m.x)
		ylo, yhi := clampRange(m.y)
		return pleroma.NewFilter().Range("x", xlo, xhi).Range("y", ylo, yhi)
	}
	for i, m := range monitors {
		m := m
		if err := sys.Subscribe(fmt.Sprintf("mon%d", i), m.host, query(i),
			func(d pleroma.Delivery) {
				m.total++
				if !d.FalsePositive {
					m.relevant++
				}
			}); err != nil {
			return err
		}
	}

	fmt.Printf("%-5s %-22s %-22s\n", "tick", "flowmods-cumulative", "deliveries (relevant/total)")
	for tick := 0; tick < ticks; tick++ {
		// Vehicles move and publish.
		for _, v := range vehicles {
			v.x = wrap(v.x + r.Intn(101) - 50)
			v.y = wrap(v.y + r.Intn(101) - 50)
			for b := 0; b < 5; b++ { // a burst of position updates
				if err := v.pub.Publish(uint32(v.x), uint32(v.y)); err != nil {
					return err
				}
			}
		}
		sys.Run()

		// Monitors move and update their range queries via parametric
		// re-subscription (≥1 update per tick, the rate the introduction
		// quotes for moving queries).
		for i, m := range monitors {
			m.x = wrap(m.x + r.Intn(61) - 30)
			m.y = wrap(m.y + r.Intn(61) - 30)
			if err := sys.Resubscribe(fmt.Sprintf("mon%d", i), query(i)); err != nil {
				return err
			}
		}

		rel, tot := 0, 0
		for _, m := range monitors {
			rel += m.relevant
			tot += m.total
		}
		st := sys.Stats()
		fmt.Printf("%-5d %-22d %d/%d\n", tick+1, st.FlowMods, rel, tot)
	}
	return nil
}

func wrap(v int) int {
	if v < 0 {
		return 0
	}
	if v > 1023 {
		return 1023
	}
	return v
}
