// Failover: link-failure reaction — the extension the paper's conclusion
// names as follow-up work. A publisher streams events across the fat-tree
// to a subscriber in the opposite pod; we fail the switch-switch link the
// flow uses, let the controller rebuild its dissemination trees, and show
// the stream continuing over the redundant path.
package main

import (
	"fmt"
	"log"

	"pleroma"
	"pleroma/internal/topo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch, err := pleroma.NewSchema(pleroma.Attribute{Name: "seq", Bits: 10})
	if err != nil {
		return err
	}
	sys, err := pleroma.NewSystem(sch)
	if err != nil {
		return err
	}
	hosts := sys.Hosts()

	pub, err := sys.NewPublisher("stream", hosts[0])
	if err != nil {
		return err
	}
	if err := pub.Advertise(pleroma.NewFilter()); err != nil {
		return err
	}
	received := 0
	if err := sys.Subscribe("sink", hosts[7], pleroma.NewFilter(),
		func(d pleroma.Delivery) {
			received++
			fmt.Printf("  received seq=%d (latency %v)\n", d.Event.Values[0], d.Latency)
		}); err != nil {
		return err
	}

	fmt.Println("streaming over the primary path:")
	for seq := uint32(0); seq < 3; seq++ {
		if err := pub.Publish(seq); err != nil {
			return err
		}
	}
	sys.Run()

	// Find a switch-switch link the flow is using and cut it.
	victim, err := pickUsedCoreLink(sys)
	if err != nil {
		return err
	}
	fmt.Printf("\nfailing link %d↔%d; controller rebuilds trees...\n", victim.A, victim.B)
	if err := sys.FailLink(victim.A, victim.B); err != nil {
		return err
	}

	fmt.Println("streaming over the repaired path:")
	for seq := uint32(10); seq < 13; seq++ {
		if err := pub.Publish(seq); err != nil {
			return err
		}
	}
	sys.Run()

	fmt.Printf("\ntotal received: %d/6, flow mods issued: %d\n",
		received, sys.Stats().FlowMods)
	return nil
}

// pickUsedCoreLink returns a switch-switch link that carried traffic.
func pickUsedCoreLink(sys *pleroma.System) (*topo.Link, error) {
	rep := sys.OverloadReport()
	for _, ll := range rep.HottestLinks {
		if isSwitchPair(sys, ll.From, ll.To) {
			for _, l := range linksOf(sys) {
				if (l.A == ll.From && l.B == ll.To) || (l.B == ll.From && l.A == ll.To) {
					return l, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("no used switch-switch link found")
}

func isSwitchPair(sys *pleroma.System, a, b topo.NodeID) bool {
	sw := map[topo.NodeID]bool{}
	for _, s := range sys.Switches() {
		sw[s] = true
	}
	return sw[a] && sw[b]
}

func linksOf(sys *pleroma.System) []*topo.Link {
	return sys.Links()
}
