package pleroma

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math/rand"
	"testing"
	"time"

	"pleroma/internal/netem"
	"pleroma/internal/topo"
)

// The golden forwarding-equivalence tests pin the exact observable
// behaviour of the data plane — the delivery multiset with simulated
// timestamps, per-link packet/byte/drop counters, per-switch forwarding
// counters, host saturation counters, and the final simulated clock — as a
// digest captured on the pre-fast-path implementation (the container/heap
// engine with closure events and the map-lookup forwarding path). The
// zero-alloc fast path must reproduce these digests bit for bit: any
// deviation in event ordering, serialization arithmetic, queue accounting,
// or drop behaviour changes the hash.

// goldenHasher folds observables into a running SHA-256.
type goldenHasher struct {
	h hash.Hash
}

func newGoldenHasher() *goldenHasher { return &goldenHasher{h: sha256.New()} }

func (g *goldenHasher) str(s string) {
	g.u64(uint64(len(s)))
	g.h.Write([]byte(s))
}

func (g *goldenHasher) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	g.h.Write(b[:])
}

func (g *goldenHasher) dur(d time.Duration) { g.u64(uint64(d)) }

func (g *goldenHasher) sum() string { return hex.EncodeToString(g.h.Sum(nil)) }

// forwardingDigest drives a seeded soak-style workload — churning
// subscriptions, bursty publishing from several hosts, constrained links
// and host capacities — and returns the digest of everything the data
// plane did.
func forwardingDigest(t *testing.T, seed int64, opts ...Option) (string, *System) {
	t.Helper()
	sch, err := NewSchema(
		Attribute{Name: "x", Bits: 10},
		Attribute{Name: "y", Bits: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Slow, shallow links and limited hosts so the workload exercises
	// serialization queueing, link tail-drops, and host saturation drops —
	// every branch of the forwarding hot path.
	base := []Option{
		WithMaxDzLen(16),
		WithMaxSubspaces(64),
		WithLinkParams(topo.LinkParams{
			Latency:      20 * time.Microsecond,
			BandwidthBps: 10_000_000, // 51.2µs per 64B packet
			QueuePackets: 6,
		}),
	}
	sys, err := NewSystem(sch, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	// Shallow, slow hosts (2k events/s, 4-packet ingress queue) so bursts
	// saturate the ingestion path; rewire through the regular dispatch.
	for _, h := range sys.Hosts() {
		h := h
		if err := sys.dp.ConfigureHost(h,
			netem.HostConfig{CapacityPerSec: 2_000, MaxQueue: 4},
			func(d netem.Delivery) { sys.dispatch(h, d) }); err != nil {
			t.Fatal(err)
		}
	}
	sys.dp.RecordPaths(true)

	g := newGoldenHasher()
	hosts := sys.Hosts()
	r := rand.New(rand.NewSource(seed))

	handler := func(d Delivery) {
		g.str(d.SubscriptionID)
		for _, v := range d.Event.Values {
			g.u64(uint64(v))
		}
		g.dur(d.At)
		g.dur(d.Latency)
		if d.FalsePositive {
			g.u64(1)
		} else {
			g.u64(0)
		}
	}

	randRange := func() [2]uint32 {
		a := uint32(r.Intn(1024))
		return [2]uint32{a, a + uint32(r.Intn(int(1024-a)))}
	}

	// Three publishers: one over the whole space (so wild events always
	// have a tree, while narrow subscriptions leave table misses deeper
	// in), two over random regions.
	type pubRec struct {
		pub  *Publisher
		rect [2][2]uint32
	}
	var pubs []pubRec
	for i := 0; i < 3; i++ {
		pub, err := sys.NewPublisher(fmt.Sprintf("p%d", i), hosts[i%len(hosts)])
		if err != nil {
			t.Fatal(err)
		}
		rect := [2][2]uint32{{0, 1023}, {0, 1023}}
		f := NewFilter()
		if i > 0 {
			rect = [2][2]uint32{randRange(), randRange()}
			f = f.Range("x", rect[0][0], rect[0][1]).Range("y", rect[1][0], rect[1][1])
		}
		if err := pub.Advertise(f); err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, pubRec{pub: pub, rect: rect})
	}

	nextSub := 0
	addSub := func() {
		nextSub++
		fx, fy := randRange(), randRange()
		host := hosts[r.Intn(len(hosts))]
		if err := sys.Subscribe(fmt.Sprintf("s%d", nextSub), host,
			NewFilter().Range("x", fx[0], fx[1]).Range("y", fy[0], fy[1]),
			handler); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		addSub()
	}

	for round := 0; round < 8; round++ {
		// Light churn: grow the subscription set, occasionally drop one.
		switch r.Intn(3) {
		case 0:
			addSub()
		case 1:
			if nextSub > 3 {
				victim := fmt.Sprintf("s%d", 1+r.Intn(nextSub))
				// Ignore already-removed ids: the draw is still consumed,
				// keeping the seeded sequence stable.
				_ = sys.Unsubscribe(victim)
			}
		}

		// Burst-publish from every publisher at the same simulated
		// instant: packets pile onto shared links and host queues.
		for pi, pr := range pubs {
			n := 10 + r.Intn(14)
			for j := 0; j < n; j++ {
				x := pr.rect[0][0] + uint32(r.Intn(int(pr.rect[0][1]-pr.rect[0][0]+1)))
				y := pr.rect[1][0] + uint32(r.Intn(int(pr.rect[1][1]-pr.rect[1][0]+1)))
				if err := pr.pub.Publish(x, y); err != nil {
					t.Fatalf("publisher %d: %v", pi, err)
				}
			}
		}
		// Drain partially at a fixed horizon, then fully: exercises
		// RunUntil clamping against in-flight events.
		sys.RunFor(300 * time.Microsecond)
		sys.Run()
		g.u64(uint64(round))
		g.dur(sys.Now())
	}

	// Fold in the ground-truth counters of every layer.
	for _, l := range sys.Links() {
		ls := sys.dp.LinkStatsFor(l)
		if ls == nil {
			g.u64(0)
			continue
		}
		g.u64(1)
		for _, from := range []topo.NodeID{l.A, l.B} {
			g.u64(ls.Packets[from])
			g.u64(ls.Bytes[from])
			g.u64(ls.Dropped[from])
		}
	}
	for _, sw := range sys.Switches() {
		st := sys.dp.SwitchStatsFor(sw)
		g.u64(st.Forwarded)
		g.u64(st.TableMisses)
		g.u64(st.HopExceeded)
		g.u64(st.Punted)
	}
	for _, h := range hosts {
		g.u64(sys.dp.HostReceived(h))
		g.u64(sys.dp.HostDropped(h))
	}
	st := sys.Stats()
	g.u64(st.LinkPackets)
	g.u64(st.Deliveries)
	g.u64(st.FalsePositives)
	g.dur(sys.Now())
	return g.sum(), sys
}

// assertGoldenCoverage checks the workload actually reached the hot-path
// branches the digest is supposed to pin: if a future edit to the workload
// parameters stops exercising drops or misses, the golden test degrades
// silently — fail loudly instead.
func assertGoldenCoverage(t *testing.T, sys *System) {
	t.Helper()
	var hostDrop, linkDrop, miss uint64
	for _, h := range sys.Hosts() {
		hostDrop += sys.dp.HostDropped(h)
	}
	for _, l := range sys.Links() {
		if ls := sys.dp.LinkStatsFor(l); ls != nil {
			for _, d := range ls.Dropped {
				linkDrop += d
			}
		}
	}
	for _, sw := range sys.Switches() {
		miss += sys.dp.SwitchStatsFor(sw).TableMisses
	}
	if sys.Stats().Deliveries == 0 {
		t.Error("golden workload delivered nothing")
	}
	if hostDrop == 0 {
		t.Error("golden workload never saturated a host")
	}
	if linkDrop == 0 {
		t.Error("golden workload never tail-dropped at a link")
	}
	if miss == 0 {
		t.Error("golden workload never missed a flow table")
	}
}

// Golden digests captured on the pre-fast-path data plane (global-mutex
// forwarding, container/heap engine). Regenerate by logging
// forwardingDigest on a known-good revision — never by copying a failing
// run's output. Testbed and fat-tree were re-captured after the
// same-host delivery fix (access-switch hairpin flows): subscribers
// colocated with a publisher now legitimately receive events, which the
// old digests predate. The ring seed has no colocated overlapping pair,
// so its digest is unchanged across that fix.
const (
	goldenTestbed = "75319bf0fa49e0ae6b6e6ab642250ac7757d508ef00160254476d4b8e2b6abdc"
	goldenRing    = "5216a4693181c69e914a0c00f4f0aba5e89e48e0e6e44086c55477a0dce0bc3c"
	goldenFatTree = "fd2a984e1115ed87a4f19ba9583dad4d7f5297950078508734e656fbdff99c4f"
)

func TestForwardingGoldenTestbed(t *testing.T) {
	got, sys := forwardingDigest(t, 7001)
	assertGoldenCoverage(t, sys)
	if got != goldenTestbed {
		t.Fatalf("testbed forwarding digest drifted:\n got %s\nwant %s", got, goldenTestbed)
	}
}

func TestForwardingGoldenRingPartitioned(t *testing.T) {
	got, sys := forwardingDigest(t, 7002,
		WithTopology(TopologyRing20), WithPartitions(4))
	assertGoldenCoverage(t, sys)
	if got != goldenRing {
		t.Fatalf("ring forwarding digest drifted:\n got %s\nwant %s", got, goldenRing)
	}
}

func TestForwardingGoldenFatTreeInBand(t *testing.T) {
	// In-band signalling routes control requests over the data plane as
	// IP_vir packets: the digest additionally covers the punt path and
	// SendFromHost control traffic.
	got, sys := forwardingDigest(t, 7003,
		WithTopology(TopologyFatTree20), WithInBandSignalling(200*time.Microsecond))
	assertGoldenCoverage(t, sys)
	if got != goldenFatTree {
		t.Fatalf("fat-tree in-band forwarding digest drifted:\n got %s\nwant %s", got, goldenFatTree)
	}
}

// TestForwardingDigestDeterministic guards the golden tests themselves:
// the digest must be a pure function of the seed.
func TestForwardingDigestDeterministic(t *testing.T) {
	a, _ := forwardingDigest(t, 9009)
	b, _ := forwardingDigest(t, 9009)
	if a != b {
		t.Fatalf("digest not deterministic: %s vs %s", a, b)
	}
}

// TestPublisherPublishBatchMatchesSequential pins the facade batch
// contract: PublishBatch yields the exact delivery log — order, values,
// timestamps, false-positive marks — and final clock of back-to-back
// Publish calls.
func TestPublisherPublishBatchMatchesSequential(t *testing.T) {
	type rec struct {
		sub  string
		vals [2]uint32
		at   time.Duration
		lat  time.Duration
		fp   bool
	}
	run := func(batch bool) ([]rec, time.Duration) {
		sch, err := NewSchema(
			Attribute{Name: "x", Bits: 10},
			Attribute{Name: "y", Bits: 10},
		)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(sch, WithMaxDzLen(16))
		if err != nil {
			t.Fatal(err)
		}
		hosts := sys.Hosts()
		var got []rec
		for i, rg := range [][4]uint32{{0, 1023, 0, 1023}, {0, 200, 0, 1023}, {500, 900, 100, 700}} {
			if err := sys.Subscribe(fmt.Sprintf("s%d", i), hosts[1+i],
				NewFilter().Range("x", rg[0], rg[1]).Range("y", rg[2], rg[3]),
				func(d Delivery) {
					got = append(got, rec{
						sub:  d.SubscriptionID,
						vals: [2]uint32{d.Event.Values[0], d.Event.Values[1]},
						at:   d.At,
						lat:  d.Latency,
						fp:   d.FalsePositive,
					})
				}); err != nil {
				t.Fatal(err)
			}
		}
		pub, err := sys.NewPublisher("p", hosts[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Advertise(NewFilter()); err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(4242))
		tuples := make([][]uint32, 40)
		for i := range tuples {
			tuples[i] = []uint32{uint32(r.Intn(1024)), uint32(r.Intn(1024))}
		}
		if batch {
			if err := pub.PublishBatch(tuples...); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, tp := range tuples {
				if err := pub.Publish(tp...); err != nil {
					t.Fatal(err)
				}
			}
		}
		return got, sys.Run()
	}
	seq, seqEnd := run(false)
	bat, batEnd := run(true)
	if seqEnd != batEnd {
		t.Fatalf("final clock differs: sequential %v, batch %v", seqEnd, batEnd)
	}
	if len(seq) == 0 {
		t.Fatal("workload delivered nothing")
	}
	if len(seq) != len(bat) {
		t.Fatalf("delivery count differs: sequential %d, batch %d", len(seq), len(bat))
	}
	for i := range seq {
		if seq[i] != bat[i] {
			t.Fatalf("delivery %d differs:\nsequential %+v\nbatch      %+v", i, seq[i], bat[i])
		}
	}
}
