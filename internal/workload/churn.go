package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"pleroma/internal/dz"
	"pleroma/internal/space"
)

// ChurnOps binds the churn driver to a control plane. Subscribe and
// Unsubscribe are required; the remaining callbacks are optional and are
// skipped when nil. Query models a read-only control-plane inspection
// (stats, tree dump, table verification) racing the mutating operations.
type ChurnOps struct {
	Subscribe   func(id string, rect dz.Rect) error
	Unsubscribe func(id string) error
	Advertise   func(id string, rect dz.Rect) error
	Unadvertise func(id string) error
	Query       func() error
}

// ChurnConfig shapes a concurrent churn run.
type ChurnConfig struct {
	// Workers is the number of concurrent goroutines (default 4).
	Workers int
	// OpsPerWorker is the number of mutating operations each worker
	// issues (default 50).
	OpsPerWorker int
	// Seed derives every worker's private generator; worker i uses
	// Seed + i, so runs are reproducible per worker regardless of
	// scheduling.
	Seed int64
	// Model selects the subscription distribution (default Uniform).
	Model Model
	// QueryEvery issues a Query callback every n mutating ops per
	// worker (0 disables).
	QueryEvery int
	// Options are forwarded to each worker's Generator.
	Options []Option
}

// ChurnStats totals the operations a churn run completed successfully.
type ChurnStats struct {
	Subscribes   uint64
	Unsubscribes uint64
	Advertises   uint64
	Unadvertises uint64
	Queries      uint64
}

// Mutations returns the total number of successful mutating operations.
func (s ChurnStats) Mutations() uint64 {
	return s.Subscribes + s.Unsubscribes + s.Advertises + s.Unadvertises
}

// RunChurn drives the callbacks from cfg.Workers concurrent goroutines.
// Each worker owns a private seeded Generator (generators are not safe
// for concurrent use) and a private id namespace ("w3-s17"), so workers
// never contend on ids and the sequence of requests each worker makes is
// deterministic. Roughly a third of each worker's mutations retire a
// previously created subscription; when Advertise is provided, a small
// share of operations churn advertisements instead.
//
// The first callback error aborts the run (remaining workers stop at
// their next operation) and is returned alongside the operations that
// completed.
func RunChurn(sch *space.Schema, cfg ChurnConfig, ops ChurnOps) (ChurnStats, error) {
	if sch == nil {
		return ChurnStats{}, fmt.Errorf("workload: churn: nil schema")
	}
	if ops.Subscribe == nil || ops.Unsubscribe == nil {
		return ChurnStats{}, fmt.Errorf("workload: churn: Subscribe and Unsubscribe are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 50
	}
	if cfg.Model == 0 {
		cfg.Model = Uniform
	}

	var (
		stats   ChurnStats
		stop    atomic.Bool
		firstMu sync.Mutex
		first   error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		firstMu.Lock()
		if first == nil {
			first = err
		}
		firstMu.Unlock()
		stop.Store(true)
	}

	for w := 0; w < cfg.Workers; w++ {
		gen, err := New(sch, cfg.Model, cfg.Seed+int64(w), cfg.Options...)
		if err != nil {
			return ChurnStats{}, fmt.Errorf("workload: churn: worker %d: %w", w, err)
		}
		wg.Add(1)
		go func(w int, gen *Generator) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed ^ (int64(w)+1)*0x5851f42d4c957f2d))
			var liveSubs, liveAdvs []string
			nextSub, nextAdv := 0, 0
			for i := 0; i < cfg.OpsPerWorker; i++ {
				if stop.Load() {
					return
				}
				if cfg.QueryEvery > 0 && ops.Query != nil && i%cfg.QueryEvery == 0 {
					if err := ops.Query(); err != nil {
						fail(fmt.Errorf("workload: churn: worker %d query: %w", w, err))
						return
					}
					atomic.AddUint64(&stats.Queries, 1)
				}
				roll := r.Intn(100)
				switch {
				case ops.Advertise != nil && roll < 10:
					id := fmt.Sprintf("w%d-a%d", w, nextAdv)
					nextAdv++
					if err := ops.Advertise(id, gen.SubscriptionRect()); err != nil {
						fail(fmt.Errorf("workload: churn: worker %d advertise %s: %w", w, id, err))
						return
					}
					liveAdvs = append(liveAdvs, id)
					atomic.AddUint64(&stats.Advertises, 1)
				case ops.Unadvertise != nil && roll < 15 && len(liveAdvs) > 0:
					id := liveAdvs[r.Intn(len(liveAdvs))]
					liveAdvs = remove(liveAdvs, id)
					if err := ops.Unadvertise(id); err != nil {
						fail(fmt.Errorf("workload: churn: worker %d unadvertise %s: %w", w, id, err))
						return
					}
					atomic.AddUint64(&stats.Unadvertises, 1)
				case roll < 50 && len(liveSubs) > 0:
					id := liveSubs[r.Intn(len(liveSubs))]
					liveSubs = remove(liveSubs, id)
					if err := ops.Unsubscribe(id); err != nil {
						fail(fmt.Errorf("workload: churn: worker %d unsubscribe %s: %w", w, id, err))
						return
					}
					atomic.AddUint64(&stats.Unsubscribes, 1)
				default:
					id := fmt.Sprintf("w%d-s%d", w, nextSub)
					nextSub++
					if err := ops.Subscribe(id, gen.SubscriptionRect()); err != nil {
						fail(fmt.Errorf("workload: churn: worker %d subscribe %s: %w", w, id, err))
						return
					}
					liveSubs = append(liveSubs, id)
					atomic.AddUint64(&stats.Subscribes, 1)
				}
			}
		}(w, gen)
	}
	wg.Wait()
	return stats, first
}

func remove(ids []string, id string) []string {
	out := ids[:0]
	for _, s := range ids {
		if s != id {
			out = append(out, s)
		}
	}
	return out
}
