// Package workload generates the subscription and event distributions of
// the paper's evaluation (Section 6.1): a uniform model drawing
// subscriptions and events independently at random, and an interest
// popularity model that places a small number of hotspot regions (seven in
// the paper) and draws subscriptions/events around them with zipfian
// popularity. All generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"pleroma/internal/dz"
	"pleroma/internal/space"
)

// Model selects the distribution family.
type Model int

// Distribution models of Section 6.1.
const (
	// Uniform draws subscriptions and events independently and uniformly.
	Uniform Model = iota + 1
	// Zipfian draws around hotspot regions with zipfian popularity.
	Zipfian
)

func (m Model) String() string {
	switch m {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	default:
		return "unknown"
	}
}

// Defaults mirroring the paper's setup.
const (
	// DefaultHotspots is the number of hotspot regions (the paper uses 7).
	DefaultHotspots = 7
	// DefaultZipfSkew is the skew parameter of the zipfian popularity.
	DefaultZipfSkew = 1.5
	// DefaultSpread is the hotspot spread as a fraction of the domain.
	DefaultSpread = 0.05
	// DefaultSubWidthMin/Max bound subscription range width as a fraction
	// of the domain.
	DefaultSubWidthMin = 0.02
	DefaultSubWidthMax = 0.25
)

// Option configures a Generator.
type Option func(*Generator)

// WithHotspots sets the number of hotspot regions of the zipfian model.
func WithHotspots(n int) Option {
	return func(g *Generator) { g.hotspotCount = n }
}

// WithZipfSkew sets the zipfian skew (must be > 1).
func WithZipfSkew(s float64) Option {
	return func(g *Generator) { g.zipfSkew = s }
}

// WithSubWidth bounds subscription range width as domain fractions.
func WithSubWidth(min, max float64) Option {
	return func(g *Generator) { g.subWidthMin, g.subWidthMax = min, max }
}

// WithSpread sets the hotspot spread (fraction of the domain).
func WithSpread(f float64) Option {
	return func(g *Generator) { g.spread = f }
}

// WithRestrictedDims confines event values — and the centres of
// subscription ranges — along the given dimensions to a band of the given
// domain fraction around the domain centre. With both sides of the
// workload concentrated, the restricted dimensions carry almost no
// filtering information: the varying-selectivity setup of the paper's
// dimension-selection experiment (Figure 7e).
func WithRestrictedDims(bands map[int]float64) Option {
	return func(g *Generator) {
		g.restricted = make(map[int]float64, len(bands))
		for d, f := range bands {
			g.restricted[d] = f
		}
	}
}

// Generator produces subscriptions and events under one model.
type Generator struct {
	sch          *space.Schema
	r            *rand.Rand
	model        Model
	hotspotCount int
	zipfSkew     float64
	spread       float64
	subWidthMin  float64
	subWidthMax  float64
	restricted   map[int]float64

	hotspots [][]uint32
	zipf     *rand.Zipf
}

// New creates a generator for the schema under the given model and seed.
func New(sch *space.Schema, model Model, seed int64, opts ...Option) (*Generator, error) {
	if sch == nil {
		return nil, fmt.Errorf("workload: nil schema")
	}
	if model != Uniform && model != Zipfian {
		return nil, fmt.Errorf("workload: unknown model %d", int(model))
	}
	g := &Generator{
		sch:          sch,
		r:            rand.New(rand.NewSource(seed)),
		model:        model,
		hotspotCount: DefaultHotspots,
		zipfSkew:     DefaultZipfSkew,
		spread:       DefaultSpread,
		subWidthMin:  DefaultSubWidthMin,
		subWidthMax:  DefaultSubWidthMax,
	}
	for _, opt := range opts {
		opt(g)
	}
	if g.hotspotCount <= 0 {
		return nil, fmt.Errorf("workload: hotspot count must be positive")
	}
	if g.zipfSkew <= 1 {
		return nil, fmt.Errorf("workload: zipf skew must exceed 1, got %v", g.zipfSkew)
	}
	if g.subWidthMin <= 0 || g.subWidthMax < g.subWidthMin || g.subWidthMax > 1 {
		return nil, fmt.Errorf("workload: invalid subscription width bounds [%v,%v]",
			g.subWidthMin, g.subWidthMax)
	}
	if model == Zipfian {
		g.hotspots = make([][]uint32, g.hotspotCount)
		for i := range g.hotspots {
			center := make([]uint32, sch.Dims())
			for d := range center {
				center[d] = uint32(g.r.Intn(int(sch.DomainMax()) + 1))
			}
			g.hotspots[i] = center
		}
		g.zipf = rand.NewZipf(g.r, g.zipfSkew, 1, uint64(g.hotspotCount-1))
	}
	return g, nil
}

// Model returns the generator's distribution model.
func (g *Generator) Model() Model { return g.model }

// Hotspot returns the centre of hotspot i (zipfian model only).
func (g *Generator) Hotspot(i int) ([]uint32, bool) {
	if g.model != Zipfian || i < 0 || i >= len(g.hotspots) {
		return nil, false
	}
	return append([]uint32(nil), g.hotspots[i]...), true
}

// Event draws one event.
func (g *Generator) Event() space.Event {
	vals := make([]uint32, g.sch.Dims())
	switch g.model {
	case Zipfian:
		center := g.hotspots[g.zipf.Uint64()]
		for d := range vals {
			vals[d] = g.gaussianAround(center[d])
		}
	default:
		for d := range vals {
			vals[d] = uint32(g.r.Intn(int(g.sch.DomainMax()) + 1))
		}
	}
	for d, band := range g.restricted {
		if d >= 0 && d < len(vals) {
			vals[d] = g.bandValue(band)
		}
	}
	return space.Event{Values: vals}
}

// Events draws n events.
func (g *Generator) Events(n int) []space.Event {
	out := make([]space.Event, n)
	for i := range out {
		out[i] = g.Event()
	}
	return out
}

// SubscriptionRect draws one subscription hyperrectangle.
func (g *Generator) SubscriptionRect() dz.Rect {
	rect := make(dz.Rect, g.sch.Dims())
	var center []uint32
	if g.model == Zipfian {
		center = g.hotspots[g.zipf.Uint64()]
	}
	domain := float64(g.sch.DomainMax()) + 1
	for d := range rect {
		widthFrac := g.subWidthMin + g.r.Float64()*(g.subWidthMax-g.subWidthMin)
		width := math.Max(1, widthFrac*domain)
		var mid float64
		switch {
		case g.restricted[d] > 0:
			mid = float64(g.bandValue(g.restricted[d]))
			if width < g.restricted[d]*domain*2 {
				width = g.restricted[d] * domain * 2
			}
		case center != nil:
			mid = float64(g.gaussianAround(center[d]))
		default:
			mid = g.r.Float64() * (domain - 1)
		}
		lo := mid - width/2
		hi := mid + width/2
		rect[d] = g.clampInterval(lo, hi)
	}
	return rect
}

// SubscriptionRects draws n subscriptions.
func (g *Generator) SubscriptionRects(n int) []dz.Rect {
	out := make([]dz.Rect, n)
	for i := range out {
		out[i] = g.SubscriptionRect()
	}
	return out
}

// gaussianAround samples a domain value normally distributed around the
// centre with the configured spread, clamped to the domain.
func (g *Generator) gaussianAround(center uint32) uint32 {
	domain := float64(g.sch.DomainMax()) + 1
	v := float64(center) + g.r.NormFloat64()*g.spread*domain
	return g.clampValue(v)
}

// bandValue samples uniformly from a band of the given domain fraction
// centred at the domain midpoint.
func (g *Generator) bandValue(band float64) uint32 {
	domain := float64(g.sch.DomainMax()) + 1
	half := math.Max(0.5, band*domain/2)
	mid := domain / 2
	v := mid + (g.r.Float64()*2-1)*half
	return g.clampValue(v)
}

func (g *Generator) clampValue(v float64) uint32 {
	if v < 0 {
		return 0
	}
	if max := float64(g.sch.DomainMax()); v > max {
		return g.sch.DomainMax()
	}
	return uint32(v)
}

func (g *Generator) clampInterval(lo, hi float64) dz.Interval {
	l := g.clampValue(lo)
	h := g.clampValue(hi)
	if l > h {
		l, h = h, l
	}
	return dz.Interval{Lo: l, Hi: h}
}
