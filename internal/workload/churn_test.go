package workload

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pleroma/internal/dz"
)

// registry is a minimal thread-safe control plane for exercising the
// churn driver in isolation.
type registry struct {
	mu   sync.Mutex
	subs map[string]dz.Rect
	advs map[string]dz.Rect
}

func newRegistry() *registry {
	return &registry{subs: make(map[string]dz.Rect), advs: make(map[string]dz.Rect)}
}

func (r *registry) ops() ChurnOps {
	return ChurnOps{
		Subscribe: func(id string, rect dz.Rect) error {
			r.mu.Lock()
			defer r.mu.Unlock()
			if _, dup := r.subs[id]; dup {
				return errors.New("duplicate subscription " + id)
			}
			r.subs[id] = rect
			return nil
		},
		Unsubscribe: func(id string) error {
			r.mu.Lock()
			defer r.mu.Unlock()
			if _, ok := r.subs[id]; !ok {
				return errors.New("unknown subscription " + id)
			}
			delete(r.subs, id)
			return nil
		},
		Advertise: func(id string, rect dz.Rect) error {
			r.mu.Lock()
			defer r.mu.Unlock()
			if _, dup := r.advs[id]; dup {
				return errors.New("duplicate advertisement " + id)
			}
			r.advs[id] = rect
			return nil
		},
		Unadvertise: func(id string) error {
			r.mu.Lock()
			defer r.mu.Unlock()
			if _, ok := r.advs[id]; !ok {
				return errors.New("unknown advertisement " + id)
			}
			delete(r.advs, id)
			return nil
		},
		Query: func() error {
			r.mu.Lock()
			defer r.mu.Unlock()
			return nil
		},
	}
}

func TestRunChurnValidation(t *testing.T) {
	sch := schema(t, 2)
	if _, err := RunChurn(nil, ChurnConfig{}, newRegistry().ops()); err == nil {
		t.Error("nil schema must fail")
	}
	if _, err := RunChurn(sch, ChurnConfig{}, ChurnOps{}); err == nil {
		t.Error("missing Subscribe/Unsubscribe must fail")
	}
}

func TestRunChurnConsistent(t *testing.T) {
	sch := schema(t, 3)
	reg := newRegistry()
	st, err := RunChurn(sch, ChurnConfig{
		Workers:      8,
		OpsPerWorker: 100,
		Seed:         7,
		QueryEvery:   10,
	}, reg.ops())
	if err != nil {
		t.Fatal(err)
	}
	if st.Mutations() != 8*100 {
		t.Errorf("mutations=%d, want %d", st.Mutations(), 8*100)
	}
	if st.Queries == 0 {
		t.Error("expected some queries")
	}
	// Every unsubscribe retired a prior subscribe, so the registry must
	// hold exactly the difference.
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if got, want := uint64(len(reg.subs)), st.Subscribes-st.Unsubscribes; got != want {
		t.Errorf("live subscriptions=%d, want %d", got, want)
	}
	if got, want := uint64(len(reg.advs)), st.Advertises-st.Unadvertises; got != want {
		t.Errorf("live advertisements=%d, want %d", got, want)
	}
	if st.Subscribes == 0 || st.Unsubscribes == 0 {
		t.Errorf("degenerate mix: %+v", st)
	}
}

// TestRunChurnSameSeedDeterministic pins the seeding contract RunChurn
// documents and the HA journal replay relies on: the sequence of requests
// each worker makes is a pure function of the seed, independent of
// scheduling. With a single worker the total operation order is
// deterministic too (the mode the ext-ha experiment uses).
func TestRunChurnSameSeedDeterministic(t *testing.T) {
	sch := schema(t, 2)
	record := func(workers int) map[string][]string {
		streams := make(map[string][]string)
		var mu sync.Mutex
		log := func(op, id string, rect dz.Rect) error {
			w, _, _ := strings.Cut(id, "-")
			mu.Lock()
			streams[w] = append(streams[w], fmt.Sprintf("%s %s %v", op, id, rect))
			mu.Unlock()
			return nil
		}
		_, err := RunChurn(sch, ChurnConfig{
			Workers:      workers,
			OpsPerWorker: 80,
			Seed:         4242,
		}, ChurnOps{
			Subscribe:   func(id string, r dz.Rect) error { return log("sub", id, r) },
			Unsubscribe: func(id string) error { return log("unsub", id, dz.Rect{}) },
			Advertise:   func(id string, r dz.Rect) error { return log("adv", id, r) },
			Unadvertise: func(id string) error { return log("unadv", id, dz.Rect{}) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return streams
	}

	for _, workers := range []int{1, 3} {
		a, b := record(workers), record(workers)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers=%d: per-worker op streams differ between identical seeds", workers)
		}
		if len(a) != workers {
			t.Errorf("workers=%d: saw streams for %d workers", workers, len(a))
		}
	}

	// Different seeds must actually diverge, or the test pins nothing.
	one := record(1)
	var mu sync.Mutex
	other := make(map[string][]string)
	_, err := RunChurn(sch, ChurnConfig{Workers: 1, OpsPerWorker: 80, Seed: 4243},
		ChurnOps{
			Subscribe: func(id string, r dz.Rect) error {
				mu.Lock()
				other["w0"] = append(other["w0"], fmt.Sprintf("sub %s %v", id, r))
				mu.Unlock()
				return nil
			},
			Unsubscribe: func(id string) error {
				mu.Lock()
				other["w0"] = append(other["w0"], "unsub "+id)
				mu.Unlock()
				return nil
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(one, other) {
		t.Error("different seeds produced identical op streams")
	}
}

func TestRunChurnStopsOnError(t *testing.T) {
	sch := schema(t, 2)
	ops := newRegistry().ops()
	boom := errors.New("boom")
	var mu sync.Mutex
	calls := 0
	ops.Subscribe = func(id string, rect dz.Rect) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls > 5 {
			return boom
		}
		return nil
	}
	ops.Unsubscribe = func(id string) error { return nil }
	st, err := RunChurn(sch, ChurnConfig{Workers: 4, OpsPerWorker: 1000, Seed: 1}, ops)
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "subscribe") {
		t.Errorf("error lacks context: %v", err)
	}
	if st.Mutations() >= 4*1000 {
		t.Errorf("run did not abort early: %+v", st)
	}
}
