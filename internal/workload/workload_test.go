package workload

import (
	"math"
	"testing"

	"pleroma/internal/space"
)

func schema(t *testing.T, n int) *space.Schema {
	t.Helper()
	s, err := space.UniformSchema(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	sch := schema(t, 2)
	if _, err := New(nil, Uniform, 1); err == nil {
		t.Error("nil schema must fail")
	}
	if _, err := New(sch, Model(99), 1); err == nil {
		t.Error("unknown model must fail")
	}
	if _, err := New(sch, Zipfian, 1, WithHotspots(0)); err == nil {
		t.Error("zero hotspots must fail")
	}
	if _, err := New(sch, Zipfian, 1, WithZipfSkew(0.5)); err == nil {
		t.Error("skew ≤1 must fail")
	}
	if _, err := New(sch, Uniform, 1, WithSubWidth(0, 0.5)); err == nil {
		t.Error("zero min width must fail")
	}
	if _, err := New(sch, Uniform, 1, WithSubWidth(0.5, 0.1)); err == nil {
		t.Error("max<min must fail")
	}
	if _, err := New(sch, Uniform, 1, WithSubWidth(0.5, 1.5)); err == nil {
		t.Error("max>1 must fail")
	}
}

func TestModelString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" {
		t.Error("model strings wrong")
	}
	if Model(0).String() != "unknown" {
		t.Error("zero model must be unknown")
	}
}

func TestDeterminism(t *testing.T) {
	sch := schema(t, 3)
	g1, err := New(sch, Zipfian, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(sch, Zipfian, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e1, e2 := g1.Event(), g2.Event()
		for d := range e1.Values {
			if e1.Values[d] != e2.Values[d] {
				t.Fatal("same seed must yield same events")
			}
		}
	}
	r1, r2 := g1.SubscriptionRect(), g2.SubscriptionRect()
	for d := range r1 {
		if r1[d] != r2[d] {
			t.Fatal("same seed must yield same subscriptions")
		}
	}
}

func TestUniformEventsInDomain(t *testing.T) {
	sch := schema(t, 4)
	g, err := New(sch, Uniform, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range g.Events(500) {
		if len(ev.Values) != 4 {
			t.Fatal("dims wrong")
		}
		for _, v := range ev.Values {
			if v > sch.DomainMax() {
				t.Fatalf("value %d out of domain", v)
			}
		}
	}
}

func TestSubscriptionRectsValid(t *testing.T) {
	sch := schema(t, 3)
	for _, model := range []Model{Uniform, Zipfian} {
		g, err := New(sch, model, 11)
		if err != nil {
			t.Fatal(err)
		}
		for _, rect := range g.SubscriptionRects(300) {
			if err := sch.Geometry().Validate(rect); err != nil {
				t.Fatalf("%v: invalid rect %v: %v", model, rect, err)
			}
		}
	}
}

func TestZipfianClustersAroundHotspots(t *testing.T) {
	sch := schema(t, 2)
	g, err := New(sch, Zipfian, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Hotspot(0); !ok {
		t.Fatal("hotspot 0 must exist")
	}
	if _, ok := g.Hotspot(99); ok {
		t.Fatal("hotspot 99 must not exist")
	}
	// Most events must lie close to some hotspot (within 4σ of spread).
	domain := float64(sch.DomainMax()) + 1
	maxDist := 4 * DefaultSpread * domain
	events := g.Events(1000)
	far := 0
	for _, ev := range events {
		near := false
		for i := 0; i < DefaultHotspots; i++ {
			h, _ := g.Hotspot(i)
			d := 0.0
			for dim := range ev.Values {
				diff := float64(ev.Values[dim]) - float64(h[dim])
				d += diff * diff
			}
			if math.Sqrt(d) <= maxDist*math.Sqrt(float64(sch.Dims())) {
				near = true
				break
			}
		}
		if !near {
			far++
		}
	}
	if frac := float64(far) / float64(len(events)); frac > 0.05 {
		t.Errorf("%.1f%% of zipfian events far from all hotspots", frac*100)
	}
}

func TestZipfianSkewedPopularity(t *testing.T) {
	// The most popular hotspot must attract clearly more events than the
	// average — by counting nearest hotspots.
	sch := schema(t, 2)
	g, err := New(sch, Zipfian, 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, DefaultHotspots)
	for _, ev := range g.Events(2000) {
		best, bestD := 0, math.MaxFloat64
		for i := 0; i < DefaultHotspots; i++ {
			h, _ := g.Hotspot(i)
			d := 0.0
			for dim := range ev.Values {
				diff := float64(ev.Values[dim]) - float64(h[dim])
				d += diff * diff
			}
			if d < bestD {
				best, bestD = i, d
			}
		}
		counts[best]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 2000/DefaultHotspots*2 {
		t.Errorf("zipfian popularity too flat: %v", counts)
	}
}

func TestUniformSpreadsOverDomain(t *testing.T) {
	sch := schema(t, 1)
	g, err := New(sch, Uniform, 13)
	if err != nil {
		t.Fatal(err)
	}
	buckets := make([]int, 4)
	for _, ev := range g.Events(2000) {
		buckets[ev.Values[0]/256]++
	}
	for i, c := range buckets {
		if c < 300 || c > 700 {
			t.Errorf("bucket %d has %d events, expected ~500", i, c)
		}
	}
}

func TestRestrictedDims(t *testing.T) {
	sch := schema(t, 3)
	g, err := New(sch, Zipfian, 21, WithRestrictedDims(map[int]float64{1: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	domain := float64(sch.DomainMax()) + 1
	lo := uint32(domain/2 - 0.05*domain)
	hi := uint32(domain/2 + 0.05*domain)
	for _, ev := range g.Events(500) {
		if ev.Values[1] < lo || ev.Values[1] > hi {
			t.Fatalf("restricted dim value %d outside band [%d,%d]", ev.Values[1], lo, hi)
		}
	}
}

func TestSubscriptionWidthBounds(t *testing.T) {
	sch := schema(t, 2)
	g, err := New(sch, Uniform, 31, WithSubWidth(0.1, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	domain := float64(sch.DomainMax()) + 1
	for _, rect := range g.SubscriptionRects(200) {
		for _, iv := range rect {
			w := float64(iv.Hi-iv.Lo) + 1
			// Clamping at domain edges can shrink the range, so only the
			// upper bound is strict.
			if w > 0.25*domain {
				t.Fatalf("range width %v exceeds bound", w)
			}
		}
	}
}
