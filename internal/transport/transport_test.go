package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/wire"
)

// fakeBackend is a scriptable in-memory Backend recording every call.
type fakeBackend struct {
	mu       sync.Mutex
	controls []wire.ControlReq
	pubs     []wire.PublishReq
	runs     int
	fails    int // rejected control ops (scripted via failOp)
	sinks    map[string]func(wire.Delivery)
	failOp   string // control op to fail, if any
	// deliverOnSubscribe pushes a delivery synchronously from every
	// subscribe, so the frame lands on the connection before the OK — on a
	// reconnect replay that means mid-handshake.
	deliverOnSubscribe bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{sinks: make(map[string]func(wire.Delivery))}
}

func (b *fakeBackend) Info() Info {
	return Info{Hosts: []uint32{10, 11}, Partitions: []int32{0}}
}

func (b *fakeBackend) Control(req wire.ControlReq, deliver func(wire.Delivery)) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if req.Op == b.failOp {
		b.fails++
		return fmt.Errorf("scripted failure for %s", req.Op)
	}
	b.controls = append(b.controls, req)
	if req.Op == "subscribe" {
		b.sinks[req.ID] = deliver
		if b.deliverOnSubscribe {
			deliver(wire.Delivery{SubscriptionID: req.ID, Event: space.Event{Values: []uint32{1, 2}}, At: 9, Latency: 1})
		}
	}
	return nil
}

func (b *fakeBackend) Publish(req wire.PublishReq) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pubs = append(b.pubs, req)
	return nil
}

func (b *fakeBackend) Run() (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.runs++
	// Deliver one event to every sink, as a real Run would.
	for id, sink := range b.sinks {
		sink(wire.Delivery{SubscriptionID: id, Event: space.Event{Values: []uint32{7, 8}}, At: 42, Latency: 5})
	}
	return time.Duration(b.runs) * time.Millisecond, nil
}

func (b *fakeBackend) Digest() ([]byte, error) { return []byte{0xde, 0xad}, nil }

func (b *fakeBackend) ApplyFlowBatch(sw uint32, ops []openflow.FlowOp) ([]openflow.FlowID, error) {
	ids := make([]openflow.FlowID, len(ops))
	for i := range ops {
		ids[i] = openflow.FlowID(uint64(sw)*100 + uint64(i) + 1)
	}
	return ids, nil
}

func (b *fakeBackend) Flows(sw uint32) ([]openflow.Flow, error) {
	f, err := openflow.NewFlow(dz.Expr("0101"), 4, openflow.Action{OutPort: openflow.PortID(sw)})
	if err != nil {
		return nil, err
	}
	f.ID = 9
	return []openflow.Flow{f}, nil
}

func startServer(t *testing.T, b Backend, opts ...ServerOption) (*Server, string) {
	t.Helper()
	srv := NewServer(b, opts...)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return srv, addr.String()
}

func TestClientServerRoundTrip(t *testing.T) {
	b := newFakeBackend()
	reg := obs.NewRegistry()
	_, addr := startServer(t, b, WithServerObservability(reg))
	c, err := Dial(addr, WithClientID("t1"), WithClientObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info := c.Info()
	if len(info.Hosts) != 2 || info.Hosts[0] != 10 {
		t.Fatalf("info = %+v", info)
	}

	var got []wire.Delivery
	var gotMu sync.Mutex
	ranges := []wire.Range{{Attr: "x", Lo: 0, Hi: 99}}
	if err := c.Advertise("p1", 10, ranges); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("s1", 11, ranges, func(d wire.Delivery) {
		gotMu.Lock()
		got = append(got, d)
		gotMu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("p1", []space.Event{{Values: []uint32{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	now, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if now != time.Millisecond {
		t.Fatalf("run returned %v, want 1ms", now)
	}
	// Sync flushes the delivery enqueued during Run.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	gotMu.Lock()
	n := len(got)
	gotMu.Unlock()
	if n != 1 || got[0].SubscriptionID != "s1" || got[0].At != 42 {
		t.Fatalf("deliveries after sync: %+v", got)
	}

	d, err := c.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || d[0] != 0xde {
		t.Fatalf("digest = %x", d)
	}

	if err := c.Unsubscribe("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unadvertise("p1"); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	ops := make([]string, 0, len(b.controls))
	for _, r := range b.controls {
		ops = append(ops, r.Op)
	}
	b.mu.Unlock()
	want := []string{"advertise", "subscribe", "unsubscribe", "unadvertise"}
	if len(ops) != len(want) {
		t.Fatalf("backend saw %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("backend saw %v, want %v", ops, want)
		}
	}
	var framesSent float64
	for _, fam := range reg.Snapshot().Families {
		if fam.Name == obs.MTransportFramesSent {
			for _, s := range fam.Samples {
				framesSent += s.Value
			}
		}
	}
	if framesSent == 0 {
		t.Fatal("transport frame counters not incremented")
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	b := newFakeBackend()
	b.failOp = "advertise"
	_, addr := startServer(t, b)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Advertise("p1", 10, nil)
	if err == nil {
		t.Fatal("scripted backend failure did not propagate")
	}
	// The failed advertise must NOT be recorded for reconnect replay.
	c.mu.Lock()
	n := len(c.advs)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("failed advertise recorded in replay registry (%d entries)", n)
	}
}

func TestClientReconnectReplaysRegistrations(t *testing.T) {
	b := newFakeBackend()
	srv, addr := startServer(t, b)
	c, err := Dial(addr, WithClientRetry(core.RetryPolicy{
		MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		OpDeadline: time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ranges := []wire.Range{{Attr: "x", Lo: 1, Hi: 9}}
	if err := c.Advertise("p1", 10, ranges); err != nil {
		t.Fatal(err)
	}
	var n int
	var nMu sync.Mutex
	if err := c.Subscribe("s1", 11, ranges, func(wire.Delivery) {
		nMu.Lock()
		n++
		nMu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	// Sever the connection: the next call must redial, replay the
	// advertise and subscribe, then serve the request.
	srv.DropConnections()
	if err := c.Publish("p1", []space.Event{{Values: []uint32{3, 4}}}); err != nil {
		t.Fatalf("publish after drop: %v", err)
	}
	b.mu.Lock()
	ops := make([]string, 0, len(b.controls))
	for _, r := range b.controls {
		ops = append(ops, r.Op+":"+r.ID)
	}
	pubs := len(b.pubs)
	b.mu.Unlock()
	want := []string{"advertise:p1", "subscribe:s1", "advertise:p1", "subscribe:s1"}
	if len(ops) != len(want) {
		t.Fatalf("control ops %v, want %v (original + replay)", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("control ops %v, want %v", ops, want)
		}
	}
	if pubs != 1 {
		t.Fatalf("%d publishes reached the backend, want 1", pubs)
	}
	// Deliveries still flow to the rebound sink after reconnect.
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	nMu.Lock()
	defer nMu.Unlock()
	if n != 1 {
		t.Fatalf("deliveries after reconnect = %d, want 1", n)
	}
}

// TestDeliveryDuringReconnectHandshake guards against a reconnect
// self-deadlock: as soon as a replayed subscribe rebinds its sink, the
// server may push deliveries onto the new connection while the client is
// still mid-handshake holding its mutex. Those frames must be buffered
// and dispatched after the handshake — neither dropped nor dispatched
// under the lock.
func TestDeliveryDuringReconnectHandshake(t *testing.T) {
	b := newFakeBackend()
	b.deliverOnSubscribe = true
	srv, addr := startServer(t, b)
	c, err := Dial(addr, WithClientRetry(core.RetryPolicy{
		MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		OpDeadline: 2 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var mu sync.Mutex
	n := 0
	if err := c.Subscribe("s1", 11, nil, func(wire.Delivery) {
		mu.Lock()
		n++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	before := n
	mu.Unlock()
	if before != 1 {
		t.Fatalf("deliveries after subscribe: %d, want 1", before)
	}

	// Sever the connection: the next call redials and replays the
	// subscribe, and the replay pushes a delivery before the handshake
	// completes.
	srv.DropConnections()
	done := make(chan error, 1)
	go func() { done <- c.Sync() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sync after drop: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client deadlocked dispatching a mid-handshake delivery")
	}
	mu.Lock()
	after := n
	mu.Unlock()
	if after != 2 {
		t.Fatalf("deliveries after reconnect: %d, want 2 (handshake delivery dispatched)", after)
	}
}

// TestServerErrorNotRetried: a semantic backend rejection is not a
// transport failure — it must surface on the first attempt instead of
// burning the retry budget on an op the server will never accept.
func TestServerErrorNotRetried(t *testing.T) {
	b := newFakeBackend()
	b.failOp = "advertise"
	_, addr := startServer(t, b)
	c, err := Dial(addr, WithClientRetry(core.RetryPolicy{
		MaxAttempts: 5, BaseBackoff: time.Millisecond, OpDeadline: time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Advertise("p1", 10, nil); err == nil {
		t.Fatal("scripted rejection did not propagate")
	}
	b.mu.Lock()
	fails := b.fails
	b.mu.Unlock()
	if fails != 1 {
		t.Fatalf("backend saw %d attempts of a rejected advertise, want 1", fails)
	}
}

func TestClientRetryExhaustion(t *testing.T) {
	b := newFakeBackend()
	srv, addr := startServer(t, b)
	c, err := Dial(addr, WithClientRetry(core.RetryPolicy{
		MaxAttempts: 2, BaseBackoff: time.Millisecond, OpDeadline: 100 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Stop() // server gone for good: no listener to redial
	if err := c.Advertise("p", 10, nil); err == nil {
		t.Fatal("calls against a dead server must fail after retries")
	}
}

func TestGracefulStopDrainsInflight(t *testing.T) {
	b := newFakeBackend()
	srv, addr := startServer(t, b)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Advertise("p1", 10, nil); err != nil {
		t.Fatal(err)
	}
	// Stop with no requests in flight: the client sees a Goodbye; further
	// calls fail after retry exhaustion rather than hanging.
	srv.Stop()
	if err := c.Sync(); err == nil {
		t.Fatal("sync against a stopped server must fail")
	}
}

// TestControllerOverRemoteSouthbound is the process-split proof at the
// southbound boundary: a core.Controller whose FlowProgrammer is a
// RemoteProgrammer (every FlowMod batch and table read crosses TCP)
// produces switch tables identical to a controller wired directly to the
// same emulated data plane.
func TestControllerOverRemoteSouthbound(t *testing.T) {
	build := func(t *testing.T) (*topo.Graph, *netem.DataPlane) {
		g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
		if err != nil {
			t.Fatal(err)
		}
		return g, netem.New(g, sim.NewEngine())
	}
	drive := func(t *testing.T, g *topo.Graph, ctl *core.Controller) {
		hosts := g.Hosts()
		if _, err := ctl.Advertise("p1", hosts[0], dz.NewSet(dz.Expr("01"))); err != nil {
			t.Fatal(err)
		}
		if _, err := ctl.Subscribe("s1", hosts[5], dz.NewSet(dz.Expr("0101"))); err != nil {
			t.Fatal(err)
		}
		if _, err := ctl.Subscribe("s2", hosts[2], dz.NewSet(dz.Expr("011"))); err != nil {
			t.Fatal(err)
		}
		if _, err := ctl.Unsubscribe("s2"); err != nil {
			t.Fatal(err)
		}
	}

	// Direct: controller and data plane share the process.
	gd, dpd := build(t)
	direct, err := core.NewController(gd, dpd, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, gd, direct)

	// Remote: same drive, but every southbound call crosses the wire.
	gr, dpr := build(t)
	_, addr := startServer(t, &dataPlaneBackend{dp: dpr})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	remote, err := core.NewController(gr, NewRemoteProgrammer(cli), core.WithHostAddr(netem.HostAddr))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, gr, remote)
	if err := remote.VerifyTables(); err != nil {
		t.Fatalf("remote-programmed tables inconsistent: %v", err)
	}

	for _, sw := range gd.Switches() {
		df, err := dpd.Flows(sw)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := dpr.Flows(sw)
		if err != nil {
			t.Fatal(err)
		}
		if len(df) != len(rf) {
			t.Fatalf("switch %d: %d flows direct vs %d remote", sw, len(df), len(rf))
		}
		for i := range df {
			if df[i].Expr != rf[i].Expr || df[i].Priority != rf[i].Priority ||
				len(df[i].Actions) != len(rf[i].Actions) {
				t.Fatalf("switch %d flow %d differs: %+v vs %+v", sw, i, df[i], rf[i])
			}
		}
	}
}

// dataPlaneBackend adapts a bare netem.DataPlane as a transport Backend —
// only the southbound surface is live.
type dataPlaneBackend struct {
	dp *netem.DataPlane
}

func (b *dataPlaneBackend) Info() Info { return Info{} }
func (b *dataPlaneBackend) Control(wire.ControlReq, func(wire.Delivery)) error {
	return fmt.Errorf("control not supported")
}
func (b *dataPlaneBackend) Publish(wire.PublishReq) error { return fmt.Errorf("publish not supported") }
func (b *dataPlaneBackend) Run() (time.Duration, error)   { return 0, fmt.Errorf("run not supported") }
func (b *dataPlaneBackend) Digest() ([]byte, error)       { return nil, fmt.Errorf("digest not supported") }
func (b *dataPlaneBackend) ApplyFlowBatch(sw uint32, ops []openflow.FlowOp) ([]openflow.FlowID, error) {
	return b.dp.ApplyBatch(topo.NodeID(sw), ops)
}
func (b *dataPlaneBackend) Flows(sw uint32) ([]openflow.Flow, error) {
	return b.dp.Flows(topo.NodeID(sw))
}
