package transport

import (
	"sync"

	"pleroma/internal/wire"
)

// Encode-side buffer slabs. Frame payloads cluster in a handful of size
// bands (the MTransportFrameBytes histogram is the receipts): control
// responses and single deliveries land under 256 B, coalesced PublishReq
// and DeliverBatch payloads under a few KiB, and chunked delivery batches
// top out at the transport's batch byte budget. One sync.Pool per
// power-of-four class covers the spread without holding a 1 MiB slab for
// every 100-byte ack.
var slabClasses = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, wire.MaxFramePayload + wire.FrameHeaderLen}

var slabPools [len(slabClasses)]sync.Pool

// getBuf returns a zero-length buffer with capacity ≥ n, drawn from the
// smallest fitting slab class (freshly allocated when the pool is empty or
// n exceeds every class).
func getBuf(n int) []byte {
	for i, c := range slabClasses {
		if n <= c {
			if p, _ := slabPools[i].Get().(*[]byte); p != nil {
				return (*p)[:0]
			}
			return make([]byte, 0, c)
		}
	}
	return make([]byte, 0, n)
}

// putBuf returns a buffer obtained from getBuf to its slab class. Buffers
// whose capacity matches no class (grown by append, or foreign) are left
// to the GC.
func putBuf(b []byte) {
	if b == nil {
		return
	}
	c := cap(b)
	for i, sc := range slabClasses {
		if c == sc {
			b = b[:0]
			slabPools[i].Put(&b)
			return
		}
	}
}
