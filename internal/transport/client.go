package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/wire"
)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientID names the client in its Hello (diagnostics only).
func WithClientID(id string) ClientOption {
	return func(c *Client) { c.id = id }
}

// WithClientRetry sets the reconnect/backoff policy. The zero default is
// core.DefaultRetryPolicy: a handful of attempts under capped exponential
// backoff, with OpDeadline bounding each request's wait.
func WithClientRetry(p core.RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithClientOptions tunes the client's transport data path: deadlines,
// the async publish window, and the coalescing thresholds. The zero
// Options keeps every default.
func WithClientOptions(o Options) ClientOption {
	return func(c *Client) { c.opts = o }
}

// WithClientObservability attaches the client's transport counters to reg.
func WithClientObservability(reg *obs.Registry) ClientOption {
	return func(c *Client) {
		if reg == nil {
			return
		}
		c.m = connMetrics{
			framesSent: reg.Counter(obs.MTransportFramesSent, "Frames written to transport connections."),
			framesRecv: reg.Counter(obs.MTransportFramesRecv, "Frames read from transport connections."),
			bytesSent:  reg.Counter(obs.MTransportBytesSent, "Bytes written to transport connections."),
			bytesRecv:  reg.Counter(obs.MTransportBytesRecv, "Bytes read from transport connections."),
			writeBatch: newWriteBatchHistogram(reg),
			flushes:    newFlushCounterVec(reg),
			frameBytes: newFrameBytesHistogram(reg),
		}
		c.obsReconnects = reg.Counter(obs.MTransportReconnects, "Client redials after a lost transport connection.")
		c.obsWall = reg.Histogram(obs.MClientDeliveryWallLatency,
			"Wall-clock publish-to-delivery latency measured at the subscribing client (skew-free when this client published).",
			obs.DefaultLatencyBuckets...)
		c.obsWindow = reg.Gauge(obs.MTransportPublishWindow, "Outstanding unacked async publishes (window occupancy).")
		c.obsCoalesce = obs.NewCountHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096)
		reg.AttachHistogram(obs.MTransportPublishCoalesced, "Events coalesced per async PublishReq.", "", "", c.obsCoalesce)
	}
}

// WithClientTracer enables distributed tracing: the client advertises
// wire.FlagTracing in its Hello, mints a span per publish whose context
// rides the publish frame, and links incoming traced deliveries back to
// their publish span. Without the server echoing the capability the
// client sends plain v1 payloads.
func WithClientTracer(t *obs.Tracer) ClientOption {
	return func(c *Client) { c.tracer = t }
}

// advReg / subReg record a client's registrations in arrival order, so a
// reconnect can replay them: the server treats identical re-registration
// as an idempotent rebind, leaving journal and digest untouched.
type advReg struct {
	id     string
	host   uint32
	ranges []wire.Range
}

type subReg struct {
	id      string
	host    uint32
	ranges  []wire.Range
	handler func(wire.Delivery)
}

// Client is one process's connection to a pleroma-d daemon. All exported
// methods are safe for concurrent use; requests are correlated by id, so
// several may be in flight at once. A lost connection is redialed under
// the retry policy and every advertisement and subscription re-registered
// before the failed request is retried.
type Client struct {
	addr  string
	id    string
	retry core.RetryPolicy
	opts  Options
	m     connMetrics

	obsReconnects *obs.Counter
	obsWall       *obs.Histogram
	obsWindow     *obs.Gauge
	obsCoalesce   *obs.Histogram
	tracer        *obs.Tracer

	mu       sync.Mutex
	fc       *frameConn
	corr     uint64
	pending  map[uint64]chan callResult
	advs     []advReg
	subs     []subReg
	handlers map[string]func(wire.Delivery)
	info     Info
	closed   bool
	// tracing is true when the current connection's handshake negotiated
	// wire.FlagTracing (both sides advertised it).
	tracing bool
	// batching is true when the current connection's handshake negotiated
	// wire.FlagBatching (the server coalesces delivery frames).
	batching bool
	// pubSeq numbers this client's publishes so the server can deduplicate
	// an at-least-once retry of a publish it already applied.
	pubSeq uint64
	// gen counts established connections; reconnect attempts pass the gen
	// they observed so only one caller redials a given dead connection.
	gen int

	// Pipelined publish state (async.go). winCond signals window credit
	// and completions; apend holds per-publisher coalescing buffers; awin
	// is the FIFO in-flight window; acorr routes acks to window entries;
	// aerr is the sticky pipeline failure.
	winCond   *sync.Cond
	apend     map[string]*pubPending
	awin      []*asyncEntry
	acorr     map[uint64]*asyncEntry
	aerr      error
	redialing bool
	lingerOn  bool
}

// callResult is what a pending call receives: either a response frame
// (including server KindError rejections, which are NOT retried) or a
// transport error (lost connection — retryable).
type callResult struct {
	f   wire.Frame
	err error
}

// Dial connects to a daemon and performs the Hello handshake.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{
		addr:     addr,
		id:       "client",
		retry:    core.DefaultRetryPolicy,
		pending:  make(map[uint64]chan callResult),
		handlers: make(map[string]func(wire.Delivery)),
		apend:    make(map[string]*pubPending),
		acorr:    make(map[uint64]*asyncEntry),
	}
	c.winCond = sync.NewCond(&c.mu)
	for _, opt := range opts {
		opt(c)
	}
	c.mu.Lock()
	start, err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	start()
	return c, nil
}

// connectLocked dials, handshakes, and replays registrations, all
// synchronously on the fresh connection (its reader goroutine starts only
// afterwards, so the round-trips below own the socket). Callers hold c.mu
// and, on success, MUST invoke the returned start function after releasing
// it: start dispatches any deliveries the server pushed mid-handshake
// (they cannot be dispatched under c.mu — handlers may call back into the
// client) and only then spawns the reader goroutine, preserving delivery
// order.
func (c *Client) connectLocked() (start func(), err error) {
	raw, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(raw)
	// Deliveries arriving during the handshake (the replayed subscribes
	// rebind the server-side sinks to this connection, so another client's
	// Run may already be pushing) are buffered and dispatched by start.
	var buffered []wire.Frame
	rt := func(f wire.Frame) (wire.Frame, error) {
		b, err := wire.AppendFrame(nil, f)
		if err != nil {
			return wire.Frame{}, err
		}
		if c.retry.OpDeadline > 0 {
			raw.SetDeadline(time.Now().Add(c.retry.OpDeadline))
		}
		if _, err := raw.Write(b); err != nil {
			return wire.Frame{}, err
		}
		for {
			resp, err := readFrame(br, c.m)
			if err != nil {
				return wire.Frame{}, err
			}
			if resp.Kind == wire.KindDeliver || resp.Kind == wire.KindDeliverBatch {
				buffered = append(buffered, resp)
				continue
			}
			return resp, nil
		}
	}

	var flags uint8
	if c.tracer != nil {
		flags |= wire.FlagTracing
	}
	if !c.opts.NoBatching {
		// Decoding KindDeliverBatch needs no configuration, so every
		// client advertises it unless pinned to the legacy stream.
		flags |= wire.FlagBatching
	}
	hb, err := wire.EncodeHello(wire.Hello{ID: c.id, Flags: flags})
	if err != nil {
		raw.Close()
		return nil, err
	}
	resp, err := rt(wire.Frame{Kind: wire.KindHello, Corr: 1, Payload: hb})
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	if resp.Kind != wire.KindHelloOK {
		raw.Close()
		return nil, fmt.Errorf("transport: hello rejected: %s", respError(resp))
	}
	hello, err := wire.DecodeHelloOK(resp.Payload)
	if err != nil {
		raw.Close()
		return nil, err
	}
	c.info = Info{Hosts: hello.Hosts, Partitions: hello.Partitions}
	c.tracing = c.tracer != nil && hello.Flags&wire.FlagTracing != 0
	c.batching = hello.Flags&wire.FlagBatching != 0

	// Replay registrations in arrival order. On the server these are
	// idempotent rebinds: control state, journal, and digests are
	// untouched when the parameters match what it already holds.
	corr := uint64(1)
	replay := func(op, id string, host uint32, ranges []wire.Range) error {
		corr++
		b, err := wire.EncodeControlReq(wire.ControlReq{Op: op, ID: id, Host: host, Ranges: ranges})
		if err != nil {
			return err
		}
		resp, err := rt(wire.Frame{Kind: wire.KindControl, Corr: corr, Payload: b})
		if err != nil {
			return err
		}
		if resp.Kind != wire.KindOK {
			return fmt.Errorf("transport: replay %s %q: %s", op, id, respError(resp))
		}
		return nil
	}
	for _, a := range c.advs {
		if err := replay("advertise", a.id, a.host, a.ranges); err != nil {
			raw.Close()
			return nil, err
		}
	}
	for _, s := range c.subs {
		if err := replay("subscribe", s.id, s.host, s.ranges); err != nil {
			raw.Close()
			return nil, err
		}
	}

	raw.SetDeadline(time.Time{})
	wt := c.retry.OpDeadline
	if c.opts.WriteTimeout > 0 {
		wt = c.opts.WriteTimeout
	}
	fc := newFrameConn(raw, wt, c.m)
	c.fc = fc
	c.corr = corr
	c.gen++
	gen := c.gen
	// Re-send the unacked async publish window, FIFO, while still holding
	// c.mu: the fresh connection's queue is empty, so these frames are
	// guaranteed to precede any retried or new request — preserving the
	// per-publisher sequence order the server's dedup depends on.
	for _, e := range c.awin {
		c.sendEntryLocked(e)
	}
	return func() {
		for _, f := range buffered {
			c.dispatchDelivery(f)
		}
		go c.readLoop(fc, br, gen)
	}, nil
}

// readLoop dispatches incoming frames: deliveries to their subscription
// handlers, async publish acks to their window entries, and responses to
// their waiting callers. On a read error every pending call fails fast,
// and the next request redials. Frames are read into one reusable buffer:
// delivery decode and ack routing consume the payload before the next
// read, and the one escape path (a pending call's response) copies it.
func (c *Client) readLoop(fc *frameConn, br *bufio.Reader, gen int) {
	buf := make([]byte, 0, 4096)
	for {
		var f wire.Frame
		var err error
		if c.opts.ReadTimeout > 0 {
			fc.c.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
		}
		f, buf, err = readFrameBuf(br, c.m, buf)
		if err != nil {
			c.connLost(fc, gen)
			return
		}
		switch f.Kind {
		case wire.KindDeliver, wire.KindDeliverBatch:
			c.dispatchDelivery(f)
		case wire.KindGoodbye:
			c.connLost(fc, gen)
			return
		default:
			c.mu.Lock()
			if e, ok := c.acorr[f.Corr]; ok {
				delete(c.acorr, f.Corr)
				var aerr error
				if f.Kind != wire.KindOK {
					aerr = fmt.Errorf("transport: async publish: %s", respError(f))
				}
				c.completeEntryLocked(e, aerr)
				c.mu.Unlock()
				continue
			}
			ch := c.pending[f.Corr]
			delete(c.pending, f.Corr)
			c.mu.Unlock()
			if ch != nil {
				f.Payload = append([]byte(nil), f.Payload...)
				ch <- callResult{f: f}
			}
		}
	}
}

// dispatchDelivery decodes and dispatches one KindDeliver or
// KindDeliverBatch frame in order.
func (c *Client) dispatchDelivery(f wire.Frame) {
	if f.Kind == wire.KindDeliverBatch {
		ds, err := wire.DecodeDeliverBatch(f.Payload)
		if err != nil {
			return
		}
		for _, d := range ds {
			c.dispatchOne(d)
		}
		return
	}
	d, err := wire.DecodeDelivery(f.Payload)
	if err != nil {
		return
	}
	c.dispatchOne(d)
}

func (c *Client) dispatchOne(d wire.Delivery) {
	if d.Trace.PubWallNanos != 0 {
		// Client-side wall latency against the echoed publish stamp:
		// skew-free when this client (or this machine) published.
		c.obsWall.Observe(time.Duration(time.Now().UnixNano() - d.Trace.PubWallNanos))
	}
	if c.tracer != nil && d.Trace.TraceID != 0 {
		// Close the loop on the distributed trace: one recv span per
		// delivered event, parented to the span the frame carried.
		c.tracer.StartRemoteSpan(d.Trace.TraceID, d.Trace.SpanID, "recv", d.SubscriptionID).End(nil)
	}
	c.mu.Lock()
	h := c.handlers[d.SubscriptionID]
	c.mu.Unlock()
	if h != nil {
		h(d)
	}
}

// connLost tears down the given connection generation and fails its
// pending calls so they can retry on a fresh dial. Async window entries
// are NOT failed: they stay queued (their correlations cleared) and the
// redial goroutine re-sends them on the next connection.
func (c *Client) connLost(fc *frameConn, gen int) {
	c.mu.Lock()
	if c.fc != fc || c.gen != gen {
		c.mu.Unlock()
		return
	}
	c.fc = nil
	pend := c.pending
	c.pending = make(map[uint64]chan callResult)
	for corr, e := range c.acorr {
		delete(c.acorr, corr)
		e.corr = 0
	}
	c.ensureRedialLocked()
	c.winCond.Broadcast()
	c.mu.Unlock()
	fc.abort()
	for _, ch := range pend {
		ch <- callResult{err: fmt.Errorf("transport: connection lost")}
	}
}

// respError extracts the server error message from an Error frame.
func respError(f wire.Frame) string {
	if f.Kind == wire.KindError {
		return string(f.Payload)
	}
	return fmt.Sprintf("unexpected response kind %v", f.Kind)
}

// call performs one correlated request/response, redialing (with the
// retry policy's backoff) when the connection is down or lost mid-call.
// Only transport failures are retried; a server KindError response is a
// semantic rejection and is returned immediately for the caller to
// surface.
func (c *Client) call(kind wire.Kind, payload []byte) (wire.Frame, error) {
	pol := c.retry
	var lastErr error
	sleep := pol.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	attempts := pol.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			backoff := pol.BaseBackoff << uint(attempt-1)
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
			if backoff > 0 {
				sleep(backoff)
			}
		}
		resp, err := c.attempt(kind, payload, attempt > 0)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return wire.Frame{}, fmt.Errorf("transport: %d attempts exhausted: %w", attempts, lastErr)
}

func (c *Client) attempt(kind wire.Kind, payload []byte, isRetry bool) (wire.Frame, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wire.Frame{}, fmt.Errorf("transport: client closed")
	}
	var start func()
	if c.fc == nil {
		if isRetry {
			c.obsReconnects.Inc()
		}
		var err error
		if start, err = c.connectLocked(); err != nil {
			c.mu.Unlock()
			return wire.Frame{}, err
		}
	}
	fc := c.fc
	c.corr++
	corr := c.corr
	ch := make(chan callResult, 1)
	c.pending[corr] = ch
	c.mu.Unlock()
	if start != nil {
		// Fresh connection: flush handshake-buffered deliveries and start
		// the reader now that c.mu is released (handlers may re-enter the
		// client). Must run before awaiting the response below — the
		// reader is what completes it.
		start()
	}

	if err := fc.send(wire.Frame{Kind: kind, Corr: corr, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, corr)
		c.mu.Unlock()
		return wire.Frame{}, err
	}

	var timeout <-chan time.Time
	if c.retry.OpDeadline > 0 {
		t := time.NewTimer(c.retry.OpDeadline)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return wire.Frame{}, res.err // transport failure: retryable
		}
		// Server responses — including KindError rejections — complete the
		// call; callers inspect the frame kind.
		return res.f, nil
	case <-timeout:
		c.mu.Lock()
		delete(c.pending, corr)
		c.mu.Unlock()
		return wire.Frame{}, fmt.Errorf("transport: request timed out")
	}
}

// Info returns the deployment description from the Hello handshake.
func (c *Client) Info() Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.info
}

func (c *Client) control(op, id string, host uint32, ranges []wire.Range) error {
	b, err := wire.EncodeControlReq(wire.ControlReq{Op: op, ID: id, Host: host, Ranges: ranges})
	if err != nil {
		return err
	}
	resp, err := c.call(wire.KindControl, b)
	if err != nil {
		return err
	}
	if resp.Kind != wire.KindOK {
		return fmt.Errorf("transport: %s %q: %s", op, id, respError(resp))
	}
	return nil
}

// Advertise announces a publisher's region (attribute ranges) on a host.
func (c *Client) Advertise(id string, host uint32, ranges []wire.Range) error {
	if err := c.control("advertise", id, host, ranges); err != nil {
		return err
	}
	c.mu.Lock()
	c.advs = append(c.advs, advReg{id: id, host: host, ranges: ranges})
	c.mu.Unlock()
	return nil
}

// Unadvertise withdraws an advertisement.
func (c *Client) Unadvertise(id string) error {
	if err := c.control("unadvertise", id, 0, nil); err != nil {
		return err
	}
	c.mu.Lock()
	c.advs = removeAdv(c.advs, id)
	c.mu.Unlock()
	return nil
}

// Subscribe registers a subscription; handler fires on the client's reader
// goroutine for every delivered event.
func (c *Client) Subscribe(id string, host uint32, ranges []wire.Range, handler func(wire.Delivery)) error {
	c.mu.Lock()
	c.handlers[id] = handler
	c.mu.Unlock()
	if err := c.control("subscribe", id, host, ranges); err != nil {
		c.mu.Lock()
		delete(c.handlers, id)
		c.mu.Unlock()
		return err
	}
	c.mu.Lock()
	c.subs = append(c.subs, subReg{id: id, host: host, ranges: ranges, handler: handler})
	c.mu.Unlock()
	return nil
}

// Unsubscribe withdraws a subscription.
func (c *Client) Unsubscribe(id string) error {
	if err := c.control("unsubscribe", id, 0, nil); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.handlers, id)
	c.subs = removeSub(c.subs, id)
	c.mu.Unlock()
	return nil
}

// Publish injects events from the advertised publisher id. Each publish
// carries a client-assigned sequence number: a reconnect retry re-sends
// the same number, and the server skips publishes it already applied, so
// the at-least-once transport retry applies events at most once.
//
// With a tracer and a negotiated tracing session, the publish mints a
// root span whose context rides the request. The frame is encoded exactly
// once, so a reconnect retry re-sends the same bytes: the same sequence
// number AND the same trace context, keeping a deduplicated retry inside
// a single trace.
func (c *Client) Publish(id string, events []space.Event) error {
	c.mu.Lock()
	// Seal any pending async batch for this publisher first, so a
	// sequential PublishAsync-then-Publish caller sees its events applied
	// in call order (both frames ride the same FIFO, window first).
	if pb := c.apend[id]; pb != nil && len(pb.events) > 0 {
		if err := c.sealLocked(id); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	c.pubSeq++
	seq := c.pubSeq
	tracing := c.tracing
	c.mu.Unlock()
	req := wire.PublishReq{ID: id, Seq: seq, Events: events}
	var sp *obs.Span
	if tracing {
		sp = c.tracer.StartSpan("publish", id)
		if sp != nil {
			req.Trace = wire.TraceContext{
				TraceID:      sp.TraceID,
				SpanID:       sp.ID,
				PubWallNanos: time.Now().UnixNano(),
			}
		}
	}
	b, err := wire.EncodePublish(req)
	if err != nil {
		sp.End(err)
		return err
	}
	resp, err := c.call(wire.KindPublish, b)
	if err != nil {
		sp.End(err)
		return err
	}
	if resp.Kind != wire.KindOK {
		err = fmt.Errorf("transport: publish %q: %s", id, respError(resp))
		sp.End(err)
		return err
	}
	sp.End(nil)
	return nil
}

// Run drains the daemon's pending simulated work and returns the final
// simulated time — the remote form of System.Run.
func (c *Client) Run() (time.Duration, error) {
	resp, err := c.call(wire.KindRun, nil)
	if err != nil {
		return 0, err
	}
	if resp.Kind != wire.KindRunDone || len(resp.Payload) != 8 {
		return 0, fmt.Errorf("transport: run: %s", respError(resp))
	}
	return time.Duration(binary.BigEndian.Uint64(resp.Payload)), nil
}

// Sync waits until every delivery the daemon enqueued for this client
// before the Sync has been received and dispatched: the OK response rides
// the same FIFO behind them.
func (c *Client) Sync() error {
	resp, err := c.call(wire.KindSync, nil)
	if err != nil {
		return err
	}
	if resp.Kind != wire.KindOK {
		return fmt.Errorf("transport: sync: %s", respError(resp))
	}
	return nil
}

// Digest returns the daemon's control-plane state digest.
func (c *Client) Digest() ([]byte, error) {
	resp, err := c.call(wire.KindDigest, nil)
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindDigestResult {
		return nil, fmt.Errorf("transport: digest: %s", respError(resp))
	}
	return resp.Payload, nil
}

// Close sends a Goodbye and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	fc := c.fc
	c.fc = nil
	c.winCond.Broadcast() // wake Flush/backpressure waiters: client is gone
	c.mu.Unlock()
	if fc != nil {
		fc.send(wire.Frame{Kind: wire.KindGoodbye})
		fc.close()
	}
	return nil
}

func removeAdv(s []advReg, id string) []advReg {
	out := s[:0]
	for _, a := range s {
		if a.id != id {
			out = append(out, a)
		}
	}
	return out
}

func removeSub(s []subReg, id string) []subReg {
	out := s[:0]
	for _, x := range s {
		if x.id != id {
			out = append(out, x)
		}
	}
	return out
}

// RemoteProgrammer is the southbound interface over the transport: a
// core.BatchFlowProgrammer/FlowReader whose switches live behind a TCP
// connection. It is what lets a core.Controller run in a different process
// from the data plane — the controller programs and reads real switch
// tables through FlowBatch/FlowRead round-trips.
type RemoteProgrammer struct {
	c *Client
}

// NewRemoteProgrammer wraps a connected client.
func NewRemoteProgrammer(c *Client) *RemoteProgrammer { return &RemoteProgrammer{c: c} }

var (
	_ core.BatchFlowProgrammer = (*RemoteProgrammer)(nil)
	_ core.FlowReader          = (*RemoteProgrammer)(nil)
)

// ApplyBatch ships one FlowMod bundle for a switch across the wire.
func (r *RemoteProgrammer) ApplyBatch(sw topo.NodeID, ops []openflow.FlowOp) ([]openflow.FlowID, error) {
	b, err := wire.EncodeFlowBatch(wire.FlowBatch{Switch: uint32(sw), Ops: ops})
	if err != nil {
		return nil, err
	}
	resp, err := r.c.call(wire.KindFlowBatch, b)
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindFlowResult {
		return nil, fmt.Errorf("transport: flow batch: %s", respError(resp))
	}
	res, err := wire.DecodeFlowResult(resp.Payload)
	if err != nil {
		return nil, err
	}
	if res.Err != "" {
		return res.IDs, fmt.Errorf("%s", res.Err)
	}
	return res.IDs, nil
}

// AddFlow programs one flow (single-op batch).
func (r *RemoteProgrammer) AddFlow(sw topo.NodeID, f openflow.Flow) (openflow.FlowID, error) {
	ids, err := r.ApplyBatch(sw, []openflow.FlowOp{openflow.AddOp(f)})
	if err != nil {
		return 0, err
	}
	if len(ids) != 1 {
		return 0, fmt.Errorf("transport: add flow: %d ids returned", len(ids))
	}
	return ids[0], nil
}

// DeleteFlow removes one flow (single-op batch).
func (r *RemoteProgrammer) DeleteFlow(sw topo.NodeID, id openflow.FlowID) error {
	_, err := r.ApplyBatch(sw, []openflow.FlowOp{openflow.DeleteOp(id)})
	return err
}

// ModifyFlow rewrites one flow's priority and instruction set.
func (r *RemoteProgrammer) ModifyFlow(sw topo.NodeID, id openflow.FlowID, priority int, actions []openflow.Action) error {
	_, err := r.ApplyBatch(sw, []openflow.FlowOp{openflow.ModifyOp(id, priority, actions)})
	return err
}

// Flows reads the installed table of one switch across the wire.
func (r *RemoteProgrammer) Flows(sw topo.NodeID) ([]openflow.Flow, error) {
	resp, err := r.c.call(wire.KindFlowRead, wire.EncodeU32(uint32(sw)))
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindFlowList {
		return nil, fmt.Errorf("transport: flow read: %s", respError(resp))
	}
	l, err := wire.DecodeFlowList(resp.Payload)
	if err != nil {
		return nil, err
	}
	return l.Flows, nil
}
