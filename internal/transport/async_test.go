package transport

import (
	"sync"
	"testing"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/obs"
	"pleroma/internal/space"
	"pleroma/internal/wire"
)

// histCount sums a histogram family's sample counts in a registry
// snapshot (0 when the family is absent or empty).
func histCount(reg *obs.Registry, name string) uint64 {
	var n uint64
	for _, fam := range reg.Snapshot().Families {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			if s.Hist != nil {
				n += s.Hist.Count
			}
		}
	}
	return n
}

// TestPublishAsyncCoalescing pins the deterministic coalescing shape: with
// linger effectively off and a 4-event threshold, 16 single-event
// PublishAsync calls become exactly 4 in-order PublishReqs of 4 events.
func TestPublishAsyncCoalescing(t *testing.T) {
	b := newFakeBackend()
	_, addr := startServer(t, b)
	c, err := Dial(addr, WithClientOptions(Options{BatchEvents: 4, Linger: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ranges := []wire.Range{{Attr: "x", Lo: 0, Hi: 99}}
	if err := c.Advertise("p1", 10, ranges); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := c.PublishAsync("p1", []space.Event{{Values: []uint32{uint32(i), 2}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pubs) != 4 {
		t.Fatalf("backend saw %d publish requests, want 4", len(b.pubs))
	}
	next := uint32(0)
	for i, req := range b.pubs {
		if req.ID != "p1" || req.Seq != uint64(i+1) || len(req.Events) != 4 {
			t.Fatalf("req %d = id %q seq %d events %d, want p1/%d/4", i, req.ID, req.Seq, len(req.Events), i+1)
		}
		for _, ev := range req.Events {
			if ev.Values[0] != next {
				t.Fatalf("event order drifted: got %d want %d", ev.Values[0], next)
			}
			next++
		}
	}
}

// TestPublishAsyncSyncOrdering pins the mixed-path ordering rule: a
// synchronous Publish seals the publisher's pending async batch first, so
// a sequential caller's events reach the backend in call order with
// monotonically increasing sequence numbers.
func TestPublishAsyncSyncOrdering(t *testing.T) {
	b := newFakeBackend()
	_, addr := startServer(t, b)
	c, err := Dial(addr, WithClientOptions(Options{Linger: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Advertise("p1", 10, []wire.Range{{Attr: "x", Lo: 0, Hi: 99}}); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishAsync("p1", []space.Event{{Values: []uint32{1, 1}}, {Values: []uint32{2, 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("p1", []space.Event{{Values: []uint32{3, 3}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pubs) != 2 {
		t.Fatalf("backend saw %d publish requests, want 2", len(b.pubs))
	}
	if len(b.pubs[0].Events) != 2 || b.pubs[0].Seq != 1 {
		t.Fatalf("first req = seq %d with %d events, want async batch seq 1 with 2", b.pubs[0].Seq, len(b.pubs[0].Events))
	}
	if len(b.pubs[1].Events) != 1 || b.pubs[1].Seq != 2 || b.pubs[1].Events[0].Values[0] != 3 {
		t.Fatalf("second req = %+v, want the sync publish at seq 2", b.pubs[1])
	}
}

// blockingBackend gates Publish on a channel, so a test can hold acks back
// and observe the client's window fill.
type blockingBackend struct {
	*fakeBackend
	gate chan struct{}
}

func (b *blockingBackend) Publish(req wire.PublishReq) error {
	<-b.gate
	return b.fakeBackend.Publish(req)
}

// TestPublishAsyncWindowBackpressure proves the credit window blocks: with
// a window of 2 and acks withheld, the third single-event batch cannot be
// sealed until an ack frees a slot.
func TestPublishAsyncWindowBackpressure(t *testing.T) {
	b := &blockingBackend{fakeBackend: newFakeBackend(), gate: make(chan struct{})}
	_, addr := startServer(t, b)
	c, err := Dial(addr, WithClientOptions(Options{Window: 2, BatchEvents: 1, Linger: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Advertise("p1", 10, []wire.Range{{Attr: "x", Lo: 0, Hi: 99}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.PublishAsync("p1", []space.Event{{Values: []uint32{uint32(i), 0}}}); err != nil {
			t.Fatal(err)
		}
	}
	third := make(chan error, 1)
	go func() {
		third <- c.PublishAsync("p1", []space.Event{{Values: []uint32{9, 9}}})
	}()
	select {
	case err := <-third:
		t.Fatalf("third publish returned (%v) with the window full", err)
	case <-time.After(100 * time.Millisecond):
	}
	// Release every publish: the first ack frees a window slot and the
	// blocked call completes.
	close(b.gate)
	select {
	case err := <-third:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("third publish still blocked after acks")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pubs) != 3 {
		t.Fatalf("backend saw %d publish requests, want 3", len(b.pubs))
	}
}

// subscribeAndRun drives one delivery round through a connected client.
func subscribeAndRun(t *testing.T, c *Client) []wire.Delivery {
	t.Helper()
	var mu sync.Mutex
	var got []wire.Delivery
	if err := c.Subscribe("s1", 11, []wire.Range{{Attr: "x", Lo: 0, Hi: 99}}, func(d wire.Delivery) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return got
}

// TestDeliveryBatchingNegotiation pins both sides of the FlagBatching
// handshake: a default session coalesces deliveries into KindDeliverBatch
// frames (the server's batch histogram fills), while a NoBatching server
// falls back to the per-event v1 stream with identical delivery contents.
func TestDeliveryBatchingNegotiation(t *testing.T) {
	t.Run("batching", func(t *testing.T) {
		reg := obs.NewRegistry()
		_, addr := startServer(t, newFakeBackend(), WithServerObservability(reg))
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		got := subscribeAndRun(t, c)
		if len(got) != 1 || got[0].SubscriptionID != "s1" || got[0].At != 42 {
			t.Fatalf("deliveries = %+v", got)
		}
		if n := histCount(reg, obs.MTransportDeliverBatch); n == 0 {
			t.Fatal("no KindDeliverBatch frames on a batching-negotiated session")
		}
	})
	t.Run("legacy-server", func(t *testing.T) {
		reg := obs.NewRegistry()
		_, addr := startServer(t, newFakeBackend(),
			WithServerObservability(reg), WithServerOptions(Options{NoBatching: true}))
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		got := subscribeAndRun(t, c)
		if len(got) != 1 || got[0].SubscriptionID != "s1" || got[0].At != 42 {
			t.Fatalf("deliveries = %+v", got)
		}
		if n := histCount(reg, obs.MTransportDeliverBatch); n != 0 {
			t.Fatalf("legacy session produced %d deliver-batch frames", n)
		}
	})
	t.Run("legacy-client", func(t *testing.T) {
		reg := obs.NewRegistry()
		_, addr := startServer(t, newFakeBackend(), WithServerObservability(reg))
		c, err := Dial(addr, WithClientOptions(Options{NoBatching: true}))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		got := subscribeAndRun(t, c)
		if len(got) != 1 {
			t.Fatalf("deliveries = %+v", got)
		}
		if n := histCount(reg, obs.MTransportDeliverBatch); n != 0 {
			t.Fatalf("un-negotiated session produced %d deliver-batch frames", n)
		}
	})
}

// TestPublishAsyncReconnectMidWindow drops every connection while a window
// of publishes is in flight: the pipeline must redial on its own, replay
// the unacked window, and the backend must see every sequence number with
// any replays arriving in order (dedup by Seq is the backend's contract;
// the transport's job is ordered, gap-free arrival).
func TestPublishAsyncReconnectMidWindow(t *testing.T) {
	b := newFakeBackend()
	srv, addr := startServer(t, b)
	c, err := Dial(addr,
		WithClientOptions(Options{Window: 4, BatchEvents: 1, Linger: time.Hour}),
		WithClientRetry(core.RetryPolicy{MaxAttempts: 20, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Advertise("p1", 10, []wire.Range{{Attr: "x", Lo: 0, Hi: 99}}); err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := 0; i < total; i++ {
		if err := c.PublishAsync("p1", []space.Event{{Values: []uint32{uint32(i), 0}}}); err != nil {
			t.Fatal(err)
		}
		if i == 10 || i == 25 {
			srv.DropConnections()
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := make(map[uint64]int)
	last := uint64(0)
	for _, req := range b.pubs {
		if req.ID != "p1" {
			t.Fatalf("unexpected publisher %q", req.ID)
		}
		seen[req.Seq]++
		// Replays may repeat an unacked prefix, but a sequence may never
		// arrive before its predecessor's first arrival (the dedup
		// precondition).
		if req.Seq > last+1 {
			t.Fatalf("sequence gap: %d arrived after %d", req.Seq, last)
		}
		if req.Seq > last {
			last = req.Seq
		}
	}
	for s := uint64(1); s <= total; s++ {
		if seen[s] == 0 {
			t.Fatalf("sequence %d never reached the backend", s)
		}
	}
	if last != total {
		t.Fatalf("highest sequence %d, want %d", last, total)
	}
}
