package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/wire"
)

// Info describes the served deployment to a connecting client.
type Info struct {
	Hosts      []uint32
	Partitions []int32
}

// Backend is the surface a Server exposes over TCP — the same control-op
// and southbound operations the in-process facade drives directly. A
// Backend is NOT required to be safe for concurrent use: the server
// serializes every call. Delivery callbacks registered through Control may
// fire from any goroutine while a Run call is in progress (e.g. shard
// workers), so the `deliver` sink handed in is always safe to call
// concurrently and never blocks.
type Backend interface {
	// Info reports the deployment's hosts and partitions.
	Info() Info
	// Control applies one control op ("advertise", "subscribe",
	// "unsubscribe", "unadvertise"). For subscribe ops deliver is non-nil
	// and becomes (or replaces — reconnect semantics) the subscription's
	// event sink. Re-registering an identical advertisement or
	// subscription must be idempotent.
	Control(req wire.ControlReq, deliver func(wire.Delivery)) error
	// Publish injects events from an advertised publisher.
	Publish(req wire.PublishReq) error
	// Run drains pending simulated work and returns the final sim time.
	Run() (time.Duration, error)
	// Digest returns the deterministic digest of the control-plane state
	// across all partitions.
	Digest() ([]byte, error)
	// ApplyFlowBatch applies a southbound FlowMod batch to one switch.
	ApplyFlowBatch(sw uint32, ops []openflow.FlowOp) ([]openflow.FlowID, error)
	// Flows reads the installed table of one switch.
	Flows(sw uint32) ([]openflow.Flow, error)
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerTimeout bounds each connection's buffered write flushes.
func WithServerTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// WithServerOptions tunes the server's transport data path (deadlines,
// delivery batching). The zero Options keeps every default.
func WithServerOptions(o Options) ServerOption {
	return func(s *Server) { s.opts = o }
}

// WithServerTracer records a remote span for every traced publish the
// server applies, linked under the client's trace id and re-parenting the
// publication's span context so downstream delivery spans hang off the
// server-side span.
func WithServerTracer(t *obs.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// WithServerObservability attaches the server's transport counters to reg.
func WithServerObservability(reg *obs.Registry) ServerOption {
	return func(s *Server) {
		if reg == nil {
			return
		}
		s.m = connMetrics{
			framesSent: reg.Counter(obs.MTransportFramesSent, "Frames written to transport connections."),
			framesRecv: reg.Counter(obs.MTransportFramesRecv, "Frames read from transport connections."),
			bytesSent:  reg.Counter(obs.MTransportBytesSent, "Bytes written to transport connections."),
			bytesRecv:  reg.Counter(obs.MTransportBytesRecv, "Bytes read from transport connections."),
			writeBatch: newWriteBatchHistogram(reg),
			flushes:    newFlushCounterVec(reg),
			frameBytes: newFrameBytesHistogram(reg),
		}
		s.obsConns = reg.Gauge(obs.MTransportConns, "Live transport connections.")
		s.obsInflight = reg.Gauge(obs.MTransportInflight, "Transport requests currently being served.")
		s.obsBatch = obs.NewCountHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)
		reg.AttachHistogram(obs.MTransportDeliverBatch, "Deliveries coalesced per KindDeliverBatch frame.", "", "", s.obsBatch)
	}
}

// Server accepts transport connections and dispatches their requests to a
// Backend, one at a time. Responses and deliveries ride each connection's
// FIFO write queue, so a response enqueued after a burst of deliveries
// acts as a receive barrier for them (the Sync protocol).
type Server struct {
	backend Backend

	// mu serializes Backend calls: the facade System is single-threaded by
	// contract.
	mu sync.Mutex

	writeTimeout time.Duration
	opts         Options
	m            connMetrics
	obsConns     *obs.Gauge
	obsInflight  *obs.Gauge
	obsBatch     *obs.Histogram
	tracer       *obs.Tracer

	connMu   sync.Mutex
	ln       net.Listener
	conns    map[*frameConn]struct{}
	stopping bool

	// dirty is the set of batching connections holding unsent coalesced
	// deliveries; every request goroutine flushes it after its backend
	// call returns, before enqueuing its response — the Sync barrier.
	batchMu sync.Mutex
	dirty   map[*frameConn]struct{}

	readers  sync.WaitGroup // one per live connection
	inflight sync.WaitGroup // requests being served (drained on Stop)
}

// NewServer wraps a backend.
func NewServer(b Backend, opts ...ServerOption) *Server {
	s := &Server{backend: b, conns: make(map[*frameConn]struct{}), dirty: make(map[*frameConn]struct{})}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address. Serving happens on background goroutines; use Stop to shut
// down.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.connMu.Lock()
	if s.stopping {
		s.connMu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("transport: server stopped")
	}
	s.ln = ln
	s.connMu.Unlock()
	s.readers.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.readers.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed by Stop
		}
		wt := s.writeTimeout
		if s.opts.WriteTimeout > 0 {
			wt = s.opts.WriteTimeout
		}
		fc := newFrameConn(c, wt, s.m)
		s.connMu.Lock()
		if s.stopping {
			s.connMu.Unlock()
			fc.abort()
			continue
		}
		s.conns[fc] = struct{}{}
		s.connMu.Unlock()
		s.obsConns.Add(1)
		s.readers.Add(1)
		go s.serveConn(fc, c)
	}
}

// Stop shuts the server down gracefully: no new connections are accepted,
// requests already being served finish (their responses and any deliveries
// flush), every connection receives a Goodbye frame, and the sockets
// close.
func (s *Server) Stop() {
	s.connMu.Lock()
	if s.stopping {
		s.connMu.Unlock()
		return
	}
	s.stopping = true
	ln := s.ln
	s.connMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.inflight.Wait() // drain in-flight requests
	s.flushDeliveries()
	s.connMu.Lock()
	conns := make([]*frameConn, 0, len(s.conns))
	for fc := range s.conns {
		conns = append(conns, fc)
	}
	s.connMu.Unlock()
	for _, fc := range conns {
		fc.send(wire.Frame{Kind: wire.KindGoodbye})
		fc.close()
	}
	s.readers.Wait()
}

// DropConnections abruptly severs every live connection without touching
// the listener or the backend — a network partition / daemon-crash
// simulation for the reconnect tests. Queued frames are discarded.
func (s *Server) DropConnections() {
	s.connMu.Lock()
	conns := make([]*frameConn, 0, len(s.conns))
	for fc := range s.conns {
		conns = append(conns, fc)
	}
	s.connMu.Unlock()
	for _, fc := range conns {
		fc.abort()
	}
}

func (s *Server) serveConn(fc *frameConn, c net.Conn) {
	defer s.readers.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, fc)
		s.connMu.Unlock()
		s.batchMu.Lock()
		delete(s.dirty, fc)
		s.batchMu.Unlock()
		s.obsConns.Add(-1)
		fc.close()
	}()
	br := bufio.NewReader(c)
	// Request payloads are decoded before the next read, so one reusable
	// buffer serves the whole connection.
	buf := make([]byte, 0, 4096)
	for {
		if s.opts.ReadTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		var f wire.Frame
		var err error
		f, buf, err = readFrameBuf(br, s.m, buf)
		if err != nil {
			return
		}
		if f.Kind == wire.KindGoodbye {
			return
		}
		// The stopping check and the inflight Add share the lock Stop sets
		// stopping under, so a request either lands before Stop's drain or
		// is refused — never added to a WaitGroup already being waited on.
		s.connMu.Lock()
		if s.stopping {
			s.connMu.Unlock()
			return
		}
		s.inflight.Add(1)
		s.connMu.Unlock()
		s.obsInflight.Add(1)
		resp := s.handle(fc, f)
		resp.Corr = f.Corr
		// Coalesced deliveries produced by this backend call flush before
		// the response is enqueued, preserving the FIFO receive barrier
		// (Sync) batching would otherwise break.
		s.flushDeliveries()
		err = fc.send(resp)
		s.obsInflight.Add(-1)
		s.inflight.Done()
		if err != nil {
			return
		}
	}
}

// flushDeliveries drains every batching connection's accumulated
// deliveries into KindDeliverBatch frames (chunked under the batch byte
// budget and wire.MaxDeliveries). Callers invoke it after a backend call
// returns and before they enqueue the call's response.
func (s *Server) flushDeliveries() {
	s.batchMu.Lock()
	if len(s.dirty) == 0 {
		s.batchMu.Unlock()
		return
	}
	conns := make([]*frameConn, 0, len(s.dirty))
	for fc := range s.dirty {
		conns = append(conns, fc)
		delete(s.dirty, fc)
	}
	s.batchMu.Unlock()
	for _, fc := range conns {
		s.flushConnDeliveries(fc)
	}
}

func (s *Server) flushConnDeliveries(fc *frameConn) {
	// dmu is held across the swap AND the sends: two request goroutines
	// flushing the same connection cannot interleave chunks, so the
	// delivery stream stays in production order.
	fc.dmu.Lock()
	defer fc.dmu.Unlock()
	batch := fc.dbatch
	fc.dbatch = nil
	for len(batch) > 0 {
		hint := 96 * len(batch)
		if hint > deliverBatchBytes {
			hint = deliverBatchBytes
		}
		payload, n, err := wire.AppendDeliverBatch(getBuf(hint), batch, deliverBatchBytes)
		if err != nil {
			return // backend-produced deliveries always encode; drop defensively
		}
		s.obsBatch.ObserveCount(n)
		// Best effort, like the per-event path: a severed connection drops
		// deliveries, the subscription state survives for the reconnect.
		fc.sendPooled(wire.KindDeliverBatch, 0, payload)
		batch = batch[n:]
	}
}

// handle serves one request frame, serialized against all other backend
// work.
func (s *Server) handle(fc *frameConn, f wire.Frame) wire.Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch f.Kind {
	case wire.KindHello:
		hello, err := wire.DecodeHello(f.Payload)
		if err != nil {
			return errFrame(err)
		}
		// Capability negotiation: echo back exactly the bits the client
		// asked for and this server supports. V2 (trace-bearing) payloads
		// and KindDeliverBatch frames flow on this connection only after
		// both sides advertised the capability; a legacy peer never sees a
		// version byte or frame kind it cannot decode.
		supported := wire.FlagTracing | wire.FlagBatching
		if s.opts.NoBatching {
			supported &^= wire.FlagBatching
		}
		flags := hello.Flags & supported
		fc.tracing.Store(flags&wire.FlagTracing != 0)
		fc.batching.Store(flags&wire.FlagBatching != 0)
		info := s.backend.Info()
		b, err := wire.EncodeHelloOK(wire.HelloOK{Hosts: info.Hosts, Partitions: info.Partitions, Flags: flags})
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindHelloOK, Payload: b}

	case wire.KindControl:
		req, err := wire.DecodeControlReq(f.Payload)
		if err != nil {
			return errFrame(err)
		}
		var deliver func(wire.Delivery)
		if req.Op == "subscribe" {
			deliver = func(d wire.Delivery) {
				if !fc.tracing.Load() {
					// The connection never negotiated tracing: strip the
					// trace context so the frame encodes as version 1.
					d.Trace = wire.TraceContext{}
					d.Hops = 0
				}
				if fc.batching.Load() {
					// Accumulate; the request goroutine that drove this
					// backend call flushes the run as KindDeliverBatch
					// frames before its response.
					fc.dmu.Lock()
					fc.dbatch = append(fc.dbatch, d)
					fc.dmu.Unlock()
					s.batchMu.Lock()
					s.dirty[fc] = struct{}{}
					s.batchMu.Unlock()
					return
				}
				b, err := wire.AppendDelivery(getBuf(64+len(d.SubscriptionID)+4*len(d.Event.Values)), d)
				if err != nil {
					return
				}
				// Best effort: a severed connection drops deliveries, the
				// subscription state itself survives for the reconnect.
				fc.sendPooled(wire.KindDeliver, 0, b)
			}
		}
		if err := s.backend.Control(req, deliver); err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindOK}

	case wire.KindPublish:
		req, err := wire.DecodePublish(f.Payload)
		if err != nil {
			return errFrame(err)
		}
		if !fc.tracing.Load() {
			// A trace context on an un-negotiated connection is dropped
			// rather than rejected: the publish itself is fine.
			req.Trace = wire.TraceContext{}
		}
		var sp *obs.Span
		if s.tracer != nil && req.Trace.Valid() {
			// Record the server-side publish span under the client's trace
			// and re-parent the context: delivery spans hang off this span,
			// which itself hangs off the client's publish span.
			sp = s.tracer.StartRemoteSpan(req.Trace.TraceID, req.Trace.SpanID, "publish", req.ID)
			if sp != nil {
				req.Trace.SpanID = sp.ID
			}
		}
		err = s.backend.Publish(req)
		sp.End(err)
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindOK}

	case wire.KindRun:
		now, err := s.backend.Run()
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindRunDone, Payload: wire.EncodeU64(uint64(now))}

	case wire.KindSync:
		// The OK rides the write queue behind every delivery enqueued
		// before it: receiving it means those deliveries arrived.
		return wire.Frame{Kind: wire.KindOK}

	case wire.KindDigest:
		d, err := s.backend.Digest()
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindDigestResult, Payload: d}

	case wire.KindFlowBatch:
		fb, err := wire.DecodeFlowBatch(f.Payload)
		if err != nil {
			return errFrame(err)
		}
		ids, err := s.backend.ApplyFlowBatch(fb.Switch, fb.Ops)
		res := wire.FlowResult{IDs: ids}
		if err != nil {
			res.Err = err.Error()
		}
		b, encErr := wire.EncodeFlowResult(res)
		if encErr != nil {
			return errFrame(encErr)
		}
		return wire.Frame{Kind: wire.KindFlowResult, Payload: b}

	case wire.KindFlowRead:
		if len(f.Payload) != 4 {
			return errFrame(fmt.Errorf("transport: flow read payload must be a switch id"))
		}
		flows, err := s.backend.Flows(binary.BigEndian.Uint32(f.Payload))
		if err != nil {
			return errFrame(err)
		}
		b, err := wire.EncodeFlowList(wire.FlowList{Flows: flows})
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindFlowList, Payload: b}

	default:
		return errFrame(fmt.Errorf("transport: unexpected request kind %v", f.Kind))
	}
}

func errFrame(err error) wire.Frame {
	return wire.Frame{Kind: wire.KindError, Payload: []byte(err.Error())}
}
