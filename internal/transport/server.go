package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/wire"
)

// Info describes the served deployment to a connecting client.
type Info struct {
	Hosts      []uint32
	Partitions []int32
}

// Backend is the surface a Server exposes over TCP — the same control-op
// and southbound operations the in-process facade drives directly. A
// Backend is NOT required to be safe for concurrent use: the server
// serializes every call. Delivery callbacks registered through Control may
// fire from any goroutine while a Run call is in progress (e.g. shard
// workers), so the `deliver` sink handed in is always safe to call
// concurrently and never blocks.
type Backend interface {
	// Info reports the deployment's hosts and partitions.
	Info() Info
	// Control applies one control op ("advertise", "subscribe",
	// "unsubscribe", "unadvertise"). For subscribe ops deliver is non-nil
	// and becomes (or replaces — reconnect semantics) the subscription's
	// event sink. Re-registering an identical advertisement or
	// subscription must be idempotent.
	Control(req wire.ControlReq, deliver func(wire.Delivery)) error
	// Publish injects events from an advertised publisher.
	Publish(req wire.PublishReq) error
	// Run drains pending simulated work and returns the final sim time.
	Run() (time.Duration, error)
	// Digest returns the deterministic digest of the control-plane state
	// across all partitions.
	Digest() ([]byte, error)
	// ApplyFlowBatch applies a southbound FlowMod batch to one switch.
	ApplyFlowBatch(sw uint32, ops []openflow.FlowOp) ([]openflow.FlowID, error)
	// Flows reads the installed table of one switch.
	Flows(sw uint32) ([]openflow.Flow, error)
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerTimeout bounds each connection's buffered write flushes.
func WithServerTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// WithServerTracer records a remote span for every traced publish the
// server applies, linked under the client's trace id and re-parenting the
// publication's span context so downstream delivery spans hang off the
// server-side span.
func WithServerTracer(t *obs.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// WithServerObservability attaches the server's transport counters to reg.
func WithServerObservability(reg *obs.Registry) ServerOption {
	return func(s *Server) {
		if reg == nil {
			return
		}
		s.m = connMetrics{
			framesSent: reg.Counter(obs.MTransportFramesSent, "Frames written to transport connections."),
			framesRecv: reg.Counter(obs.MTransportFramesRecv, "Frames read from transport connections."),
			bytesSent:  reg.Counter(obs.MTransportBytesSent, "Bytes written to transport connections."),
			bytesRecv:  reg.Counter(obs.MTransportBytesRecv, "Bytes read from transport connections."),
		}
		s.obsConns = reg.Gauge(obs.MTransportConns, "Live transport connections.")
		s.obsInflight = reg.Gauge(obs.MTransportInflight, "Transport requests currently being served.")
	}
}

// Server accepts transport connections and dispatches their requests to a
// Backend, one at a time. Responses and deliveries ride each connection's
// FIFO write queue, so a response enqueued after a burst of deliveries
// acts as a receive barrier for them (the Sync protocol).
type Server struct {
	backend Backend

	// mu serializes Backend calls: the facade System is single-threaded by
	// contract.
	mu sync.Mutex

	writeTimeout time.Duration
	m            connMetrics
	obsConns     *obs.Gauge
	obsInflight  *obs.Gauge
	tracer       *obs.Tracer

	connMu   sync.Mutex
	ln       net.Listener
	conns    map[*frameConn]struct{}
	stopping bool

	readers  sync.WaitGroup // one per live connection
	inflight sync.WaitGroup // requests being served (drained on Stop)
}

// NewServer wraps a backend.
func NewServer(b Backend, opts ...ServerOption) *Server {
	s := &Server{backend: b, conns: make(map[*frameConn]struct{})}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address. Serving happens on background goroutines; use Stop to shut
// down.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.connMu.Lock()
	if s.stopping {
		s.connMu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("transport: server stopped")
	}
	s.ln = ln
	s.connMu.Unlock()
	s.readers.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.readers.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed by Stop
		}
		fc := newFrameConn(c, s.writeTimeout, s.m)
		s.connMu.Lock()
		if s.stopping {
			s.connMu.Unlock()
			fc.abort()
			continue
		}
		s.conns[fc] = struct{}{}
		s.connMu.Unlock()
		s.obsConns.Add(1)
		s.readers.Add(1)
		go s.serveConn(fc, c)
	}
}

// Stop shuts the server down gracefully: no new connections are accepted,
// requests already being served finish (their responses and any deliveries
// flush), every connection receives a Goodbye frame, and the sockets
// close.
func (s *Server) Stop() {
	s.connMu.Lock()
	if s.stopping {
		s.connMu.Unlock()
		return
	}
	s.stopping = true
	ln := s.ln
	s.connMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.inflight.Wait() // drain in-flight requests
	s.connMu.Lock()
	conns := make([]*frameConn, 0, len(s.conns))
	for fc := range s.conns {
		conns = append(conns, fc)
	}
	s.connMu.Unlock()
	for _, fc := range conns {
		fc.send(wire.Frame{Kind: wire.KindGoodbye})
		fc.close()
	}
	s.readers.Wait()
}

// DropConnections abruptly severs every live connection without touching
// the listener or the backend — a network partition / daemon-crash
// simulation for the reconnect tests. Queued frames are discarded.
func (s *Server) DropConnections() {
	s.connMu.Lock()
	conns := make([]*frameConn, 0, len(s.conns))
	for fc := range s.conns {
		conns = append(conns, fc)
	}
	s.connMu.Unlock()
	for _, fc := range conns {
		fc.abort()
	}
}

func (s *Server) serveConn(fc *frameConn, c net.Conn) {
	defer s.readers.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, fc)
		s.connMu.Unlock()
		s.obsConns.Add(-1)
		fc.close()
	}()
	br := bufio.NewReader(c)
	for {
		f, err := readFrame(br, s.m)
		if err != nil {
			return
		}
		if f.Kind == wire.KindGoodbye {
			return
		}
		// The stopping check and the inflight Add share the lock Stop sets
		// stopping under, so a request either lands before Stop's drain or
		// is refused — never added to a WaitGroup already being waited on.
		s.connMu.Lock()
		if s.stopping {
			s.connMu.Unlock()
			return
		}
		s.inflight.Add(1)
		s.connMu.Unlock()
		s.obsInflight.Add(1)
		resp := s.handle(fc, f)
		resp.Corr = f.Corr
		err = fc.send(resp)
		s.obsInflight.Add(-1)
		s.inflight.Done()
		if err != nil {
			return
		}
	}
}

// handle serves one request frame, serialized against all other backend
// work.
func (s *Server) handle(fc *frameConn, f wire.Frame) wire.Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch f.Kind {
	case wire.KindHello:
		hello, err := wire.DecodeHello(f.Payload)
		if err != nil {
			return errFrame(err)
		}
		// Capability negotiation: echo the tracing bit back iff the client
		// asked for it. V2 (trace-bearing) payloads flow on this connection
		// only after both sides advertised the capability; a legacy peer
		// never sees a version byte it cannot decode.
		flags := hello.Flags & wire.FlagTracing
		fc.tracing.Store(flags&wire.FlagTracing != 0)
		info := s.backend.Info()
		b, err := wire.EncodeHelloOK(wire.HelloOK{Hosts: info.Hosts, Partitions: info.Partitions, Flags: flags})
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindHelloOK, Payload: b}

	case wire.KindControl:
		req, err := wire.DecodeControlReq(f.Payload)
		if err != nil {
			return errFrame(err)
		}
		var deliver func(wire.Delivery)
		if req.Op == "subscribe" {
			deliver = func(d wire.Delivery) {
				if !fc.tracing.Load() {
					// The connection never negotiated tracing: strip the
					// trace context so the frame encodes as version 1.
					d.Trace = wire.TraceContext{}
					d.Hops = 0
				}
				b, err := wire.EncodeDelivery(d)
				if err != nil {
					return
				}
				// Best effort: a severed connection drops deliveries, the
				// subscription state itself survives for the reconnect.
				fc.send(wire.Frame{Kind: wire.KindDeliver, Payload: b})
			}
		}
		if err := s.backend.Control(req, deliver); err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindOK}

	case wire.KindPublish:
		req, err := wire.DecodePublish(f.Payload)
		if err != nil {
			return errFrame(err)
		}
		if !fc.tracing.Load() {
			// A trace context on an un-negotiated connection is dropped
			// rather than rejected: the publish itself is fine.
			req.Trace = wire.TraceContext{}
		}
		var sp *obs.Span
		if s.tracer != nil && req.Trace.Valid() {
			// Record the server-side publish span under the client's trace
			// and re-parent the context: delivery spans hang off this span,
			// which itself hangs off the client's publish span.
			sp = s.tracer.StartRemoteSpan(req.Trace.TraceID, req.Trace.SpanID, "publish", req.ID)
			if sp != nil {
				req.Trace.SpanID = sp.ID
			}
		}
		err = s.backend.Publish(req)
		sp.End(err)
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindOK}

	case wire.KindRun:
		now, err := s.backend.Run()
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindRunDone, Payload: wire.EncodeU64(uint64(now))}

	case wire.KindSync:
		// The OK rides the write queue behind every delivery enqueued
		// before it: receiving it means those deliveries arrived.
		return wire.Frame{Kind: wire.KindOK}

	case wire.KindDigest:
		d, err := s.backend.Digest()
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindDigestResult, Payload: d}

	case wire.KindFlowBatch:
		fb, err := wire.DecodeFlowBatch(f.Payload)
		if err != nil {
			return errFrame(err)
		}
		ids, err := s.backend.ApplyFlowBatch(fb.Switch, fb.Ops)
		res := wire.FlowResult{IDs: ids}
		if err != nil {
			res.Err = err.Error()
		}
		b, encErr := wire.EncodeFlowResult(res)
		if encErr != nil {
			return errFrame(encErr)
		}
		return wire.Frame{Kind: wire.KindFlowResult, Payload: b}

	case wire.KindFlowRead:
		if len(f.Payload) != 4 {
			return errFrame(fmt.Errorf("transport: flow read payload must be a switch id"))
		}
		flows, err := s.backend.Flows(binary.BigEndian.Uint32(f.Payload))
		if err != nil {
			return errFrame(err)
		}
		b, err := wire.EncodeFlowList(wire.FlowList{Flows: flows})
		if err != nil {
			return errFrame(err)
		}
		return wire.Frame{Kind: wire.KindFlowList, Payload: b}

	default:
		return errFrame(fmt.Errorf("transport: unexpected request kind %v", f.Kind))
	}
}

func errFrame(err error) wire.Frame {
	return wire.Frame{Kind: wire.KindError, Payload: []byte(err.Error())}
}
