package transport

import (
	"fmt"
	"sort"
	"time"

	"pleroma/internal/obs"
	"pleroma/internal/space"
	"pleroma/internal/wire"
)

// This file is the client half of the pipelined data path: PublishAsync
// coalesces events per publisher into multi-event PublishReq frames and
// keeps a bounded window of them in flight without waiting for acks.
//
// Exactly-once under reconnect hangs on one ordering invariant: the server
// dedups with `Seq <= lastPubSeq` per publisher, so publishes must reach
// it in sequence order. Three rules enforce that:
//
//  1. A batch's sequence number is assigned in the same c.mu critical
//     section that appends it to the window and enqueues its frame — a
//     later batch can never jump an earlier one onto the wire.
//  2. On reconnect, connectLocked re-sends the whole unacked window in
//     FIFO order while still holding c.mu, onto the brand-new (empty)
//     connection queue — guaranteed ahead of any retried or new request.
//  3. Acks ride the same FIFO back, so window entries complete in order;
//     an entry is unacked exactly when the server may not have applied it,
//     and re-sending it is either applied-for-the-first-time or skipped by
//     the seq dedup. Never twice, never lost.
//
// Synchronous Publish on the same publisher interleaves safely with a
// sequential caller (it seals the pending batch first and its frame
// follows the window's on the same FIFO); concurrent goroutines mixing
// Publish and PublishAsync on one publisher id get no ordering promise.

// pubPending is the per-publisher coalescing buffer: events accumulate
// until the count/byte threshold trips or the linger timer fires.
type pubPending struct {
	events []space.Event
	bytes  int // encoded payload estimate: 2+4*dims per event
}

// asyncEntry is one sealed, windowed publish: its encoded payload is
// retained until the ack so a reconnect can replay identical bytes (same
// Seq, same trace — the dedup key and the trace survive the retry).
type asyncEntry struct {
	seq     uint64
	corr    uint64 // correlation id on the current connection; 0 = unsent
	payload []byte
	events  int
	sp      *obs.Span
}

// PublishAsync enqueues events from the advertised publisher id into the
// pipelined publish path: events coalesce with other PublishAsync calls
// for the same publisher and are sent as multi-event PublishReq frames
// without waiting for acks. It blocks only when the in-flight window is
// full (backpressure). Failures are sticky and asynchronous: the first
// failed batch poisons the pipeline, and the error surfaces here, on
// Flush, or on Err. Callers must not mutate events after the call.
func (c *Client) PublishAsync(id string, events []space.Event) error {
	if len(events) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("transport: client closed")
	}
	if c.aerr != nil {
		return c.aerr
	}
	maxEvents := c.opts.batchEvents()
	maxBytes := c.opts.batchBytes()
	if c.apend == nil {
		c.apend = make(map[string]*pubPending)
	}
	for _, ev := range events {
		pb := c.apend[id]
		if pb == nil {
			pb = &pubPending{}
			c.apend[id] = pb
		}
		pb.events = append(pb.events, ev)
		pb.bytes += 2 + 4*len(ev.Values)
		if len(pb.events) >= maxEvents || pb.bytes >= maxBytes {
			if err := c.sealLocked(id); err != nil {
				return err
			}
		}
	}
	if pb := c.apend[id]; pb != nil && len(pb.events) > 0 {
		c.armLingerLocked()
	}
	return nil
}

// Flush seals every pending coalescing buffer and blocks until the
// in-flight window drains (every batch acked) or the pipeline fails. It
// returns the sticky pipeline error, nil meaning everything published so
// far is applied at the server.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("transport: client closed")
	}
	for _, id := range c.pendingIDsLocked() {
		if err := c.sealLocked(id); err != nil {
			return err
		}
	}
	for len(c.awin) > 0 && c.aerr == nil && !c.closed {
		if c.fc == nil {
			c.ensureRedialLocked()
		}
		c.winCond.Wait()
	}
	return c.aerr
}

// Err returns the sticky pipeline error: the first async batch the
// transport gave up on (redial exhaustion) or the server rejected.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aerr
}

// pendingIDsLocked lists publishers with unsealed events, sorted for
// deterministic seal order.
func (c *Client) pendingIDsLocked() []string {
	ids := make([]string, 0, len(c.apend))
	for id, pb := range c.apend {
		if pb != nil && len(pb.events) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// sealLocked turns id's pending coalescing buffer into one windowed
// publish: waits for window credit (releasing c.mu while blocked), then —
// in a single critical section — assigns the sequence number, encodes the
// frame, appends it to the window, and enqueues it. Called with c.mu held.
func (c *Client) sealLocked(id string) error {
	for {
		if c.aerr != nil {
			return c.aerr
		}
		if c.closed {
			return fmt.Errorf("transport: client closed")
		}
		pb := c.apend[id]
		if pb == nil || len(pb.events) == 0 {
			return nil
		}
		if len(c.awin) < c.opts.window() {
			break
		}
		// Window full: credit-based backpressure. Wait releases c.mu, so
		// the pending buffer must be re-read afterwards — a concurrent
		// linger fire may already have sealed it.
		c.winCond.Wait()
	}
	pb := c.apend[id]
	delete(c.apend, id)

	c.pubSeq++
	req := wire.PublishReq{ID: id, Seq: c.pubSeq, Events: pb.events}
	var sp *obs.Span
	if c.tracing {
		sp = c.tracer.StartSpan("publish", id)
		if sp != nil {
			req.Trace = wire.TraceContext{
				TraceID:      sp.TraceID,
				SpanID:       sp.ID,
				PubWallNanos: time.Now().UnixNano(),
			}
		}
	}
	payload, err := wire.AppendPublish(make([]byte, 0, 48+len(id)+pb.bytes), req)
	if err != nil {
		// Unencodable batch (invalid id or event): surface and poison —
		// its events are gone, so completing later batches as if nothing
		// was lost would lie to Flush.
		sp.End(err)
		c.aerr = err
		c.winCond.Broadcast()
		return err
	}
	e := &asyncEntry{seq: req.Seq, payload: payload, events: len(pb.events), sp: sp}
	c.awin = append(c.awin, e)
	c.obsWindow.Set(int64(len(c.awin)))
	c.obsCoalesce.ObserveCount(e.events)
	if c.fc != nil {
		c.sendEntryLocked(e)
	} else {
		c.ensureRedialLocked()
	}
	return nil
}

// sendEntryLocked assigns e a fresh correlation id on the current
// connection and enqueues its frame. A send error is ignored: the
// connection is already dying, readLoop's connLost will clear the stale
// correlation and the redial path re-sends the window.
func (c *Client) sendEntryLocked(e *asyncEntry) {
	c.corr++
	e.corr = c.corr
	c.acorr[e.corr] = e
	c.fc.send(wire.Frame{Kind: wire.KindPublish, Corr: e.corr, Payload: e.payload})
}

// completeEntryLocked finishes one windowed publish on its ack (err nil)
// or server rejection (err non-nil, sticky).
func (c *Client) completeEntryLocked(e *asyncEntry, err error) {
	for i, w := range c.awin {
		if w == e {
			c.awin = append(c.awin[:i], c.awin[i+1:]...)
			break
		}
	}
	e.payload = nil
	e.sp.End(err)
	if err != nil && c.aerr == nil {
		c.aerr = err
	}
	c.obsWindow.Set(int64(len(c.awin)))
	c.winCond.Broadcast()
}

// failWindowLocked poisons the pipeline: every in-flight batch fails with
// err and waiters wake.
func (c *Client) failWindowLocked(err error) {
	if c.aerr == nil {
		c.aerr = err
	}
	for _, e := range c.awin {
		e.sp.End(err)
		e.payload = nil
	}
	c.awin = nil
	c.acorr = make(map[uint64]*asyncEntry)
	c.obsWindow.Set(0)
	c.winCond.Broadcast()
}

// armLingerLocked schedules a seal of partial batches after the linger
// deadline, so a trickle of events never waits indefinitely for a full
// batch.
func (c *Client) armLingerLocked() {
	if c.lingerOn {
		return
	}
	c.lingerOn = true
	time.AfterFunc(c.opts.linger(), c.lingerFire)
}

func (c *Client) lingerFire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lingerOn = false
	if c.closed || c.aerr != nil {
		return
	}
	for _, id := range c.pendingIDsLocked() {
		if c.sealLocked(id) != nil {
			return
		}
	}
}

// ensureRedialLocked spawns the async redial goroutine when the window
// holds unacked batches but no live connection exists — the pipeline
// reconnects on its own, without a synchronous call to piggyback on.
func (c *Client) ensureRedialLocked() {
	if c.redialing || c.closed || c.aerr != nil {
		return
	}
	if len(c.awin) == 0 {
		return
	}
	c.redialing = true
	go c.redialLoop()
}

// redialLoop reconnects under the retry policy. On success connectLocked
// has already re-sent the window (rule 2 above); on exhaustion the
// pipeline is poisoned so Flush callers unblock with the error.
func (c *Client) redialLoop() {
	pol := c.retry
	sleep := pol.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	attempts := pol.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			backoff := pol.BaseBackoff << uint(attempt-1)
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
			if backoff > 0 {
				sleep(backoff)
			}
		}
		c.mu.Lock()
		if c.closed || c.aerr != nil || len(c.awin) == 0 {
			c.redialing = false
			c.mu.Unlock()
			return
		}
		if c.fc != nil {
			// A synchronous call's attempt already reconnected (and
			// re-sent the window on its way).
			c.redialing = false
			c.mu.Unlock()
			return
		}
		c.obsReconnects.Inc()
		start, err := c.connectLocked()
		if err == nil {
			c.redialing = false
			c.mu.Unlock()
			start()
			return
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.redialing = false
	if c.fc == nil {
		c.failWindowLocked(fmt.Errorf("transport: %d redial attempts exhausted with %d publishes in flight", attempts, len(c.awin)))
	}
	c.mu.Unlock()
}
