// Package transport carries PLEROMA's control and data messages across a
// real process boundary: length-prefixed wire.Frame messages over stdlib
// TCP, with request/response correlation, per-connection write batching,
// and client-side reconnect under core.RetryPolicy semantics. The server
// side (Server) exposes a Backend — the same control-op and southbound
// surfaces the in-process facade drives directly — and the client side
// (Client, RemoteProgrammer) lets publisher/subscriber processes and even
// a remote controller speak to it. The emulator never appears here: both
// ends exchange only wire types, which is what lets the same core and
// facade code run in one process or several.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pleroma/internal/obs"
	"pleroma/internal/wire"
)

// connMetrics holds the transport instruments shared by both roles. All
// fields may be nil (obs instruments are nil-safe).
type connMetrics struct {
	framesSent *obs.Counter
	framesRecv *obs.Counter
	bytesSent  *obs.Counter
	bytesRecv  *obs.Counter
	// writeBatch samples the frames drained per writer wakeup (one bufio
	// flush = one syscall); flushes counts flushes by reason; frameBytes
	// samples encoded frame sizes.
	writeBatch *obs.Histogram
	flushes    *obs.CounterVec
	frameBytes *obs.Histogram
}

// outFrame is one queued outbound frame: the fixed header plus a payload
// reference. Keeping the payload by reference (instead of re-encoding the
// whole frame into a fresh contiguous buffer) is what makes the send path
// copy-free; pooled marks payloads drawn from the slab pool, which the
// writer returns after the bytes hit the socket.
type outFrame struct {
	hdr     [wire.FrameHeaderLen]byte
	payload []byte
	pooled  bool
}

// frameConn wraps a net.Conn with an unbounded FIFO write queue drained by
// a single writer goroutine. Senders never block on the network: send
// enqueues the frame and returns, and the writer drains every frame queued
// at the moment it wakes through the buffered writer, flushing only once
// the queue is empty (flush-on-idle) — so a burst of N frames costs one
// syscall no matter how many wakeups it spans. The FIFO order doubles as
// the protocol's barrier: a response enqueued after a set of deliveries
// reaches the peer after them.
type frameConn struct {
	c  net.Conn
	bw *bufio.Writer

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []outFrame
	closed bool
	werr   error
	done   chan struct{}

	writeTimeout time.Duration
	m            connMetrics

	// tracing/batching record whether this connection's Hello handshake
	// negotiated wire.FlagTracing / wire.FlagBatching. Set once by the
	// server's Hello handler, read by delivery sinks on arbitrary
	// goroutines — hence atomic.
	tracing  atomic.Bool
	batching atomic.Bool

	// dbatch accumulates the deliveries produced for this connection by
	// the backend call in progress (batching sessions only); the server
	// flushes it as KindDeliverBatch frames before sending the call's
	// response. dmu also serializes flushers, so two racing flushes cannot
	// reorder a connection's delivery stream.
	dmu    sync.Mutex
	dbatch []wire.Delivery
}

func newFrameConn(c net.Conn, writeTimeout time.Duration, m connMetrics) *frameConn {
	if tc, ok := c.(*net.TCPConn); ok {
		// Batching owns coalescing now; Nagle would only add latency on
		// the partially-filled flushes.
		tc.SetNoDelay(true)
	}
	fc := &frameConn{
		c:            c,
		bw:           bufio.NewWriter(c),
		done:         make(chan struct{}),
		writeTimeout: writeTimeout,
		m:            m,
	}
	fc.cond = sync.NewCond(&fc.mu)
	go fc.writeLoop()
	return fc
}

// send enqueues one frame for transmission. The payload is referenced, not
// copied: the caller must not mutate it until the frame is on the wire
// (callers that recycle buffers use sendPooled). It returns an error only
// if the connection is already closed or a previous write failed; the
// write itself is asynchronous.
func (fc *frameConn) send(f wire.Frame) error {
	return fc.enqueue(f.Kind, f.Corr, f.Payload, false)
}

// sendPooled enqueues one frame whose payload was drawn from getBuf,
// transferring ownership: the writer returns it to the slab pool once
// written (or dropped on abort).
func (fc *frameConn) sendPooled(kind wire.Kind, corr uint64, payload []byte) error {
	return fc.enqueue(kind, corr, payload, true)
}

func (fc *frameConn) enqueue(kind wire.Kind, corr uint64, payload []byte, pooled bool) error {
	if !kind.Valid() {
		if pooled {
			putBuf(payload)
		}
		return fmt.Errorf("wire: invalid frame kind %d", uint8(kind))
	}
	if len(payload) > wire.MaxFramePayload {
		if pooled {
			putBuf(payload)
		}
		return fmt.Errorf("wire: frame payload of %d bytes exceeds %d", len(payload), wire.MaxFramePayload)
	}
	of := outFrame{payload: payload, pooled: pooled}
	binary.BigEndian.PutUint32(of.hdr[:], uint32(9+len(payload)))
	of.hdr[4] = byte(kind)
	binary.BigEndian.PutUint64(of.hdr[5:], corr)
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.werr != nil {
		if pooled {
			putBuf(payload)
		}
		return fc.werr
	}
	if fc.closed {
		if pooled {
			putBuf(payload)
		}
		return fmt.Errorf("transport: connection closed")
	}
	fc.queue = append(fc.queue, of)
	fc.cond.Signal()
	return nil
}

// writeLoop drains the queue: every wakeup takes the whole backlog and
// writes it through the buffered writer, but flushes only when the queue
// is empty after the writes (flush-on-idle) — frames that arrived while
// the writer was busy ride the same eventual flush.
func (fc *frameConn) writeLoop() {
	defer close(fc.done)
	for {
		fc.mu.Lock()
		for len(fc.queue) == 0 && !fc.closed && fc.werr == nil {
			fc.cond.Wait()
		}
		if fc.werr != nil || (fc.closed && len(fc.queue) == 0) {
			fc.mu.Unlock()
			return
		}
		batch := fc.queue
		fc.queue = nil
		fc.mu.Unlock()

		if fc.writeTimeout > 0 {
			fc.c.SetWriteDeadline(time.Now().Add(fc.writeTimeout))
		}
		var n int
		var err error
		for i := range batch {
			of := &batch[i]
			if _, err = fc.bw.Write(of.hdr[:]); err != nil {
				break
			}
			if _, err = fc.bw.Write(of.payload); err != nil {
				break
			}
			n += len(of.hdr) + len(of.payload)
			fc.m.frameBytes.ObserveCount(len(of.hdr) + len(of.payload))
			if of.pooled {
				putBuf(of.payload)
				of.payload = nil
			}
		}
		if err == nil {
			// Flush only when no frame arrived while we were writing: a
			// still-busy queue means the next iteration extends this
			// buffered run instead of paying a syscall per wakeup.
			fc.mu.Lock()
			idle := len(fc.queue) == 0
			fc.mu.Unlock()
			if idle {
				err = fc.bw.Flush()
				fc.m.flushes.With("idle").Inc()
			}
		}
		if err != nil {
			fc.mu.Lock()
			fc.werr = err
			dropped := fc.queue
			fc.queue = nil
			fc.mu.Unlock()
			recycleFrames(batch)
			recycleFrames(dropped)
			fc.c.Close()
			return
		}
		fc.m.framesSent.Add(uint64(len(batch)))
		fc.m.bytesSent.Add(uint64(n))
		fc.m.writeBatch.ObserveCount(len(batch))
	}
}

// recycleFrames returns the pooled payloads of unwritten frames to the
// slab pool.
func recycleFrames(frames []outFrame) {
	for i := range frames {
		if frames[i].pooled && frames[i].payload != nil {
			putBuf(frames[i].payload)
			frames[i].payload = nil
		}
	}
}

// close shuts the connection down gracefully: queued frames are flushed
// before the socket closes. Idempotent.
func (fc *frameConn) close() {
	fc.mu.Lock()
	if fc.closed {
		fc.mu.Unlock()
		<-fc.done
		return
	}
	fc.closed = true
	fc.cond.Signal()
	fc.mu.Unlock()
	<-fc.done
	fc.m.flushes.With("close").Inc()
	fc.bw.Flush()
	fc.c.Close()
}

// abort tears the connection down immediately, discarding queued frames —
// the crash-simulation path (Server.DropConnections).
func (fc *frameConn) abort() {
	fc.mu.Lock()
	if fc.werr == nil {
		fc.werr = fmt.Errorf("transport: connection dropped")
	}
	fc.closed = true
	dropped := fc.queue
	fc.queue = nil
	fc.cond.Signal()
	fc.mu.Unlock()
	recycleFrames(dropped)
	fc.c.Close()
	<-fc.done
}

// readFrame reads one frame from r, counting it against m. The payload is
// freshly allocated; the steady-state read loops use readFrameBuf.
func readFrame(r *bufio.Reader, m connMetrics) (wire.Frame, error) {
	f, err := wire.ReadFrame(r)
	if err != nil {
		return f, err
	}
	m.framesRecv.Inc()
	m.bytesRecv.Add(uint64(wire.FrameHeaderLen + len(f.Payload)))
	return f, nil
}

// Shared instrument constructors for the two observability options: both
// roles expose the same writer-batching surface under the same names.
func newWriteBatchHistogram(reg *obs.Registry) *obs.Histogram {
	h := obs.NewCountHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256)
	reg.AttachHistogram(obs.MTransportWriteBatchFrames, "Frames drained per connection-writer wakeup (one flush).", "", "", h)
	return h
}

func newFlushCounterVec(reg *obs.Registry) *obs.CounterVec {
	v := obs.NewCounterVec()
	reg.AttachCounterVec(obs.MTransportFlushes, "Connection writer bufio flushes by reason.", "reason", v)
	return v
}

func newFrameBytesHistogram(reg *obs.Registry) *obs.Histogram {
	h := obs.NewCountHistogram(64, 256, 1<<10, 4<<10, 16<<10, 64<<10, 256<<10, 1<<20)
	reg.AttachHistogram(obs.MTransportFrameBytes, "Encoded frame sizes, header+payload bytes (informs the slab pool classes).", "", "", h)
	return h
}

// readFrameBuf reads one frame from r into buf (growing it as needed),
// counting it against m. The frame's payload aliases the returned buffer
// and is valid only until the next read — callers retaining a payload must
// copy it.
func readFrameBuf(r *bufio.Reader, m connMetrics, buf []byte) (wire.Frame, []byte, error) {
	f, buf, err := wire.ReadFrameBuf(r, buf)
	if err != nil {
		return f, buf, err
	}
	m.framesRecv.Inc()
	m.bytesRecv.Add(uint64(wire.FrameHeaderLen + len(f.Payload)))
	return f, buf, nil
}
