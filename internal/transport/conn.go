// Package transport carries PLEROMA's control and data messages across a
// real process boundary: length-prefixed wire.Frame messages over stdlib
// TCP, with request/response correlation, per-connection write batching,
// and client-side reconnect under core.RetryPolicy semantics. The server
// side (Server) exposes a Backend — the same control-op and southbound
// surfaces the in-process facade drives directly — and the client side
// (Client, RemoteProgrammer) lets publisher/subscriber processes and even
// a remote controller speak to it. The emulator never appears here: both
// ends exchange only wire types, which is what lets the same core and
// facade code run in one process or several.
package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pleroma/internal/obs"
	"pleroma/internal/wire"
)

// connMetrics holds the transport instruments shared by both roles. All
// fields may be nil (obs instruments are nil-safe).
type connMetrics struct {
	framesSent *obs.Counter
	framesRecv *obs.Counter
	bytesSent  *obs.Counter
	bytesRecv  *obs.Counter
}

// frameConn wraps a net.Conn with an unbounded FIFO write queue drained by
// a single writer goroutine. Senders never block on the network: send
// enqueues the encoded frame and returns, and the writer flushes every
// frame queued at the moment it wakes in one buffered write — the
// per-connection write batching. The FIFO order doubles as the protocol's
// barrier: a response enqueued after a set of deliveries reaches the peer
// after them.
type frameConn struct {
	c  net.Conn
	bw *bufio.Writer

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
	werr   error
	done   chan struct{}

	writeTimeout time.Duration
	m            connMetrics

	// tracing records whether this connection's Hello handshake negotiated
	// wire.FlagTracing. Set once by the server's Hello handler, read by
	// delivery sinks on arbitrary goroutines — hence atomic.
	tracing atomic.Bool
}

func newFrameConn(c net.Conn, writeTimeout time.Duration, m connMetrics) *frameConn {
	fc := &frameConn{
		c:            c,
		bw:           bufio.NewWriter(c),
		done:         make(chan struct{}),
		writeTimeout: writeTimeout,
		m:            m,
	}
	fc.cond = sync.NewCond(&fc.mu)
	go fc.writeLoop()
	return fc
}

// send enqueues one frame for transmission. It returns an error only if
// the connection is already closed or a previous write failed; the write
// itself is asynchronous.
func (fc *frameConn) send(f wire.Frame) error {
	b, err := wire.AppendFrame(nil, f)
	if err != nil {
		return err
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.werr != nil {
		return fc.werr
	}
	if fc.closed {
		return fmt.Errorf("transport: connection closed")
	}
	fc.queue = append(fc.queue, b)
	fc.cond.Signal()
	return nil
}

// writeLoop drains the queue: every wakeup takes the whole backlog, writes
// it through the buffered writer, and flushes once.
func (fc *frameConn) writeLoop() {
	defer close(fc.done)
	for {
		fc.mu.Lock()
		for len(fc.queue) == 0 && !fc.closed && fc.werr == nil {
			fc.cond.Wait()
		}
		if fc.werr != nil || (fc.closed && len(fc.queue) == 0) {
			fc.mu.Unlock()
			return
		}
		batch := fc.queue
		fc.queue = nil
		fc.mu.Unlock()

		if fc.writeTimeout > 0 {
			fc.c.SetWriteDeadline(time.Now().Add(fc.writeTimeout))
		}
		var n int
		var err error
		for _, b := range batch {
			if _, err = fc.bw.Write(b); err != nil {
				break
			}
			n += len(b)
		}
		if err == nil {
			err = fc.bw.Flush()
		}
		if err != nil {
			fc.mu.Lock()
			fc.werr = err
			fc.queue = nil
			fc.mu.Unlock()
			fc.c.Close()
			return
		}
		fc.m.framesSent.Add(uint64(len(batch)))
		fc.m.bytesSent.Add(uint64(n))
	}
}

// close shuts the connection down gracefully: queued frames are flushed
// before the socket closes. Idempotent.
func (fc *frameConn) close() {
	fc.mu.Lock()
	if fc.closed {
		fc.mu.Unlock()
		<-fc.done
		return
	}
	fc.closed = true
	fc.cond.Signal()
	fc.mu.Unlock()
	<-fc.done
	fc.c.Close()
}

// abort tears the connection down immediately, discarding queued frames —
// the crash-simulation path (Server.DropConnections).
func (fc *frameConn) abort() {
	fc.mu.Lock()
	if fc.werr == nil {
		fc.werr = fmt.Errorf("transport: connection dropped")
	}
	fc.closed = true
	fc.queue = nil
	fc.cond.Signal()
	fc.mu.Unlock()
	fc.c.Close()
	<-fc.done
}

// readFrame reads one frame from r, counting it against m.
func readFrame(r *bufio.Reader, m connMetrics) (wire.Frame, error) {
	f, err := wire.ReadFrame(r)
	if err != nil {
		return f, err
	}
	m.framesRecv.Inc()
	m.bytesRecv.Add(uint64(wire.FrameHeaderLen + len(f.Payload)))
	return f, nil
}
