package transport

import (
	"time"

	"pleroma/internal/wire"
)

// Tuning defaults of the pipelined data path. The batching thresholds are
// deliberately small multiples of typical event sizes: a coalesced
// PublishReq caps at defaultBatchEvents events or defaultBatchBytes of
// encoded payload (whichever trips first), and a partial batch never waits
// longer than defaultLinger before it is sealed and sent.
const (
	defaultWindow      = 32
	defaultBatchEvents = 64
	defaultBatchBytes  = 32 << 10
	defaultLinger      = 500 * time.Microsecond
	// deliverBatchBytes bounds one KindDeliverBatch payload; longer
	// delivery runs chunk into successive frames.
	deliverBatchBytes = 256 << 10
)

// Options tunes the transport data path. The zero value selects the
// defaults above; it is accepted everywhere an Options is.
type Options struct {
	// ReadTimeout bounds each blocking frame read. Zero disables the
	// deadline (the default: subscriber connections legitimately sit idle
	// between deliveries).
	ReadTimeout time.Duration
	// WriteTimeout bounds each buffered write+flush by the writer
	// goroutine. Zero keeps the role's existing default (the client uses
	// its retry policy's OpDeadline; the server uses WithServerTimeout).
	WriteTimeout time.Duration
	// Window bounds the async publish pipeline: the number of unacked
	// KindPublish frames a client keeps in flight before PublishAsync
	// blocks (credit-based backpressure). Zero selects defaultWindow; 1
	// degenerates to stop-and-wait.
	Window int
	// BatchEvents caps the events coalesced into one PublishReq. Zero
	// selects defaultBatchEvents; 1 disables coalescing. Values above
	// wire.MaxEvents are clamped.
	BatchEvents int
	// BatchBytes caps the encoded payload bytes of one coalesced
	// PublishReq. Zero selects defaultBatchBytes.
	BatchBytes int
	// Linger caps how long a partial publish batch may wait for more
	// events before it is sealed and sent. Zero selects defaultLinger.
	Linger time.Duration
	// NoBatching withholds wire.FlagBatching from the session handshake:
	// a client stops advertising it, a server stops echoing it, and the
	// peer sees the per-event v1 frame stream. Used to pin
	// legacy-compatibility behavior in tests and to interoperate with
	// pre-batching peers explicitly.
	NoBatching bool
}

func (o Options) window() int {
	if o.Window <= 0 {
		return defaultWindow
	}
	return o.Window
}

func (o Options) batchEvents() int {
	n := o.BatchEvents
	if n <= 0 {
		n = defaultBatchEvents
	}
	if n > wire.MaxEvents {
		n = wire.MaxEvents
	}
	return n
}

func (o Options) batchBytes() int {
	if o.BatchBytes <= 0 {
		return defaultBatchBytes
	}
	return o.BatchBytes
}

func (o Options) linger() time.Duration {
	if o.Linger <= 0 {
		return defaultLinger
	}
	return o.Linger
}
