package openflow

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"pleroma/internal/dz"
	"pleroma/internal/ipmc"
)

// benchTable builds a table of n flows keeping the PLEROMA invariant
// (priority == |dz|) so Lookup serves from the prefix index.
func benchTable(b *testing.B, n int) *Table {
	b.Helper()
	r := rand.New(rand.NewSource(int64(n)))
	tab := NewTable()
	seen := make(map[dz.Expr]bool, n)
	for len(seen) < n {
		l := 1 + r.Intn(24)
		buf := make([]byte, l)
		for j := range buf {
			buf[j] = byte('0' + r.Intn(2))
		}
		e := dz.Expr(buf)
		if seen[e] {
			continue
		}
		seen[e] = true
		f, err := NewFlow(e, e.Len(), Action{OutPort: PortID(1 + r.Intn(4))})
		if err != nil {
			b.Fatal(err)
		}
		tab.Add(f)
	}
	return tab
}

// benchProbes returns event addresses that exercise hits at several depths
// plus guaranteed misses (destinations outside any installed prefix family).
func benchProbes(b *testing.B, tab *Table) []netip.Addr {
	b.Helper()
	var probes []netip.Addr
	flows := tab.Flows()
	for i := 0; i < 8 && i < len(flows); i++ {
		// Refine an installed expression so the lookup walks past it.
		e := flows[i*len(flows)/8].Expr + "0110"
		addr, err := ipmc.EventAddr(e.Truncate(ipmc.MaxDzLen))
		if err != nil {
			b.Fatal(err)
		}
		probes = append(probes, addr)
	}
	return probes
}

// BenchmarkTableLookup measures the dz fast path of the TCAM emulation.
// The acceptance bar for the prefix index is 0 allocs/op.
func BenchmarkTableLookup(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tab := benchTable(b, n)
			probes := benchProbes(b, tab)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Lookup(probes[i%len(probes)])
			}
		})
	}
}

// BenchmarkTableLookupMixedPriority measures the slow path: one flow
// violating the priority == |dz| invariant drops Lookup to a full scan.
func BenchmarkTableLookupMixedPriority(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tab := benchTable(b, n)
			f, err := NewFlow("01", 99, Action{OutPort: 1})
			if err != nil {
				b.Fatal(err)
			}
			tab.Add(f)
			probes := benchProbes(b, tab)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Lookup(probes[i%len(probes)])
			}
		})
	}
}
