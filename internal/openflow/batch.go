package openflow

import "fmt"

// OpKind discriminates the FlowMod variants of a batch operation.
type OpKind uint8

// Batch operation kinds.
const (
	// OpAdd installs Flow.
	OpAdd OpKind = iota + 1
	// OpDelete removes the flow with ID.
	OpDelete
	// OpModify replaces priority and actions of the flow with ID.
	OpModify
)

func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpDelete:
		return "delete"
	case OpModify:
		return "modify"
	default:
		return "unknown"
	}
}

// FlowOp is one FlowMod of a batch: an add carries the flow to install,
// a delete the target ID, a modify the target ID plus the new priority and
// instruction set. Batches model OpenFlow bundles: the controller collects
// every FlowMod one control operation owes a switch and ships them in a
// single southbound call instead of one round-trip per flow.
type FlowOp struct {
	Kind     OpKind
	Flow     Flow     // OpAdd
	ID       FlowID   // OpDelete, OpModify
	Priority int      // OpModify
	Actions  []Action // OpModify
}

// AddOp builds an add operation.
func AddOp(f Flow) FlowOp { return FlowOp{Kind: OpAdd, Flow: f} }

// DeleteOp builds a delete operation.
func DeleteOp(id FlowID) FlowOp { return FlowOp{Kind: OpDelete, ID: id} }

// ModifyOp builds a modify operation.
func ModifyOp(id FlowID, priority int, actions []Action) FlowOp {
	return FlowOp{Kind: OpModify, ID: id, Priority: priority, Actions: actions}
}

// ApplyBatch applies the operations in order under a single lock
// acquisition, stopping at the first failure. It returns one FlowID per
// successfully applied operation — the assigned ID for adds, zero for
// deletes and modifies — so a caller can tell exactly which prefix of the
// batch took effect when an error is returned.
func (t *Table) ApplyBatch(ops []FlowOp) ([]FlowID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Batches++
	applied := make([]FlowID, 0, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpAdd:
			id, err := t.tryAddLocked(op.Flow)
			if err != nil {
				return applied, fmt.Errorf("openflow: batch op %d: %w", i, err)
			}
			applied = append(applied, id)
		case OpDelete:
			if !t.deleteLocked(op.ID) {
				return applied, fmt.Errorf("openflow: batch op %d: no flow %d", i, op.ID)
			}
			applied = append(applied, 0)
		case OpModify:
			if !t.modifyLocked(op.ID, op.Priority, op.Actions) {
				return applied, fmt.Errorf("openflow: batch op %d: no flow %d", i, op.ID)
			}
			applied = append(applied, 0)
		default:
			return applied, fmt.Errorf("openflow: batch op %d: unknown kind %d", i, op.Kind)
		}
	}
	return applied, nil
}
