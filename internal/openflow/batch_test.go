package openflow

import (
	"errors"
	"sync"
	"testing"

	"pleroma/internal/ipmc"
)

func TestApplyBatchInOrder(t *testing.T) {
	tab := NewTable()
	keep := tab.Add(mustFlow(t, "0", 0, 1))
	ops := []FlowOp{
		AddOp(mustFlow(t, "1", 0, 2)),
		AddOp(mustFlow(t, "10", 1, 3)),
		ModifyOp(keep, 2, []Action{{OutPort: 4}}),
		DeleteOp(keep),
	}
	applied, err := tab.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != len(ops) {
		t.Fatalf("applied=%d ids, want %d", len(applied), len(ops))
	}
	// Adds report their assigned ids; deletes/modifies report zero.
	if applied[0] == 0 || applied[1] == 0 || applied[2] != 0 || applied[3] != 0 {
		t.Errorf("applied=%v", applied)
	}
	if tab.Len() != 2 {
		t.Errorf("Len=%d, want 2", tab.Len())
	}
	st := tab.Stats()
	if st.Batches != 1 {
		t.Errorf("Batches=%d, want 1", st.Batches)
	}
	if st.Adds != 3 || st.Deletes != 1 || st.Mods != 1 {
		t.Errorf("stats=%+v", st)
	}
}

func TestApplyBatchStopsAtFirstFailure(t *testing.T) {
	tab := NewTable()
	tab.SetCapacity(2)
	ops := []FlowOp{
		AddOp(mustFlow(t, "0", 0, 1)),
		AddOp(mustFlow(t, "1", 0, 2)),
		AddOp(mustFlow(t, "10", 1, 3)), // exceeds capacity
		AddOp(mustFlow(t, "11", 1, 4)), // never attempted
	}
	applied, err := tab.ApplyBatch(ops)
	if err == nil {
		t.Fatal("over-capacity batch must fail")
	}
	if !errors.Is(err, ErrTableFull) {
		t.Errorf("err=%v, want wrapped ErrTableFull", err)
	}
	// Prefix semantics: exactly the ops before the failure took effect.
	if len(applied) != 2 {
		t.Fatalf("applied=%v, want the 2-op prefix", applied)
	}
	if tab.Len() != 2 {
		t.Errorf("Len=%d, want 2", tab.Len())
	}
}

func TestApplyBatchUnknownTargets(t *testing.T) {
	tab := NewTable()
	if _, err := tab.ApplyBatch([]FlowOp{DeleteOp(99)}); err == nil {
		t.Error("deleting unknown id must fail")
	}
	if _, err := tab.ApplyBatch([]FlowOp{ModifyOp(99, 0, nil)}); err == nil {
		t.Error("modifying unknown id must fail")
	}
	if _, err := tab.ApplyBatch([]FlowOp{{Kind: OpKind(42)}}); err == nil {
		t.Error("unknown op kind must fail")
	}
}

// TestTableConcurrentAccess hammers one table from several goroutines;
// meaningful under -race.
func TestTableConcurrentAccess(t *testing.T) {
	tab := NewTable()
	var wg sync.WaitGroup
	flows := make([]Flow, 4)
	for w := range flows {
		flows[w] = mustFlow(t, "1", 1, PortID(w+1))
	}
	ev, err := ipmc.EventAddr("1111")
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id, err := tab.TryAdd(flows[w])
				if err != nil {
					t.Error(err)
					return
				}
				tab.Lookup(ev)
				_ = tab.Flows()
				_ = tab.Stats()
				if !tab.Modify(id, 2, []Action{{OutPort: 9}}) {
					t.Error("modify failed")
					return
				}
				if !tab.Delete(id) {
					t.Error("delete failed")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != 0 {
		t.Errorf("Len=%d, want 0", tab.Len())
	}
}
