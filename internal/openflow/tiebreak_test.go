package openflow

import (
	"net/netip"
	"testing"

	"pleroma/internal/dz"
	"pleroma/internal/ipmc"
)

// tiebreak_test.go pins the exact Lookup tie-break semantics — priority,
// then prefix length, then FlowID — across both serving paths: the prefix
// trie (every flow keeps priority == |dz|) and the full scan that any
// invariant-violating flow drops the table into.

func mustEventAddr(t *testing.T, e dz.Expr) netip.Addr {
	t.Helper()
	addr, err := ipmc.EventAddr(e)
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

// TestLookupTieBreakPriorityBeatsLength: with mixed priorities a shorter
// prefix with a higher priority must beat a longer one (the TCAM orders on
// priority first; the PLEROMA invariant is what normally aligns the two).
func TestLookupTieBreakPriorityBeatsLength(t *testing.T) {
	tab := NewTable()
	short := tab.Add(mustFlow(t, "0", 9, 1)) // slow: priority != |dz|
	tab.Add(mustFlow(t, "0110", 4, 2))       // keeps the invariant
	got, ok := tab.Lookup(mustEventAddr(t, "011010"))
	if !ok || got.ID != short {
		t.Fatalf("Lookup = %v (ok=%v), want short high-priority flow %d", got, ok, short)
	}
}

// TestLookupTieBreakLengthAtEqualPriority: at equal priority the longer
// prefix wins. An unrelated invariant-violating flow forces the full scan
// so the flowLess ordering itself is exercised.
func TestLookupTieBreakLengthAtEqualPriority(t *testing.T) {
	tab := NewTable()
	tab.Add(mustFlow(t, "1", 99, 9)) // unrelated; drops table to full scan
	tab.Add(mustFlow(t, "01", 7, 1))
	long := tab.Add(mustFlow(t, "0110", 7, 2))
	got, ok := tab.Lookup(mustEventAddr(t, "011010"))
	if !ok || got.ID != long {
		t.Fatalf("Lookup = %v (ok=%v), want longer-prefix flow %d", got, ok, long)
	}
}

// TestLookupTieBreakFlowIDBothPaths: same expression, same priority — the
// earliest-installed flow (lowest ID) must win on the fast path and still
// win after an unrelated slow flow forces the full scan.
func TestLookupTieBreakFlowIDBothPaths(t *testing.T) {
	tab := NewTable()
	first := tab.Add(mustFlow(t, "010", 3, 1))
	tab.Add(mustFlow(t, "010", 3, 2))
	addr := mustEventAddr(t, "0101")

	if got, ok := tab.Lookup(addr); !ok || got.ID != first {
		t.Fatalf("fast path: Lookup = %v (ok=%v), want first-installed %d", got, ok, first)
	}
	slow := tab.Add(mustFlow(t, "1", 42, 9)) // force the full scan
	if got, ok := tab.Lookup(addr); !ok || got.ID != first {
		t.Fatalf("slow path: Lookup = %v (ok=%v), want first-installed %d", got, ok, first)
	}
	tab.Delete(slow)
	if got, ok := tab.Lookup(addr); !ok || got.ID != first {
		t.Fatalf("back on fast path: Lookup = %v (ok=%v), want %d", got, ok, first)
	}
}

// TestLookupSlowFlowsToggle drives the table across the fast/slow boundary
// through Add, Modify, and Delete and checks the two paths agree at every
// step (the winner is path-independent while the invariant holds).
func TestLookupSlowFlowsToggle(t *testing.T) {
	tab := NewTable()
	tab.Add(mustFlow(t, "0", 1, 1))
	deep := tab.Add(mustFlow(t, "0110", 4, 2))
	addr := mustEventAddr(t, "011011")

	want := func(stage string, id FlowID) {
		t.Helper()
		got, ok := tab.Lookup(addr)
		if !ok || got.ID != id {
			t.Fatalf("%s: Lookup = %v (ok=%v), want flow %d", stage, got, ok, id)
		}
	}
	want("all flows fast", deep)

	// Modify the deep flow's priority above its length: full scan, and the
	// new priority still wins.
	if !tab.Modify(deep, 50, []Action{{OutPort: 2}}) {
		t.Fatal("modify failed")
	}
	want("deep flow slow", deep)

	// Restore the invariant: the trie must serve the same winner again.
	if !tab.Modify(deep, 4, []Action{{OutPort: 2}}) {
		t.Fatal("restore failed")
	}
	want("invariant restored", deep)

	// Deleting the deep flow falls back to the covering short one.
	shortID := FlowID(1)
	tab.Delete(deep)
	want("deep deleted", shortID)
}

// TestLookupEqualLengthDisjointPrefixes: equal-length flows on disjoint
// subspaces never shadow each other, on either path.
func TestLookupEqualLengthDisjointPrefixes(t *testing.T) {
	tab := NewTable()
	left := tab.Add(mustFlow(t, "00", 2, 1))
	right := tab.Add(mustFlow(t, "01", 2, 2))
	for _, path := range []string{"fast", "slow"} {
		if path == "slow" {
			tab.Add(mustFlow(t, "1", 77, 9))
		}
		if got, ok := tab.Lookup(mustEventAddr(t, "001")); !ok || got.ID != left {
			t.Fatalf("%s: Lookup(001) = %v (ok=%v), want %d", path, got, ok, left)
		}
		if got, ok := tab.Lookup(mustEventAddr(t, "011")); !ok || got.ID != right {
			t.Fatalf("%s: Lookup(011) = %v (ok=%v), want %d", path, got, ok, right)
		}
	}
}
