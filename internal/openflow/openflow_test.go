package openflow

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"

	"pleroma/internal/dz"
	"pleroma/internal/ipmc"
)

func mustFlow(t *testing.T, expr dz.Expr, prio int, ports ...PortID) Flow {
	t.Helper()
	actions := make([]Action, len(ports))
	for i, p := range ports {
		actions[i] = Action{OutPort: p}
	}
	f, err := NewFlow(expr, prio, actions...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFlowInvalid(t *testing.T) {
	if _, err := NewFlow("01x", 0); err == nil {
		t.Error("invalid expr must fail")
	}
}

func TestFlowOutPorts(t *testing.T) {
	f := mustFlow(t, "10", 0, 3, 2, 3)
	ports := f.OutPorts()
	if len(ports) != 2 || ports[0] != 2 || ports[1] != 3 {
		t.Errorf("OutPorts=%v", ports)
	}
	if !f.HasPort(2) || f.HasPort(4) {
		t.Error("HasPort wrong")
	}
}

func TestFlowCoverRelations(t *testing.T) {
	// Section 3.3.2: fl1 ≥ fl2 iff dz covers and ports are a subset.
	fl1 := mustFlow(t, "10", 0, 2, 3)
	fl2 := mustFlow(t, "100", 0, 2)
	if !fl1.Covers(fl2) {
		t.Error("fl1 must cover fl2")
	}
	if fl2.Covers(fl1) {
		t.Error("fl2 must not cover fl1")
	}
	// Partial cover: dz covers but ports not subset.
	fl3 := mustFlow(t, "100", 0, 2, 4)
	if fl1.Covers(fl3) {
		t.Error("fl1 must not fully cover fl3 (port 4 missing)")
	}
	if !fl1.PartiallyCovers(fl3) {
		t.Error("fl1 must partially cover fl3")
	}
	if fl1.PartiallyCovers(fl2) {
		t.Error("full cover is not partial cover")
	}
	// No dz cover relation at all.
	fl4 := mustFlow(t, "01", 0, 2)
	if fl1.Covers(fl4) || fl1.PartiallyCovers(fl4) {
		t.Error("unrelated subspaces must not cover")
	}
}

func TestTableAddDeleteModify(t *testing.T) {
	tab := NewTable()
	id := tab.Add(mustFlow(t, "1", 0, 2))
	if tab.Len() != 1 {
		t.Fatalf("Len=%d", tab.Len())
	}
	if ok := tab.Modify(id, 1, []Action{{OutPort: 2}, {OutPort: 3}}); !ok {
		t.Fatal("Modify failed")
	}
	f, ok := tab.Get(id)
	if !ok || f.Priority != 1 || len(f.Actions) != 2 {
		t.Fatalf("Get=%v,%v", f, ok)
	}
	if !tab.Delete(id) {
		t.Fatal("Delete failed")
	}
	if tab.Delete(id) {
		t.Fatal("double delete must fail")
	}
	if tab.Modify(id, 0, nil) {
		t.Fatal("modify deleted must fail")
	}
	if _, ok := tab.Get(id); ok {
		t.Fatal("get deleted must fail")
	}
	st := tab.Stats()
	if st.Adds != 1 || st.Deletes != 1 || st.Mods != 1 || st.Total() != 3 {
		t.Errorf("stats=%+v", st)
	}
	tab.ResetStats()
	if tab.Stats().Total() != 0 {
		t.Error("ResetStats failed")
	}
}

// TestPaperFigure3PriorityOrder reproduces the R3 example: an event with
// dz=1001 matches both dz=1 and dz=100, but only the higher-priority
// longer flow is applied.
func TestPaperFigure3PriorityOrder(t *testing.T) {
	tab := NewTable()
	f1, err := NewFlow("100", 1, Action{OutPort: 2}, Action{OutPort: 3})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFlow("1", 0, Action{OutPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	tab.Add(f1)
	tab.Add(f2)

	ev, err := ipmc.EventAddr("1001")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := tab.Lookup(ev)
	if !ok {
		t.Fatal("lookup must match")
	}
	if got.Expr != "100" {
		t.Errorf("matched %q, want 100 (higher priority)", got.Expr)
	}
	ports := got.OutPorts()
	if len(ports) != 2 || ports[0] != 2 || ports[1] != 3 {
		t.Errorf("ports=%v, want [2 3]", ports)
	}

	// An event matching dz=1 but not dz=100 follows the coarser flow.
	ev2, err := ipmc.EventAddr("1100")
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := tab.Lookup(ev2)
	if !ok || got2.Expr != "1" {
		t.Errorf("matched %v/%v, want flow dz=1", got2.Expr, ok)
	}
}

func TestLookupTieBreakLongerPrefix(t *testing.T) {
	tab := NewTable()
	tab.Add(mustFlow(t, "1", 5, 1))
	tab.Add(mustFlow(t, "10", 5, 2))
	ev, _ := ipmc.EventAddr("1000")
	got, ok := tab.Lookup(ev)
	if !ok || got.Expr != "10" {
		t.Errorf("equal priority must prefer longer prefix, got %q", got.Expr)
	}
}

func TestLookupNoMatch(t *testing.T) {
	tab := NewTable()
	tab.Add(mustFlow(t, "1", 0, 1))
	ev, _ := ipmc.EventAddr("0")
	if _, ok := tab.Lookup(ev); ok {
		t.Error("lookup must miss")
	}
	// Signal address never matches dz flows... ff0e:ffff... actually it
	// would match an empty-expr flow; PLEROMA never installs those for the
	// signal range, here no flow matches:
	if _, ok := tab.Lookup(ipmc.SignalAddr); ok {
		t.Error("signal must miss")
	}
}

func TestFlowsSortedByID(t *testing.T) {
	tab := NewTable()
	tab.Add(mustFlow(t, "1", 0, 1))
	tab.Add(mustFlow(t, "0", 0, 2))
	fl := tab.Flows()
	if len(fl) != 2 || fl[0].Expr != "1" || fl[1].Expr != "0" {
		t.Errorf("Flows=%v", fl)
	}
}

func TestFlowString(t *testing.T) {
	f := mustFlow(t, "100", 1, 3, 2)
	if got := f.String(); got != "100* > 2,3 :PO=1" {
		t.Errorf("String()=%q", got)
	}
}

func TestSetDestAction(t *testing.T) {
	sub := netip.MustParseAddr("fd00::42")
	f, err := NewFlow("100", 1, Action{OutPort: 2, SetDest: sub})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Actions[0].SetDest.IsValid() || f.Actions[0].SetDest != sub {
		t.Error("SetDest not preserved")
	}
}

func BenchmarkLookup1000Flows(b *testing.B) {
	tab := NewTable()
	e := dz.Expr("")
	for i := 0; i < 1000; i++ {
		e = e.Child(byte(i % 2))
		if e.Len() > 100 {
			e = ""
		}
		f, err := NewFlow(e, e.Len(), Action{OutPort: PortID(i%4 + 1)})
		if err != nil {
			b.Fatal(err)
		}
		tab.Add(f)
	}
	ev, _ := ipmc.EventAddr("10101010101010101010")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(ev)
	}
}

// TestPropertyFastSlowLookupEquivalence: with the PLEROMA invariant
// (priority == |dz|), the indexed fast path must return exactly what the
// brute-force scan returns.
func TestPropertyFastSlowLookupEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		tab := NewTable()
		var installed []Flow
		n := 1 + r.Intn(30)
		for i := 0; i < n; i++ {
			l := r.Intn(8)
			buf := make([]byte, l)
			for j := range buf {
				buf[j] = byte('0' + r.Intn(2))
			}
			e := dz.Expr(buf)
			f, err := NewFlow(e, e.Len(), Action{OutPort: PortID(1 + r.Intn(4))})
			if err != nil {
				t.Fatal(err)
			}
			tab.Add(f)
			installed = append(installed, f)
		}
		// Random deletions keep the index honest.
		for _, fl := range tab.Flows() {
			if r.Intn(4) == 0 {
				tab.Delete(fl.ID)
			}
		}
		for probe := 0; probe < 20; probe++ {
			l := r.Intn(12)
			buf := make([]byte, l)
			for j := range buf {
				buf[j] = byte('0' + r.Intn(2))
			}
			addr, err := ipmc.EventAddr(dz.Expr(buf))
			if err != nil {
				t.Fatal(err)
			}
			fast, okFast := tab.Lookup(addr)
			// Brute force over the current table contents.
			var best *Flow
			for _, f := range tab.Flows() {
				f := f
				if !f.Match.Contains(addr) {
					continue
				}
				if best == nil || flowLess(best, &f) {
					cp := f
					best = &cp
				}
			}
			if okFast != (best != nil) {
				t.Fatalf("fast=%v brute=%v for %q", okFast, best != nil, buf)
			}
			if best != nil && (fast.ID != best.ID || fast.Expr != best.Expr) {
				t.Fatalf("fast=%v brute=%v", fast, *best)
			}
		}
	}
}

func TestTableCapacity(t *testing.T) {
	tab := NewTable()
	tab.SetCapacity(2)
	if tab.Capacity() != 2 {
		t.Fatalf("Capacity=%d", tab.Capacity())
	}
	if _, err := tab.TryAdd(mustFlow(t, "0", 1, 1)); err != nil {
		t.Fatal(err)
	}
	id2, err := tab.TryAdd(mustFlow(t, "1", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.TryAdd(mustFlow(t, "10", 2, 1)); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err=%v, want ErrTableFull", err)
	}
	if tab.Rejected() != 1 {
		t.Errorf("Rejected=%d", tab.Rejected())
	}
	// Deleting frees capacity.
	if !tab.Delete(id2) {
		t.Fatal("delete failed")
	}
	if _, err := tab.TryAdd(mustFlow(t, "10", 2, 1)); err != nil {
		t.Errorf("add after delete must succeed: %v", err)
	}
	if tab.Len() != 2 {
		t.Errorf("Len=%d", tab.Len())
	}
}
