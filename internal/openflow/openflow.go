// Package openflow models the subset of the OpenFlow switch abstraction
// that PLEROMA relies on (Section 3.3.2): flow entries with an IPv6
// destination match field (a dz-expression embedded as a CIDR prefix), a
// priority order, and an instruction set that outputs on a set of ports and
// optionally rewrites the destination address on terminal switches.
//
// A Table emulates the TCAM: lookups return the single highest-priority
// matching entry (ties broken by longer prefix, then installation order),
// and FlowMod operations are counted so experiments can account for control
// traffic and reconfiguration cost.
package openflow

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pleroma/internal/dz"
	"pleroma/internal/ipmc"
)

// PortID is a switch-local port number. Port numbering starts at 1 as in
// OpenFlow; 0 is "no port".
type PortID int

// Action is one entry of a flow's instruction set: forward on a port,
// optionally rewriting the destination IP first (used on terminal switches
// to address the subscriber host directly, cf. Figure 3).
type Action struct {
	// OutPort is the port the packet is forwarded on.
	OutPort PortID
	// SetDest, when valid, replaces the packet's destination address
	// before output.
	SetDest netip.Addr
}

// FlowID identifies an installed flow within one table.
type FlowID uint64

// Flow is a single flow-table entry.
type Flow struct {
	// ID is assigned by the table on installation; zero for new flows.
	ID FlowID
	// Expr is the dz-expression of the match field.
	Expr dz.Expr
	// Match is the CIDR form of Expr (maintained by the table).
	Match netip.Prefix
	// Priority orders entries; higher wins. PLEROMA keeps priorities
	// aligned with |Expr| so that longer (finer) subspaces match first.
	Priority int
	// Actions is the instruction set.
	Actions []Action
}

// NewFlow builds a flow for the given subspace, priority, and actions.
func NewFlow(expr dz.Expr, priority int, actions ...Action) (Flow, error) {
	match, err := ipmc.FromExpr(expr)
	if err != nil {
		return Flow{}, fmt.Errorf("openflow: %w", err)
	}
	return Flow{
		Expr:     expr,
		Match:    match,
		Priority: priority,
		Actions:  append([]Action(nil), actions...),
	}, nil
}

// OutPorts returns the sorted set of output ports of the flow.
func (f Flow) OutPorts() []PortID {
	ports := make([]PortID, 0, len(f.Actions))
	seen := make(map[PortID]bool, len(f.Actions))
	for _, a := range f.Actions {
		if !seen[a.OutPort] {
			seen[a.OutPort] = true
			ports = append(ports, a.OutPort)
		}
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	return ports
}

// HasPort reports whether the flow outputs on the given port.
func (f Flow) HasPort(p PortID) bool {
	for _, a := range f.Actions {
		if a.OutPort == p {
			return true
		}
	}
	return false
}

// Covers reports whether f covers o per Section 3.3.2: f's subspace covers
// o's subspace AND o's out ports are a subset of f's.
func (f Flow) Covers(o Flow) bool {
	if !f.Expr.Covers(o.Expr) {
		return false
	}
	for _, p := range o.OutPorts() {
		if !f.HasPort(p) {
			return false
		}
	}
	return true
}

// PartiallyCovers reports whether f partially covers o: f's subspace covers
// o's subspace but not all of o's out ports are in f's instruction set.
func (f Flow) PartiallyCovers(o Flow) bool {
	if !f.Expr.Covers(o.Expr) {
		return false
	}
	for _, p := range o.OutPorts() {
		if !f.HasPort(p) {
			return true
		}
	}
	return false
}

// String renders the flow like the paper's figures: "100* > 2,3 :PO=1".
func (f Flow) String() string {
	ports := f.OutPorts()
	parts := make([]string, len(ports))
	for i, p := range ports {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return fmt.Sprintf("%s* > %s :PO=%d", f.Expr, strings.Join(parts, ","), f.Priority)
}

// ModStats counts FlowMod operations applied to a table; the controller
// experiments use these to quantify reconfiguration cost.
type ModStats struct {
	Adds    uint64
	Deletes uint64
	Mods    uint64
	// Batches counts ApplyBatch invocations (each models one OpenFlow
	// bundle, i.e. one southbound round-trip regardless of op count).
	Batches uint64
}

// Total returns the total number of FlowMod messages.
func (s ModStats) Total() uint64 { return s.Adds + s.Deletes + s.Mods }

// Table is one switch's flow table.
//
// Lookups emulate a TCAM: the highest-priority matching entry wins. When
// every installed flow keeps the PLEROMA invariant priority == |dz| (the
// controller always does), the table serves lookups from a compressed
// binary trie over the packed dz bits of the match expressions: O(|dz|)
// and zero allocations per lookup, mirroring the constant-time behaviour
// of hardware TCAMs that Figure 7(a) demonstrates. Any flow violating the
// invariant drops the table back to a full scan.
//
// A Table is safe for concurrent use: every table carries its own lock, so
// control-plane reconfiguration (FlowMods, batches) and data-plane lookups
// interleave per switch without a global serialization point.
type Table struct {
	mu     sync.RWMutex
	flows  map[FlowID]*Flow
	nextID FlowID
	stats  ModStats

	// trie is the prefix index of the fast path: one bucket of flows per
	// distinct match expression, keyed on packed dz bits.
	trie dz.Trie[*exprBucket]
	// slowFlows counts flows the trie cannot serve (priority != |expr|);
	// nonzero disables the fast path.
	slowFlows int
	// capacity bounds the number of installed flows (the TCAM budget of
	// requirement 3 in the paper: vendors ship 40k–180k entries); zero
	// means unbounded.
	capacity int
	// rejected counts adds refused because the table was full.
	rejected uint64
	// size mirrors len(flows) so Len is lock-free: the data plane reads it
	// on every packet lookup (software-switch per-flow penalty) and must
	// not contend with controller FlowMods. Updated by the only two size-
	// changing paths, tryAddLocked and deleteLocked, under t.mu.
	size atomic.Int64
	// sizeObserver, when set, is called with the new flow count after
	// every size change, under the table lock — observers must be cheap
	// and must not call back into the table. The observability layer uses
	// it to drive per-switch occupancy gauges from the ground truth.
	sizeObserver func(int)
}

// ErrTableFull is returned (wrapped) when an Add exceeds the configured
// TCAM capacity.
var ErrTableFull = errors.New("openflow: flow table full")

// exprBucket holds the flows installed for one exact match expression; the
// lookup winner within a bucket is the lowest FlowID (earliest installed).
type exprBucket struct {
	flows []*Flow
}

// NewTable returns an empty flow table.
func NewTable() *Table {
	return &Table{flows: make(map[FlowID]*Flow)}
}

// Len returns the number of installed flows. It is lock-free: the count
// is maintained atomically by add/delete, so the forwarding hot path can
// read table occupancy without touching the table lock.
func (t *Table) Len() int {
	return int(t.size.Load())
}

// Stats returns the FlowMod counters.
func (t *Table) Stats() ModStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats
}

// ResetStats zeroes the FlowMod counters.
func (t *Table) ResetStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = ModStats{}
}

// SetCapacity bounds the table to n entries (0 = unbounded). Existing
// entries above the new capacity stay installed; only future Adds are
// refused.
func (t *Table) SetCapacity(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.capacity = n
}

// Capacity returns the configured TCAM budget (0 = unbounded).
func (t *Table) Capacity() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.capacity
}

// SetSizeObserver registers fn to be called with the flow count after
// every size change (and once immediately with the current count). fn
// runs under the table lock: it must be cheap, non-blocking, and must not
// call table methods. A nil fn removes the observer.
func (t *Table) SetSizeObserver(fn func(int)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sizeObserver = fn
	if fn != nil {
		fn(len(t.flows))
	}
}

// Rejected returns the number of Adds refused due to a full table.
func (t *Table) Rejected() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rejected
}

// Add installs a flow and returns its assigned ID.
func (t *Table) Add(f Flow) FlowID {
	id, _ := t.TryAdd(f)
	return id
}

// TryAdd installs a flow, enforcing the TCAM capacity. On a full table it
// returns ErrTableFull and installs nothing.
func (t *Table) TryAdd(f Flow) (FlowID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tryAddLocked(f)
}

func (t *Table) tryAddLocked(f Flow) (FlowID, error) {
	if t.capacity > 0 && len(t.flows) >= t.capacity {
		t.rejected++
		return 0, fmt.Errorf("%w: %d entries installed", ErrTableFull, len(t.flows))
	}
	t.nextID++
	f.ID = t.nextID
	t.flows[f.ID] = &f
	t.index(&f)
	t.stats.Adds++
	t.size.Store(int64(len(t.flows)))
	if t.sizeObserver != nil {
		t.sizeObserver(len(t.flows))
	}
	return f.ID, nil
}

// Delete removes the flow with the given ID. It reports whether a flow was
// removed.
func (t *Table) Delete(id FlowID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deleteLocked(id)
}

func (t *Table) deleteLocked(id FlowID) bool {
	f, ok := t.flows[id]
	if !ok {
		return false
	}
	t.unindex(f)
	delete(t.flows, id)
	t.stats.Deletes++
	t.size.Store(int64(len(t.flows)))
	if t.sizeObserver != nil {
		t.sizeObserver(len(t.flows))
	}
	return true
}

// Modify replaces the actions and priority of an installed flow.
func (t *Table) Modify(id FlowID, priority int, actions []Action) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.modifyLocked(id, priority, actions)
}

func (t *Table) modifyLocked(id FlowID, priority int, actions []Action) bool {
	f, ok := t.flows[id]
	if !ok {
		return false
	}
	t.unindex(f)
	f.Priority = priority
	f.Actions = append([]Action(nil), actions...)
	t.index(f)
	t.stats.Mods++
	return true
}

// indexable reports whether a flow can be served by the prefix trie: it
// keeps the PLEROMA invariant and its expression packs into a trie key
// (always true for flows built by NewFlow, which bounds |dz| at 112).
func indexable(f *Flow) (dz.Key, bool) {
	if f.Priority != f.Expr.Len() {
		return dz.Key{}, false
	}
	return dz.KeyOf(f.Expr)
}

func (t *Table) index(f *Flow) {
	k, ok := indexable(f)
	if !ok {
		t.slowFlows++
		return
	}
	if b, found := t.trie.Get(k); found {
		b.flows = append(b.flows, f)
		return
	}
	t.trie.Insert(k, &exprBucket{flows: []*Flow{f}})
}

func (t *Table) unindex(f *Flow) {
	k, ok := indexable(f)
	if !ok {
		t.slowFlows--
		return
	}
	b, found := t.trie.Get(k)
	if !found {
		return
	}
	for i, other := range b.flows {
		if other.ID == f.ID {
			b.flows[i] = b.flows[len(b.flows)-1]
			b.flows = b.flows[:len(b.flows)-1]
			break
		}
	}
	if len(b.flows) == 0 {
		t.trie.Delete(k)
	}
}

// Get returns a copy of the flow with the given ID.
func (t *Table) Get(id FlowID) (Flow, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, ok := t.flows[id]
	if !ok {
		return Flow{}, false
	}
	return *f, true
}

// Flows returns copies of all installed flows, ordered by ID.
func (t *Table) Flows() []Flow {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Flow, 0, len(t.flows))
	for _, f := range t.flows {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the flow the switch applies to a packet with the given
// destination address: the highest-priority match, ties broken by longer
// prefix and then earlier installation. ok is false if nothing matches
// (the packet would be dropped or punted to the controller).
func (t *Table) Lookup(dst netip.Addr) (Flow, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.slowFlows == 0 {
		return t.fastLookup(dst)
	}
	var best *Flow
	for _, f := range t.flows {
		if !f.Match.Contains(dst) {
			continue
		}
		if best == nil || flowLess(best, f) {
			best = f
		}
	}
	if best == nil {
		return Flow{}, false
	}
	return *best, true
}

// fastLookup serves the PLEROMA invariant (priority == |dz|): the winning
// entry is the longest installed prefix of the destination's dz bits,
// found by one trie descent over the packed address. Zero allocations.
func (t *Table) fastLookup(dst netip.Addr) (Flow, bool) {
	k, ok := ipmc.KeyFromAddr(dst)
	if !ok {
		return Flow{}, false // non-dz destination: no dz flow matches
	}
	_, b, found := t.trie.LongestPrefix(k)
	if !found {
		return Flow{}, false
	}
	best := b.flows[0]
	for _, f := range b.flows[1:] {
		if f.ID < best.ID {
			best = f
		}
	}
	return *best, true
}

// flowLess reports whether candidate b should win over current best a.
func flowLess(a, b *Flow) bool {
	if a.Priority != b.Priority {
		return b.Priority > a.Priority
	}
	if len(a.Expr) != len(b.Expr) {
		return len(b.Expr) > len(a.Expr)
	}
	return b.ID < a.ID
}
