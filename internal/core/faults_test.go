package core_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/topo"
)

// flakyProgrammer injects failures into the southbound interface after a
// configurable number of successful operations. It must be safe for
// concurrent use: the controller refreshes touched switches in parallel.
type flakyProgrammer struct {
	inner     core.FlowProgrammer
	mu        sync.Mutex
	failAfter int
	ops       int
	failKind  string // "add", "delete", "modify" or "" for all
}

var errSwitchGone = errors.New("switch unreachable")

func (f *flakyProgrammer) shouldFail(kind string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.ops <= f.failAfter {
		return false
	}
	return f.failKind == "" || f.failKind == kind
}

func (f *flakyProgrammer) AddFlow(sw topo.NodeID, fl openflow.Flow) (openflow.FlowID, error) {
	if f.shouldFail("add") {
		return 0, errSwitchGone
	}
	return f.inner.AddFlow(sw, fl)
}

func (f *flakyProgrammer) DeleteFlow(sw topo.NodeID, id openflow.FlowID) error {
	if f.shouldFail("delete") {
		return errSwitchGone
	}
	return f.inner.DeleteFlow(sw, id)
}

func (f *flakyProgrammer) ModifyFlow(sw topo.NodeID, id openflow.FlowID, prio int, actions []openflow.Action) error {
	if f.shouldFail("modify") {
		return errSwitchGone
	}
	return f.inner.ModifyFlow(sw, id, prio, actions)
}

func newFlakyController(t *testing.T, failAfter int, kind string) (*core.Controller, *topo.Graph, *flakyProgrammer) {
	t.Helper()
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	dp := netem.New(g, sim.NewEngine())
	prog := &flakyProgrammer{inner: dp, failAfter: failAfter, failKind: kind}
	ctl, err := core.NewController(g, prog, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		t.Fatal(err)
	}
	return ctl, g, prog
}

func TestAddFlowFailureSurfaces(t *testing.T) {
	ctl, g, _ := newFlakyController(t, 0, "add")
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err) // no flows yet, no southbound ops
	}
	_, err := ctl.Subscribe("s", hosts[5], dz.NewSet("1"))
	if err == nil {
		t.Fatal("southbound failure must surface")
	}
	if !errors.Is(err, errSwitchGone) {
		t.Errorf("err=%v, want wrapped errSwitchGone", err)
	}
	if !strings.Contains(err.Error(), "add flow") {
		t.Errorf("error lacks context: %v", err)
	}
}

func TestDeleteFlowFailureSurfaces(t *testing.T) {
	ctl, g, prog := newFlakyController(t, 1<<30, "delete")
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Subscribe("s", hosts[5], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	// Arm the fault, then force deletions via unsubscription.
	prog.failAfter = 0
	prog.ops = 0
	if _, err := ctl.Unsubscribe("s"); err == nil {
		t.Fatal("delete failure must surface")
	}
}

func TestSubscribeFailureLeavesConsistentCounters(t *testing.T) {
	ctl, g, _ := newFlakyController(t, 3, "add")
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	// This subscription needs more than 3 flow adds along the long path;
	// the tail fails.
	_, err := ctl.Subscribe("s", hosts[7], dz.NewSet("1"))
	if err == nil {
		t.Skip("path shorter than fault threshold on this topology")
	}
	// Stats must reflect only the operations that succeeded.
	st := ctl.Stats()
	if st.FlowAdds > 3 {
		t.Errorf("FlowAdds=%d, must not exceed successful ops", st.FlowAdds)
	}
}
