package core_test

import (
	"bytes"
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
)

// churnTestbed drives a small mixed workload so the controller holds
// several trees, stored subscriptions, and retired ids.
func churnTestbed(t *testing.T, opts ...core.Option) *testbed {
	t.Helper()
	tb := newTestbed(t, opts...)
	hosts := tb.g.Hosts()

	advA := tb.decompose(t, space.NewFilter().Range("attr0", 0, 511))
	advB := tb.decompose(t, space.NewFilter().Range("attr1", 256, 767))
	if _, err := tb.ctl.Advertise("pA", hosts[0], advA); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Advertise("pB", hosts[3], advB); err != nil {
		t.Fatal(err)
	}
	subs := []struct {
		id   string
		host int
		lo   uint32
		hi   uint32
	}{
		{"s1", 7, 0, 255},
		{"s2", 6, 128, 400},
		{"s3", 5, 0, 1023},
		{"s4", 4, 900, 1023}, // disjoint from pA: stored
	}
	for _, s := range subs {
		set := tb.decompose(t, space.NewFilter().Range("attr0", s.lo, s.hi))
		if _, err := tb.ctl.Subscribe(s.id, hosts[s.host], set); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.ctl.Unsubscribe("s2"); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	tb := churnTestbed(t)

	snap, err := tb.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := core.SnapshotDigest(snap)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := core.RestoreController(tb.g, tb.dp, snap,
		core.WithHostAddr(netem.HostAddr))
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := restored.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Fatal("restored controller's snapshot is not byte-identical")
	}
	d2, err := core.SnapshotDigest(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("snapshot digests differ after restore round trip")
	}

	// The restored desired state must agree with the live switch tables
	// the original controller programmed.
	if err := restored.VerifyTables(); err != nil {
		t.Fatalf("restored controller out of sync with switches: %v", err)
	}
}

func TestSnapshotEncodeDeterministic(t *testing.T) {
	tb := churnTestbed(t)
	snap1, err := tb.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := tb.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1, snap2) {
		t.Fatal("two snapshots of unchanged state differ")
	}

	// An independent controller driven through the same op sequence must
	// produce the same bytes: the codec iterates every map in sorted
	// order, never insertion order.
	other := churnTestbed(t)
	snap3, err := other.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1, snap3) {
		t.Fatal("same op sequence on a fresh controller yields different snapshot bytes")
	}
}

func TestSnapshotDigestValidation(t *testing.T) {
	tb := churnTestbed(t)
	snap, err := tb.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := core.SnapshotDigest(snap[:3]); err == nil {
		t.Error("short snapshot must fail digest extraction")
	}
	bad := append([]byte(nil), snap...)
	bad[0] ^= 0xFF
	if _, err := core.SnapshotDigest(bad); err == nil {
		t.Error("bad magic must fail")
	}

	// Flip one state byte: the trailer digest no longer matches, and a
	// restore must refuse the stream instead of rebuilding from it.
	bad = append([]byte(nil), snap...)
	bad[len(bad)-40] ^= 0x01
	if _, err := core.RestoreController(tb.g, tb.dp, bad, core.WithHostAddr(netem.HostAddr)); err == nil {
		t.Error("corrupted snapshot must fail restore")
	}
}

// TestSnapshotRestoreOntoFreshSwitches proves a snapshot carries enough
// state to rebuild forwarding from nothing: the restored controller
// resyncs blank switches and delivery matches the original network.
func TestSnapshotRestoreOntoFreshSwitches(t *testing.T) {
	tb := churnTestbed(t)
	snap, err := tb.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// A second, untouched network over the same topology.
	eng2 := sim.NewEngine()
	dp2 := netem.New(tb.g, eng2)
	recv2 := make(map[int]int)
	for _, h := range tb.g.Hosts() {
		h := h
		if err := dp2.ConfigureHost(h, netem.HostConfig{}, func(netem.Delivery) {
			recv2[int(h)]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := core.RestoreController(tb.g, dp2, snap,
		core.WithHostAddr(netem.HostAddr))
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot's installed flows describe the dead network's
	// switches; anti-entropy resync writes them into the fresh ones.
	if _, err := restored.ResyncAll(); err != nil {
		t.Fatal(err)
	}
	if err := restored.VerifyTables(); err != nil {
		t.Fatalf("resynced switches diverge from desired state: %v", err)
	}

	hosts := tb.g.Hosts()
	for _, vals := range [][]uint32{{100, 500}, {300, 300}, {950, 10}} {
		ev, err := tb.sch.NewEvent(vals...)
		if err != nil {
			t.Fatal(err)
		}
		expr, err := tb.sch.Encode(ev, tb.sch.Geometry().MaxLen())
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.dp.Publish(hosts[0], expr, ev, 64); err != nil {
			t.Fatal(err)
		}
		if err := dp2.Publish(hosts[0], expr, ev, 64); err != nil {
			t.Fatal(err)
		}
	}
	tb.eng.Run()
	eng2.Run()

	for _, h := range hosts {
		if got, want := recv2[int(h)], len(tb.recv[h]); got != want {
			t.Errorf("host %d: restored network delivered %d, original %d", h, got, want)
		}
	}
}
