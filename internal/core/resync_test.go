package core_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/topo"
)

// newFaultyController wires a controller to the data plane through a
// netem fault-injection layer, with the serial refresh order tests need
// for deterministic fault placement.
func newFaultyController(t *testing.T, cfg netem.FaultConfig, opts ...core.Option) (*core.Controller, *topo.Graph, *netem.FaultyProgrammer) {
	t.Helper()
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	dp := netem.New(g, sim.NewEngine())
	faulty := netem.WithFaults(dp, cfg)
	opts = append([]core.Option{
		core.WithHostAddr(netem.HostAddr),
		core.WithRefreshWorkers(1),
	}, opts...)
	ctl, err := core.NewController(g, faulty, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ctl, g, faulty
}

// TestMidBatchFaultRecordsAckedPrefix is the end-to-end divergence story:
// a bundle fails mid-batch, the controller records exactly the
// acknowledged prefix, VerifyTables flags the divergence from the
// canonical state, and a resync pass repairs the switch back to
// incremental ≡ canonical.
func TestMidBatchFaultRecordsAckedPrefix(t *testing.T) {
	ctl, g, faulty := newFaultyController(t, netem.FaultConfig{})
	hosts := g.Hosts()
	// Three disjoint subspaces → three adds per switch in one bundle.
	set := dz.NewSet("00", "10", "110")
	if _, err := ctl.Advertise("p", hosts[0], set); err != nil {
		t.Fatal(err)
	}
	// Fail the next bundle after exactly one acknowledged op. The default
	// (zero) retry policy makes one attempt, so the transient fault
	// quarantines the switch instead of failing the subscription.
	faulty.FailNextBatch(1)
	rep, err := ctl.Subscribe("s", hosts[5], set)
	if err != nil {
		t.Fatalf("transient fault must not fail the control op: %v", err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("Quarantined=%d, want 1", rep.Quarantined)
	}
	deg := ctl.DegradedSwitches()
	if len(deg) != 1 {
		t.Fatalf("degraded=%v, want one switch", deg)
	}
	sw := deg[0].Sw
	if !errors.Is(deg[0].Err, netem.ErrSwitchDown) {
		t.Errorf("degraded err=%v, want wrapped ErrSwitchDown", deg[0].Err)
	}

	// Exactly the acknowledged prefix is recorded: the bundle ships in
	// sorted expression order, so the one acked op is the first expr.
	got := ctl.InstalledFlowsOn(sw)
	if len(got) != 1 || got[0] != dz.Expr("00") {
		t.Fatalf("InstalledFlowsOn(%d)=%v, want [00]", sw, got)
	}

	// The divergence from the canonical table is detectable.
	if err := ctl.VerifyTables(); err == nil {
		t.Fatal("VerifyTables must flag the degraded switch")
	}

	// The anti-entropy pass repairs the switch with the two missing adds
	// and heals the quarantine.
	rr, err := ctl.ResyncAll()
	if err != nil {
		t.Fatalf("ResyncAll: %v", err)
	}
	if rr.FlowAdds != 2 {
		t.Errorf("resync FlowAdds=%d, want 2", rr.FlowAdds)
	}
	if rr.Healed != 1 {
		t.Errorf("resync Healed=%d, want 1", rr.Healed)
	}
	if len(rr.StillDegraded) != 0 {
		t.Errorf("StillDegraded=%v, want none", rr.StillDegraded)
	}
	if d := ctl.DegradedSwitches(); len(d) != 0 {
		t.Errorf("degraded after resync=%v, want none", d)
	}
	if err := ctl.VerifyTables(); err != nil {
		t.Errorf("VerifyTables after resync: %v", err)
	}
	st := ctl.Stats()
	if st.Quarantines != 1 || st.RepairedFlows != 2 {
		t.Errorf("stats Quarantines=%d RepairedFlows=%d, want 1 and 2", st.Quarantines, st.RepairedFlows)
	}
}

// TestTransientFaultRetriesAndSucceeds exercises the happy retry path: a
// scripted fault hits the first southbound call, the retry succeeds, and
// nothing is quarantined.
func TestTransientFaultRetriesAndSucceeds(t *testing.T) {
	var sleeps []time.Duration
	pol := core.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	ctl, g, _ := newFaultyController(t,
		netem.FaultConfig{FailCalls: []uint64{1}},
		core.WithRetryPolicy(pol))
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Subscribe("s", hosts[5], dz.NewSet("1"))
	if err != nil {
		t.Fatalf("retry must absorb the transient fault: %v", err)
	}
	if rep.Retries == 0 {
		t.Error("report must count the retry")
	}
	if rep.Quarantined != 0 {
		t.Errorf("Quarantined=%d, want 0", rep.Quarantined)
	}
	if len(sleeps) == 0 || sleeps[0] != time.Millisecond {
		t.Errorf("sleeps=%v, want first backoff of 1ms", sleeps)
	}
	if d := ctl.DegradedSwitches(); len(d) != 0 {
		t.Errorf("degraded=%v, want none", d)
	}
	if err := ctl.VerifyTables(); err != nil {
		t.Errorf("VerifyTables: %v", err)
	}
	if st := ctl.Stats(); st.Retries == 0 {
		t.Error("lifetime stats must count the retry")
	}
}

// TestBackoffCapAndDeadline pins the backoff schedule: exponential from
// BaseBackoff, capped at MaxBackoff, cut off by OpDeadline.
func TestBackoffCapAndDeadline(t *testing.T) {
	var sleeps []time.Duration
	pol := core.RetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		OpDeadline:  12 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	// A switch-down window longer than any retry budget keeps every
	// attempt failing.
	ctl, g, _ := newFaultyController(t,
		netem.FaultConfig{FailCalls: []uint64{1}, DownCalls: 1 << 30},
		core.WithRetryPolicy(pol))
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Subscribe("s", hosts[5], dz.NewSet("1"))
	if err != nil {
		t.Fatalf("exhausted transient retries must quarantine, not fail: %v", err)
	}
	if rep.Quarantined == 0 {
		t.Error("switch must be quarantined after the deadline")
	}
	// 2ms, then 4ms (cumulative 6), then 5ms capped (cumulative 11 ≤ 12);
	// the next 5ms wait would exceed the 12ms deadline, so retrying stops.
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps=%v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("sleep[%d]=%v, want %v", i, sleeps[i], want[i])
		}
	}
}

// permProgrammer fails every southbound mutation with a permanent
// (non-transient) error.
type permProgrammer struct {
	core.FlowProgrammer
	err error
}

func (p *permProgrammer) AddFlow(topo.NodeID, openflow.Flow) (openflow.FlowID, error) {
	return 0, p.err
}
func (p *permProgrammer) DeleteFlow(topo.NodeID, openflow.FlowID) error { return p.err }
func (p *permProgrammer) ModifyFlow(topo.NodeID, openflow.FlowID, int, []openflow.Action) error {
	return p.err
}

// TestPermanentErrorSurfacesTyped checks the taxonomy split: permanent
// errors fail the control operation immediately as a *SouthboundError and
// never quarantine.
func TestPermanentErrorSurfacesTyped(t *testing.T) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	base := errors.New("switch decommissioned")
	prog := &permProgrammer{err: base}
	ctl, err := core.NewController(g, prog,
		core.WithHostAddr(netem.HostAddr),
		core.WithRetryPolicy(core.RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}))
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	_, err = ctl.Subscribe("s", hosts[5], dz.NewSet("1"))
	if err == nil {
		t.Fatal("permanent southbound failure must surface")
	}
	var serr *core.SouthboundError
	if !errors.As(err, &serr) {
		t.Fatalf("err=%T %v, want *core.SouthboundError", err, err)
	}
	if serr.Transient {
		t.Error("permanent error classified transient")
	}
	if serr.Attempts != 1 {
		t.Errorf("Attempts=%d, want 1 (no retry for permanent errors)", serr.Attempts)
	}
	if !errors.Is(err, base) {
		t.Errorf("err=%v, want wrapped cause", err)
	}
	if !strings.Contains(err.Error(), "add flow") {
		t.Errorf("error lacks op context: %v", err)
	}
	if d := ctl.DegradedSwitches(); len(d) != 0 {
		t.Errorf("degraded=%v, permanent errors must not quarantine", d)
	}
}

// TestQuarantineHealLifecycle drives a switch through the full
// degradation lifecycle: down window → quarantine (control ops keep
// succeeding) → resync under the open window stays degraded → Heal +
// resync recovers.
func TestQuarantineHealLifecycle(t *testing.T) {
	ctl, g, faulty := newFaultyController(t,
		netem.FaultConfig{FailCalls: []uint64{2}, DownCalls: 1 << 30})
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Subscribe("s1", hosts[5], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	deg := ctl.DegradedSwitches()
	if len(deg) != 1 {
		t.Fatalf("degraded=%v, want one switch", deg)
	}

	// While the switch is down, resync cannot repair it: the pass reports
	// it as still degraded but does not error (transient exhaustion).
	rr, err := ctl.ResyncAll()
	if err != nil {
		t.Fatalf("resync under open down-window must stay best-effort: %v", err)
	}
	if len(rr.StillDegraded) != 1 || rr.Healed != 0 {
		t.Fatalf("report=%+v, want the switch still degraded", rr)
	}

	// Control operations keep succeeding while the switch is degraded.
	if _, err := ctl.Subscribe("s2", hosts[7], dz.NewSet("1")); err != nil {
		t.Fatalf("control op on degraded deployment: %v", err)
	}

	// Heal the emulated switch; the next pass repairs and clears it.
	faulty.Heal()
	rr, err = ctl.ResyncAll()
	if err != nil {
		t.Fatalf("ResyncAll after heal: %v", err)
	}
	if rr.Healed == 0 || len(rr.StillDegraded) != 0 {
		t.Fatalf("report=%+v, want healed", rr)
	}
	if d := ctl.DegradedSwitches(); len(d) != 0 {
		t.Errorf("degraded=%v, want none", d)
	}
	if err := ctl.VerifyTables(); err != nil {
		t.Errorf("VerifyTables after heal: %v", err)
	}
}

// TestResyncRemovesStrayFlows covers the delete direction of the
// anti-entropy diff: flows present on the switch but absent from the
// canonical state (e.g. leftovers of a lost delete) are removed.
func TestResyncRemovesStrayFlows(t *testing.T) {
	ctl, g, faulty := newFaultyController(t, netem.FaultConfig{})
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Subscribe("s", hosts[5], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	// Unsubscribe with a mid-batch fault: some deletes are lost, leaving
	// stray flows on a quarantined switch.
	faulty.FailNextBatch(0)
	if _, err := ctl.Unsubscribe("s"); err != nil {
		t.Fatalf("transient delete fault must not fail the op: %v", err)
	}
	deg := ctl.DegradedSwitches()
	if len(deg) != 1 {
		t.Fatalf("degraded=%v, want one switch", deg)
	}
	if err := ctl.VerifyTables(); err == nil {
		t.Fatal("stray flows must be detectable")
	}
	rr, err := ctl.ResyncAll()
	if err != nil {
		t.Fatalf("ResyncAll: %v", err)
	}
	if rr.FlowDeletes == 0 {
		t.Errorf("report=%+v, want stray flows deleted", rr)
	}
	if err := ctl.VerifyTables(); err != nil {
		t.Errorf("VerifyTables after resync: %v", err)
	}
}

// TestResyncConcurrentReaders checks the lock discipline: read-only
// queries may run while resync passes mutate state.
func TestResyncConcurrentReaders(t *testing.T) {
	ctl, g, faulty := newFaultyController(t, netem.FaultConfig{})
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Subscribe("s", hosts[5], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = ctl.Stats()
				_ = ctl.DegradedSwitches()
				_ = ctl.InstalledFlowCount()
			}
		}
	}()
	for i := 0; i < 20; i++ {
		faulty.FailNextBatch(0)
		if _, err := ctl.Unsubscribe("s"); err != nil {
			t.Errorf("unsubscribe: %v", err)
		}
		if _, err := ctl.ResyncAll(); err != nil {
			t.Errorf("resync: %v", err)
		}
		if _, err := ctl.Subscribe("s", hosts[5], dz.NewSet("1")); err != nil {
			t.Errorf("subscribe: %v", err)
		}
		if _, err := ctl.ResyncAll(); err != nil {
			t.Errorf("resync: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if err := ctl.VerifyTables(); err != nil {
		t.Errorf("VerifyTables: %v", err)
	}
}
