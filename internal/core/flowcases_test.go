package core_test

import (
	"fmt"
	"sort"
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// figure4 builds the scenario of the paper's Figure 4: publisher p1 with
// DZ(p1)={1}, subscribers s1 with {1} and s2 with {100}; then s3 arrives
// with {10}. The switch layout mirrors the figure's roles:
//
//	p1—R1—R3—R2—s1
//	        |
//	        R4—R5—s2
//	        |
//	        R6—s3
type figure4 struct {
	g                      *topo.Graph
	dp                     *netem.DataPlane
	ctl                    *core.Controller
	r1, r2, r3, r4, r5, r6 topo.NodeID
	p1, s1, s2, s3         topo.NodeID
}

func buildFigure4(t *testing.T) *figure4 {
	t.Helper()
	g := topo.NewGraph()
	f := &figure4{g: g}
	f.r1 = g.AddSwitch("R1")
	f.r2 = g.AddSwitch("R2")
	f.r3 = g.AddSwitch("R3")
	f.r4 = g.AddSwitch("R4")
	f.r5 = g.AddSwitch("R5")
	f.r6 = g.AddSwitch("R6")
	links := [][2]topo.NodeID{
		{f.r1, f.r3}, {f.r2, f.r3}, {f.r3, f.r4}, {f.r4, f.r5}, {f.r4, f.r6},
	}
	for _, l := range links {
		if _, _, err := g.Connect(l[0], l[1], topo.DefaultLinkParams); err != nil {
			t.Fatal(err)
		}
	}
	f.p1 = g.AddHost("p1")
	f.s1 = g.AddHost("s1")
	f.s2 = g.AddHost("s2")
	f.s3 = g.AddHost("s3")
	hostLinks := [][2]topo.NodeID{
		{f.p1, f.r1}, {f.s1, f.r2}, {f.s2, f.r5}, {f.s3, f.r6},
	}
	for _, l := range hostLinks {
		if _, _, err := g.Connect(l[0], l[1], topo.DefaultLinkParams); err != nil {
			t.Fatal(err)
		}
	}
	eng := sim.NewEngine()
	f.dp = netem.New(g, eng)
	ctl, err := core.NewController(g, f.dp, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		t.Fatal(err)
	}
	f.ctl = ctl

	if _, err := ctl.Advertise("p1", f.p1, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Subscribe("s1", f.s1, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Subscribe("s2", f.s2, dz.NewSet("100")); err != nil {
		t.Fatal(err)
	}
	return f
}

// flowSummary renders a switch table as "expr>ports" lines for assertions.
func (f *figure4) flowSummary(t *testing.T, sw topo.NodeID) map[string][]openflow.PortID {
	t.Helper()
	flows, err := f.dp.Flows(sw)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]openflow.PortID, len(flows))
	for _, fl := range flows {
		out[string(fl.Expr)] = fl.OutPorts()
	}
	return out
}

func (f *figure4) port(t *testing.T, from, to topo.NodeID) openflow.PortID {
	t.Helper()
	p, ok := f.g.PortTowards(from, to)
	if !ok {
		t.Fatalf("no port %d->%d", from, to)
	}
	return p
}

func portsEqual(a, b []openflow.PortID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFigure4InitialTables(t *testing.T) {
	f := buildFigure4(t)

	// R1 carries a single coarse flow 1* towards R3: the finer 100 flow of
	// the s2 path is fully covered (case 2) and never installed.
	r1 := f.flowSummary(t, f.r1)
	if len(r1) != 1 || !portsEqual(r1["1"], []openflow.PortID{f.port(t, f.r1, f.r3)}) {
		t.Errorf("R1=%v", r1)
	}
	// R3 splits: 1* to s1's branch, 100* additionally to R4 (priority via
	// the longer dz, paper Figure 3 semantics).
	r3 := f.flowSummary(t, f.r3)
	want100 := []openflow.PortID{f.port(t, f.r3, f.r2), f.port(t, f.r3, f.r4)}
	sortPorts(want100)
	if !portsEqual(r3["1"], []openflow.PortID{f.port(t, f.r3, f.r2)}) {
		t.Errorf("R3[1]=%v", r3["1"])
	}
	if !portsEqual(r3["100"], want100) {
		t.Errorf("R3[100]=%v, want %v", r3["100"], want100)
	}
	// R4 and R5 forward the 100 branch only.
	r4 := f.flowSummary(t, f.r4)
	if len(r4) != 1 || !portsEqual(r4["100"], []openflow.PortID{f.port(t, f.r4, f.r5)}) {
		t.Errorf("R4=%v", r4)
	}
	r5 := f.flowSummary(t, f.r5)
	if len(r5) != 1 || !portsEqual(r5["100"], []openflow.PortID{f.port(t, f.r5, f.s2)}) {
		t.Errorf("R5=%v", r5)
	}
	// R6 has no flows yet (case 1 happens when s3 arrives).
	if r6 := f.flowSummary(t, f.r6); len(r6) != 0 {
		t.Errorf("R6=%v, want empty", r6)
	}
}

func TestFigure4ArrivalOfS3(t *testing.T) {
	f := buildFigure4(t)
	if _, err := f.ctl.Subscribe("s3", f.s3, dz.NewSet("10")); err != nil {
		t.Fatal(err)
	}

	// Case 2 — R1: existing 1* flow covers the new 10 flow; table unchanged.
	r1 := f.flowSummary(t, f.r1)
	if len(r1) != 1 || !portsEqual(r1["1"], []openflow.PortID{f.port(t, f.r1, f.r3)}) {
		t.Errorf("case 2 violated, R1=%v", r1)
	}
	// Case 3 — R3: the 100 flow is replaced by the covering 10 flow.
	r3 := f.flowSummary(t, f.r3)
	if _, still := r3["100"]; still {
		t.Errorf("case 3 violated: R3 still has 100 flow: %v", r3)
	}
	want10 := []openflow.PortID{f.port(t, f.r3, f.r2), f.port(t, f.r3, f.r4)}
	sortPorts(want10)
	if !portsEqual(r3["10"], want10) {
		t.Errorf("R3[10]=%v, want %v", r3["10"], want10)
	}
	// Case 5 — R4: the new 10 flow is added and the existing finer 100
	// flow is updated to include the new out-port with higher priority.
	r4 := f.flowSummary(t, f.r4)
	if !portsEqual(r4["10"], []openflow.PortID{f.port(t, f.r4, f.r6)}) {
		t.Errorf("R4[10]=%v", r4["10"])
	}
	want100 := []openflow.PortID{f.port(t, f.r4, f.r5), f.port(t, f.r4, f.r6)}
	sortPorts(want100)
	if !portsEqual(r4["100"], want100) {
		t.Errorf("case 5 violated: R4[100]=%v, want %v", r4["100"], want100)
	}
	flows, err := f.dp.Flows(f.r4)
	if err != nil {
		t.Fatal(err)
	}
	var p10, p100 int
	for _, fl := range flows {
		switch fl.Expr {
		case "10":
			p10 = fl.Priority
		case "100":
			p100 = fl.Priority
		}
	}
	if p100 <= p10 {
		t.Errorf("longer dz must hold higher priority: PO(100)=%d PO(10)=%d", p100, p10)
	}
	// Case 1 — R6: fresh flow 10 towards s3.
	r6 := f.flowSummary(t, f.r6)
	if len(r6) != 1 || !portsEqual(r6["10"], []openflow.PortID{f.port(t, f.r6, f.s3)}) {
		t.Errorf("case 1 violated, R6=%v", r6)
	}
}

func TestFigure4UnsubscriptionDowngrade(t *testing.T) {
	// Section 3.3.3's example: when s3 leaves, the flow on R6 is deleted
	// and the flows on R3 (and the extra port on R4) are downgraded back
	// to dz=100 because s2's path still passes through them.
	f := buildFigure4(t)
	before := map[topo.NodeID]map[string][]openflow.PortID{
		f.r1: f.flowSummary(t, f.r1),
		f.r3: f.flowSummary(t, f.r3),
		f.r4: f.flowSummary(t, f.r4),
		f.r5: f.flowSummary(t, f.r5),
		f.r6: f.flowSummary(t, f.r6),
	}
	if _, err := f.ctl.Subscribe("s3", f.s3, dz.NewSet("10")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ctl.Unsubscribe("s3"); err != nil {
		t.Fatal(err)
	}
	if err := f.ctl.VerifyTables(); err != nil {
		t.Fatal(err)
	}
	for sw, want := range before {
		got := f.flowSummary(t, sw)
		if len(got) != len(want) {
			t.Errorf("switch %d: table size %d, want %d (%v vs %v)", sw, len(got), len(want), got, want)
			continue
		}
		for expr, ports := range want {
			if !portsEqual(got[expr], ports) {
				t.Errorf("switch %d flow %s: ports=%v, want %v", sw, expr, got[expr], ports)
			}
		}
	}
}

func TestFigure4EndToEnd(t *testing.T) {
	f := buildFigure4(t)
	if _, err := f.ctl.Subscribe("s3", f.s3, dz.NewSet("10")); err != nil {
		t.Fatal(err)
	}
	recv := make(map[topo.NodeID]int)
	for _, h := range []topo.NodeID{f.s1, f.s2, f.s3} {
		h := h
		if err := f.dp.ConfigureHost(h, netem.HostConfig{}, func(netem.Delivery) {
			recv[h]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Event dz=1001…: matches s1 ({1}) and s2 ({100}) and s3 ({10}).
	if err := f.dp.Publish(f.p1, "1001", space.Event{}, 64); err != nil {
		t.Fatal(err)
	}
	// Event dz=1100…: matches s1 and s3... 11 vs 10: no — only s1.
	if err := f.dp.Publish(f.p1, "1100", space.Event{}, 64); err != nil {
		t.Fatal(err)
	}
	// Event dz=1010…: matches s1 and s3.
	if err := f.dp.Publish(f.p1, "1010", space.Event{}, 64); err != nil {
		t.Fatal(err)
	}
	f.dp.Engine().Run()
	if recv[f.s1] != 3 {
		t.Errorf("s1 received %d, want 3", recv[f.s1])
	}
	if recv[f.s2] != 1 {
		t.Errorf("s2 received %d, want 1", recv[f.s2])
	}
	if recv[f.s3] != 2 {
		t.Errorf("s3 received %d, want 2", recv[f.s3])
	}
}

func sortPorts(p []openflow.PortID) {
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
}

func TestFigure4FlowModAccounting(t *testing.T) {
	f := buildFigure4(t)
	rep, err := f.ctl.Subscribe("s3", f.s3, dz.NewSet("10"))
	if err != nil {
		t.Fatal(err)
	}
	// R3: add 10, delete 100 → 2 ops; R4: add 10, modify 100 → 2 ops;
	// R6: add 10 → 1 op; R1, R5: untouched.
	if rep.FlowAdds != 3 {
		t.Errorf("FlowAdds=%d, want 3", rep.FlowAdds)
	}
	if rep.FlowDeletes != 1 {
		t.Errorf("FlowDeletes=%d, want 1", rep.FlowDeletes)
	}
	if rep.FlowModifies != 1 {
		t.Errorf("FlowModifies=%d, want 1", rep.FlowModifies)
	}
	if rep.FlowOps() != 5 {
		t.Errorf("FlowOps=%d, want 5", rep.FlowOps())
	}
}

func TestFigure4TreeInfo(t *testing.T) {
	f := buildFigure4(t)
	trees := f.ctl.Trees()
	if len(trees) != 1 {
		t.Fatalf("trees=%d", len(trees))
	}
	tr := trees[0]
	if !tr.DZ.Equal(dz.NewSet("1")) {
		t.Errorf("DZ=%v", tr.DZ)
	}
	if tr.Root != f.p1 {
		t.Errorf("root=%d, want publisher host %d", tr.Root, f.p1)
	}
	if len(tr.Publishers) != 1 || tr.Publishers[0] != "p1" {
		t.Errorf("publishers=%v", tr.Publishers)
	}
	if len(tr.Subscribers) != 2 {
		t.Errorf("subscribers=%v", tr.Subscribers)
	}
	if set, ok := f.ctl.SubscriptionSet("s2"); !ok || !set.Equal(dz.NewSet("100")) {
		t.Errorf("SubscriptionSet(s2)=%v,%v", set, ok)
	}
	if set, ok := f.ctl.AdvertisementSet("p1"); !ok || !set.Equal(dz.NewSet("1")) {
		t.Errorf("AdvertisementSet(p1)=%v,%v", set, ok)
	}
	if _, ok := f.ctl.SubscriptionSet("nope"); ok {
		t.Error("unknown subscription found")
	}
	if _, ok := f.ctl.AdvertisementSet("nope"); ok {
		t.Error("unknown advertisement found")
	}
}

func TestInstalledFlowsOn(t *testing.T) {
	f := buildFigure4(t)
	exprs := f.ctl.InstalledFlowsOn(f.r3)
	if len(exprs) != 2 {
		t.Fatalf("exprs=%v", exprs)
	}
	if fmt.Sprint(exprs) != "[1 100]" {
		t.Errorf("exprs=%v, want [1 100]", exprs)
	}
	if got := f.ctl.InstalledFlowCount(); got != 6 {
		// R1:1, R2:1, R3:2, R4:1, R5:1
		t.Errorf("InstalledFlowCount=%d, want 6", got)
	}
}
