// Package core implements the PLEROMA controller — the paper's primary
// contribution. A Controller manages one network partition: it reacts to
// advertisements and subscriptions (Algorithm 1), maintains a set of
// publisher-rooted spanning trees with pairwise-disjoint DZ sets
// (Section 3.2), and keeps the flow tables of the partition's switches
// consistent with the registered publisher/subscriber paths (Section 3.3),
// including the delete-or-downgrade behaviour on unsubscription.
//
// Flow-table state is maintained canonically: every established
// publisher→subscriber path registers per-switch contributions
// (dz-expression, out-port), and each switch's desired table is derived
// from its contributions — an entry per contributed subspace whose
// instruction set unions the ports of all covering contributions, with
// priority equal to the dz length and entries that duplicate a coarser
// entry pruned. This reproduces the incremental cases (1)–(5) of
// Section 3.3.2 (verified against the paper's Figure 4 in the tests) while
// staying consistent under arbitrary interleavings of (un)subscriptions
// and (un)advertisements.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"net/netip"
	"sort"
	"sync"

	"pleroma/internal/dz"
	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/topo"
)

// FlowProgrammer abstracts the southbound interface the controller uses to
// program switches (implemented by *netem.DataPlane).
type FlowProgrammer interface {
	AddFlow(sw topo.NodeID, f openflow.Flow) (openflow.FlowID, error)
	DeleteFlow(sw topo.NodeID, id openflow.FlowID) error
	ModifyFlow(sw topo.NodeID, id openflow.FlowID, priority int, actions []openflow.Action) error
}

// FlowReader is optionally implemented by FlowProgrammers that can report
// the flows actually installed on a switch (*netem.DataPlane and
// *netem.FaultyProgrammer do). When available, the anti-entropy pass
// (Resync) diffs the canonical state against this ground truth instead of
// trusting the controller's own installed map, and VerifyTables extends
// its incremental ≡ canonical check down to the emulated hardware.
type FlowReader interface {
	Flows(sw topo.NodeID) ([]openflow.Flow, error)
}

// BatchFlowProgrammer is optionally implemented by FlowProgrammers that
// can apply a whole batch of FlowMods to one switch in a single southbound
// call (modelling OpenFlow bundles). When the controller's programmer
// implements it, every control operation flushes one batch per touched
// switch instead of one call per FlowMod, cutting southbound round-trips
// from O(flow ops) to O(touched switches).
//
// ApplyBatch must apply the operations in order and return one FlowID per
// applied operation (the assigned ID for adds, zero otherwise); on error
// the returned slice identifies the prefix that took effect.
type BatchFlowProgrammer interface {
	FlowProgrammer
	ApplyBatch(sw topo.NodeID, ops []openflow.FlowOp) ([]openflow.FlowID, error)
}

// HostAddrFunc resolves the unicast address of a host node for the
// terminal set-destination rewrite.
type HostAddrFunc func(topo.NodeID) netip.Addr

// TreeID identifies a dissemination tree within one controller.
type TreeID int

// AnyPartition makes a controller manage every node of the graph.
const AnyPartition = -1

// Errors callers can match.
var (
	// ErrUnknownClient is returned when unsubscribing or unadvertising an
	// identifier that was never registered.
	ErrUnknownClient = errors.New("core: unknown client id")
	// ErrDuplicateClient is returned when an identifier is reused.
	ErrDuplicateClient = errors.New("core: duplicate client id")
	// ErrForeignNode is returned when a client attaches to a node outside
	// the controller's partition.
	ErrForeignNode = errors.New("core: node outside controller partition")
)

// endpoint locates a client in the network: a host node for regular
// clients, or a border switch plus exit port for virtual clients that
// represent a neighbouring partition (Section 4.2).
type endpoint struct {
	node    topo.NodeID
	viaPort openflow.PortID // nonzero for virtual clients
}

func (e endpoint) virtual() bool { return e.viaPort != 0 }

type publisher struct {
	id  string
	ep  endpoint
	adv dz.Set
	// trees the publisher joined.
	trees map[TreeID]bool
}

type subscriber struct {
	id  string
	ep  endpoint
	sub dz.Set
	// trees the subscriber joined; empty while the subscription is only
	// stored.
	trees map[TreeID]bool
}

// tree is one dissemination tree t ∈ T.
type tree struct {
	id   TreeID
	set  dz.Set // DZ(t), pairwise disjoint across trees
	span *topo.SpanningTree
	root topo.NodeID
	// pubs maps publisher id -> DZ^t(p), the overlap of the publisher's
	// advertisement with DZ(t).
	pubs map[string]dz.Set
	// subs maps subscriber id -> DZ^t(s).
	subs map[string]dz.Set
}

// TreeInfo is the exported snapshot of one dissemination tree.
type TreeInfo struct {
	ID          TreeID
	DZ          dz.Set
	Root        topo.NodeID
	Publishers  []string
	Subscribers []string
}

// ReconfigReport summarises the work one control operation caused; the
// reconfiguration-delay experiment (Figure 7f) converts it to time via a
// CostModel.
type ReconfigReport struct {
	FlowAdds       int
	FlowDeletes    int
	FlowModifies   int
	TreesCreated   int
	TreesJoined    int
	TreesMerged    int
	RoutesComputed int
	// SouthboundCalls counts programmer invocations of the operation: with
	// a BatchFlowProgrammer this is at most the number of touched switches,
	// without one it equals FlowOps(). Retried flushes count every attempt.
	SouthboundCalls int
	// Retries counts southbound attempts repeated after a transient
	// programmer error (see RetryPolicy).
	Retries int
	// Quarantined counts switches that entered the degraded set during the
	// operation because their retries exhausted.
	Quarantined int
	// Stored is true when a subscription matched no tree and was only
	// recorded at the controller.
	Stored bool
}

// FlowOps returns the total number of FlowMod messages of the operation.
func (r ReconfigReport) FlowOps() int {
	return r.FlowAdds + r.FlowDeletes + r.FlowModifies
}

// Stats is a snapshot of the controller-lifetime counters. It is a view
// over the controller's obs instruments: every field reads an atomic
// counter that is also exportable through an attached obs.Registry under
// its canonical metric name, so report columns and scrape series can
// never disagree.
type Stats struct {
	Advertisements  uint64
	Subscriptions   uint64
	Unsubscriptions uint64
	Unadverts       uint64
	FlowAdds        uint64
	FlowDeletes     uint64
	FlowModifies    uint64
	TreesCreated    uint64
	TreesMerged     uint64
	StoredSubs      uint64
	// SouthboundCalls counts programmer invocations (batches count once).
	SouthboundCalls uint64
	// Retries counts southbound attempts repeated after transient errors.
	Retries uint64
	// Quarantines counts switches that entered the degraded set.
	Quarantines uint64
	// Resyncs counts anti-entropy passes over single switches.
	Resyncs uint64
	// RepairedFlows counts FlowMods issued by resync passes to heal
	// divergence between canonical and installed state.
	RepairedFlows uint64
}

// Requests returns the total number of processed control requests.
func (s Stats) Requests() uint64 {
	return s.Advertisements + s.Subscriptions + s.Unsubscriptions + s.Unadverts
}

// FlowOps returns the total number of FlowMod messages issued.
func (s Stats) FlowOps() uint64 { return s.FlowAdds + s.FlowDeletes + s.FlowModifies }

// contribution identifies one hop of one established path: packets of the
// given subspace owed to (pub → sub on tree) leave switch sw via port.
type contribKey struct {
	pub  string
	sub  string
	tree TreeID
	expr dz.Expr
	sw   topo.NodeID
	port openflow.PortID
}

// Controller is the PLEROMA middleware instance of one partition.
//
// A Controller is safe for concurrent use: control operations (Advertise,
// Subscribe, Unsubscribe, Unadvertise, RebuildTrees) serialise behind a
// write lock while read-only queries (Trees, Stats, SubscriptionSet,
// AdvertisementSet, StoredSubscriptions, InstalledFlowCount, VerifyTables)
// share a read lock and proceed in parallel. Within one control operation
// the per-switch flow reconciliation fans out across touched switches via
// a bounded worker pool — switch states are disjoint, so the fan-out is
// safe as long as the FlowProgrammer tolerates concurrent calls on
// distinct switches (*netem.DataPlane does: each table has its own lock).
type Controller struct {
	g         *topo.Graph
	prog      FlowProgrammer
	batch     BatchFlowProgrammer // non-nil when prog supports batching
	reader    FlowReader          // non-nil when prog can report switch state
	hostAddr  HostAddrFunc
	partition int
	maxTrees  int
	maxDzLen  int
	// refreshWorkers bounds the per-switch refresh fan-out; 0 means
	// GOMAXPROCS, 1 serialises.
	refreshWorkers int
	// retry shapes southbound retries on transient errors; the zero value
	// means a single attempt (no retries).
	retry RetryPolicy

	log *slog.Logger

	// mu serialises mutations of all state below; read-only queries take
	// it shared. It is the top of the lock hierarchy: flow-table and
	// data-plane locks are only ever acquired while holding it (through
	// programmer calls) and never the other way around.
	mu sync.RWMutex

	nextTree TreeID
	trees    map[TreeID]*tree
	// treeIdx maps owned DZ prefixes to their tree so advertise/subscribe
	// resolve overlapping trees by prefix query instead of scanning every
	// tree's set. Kept in sync by createTree/dismantleTree/mergeTrees.
	treeIdx treeIndex
	pubs    map[string]*publisher
	subs    map[string]*subscriber

	// contribs aggregates all established path contributions; installed
	// tracks the flows currently programmed per switch, keyed by match
	// expression.
	contribs  *contribState
	installed map[topo.NodeID]map[dz.Expr]installedFlow

	// degraded holds quarantined switches: their retries exhausted on a
	// transient error, their table lags the canonical state, and the next
	// resync pass heals them. It has its own mutex because refresh workers
	// quarantine concurrently for distinct switches while holding only
	// c.mu's write side on the coordinating goroutine.
	degradedMu sync.Mutex
	degraded   map[topo.NodeID]error

	// journal, when set, receives a wire.Record for every successful
	// control operation (see journal.go). epoch is the controller's
	// incarnation number (bumped on failover), jseq the sequence of the
	// last journaled or replayed op, and replaying suppresses re-appends
	// while Replay drives operations from the journal itself.
	journal   Journal
	epoch     uint32
	jseq      uint64
	replaying bool

	// inst holds the lifetime counters (always allocated; Stats reads
	// them). tracer, when set, assigns spans to control operations; span
	// is the operation currently in flight, parked here under c.mu before
	// refresh workers fan out so they can annotate it.
	inst   *instruments
	tracer *obs.Tracer
	span   *obs.Span
}

type installedFlow struct {
	id       openflow.FlowID
	priority int
	actions  []openflow.Action
}

// Option configures a Controller.
type Option func(*Controller)

// WithPartition restricts the controller to nodes of one partition.
func WithPartition(p int) Option {
	return func(c *Controller) { c.partition = p }
}

// WithMaxTrees sets the tree-count threshold above which trees are merged
// (Section 3.2). Zero disables merging.
func WithMaxTrees(n int) Option {
	return func(c *Controller) { c.maxTrees = n }
}

// WithMaxDzLen truncates every dz-expression handled by the controller to
// at most n bits, modelling the L_dz address-space constraint.
func WithMaxDzLen(n int) Option {
	return func(c *Controller) { c.maxDzLen = n }
}

// WithHostAddr overrides how host unicast addresses are derived.
func WithHostAddr(f HostAddrFunc) Option {
	return func(c *Controller) { c.hostAddr = f }
}

// WithLogger attaches a structured logger; the controller logs tree
// life-cycle events and per-request reconfiguration summaries at Debug
// level. Nil (the default) disables logging.
func WithLogger(l *slog.Logger) Option {
	return func(c *Controller) { c.log = l }
}

// WithRefreshWorkers bounds the per-switch refresh fan-out of one control
// operation: n switches reconcile concurrently. 1 serialises the refresh
// (useful for programmers that are not safe for concurrent per-switch
// calls); 0, the default, uses GOMAXPROCS.
func WithRefreshWorkers(n int) Option {
	return func(c *Controller) { c.refreshWorkers = n }
}

// WithRetryPolicy makes southbound flushes retry transient programmer
// errors with capped exponential backoff (see RetryPolicy). The default
// (zero) policy performs a single attempt, so a transient failure
// immediately quarantines the switch for the next resync pass.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Controller) { c.retry = p }
}

// WithObservability attaches the controller's lifetime counters, latency
// histograms, per-switch FlowMod counters, and tree gauges to reg, and —
// when tracer is non-nil — assigns a trace span to every control
// operation. Either argument may be nil. Without this option the
// controller still maintains its counters (they back the Stats view) but
// exports nothing and creates no spans.
func WithObservability(reg *obs.Registry, tracer *obs.Tracer) Option {
	return func(c *Controller) {
		c.inst = newInstruments(reg)
		c.tracer = tracer
	}
}

// NewController creates a controller for (one partition of) the topology.
func NewController(g *topo.Graph, prog FlowProgrammer, opts ...Option) (*Controller, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if prog == nil {
		return nil, fmt.Errorf("core: nil flow programmer")
	}
	c := &Controller{
		g:         g,
		prog:      prog,
		partition: AnyPartition,
		maxDzLen:  0,
		trees:     make(map[TreeID]*tree),
		pubs:      make(map[string]*publisher),
		subs:      make(map[string]*subscriber),
		contribs:  newContribState(),
		installed: make(map[topo.NodeID]map[dz.Expr]installedFlow),
		degraded:  make(map[topo.NodeID]error),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.inst == nil {
		c.inst = newInstruments(nil)
	}
	if c.hostAddr == nil {
		return nil, fmt.Errorf("core: host address function required (use WithHostAddr)")
	}
	c.batch, _ = prog.(BatchFlowProgrammer)
	c.reader, _ = prog.(FlowReader)
	return c, nil
}

// Partition returns the partition this controller manages (AnyPartition
// for the whole graph).
func (c *Controller) Partition() int { return c.partition }

// Stats returns a snapshot of the lifetime counters. The read lock keeps
// the snapshot consistent with operation boundaries: control operations
// hold the write lock, so no counter moves mid-read.
func (c *Controller) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i := c.inst
	return Stats{
		Advertisements:  i.advertise.Value(),
		Subscriptions:   i.subscribe.Value(),
		Unsubscriptions: i.unsubscribe.Value(),
		Unadverts:       i.unadvertise.Value(),
		FlowAdds:        i.flowAdds.Value(),
		FlowDeletes:     i.flowDeletes.Value(),
		FlowModifies:    i.flowModifies.Value(),
		TreesCreated:    i.treesCreated.Value(),
		TreesMerged:     i.treesMerged.Value(),
		StoredSubs:      i.storedSubs.Value(),
		SouthboundCalls: i.southboundCalls.Value(),
		Retries:         i.retries.Value(),
		Quarantines:     i.quarantines.Value(),
		Resyncs:         i.resyncs.Value(),
		RepairedFlows:   i.repairedFlows.Value(),
	}
}

// Trees returns snapshots of all dissemination trees, ordered by ID.
func (c *Controller) Trees() []TreeInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]TreeInfo, 0, len(c.trees))
	for id := TreeID(1); id <= c.nextTree; id++ {
		t, ok := c.trees[id]
		if !ok {
			continue
		}
		info := TreeInfo{ID: t.id, DZ: t.set.Clone(), Root: t.root}
		for p := range t.pubs {
			info.Publishers = append(info.Publishers, p)
		}
		for s := range t.subs {
			info.Subscribers = append(info.Subscribers, s)
		}
		sort.Strings(info.Publishers)
		sort.Strings(info.Subscribers)
		out = append(out, info)
	}
	return out
}

// TreeFor resolves the dissemination tree whose DZ set owns the given
// expression (typically an event's point expression), or false when no
// tree covers it. Tree sets are pairwise disjoint, so a point has at most
// one owner. The lookup is one shared-lock trie query and does not
// allocate — it is safe on the per-publish hot path.
func (c *Controller) TreeFor(e dz.Expr) (TreeID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.treeIdx.first(e)
}

// StoredSubscriptions returns the ids of subscriptions that currently
// match no tree.
func (c *Controller) StoredSubscriptions() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for id, s := range c.subs {
		if len(s.trees) == 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// SubscriptionSet returns the registered DZ set of a subscription.
func (c *Controller) SubscriptionSet(id string) (dz.Set, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.subs[id]
	if !ok {
		return nil, false
	}
	return s.sub.Clone(), true
}

// AdvertisementSet returns the registered DZ set of an advertisement.
func (c *Controller) AdvertisementSet(id string) (dz.Set, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.pubs[id]
	if !ok {
		return nil, false
	}
	return p.adv.Clone(), true
}

// inPartition reports whether the controller manages the node.
func (c *Controller) inPartition(n topo.NodeID) bool {
	if c.partition == AnyPartition {
		return true
	}
	return c.g.Partition(n) == c.partition
}

// truncate applies the L_dz constraint. Without one the set is used as-is:
// the controller only ever reads registered DZ sets (the dz.Set operations
// are all copy-on-write), so the defensive clone this used to make was a
// per-request allocation with no observable effect. Callers hand ownership
// of the set to the controller on Advertise/Subscribe.
func (c *Controller) truncate(s dz.Set) dz.Set {
	if c.maxDzLen <= 0 {
		return s
	}
	return s.Truncate(c.maxDzLen)
}
