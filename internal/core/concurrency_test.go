package core_test

import (
	"hash/fnv"
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// churnController builds a controller plus the schema and hosts the churn
// driver needs.
func churnController(t *testing.T) (*core.Controller, *netem.DataPlane, *space.Schema, *topo.Graph) {
	t.Helper()
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	dp := netem.New(g, sim.NewEngine())
	ctl, err := core.NewController(g, dp, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := space.UniformSchema(3)
	if err != nil {
		t.Fatal(err)
	}
	return ctl, dp, sch, g
}

func hostFor(hosts []topo.NodeID, id string) topo.NodeID {
	h := fnv.New32a()
	h.Write([]byte(id))
	return hosts[int(h.Sum32())%len(hosts)]
}

// TestConcurrentChurn interleaves advertisements, subscriptions,
// unsubscriptions and read-only queries from many goroutines and checks
// the controller's flow tables are exactly reconstructible afterwards.
// Run under -race this doubles as the data-race regression test for the
// sharded locking model.
func TestConcurrentChurn(t *testing.T) {
	ctl, dp, sch, g := churnController(t)
	hosts := g.Hosts()

	// A standing publisher over the whole space keeps every subscription
	// flow-installing rather than stored-only.
	whole, err := sch.DecomposeLimited(space.NewFilter(), 24, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Advertise("base", hosts[0], whole); err != nil {
		t.Fatal(err)
	}

	decompose := func(rect dz.Rect) (dz.Set, error) {
		return sch.DecomposeRectLimited(rect, 24, 16)
	}
	ops := workload.ChurnOps{
		Subscribe: func(id string, rect dz.Rect) error {
			set, err := decompose(rect)
			if err != nil {
				return err
			}
			_, err = ctl.Subscribe(id, hostFor(hosts, id), set)
			return err
		},
		Unsubscribe: func(id string) error {
			_, err := ctl.Unsubscribe(id)
			return err
		},
		Advertise: func(id string, rect dz.Rect) error {
			set, err := decompose(rect)
			if err != nil {
				return err
			}
			_, err = ctl.Advertise(id, hostFor(hosts, id), set)
			return err
		},
		Unadvertise: func(id string) error {
			_, err := ctl.Unadvertise(id)
			return err
		},
		Query: func() error {
			// Exercise every read-side entry point against the writers.
			_ = ctl.Stats()
			_ = ctl.Trees()
			_, _ = ctl.SubscriptionSet("base")
			_, _ = ctl.AdvertisementSet("base")
			_ = ctl.StoredSubscriptions()
			_ = ctl.InstalledFlowCount()
			return nil
		},
	}
	st, err := workload.RunChurn(sch, workload.ChurnConfig{
		Workers:      8,
		OpsPerWorker: 60,
		Seed:         99,
		QueryEvery:   7,
	}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mutations() != 8*60 {
		t.Errorf("mutations=%d, want %d", st.Mutations(), 8*60)
	}

	// The invariant that matters: after arbitrary interleaving, the
	// installed hardware state must match a from-scratch reconstruction.
	if err := ctl.VerifyTables(); err != nil {
		t.Fatalf("tables inconsistent after concurrent churn: %v", err)
	}
	stats := ctl.Stats()
	if stats.SouthboundCalls == 0 {
		t.Error("expected southbound traffic")
	}
	if dp.SouthboundCalls() != stats.SouthboundCalls {
		t.Errorf("southbound call accounting differs: dataplane=%d controller=%d",
			dp.SouthboundCalls(), stats.SouthboundCalls)
	}
}

// TestBatchedProgrammingBoundsSouthboundCalls checks the OpenFlow-bundle
// property: one control operation issues at most one southbound call per
// touched switch, however many FlowMods it carries.
func TestBatchedProgrammingBoundsSouthboundCalls(t *testing.T) {
	ctl, dp, sch, g := churnController(t)
	hosts := g.Hosts()
	whole, err := sch.DecomposeLimited(space.NewFilter(), 24, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Advertise("pub", hosts[0], whole); err != nil {
		t.Fatal(err)
	}
	switches := len(g.Switches())
	rep, err := ctl.Subscribe("s", hosts[5], whole)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlowOps() == 0 {
		t.Fatal("subscription installed no flows")
	}
	if rep.SouthboundCalls > switches {
		t.Errorf("SouthboundCalls=%d exceeds touched-switch bound %d",
			rep.SouthboundCalls, switches)
	}
	if rep.SouthboundCalls > rep.FlowOps() {
		t.Errorf("batching ineffective: %d calls for %d ops", rep.SouthboundCalls, rep.FlowOps())
	}
	if got := dp.SouthboundCalls(); got != uint64(rep.SouthboundCalls) {
		t.Errorf("dataplane counted %d southbound calls, report says %d", got, rep.SouthboundCalls)
	}
}
