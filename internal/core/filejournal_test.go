package core_test

import (
	"os"
	"path/filepath"
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/wire"
)

func fjRecord(seq uint64, id string) wire.Record {
	return wire.Record{
		Epoch: 1, Seq: seq, Op: wire.OpSubscribe, ID: id, Node: 3,
		Set: dz.NewSet(dz.Expr("0101")),
	}
}

func TestFileJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part0.journal")
	j, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := j.Append(fjRecord(seq, "s")); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != 5 || j.LastSeq() != 5 {
		t.Fatalf("Len=%d LastSeq=%d, want 5/5", j.Len(), j.LastSeq())
	}
	if err := j.Append(fjRecord(3, "dup")); err == nil {
		t.Fatal("sequence regression accepted")
	}
	recs, err := j.Records(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Seq != 3 || recs[2].Seq != 5 {
		t.Fatalf("Records(2) = %+v, want seqs 3..5", recs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: full recovery of every committed record.
	j2, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 5 || j2.LastSeq() != 5 {
		t.Fatalf("after reopen Len=%d LastSeq=%d, want 5/5", j2.Len(), j2.LastSeq())
	}
	// Appends continue the numbering.
	if err := j2.Append(fjRecord(6, "s6")); err != nil {
		t.Fatal(err)
	}
}

func TestFileJournalCrashMidAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.journal")
	j, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := j.Append(fjRecord(seq, "s")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	j4, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j4.Append(fjRecord(4, "s4")); err != nil {
		t.Fatal(err)
	}
	j4.Close()
	withFour, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(withFour) <= len(full) {
		t.Fatalf("append did not grow the file: %d <= %d", len(withFour), len(full))
	}

	// Simulate a crash at every possible torn-append length: the file ends
	// mid-frame of record 4 (or even mid-header). Recovery must keep the
	// three complete records, drop the torn tail, and leave the file ready
	// for clean appends.
	for cut := len(full) + 1; cut < len(withFour); cut++ {
		if err := os.WriteFile(path, withFour[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jr, err := core.OpenFileJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if jr.Len() != 3 || jr.LastSeq() != 3 {
			t.Fatalf("cut=%d: Len=%d LastSeq=%d, want 3/3", cut, jr.Len(), jr.LastSeq())
		}
		if err := jr.Append(fjRecord(4, "s4b")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		recs, err := jr.Records(0)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(recs) != 4 || recs[3].ID != "s4b" {
			t.Fatalf("cut=%d: %d records after recovery append", cut, len(recs))
		}
		jr.Close()
	}
}

func TestFileJournalCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.journal")
	j, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := j.Append(fjRecord(seq, "s")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the final record: its CRC no longer
	// matches, so recovery keeps only the first two records.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-6] ^= 0xff
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	jr, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if jr.Len() != 2 || jr.LastSeq() != 2 {
		t.Fatalf("Len=%d LastSeq=%d after CRC corruption, want 2/2", jr.Len(), jr.LastSeq())
	}
}

func TestFileJournalTruncateCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.journal")
	j, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for seq := uint64(1); seq <= 6; seq++ {
		if err := j.Append(fjRecord(seq, "s")); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Truncate(4); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the file: %d >= %d", after.Size(), before.Size())
	}
	if j.Len() != 2 || j.LastSeq() != 6 {
		t.Fatalf("Len=%d LastSeq=%d after Truncate(4), want 2/6", j.Len(), j.LastSeq())
	}
	// Numbering survives compaction and reopen.
	if err := j.Append(fjRecord(7, "s7")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	jr, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if jr.Len() != 3 || jr.LastSeq() != 7 {
		t.Fatalf("reopened Len=%d LastSeq=%d, want 3/7", jr.Len(), jr.LastSeq())
	}
	if err := jr.Append(fjRecord(5, "old")); err == nil {
		t.Fatal("sequence regression accepted after compaction+reopen")
	}
}

// TestFileJournalDrivesStandby proves the disk journal slots into the same
// snapshot+replay recovery path as MemJournal: a controller journals ops to
// disk, the process "crashes" (journal reopened cold), and a standby
// promoted from the reopened journal reproduces the exact state digest.
func TestFileJournalDrivesStandby(t *testing.T) {
	path := filepath.Join(t.TempDir(), "standby.journal")
	j, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTestbed(t, core.WithJournal(j))
	hosts := tb.g.Hosts()
	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet(dz.Expr("01"))); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("s1", hosts[1], dz.NewSet(dz.Expr("0101"))); err != nil {
		t.Fatal(err)
	}
	want, err := tb.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, err := core.SnapshotDigest(want)
	if err != nil {
		t.Fatal(err)
	}
	j.Close() // crash: the live controller's in-memory state is gone

	j2, err := core.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	standby := core.NewStandby(tb.g, tb.dp, j2, core.WithHostAddr(netem.HostAddr))
	promoted, rep, err := standby.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2", rep.Replayed)
	}
	// Modulo the takeover epoch bump, the recovered state must be
	// byte-identical (same convention as the MemJournal promote tests).
	promoted.SetEpoch(0)
	got, err := promoted.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	gotDigest, err := core.SnapshotDigest(got)
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != wantDigest {
		t.Fatalf("state digest mismatch after disk-journal recovery:\n want %x\n got  %x", wantDigest, gotDigest)
	}
}
