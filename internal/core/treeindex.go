package core

import (
	"slices"

	"pleroma/internal/dz"
)

// treeIndex resolves which dissemination trees own a subspace. Tree DZ sets
// are pairwise disjoint by construction — createTree only ever claims the
// uncovered remainder of an advertisement, and merges fold one tree's set
// into another — so every canonical set member belongs to exactly one tree
// and the index is a plain prefix map: packed member → owning tree.
//
// Members longer than dz.MaxKeyBits cannot pack losslessly into a trie key
// and fall back to a small side map checked with string prefix algebra.
// The zero value is ready for use; all access is guarded by Controller.mu.
type treeIndex struct {
	trie dz.Trie[TreeID]
	long map[dz.Expr]TreeID
}

// add indexes every member of a tree's canonical DZ set.
func (x *treeIndex) add(id TreeID, set dz.Set) {
	for _, e := range set {
		if k, ok := dz.KeyOf(e); ok {
			x.trie.Insert(k, id)
			continue
		}
		if x.long == nil {
			x.long = make(map[dz.Expr]TreeID)
		}
		x.long[e] = id
	}
}

// remove drops every member of a tree's canonical DZ set. Callers must pass
// the exact set the tree was indexed with (remove before mutating t.set).
func (x *treeIndex) remove(set dz.Set) {
	for _, e := range set {
		if k, ok := dz.KeyOf(e); ok {
			x.trie.Delete(k)
			continue
		}
		delete(x.long, e)
	}
}

// overlapping returns the IDs of all trees whose DZ set overlaps dzi, in
// ascending order: one trie descent for members covering dzi, one subtree
// walk for members covered by it. Replaces the linear scan over every
// tree's whole set.
func (x *treeIndex) overlapping(dzi dz.Expr) []TreeID {
	var ids []TreeID
	k, exact := dz.KeyOf(dzi)
	// Stored keys never exceed MaxKeyBits, so a member covers dzi iff it is
	// a prefix of dzi's first MaxKeyBits bits — exact even when k was
	// truncated.
	x.trie.VisitPrefixes(k, func(_ dz.Key, id TreeID) bool {
		ids = append(ids, id)
		return true
	})
	if exact {
		// Members covered by dzi. When dzi itself exceeds MaxKeyBits it can
		// only cover longer members, which all live in the fallback map.
		x.trie.WalkCovered(k, func(_ dz.Key, id TreeID) bool {
			ids = append(ids, id)
			return true
		})
	}
	for e, id := range x.long {
		if e.Overlaps(dzi) {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	return slices.Compact(ids) // dzi == member appears in both walks
}

// first returns one tree whose DZ set overlaps dzi — the allocation-free
// single-match variant of overlapping for per-publish lookups (an event's
// expression is a point, so at most one disjoint tree set can own it).
func (x *treeIndex) first(dzi dz.Expr) (TreeID, bool) {
	var (
		found TreeID
		ok    bool
	)
	k, exact := dz.KeyOf(dzi)
	x.trie.VisitPrefixes(k, func(_ dz.Key, id TreeID) bool {
		found, ok = id, true
		return false
	})
	if !ok && exact {
		x.trie.WalkCovered(k, func(_ dz.Key, id TreeID) bool {
			found, ok = id, true
			return false
		})
	}
	if !ok {
		for e, id := range x.long {
			if e.Overlaps(dzi) {
				found, ok = id, true
				break
			}
		}
	}
	return found, ok
}
