package core

import (
	"fmt"
	"sync"

	"pleroma/internal/dz"
	"pleroma/internal/openflow"
	"pleroma/internal/topo"
	"pleroma/internal/wire"
)

// This file implements the controller's append-only control-op journal
// (Ravana-style log-replay recovery). Every successful control operation —
// advertise, subscribe, unsubscribe, unadvertise, and rebuild-trees — is
// appended as a wire.Record carrying the controller's epoch and a monotone
// sequence number. A warm standby (see standby.go) replays snapshot +
// journal suffix to reconstruct the pre-crash state; snapshot-then-
// Truncate compacts the log.

// Journal is the sink control operations append to. Implementations must
// be safe for concurrent use with their read side (the controller appends
// under its own lock, but a standby may read concurrently).
type Journal interface {
	// Append adds one record. Records arrive with strictly increasing
	// sequence numbers within an epoch.
	Append(rec wire.Record) error
}

// ReplaySource is the read side of a journal: the records with sequence
// numbers greater than afterSeq, in order.
type ReplaySource interface {
	Records(afterSeq uint64) ([]wire.Record, error)
}

// MemJournal is the in-memory journal: an append-only slice of
// wire-encoded records guarded by a mutex. Records are stored encoded and
// decoded on read, so every journal round-trip exercises the codec a
// networked deployment would put on disk or on the replication channel.
type MemJournal struct {
	mu   sync.Mutex
	recs [][]byte
	// lastSeq is the highest sequence number ever appended (it survives
	// truncation, so compaction cannot roll sequence numbers back).
	lastSeq uint64
}

// NewMemJournal returns an empty in-memory journal.
func NewMemJournal() *MemJournal { return &MemJournal{} }

// Append encodes and stores one record. Sequence numbers must be strictly
// increasing; a regression indicates two live controllers writing the same
// journal and is rejected.
func (j *MemJournal) Append(rec wire.Record) error {
	b, err := wire.EncodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if rec.Seq <= j.lastSeq {
		return fmt.Errorf("core: journal sequence %d not after %d", rec.Seq, j.lastSeq)
	}
	j.recs = append(j.recs, b)
	j.lastSeq = rec.Seq
	return nil
}

// Records returns the decoded records with Seq > afterSeq, in order.
func (j *MemJournal) Records(afterSeq uint64) ([]wire.Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]wire.Record, 0, len(j.recs))
	for _, b := range j.recs {
		rec, err := wire.DecodeRecord(b)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt journal record: %w", err)
		}
		if rec.Seq <= afterSeq {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// Truncate drops every record with Seq <= upToSeq — the compaction step
// after a snapshot covering that prefix was taken. The sequence counter is
// unaffected, so later appends continue the numbering. The error return
// exists to satisfy CompactableJournal; the in-memory form cannot fail.
func (j *MemJournal) Truncate(upToSeq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	kept := j.recs[:0]
	for _, b := range j.recs {
		rec, err := wire.DecodeRecord(b)
		if err != nil || rec.Seq > upToSeq {
			kept = append(kept, b)
		}
	}
	// Zero the tail so truncated encodings are collectable.
	for i := len(kept); i < len(j.recs); i++ {
		j.recs[i] = nil
	}
	j.recs = kept
	return nil
}

// Len returns the number of live (non-truncated) records.
func (j *MemJournal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// LastSeq returns the highest sequence number ever appended.
func (j *MemJournal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSeq
}

// WithJournal makes the controller append every successful control
// operation to j. The journal, combined with periodic snapshots
// (EncodeSnapshot), is what a warm standby replays on takeover.
func WithJournal(j Journal) Option {
	return func(c *Controller) { c.journal = j }
}

// Epoch returns the controller's incarnation number (0 for a controller
// that never failed over).
func (c *Controller) Epoch() uint32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// JournalSeq returns the sequence number of the last control operation the
// controller journaled (or inherited through restore/replay).
func (c *Controller) JournalSeq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.jseq
}

// SetJournal attaches (or replaces) the journal of a live controller.
// Promote uses it to wire the inherited journal to the new incarnation
// after replay, so appends made during replay are impossible by
// construction.
func (c *Controller) SetJournal(j Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
}

// SetEpoch sets the controller's incarnation number; Promote bumps it past
// every epoch observed in the snapshot and journal.
func (c *Controller) SetEpoch(e uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch = e
}

// journalOp appends one successful control operation to the journal.
// Callers hold c.mu; ops applied during replay are not re-appended (their
// records are already in the journal). An append failure surfaces as the
// operation's error: the network state has been reconfigured, but callers
// must know the op is not durable.
func (c *Controller) journalOp(op, id string, ep endpoint, set dz.Set) error {
	if c.journal == nil || c.replaying {
		return nil
	}
	rec := wire.Record{
		Epoch:   c.epoch,
		Seq:     c.jseq + 1,
		Op:      op,
		ID:      id,
		Node:    uint32(ep.node),
		ViaPort: uint32(ep.viaPort),
		Set:     set,
	}
	if err := c.journal.Append(rec); err != nil {
		return fmt.Errorf("core: journal %s %q: %w", op, id, err)
	}
	c.jseq++
	c.inst.journalRecords.Inc()
	return nil
}

// Replay applies journal records with Seq > JournalSeq() in order,
// advancing the journal cursor and epoch watermark without re-appending.
// It returns the number of records applied. Replay is meant for a freshly
// created or restored controller that is not yet serving requests.
func (c *Controller) Replay(recs []wire.Record) (int, error) {
	c.mu.Lock()
	c.replaying = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.replaying = false
		c.mu.Unlock()
	}()
	applied := 0
	for _, rec := range recs {
		if rec.Seq <= c.JournalSeq() {
			continue
		}
		if err := c.applyRecord(rec); err != nil {
			return applied, fmt.Errorf("core: replay record %d (%s %q): %w", rec.Seq, rec.Op, rec.ID, err)
		}
		c.mu.Lock()
		c.jseq = rec.Seq
		if rec.Epoch > c.epoch {
			c.epoch = rec.Epoch
		}
		c.mu.Unlock()
		c.inst.journalReplayed.Inc()
		applied++
	}
	return applied, nil
}

// applyRecord dispatches one journal record to the corresponding control
// operation. Virtual clients are told apart by their nonzero border port.
func (c *Controller) applyRecord(rec wire.Record) error {
	node := topo.NodeID(rec.Node)
	port := openflow.PortID(rec.ViaPort)
	var err error
	switch rec.Op {
	case wire.OpAdvertise:
		if port != 0 {
			_, err = c.AdvertiseVirtual(rec.ID, node, port, rec.Set)
		} else {
			_, err = c.Advertise(rec.ID, node, rec.Set)
		}
	case wire.OpSubscribe:
		if port != 0 {
			_, err = c.SubscribeVirtual(rec.ID, node, port, rec.Set)
		} else {
			_, err = c.Subscribe(rec.ID, node, rec.Set)
		}
	case wire.OpUnsubscribe:
		_, err = c.Unsubscribe(rec.ID)
	case wire.OpUnadvertise:
		_, err = c.Unadvertise(rec.ID)
	case wire.OpReconfigure:
		_, err = c.RebuildTrees()
	default:
		err = fmt.Errorf("core: unknown journal op %q", rec.Op)
	}
	return err
}
