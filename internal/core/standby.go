package core

import (
	"fmt"
	"sync"

	"pleroma/internal/topo"
)

// StandbyController is a warm standby for one partition's controller. It
// holds everything needed to take over — topology, southbound programmer,
// controller options, the shared journal's read side, and the latest
// snapshot it observed — and on Promote reconstructs a live controller at
// the failed one's exact logical state: restore the snapshot (or start
// fresh), replay the journal suffix, bump the epoch past every one
// observed, and anti-entropy-resync the inherited switches so whatever the
// crashed controller actually programmed is reconciled with the canonical
// state (Resync/FlowReader are reused verbatim).
type StandbyController struct {
	g    *topo.Graph
	prog FlowProgrammer
	src  ReplaySource
	opts []Option

	mu   sync.Mutex
	snap []byte
}

// NewStandby builds a standby. src is the read side of the journal the
// active controller writes; opts must match the active controller's
// configuration (same partition, host-address function, policies).
func NewStandby(g *topo.Graph, prog FlowProgrammer, src ReplaySource, opts ...Option) *StandbyController {
	return &StandbyController{g: g, prog: prog, src: src, opts: opts}
}

// ObserveSnapshot hands the standby a snapshot of the active controller
// (validated before adoption). Promote restores from the most recent one
// and replays only the journal records past it.
func (s *StandbyController) ObserveSnapshot(snap []byte) error {
	if _, err := SnapshotDigest(snap); err != nil {
		return err
	}
	s.mu.Lock()
	s.snap = append([]byte(nil), snap...)
	s.mu.Unlock()
	return nil
}

// PromoteReport summarises one takeover.
type PromoteReport struct {
	// FromSnapshot is true when the standby restored a snapshot (as
	// opposed to rebuilding purely from the journal).
	FromSnapshot bool
	// SnapshotSeq is the journal sequence the restored snapshot covered.
	SnapshotSeq uint64
	// Replayed counts journal records applied on top.
	Replayed int
	// Epoch is the promoted controller's new incarnation number.
	Epoch uint32
	// Resync reports the anti-entropy pass over the inherited switches.
	Resync ResyncReport
}

// Promote turns the standby into the partition's live controller. The
// returned controller has the journal attached (when the replay source
// implements Journal) and its switch tables reconciled; the standby's
// snapshot is consumed.
func (s *StandbyController) Promote() (*Controller, PromoteReport, error) {
	var rep PromoteReport
	s.mu.Lock()
	snap := s.snap
	s.snap = nil
	s.mu.Unlock()

	var (
		ctl *Controller
		err error
	)
	if snap != nil {
		ctl, err = RestoreController(s.g, s.prog, snap, s.opts...)
		if err != nil {
			return nil, rep, fmt.Errorf("core: promote: %w", err)
		}
		rep.FromSnapshot = true
		rep.SnapshotSeq = ctl.JournalSeq()
	} else {
		ctl, err = NewController(s.g, s.prog, s.opts...)
		if err != nil {
			return nil, rep, fmt.Errorf("core: promote: %w", err)
		}
	}

	maxEpoch := ctl.Epoch()
	if s.src != nil {
		recs, err := s.src.Records(ctl.JournalSeq())
		if err != nil {
			return nil, rep, fmt.Errorf("core: promote: read journal: %w", err)
		}
		// A compacted journal whose first surviving record is not the
		// immediate successor of the standby's state means the snapshot
		// covering the gap was never observed: replay would silently skip
		// operations, so refuse the takeover instead.
		if len(recs) > 0 && recs[0].Seq > ctl.JournalSeq()+1 {
			return nil, rep, fmt.Errorf("core: promote: journal compacted to seq %d but standby state covers only seq %d; snapshot required",
				recs[0].Seq, ctl.JournalSeq())
		}
		for _, rec := range recs {
			if rec.Epoch > maxEpoch {
				maxEpoch = rec.Epoch
			}
		}
		rep.Replayed, err = ctl.Replay(recs)
		if err != nil {
			return nil, rep, fmt.Errorf("core: promote: %w", err)
		}
	}

	// New incarnation: strictly after every epoch seen in snapshot+journal.
	rep.Epoch = maxEpoch + 1
	ctl.SetEpoch(rep.Epoch)
	if j, ok := s.src.(Journal); ok {
		ctl.SetJournal(j)
	}

	// Anti-entropy over the inherited switches: the restored installed map
	// says what the crashed controller believed; the resync pass reads the
	// switches' ground truth through the FlowReader and ships the diff.
	rep.Resync, err = ctl.ResyncAll()
	if err != nil {
		return nil, rep, fmt.Errorf("core: promote: resync: %w", err)
	}
	return ctl, rep, nil
}
