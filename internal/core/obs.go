package core

import (
	"strconv"
	"time"

	"pleroma/internal/obs"
	"pleroma/internal/topo"
)

// Control-operation kinds, used as the op label of request counters,
// latency histograms, and trace spans.
const (
	opAdvertise    = "advertise"
	opSubscribe    = "subscribe"
	opUnsubscribe  = "unsubscribe"
	opUnadvertise  = "unadvertise"
	opRebuildTrees = "rebuild-trees"
	opResync       = "resync"
)

// Algorithm-1 / Section 3.3.2 incremental reconfiguration cases, used as
// the case label of the reconfiguration-case counter. install covers the
// paper's "new entry" cases, covered its pruning case (2) where a coarser
// entry already forwards identically, extend/downgrade the instruction-set
// widening/narrowing of cases (3)–(5), delete the removal of an entry
// without remaining contributions, and modify any other rewrite (priority
// or terminal-destination change).
const (
	caseInstall   = "install"
	caseCovered   = "covered"
	caseExtend    = "extend"
	caseDowngrade = "downgrade"
	caseDelete    = "delete"
	caseModify    = "modify"
)

// instruments is the controller's always-on counter bundle. The lifetime
// Stats view reads these atomics, so they exist (and are updated) even
// without a registry; attaching them to an obs.Registry via
// WithObservability only makes them exportable. The per-switch vectors,
// latency histograms, and tree gauges are populated unconditionally too —
// they live on the control path, whose per-op cost (µs–ms) dwarfs an
// atomic add — while the publish hot path carries no instruments at all
// in this package.
type instruments struct {
	requests *obs.CounterVec // by op
	// cached members of requests, avoiding a map lookup per request
	advertise, subscribe, unsubscribe, unadvertise *obs.Counter

	flowMods *obs.CounterVec // by kind
	// cached members of flowMods
	flowAdds, flowDeletes, flowModifies *obs.Counter

	cases *obs.CounterVec // by Algorithm-1 case
	// cached members of cases
	caseInstall, caseCovered, caseExtend, caseDowngrade, caseDelete, caseModify *obs.Counter

	treesCreated, treesMerged, storedSubs *obs.Counter
	southboundCalls, retries, quarantines *obs.Counter
	resyncs, repairedFlows                *obs.Counter
	snapshots, journalRecords             *obs.Counter
	journalReplayed                       *obs.Counter
	snapshotBytes                         *obs.Gauge
	latency                               *obs.HistogramVec // by op
	swFlowMods, swRetries, swFailures     *obs.CounterVec   // by switch
	treeDz                                *obs.GaugeVec     // by tree
}

// newInstruments builds the bundle and, when reg is non-nil, attaches
// every instrument under its canonical obs.M* name.
func newInstruments(reg *obs.Registry) *instruments {
	i := &instruments{
		requests:        obs.NewCounterVec(),
		flowMods:        obs.NewCounterVec(),
		cases:           obs.NewCounterVec(),
		treesCreated:    obs.NewCounter(),
		treesMerged:     obs.NewCounter(),
		storedSubs:      obs.NewCounter(),
		southboundCalls: obs.NewCounter(),
		retries:         obs.NewCounter(),
		quarantines:     obs.NewCounter(),
		resyncs:         obs.NewCounter(),
		repairedFlows:   obs.NewCounter(),
		snapshots:       obs.NewCounter(),
		journalRecords:  obs.NewCounter(),
		journalReplayed: obs.NewCounter(),
		snapshotBytes:   obs.NewGauge(),
		latency:         obs.NewHistogramVec(),
		swFlowMods:      obs.NewCounterVec(),
		swRetries:       obs.NewCounterVec(),
		swFailures:      obs.NewCounterVec(),
		treeDz:          obs.NewGaugeVec(),
	}
	i.advertise = i.requests.With(opAdvertise)
	i.subscribe = i.requests.With(opSubscribe)
	i.unsubscribe = i.requests.With(opUnsubscribe)
	i.unadvertise = i.requests.With(opUnadvertise)
	i.flowAdds = i.flowMods.With("add")
	i.flowDeletes = i.flowMods.With("delete")
	i.flowModifies = i.flowMods.With("modify")
	i.caseInstall = i.cases.With(caseInstall)
	i.caseCovered = i.cases.With(caseCovered)
	i.caseExtend = i.cases.With(caseExtend)
	i.caseDowngrade = i.cases.With(caseDowngrade)
	i.caseDelete = i.cases.With(caseDelete)
	i.caseModify = i.cases.With(caseModify)

	reg.AttachCounterVec(obs.MRequests, "Control requests processed, by operation.", "op", i.requests)
	reg.AttachCounterVec(obs.MFlowMods, "FlowMod messages acknowledged by switches, by kind.", "kind", i.flowMods)
	reg.AttachCounterVec(obs.MReconfigCases, "Incremental reconfiguration cases of Algorithm 1 taken by the flow derivation.", "case", i.cases)
	reg.AttachCounter(obs.MTreesCreated, "Dissemination trees created.", "", "", i.treesCreated)
	reg.AttachCounter(obs.MTreesMerged, "Dissemination tree merges (Section 3.2 threshold).", "", "", i.treesMerged)
	reg.AttachCounter(obs.MStoredSubs, "Subscriptions stored without a matching tree.", "", "", i.storedSubs)
	reg.AttachCounter(obs.MSouthboundCalls, "Southbound programmer invocations (a batch counts once).", "", "", i.southboundCalls)
	reg.AttachCounter(obs.MSouthboundRetries, "Southbound attempts repeated after transient errors.", "", "", i.retries)
	reg.AttachCounter(obs.MQuarantines, "Switches quarantined after exhausting southbound retries.", "", "", i.quarantines)
	reg.AttachCounter(obs.MResyncs, "Anti-entropy passes over single switches.", "", "", i.resyncs)
	reg.AttachCounter(obs.MResyncRepaired, "Repair FlowMods issued by anti-entropy passes.", "", "", i.repairedFlows)
	reg.AttachCounter(obs.MSnapshots, "Controller state snapshots encoded.", "", "", i.snapshots)
	reg.AttachCounter(obs.MJournalRecords, "Control operations appended to the op journal.", "", "", i.journalRecords)
	reg.AttachCounter(obs.MJournalReplayed, "Journal records replayed during standby promotion or restore.", "", "", i.journalReplayed)
	reg.AttachGauge(obs.MSnapshotBytes, "Size of the last encoded controller snapshot in bytes.", "", "", i.snapshotBytes)
	reg.AttachHistogramVec(obs.MReconfigDuration, "Wall-clock latency of control operations, by operation.", "op", i.latency)
	reg.AttachCounterVec(obs.MSwitchFlowMods, "FlowMods acknowledged per switch.", "switch", i.swFlowMods)
	reg.AttachCounterVec(obs.MSwitchRetries, "Southbound retries per switch.", "switch", i.swRetries)
	reg.AttachCounterVec(obs.MSwitchFailures, "FlowMods abandoned per switch (retries exhausted).", "switch", i.swFailures)
	reg.AttachGaugeVec(obs.MTreeDzSize, "DZ-set size per live dissemination tree.", "tree", i.treeDz)
	return i
}

// swLabel renders a switch ID as a metric label value.
func swLabel(sw topo.NodeID) string { return strconv.Itoa(int(sw)) }

// treeLabel renders a tree ID as a metric label value.
func treeLabel(id TreeID) string { return strconv.Itoa(int(id)) }

// beginOp opens the observation scope of one control operation: a trace
// span (when tracing is enabled; target is computed lazily so disabled
// tracing pays nothing) and the latency-clock start. The span is parked
// on c.span so refresh workers can annotate it; callers hold c.mu.
func (c *Controller) beginOp(op string, target func() string) (*obs.Span, time.Time) {
	var sp *obs.Span
	if c.tracer != nil {
		sp = c.tracer.StartSpan(op, target())
	}
	c.span = sp
	return sp, time.Now()
}

// endOp closes the scope opened by beginOp: the op latency is observed
// and the span receives the reconfiguration summary before it ends.
// Callers hold c.mu, and all refresh workers of the operation have
// joined, so clearing c.span is safe.
func (c *Controller) endOp(op string, sp *obs.Span, start time.Time, rep *ReconfigReport, err error) {
	c.span = nil
	c.inst.latency.With(op).Observe(time.Since(start))
	if sp == nil {
		return
	}
	sp.Event("report",
		"flowAdds", strconv.Itoa(rep.FlowAdds),
		"flowDeletes", strconv.Itoa(rep.FlowDeletes),
		"flowModifies", strconv.Itoa(rep.FlowModifies),
		"treesCreated", strconv.Itoa(rep.TreesCreated),
		"treesMerged", strconv.Itoa(rep.TreesMerged),
		"southbound", strconv.Itoa(rep.SouthboundCalls),
		"retries", strconv.Itoa(rep.Retries),
		"quarantined", strconv.Itoa(rep.Quarantined),
	)
	sp.End(err)
}
