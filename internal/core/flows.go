package core

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/openflow"
	"pleroma/internal/sortutil"
	"pleroma/internal/topo"
)

// touchedSet records, per switch, the match expressions whose direct
// contributions changed during one control operation. Only the prefix
// family (ancestors are implicit, descendants are found by range scan) of
// these expressions can need flow updates — the locality that the paper's
// incremental cases (1)–(5) exploit.
type touchedSet map[topo.NodeID]map[dz.Expr]bool

func (t touchedSet) mark(sw topo.NodeID, e dz.Expr) {
	m := t[sw]
	if m == nil {
		m = make(map[dz.Expr]bool)
		t[sw] = m
	}
	m[e] = true
}

// contribState is the controller's aggregated view of all established
// paths. Every (publisher, subscriber, tree, dz, switch, port) contribution
// is refcounted so that flow derivation only sees distinct (expr, port)
// pairs, and indexed by client/tree for cheap removal.
type contribState struct {
	// keys holds every live contribution.
	keys map[contribKey]struct{}
	// refs aggregates per switch: expr -> port -> number of live
	// contributions.
	refs map[topo.NodeID]map[dz.Expr]map[openflow.PortID]int
	// sorted keeps each switch's direct expressions in lexicographic
	// order; descendants of a prefix form a contiguous range.
	sorted map[topo.NodeID][]dz.Expr
	// bySub/byPub/byTree index keys for removal.
	bySub  map[string][]contribKey
	byPub  map[string][]contribKey
	byTree map[TreeID][]contribKey
}

func newContribState() *contribState {
	return &contribState{
		keys:   make(map[contribKey]struct{}),
		refs:   make(map[topo.NodeID]map[dz.Expr]map[openflow.PortID]int),
		sorted: make(map[topo.NodeID][]dz.Expr),
		bySub:  make(map[string][]contribKey),
		byPub:  make(map[string][]contribKey),
		byTree: make(map[TreeID][]contribKey),
	}
}

// add registers one contribution, marking the expression as touched when
// the (expr, port) pair became newly visible on the switch.
func (cs *contribState) add(key contribKey, touched touchedSet) {
	if _, dup := cs.keys[key]; dup {
		return
	}
	cs.keys[key] = struct{}{}
	cs.bySub[key.sub] = append(cs.bySub[key.sub], key)
	cs.byPub[key.pub] = append(cs.byPub[key.pub], key)
	cs.byTree[key.tree] = append(cs.byTree[key.tree], key)
	exprs := cs.refs[key.sw]
	if exprs == nil {
		exprs = make(map[dz.Expr]map[openflow.PortID]int)
		cs.refs[key.sw] = exprs
	}
	ports := exprs[key.expr]
	if ports == nil {
		ports = make(map[openflow.PortID]int)
		exprs[key.expr] = ports
		cs.insertSorted(key.sw, key.expr)
	}
	if ports[key.port]++; ports[key.port] == 1 {
		touched.mark(key.sw, key.expr)
	}
}

// remove drops one contribution if it is live.
func (cs *contribState) remove(key contribKey, touched touchedSet) {
	if _, ok := cs.keys[key]; !ok {
		return
	}
	delete(cs.keys, key)
	exprs := cs.refs[key.sw]
	ports := exprs[key.expr]
	if ports[key.port]--; ports[key.port] <= 0 {
		delete(ports, key.port)
		touched.mark(key.sw, key.expr)
	}
	if len(ports) == 0 {
		delete(exprs, key.expr)
		cs.deleteSorted(key.sw, key.expr)
	}
	if len(exprs) == 0 {
		delete(cs.refs, key.sw)
	}
}

func (cs *contribState) insertSorted(sw topo.NodeID, e dz.Expr) {
	s := cs.sorted[sw]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = e
	cs.sorted[sw] = s
}

func (cs *contribState) deleteSorted(sw topo.NodeID, e dz.Expr) {
	s := cs.sorted[sw]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	if i < len(s) && s[i] == e {
		copy(s[i:], s[i+1:])
		cs.sorted[sw] = s[:len(s)-1]
	}
}

// descendants appends to out every direct expression of sw that e strictly
// or non-strictly covers.
func (cs *contribState) descendants(sw topo.NodeID, e dz.Expr, out map[dz.Expr]bool) {
	s := cs.sorted[sw]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	for ; i < len(s); i++ {
		if !strings.HasPrefix(string(s[i]), string(e)) {
			break
		}
		out[s[i]] = true
	}
}

// removeList drops every live contribution in the index list.
func (cs *contribState) removeList(list []contribKey, touched touchedSet) {
	for _, key := range list {
		cs.remove(key, touched)
	}
}

// removeBySub tears down all contributions of one subscriber.
func (cs *contribState) removeBySub(id string, touched touchedSet) {
	cs.removeList(cs.bySub[id], touched)
	delete(cs.bySub, id)
}

// removeByPub tears down all contributions of one publisher.
func (cs *contribState) removeByPub(id string, touched touchedSet) {
	cs.removeList(cs.byPub[id], touched)
	delete(cs.byPub, id)
}

// removeByTree tears down all contributions of one tree.
func (cs *contribState) removeByTree(id TreeID, touched touchedSet) {
	cs.removeList(cs.byTree[id], touched)
	delete(cs.byTree, id)
}

// addPathContributions computes the route of one (publisher, subscriber,
// tree) path and registers a contribution per hop for every expression in
// exprs.
func (c *Controller) addPathContributions(t *tree, pub *publisher, sub *subscriber,
	exprs dz.Set, touched touchedSet, rep *ReconfigReport) error {
	if exprs.IsEmpty() {
		return nil
	}
	hops, err := c.routeHops(t, pub.ep, sub.ep)
	if err != nil {
		return err
	}
	rep.RoutesComputed++
	for _, e := range exprs {
		for _, hop := range hops {
			c.contribs.add(contribKey{
				pub:  pub.id,
				sub:  sub.id,
				tree: t.id,
				expr: e,
				sw:   hop.Switch,
				port: hop.OutPort,
			}, touched)
		}
	}
	return nil
}

// routeHops computes the (switch, out-port) sequence between two endpoints
// along the tree. Virtual endpoints sit on a border switch and extend the
// route with the cross-partition exit port.
func (c *Controller) routeHops(t *tree, from, to endpoint) ([]topo.Hop, error) {
	if from.node == to.node && !from.virtual() && !to.virtual() {
		// Publisher and subscriber share a host: the spanning-tree path
		// degenerates to the host alone, but the packet still crosses the
		// access link, so program the access switch to hairpin it back down
		// the same port. Without this hop a colocated subscriber never
		// receives anything.
		sw, err := c.g.AttachedSwitch(from.node)
		if err != nil {
			return nil, fmt.Errorf("core: route on tree %d: %w", t.id, err)
		}
		port, ok := c.g.PortTowards(sw, from.node)
		if !ok {
			return nil, fmt.Errorf("core: no port from switch %d towards host %d", sw, from.node)
		}
		return []topo.Hop{{Switch: sw, OutPort: port}}, nil
	}
	path, err := t.span.PathBetween(from.node, to.node)
	if err != nil {
		return nil, fmt.Errorf("core: route on tree %d: %w", t.id, err)
	}
	hops, err := c.g.RouteHops(path)
	if err != nil {
		return nil, fmt.Errorf("core: route hops: %w", err)
	}
	if to.virtual() {
		hops = append(hops, topo.Hop{Switch: to.node, OutPort: to.viaPort})
	}
	return hops, nil
}

// portSet is a small set of out-ports.
type portSet map[openflow.PortID]bool

func (p portSet) sorted() []openflow.PortID {
	out := make([]openflow.PortID, 0, len(p))
	for port := range p {
		out = append(out, port)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (p portSet) equal(o portSet) bool {
	if len(p) != len(o) {
		return false
	}
	for port := range p {
		if !o[port] {
			return false
		}
	}
	return true
}

// desiredEntry derives the canonical flow entry of one expression: the
// union of the direct ports of every covering (prefix) contribution
// including itself; nil when the expression has no direct contribution or
// when the entry duplicates its nearest strictly-coarser entry (pruned,
// cf. case (2) of Section 3.3.2).
func desiredEntry(direct map[dz.Expr]map[openflow.PortID]int, x dz.Expr,
	memo map[dz.Expr]portSet) portSet {
	if _, present := direct[x]; !present {
		return nil
	}
	want := unionOfPrefixes(direct, x, memo)
	for l := x.Len() - 1; l >= 0; l-- {
		if _, ok := direct[x[:l]]; !ok {
			continue
		}
		if unionOfPrefixes(direct, x[:l], memo).equal(want) {
			return nil // redundant: the coarser entry forwards identically
		}
		break
	}
	return want
}

// unionOfPrefixes unions the direct port sets of every prefix of x
// (including x itself).
func unionOfPrefixes(direct map[dz.Expr]map[openflow.PortID]int, x dz.Expr,
	memo map[dz.Expr]portSet) portSet {
	if u, ok := memo[x]; ok {
		return u
	}
	u := make(portSet)
	for l := 0; l <= x.Len(); l++ {
		if ports, ok := direct[x[:l]]; ok {
			for p := range ports {
				u[p] = true
			}
		}
	}
	memo[x] = u
	return u
}

// desiredTable derives the full canonical flow table of one switch. It is
// the oracle the incremental refresh is verified against (VerifyTables);
// the hot path uses refreshSwitch instead.
func (c *Controller) desiredTable(sw topo.NodeID) map[dz.Expr]portSet {
	direct := c.contribs.refs[sw]
	if len(direct) == 0 {
		return nil
	}
	memo := make(map[dz.Expr]portSet, len(direct))
	entries := make(map[dz.Expr]portSet, len(direct))
	for e := range direct {
		if want := desiredEntry(direct, e, memo); want != nil {
			entries[e] = want
		}
	}
	return entries
}

// actionsFor converts a port set into an OpenFlow instruction set, adding
// the terminal destination rewrite on host-facing ports.
func (c *Controller) actionsFor(sw topo.NodeID, ports portSet) []openflow.Action {
	sorted := ports.sorted()
	actions := make([]openflow.Action, 0, len(sorted))
	for _, port := range sorted {
		a := openflow.Action{OutPort: port}
		if peer, ok := c.g.PortToPeer(sw, port); ok {
			if n, err := c.g.Node(peer); err == nil && n.Kind == topo.KindHost {
				a.SetDest = c.hostAddr(peer)
			}
		}
		actions = append(actions, a)
	}
	return actions
}

func actionsEqual(a, b []openflow.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refreshSwitch reconciles the flows of one switch for the expressions
// whose contributions changed. Affected entries are exactly the changed
// expressions and their direct descendants: an entry's port union depends
// only on its prefixes, and its pruning decision on its nearest coarser
// entry, so changes never propagate outside the prefix family.
//
// All FlowMods the switch owes are collected into one batch and flushed in
// a single southbound call when the programmer supports batching. It only
// reads shared controller state (contribs, graph) and writes the
// per-switch inst map and the caller's report, so refresh may run it
// concurrently for distinct switches.
func (c *Controller) refreshSwitch(sw topo.NodeID, changed map[dz.Expr]bool,
	inst map[dz.Expr]installedFlow, rep *ReconfigReport) error {
	direct := c.contribs.refs[sw]
	affected := make(map[dz.Expr]bool, len(changed)*2)
	for e := range changed {
		affected[e] = true
		c.contribs.descendants(sw, e, affected)
	}
	memo := make(map[dz.Expr]portSet, len(affected))
	exprs := sortutil.Keys(affected)

	ops := make([]openflow.FlowOp, 0, len(exprs))
	metas := make([]opMeta, 0, len(exprs))
	for _, e := range exprs {
		want := desiredEntry(direct, e, memo)
		fl, installed := inst[e]
		switch {
		case want == nil && installed:
			// Distinguish the Algorithm-1 outcome: an entry whose direct
			// contributions vanished is a plain delete; one that still has
			// direct contributions was pruned because a coarser entry now
			// forwards identically (the paper's containment case).
			if _, hasDirect := direct[e]; hasDirect {
				c.inst.caseCovered.Inc()
			} else {
				c.inst.caseDelete.Inc()
			}
			ops = append(ops, openflow.DeleteOp(fl.id))
			metas = append(metas, opMeta{expr: e})
		case want != nil && !installed:
			c.inst.caseInstall.Inc()
			actions := c.actionsFor(sw, want)
			prio := e.Len()
			f, err := openflow.NewFlow(e, prio, actions...)
			if err != nil {
				return fmt.Errorf("core: build flow: %w", err)
			}
			ops = append(ops, openflow.AddOp(f))
			metas = append(metas, opMeta{expr: e, inst: installedFlow{priority: prio, actions: actions}})
		case want != nil && installed:
			actions := c.actionsFor(sw, want)
			prio := e.Len()
			if fl.priority != prio || !actionsEqual(fl.actions, actions) {
				// A grown instruction set extends the entry to more ports;
				// a shrunken one is the downgrade of Section 3.3.3.
				switch {
				case len(actions) > len(fl.actions):
					c.inst.caseExtend.Inc()
				case len(actions) < len(fl.actions):
					c.inst.caseDowngrade.Inc()
				default:
					c.inst.caseModify.Inc()
				}
				ops = append(ops, openflow.ModifyOp(fl.id, prio, actions))
				metas = append(metas, opMeta{expr: e, inst: installedFlow{id: fl.id, priority: prio, actions: actions}})
			}
		}
	}
	return c.flushOps(sw, ops, metas, inst, rep)
}

// opMeta pairs one batch op with the installed-state update to apply once
// the op is known to have taken effect on the switch.
type opMeta struct {
	expr dz.Expr
	// inst is the entry to store for adds/modifies (the add's flow ID is
	// filled in from the programmer's result); unused for deletes.
	inst installedFlow
}

// ackedOp is one southbound operation the switch acknowledged: its kind,
// the installed-state update it implies, and — for adds only — the
// switch-assigned flow ID. Carrying the outcome in a typed record (instead
// of a parallel []FlowID with placeholder zeros for deletes/modifies)
// makes the acknowledged prefix unambiguous: an add of real FlowID 0 can
// never be confused with a delete's placeholder.
type ackedOp struct {
	kind openflow.OpKind
	meta opMeta
	id   openflow.FlowID // valid only for adds
}

// flushOps ships the FlowMods of one switch southbound — as a single batch
// when the programmer supports it, one call per op otherwise — retrying
// transient failures per the controller's RetryPolicy, and applies the
// corresponding installed-state updates for every op that took effect.
//
// Error semantics: permanent programmer errors surface as a
// *SouthboundError (the acknowledged prefix is still recorded). Transient
// errors that survive every retry do NOT fail the control operation;
// instead the switch is quarantined in the degraded set — its table now
// lags the canonical state — and the next resync pass heals it.
func (c *Controller) flushOps(sw topo.NodeID, ops []openflow.FlowOp, metas []opMeta,
	inst map[dz.Expr]installedFlow, rep *ReconfigReport) error {
	if len(ops) == 0 {
		return nil
	}
	if c.replaying {
		// Journal replay rebuilds desired state only. The switches the
		// standby inherits already executed the dead controller's FlowMods
		// (with switch-assigned flow IDs this incarnation never saw), so
		// replay ships nothing southbound and leaves the installed view
		// stale; the takeover resync rebuilds it from the switches' actual
		// flows, adopting their IDs.
		return nil
	}
	acked := make([]ackedOp, 0, len(ops))
	err := c.programWithRetry(sw, ops, metas, &acked, rep)
	// Record exactly the ops the switch acknowledged. The lifetime FlowMod
	// counters move here too — per acknowledged op, in both the refresh and
	// the resync path — so they stay the single source the Stats view and
	// the metrics exposition read.
	for _, a := range acked {
		switch a.kind {
		case openflow.OpAdd:
			m := a.meta.inst
			m.id = a.id
			inst[a.meta.expr] = m
			rep.FlowAdds++
			c.inst.flowAdds.Inc()
		case openflow.OpDelete:
			delete(inst, a.meta.expr)
			rep.FlowDeletes++
			c.inst.flowDeletes.Inc()
		case openflow.OpModify:
			inst[a.meta.expr] = a.meta.inst
			rep.FlowModifies++
			c.inst.flowModifies.Inc()
		}
	}
	if len(acked) > 0 {
		c.inst.swFlowMods.With(swLabel(sw)).Add(uint64(len(acked)))
		if sp := c.span; sp != nil {
			sp.Event("programmed", "switch", swLabel(sw), "ops", strconv.Itoa(len(acked)))
		}
	}
	return err
}

// programWithRetry drives the southbound attempts of one flush: each
// attempt ships the still-pending suffix, acknowledged ops accumulate in
// acked, and transient failures back off exponentially (capped, within
// the per-operation deadline) before retrying. On exhaustion the switch
// is quarantined and nil is returned; permanent errors return immediately
// as a *SouthboundError.
func (c *Controller) programWithRetry(sw topo.NodeID, ops []openflow.FlowOp, metas []opMeta,
	acked *[]ackedOp, rep *ReconfigReport) error {
	pol := c.retry.normalized()
	attempts := 0
	var waited time.Duration
	for {
		n, err := c.programOnce(sw, ops, metas, acked, rep)
		attempts++
		ops, metas = ops[n:], metas[n:]
		if err == nil || len(ops) == 0 {
			// A programmer that errors after acknowledging every op has
			// still applied the whole flush; treat it as success.
			return nil
		}
		serr := &SouthboundError{
			Sw:        sw,
			Op:        ops[0].Kind,
			Attempts:  attempts,
			Transient: isTransient(err),
			Err:       err,
		}
		if !serr.Transient {
			return serr
		}
		if attempts < pol.MaxAttempts {
			d := pol.backoff(attempts - 1)
			if pol.OpDeadline <= 0 || waited+d <= pol.OpDeadline {
				waited += d
				if d > 0 {
					pol.sleep(d)
				}
				rep.Retries++
				c.inst.retries.Inc()
				c.inst.swRetries.With(swLabel(sw)).Inc()
				continue
			}
		}
		// Retries exhausted (attempt budget or deadline): quarantine the
		// switch instead of failing the whole control operation. The
		// unacknowledged remainder counts as abandoned FlowMods.
		c.inst.swFailures.With(swLabel(sw)).Add(uint64(len(ops)))
		c.quarantine(sw, serr, rep)
		return nil
	}
}

// programOnce ships the pending ops once — one batch call or a sequence of
// per-op calls — and appends one typed ackedOp per acknowledged operation.
// It returns how many ops the switch acknowledged in this attempt.
func (c *Controller) programOnce(sw topo.NodeID, ops []openflow.FlowOp, metas []opMeta,
	acked *[]ackedOp, rep *ReconfigReport) (int, error) {
	if c.batch != nil {
		rep.SouthboundCalls++
		c.inst.southboundCalls.Inc()
		ids, err := c.batch.ApplyBatch(sw, ops)
		for i := range ids {
			a := ackedOp{kind: ops[i].Kind, meta: metas[i]}
			if ops[i].Kind == openflow.OpAdd {
				a.id = ids[i]
			}
			*acked = append(*acked, a)
		}
		return len(ids), err
	}
	for i, op := range ops {
		rep.SouthboundCalls++
		c.inst.southboundCalls.Inc()
		var (
			id  openflow.FlowID
			err error
		)
		switch op.Kind {
		case openflow.OpAdd:
			id, err = c.prog.AddFlow(sw, op.Flow)
		case openflow.OpDelete:
			err = c.prog.DeleteFlow(sw, op.ID)
		case openflow.OpModify:
			err = c.prog.ModifyFlow(sw, op.ID, op.Priority, op.Actions)
		}
		if err != nil {
			return i, err
		}
		*acked = append(*acked, ackedOp{kind: op.Kind, meta: metas[i], id: id})
	}
	return len(ops), nil
}

// quarantine moves a switch into the degraded set. Safe to call from
// concurrent refresh workers (distinct switches).
func (c *Controller) quarantine(sw topo.NodeID, err error, rep *ReconfigReport) {
	c.degradedMu.Lock()
	if _, already := c.degraded[sw]; !already {
		rep.Quarantined++
		c.inst.quarantines.Inc()
	}
	c.degraded[sw] = err
	c.degradedMu.Unlock()
	if sp := c.span; sp != nil {
		sp.Event("quarantined", "switch", swLabel(sw), "err", err.Error())
	}
	if c.log != nil {
		c.log.Warn("switch quarantined", "switch", int(sw), "err", err)
	}
}

// refresh reconciles every touched switch. The per-switch work is disjoint
// — refreshSwitch only reads shared state and owns its switch's installed
// map — so it fans out across a bounded worker pool; per-worker reports
// merge into rep (and the lifetime stats) afterwards, keeping counters
// deterministic regardless of interleaving. On failure the error of the
// lowest-numbered switch is returned, matching the serial order.
func (c *Controller) refresh(touched touchedSet, rep *ReconfigReport) error {
	if len(touched) == 0 {
		return nil
	}
	sws := sortutil.Keys(touched)

	// Pre-create the per-switch installed maps serially: map writes on
	// c.installed must not race with the fan-out below.
	insts := make([]map[dz.Expr]installedFlow, len(sws))
	for i, sw := range sws {
		inst := c.installed[sw]
		if inst == nil {
			inst = make(map[dz.Expr]installedFlow)
			c.installed[sw] = inst
		}
		insts[i] = inst
	}

	workers := c.refreshWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sws) {
		workers = len(sws)
	}

	var err error
	var agg ReconfigReport
	if workers <= 1 {
		for i, sw := range sws {
			if err = c.refreshSwitch(sw, touched[sw], insts[i], &agg); err != nil {
				break
			}
		}
	} else {
		reps := make([]ReconfigReport, len(sws))
		errs := make([]error, len(sws))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := range sws {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = c.refreshSwitch(sws[i], touched[sws[i]], insts[i], &reps[i])
			}(i)
		}
		wg.Wait()
		for i := range sws {
			agg.FlowAdds += reps[i].FlowAdds
			agg.FlowDeletes += reps[i].FlowDeletes
			agg.FlowModifies += reps[i].FlowModifies
			agg.SouthboundCalls += reps[i].SouthboundCalls
			agg.Retries += reps[i].Retries
			agg.Quarantined += reps[i].Quarantined
			if err == nil && errs[i] != nil {
				err = errs[i]
			}
		}
	}

	// Merge the (possibly partial) refresh outcome into the operation
	// report (the lifetime counters were already incremented at the flush
	// sites), then drop empty table entries.
	rep.FlowAdds += agg.FlowAdds
	rep.FlowDeletes += agg.FlowDeletes
	rep.FlowModifies += agg.FlowModifies
	rep.SouthboundCalls += agg.SouthboundCalls
	rep.Retries += agg.Retries
	rep.Quarantined += agg.Quarantined
	for _, sw := range sws {
		if len(c.installed[sw]) == 0 {
			delete(c.installed, sw)
		}
	}
	return err
}

// VerifyTables cross-checks the incrementally maintained flow state
// against the full canonical derivation; it is used by tests and returns
// the first inconsistency found. It takes the read lock, so it sees a
// consistent snapshot even while control operations churn concurrently.
func (c *Controller) VerifyTables() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Every switch with installed flows or contributions must agree.
	seen := make(map[topo.NodeID]bool)
	for sw := range c.installed {
		seen[sw] = true
	}
	for sw := range c.contribs.refs {
		seen[sw] = true
	}
	for _, sw := range sortutil.Keys(seen) {
		want := c.desiredTable(sw)
		have := c.installed[sw]
		if len(want) != len(have) {
			return fmt.Errorf("core: switch %d has %d flows, canonical says %d", sw, len(have), len(want))
		}
		for e, ports := range want {
			fl, ok := have[e]
			if !ok {
				return fmt.Errorf("core: switch %d misses flow %s", sw, e)
			}
			actions := c.actionsFor(sw, ports)
			if fl.priority != e.Len() || !actionsEqual(fl.actions, actions) {
				return fmt.Errorf("core: switch %d flow %s diverges from canonical", sw, e)
			}
		}
		// When the programmer can report ground truth, extend the check
		// down to the switch's actual table: every installed entry must be
		// present there unchanged, with no stray extras.
		if c.reader == nil {
			continue
		}
		flows, err := c.reader.Flows(sw)
		if err != nil {
			return fmt.Errorf("core: switch %d: read flows: %w", sw, err)
		}
		if len(flows) != len(have) {
			return fmt.Errorf("core: switch %d table has %d flows, controller installed %d", sw, len(flows), len(have))
		}
		for _, f := range flows {
			fl, ok := have[f.Expr]
			if !ok {
				return fmt.Errorf("core: switch %d has stray flow %s", sw, f.Expr)
			}
			if fl.id != f.ID || fl.priority != f.Priority || !actionsEqual(fl.actions, f.Actions) {
				return fmt.Errorf("core: switch %d flow %s diverges from installed state", sw, f.Expr)
			}
		}
	}
	return nil
}

// InstalledFlowCount returns the number of flows the controller currently
// has programmed across all switches (the TCAM budget of requirement 3).
func (c *Controller) InstalledFlowCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, m := range c.installed {
		total += len(m)
	}
	return total
}

// InstalledFlowsOn returns the match expressions programmed on one switch,
// sorted — used by tests and the dzcalc tool.
func (c *Controller) InstalledFlowsOn(sw topo.NodeID) []dz.Expr {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.installed[sw]
	return sortutil.Keys(m)
}
