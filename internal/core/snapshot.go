package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/netip"

	"pleroma/internal/dz"
	"pleroma/internal/openflow"
	"pleroma/internal/sortutil"
	"pleroma/internal/topo"
	"pleroma/internal/wire"
)

// This file implements the deterministic controller-state snapshot: a
// canonical byte encoding of everything a standby needs to reconstruct an
// equivalent controller — trees, registries, and the desired-installed
// flow map. Determinism is load-bearing: all maps are written in sorted
// key order and dz sets in their canonical order, so two controllers with
// equal state produce byte-identical snapshots, and snapshot→restore→
// snapshot round-trips to the same digest. Derived state (the contribution
// refcounts, the spanning trees) is recomputed on restore rather than
// serialised.

// Snapshot framing.
const (
	// snapshotMagic marks a controller snapshot stream.
	snapshotMagic = "PLSN"
	// SnapshotVersion is the snapshot codec version.
	SnapshotVersion byte = 1
	// snapshotDigestLen is the length of the trailing SHA-256 digest.
	snapshotDigestLen = sha256.Size
)

// EncodeSnapshot serialises the controller's full control-plane state:
//
//	"PLSN" [version u8] [epoch u32] [seq u64] [partition zigzag]
//	[nextTree uvarint]
//	[trees] [publishers] [subscribers] [installed]
//	[sha256 digest]
//
// Integers are varints unless sized above; every map is emitted in sorted
// key order and every dz set through wire.AppendSet (canonical order), so
// the encoding is a pure function of controller state.
func (c *Controller) EncodeSnapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()

	buf := append([]byte(nil), snapshotMagic...)
	buf = append(buf, SnapshotVersion)
	buf = binary.BigEndian.AppendUint32(buf, c.epoch)
	buf = binary.BigEndian.AppendUint64(buf, c.jseq)
	buf = binary.AppendVarint(buf, int64(c.partition))
	buf = binary.AppendUvarint(buf, uint64(c.nextTree))

	var err error
	// Trees, sorted by ID.
	buf = binary.AppendUvarint(buf, uint64(len(c.trees)))
	for _, tid := range sortutil.Keys(c.trees) {
		t := c.trees[tid]
		buf = binary.AppendUvarint(buf, uint64(t.id))
		buf = binary.AppendUvarint(buf, uint64(t.root))
		if buf, err = wire.AppendSet(buf, t.set); err != nil {
			return nil, fmt.Errorf("core: snapshot tree %d: %w", t.id, err)
		}
		if buf, err = appendMemberSets(buf, t.pubs); err != nil {
			return nil, fmt.Errorf("core: snapshot tree %d pubs: %w", t.id, err)
		}
		if buf, err = appendMemberSets(buf, t.subs); err != nil {
			return nil, fmt.Errorf("core: snapshot tree %d subs: %w", t.id, err)
		}
	}

	// Publisher registry, sorted by ID.
	buf = binary.AppendUvarint(buf, uint64(len(c.pubs)))
	for _, pid := range sortutil.Keys(c.pubs) {
		p := c.pubs[pid]
		if buf, err = appendClient(buf, p.id, p.ep, p.adv, p.trees); err != nil {
			return nil, fmt.Errorf("core: snapshot publisher %q: %w", pid, err)
		}
	}
	// Subscriber registry, sorted by ID.
	buf = binary.AppendUvarint(buf, uint64(len(c.subs)))
	for _, sid := range sortutil.Keys(c.subs) {
		s := c.subs[sid]
		if buf, err = appendClient(buf, s.id, s.ep, s.sub, s.trees); err != nil {
			return nil, fmt.Errorf("core: snapshot subscriber %q: %w", sid, err)
		}
	}

	// Desired-installed flow map, switches and match expressions sorted.
	buf = binary.AppendUvarint(buf, uint64(len(c.installed)))
	for _, sw := range sortutil.Keys(c.installed) {
		flows := c.installed[sw]
		buf = binary.AppendUvarint(buf, uint64(sw))
		buf = binary.AppendUvarint(buf, uint64(len(flows)))
		for _, e := range sortutil.Keys(flows) {
			f := flows[e]
			if buf, err = wire.AppendExpr(buf, e); err != nil {
				return nil, fmt.Errorf("core: snapshot switch %d: %w", sw, err)
			}
			buf = binary.AppendUvarint(buf, uint64(f.id))
			if f.priority < 0 {
				return nil, fmt.Errorf("core: snapshot switch %d: negative priority %d", sw, f.priority)
			}
			buf = binary.AppendUvarint(buf, uint64(f.priority))
			buf = binary.AppendUvarint(buf, uint64(len(f.actions)))
			for _, a := range f.actions {
				buf = binary.AppendUvarint(buf, uint64(a.OutPort))
				if a.SetDest.IsValid() {
					buf = append(buf, 1)
					b16 := a.SetDest.As16()
					buf = append(buf, b16[:]...)
				} else {
					buf = append(buf, 0)
				}
			}
		}
	}

	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)
	c.inst.snapshots.Inc()
	c.inst.snapshotBytes.Set(int64(len(buf)))
	return buf, nil
}

// appendMemberSets writes a string→dz.Set map in sorted key order.
func appendMemberSets(buf []byte, m map[string]dz.Set) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	var err error
	for _, id := range sortutil.Keys(m) {
		buf = appendString(buf, id)
		if buf, err = wire.AppendSet(buf, m[id]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// appendClient writes one registry entry: id, endpoint, dz set, and the
// sorted list of joined trees.
func appendClient(buf []byte, id string, ep endpoint, set dz.Set, trees map[TreeID]bool) ([]byte, error) {
	buf = appendString(buf, id)
	buf = binary.AppendUvarint(buf, uint64(ep.node))
	buf = binary.AppendUvarint(buf, uint64(ep.viaPort))
	var err error
	if buf, err = wire.AppendSet(buf, set); err != nil {
		return nil, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(trees)))
	for _, tid := range sortutil.Keys(trees) {
		buf = binary.AppendUvarint(buf, uint64(tid))
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// SnapshotDigest validates the snapshot framing and returns its SHA-256
// digest (the digest the stream itself carries, verified against the
// content).
func SnapshotDigest(snap []byte) ([snapshotDigestLen]byte, error) {
	var d [snapshotDigestLen]byte
	if len(snap) < len(snapshotMagic)+1+snapshotDigestLen {
		return d, fmt.Errorf("core: snapshot too short (%d bytes)", len(snap))
	}
	if string(snap[:len(snapshotMagic)]) != snapshotMagic {
		return d, fmt.Errorf("core: bad snapshot magic")
	}
	if v := snap[len(snapshotMagic)]; v != SnapshotVersion {
		return d, fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	body, tail := snap[:len(snap)-snapshotDigestLen], snap[len(snap)-snapshotDigestLen:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], tail) {
		return d, fmt.Errorf("core: snapshot digest mismatch")
	}
	copy(d[:], tail)
	return d, nil
}

// snapReader is a cursor over the snapshot body with latching errors, so
// decode code reads linearly and checks once per logical section.
type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("core: snapshot: "+format, args...)
	}
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail("truncated string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *snapReader) set() dz.Set {
	if r.err != nil {
		return nil
	}
	s, rest, err := wire.ReadSet(r.b)
	if err != nil {
		r.fail("%v", err)
		return nil
	}
	r.b = rest
	return s
}

func (r *snapReader) expr() dz.Expr {
	if r.err != nil {
		return ""
	}
	e, rest, err := wire.ReadExpr(r.b)
	if err != nil {
		r.fail("%v", err)
		return ""
	}
	r.b = rest
	return e
}

func (r *snapReader) memberSets() map[string]dz.Set {
	n := r.uvarint()
	m := make(map[string]dz.Set, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		id := r.str()
		m[id] = r.set()
	}
	return m
}

// RestoreController reconstructs a controller from a snapshot taken by
// EncodeSnapshot. The graph, programmer, and options must describe the
// same deployment the snapshot was taken in (in particular the same
// partition); the restored controller re-derives spanning trees and path
// contributions from the serialised registries and adopts the installed
// map verbatim — it performs no southbound calls, so a follow-up ResyncAll
// reconciles whatever the switches actually hold.
func RestoreController(g *topo.Graph, prog FlowProgrammer, snap []byte, opts ...Option) (*Controller, error) {
	if _, err := SnapshotDigest(snap); err != nil {
		return nil, err
	}
	c, err := NewController(g, prog, opts...)
	if err != nil {
		return nil, err
	}
	body := snap[len(snapshotMagic)+1 : len(snap)-snapshotDigestLen]
	if len(body) < 12 {
		return nil, fmt.Errorf("core: snapshot header truncated")
	}
	epoch := binary.BigEndian.Uint32(body)
	jseq := binary.BigEndian.Uint64(body[4:])
	r := &snapReader{b: body[12:]}

	if part := int(r.varint()); r.err == nil && part != c.partition {
		return nil, fmt.Errorf("core: snapshot of partition %d restored into partition %d", part, c.partition)
	}
	c.epoch = epoch
	c.jseq = jseq
	c.nextTree = TreeID(r.uvarint())

	// Trees: spanning trees are recomputed over the current topology.
	nTrees := r.uvarint()
	for i := uint64(0); i < nTrees && r.err == nil; i++ {
		t := &tree{
			id:   TreeID(r.uvarint()),
			root: topo.NodeID(r.uvarint()),
		}
		t.set = r.set()
		t.pubs = r.memberSets()
		t.subs = r.memberSets()
		if r.err != nil {
			break
		}
		span, err := g.ShortestPathTree(t.root, c.includeFunc())
		if err != nil {
			return nil, fmt.Errorf("core: restore tree %d: %w", t.id, err)
		}
		t.span = span
		c.trees[t.id] = t
		c.treeIdx.add(t.id, t.set)
		c.inst.treeDz.With(treeLabel(t.id)).Set(int64(len(t.set)))
	}

	// Registries.
	nPubs := r.uvarint()
	for i := uint64(0); i < nPubs && r.err == nil; i++ {
		id, ep, set, trees := readClient(r)
		c.pubs[id] = &publisher{id: id, ep: ep, adv: set, trees: trees}
	}
	nSubs := r.uvarint()
	for i := uint64(0); i < nSubs && r.err == nil; i++ {
		id, ep, set, trees := readClient(r)
		c.subs[id] = &subscriber{id: id, ep: ep, sub: set, trees: trees}
	}

	// Installed flow map, adopted verbatim.
	nSw := r.uvarint()
	for i := uint64(0); i < nSw && r.err == nil; i++ {
		sw := topo.NodeID(r.uvarint())
		nFlows := r.uvarint()
		flows := make(map[dz.Expr]installedFlow, nFlows)
		for j := uint64(0); j < nFlows && r.err == nil; j++ {
			e := r.expr()
			f := installedFlow{
				id:       openflow.FlowID(r.uvarint()),
				priority: int(r.uvarint()),
			}
			nActs := r.uvarint()
			for k := uint64(0); k < nActs && r.err == nil; k++ {
				a := openflow.Action{OutPort: openflow.PortID(r.uvarint())}
				if r.err == nil && len(r.b) == 0 {
					r.fail("truncated action")
					break
				}
				if r.err == nil {
					hasDest := r.b[0]
					r.b = r.b[1:]
					if hasDest != 0 {
						if len(r.b) < 16 {
							r.fail("truncated action address")
							break
						}
						var b16 [16]byte
						copy(b16[:], r.b[:16])
						a.SetDest = netip.AddrFrom16(b16)
						r.b = r.b[16:]
					}
				}
				f.actions = append(f.actions, a)
			}
			flows[e] = f
		}
		c.installed[sw] = flows
	}
	if r.err == nil && len(r.b) != 0 {
		r.fail("%d trailing bytes", len(r.b))
	}
	if r.err != nil {
		return nil, r.err
	}

	// Re-derive the path-contribution state from the canonical registries.
	// Piecewise-accumulated contributions can be finer-grained than this
	// canonical rebuild (same situation as RebuildTrees); the derived
	// forwarding behaviour is identical, and the post-takeover resync
	// rewrites switch tables to the canonical form.
	touched := make(touchedSet)
	var rep ReconfigReport
	for _, tid := range sortutil.Keys(c.trees) {
		t := c.trees[tid]
		for _, pid := range sortutil.Keys(t.pubs) {
			pub := c.pubs[pid]
			if pub == nil {
				return nil, fmt.Errorf("core: restore: tree %d references unknown publisher %q", tid, pid)
			}
			for _, sid := range sortutil.Keys(t.subs) {
				sub := c.subs[sid]
				if sub == nil {
					return nil, fmt.Errorf("core: restore: tree %d references unknown subscriber %q", tid, sid)
				}
				ov := t.pubs[pid].Intersect(t.subs[sid])
				if ov.IsEmpty() {
					continue
				}
				if err := c.addPathContributions(t, pub, sub, ov, touched, &rep); err != nil {
					return nil, fmt.Errorf("core: restore contributions: %w", err)
				}
			}
		}
	}
	return c, nil
}

// readClient reads one registry entry written by appendClient.
func readClient(r *snapReader) (string, endpoint, dz.Set, map[TreeID]bool) {
	id := r.str()
	ep := endpoint{
		node:    topo.NodeID(r.uvarint()),
		viaPort: openflow.PortID(r.uvarint()),
	}
	set := r.set()
	n := r.uvarint()
	trees := make(map[TreeID]bool, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		trees[TreeID(r.uvarint())] = true
	}
	return id, ep, set, trees
}
