package core_test

import (
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/space"
	"pleroma/internal/wire"
)

func TestMemJournalSemantics(t *testing.T) {
	j := core.NewMemJournal()
	set := dz.NewSet(dz.Expr("01"))
	for seq := uint64(1); seq <= 5; seq++ {
		if err := j.Append(wire.Record{Op: wire.OpAdvertise, ID: "p", Seq: seq, Node: 1, Set: set}); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != 5 || j.LastSeq() != 5 {
		t.Fatalf("Len=%d LastSeq=%d, want 5/5", j.Len(), j.LastSeq())
	}

	// Non-increasing sequence numbers are a split-brain symptom and must
	// be rejected.
	if err := j.Append(wire.Record{Op: wire.OpAdvertise, ID: "p", Seq: 5, Node: 1, Set: set}); err == nil {
		t.Fatal("duplicate seq must be rejected")
	}
	if err := j.Append(wire.Record{Op: wire.OpAdvertise, ID: "p", Seq: 3, Node: 1, Set: set}); err == nil {
		t.Fatal("regressing seq must be rejected")
	}

	recs, err := j.Records(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Seq != 3 || recs[2].Seq != 5 {
		t.Fatalf("Records(2): got %d recs, first/last %d/%d", len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}

	// Compaction drops the prefix but must not roll the sequence back:
	// post-truncate appends continue from the pre-truncate high mark.
	j.Truncate(4)
	if j.Len() != 1 || j.LastSeq() != 5 {
		t.Fatalf("after Truncate(4): Len=%d LastSeq=%d, want 1/5", j.Len(), j.LastSeq())
	}
	if err := j.Append(wire.Record{Op: wire.OpAdvertise, ID: "p", Seq: 4, Node: 1, Set: set}); err == nil {
		t.Fatal("seq below compacted high mark must be rejected")
	}
	if err := j.Append(wire.Record{Op: wire.OpAdvertise, ID: "p", Seq: 6, Node: 1, Set: set}); err != nil {
		t.Fatal(err)
	}
	j.Truncate(10)
	if j.Len() != 0 || j.LastSeq() != 6 {
		t.Fatalf("after full truncate: Len=%d LastSeq=%d, want 0/6", j.Len(), j.LastSeq())
	}
}

func TestControllerJournalsEveryOp(t *testing.T) {
	j := core.NewMemJournal()
	tb := newTestbed(t, core.WithJournal(j))
	hosts := tb.g.Hosts()

	adv := tb.decompose(t, space.NewFilter().Range("attr0", 0, 511))
	sub := tb.decompose(t, space.NewFilter().Range("attr0", 0, 255))
	if _, err := tb.ctl.Advertise("p1", hosts[0], adv); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("s1", hosts[7], sub); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.RebuildTrees(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Unsubscribe("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Unadvertise("p1"); err != nil {
		t.Fatal(err)
	}

	recs, err := j.Records(0)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []string{wire.OpAdvertise, wire.OpSubscribe, wire.OpReconfigure,
		wire.OpUnsubscribe, wire.OpUnadvertise}
	if len(recs) != len(wantOps) {
		t.Fatalf("journal holds %d records, want %d", len(recs), len(wantOps))
	}
	for i, rec := range recs {
		if rec.Op != wantOps[i] {
			t.Errorf("record %d: op %q, want %q", i, rec.Op, wantOps[i])
		}
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, rec.Seq, i+1)
		}
		if rec.Epoch != 0 {
			t.Errorf("record %d: epoch %d, want 0", i, rec.Epoch)
		}
	}
	if tb.ctl.JournalSeq() != uint64(len(wantOps)) {
		t.Errorf("controller JournalSeq=%d, want %d", tb.ctl.JournalSeq(), len(wantOps))
	}

	// A failed op must not be journaled: re-advertising a live id errors.
	if _, err := tb.ctl.Advertise("p1", hosts[0], adv); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Advertise("p1", hosts[1], adv); err == nil {
		t.Fatal("duplicate advertise must fail")
	}
	if got := j.Len(); got != len(wantOps)+1 {
		t.Errorf("journal holds %d records after failed op, want %d", got, len(wantOps)+1)
	}
}

func TestStandbyPromoteFromJournalOnly(t *testing.T) {
	j := core.NewMemJournal()
	tb := churnTestbed(t, core.WithJournal(j))

	snapBefore, err := tb.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The active controller "crashes": a standby replays the journal from
	// genesis against the same network and takes over.
	standby := core.NewStandby(tb.g, tb.dp, j, core.WithHostAddr(netem.HostAddr))
	promoted, rep, err := standby.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromSnapshot {
		t.Error("no snapshot was observed, FromSnapshot must be false")
	}
	if rep.Replayed != j.Len() {
		t.Errorf("Replayed=%d, want %d", rep.Replayed, j.Len())
	}
	if rep.Epoch != 1 || promoted.Epoch() != 1 {
		t.Errorf("promoted epoch=%d/%d, want 1", rep.Epoch, promoted.Epoch())
	}
	if err := promoted.VerifyTables(); err != nil {
		t.Fatalf("promoted controller out of sync: %v", err)
	}

	// Modulo the epoch bump, the replayed controller must reconstruct the
	// dead one's exact state: same snapshot bytes, hence same digest.
	promoted.SetEpoch(0)
	snapAfter, err := promoted.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := core.SnapshotDigest(snapBefore)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := core.SnapshotDigest(snapAfter)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("journal replay did not reconstruct the pre-crash state")
	}

	// The promoted controller inherited the journal: new ops append under
	// the bumped epoch, continuing the sequence.
	promoted.SetEpoch(1)
	hosts := tb.g.Hosts()
	set := tb.decompose(t, space.NewFilter().Range("attr1", 0, 127))
	if _, err := promoted.Subscribe("post-failover", hosts[2], set); err != nil {
		t.Fatal(err)
	}
	recs, err := j.Records(0)
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last.Op != wire.OpSubscribe || last.ID != "post-failover" || last.Epoch != 1 {
		t.Errorf("post-takeover record = %+v, want epoch-1 subscribe", last)
	}
}

func TestStandbyPromoteFromSnapshotPlusSuffix(t *testing.T) {
	j := core.NewMemJournal()
	tb := churnTestbed(t, core.WithJournal(j))
	hosts := tb.g.Hosts()

	// Checkpoint: snapshot + compact, then keep mutating.
	snap, err := tb.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	j.Truncate(tb.ctl.JournalSeq())
	set := tb.decompose(t, space.NewFilter().Range("attr0", 300, 600))
	if _, err := tb.ctl.Subscribe("late", hosts[1], set); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Unsubscribe("s3"); err != nil {
		t.Fatal(err)
	}
	suffix := j.Len()

	standby := core.NewStandby(tb.g, tb.dp, j, core.WithHostAddr(netem.HostAddr))
	if err := standby.ObserveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	promoted, rep, err := standby.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FromSnapshot {
		t.Error("FromSnapshot must be true")
	}
	if rep.Replayed != suffix {
		t.Errorf("Replayed=%d, want the %d-record suffix", rep.Replayed, suffix)
	}
	if err := promoted.VerifyTables(); err != nil {
		t.Fatalf("promoted controller out of sync: %v", err)
	}

	// Equivalence against the dead controller's final state.
	wantSnap, err := tb.ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	promoted.SetEpoch(0)
	gotSnap, err := promoted.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	dWant, _ := core.SnapshotDigest(wantSnap)
	dGot, err := core.SnapshotDigest(gotSnap)
	if err != nil {
		t.Fatal(err)
	}
	if dWant != dGot {
		t.Fatal("snapshot+suffix replay did not reconstruct the pre-crash state")
	}

	// A standby that never observed a snapshot cannot replay a compacted
	// journal — the takeover must be refused, not silently wrong.
	blind := core.NewStandby(tb.g, tb.dp, j, core.WithHostAddr(netem.HostAddr))
	if _, _, err := blind.Promote(); err == nil {
		t.Fatal("promote across a compaction gap without a snapshot must fail")
	}

	// A second failover chains: checkpoint the new active, fail it, and the
	// next incarnation's epoch moves strictly past epoch 1.
	promoted.SetEpoch(1)
	snap2, err := promoted.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	j.Truncate(promoted.JournalSeq())
	standby2 := core.NewStandby(tb.g, tb.dp, j, core.WithHostAddr(netem.HostAddr))
	if err := standby2.ObserveSnapshot(snap2); err != nil {
		t.Fatal(err)
	}
	promoted2, rep2, err := standby2.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Epoch != 2 || promoted2.Epoch() != 2 {
		t.Errorf("second failover epoch=%d/%d, want 2", rep2.Epoch, promoted2.Epoch())
	}
}
