package core

import (
	"fmt"
	"sort"

	"pleroma/internal/dz"
	"pleroma/internal/openflow"
	"pleroma/internal/sortutil"
	"pleroma/internal/topo"
	"pleroma/internal/wire"
)

// Advertise processes an advertisement from a publisher host (Algorithm 1,
// lines 1–15): the publisher joins every tree whose DZ overlaps the
// advertisement, a new tree is created for uncovered subspaces, and routes
// to all matching subscribers are installed. The controller takes
// ownership of set; the caller must not modify it afterwards.
func (c *Controller) Advertise(id string, host topo.NodeID, set dz.Set) (ReconfigReport, error) {
	ep, err := c.hostEndpoint(host)
	if err != nil {
		return ReconfigReport{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.advertise(id, ep, set)
}

// AdvertiseVirtual registers an external advertisement arriving from a
// neighbouring partition through the given border switch port (Section
// 4.2): the virtual host behaves like a publisher attached to that switch.
func (c *Controller) AdvertiseVirtual(id string, borderSwitch topo.NodeID, viaPort openflow.PortID, set dz.Set) (ReconfigReport, error) {
	ep, err := c.virtualEndpoint(borderSwitch, viaPort)
	if err != nil {
		return ReconfigReport{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.advertise(id, ep, set)
}

func (c *Controller) advertise(id string, ep endpoint, set dz.Set) (rep ReconfigReport, err error) {
	if _, dup := c.pubs[id]; dup {
		return rep, fmt.Errorf("%w: publisher %q", ErrDuplicateClient, id)
	}
	set = c.truncate(set)
	if set.IsEmpty() {
		return rep, fmt.Errorf("core: advertisement %q has empty DZ set", id)
	}
	span, start := c.beginOp(opAdvertise, func() string { return id + " " + set.String() })
	defer func() { c.endOp(opAdvertise, span, start, &rep, err) }()
	pub := &publisher{id: id, ep: ep, adv: set, trees: make(map[TreeID]bool)}
	c.pubs[id] = pub
	c.inst.advertise.Inc()

	touched := make(touchedSet)
	for _, dzi := range set {
		covered := dz.Set(nil)
		for _, tid := range c.treeIdx.overlapping(dzi) {
			t := c.trees[tid]
			overlap := t.set.IntersectExpr(dzi) // DZ^t(p) part from dz_i
			covered = covered.Union(overlap)
			c.joinTreeAsPublisher(t, pub, overlap, &rep)
			if err := c.addFlowMultSub(t, pub, overlap, touched, &rep); err != nil {
				return rep, err
			}
		}
		uncovered := dz.Set{dzi}.Subtract(covered)
		if !uncovered.IsEmpty() {
			t, err := c.createTree(pub, uncovered, &rep)
			if err != nil {
				return rep, err
			}
			if err := c.addFlowMultSub(t, pub, uncovered, touched, &rep); err != nil {
				return rep, err
			}
		}
	}
	if err := c.mergeTreesIfNeeded(touched, &rep); err != nil {
		return rep, err
	}
	if err := c.refresh(touched, &rep); err != nil {
		return rep, err
	}
	if err := c.journalOp(wire.OpAdvertise, id, ep, set); err != nil {
		return rep, err
	}
	c.logOp("advertise", id, rep)
	return rep, nil
}

// Subscribe processes a subscription from a host (Algorithm 1, lines
// 16–25): the subscriber joins every overlapping tree and paths from all
// publishers with overlapping advertisements are installed. A subscription
// that overlaps no tree is stored at the controller and revisited when
// trees change. The controller takes ownership of set; the caller must not
// modify it afterwards.
func (c *Controller) Subscribe(id string, host topo.NodeID, set dz.Set) (ReconfigReport, error) {
	ep, err := c.hostEndpoint(host)
	if err != nil {
		return ReconfigReport{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subscribe(id, ep, set)
}

// SubscribeVirtual registers an external subscription arriving from a
// neighbouring partition via a border switch port.
func (c *Controller) SubscribeVirtual(id string, borderSwitch topo.NodeID, viaPort openflow.PortID, set dz.Set) (ReconfigReport, error) {
	ep, err := c.virtualEndpoint(borderSwitch, viaPort)
	if err != nil {
		return ReconfigReport{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subscribe(id, ep, set)
}

func (c *Controller) subscribe(id string, ep endpoint, set dz.Set) (rep ReconfigReport, err error) {
	if _, dup := c.subs[id]; dup {
		return rep, fmt.Errorf("%w: subscriber %q", ErrDuplicateClient, id)
	}
	set = c.truncate(set)
	if set.IsEmpty() {
		return rep, fmt.Errorf("core: subscription %q has empty DZ set", id)
	}
	span, start := c.beginOp(opSubscribe, func() string { return id + " " + set.String() })
	defer func() { c.endOp(opSubscribe, span, start, &rep, err) }()
	sub := &subscriber{id: id, ep: ep, sub: set, trees: make(map[TreeID]bool)}
	c.subs[id] = sub
	c.inst.subscribe.Inc()

	touched := make(touchedSet)
	for _, dzi := range set {
		for _, tid := range c.treeIdx.overlapping(dzi) {
			t := c.trees[tid]
			overlap := t.set.IntersectExpr(dzi) // DZ^t(s) part from dz_i
			c.joinTreeAsSubscriber(t, sub, overlap)
			for _, pid := range sortutil.Keys(t.pubs) {
				pubOverlap := t.pubs[pid]
				ov := overlap.Intersect(pubOverlap)
				if ov.IsEmpty() {
					continue
				}
				if err := c.addPathContributions(t, c.pubs[pid], sub, ov, touched, &rep); err != nil {
					return rep, err
				}
			}
		}
	}
	if len(sub.trees) == 0 {
		rep.Stored = true
		c.inst.storedSubs.Inc()
	}
	if err := c.refresh(touched, &rep); err != nil {
		return rep, err
	}
	if err := c.journalOp(wire.OpSubscribe, id, ep, set); err != nil {
		return rep, err
	}
	c.logOp("subscribe", id, rep)
	return rep, nil
}

// Unsubscribe removes a subscription: previously established paths are
// torn down, deleting flows no other path needs and downgrading shared
// ones (Section 3.3.3).
func (c *Controller) Unsubscribe(id string) (rep ReconfigReport, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sub, ok := c.subs[id]
	if !ok {
		return rep, fmt.Errorf("%w: subscriber %q", ErrUnknownClient, id)
	}
	span, start := c.beginOp(opUnsubscribe, func() string { return id })
	defer func() { c.endOp(opUnsubscribe, span, start, &rep, err) }()
	c.inst.unsubscribe.Inc()
	touched := make(touchedSet)
	c.contribs.removeBySub(id, touched)
	for tid := range sub.trees {
		if t, ok := c.trees[tid]; ok {
			delete(t.subs, id)
		}
	}
	delete(c.subs, id)
	if err := c.refresh(touched, &rep); err != nil {
		return rep, err
	}
	if err := c.journalOp(wire.OpUnsubscribe, id, endpoint{}, nil); err != nil {
		return rep, err
	}
	c.logOp("unsubscribe", id, rep)
	return rep, nil
}

// Unadvertise removes an advertisement. Trees left without any publisher
// are dismantled; their subscribers fall back to stored state for the
// affected subspaces.
func (c *Controller) Unadvertise(id string) (rep ReconfigReport, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pub, ok := c.pubs[id]
	if !ok {
		return rep, fmt.Errorf("%w: publisher %q", ErrUnknownClient, id)
	}
	span, start := c.beginOp(opUnadvertise, func() string { return id })
	defer func() { c.endOp(opUnadvertise, span, start, &rep, err) }()
	c.inst.unadvertise.Inc()
	touched := make(touchedSet)
	c.contribs.removeByPub(id, touched)
	for tid := range pub.trees {
		t, ok := c.trees[tid]
		if !ok {
			continue
		}
		delete(t.pubs, id)
		if len(t.pubs) == 0 {
			c.dismantleTree(t, touched)
		}
	}
	delete(c.pubs, id)
	if err := c.refresh(touched, &rep); err != nil {
		return rep, err
	}
	if err := c.journalOp(wire.OpUnadvertise, id, endpoint{}, nil); err != nil {
		return rep, err
	}
	c.logOp("unadvertise", id, rep)
	return rep, nil
}

// logOp emits one structured reconfiguration summary.
func (c *Controller) logOp(op, id string, rep ReconfigReport) {
	if c.log == nil {
		return
	}
	c.log.Debug("reconfiguration",
		"op", op,
		"client", id,
		"flowAdds", rep.FlowAdds,
		"flowDeletes", rep.FlowDeletes,
		"flowModifies", rep.FlowModifies,
		"treesCreated", rep.TreesCreated,
		"treesMerged", rep.TreesMerged,
		"routes", rep.RoutesComputed,
		"southbound", rep.SouthboundCalls,
		"stored", rep.Stored,
	)
}

// hostEndpoint validates a regular client location.
func (c *Controller) hostEndpoint(host topo.NodeID) (endpoint, error) {
	n, err := c.g.Node(host)
	if err != nil {
		return endpoint{}, err
	}
	if n.Kind != topo.KindHost {
		return endpoint{}, fmt.Errorf("core: node %d (%s) is not a host", host, n.Name)
	}
	if !c.inPartition(host) {
		return endpoint{}, fmt.Errorf("%w: host %d", ErrForeignNode, host)
	}
	return endpoint{node: host}, nil
}

// virtualEndpoint validates a virtual client location at a border switch.
func (c *Controller) virtualEndpoint(sw topo.NodeID, viaPort openflow.PortID) (endpoint, error) {
	n, err := c.g.Node(sw)
	if err != nil {
		return endpoint{}, err
	}
	if n.Kind != topo.KindSwitch {
		return endpoint{}, fmt.Errorf("core: node %d (%s) is not a switch", sw, n.Name)
	}
	if !c.inPartition(sw) {
		return endpoint{}, fmt.Errorf("%w: switch %d", ErrForeignNode, sw)
	}
	if viaPort == 0 {
		return endpoint{}, fmt.Errorf("core: virtual endpoint needs a border port")
	}
	if _, ok := c.g.PortToPeer(sw, viaPort); !ok {
		return endpoint{}, fmt.Errorf("core: switch %d has no port %d", sw, viaPort)
	}
	return endpoint{node: sw, viaPort: viaPort}, nil
}

// joinTreeAsPublisher records DZ^t(p) for a publisher joining a tree.
func (c *Controller) joinTreeAsPublisher(t *tree, pub *publisher, overlap dz.Set, rep *ReconfigReport) {
	if !pub.trees[t.id] {
		pub.trees[t.id] = true
		rep.TreesJoined++
	}
	t.pubs[pub.id] = t.pubs[pub.id].Union(overlap)
}

// joinTreeAsSubscriber records DZ^t(s) for a subscriber joining a tree.
func (c *Controller) joinTreeAsSubscriber(t *tree, sub *subscriber, overlap dz.Set) {
	sub.trees[t.id] = true
	t.subs[sub.id] = t.subs[sub.id].Union(overlap)
}

// addFlowMultSub implements the procedure of Algorithm 1 (lines 26–30):
// every subscriber whose subscription overlaps the publisher's new tree
// subspaces gets a path from the publisher.
func (c *Controller) addFlowMultSub(t *tree, pub *publisher, set dz.Set,
	touched touchedSet, rep *ReconfigReport) error {
	for _, sid := range sortutil.Keys(c.subs) {
		sub := c.subs[sid]
		ov := set.Intersect(sub.sub)
		if ov.IsEmpty() {
			continue
		}
		c.joinTreeAsSubscriber(t, sub, ov)
		if err := c.addPathContributions(t, pub, sub, ov, touched, rep); err != nil {
			return err
		}
	}
	return nil
}

// createTree builds a new dissemination tree rooted at the publisher
// (Section 3.2, procedure createTree): a shortest-path tree over the
// partition.
func (c *Controller) createTree(pub *publisher, set dz.Set, rep *ReconfigReport) (*tree, error) {
	span, err := c.g.ShortestPathTree(pub.ep.node, c.includeFunc())
	if err != nil {
		return nil, fmt.Errorf("core: create tree: %w", err)
	}
	c.nextTree++
	// set is always a freshly computed uncovered remainder that no caller
	// retains, and dz.Set operations never mutate in place — aliasing it
	// into the tree is safe and saves two clones per tree creation.
	t := &tree{
		id:   c.nextTree,
		set:  set,
		span: span,
		root: pub.ep.node,
		pubs: map[string]dz.Set{pub.id: set},
		subs: make(map[string]dz.Set),
	}
	pub.trees[t.id] = true
	c.trees[t.id] = t
	c.treeIdx.add(t.id, t.set)
	c.inst.treesCreated.Inc()
	c.inst.treeDz.With(treeLabel(t.id)).Set(int64(len(t.set)))
	rep.TreesCreated++
	if sp := c.span; sp != nil {
		sp.Event("tree created", "tree", treeLabel(t.id), "dz", t.set.String())
	}
	if c.log != nil {
		c.log.Debug("tree created", "tree", int(t.id), "root", int(t.root), "dz", t.set.String())
	}
	return t, nil
}

// dismantleTree removes a tree and all its residual state.
func (c *Controller) dismantleTree(t *tree, touched touchedSet) {
	c.contribs.removeByTree(t.id, touched)
	for sid := range t.subs {
		if s, ok := c.subs[sid]; ok {
			delete(s.trees, t.id)
		}
	}
	for pid := range t.pubs {
		if p, ok := c.pubs[pid]; ok {
			delete(p.trees, t.id)
		}
	}
	c.treeIdx.remove(t.set)
	delete(c.trees, t.id)
	c.inst.treeDz.Delete(treeLabel(t.id))
	if sp := c.span; sp != nil {
		sp.Event("tree dismantled", "tree", treeLabel(t.id))
	}
}

// mergeTreesIfNeeded merges trees while their number exceeds the
// configured threshold (Section 3.2). The pair whose DZ sets share the
// longest common prefix is merged first, so subspaces that canonicalise
// into a coarser one (the paper's {0000,0010}+{0001,0011} ⇒ {00} example)
// collapse naturally.
func (c *Controller) mergeTreesIfNeeded(touched touchedSet, rep *ReconfigReport) error {
	if c.maxTrees <= 0 {
		return nil
	}
	for len(c.trees) > c.maxTrees && len(c.trees) >= 2 {
		t1, t2 := c.pickMergePair()
		if t1 == nil {
			return nil
		}
		if err := c.mergeTrees(t1, t2, touched, rep); err != nil {
			return err
		}
	}
	return nil
}

// pickMergePair chooses the two trees with the highest merge affinity
// (longest common dz prefix between their DZ sets; ties by lower IDs).
func (c *Controller) pickMergePair() (*tree, *tree) {
	trees := c.sortedTrees()
	if len(trees) < 2 {
		return nil, nil
	}
	bestI, bestJ, bestAff := 0, 1, -1
	for i := 0; i < len(trees); i++ {
		for j := i + 1; j < len(trees); j++ {
			aff := mergeAffinity(trees[i].set, trees[j].set)
			if aff > bestAff {
				bestI, bestJ, bestAff = i, j, aff
			}
		}
	}
	return trees[bestI], trees[bestJ]
}

func mergeAffinity(a, b dz.Set) int {
	best := 0
	for _, x := range a {
		for _, y := range b {
			if l := x.CommonPrefix(y).Len(); l > best {
				best = l
			}
		}
	}
	return best
}

// mergeTrees folds t2 into t1: DZ sets union (and canonicalise into
// coarser subspaces where siblings meet), publisher/subscriber overlaps
// are recomputed against the merged set, and all paths of both trees are
// rebuilt on t1's spanning tree.
func (c *Controller) mergeTrees(t1, t2 *tree, touched touchedSet, rep *ReconfigReport) error {
	c.contribs.removeByTree(t1.id, touched)
	c.contribs.removeByTree(t2.id, touched)

	// Re-index under the merged set: members may coarsen when sibling
	// subspaces from the two trees meet, so remove-then-add is required.
	c.treeIdx.remove(t1.set)
	c.treeIdx.remove(t2.set)
	merged := t1.set.Union(t2.set)
	t1.set = merged
	c.treeIdx.add(t1.id, merged)

	// Union memberships.
	for pid := range t2.pubs {
		if p, ok := c.pubs[pid]; ok {
			delete(p.trees, t2.id)
			p.trees[t1.id] = true
		}
		if _, ok := t1.pubs[pid]; !ok {
			t1.pubs[pid] = nil
		}
	}
	for sid := range t2.subs {
		if s, ok := c.subs[sid]; ok {
			delete(s.trees, t2.id)
			s.trees[t1.id] = true
		}
		if _, ok := t1.subs[sid]; !ok {
			t1.subs[sid] = nil
		}
	}
	delete(c.trees, t2.id)

	// Recompute overlaps against the merged DZ set.
	for pid := range t1.pubs {
		t1.pubs[pid] = c.pubs[pid].adv.Intersect(merged)
	}
	for sid := range t1.subs {
		t1.subs[sid] = c.subs[sid].sub.Intersect(merged)
	}

	// Rebuild all paths of the merged tree.
	for _, pid := range sortutil.Keys(t1.pubs) {
		pub := c.pubs[pid]
		pubSet := t1.pubs[pid]
		for _, sid := range sortutil.Keys(t1.subs) {
			sub := c.subs[sid]
			ov := pubSet.Intersect(t1.subs[sid])
			if ov.IsEmpty() {
				continue
			}
			if err := c.addPathContributions(t1, pub, sub, ov, touched, rep); err != nil {
				return err
			}
		}
	}
	c.inst.treesMerged.Inc()
	c.inst.treeDz.Delete(treeLabel(t2.id))
	c.inst.treeDz.With(treeLabel(t1.id)).Set(int64(len(t1.set)))
	rep.TreesMerged++
	if sp := c.span; sp != nil {
		sp.Event("trees merged", "into", treeLabel(t1.id), "from", treeLabel(t2.id), "dz", t1.set.String())
	}
	if c.log != nil {
		c.log.Debug("trees merged", "into", int(t1.id), "from", int(t2.id), "dz", t1.set.String())
	}
	return nil
}

// includeFunc returns the node filter for spanning trees of this
// controller's partition.
func (c *Controller) includeFunc() func(topo.NodeID) bool {
	if c.partition == AnyPartition {
		return nil
	}
	p := c.partition
	return func(n topo.NodeID) bool { return c.g.Partition(n) == p }
}

// sortedTrees returns the trees ordered by ID for deterministic iteration.
func (c *Controller) sortedTrees() []*tree {
	out := make([]*tree, 0, len(c.trees))
	for _, t := range c.trees {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// RebuildTrees recomputes every dissemination tree's spanning tree over
// the current topology and reinstalls all publisher→subscriber paths. The
// controller calls it after a topology change (e.g. a link failure): the
// spanning trees avoid failed links and the flow diff moves exactly the
// affected paths — the controller-side reaction to network dynamics the
// paper's conclusion names as follow-up work.
func (c *Controller) RebuildTrees() (rep ReconfigReport, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sp, start := c.beginOp(opRebuildTrees, func() string { return "" })
	defer func() { c.endOp(opRebuildTrees, sp, start, &rep, err) }()
	touched := make(touchedSet)
	for _, t := range c.sortedTrees() {
		span, err := c.g.ShortestPathTree(t.root, c.includeFunc())
		if err != nil {
			return rep, fmt.Errorf("core: rebuild tree %d: %w", t.id, err)
		}
		t.span = span
		c.contribs.removeByTree(t.id, touched)
		for _, pid := range sortutil.Keys(t.pubs) {
			pub := c.pubs[pid]
			pubSet := t.pubs[pid]
			for _, sid := range sortutil.Keys(t.subs) {
				sub := c.subs[sid]
				ov := pubSet.Intersect(t.subs[sid])
				if ov.IsEmpty() {
					continue
				}
				if err := c.addPathContributions(t, pub, sub, ov, touched, &rep); err != nil {
					return rep, err
				}
			}
		}
	}
	if err := c.refresh(touched, &rep); err != nil {
		return rep, err
	}
	if err := c.journalOp(wire.OpReconfigure, "", endpoint{}, nil); err != nil {
		return rep, err
	}
	c.logOp("rebuild-trees", "", rep)
	return rep, nil
}
