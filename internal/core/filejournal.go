package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"pleroma/internal/wire"
)

// CompactableJournal is the full journal surface the HA machinery needs:
// the controller's append sink, the standby's replay source, and the
// compaction/inspection hooks SnapshotPartition drives. MemJournal and
// FileJournal both implement it.
type CompactableJournal interface {
	Journal
	ReplaySource
	// Truncate drops every record with Seq <= upToSeq after a snapshot
	// covering that prefix was taken. Sequence numbering is unaffected.
	Truncate(upToSeq uint64) error
	// LastSeq returns the highest sequence number ever appended.
	LastSeq() uint64
	// Len returns the number of live (non-truncated) records.
	Len() int
}

var (
	_ CompactableJournal = (*MemJournal)(nil)
	_ CompactableJournal = (*FileJournal)(nil)
)

// FileJournal is the durable journal a pleroma-d daemon appends to so a
// restarted process can rebuild controller state from snapshot + journal
// suffix. On-disk format is a sequence of self-checking frames:
//
//	[len u32 BE][payload = wire.Record][crc32 u32 BE over payload]
//
// Append writes one frame and fsyncs before reporting success, so an
// acknowledged control op survives a crash. Open scans the file and
// truncates at the first incomplete or corrupt frame — a crash mid-append
// loses at most the unacknowledged tail, never a committed record.
type FileJournal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	recs    [][]byte // decoded-frame payloads, mirrors the file
	lastSeq uint64
}

const fileJournalMaxRecord = 1 << 20

// OpenFileJournal opens (creating if absent) the journal at path and
// recovers its contents. A torn final frame — short header, short payload,
// or CRC mismatch — is discarded and the file truncated to the last
// complete record, matching what a crashed append could have left behind.
func OpenFileJournal(path string) (*FileJournal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: open journal: %w", err)
	}
	j := &FileJournal{path: path, f: f}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover scans the frames in j.f, populating j.recs/j.lastSeq and
// truncating the file after the last valid frame.
func (j *FileJournal) recover() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("core: read journal: %w", err)
	}
	valid := 0
	for len(data)-valid >= 8 {
		b := data[valid:]
		n := int(binary.BigEndian.Uint32(b))
		if n == 0 || n > fileJournalMaxRecord || len(b) < 4+n+4 {
			break // torn or nonsense frame: stop at the last good record
		}
		payload := b[4 : 4+n]
		if binary.BigEndian.Uint32(b[4+n:]) != crc32.ChecksumIEEE(payload) {
			break
		}
		rec, err := wire.DecodeRecord(payload)
		if err != nil {
			break
		}
		if rec.Seq <= j.lastSeq {
			return fmt.Errorf("core: journal %s: sequence %d not after %d", j.path, rec.Seq, j.lastSeq)
		}
		j.recs = append(j.recs, append([]byte(nil), payload...))
		j.lastSeq = rec.Seq
		valid += 4 + n + 4
	}
	if valid != len(data) {
		if err := j.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("core: truncate torn journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(int64(valid), io.SeekStart); err != nil {
		return fmt.Errorf("core: seek journal: %w", err)
	}
	return nil
}

// Append encodes rec, writes one CRC frame, and fsyncs. Sequence numbers
// must be strictly increasing, as with MemJournal.
func (j *FileJournal) Append(rec wire.Record) error {
	payload, err := wire.EncodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("core: journal %s is closed", j.path)
	}
	if rec.Seq <= j.lastSeq {
		return fmt.Errorf("core: journal sequence %d not after %d", rec.Seq, j.lastSeq)
	}
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("core: append journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("core: sync journal: %w", err)
	}
	j.recs = append(j.recs, payload)
	j.lastSeq = rec.Seq
	return nil
}

// Records returns the decoded records with Seq > afterSeq, in order.
func (j *FileJournal) Records(afterSeq uint64) ([]wire.Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]wire.Record, 0, len(j.recs))
	for _, b := range j.recs {
		rec, err := wire.DecodeRecord(b)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt journal record: %w", err)
		}
		if rec.Seq <= afterSeq {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// Truncate compacts the on-disk log to the records with Seq > upToSeq by
// writing them to a temp file and renaming it over the journal, so a crash
// during compaction leaves either the old or the new file, never a mix.
func (j *FileJournal) Truncate(upToSeq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("core: journal %s is closed", j.path)
	}
	kept := make([][]byte, 0, len(j.recs))
	for _, b := range j.recs {
		rec, err := wire.DecodeRecord(b)
		if err != nil || rec.Seq > upToSeq {
			kept = append(kept, b)
		}
	}
	if len(kept) == len(j.recs) {
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("core: compact journal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	for _, payload := range kept {
		frame := make([]byte, 0, 8+len(payload))
		frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
		frame = append(frame, payload...)
		frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("core: compact journal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: compact journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: compact journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("core: compact journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("core: reopen compacted journal: %w", err)
	}
	j.f.Close()
	j.f = f
	j.recs = kept
	return nil
}

// Len returns the number of live (non-truncated) records.
func (j *FileJournal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// LastSeq returns the highest sequence number ever appended (or recovered).
func (j *FileJournal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSeq
}

// Close flushes and closes the underlying file. Further appends fail.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
