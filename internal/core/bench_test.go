package core_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// benchController builds a controller with `deployed` zipfian
// subscriptions already installed.
func benchController(b *testing.B, deployed int) (*core.Controller, *space.Schema, *workload.Generator, []topo.NodeID) {
	b.Helper()
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		b.Fatal(err)
	}
	dp := netem.New(g, sim.NewEngine())
	ctl, err := core.NewController(g, dp, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		b.Fatal(err)
	}
	sch, err := space.UniformSchema(3)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.New(sch, workload.Zipfian, 42)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	whole, err := sch.DecomposeLimited(space.NewFilter(), 24, 16)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ctl.Advertise("pub", hosts[0], whole); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < deployed; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Subscribe(fmt.Sprintf("pre%d", i), hosts[1+i%7], set); err != nil {
			b.Fatal(err)
		}
	}
	return ctl, sch, gen, hosts
}

func benchSubscribe(b *testing.B, deployed int) {
	ctl, sch, gen, hosts := benchController(b, deployed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Subscribe(fmt.Sprintf("b%d", i), hosts[1+i%7], set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubscribeAt100Deployed(b *testing.B)  { benchSubscribe(b, 100) }
func BenchmarkSubscribeAt1000Deployed(b *testing.B) { benchSubscribe(b, 1000) }
func BenchmarkSubscribeAt5000Deployed(b *testing.B) { benchSubscribe(b, 5000) }

func BenchmarkSubscribeUnsubscribeCycle(b *testing.B) {
	ctl, sch, gen, hosts := benchController(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("c%d", i)
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Subscribe(id, hosts[1+i%7], set); err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Unsubscribe(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubscribeParallel measures control-plane throughput with many
// concurrent subscribers. Workload generation and DZ decomposition run
// outside the controller's write lock, so on a multi-core runner the
// subscription pipeline overlaps with flow computation of other requests.
func BenchmarkSubscribeParallel(b *testing.B) {
	ctl, sch, _, hosts := benchController(b, 500)
	var worker, next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gen, err := workload.New(sch, workload.Zipfian, 1000+worker.Add(1))
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			i := next.Add(1)
			set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := ctl.Subscribe(fmt.Sprintf("p%d", i), hosts[1+int(i)%7], set); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkMixedChurnParallel interleaves subscribe/unsubscribe cycles
// with read-only queries — the mixed load the RWMutex model targets:
// readers proceed concurrently, writers serialize only against each
// other.
func BenchmarkMixedChurnParallel(b *testing.B) {
	ctl, sch, _, hosts := benchController(b, 500)
	var worker, next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gen, err := workload.New(sch, workload.Zipfian, 2000+worker.Add(1))
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			i := next.Add(1)
			if i%4 == 0 { // every fourth iteration is a read-only probe
				_ = ctl.Stats()
				_ = ctl.InstalledFlowCount()
				continue
			}
			id := fmt.Sprintf("m%d", i)
			set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := ctl.Subscribe(id, hosts[1+int(i)%7], set); err != nil {
				b.Error(err)
				return
			}
			if _, err := ctl.Unsubscribe(id); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkAdvertise(b *testing.B) {
	ctl, sch, gen, hosts := benchController(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bp%d", i)
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Advertise(id, hosts[i%8], set); err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Unadvertise(id); err != nil {
			b.Fatal(err)
		}
	}
}
