package core_test

import (
	"fmt"
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// benchController builds a controller with `deployed` zipfian
// subscriptions already installed.
func benchController(b *testing.B, deployed int) (*core.Controller, *space.Schema, *workload.Generator, []topo.NodeID) {
	b.Helper()
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		b.Fatal(err)
	}
	dp := netem.New(g, sim.NewEngine())
	ctl, err := core.NewController(g, dp, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		b.Fatal(err)
	}
	sch, err := space.UniformSchema(3)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.New(sch, workload.Zipfian, 42)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	whole, err := sch.DecomposeLimited(space.NewFilter(), 24, 16)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ctl.Advertise("pub", hosts[0], whole); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < deployed; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Subscribe(fmt.Sprintf("pre%d", i), hosts[1+i%7], set); err != nil {
			b.Fatal(err)
		}
	}
	return ctl, sch, gen, hosts
}

func benchSubscribe(b *testing.B, deployed int) {
	ctl, sch, gen, hosts := benchController(b, deployed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Subscribe(fmt.Sprintf("b%d", i), hosts[1+i%7], set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubscribeAt100Deployed(b *testing.B)  { benchSubscribe(b, 100) }
func BenchmarkSubscribeAt1000Deployed(b *testing.B) { benchSubscribe(b, 1000) }
func BenchmarkSubscribeAt5000Deployed(b *testing.B) { benchSubscribe(b, 5000) }

func BenchmarkSubscribeUnsubscribeCycle(b *testing.B) {
	ctl, sch, gen, hosts := benchController(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("c%d", i)
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Subscribe(id, hosts[1+i%7], set); err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Unsubscribe(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdvertise(b *testing.B) {
	ctl, sch, gen, hosts := benchController(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bp%d", i)
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), 24, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Advertise(id, hosts[i%8], set); err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Unadvertise(id); err != nil {
			b.Fatal(err)
		}
	}
}
