package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/sortutil"
	"pleroma/internal/topo"
)

// This file implements the controller's southbound fault-tolerance layer:
// the typed error taxonomy (SouthboundError, TransientError), the retry
// policy applied by flushOps, the degraded-switch quarantine, and the
// anti-entropy pass (Resync/ResyncAll) that recomputes each switch's
// desired table from the canonical contribution state, diffs it against
// both the controller's installed map and the switch's actual flows, and
// ships the minimal repair batch. Together they close the gap the paper's
// conclusion names as open: reacting to failures instead of assuming an
// always-healthy southbound channel.

// TransientError is implemented by programmer errors that a retry may
// resolve — an unreachable switch that restarts, a timed-out bundle, a
// short TCAM-pressure burst. Errors without this marker (or returning
// false) are permanent: retrying cannot help, so the control operation
// fails immediately.
type TransientError interface {
	error
	Transient() bool
}

// isTransient classifies a programmer error against the taxonomy.
func isTransient(err error) bool {
	var te TransientError
	return errors.As(err, &te) && te.Transient()
}

// SouthboundError wraps a programmer failure with the switch, the failing
// operation kind, the attempt count, and the transience classification.
// Control operations return it (wrapped) for permanent failures; transient
// failures that exhaust their retries are recorded in the degraded set
// instead and surface through DegradedSwitches.
type SouthboundError struct {
	// Sw is the switch the failing operation addressed.
	Sw topo.NodeID
	// Op is the kind of the first unacknowledged FlowMod.
	Op openflow.OpKind
	// Attempts counts southbound attempts made before giving up.
	Attempts int
	// Transient reports the taxonomy classification of Err.
	Transient bool
	// Err is the programmer's error.
	Err error
}

func (e *SouthboundError) Error() string {
	return fmt.Sprintf("core: %s flow on %d (attempt %d): %v", e.Op, e.Sw, e.Attempts, e.Err)
}

func (e *SouthboundError) Unwrap() error { return e.Err }

// RetryPolicy shapes how flushOps reacts to transient southbound errors:
// up to MaxAttempts total attempts, separated by capped exponential
// backoff (BaseBackoff doubling up to MaxBackoff), with the cumulative
// backoff of one flush bounded by OpDeadline. The zero value performs a
// single attempt.
type RetryPolicy struct {
	// MaxAttempts bounds total southbound attempts per flush (min 1).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; attempt n waits
	// BaseBackoff·2ⁿ, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = uncapped).
	MaxBackoff time.Duration
	// OpDeadline bounds the cumulative backoff of one flush; once a
	// further wait would exceed it the flush stops retrying (0 = no
	// deadline).
	OpDeadline time.Duration
	// Sleep waits between attempts; nil uses time.Sleep. Tests inject a
	// recorder, and simulation harnesses can advance virtual time instead
	// of blocking the process.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is a sensible production-shaped policy: four
// attempts, 2 ms → 100 ms capped backoff, half a second per operation.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseBackoff: 2 * time.Millisecond,
	MaxBackoff:  100 * time.Millisecond,
	OpDeadline:  500 * time.Millisecond,
}

// normalized returns the policy with usable defaults filled in.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff returns the wait before retry n (0-based), growing
// exponentially from BaseBackoff and capped at MaxBackoff.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < n && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

func (p RetryPolicy) sleep(d time.Duration) { p.Sleep(d) }

// DegradedSwitch describes one quarantined switch: its retries exhausted
// on a transient southbound error, its flow table lags the canonical
// state, and the next resync pass will heal it.
type DegradedSwitch struct {
	Sw topo.NodeID
	// Err is the southbound error that exhausted the retries.
	Err error
}

// DegradedSwitches returns the quarantined switches, ordered by ID.
func (c *Controller) DegradedSwitches() []DegradedSwitch {
	c.degradedMu.Lock()
	defer c.degradedMu.Unlock()
	out := make([]DegradedSwitch, 0, len(c.degraded))
	for sw, err := range c.degraded {
		out = append(out, DegradedSwitch{Sw: sw, Err: err})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sw < out[j].Sw })
	return out
}

// clearDegraded removes a switch from the quarantine; it reports whether
// the switch was quarantined.
func (c *Controller) clearDegraded(sw topo.NodeID) bool {
	c.degradedMu.Lock()
	defer c.degradedMu.Unlock()
	if _, ok := c.degraded[sw]; !ok {
		return false
	}
	delete(c.degraded, sw)
	return true
}

// isDegraded reports whether a switch is currently quarantined.
func (c *Controller) isDegraded(sw topo.NodeID) bool {
	c.degradedMu.Lock()
	defer c.degradedMu.Unlock()
	_, ok := c.degraded[sw]
	return ok
}

// ResyncReport summarises one anti-entropy pass.
type ResyncReport struct {
	// Switches counts the switches examined.
	Switches int
	// FlowAdds/FlowDeletes/FlowModifies count acknowledged repair ops.
	FlowAdds     int
	FlowDeletes  int
	FlowModifies int
	// Retries counts southbound retries during the repair flushes.
	Retries int
	// Healed counts switches that left the degraded set.
	Healed int
	// SouthboundCalls counts programmer invocations of the pass.
	SouthboundCalls int
	// StillDegraded lists switches that remain quarantined after the
	// pass (their repair flush failed transiently again), ordered by ID.
	StillDegraded []topo.NodeID
}

// Repaired returns the number of repair FlowMods the pass shipped.
func (r ResyncReport) Repaired() int {
	return r.FlowAdds + r.FlowDeletes + r.FlowModifies
}

// merge folds another report into r.
func (r *ResyncReport) merge(o ResyncReport) {
	r.Switches += o.Switches
	r.FlowAdds += o.FlowAdds
	r.FlowDeletes += o.FlowDeletes
	r.FlowModifies += o.FlowModifies
	r.Retries += o.Retries
	r.Healed += o.Healed
	r.SouthboundCalls += o.SouthboundCalls
	r.StillDegraded = append(r.StillDegraded, o.StillDegraded...)
}

// Resync runs the anti-entropy pass over one switch: the desired table is
// recomputed from the canonical contribution state, diffed against both
// the controller's installed map and the switch's actual flows (when the
// programmer implements FlowReader), and the minimal repair batch is
// shipped with the usual retry policy. On success the switch leaves the
// degraded set.
func (c *Controller) Resync(sw topo.NodeID) (ResyncReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sp, start := c.beginOp(opResync, func() string { return swLabel(sw) })
	var rr ResyncReport
	err := c.resyncSwitch(sw, &rr)
	c.endResync(opResync, sp, start, &rr, err)
	c.logResync(rr)
	return rr, err
}

// ResyncAll runs the anti-entropy pass over every switch the controller
// has state for — switches with contributions, installed flows, or a
// quarantine entry. The pass is best-effort: a permanent error on one
// switch does not stop the others; all permanent errors are joined into
// the returned error. Transient exhaustion re-quarantines silently, and
// the report's StillDegraded names the switches a later pass must revisit.
func (c *Controller) ResyncAll() (ResyncReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[topo.NodeID]bool)
	for sw := range c.contribs.refs {
		seen[sw] = true
	}
	for sw := range c.installed {
		seen[sw] = true
	}
	c.degradedMu.Lock()
	for sw := range c.degraded {
		seen[sw] = true
	}
	c.degradedMu.Unlock()
	sws := sortutil.Keys(seen)

	sp, start := c.beginOp(opResync, func() string { return "all" })
	var rr ResyncReport
	var errs []error
	for _, sw := range sws {
		var one ResyncReport
		if err := c.resyncSwitch(sw, &one); err != nil {
			errs = append(errs, err)
		}
		rr.merge(one)
	}
	err := errors.Join(errs...)
	c.endResync(opResync, sp, start, &rr, err)
	c.logResync(rr)
	return rr, err
}

// endResync closes the observation scope of a resync pass, mirroring
// endOp for the resync-shaped report.
func (c *Controller) endResync(op string, sp *obs.Span, start time.Time, rr *ResyncReport, err error) {
	c.span = nil
	c.inst.latency.With(op).Observe(time.Since(start))
	if sp == nil {
		return
	}
	sp.Event("report",
		"switches", strconv.Itoa(rr.Switches),
		"repaired", strconv.Itoa(rr.Repaired()),
		"healed", strconv.Itoa(rr.Healed),
		"stillDegraded", strconv.Itoa(len(rr.StillDegraded)),
	)
	sp.End(err)
}

func (c *Controller) logResync(rr ResyncReport) {
	if c.log == nil {
		return
	}
	c.log.Debug("resync",
		"switches", rr.Switches,
		"repaired", rr.Repaired(),
		"healed", rr.Healed,
		"stillDegraded", len(rr.StillDegraded),
	)
}

// actualFlow is one entry read back from (or assumed on) a switch.
type actualFlow struct {
	id       openflow.FlowID
	priority int
	actions  []openflow.Action
}

// resyncSwitch reconciles one switch. Callers hold c.mu.
func (c *Controller) resyncSwitch(sw topo.NodeID, rr *ResyncReport) error {
	rr.Switches++
	c.inst.resyncs.Inc()
	desired := c.desiredTable(sw)

	// Ground truth: the switch's actual flows when the programmer can
	// report them, the controller's installed map otherwise.
	actual := make(map[dz.Expr][]actualFlow)
	if c.reader != nil {
		flows, err := c.reader.Flows(sw)
		if err != nil {
			rr.StillDegraded = append(rr.StillDegraded, sw)
			return fmt.Errorf("core: resync switch %d: %w", sw, err)
		}
		for _, f := range flows {
			actual[f.Expr] = append(actual[f.Expr], actualFlow{f.ID, f.Priority, f.Actions})
		}
	} else {
		for e, fl := range c.installed[sw] {
			actual[e] = append(actual[e], actualFlow{fl.id, fl.priority, fl.actions})
		}
	}

	// Diff actual against desired into the minimal repair batch. Entries
	// that already match are kept verbatim (their IDs seed the rebuilt
	// installed map); a duplicate-expression table (which this controller
	// never produces, but a divergent switch might) is wiped and re-added.
	exprSet := make(map[dz.Expr]bool, len(actual)+len(desired))
	for e := range actual {
		exprSet[e] = true
	}
	for e := range desired {
		exprSet[e] = true
	}
	exprs := sortutil.Keys(exprSet)

	newInst := make(map[dz.Expr]installedFlow)
	var ops []openflow.FlowOp
	var metas []opMeta
	for _, e := range exprs {
		want, wanted := desired[e]
		have := actual[e]
		if !wanted || len(have) > 1 {
			for _, af := range have {
				ops = append(ops, openflow.DeleteOp(af.id))
				metas = append(metas, opMeta{expr: e})
			}
			have = nil
		}
		if !wanted {
			continue
		}
		actions := c.actionsFor(sw, want)
		prio := e.Len()
		switch {
		case len(have) == 1 && have[0].priority == prio && actionsEqual(have[0].actions, actions):
			newInst[e] = installedFlow{id: have[0].id, priority: prio, actions: actions}
		case len(have) == 1:
			ops = append(ops, openflow.ModifyOp(have[0].id, prio, actions))
			metas = append(metas, opMeta{expr: e, inst: installedFlow{id: have[0].id, priority: prio, actions: actions}})
		default:
			f, err := openflow.NewFlow(e, prio, actions...)
			if err != nil {
				return fmt.Errorf("core: resync switch %d: build flow: %w", sw, err)
			}
			ops = append(ops, openflow.AddOp(f))
			metas = append(metas, opMeta{expr: e, inst: installedFlow{priority: prio, actions: actions}})
		}
	}

	// Reset the installed map to the verified entries, then ship the
	// repair batch through the retrying flush (which fills in the rest as
	// the switch acknowledges, and re-quarantines on exhaustion).
	c.installed[sw] = newInst
	var rep ReconfigReport
	err := c.flushOps(sw, ops, metas, newInst, &rep)
	if len(newInst) == 0 {
		delete(c.installed, sw)
	}
	rr.FlowAdds += rep.FlowAdds
	rr.FlowDeletes += rep.FlowDeletes
	rr.FlowModifies += rep.FlowModifies
	rr.Retries += rep.Retries
	rr.SouthboundCalls += rep.SouthboundCalls
	repaired := rep.FlowAdds + rep.FlowDeletes + rep.FlowModifies
	c.inst.repairedFlows.Add(uint64(repaired))

	if err != nil {
		rr.StillDegraded = append(rr.StillDegraded, sw)
		return err
	}
	if repaired == len(ops) {
		// Every repair acknowledged and no re-quarantine during the flush:
		// the switch is consistent again, so a stale degraded entry from
		// before the pass can be dropped.
		if c.clearDegraded(sw) {
			rr.Healed++
		}
	} else {
		// The repair flush itself exhausted its retries; the quarantine
		// entry now holds the fresh error and a later pass must revisit.
		rr.StillDegraded = append(rr.StillDegraded, sw)
	}
	return nil
}
