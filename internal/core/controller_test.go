package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// testbed bundles a topology, data plane, and controller for tests.
type testbed struct {
	g    *topo.Graph
	eng  *sim.Engine
	dp   *netem.DataPlane
	ctl  *core.Controller
	sch  *space.Schema
	recv map[topo.NodeID][]netem.Delivery
}

func newTestbed(t *testing.T, opts ...core.Option) *testbed {
	t.Helper()
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	return newTestbedOn(t, g, opts...)
}

func newTestbedOn(t *testing.T, g *topo.Graph, opts ...core.Option) *testbed {
	t.Helper()
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	opts = append([]core.Option{core.WithHostAddr(netem.HostAddr)}, opts...)
	ctl, err := core.NewController(g, dp, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	tb := &testbed{g: g, eng: eng, dp: dp, ctl: ctl, sch: sch,
		recv: make(map[topo.NodeID][]netem.Delivery)}
	for _, h := range g.Hosts() {
		h := h
		if err := dp.ConfigureHost(h, netem.HostConfig{}, func(d netem.Delivery) {
			tb.recv[h] = append(tb.recv[h], d)
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// decompose converts a filter to its full-precision DZ set.
func (tb *testbed) decompose(t *testing.T, f space.Filter) dz.Set {
	t.Helper()
	set, err := tb.sch.Decompose(f, tb.sch.Geometry().MaxLen())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// publish encodes and sends an event at full dz precision.
func (tb *testbed) publish(t *testing.T, host topo.NodeID, vals ...uint32) space.Event {
	t.Helper()
	ev, err := tb.sch.NewEvent(vals...)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := tb.sch.Encode(ev, tb.sch.Geometry().MaxLen())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.dp.Publish(host, expr, ev, 64); err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestAdvertiseThenSubscribeDelivers(t *testing.T) {
	tb := newTestbed(t)
	hosts := tb.g.Hosts()
	pub, sub := hosts[0], hosts[7] // opposite pods

	adv := tb.decompose(t, space.NewFilter().Range("attr0", 0, 511))
	if rep, err := tb.ctl.Advertise("p1", pub, adv); err != nil {
		t.Fatal(err)
	} else if rep.TreesCreated != 1 {
		t.Errorf("TreesCreated=%d, want 1", rep.TreesCreated)
	}

	subSet := tb.decompose(t, space.NewFilter().Range("attr0", 0, 255))
	rep, err := tb.ctl.Subscribe("s1", sub, subSet)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stored {
		t.Error("overlapping subscription must not be stored")
	}
	if rep.FlowAdds == 0 {
		t.Error("subscription must install flows")
	}

	// Matching event reaches the subscriber.
	tb.publish(t, pub, 100, 500)
	// Non-matching event (attr0 > 255) must not.
	tb.publish(t, pub, 400, 500)
	tb.eng.Run()

	if got := len(tb.recv[sub]); got != 1 {
		t.Fatalf("subscriber received %d events, want 1", got)
	}
	if got := tb.recv[sub][0].Packet.Dst; got != netem.HostAddr(sub) {
		t.Errorf("terminal rewrite: dst=%v, want %v", got, netem.HostAddr(sub))
	}
	for _, h := range tb.g.Hosts() {
		if h != sub && len(tb.recv[h]) != 0 {
			t.Errorf("host %d spuriously received %d events", h, len(tb.recv[h]))
		}
	}
}

func TestStoredSubscriptionActivatesOnAdvertise(t *testing.T) {
	tb := newTestbed(t)
	hosts := tb.g.Hosts()
	pub, sub := hosts[1], hosts[6]

	subSet := tb.decompose(t, space.NewFilter().Range("attr1", 512, 1023))
	rep, err := tb.ctl.Subscribe("s1", sub, subSet)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stored {
		t.Error("subscription without trees must be stored")
	}
	if got := tb.ctl.StoredSubscriptions(); len(got) != 1 || got[0] != "s1" {
		t.Errorf("StoredSubscriptions=%v", got)
	}

	adv := tb.decompose(t, space.NewFilter().Range("attr1", 512, 1023))
	if _, err := tb.ctl.Advertise("p1", pub, adv); err != nil {
		t.Fatal(err)
	}
	if got := tb.ctl.StoredSubscriptions(); len(got) != 0 {
		t.Errorf("stored subscription must activate, still stored: %v", got)
	}

	tb.publish(t, pub, 0, 700)
	tb.eng.Run()
	if got := len(tb.recv[sub]); got != 1 {
		t.Errorf("subscriber received %d events, want 1", got)
	}
}

func TestPublisherJoinsExistingTree(t *testing.T) {
	tb := newTestbed(t)
	hosts := tb.g.Hosts()

	// Paper Section 3.2 case (1): DZ(p2)={11} joins the tree with DZ={1}.
	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	rep, err := tb.ctl.Advertise("p2", hosts[2], dz.NewSet("11"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TreesCreated != 0 || rep.TreesJoined != 1 {
		t.Errorf("rep=%+v, want join without creation", rep)
	}
	if got := len(tb.ctl.Trees()); got != 1 {
		t.Errorf("trees=%d, want 1", got)
	}
}

func TestAdvertiseCoveringExistingTreeCreatesRemainder(t *testing.T) {
	tb := newTestbed(t)
	hosts := tb.g.Hosts()

	// Paper Section 3.2 case (2): tree DZ={00} exists; DZ(p2)={0} joins it
	// and a new tree is created for the uncovered {01}.
	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet("00")); err != nil {
		t.Fatal(err)
	}
	rep, err := tb.ctl.Advertise("p2", hosts[3], dz.NewSet("0"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TreesJoined != 1 || rep.TreesCreated != 1 {
		t.Errorf("rep=%+v, want 1 join + 1 creation", rep)
	}
	trees := tb.ctl.Trees()
	if len(trees) != 2 {
		t.Fatalf("trees=%d, want 2", len(trees))
	}
	var union dz.Set
	for _, tr := range trees {
		union = union.Union(tr.DZ)
	}
	if !union.Equal(dz.NewSet("0")) {
		t.Errorf("tree DZ union=%v, want {0}", union)
	}
}

func TestTreeDZDisjointInvariant(t *testing.T) {
	tb := newTestbed(t)
	hosts := tb.g.Hosts()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		set := randomDzSet(r, 3, 6)
		if set.IsEmpty() {
			continue
		}
		if _, err := tb.ctl.Advertise(fmt.Sprintf("p%d", i), hosts[r.Intn(len(hosts))], set); err != nil {
			t.Fatal(err)
		}
		assertTreesDisjoint(t, tb.ctl)
	}
}

func assertTreesDisjoint(t *testing.T, ctl *core.Controller) {
	t.Helper()
	trees := ctl.Trees()
	for i := range trees {
		for j := i + 1; j < len(trees); j++ {
			if trees[i].DZ.OverlapsSet(trees[j].DZ) {
				t.Fatalf("trees %d and %d overlap: %v vs %v",
					trees[i].ID, trees[j].ID, trees[i].DZ, trees[j].DZ)
			}
		}
	}
}

func randomDzSet(r *rand.Rand, maxMembers, maxLen int) dz.Set {
	n := 1 + r.Intn(maxMembers)
	exprs := make([]dz.Expr, n)
	for i := range exprs {
		l := r.Intn(maxLen + 1)
		buf := make([]byte, l)
		for j := range buf {
			buf[j] = byte('0' + r.Intn(2))
		}
		exprs[i] = dz.Expr(buf)
	}
	return dz.NewSet(exprs...)
}

func TestUnsubscribeDowngradesToPriorState(t *testing.T) {
	// The delete-or-downgrade behaviour of Section 3.3.3: after s3
	// unsubscribes, every switch's flow table must be equivalent to the
	// state before s3 subscribed.
	tb := newTestbed(t)
	hosts := tb.g.Hosts()

	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("s1", hosts[4], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("s2", hosts[5], dz.NewSet("100")); err != nil {
		t.Fatal(err)
	}
	before := snapshotTables(t, tb)

	if _, err := tb.ctl.Subscribe("s3", hosts[6], dz.NewSet("10")); err != nil {
		t.Fatal(err)
	}
	middle := snapshotTables(t, tb)
	if tablesEqual(before, middle) {
		t.Fatal("s3's subscription must change some table")
	}

	if _, err := tb.ctl.Unsubscribe("s3"); err != nil {
		t.Fatal(err)
	}
	after := snapshotTables(t, tb)
	if !tablesEqual(before, after) {
		t.Errorf("unsubscription must restore tables\nbefore=%v\nafter=%v", before, after)
	}
}

// snapshotTables captures (switch, expr, priority, ports) tuples.
func snapshotTables(t *testing.T, tb *testbed) map[string]bool {
	t.Helper()
	snap := make(map[string]bool)
	for _, sw := range tb.g.Switches() {
		flows, err := tb.dp.Flows(sw)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range flows {
			snap[fmt.Sprintf("%d|%s|%d|%v", sw, f.Expr, f.Priority, f.Actions)] = true
		}
	}
	return snap
}

func tablesEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestUnsubscribeUnknown(t *testing.T) {
	tb := newTestbed(t)
	if _, err := tb.ctl.Unsubscribe("ghost"); !errors.Is(err, core.ErrUnknownClient) {
		t.Errorf("err=%v, want ErrUnknownClient", err)
	}
	if _, err := tb.ctl.Unadvertise("ghost"); !errors.Is(err, core.ErrUnknownClient) {
		t.Errorf("err=%v, want ErrUnknownClient", err)
	}
}

func TestDuplicateIDs(t *testing.T) {
	tb := newTestbed(t)
	hosts := tb.g.Hosts()
	if _, err := tb.ctl.Advertise("x", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Advertise("x", hosts[1], dz.NewSet("0")); !errors.Is(err, core.ErrDuplicateClient) {
		t.Errorf("err=%v, want ErrDuplicateClient", err)
	}
	if _, err := tb.ctl.Subscribe("y", hosts[2], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("y", hosts[3], dz.NewSet("0")); !errors.Is(err, core.ErrDuplicateClient) {
		t.Errorf("err=%v, want ErrDuplicateClient", err)
	}
}

func TestClientValidation(t *testing.T) {
	tb := newTestbed(t)
	sw := tb.g.Switches()[0]
	if _, err := tb.ctl.Advertise("p", sw, dz.NewSet("1")); err == nil {
		t.Error("advertising from a switch must fail")
	}
	if _, err := tb.ctl.Subscribe("s", topo.NodeID(999), dz.NewSet("1")); err == nil {
		t.Error("unknown node must fail")
	}
	if _, err := tb.ctl.Advertise("p", tb.g.Hosts()[0], nil); err == nil {
		t.Error("empty DZ set must fail")
	}
	if _, err := tb.ctl.AdvertiseVirtual("v", tb.g.Hosts()[0], 1, dz.NewSet("1")); err == nil {
		t.Error("virtual endpoint on host must fail")
	}
	if _, err := tb.ctl.AdvertiseVirtual("v", sw, 0, dz.NewSet("1")); err == nil {
		t.Error("virtual endpoint without port must fail")
	}
	if _, err := tb.ctl.AdvertiseVirtual("v", sw, 99, dz.NewSet("1")); err == nil {
		t.Error("virtual endpoint with bad port must fail")
	}
}

func TestUnadvertiseDismantlesEmptyTree(t *testing.T) {
	tb := newTestbed(t)
	hosts := tb.g.Hosts()
	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("s1", hosts[4], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if tb.ctl.InstalledFlowCount() == 0 {
		t.Fatal("flows must exist before unadvertise")
	}
	if _, err := tb.ctl.Unadvertise("p1"); err != nil {
		t.Fatal(err)
	}
	if got := len(tb.ctl.Trees()); got != 0 {
		t.Errorf("trees=%d, want 0", got)
	}
	if got := tb.ctl.InstalledFlowCount(); got != 0 {
		t.Errorf("flows=%d, want 0", got)
	}
	// The subscription is stored again.
	if got := tb.ctl.StoredSubscriptions(); len(got) != 1 || got[0] != "s1" {
		t.Errorf("StoredSubscriptions=%v", got)
	}
}

func TestUnadvertiseKeepsSharedTree(t *testing.T) {
	tb := newTestbed(t)
	hosts := tb.g.Hosts()
	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Advertise("p2", hosts[1], dz.NewSet("11")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("s1", hosts[5], dz.NewSet("11")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Unadvertise("p1"); err != nil {
		t.Fatal(err)
	}
	if got := len(tb.ctl.Trees()); got != 1 {
		t.Fatalf("trees=%d, want 1 (p2 still publishes)", got)
	}
	// p2's events still reach s1.
	tb.publish(t, hosts[1], 1000, 1000)
	tb.eng.Run()
	if got := len(tb.recv[hosts[5]]); got != 1 {
		t.Errorf("received=%d, want 1", got)
	}
}

func TestTreeMerging(t *testing.T) {
	tb := newTestbed(t, core.WithMaxTrees(2))
	hosts := tb.g.Hosts()
	// Four disjoint advertisements that canonicalise pairwise: the paper's
	// merge example {0000,0010} + {0001,0011} ⇒ {00}.
	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet("0000", "0010")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Advertise("p2", hosts[1], dz.NewSet("0001", "0011")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Advertise("p3", hosts[2], dz.NewSet("11")); err != nil {
		t.Fatal(err)
	}
	if got := len(tb.ctl.Trees()); got > 2 {
		t.Errorf("trees=%d, want ≤2 after merging", got)
	}
	assertTreesDisjoint(t, tb.ctl)
	st := tb.ctl.Stats()
	if st.TreesMerged == 0 {
		t.Error("merging must have happened")
	}
	// The {00} region lives in a single merged tree.
	found := false
	for _, tr := range tb.ctl.Trees() {
		if tr.DZ.Contains("00") {
			found = true
		}
	}
	if !found {
		t.Errorf("merged tree covering 00 missing: %v", tb.ctl.Trees())
	}
}

func TestTreeMergingPreservesDelivery(t *testing.T) {
	tb := newTestbed(t, core.WithMaxTrees(1))
	hosts := tb.g.Hosts()
	if _, err := tb.ctl.Subscribe("s1", hosts[6], dz.NewSet("00")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("s2", hosts[7], dz.NewSet("11")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet("00")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Advertise("p2", hosts[1], dz.NewSet("11")); err != nil {
		t.Fatal(err)
	}
	if got := len(tb.ctl.Trees()); got != 1 {
		t.Fatalf("trees=%d, want 1 after merge", got)
	}
	tb.publish(t, hosts[0], 0, 0)       // dz 00... → s1
	tb.publish(t, hosts[1], 1023, 1023) // dz 11... → s2
	tb.eng.Run()
	if len(tb.recv[hosts[6]]) != 1 || len(tb.recv[hosts[7]]) != 1 {
		t.Errorf("received s1=%d s2=%d, want 1/1",
			len(tb.recv[hosts[6]]), len(tb.recv[hosts[7]]))
	}
}

func TestContentDeliveryExactness(t *testing.T) {
	// With full-precision dz, delivery must match ground truth exactly:
	// every host with a matching subscription receives the event exactly
	// once; nobody else receives it.
	tb := newTestbed(t)
	hosts := tb.g.Hosts()
	r := rand.New(rand.NewSource(99))

	pub := hosts[0]
	advFilter := space.NewFilter() // whole space
	if _, err := tb.ctl.Advertise("p1", pub, tb.decompose(t, advFilter)); err != nil {
		t.Fatal(err)
	}

	filters := make(map[topo.NodeID][]space.Filter)
	subID := 0
	for _, h := range hosts[1:] {
		for k := 0; k < 3; k++ {
			lo0 := uint32(r.Intn(1024))
			hi0 := lo0 + uint32(r.Intn(int(1024-lo0)))
			lo1 := uint32(r.Intn(1024))
			hi1 := lo1 + uint32(r.Intn(int(1024-lo1)))
			f := space.NewFilter().Range("attr0", lo0, hi0).Range("attr1", lo1, hi1)
			filters[h] = append(filters[h], f)
			subID++
			if _, err := tb.ctl.Subscribe(fmt.Sprintf("s%d", subID), h, tb.decompose(t, f)); err != nil {
				t.Fatal(err)
			}
		}
	}

	events := make([]space.Event, 0, 40)
	for i := 0; i < 40; i++ {
		ev := tb.publish(t, pub, uint32(r.Intn(1024)), uint32(r.Intn(1024)))
		events = append(events, ev)
	}
	tb.eng.Run()

	for _, h := range hosts[1:] {
		want := 0
		for _, ev := range events {
			for _, f := range filters[h] {
				ok, err := tb.sch.Matches(f, ev)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					want++
					break
				}
			}
		}
		if got := len(tb.recv[h]); got != want {
			t.Errorf("host %d received %d, want %d", h, got, want)
		}
	}
}

func TestMaxDzLenTruncation(t *testing.T) {
	tb := newTestbed(t, core.WithMaxDzLen(2))
	hosts := tb.g.Hosts()
	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet("0000", "0001")); err != nil {
		t.Fatal(err)
	}
	trees := tb.ctl.Trees()
	if len(trees) != 1 || !trees[0].DZ.Equal(dz.NewSet("00")) {
		t.Errorf("trees=%v, want single {00}", trees)
	}
}

func TestPartitionedControllerRejectsForeignHosts(t *testing.T) {
	g, err := topo.Ring(6, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.PartitionRing(g, 2); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	ctl, err := core.NewController(g, dp,
		core.WithHostAddr(netem.HostAddr), core.WithPartition(0))
	if err != nil {
		t.Fatal(err)
	}
	h0 := g.HostsInPartition(0)[0]
	h1 := g.HostsInPartition(1)[0]
	if _, err := ctl.Advertise("p", h0, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Subscribe("s", h1, dz.NewSet("1")); !errors.Is(err, core.ErrForeignNode) {
		t.Errorf("err=%v, want ErrForeignNode", err)
	}
}

func TestNewControllerValidation(t *testing.T) {
	g, _ := topo.Linear(1, topo.DefaultLinkParams)
	dp := netem.New(g, sim.NewEngine())
	if _, err := core.NewController(nil, dp, core.WithHostAddr(netem.HostAddr)); err == nil {
		t.Error("nil graph must fail")
	}
	if _, err := core.NewController(g, nil, core.WithHostAddr(netem.HostAddr)); err == nil {
		t.Error("nil programmer must fail")
	}
	if _, err := core.NewController(g, dp); err == nil {
		t.Error("missing host addr func must fail")
	}
}

func TestStatsAccumulation(t *testing.T) {
	tb := newTestbed(t)
	hosts := tb.g.Hosts()
	if _, err := tb.ctl.Advertise("p1", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("s1", hosts[4], dz.NewSet("10")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Subscribe("s2", hosts[5], dz.NewSet("0")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ctl.Unsubscribe("s2"); err != nil {
		t.Fatal(err)
	}
	st := tb.ctl.Stats()
	if st.Advertisements != 1 || st.Subscriptions != 2 || st.Unsubscriptions != 1 {
		t.Errorf("stats=%+v", st)
	}
	if st.Requests() != 4 {
		t.Errorf("Requests=%d, want 4", st.Requests())
	}
	if st.StoredSubs != 1 {
		t.Errorf("StoredSubs=%d, want 1 (s2 overlapped no tree)", st.StoredSubs)
	}
	if st.TreesCreated != 1 {
		t.Errorf("TreesCreated=%d", st.TreesCreated)
	}
	if st.FlowOps() == 0 {
		t.Error("flow ops must be counted")
	}
}

// TestPropertyConvergence: after any sequence of subscribe/unsubscribe
// operations (with fixed advertisements), the incrementally maintained
// tables equal those of a fresh controller that replays only the surviving
// operations. This is the master invariant covering cases (1)–(5) and the
// delete/downgrade rules of Section 3.3.
func TestPropertyConvergence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))

		build := func() (*testbed, bool) {
			g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
			if err != nil {
				return nil, false
			}
			eng := sim.NewEngine()
			dp := netem.New(g, eng)
			ctl, err := core.NewController(g, dp, core.WithHostAddr(netem.HostAddr))
			if err != nil {
				return nil, false
			}
			return &testbed{g: g, eng: eng, dp: dp, ctl: ctl}, true
		}
		inc, ok := build()
		if !ok {
			return false
		}
		hosts := inc.g.Hosts()

		type subOp struct {
			id   string
			host topo.NodeID
			set  dz.Set
		}
		nAdv := 1 + r.Intn(3)
		advs := make([]subOp, nAdv)
		for i := range advs {
			advs[i] = subOp{
				id:   fmt.Sprintf("p%d", i),
				host: hosts[r.Intn(len(hosts))],
				set:  randomDzSet(r, 2, 4),
			}
			if _, err := inc.ctl.Advertise(advs[i].id, advs[i].host, advs[i].set); err != nil {
				return false
			}
		}
		live := make(map[string]subOp)
		var order []string
		for i := 0; i < 25; i++ {
			if len(live) > 0 && r.Intn(3) == 0 {
				// Unsubscribe a random live subscription.
				keys := make([]string, 0, len(live))
				for k := range live {
					keys = append(keys, k)
				}
				id := keys[r.Intn(len(keys))]
				if _, err := inc.ctl.Unsubscribe(id); err != nil {
					return false
				}
				delete(live, id)
				continue
			}
			op := subOp{
				id:   fmt.Sprintf("s%d", i),
				host: hosts[r.Intn(len(hosts))],
				set:  randomDzSet(r, 2, 5),
			}
			if _, err := inc.ctl.Subscribe(op.id, op.host, op.set); err != nil {
				return false
			}
			live[op.id] = op
			order = append(order, op.id)
		}

		fresh, ok := build()
		if !ok {
			return false
		}
		for _, a := range advs {
			if _, err := fresh.ctl.Advertise(a.id, a.host, a.set); err != nil {
				return false
			}
		}
		for _, id := range order {
			op, stillLive := live[id]
			if !stillLive {
				continue
			}
			if _, err := fresh.ctl.Subscribe(op.id, op.host, op.set); err != nil {
				return false
			}
		}

		if err := inc.ctl.VerifyTables(); err != nil {
			return false
		}
		// Compare flow tables switch by switch.
		for _, sw := range inc.g.Switches() {
			a, err := inc.dp.Flows(sw)
			if err != nil {
				return false
			}
			b, err := fresh.dp.Flows(sw)
			if err != nil {
				return false
			}
			if len(a) != len(b) {
				return false
			}
			am := make(map[string]bool, len(a))
			for _, fl := range a {
				am[fmt.Sprintf("%s|%d|%v", fl.Expr, fl.Priority, fl.Actions)] = true
			}
			for _, fl := range b {
				if !am[fmt.Sprintf("%s|%d|%v", fl.Expr, fl.Priority, fl.Actions)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestControllerLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	dp := netem.New(g, sim.NewEngine())
	ctl, err := core.NewController(g, dp,
		core.WithHostAddr(netem.HostAddr), core.WithLogger(logger))
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	if _, err := ctl.Advertise("p1", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Subscribe("s1", hosts[4], dz.NewSet("10")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Unsubscribe("s1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tree created", "op=advertise", "op=subscribe", "op=unsubscribe", "client=s1"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}
