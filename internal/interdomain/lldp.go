package interdomain

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"pleroma/internal/netem"
	"pleroma/internal/openflow"
	"pleroma/internal/topo"
)

// lldpProbe is the payload of a discovery frame: the sending controller's
// partition and the switch-port it was emitted from (the information a
// real LLDP TLV carries).
type lldpProbe struct {
	originPart   int
	originSwitch topo.NodeID
	originPort   openflow.PortID
}

// lldpAddr is the link-scope destination of discovery frames. No flow ever
// matches it, so receiving switches punt the frame to their controller —
// exactly the mechanism Section 4.1 describes.
var lldpAddr = netip.MustParseAddr("ff02::e")

// discoverBordersLLDP performs neighbour discovery by actually exchanging
// LLDP frames over the emulated data plane: every controller packet-outs a
// probe on every port of every switch it manages; frames that arrive at a
// switch of a *different* partition are punted to that partition's
// controller, which records the (switch, in-port, origin-partition) tuple.
// Frames arriving within the same partition are the regular topology
// discovery and are ignored here.
func (f *Fabric) discoverBordersLLDP() error {
	type hit struct {
		localSwitch topo.NodeID
		localPort   openflow.PortID
		probe       lldpProbe
	}
	var hits []hit
	// Punts arrive concurrently from shard workers when the data plane is
	// sharded; the sort below makes the collection order irrelevant.
	var hitsMu sync.Mutex

	// Take over the punt path for the discovery round; restore the in-band
	// signalling handler (if enabled) afterwards.
	defer func() {
		if f.inBandEnabled {
			f.dp.SetPuntHandler(f.handlePunt)
		} else {
			f.dp.SetPuntHandler(nil)
		}
	}()
	f.dp.SetPuntHandler(func(sw topo.NodeID, inPort openflow.PortID, pkt netem.Packet) {
		probe, ok := pkt.Control.(lldpProbe)
		if !ok || pkt.Dst != lldpAddr {
			return
		}
		if f.g.Partition(sw) == probe.originPart {
			return // intra-partition discovery, handled by the local controller
		}
		hitsMu.Lock()
		hits = append(hits, hit{localSwitch: sw, localPort: inPort, probe: probe})
		hitsMu.Unlock()
	})

	// Every controller floods probes out of all switch ports it manages.
	for _, p := range f.order {
		for _, sw := range f.g.SwitchesInPartition(p) {
			for _, nb := range f.g.Neighbors(sw) {
				pkt := netem.Packet{
					Dst:     lldpAddr,
					Control: lldpProbe{originPart: p, originSwitch: sw, originPort: nb.Port},
				}
				if err := f.dp.SendFromSwitchPort(sw, nb.Port, pkt); err != nil {
					return fmt.Errorf("interdomain: lldp probe from %d port %d: %w", sw, nb.Port, err)
				}
			}
		}
	}
	f.dp.Run() // drain the probe exchange (barrier drain when sharded)

	// Convert punted probes into border ports. Sort by a link-symmetric
	// key so both endpoint partitions agree on the canonical crossing.
	sort.Slice(hits, func(i, j int) bool {
		return borderKey(hits[i].localSwitch, hits[i].probe.originSwitch) <
			borderKey(hits[j].localSwitch, hits[j].probe.originSwitch)
	})
	for _, h := range hits {
		s, ok := f.parts[f.g.Partition(h.localSwitch)]
		if !ok {
			continue
		}
		s.borders[h.probe.originPart] = append(s.borders[h.probe.originPart], BorderPort{
			LocalSwitch:  h.localSwitch,
			LocalPort:    h.localPort,
			RemotePart:   h.probe.originPart,
			RemoteSwitch: h.probe.originSwitch,
			RemotePort:   h.probe.originPort,
		})
	}
	return nil
}

// borderKey orders border links symmetrically: both sides of one physical
// link derive the same key, so their sorted border lists pair up and
// canonicalBorder picks the same crossing on both sides.
func borderKey(a, b topo.NodeID) uint64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return uint64(lo)<<32 | uint64(uint32(hi))
}
