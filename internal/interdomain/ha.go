package interdomain

import (
	"fmt"
	"strconv"

	"pleroma/internal/core"
	"pleroma/internal/netem"
)

// This file is the fabric's controller-HA surface: with WithHA every
// partition controller journals its control operations to an in-memory
// journal, SnapshotPartition takes (and compacts against) deterministic
// state snapshots, and Failover simulates a controller crash by discarding
// the live instance and promoting a warm standby from snapshot + journal.

// WithHA gives every partition controller an op journal, enabling
// SnapshotPartition, RestorePartition, and Failover.
func WithHA() Option {
	return func(f *Fabric) { f.ha = true }
}

// WithHAJournal enables HA with journals supplied by open — one per
// partition. The networked daemon uses it to hand every partition a
// file-backed core.FileJournal so controller state survives a process
// restart; tests can inject failing or instrumented journals the same way.
func WithHAJournal(open func(partition int) (core.CompactableJournal, error)) Option {
	return func(f *Fabric) {
		f.ha = true
		f.journalOpen = open
	}
}

// controllerOpts builds the option set of one partition's controller — the
// same set for the initial instance and for every standby promoted later,
// so a promoted controller is configured identically to the one it
// replaces.
func (f *Fabric) controllerOpts(partition int, journal core.CompactableJournal) []core.Option {
	opts := append([]core.Option{
		core.WithHostAddr(netem.HostAddr),
		core.WithPartition(partition),
	}, f.ctlOpts...)
	if journal != nil {
		opts = append(opts, core.WithJournal(journal))
	}
	return opts
}

// Journal returns the op journal of one partition (nil without WithHA).
func (f *Fabric) Journal(partition int) (core.CompactableJournal, error) {
	s, ok := f.parts[partition]
	if !ok {
		return nil, fmt.Errorf("interdomain: unknown partition %d", partition)
	}
	return s.journal, nil
}

// SnapshotPartition encodes the partition controller's state, retains the
// snapshot for the partition's warm standby, and compacts the journal:
// records the snapshot covers are truncated. It returns the snapshot.
// Callers that persist snapshots externally should instead use
// EncodeSnapshotPartition, make the snapshot durable, and only then
// CompactPartition — truncating first opens a state-loss window if the
// snapshot never reaches stable storage.
func (f *Fabric) SnapshotPartition(partition int) ([]byte, error) {
	snap, seq, err := f.EncodeSnapshotPartition(partition)
	if err != nil {
		return nil, err
	}
	if err := f.CompactPartition(partition, seq); err != nil {
		return nil, err
	}
	return snap, nil
}

// EncodeSnapshotPartition encodes the partition controller's state and
// retains it for the warm standby WITHOUT compacting the journal. It
// returns the snapshot and the journal sequence number it covers; pass
// that seq to CompactPartition once the snapshot is durable.
func (f *Fabric) EncodeSnapshotPartition(partition int) ([]byte, uint64, error) {
	s, ok := f.parts[partition]
	if !ok {
		return nil, 0, fmt.Errorf("interdomain: unknown partition %d", partition)
	}
	if s.journal == nil {
		return nil, 0, fmt.Errorf("interdomain: partition %d has no journal (fabric built without WithHA)", partition)
	}
	snap, err := s.ctl.EncodeSnapshot()
	if err != nil {
		return nil, 0, fmt.Errorf("interdomain: snapshot partition %d: %w", partition, err)
	}
	s.lastSnap = append([]byte(nil), snap...)
	return snap, s.ctl.JournalSeq(), nil
}

// CompactPartition truncates the partition journal's records up to and
// including upToSeq — the compaction step of a snapshot, split out so a
// caller can defer it until the snapshot is durably persisted.
func (f *Fabric) CompactPartition(partition int, upToSeq uint64) error {
	s, ok := f.parts[partition]
	if !ok {
		return fmt.Errorf("interdomain: unknown partition %d", partition)
	}
	if s.journal == nil {
		return fmt.Errorf("interdomain: partition %d has no journal (fabric built without WithHA)", partition)
	}
	if err := s.journal.Truncate(upToSeq); err != nil {
		return fmt.Errorf("interdomain: compact journal of partition %d: %w", partition, err)
	}
	return nil
}

// DigestPartition returns the deterministic digest of the partition
// controller's canonical state (core.SnapshotDigest over a fresh
// EncodeSnapshot). Unlike SnapshotPartition it works without WithHA and has
// no compaction side effects, so two systems can compare control-plane
// state byte-for-byte — the loopback equivalence test's backbone.
func (f *Fabric) DigestPartition(partition int) ([]byte, error) {
	s, ok := f.parts[partition]
	if !ok {
		return nil, fmt.Errorf("interdomain: unknown partition %d", partition)
	}
	snap, err := s.ctl.EncodeSnapshot()
	if err != nil {
		return nil, fmt.Errorf("interdomain: digest partition %d: %w", partition, err)
	}
	d, err := core.SnapshotDigest(snap)
	if err != nil {
		return nil, fmt.Errorf("interdomain: digest partition %d: %w", partition, err)
	}
	return d[:], nil
}

// RecoverPartition rebuilds the partition's controller from an externally
// persisted snapshot (possibly nil for journal-only recovery) plus the
// partition journal's suffix — the daemon's restart-with-state path. It is
// Failover driven by on-disk state instead of the retained lastSnap: the
// standby replays, bumps the epoch, and resyncs switch ground truth.
func (f *Fabric) RecoverPartition(partition int, snap []byte) (FailoverReport, error) {
	rep := FailoverReport{Partition: partition}
	s, ok := f.parts[partition]
	if !ok {
		return rep, fmt.Errorf("interdomain: unknown partition %d", partition)
	}
	if s.journal == nil {
		return rep, fmt.Errorf("interdomain: partition %d has no journal (fabric built without WithHA)", partition)
	}
	standby := core.NewStandby(f.g, f.prog, s.journal, f.controllerOpts(partition, nil)...)
	if snap != nil {
		if err := standby.ObserveSnapshot(snap); err != nil {
			return rep, fmt.Errorf("interdomain: recover partition %d: %w", partition, err)
		}
		s.lastSnap = append([]byte(nil), snap...)
	}
	ctl, prep, err := standby.Promote()
	if err != nil {
		return rep, fmt.Errorf("interdomain: recover partition %d: %w", partition, err)
	}
	s.ctl = ctl
	rep.PromoteReport = prep
	f.obsFailovers.With(strconv.Itoa(partition)).Inc()
	f.obsEpoch.With(strconv.Itoa(partition)).Set(int64(prep.Epoch))
	return rep, nil
}

// RestorePartition replaces the partition's controller with one
// reconstructed from the snapshot, reattaches the journal, and resyncs the
// partition's switches against the restored canonical state.
func (f *Fabric) RestorePartition(partition int, snap []byte) error {
	s, ok := f.parts[partition]
	if !ok {
		return fmt.Errorf("interdomain: unknown partition %d", partition)
	}
	if s.journal == nil {
		return fmt.Errorf("interdomain: partition %d has no journal (fabric built without WithHA)", partition)
	}
	ctl, err := core.RestoreController(f.g, f.prog, snap, f.controllerOpts(partition, s.journal)...)
	if err != nil {
		return fmt.Errorf("interdomain: restore partition %d: %w", partition, err)
	}
	if _, err := ctl.ResyncAll(); err != nil {
		return fmt.Errorf("interdomain: restore partition %d: resync: %w", partition, err)
	}
	s.ctl = ctl
	return nil
}

// FailoverReport summarises one partition takeover.
type FailoverReport struct {
	Partition int
	core.PromoteReport
}

// Failover simulates a crash of the partition's active controller and
// promotes a warm standby in its place: the live instance is discarded
// unread (its in-memory state is lost, exactly as a process crash would
// lose it), and the standby rebuilds from the last snapshot plus the
// journal suffix, bumps the epoch, and anti-entropy-resyncs the inherited
// switches. The fabric's own forwarding state (virtual replicas, covering
// indexes) lives outside the controller and survives; replayed virtual
// client registrations reconstruct the same ids, so the replica maps stay
// valid.
func (f *Fabric) Failover(partition int) (FailoverReport, error) {
	rep := FailoverReport{Partition: partition}
	s, ok := f.parts[partition]
	if !ok {
		return rep, fmt.Errorf("interdomain: unknown partition %d", partition)
	}
	if s.journal == nil {
		return rep, fmt.Errorf("interdomain: partition %d has no journal (fabric built without WithHA)", partition)
	}
	standby := core.NewStandby(f.g, f.prog, s.journal, f.controllerOpts(partition, nil)...)
	if s.lastSnap != nil {
		if err := standby.ObserveSnapshot(s.lastSnap); err != nil {
			return rep, fmt.Errorf("interdomain: failover partition %d: %w", partition, err)
		}
	}
	ctl, prep, err := standby.Promote()
	if err != nil {
		return rep, fmt.Errorf("interdomain: failover partition %d: %w", partition, err)
	}
	s.ctl = ctl
	rep.PromoteReport = prep
	f.obsFailovers.With(strconv.Itoa(partition)).Inc()
	f.obsEpoch.With(strconv.Itoa(partition)).Set(int64(prep.Epoch))
	return rep, nil
}
