package interdomain

import (
	"errors"
	"strings"
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
)

// TestHandleTopologyChangeBestEffortTeardown forces replica-teardown
// failures and checks the rebuild still completes: a stale replica id
// (e.g. a controller that already lost the client with its switch) must
// not abort the topology-change handling halfway, leaving the fabric
// inconsistent. All teardown errors surface joined in the returned error,
// and the fabric stays fully functional afterwards.
func TestHandleTopologyChangeBestEffortTeardown(t *testing.T) {
	g := chainTopo(t, 3)
	fx := newFixture(t, g, WithStaticDiscovery())
	hosts := g.Hosts()
	if err := fx.fab.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Subscribe("s", hosts[len(hosts)-1], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if len(fx.fab.advReplicas["p"]) == 0 || len(fx.fab.subReplicas["s"]) == 0 {
		t.Fatalf("fixture must create replicas (adv=%v sub=%v)",
			fx.fab.advReplicas, fx.fab.subReplicas)
	}

	// Poison both replica lists with ids their controllers never saw.
	p0 := fx.fab.Partitions()[0]
	fx.fab.advReplicas["p"] = append(fx.fab.advReplicas["p"], replica{part: p0, id: "ghost-adv"})
	fx.fab.subReplicas["s"] = append(fx.fab.subReplicas["s"], replica{part: p0, id: "ghost-sub"})

	err := fx.fab.HandleTopologyChange()
	if err == nil {
		t.Fatal("poisoned teardown must surface an error")
	}
	if !errors.Is(err, core.ErrUnknownClient) {
		t.Errorf("err=%v, want wrapped core.ErrUnknownClient", err)
	}
	// Both failures are collected, not just the first.
	for _, want := range []string{"ghost-adv", "ghost-sub"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err=%v, want it to mention %s", err, want)
		}
	}

	// Despite the teardown errors the rebuild ran to completion: the
	// replica maps were re-populated by the re-propagation and the poison
	// entries are gone.
	if len(fx.fab.advReplicas["p"]) == 0 || len(fx.fab.subReplicas["s"]) == 0 {
		t.Errorf("rebuild must re-create replicas (adv=%v sub=%v)",
			fx.fab.advReplicas, fx.fab.subReplicas)
	}
	for _, r := range fx.fab.advReplicas["p"] {
		if strings.HasPrefix(r.id, "ghost") {
			t.Errorf("poison replica survived: %v", r)
		}
	}

	// A clean follow-up topology change succeeds, and the flow state is
	// consistent everywhere.
	if err := fx.fab.HandleTopologyChange(); err != nil {
		t.Fatalf("clean topology change after recovery: %v", err)
	}
	if err := fx.fab.VerifyTables(); err != nil {
		t.Errorf("VerifyTables: %v", err)
	}
}

// TestFabricResyncAllHealsAcrossPartitions checks the fabric-level
// anti-entropy aggregation against an injected mid-batch fault.
func TestFabricResyncAllHealsAcrossPartitions(t *testing.T) {
	g := chainTopo(t, 2)
	dp := netem.New(g, sim.NewEngine())
	faulty := netem.WithFaults(dp, netem.FaultConfig{})
	fab, err := NewFabric(g, dp, WithStaticDiscovery(),
		WithFlowProgrammer(faulty),
		WithControllerOptions(core.WithRefreshWorkers(1)))
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	if err := fab.Advertise("p", hosts[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	faulty.FailNextBatch(0)
	if err := fab.Subscribe("s", hosts[len(hosts)-1], dz.NewSet("1")); err != nil {
		t.Fatalf("transient fault must not fail the subscription: %v", err)
	}
	if deg := fab.DegradedSwitches(); len(deg) == 0 {
		t.Fatal("a switch must be quarantined")
	}
	if err := fab.VerifyTables(); err == nil {
		t.Fatal("divergence must be detectable")
	}
	rr, err := fab.ResyncAll()
	if err != nil {
		t.Fatalf("ResyncAll: %v", err)
	}
	if rr.Healed == 0 || len(rr.StillDegraded) != 0 {
		t.Fatalf("report=%+v, want healed", rr)
	}
	if err := fab.VerifyTables(); err != nil {
		t.Errorf("VerifyTables after resync: %v", err)
	}
}
