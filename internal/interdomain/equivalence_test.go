package interdomain

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// TestPropertyPartitioningPreservesDelivery: splitting the network into
// partitions is a control-plane optimisation — it must not change WHAT is
// delivered WHERE. For random workloads, the delivery sets of a
// single-controller deployment and a 4-partition deployment on the same
// ring must be identical.
func TestPropertyPartitioningPreservesDelivery(t *testing.T) {
	run := func(seed int64, partitions int) (map[string]int, bool) {
		g, err := topo.Ring(12, topo.DefaultLinkParams)
		if err != nil {
			return nil, false
		}
		if err := topo.PartitionRing(g, partitions); err != nil {
			return nil, false
		}
		eng := sim.NewEngine()
		dp := netem.New(g, eng)
		fab, err := NewFabric(g, dp)
		if err != nil {
			return nil, false
		}
		hosts := g.Hosts()
		recv := make(map[string]int)
		for _, h := range hosts {
			h := h
			if err := dp.ConfigureHost(h, netem.HostConfig{}, func(d netem.Delivery) {
				recv[fmt.Sprintf("%d|%s", h, d.Packet.Expr)]++
			}); err != nil {
				return nil, false
			}
		}

		r := rand.New(rand.NewSource(seed))
		type op struct {
			id   string
			host topo.NodeID
			set  dz.Set
		}
		nAdv := 1 + r.Intn(3)
		nSub := 2 + r.Intn(6)
		var pubs []op
		for i := 0; i < nAdv; i++ {
			o := op{
				id:   fmt.Sprintf("p%d", i),
				host: hosts[r.Intn(len(hosts))],
				set:  randomSetFor(r),
			}
			pubs = append(pubs, o)
			if err := fab.Advertise(o.id, o.host, o.set); err != nil {
				return nil, false
			}
		}
		for i := 0; i < nSub; i++ {
			if err := fab.Subscribe(fmt.Sprintf("s%d", i),
				hosts[r.Intn(len(hosts))], randomSetFor(r)); err != nil {
				return nil, false
			}
		}
		// Publish events from each publisher within its advertisement.
		for _, p := range pubs {
			for j := 0; j < 10; j++ {
				base := p.set[r.Intn(len(p.set))]
				expr := base
				for expr.Len() < 10 {
					expr = expr.Child(byte(r.Intn(2)))
				}
				if err := dp.Publish(p.host, expr, space.Event{}, 64); err != nil {
					return nil, false
				}
			}
		}
		eng.Run()
		return recv, true
	}

	f := func(seed int64) bool {
		single, ok := run(seed, 1)
		if !ok {
			return false
		}
		multi, ok := run(seed, 4)
		if !ok {
			return false
		}
		if len(single) != len(multi) {
			return false
		}
		for k, v := range single {
			if multi[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randomSetFor(r *rand.Rand) dz.Set {
	n := 1 + r.Intn(2)
	exprs := make([]dz.Expr, n)
	for i := range exprs {
		l := 1 + r.Intn(4)
		buf := make([]byte, l)
		for j := range buf {
			buf[j] = byte('0' + r.Intn(2))
		}
		exprs[i] = dz.Expr(buf)
	}
	return dz.NewSet(exprs...)
}
