package interdomain

import (
	"testing"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/topo"
)

// driveHA runs a cross-partition scenario with churn on a 3-partition
// chain: two advertisements, three subscriptions, one retirement each.
func driveHA(t *testing.T, fx *fixture) {
	t.Helper()
	g := fx.g
	p0 := g.HostsInPartition(0)
	p1 := g.HostsInPartition(1)
	p2 := g.HostsInPartition(2)
	steps := []struct {
		op   string
		id   string
		host topo.NodeID
		set  dz.Set
	}{
		{"adv", "pubA", p0[0], dz.NewSet("0")},
		{"adv", "pubB", p1[1], dz.NewSet("10")},
		{"sub", "s1", p2[0], dz.NewSet("00")},
		{"sub", "s2", p1[0], dz.NewSet("0")},
		{"sub", "s3", p0[1], dz.NewSet("1")},
		{"unsub", "s2", 0, nil},
		{"unadv", "pubB", 0, nil},
	}
	for _, s := range steps {
		var err error
		switch s.op {
		case "adv":
			err = fx.fab.Advertise(s.id, s.host, s.set)
		case "sub":
			err = fx.fab.Subscribe(s.id, s.host, s.set)
		case "unsub":
			err = fx.fab.Unsubscribe(s.id)
		case "unadv":
			err = fx.fab.Unadvertise(s.id)
		}
		if err != nil {
			t.Fatalf("%s %s: %v", s.op, s.id, err)
		}
	}
}

func TestFabricFailoverPreservesForwarding(t *testing.T) {
	g := chainTopo(t, 3)
	fx := newFixture(t, g, WithHA())
	driveHA(t, fx)
	p0 := g.HostsInPartition(0)
	p2 := g.HostsInPartition(2)

	// Checkpoint partition 1, then keep mutating so the failover must
	// replay a journal suffix on top of the snapshot.
	if _, err := fx.fab.SnapshotPartition(1); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Subscribe("late", g.HostsInPartition(1)[1], dz.NewSet("01")); err != nil {
		t.Fatal(err)
	}

	rep, err := fx.fab.Failover(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partition != 1 {
		t.Errorf("report partition=%d, want 1", rep.Partition)
	}
	if !rep.FromSnapshot {
		t.Error("failover must restore from the observed snapshot")
	}
	if rep.Epoch != 1 {
		t.Errorf("first failover epoch=%d, want 1", rep.Epoch)
	}
	ctl, err := fx.fab.Controller(1)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Epoch() != 1 {
		t.Errorf("promoted controller epoch=%d, want 1", ctl.Epoch())
	}
	if err := fx.fab.VerifyTables(); err != nil {
		t.Fatalf("tables diverged after failover: %v", err)
	}

	// The transit partition survived its controller: events still cross it.
	fx.publish(t, p0[0], "0000000000")
	fx.eng.Run()
	if fx.recv[p2[0]] != 1 {
		t.Errorf("s1 received %d after failover, want 1", fx.recv[p2[0]])
	}

	// The promoted controller journals under its new epoch, so a second
	// failover of the same partition chains cleanly.
	if err := fx.fab.Subscribe("post", g.HostsInPartition(1)[0], dz.NewSet("001")); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.fab.SnapshotPartition(1); err != nil {
		t.Fatal(err)
	}
	rep2, err := fx.fab.Failover(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Epoch != 2 {
		t.Errorf("second failover epoch=%d, want 2", rep2.Epoch)
	}
}

func TestFabricSnapshotRestorePartition(t *testing.T) {
	g := chainTopo(t, 3)
	fx := newFixture(t, g, WithHA())
	driveHA(t, fx)

	snap, err := fx.fab.SnapshotPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.RestorePartition(0, snap); err != nil {
		t.Fatal(err)
	}
	ctl, err := fx.fab.Controller(0)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := ctl.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := core.SnapshotDigest(snap)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := core.SnapshotDigest(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("restored partition's snapshot digest differs")
	}
	if err := fx.fab.VerifyTables(); err != nil {
		t.Fatalf("tables diverged after restore: %v", err)
	}
}

func TestFailoverRequiresHA(t *testing.T) {
	g := chainTopo(t, 2)
	fx := newFixture(t, g)
	if _, err := fx.fab.Failover(0); err == nil {
		t.Error("Failover without WithHA must fail")
	}
	if _, err := fx.fab.SnapshotPartition(0); err == nil {
		t.Error("SnapshotPartition without WithHA must fail")
	}
	fxHA := newFixture(t, chainTopo(t, 2), WithHA())
	if _, err := fxHA.fab.Failover(99); err == nil {
		t.Error("Failover of an unknown partition must fail")
	}
}

// TestFabricOpOrderDeterministic pins the determinism the journal's
// replayability rests on: two fabrics driven through the same op
// sequence — including the map-heavy unadvertise and topology-change
// paths — must leave every partition controller in byte-identical
// state. Tree ids are assigned in controller-op order, so any
// map-iteration nondeterminism in the fabric shows up as a digest
// mismatch.
func TestFabricOpOrderDeterministic(t *testing.T) {
	run := func() [][32]byte {
		g := chainTopo(t, 3)
		fx := newFixture(t, g, WithHA())
		driveHA(t, fx)
		if err := fx.fab.HandleTopologyChange(); err != nil {
			t.Fatal(err)
		}
		if err := fx.fab.Unadvertise("pubA"); err != nil {
			t.Fatal(err)
		}
		if err := fx.fab.Advertise("pubC", g.HostsInPartition(2)[0], dz.NewSet("1")); err != nil {
			t.Fatal(err)
		}
		var digests [][32]byte
		for _, p := range fx.fab.Partitions() {
			ctl, err := fx.fab.Controller(p)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := ctl.EncodeSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			d, err := core.SnapshotDigest(snap)
			if err != nil {
				t.Fatal(err)
			}
			digests = append(digests, d)
		}
		return digests
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("partition %d: state digest differs between identical runs", i)
		}
	}
}
