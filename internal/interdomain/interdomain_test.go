package interdomain

import (
	"fmt"
	"testing"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// chainTopo builds n partitions in a line, each with two switches and one
// host per switch — the shape of the paper's Figure 5 (N_c1—N_c2—N_c3).
func chainTopo(t *testing.T, n int) *topo.Graph {
	t.Helper()
	g := topo.NewGraph()
	var lastSw topo.NodeID = -1
	for p := 0; p < n; p++ {
		a := g.AddSwitch(fmt.Sprintf("P%d-A", p))
		b := g.AddSwitch(fmt.Sprintf("P%d-B", p))
		if err := g.SetPartition(a, p); err != nil {
			t.Fatal(err)
		}
		if err := g.SetPartition(b, p); err != nil {
			t.Fatal(err)
		}
		if _, _, err := g.Connect(a, b, topo.DefaultLinkParams); err != nil {
			t.Fatal(err)
		}
		if lastSw >= 0 {
			if _, _, err := g.Connect(lastSw, a, topo.DefaultLinkParams); err != nil {
				t.Fatal(err)
			}
		}
		lastSw = b
		for i, sw := range []topo.NodeID{a, b} {
			h := g.AddHost(fmt.Sprintf("h%d-%d", p, i))
			if _, _, err := g.Connect(h, sw, topo.DefaultLinkParams); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.InheritHostPartitions(); err != nil {
		t.Fatal(err)
	}
	return g
}

type fixture struct {
	g    *topo.Graph
	eng  *sim.Engine
	dp   *netem.DataPlane
	fab  *Fabric
	sch  *space.Schema
	recv map[topo.NodeID]int
}

func newFixture(t *testing.T, g *topo.Graph, opts ...Option) *fixture {
	t.Helper()
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	fab, err := NewFabric(g, dp, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{g: g, eng: eng, dp: dp, fab: fab, sch: sch, recv: make(map[topo.NodeID]int)}
	for _, h := range g.Hosts() {
		h := h
		if err := dp.ConfigureHost(h, netem.HostConfig{}, func(netem.Delivery) {
			fx.recv[h]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	return fx
}

func (fx *fixture) publish(t *testing.T, host topo.NodeID, expr dz.Expr) {
	t.Helper()
	if err := fx.dp.Publish(host, expr, space.Event{}, 64); err != nil {
		t.Fatal(err)
	}
}

func TestBorderDiscoveryChain(t *testing.T) {
	g := chainTopo(t, 3)
	fx := newFixture(t, g)
	if got := fx.fab.Partitions(); len(got) != 3 {
		t.Fatalf("partitions=%v", got)
	}
	if nb := fx.fab.Neighbors(0); len(nb) != 1 || nb[0] != 1 {
		t.Errorf("neighbors(0)=%v, want [1]", nb)
	}
	if nb := fx.fab.Neighbors(1); len(nb) != 2 {
		t.Errorf("neighbors(1)=%v, want [0 2]", nb)
	}
	if nb := fx.fab.Neighbors(2); len(nb) != 1 || nb[0] != 1 {
		t.Errorf("neighbors(2)=%v, want [1]", nb)
	}
	bps := fx.fab.BorderPorts(0, 1)
	if len(bps) != 1 {
		t.Fatalf("border ports 0→1: %v", bps)
	}
	if g.Partition(bps[0].LocalSwitch) != 0 {
		t.Error("border switch must belong to the local partition")
	}
	peer, ok := g.PortToPeer(bps[0].LocalSwitch, bps[0].LocalPort)
	if !ok || g.Partition(peer) != 1 {
		t.Error("border port must lead to the neighbour partition")
	}
	if _, err := fx.fab.Controller(0); err != nil {
		t.Error(err)
	}
	if _, err := fx.fab.Controller(99); err == nil {
		t.Error("unknown partition must fail")
	}
}

func TestBorderDiscoveryRing(t *testing.T) {
	g, err := topo.Ring(9, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.PartitionRing(g, 3); err != nil {
		t.Fatal(err)
	}
	fx := newFixture(t, g)
	for _, p := range fx.fab.Partitions() {
		if nb := fx.fab.Neighbors(p); len(nb) != 2 {
			t.Errorf("ring partition %d has neighbors %v, want 2", p, nb)
		}
	}
}

// TestFigure5Scenario replays Section 4.2's example: p1 advertises {0} in
// partition 0; s1 in partition 2 subscribes {00} (forwarded 2→1→0); a
// later subscription {000} in partition 1 is NOT forwarded to partition 0
// because s1's covers it.
func TestFigure5Scenario(t *testing.T) {
	g := chainTopo(t, 3)
	fx := newFixture(t, g)
	p0Hosts := g.HostsInPartition(0)
	p1Hosts := g.HostsInPartition(1)
	p2Hosts := g.HostsInPartition(2)

	if err := fx.fab.Advertise("p1", p0Hosts[0], dz.NewSet("0")); err != nil {
		t.Fatal(err)
	}
	// The advertisement flooded 0→1→2: two controller-to-controller
	// messages.
	st := fx.fab.Stats()
	if st.MessagesSent != 2 {
		t.Errorf("messages after advertise=%d, want 2", st.MessagesSent)
	}

	if err := fx.fab.Subscribe("s1", p2Hosts[0], dz.NewSet("00")); err != nil {
		t.Fatal(err)
	}
	st = fx.fab.Stats()
	if st.MessagesSent != 4 { // +2: subscription 2→1 and 1→0
		t.Errorf("messages after s1=%d, want 4", st.MessagesSent)
	}

	if err := fx.fab.Subscribe("s2", p1Hosts[0], dz.NewSet("000")); err != nil {
		t.Fatal(err)
	}
	st = fx.fab.Stats()
	if st.MessagesSent != 4 {
		t.Errorf("covered subscription must not be forwarded: messages=%d, want 4", st.MessagesSent)
	}
	if st.SuppressedByCovering == 0 {
		t.Error("suppression counter must increase")
	}

	// Both subscribers receive a matching event published by p1.
	fx.publish(t, p0Hosts[0], "0000000000")
	fx.eng.Run()
	if fx.recv[p2Hosts[0]] != 1 {
		t.Errorf("s1 received %d, want 1", fx.recv[p2Hosts[0]])
	}
	if fx.recv[p1Hosts[0]] != 1 {
		t.Errorf("s2 received %d, want 1", fx.recv[p1Hosts[0]])
	}
	// An event outside both subscriptions stays local.
	fx.publish(t, p0Hosts[0], "0100000000")
	fx.eng.Run()
	if fx.recv[p2Hosts[0]] != 1 || fx.recv[p1Hosts[0]] != 1 {
		t.Error("non-matching event must not be delivered")
	}
}

func TestCoveringDisabledForwardsEverything(t *testing.T) {
	g := chainTopo(t, 3)
	fx := newFixture(t, g, WithCovering(false))
	p0 := g.HostsInPartition(0)
	p1 := g.HostsInPartition(1)
	p2 := g.HostsInPartition(2)

	if err := fx.fab.Advertise("p1", p0[0], dz.NewSet("0")); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Subscribe("s1", p2[0], dz.NewSet("00")); err != nil {
		t.Fatal(err)
	}
	before := fx.fab.Stats().MessagesSent
	if err := fx.fab.Subscribe("s2", p1[0], dz.NewSet("000")); err != nil {
		t.Fatal(err)
	}
	after := fx.fab.Stats().MessagesSent
	if after <= before {
		t.Errorf("without covering, the covered subscription must be forwarded (%d→%d)", before, after)
	}
	if fx.fab.Stats().SuppressedByCovering != 0 {
		t.Error("no suppression expected with covering off")
	}
}

func TestSubscribeBeforeAdvertiseAcrossPartitions(t *testing.T) {
	g := chainTopo(t, 3)
	fx := newFixture(t, g)
	p0 := g.HostsInPartition(0)
	p2 := g.HostsInPartition(2)

	// Subscription first: nothing to forward yet.
	if err := fx.fab.Subscribe("s1", p2[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if got := fx.fab.Stats().MessagesSent; got != 0 {
		t.Errorf("messages=%d, want 0 (no advertisement yet)", got)
	}
	// Advertisement later: it floods and the stored subscription chases it
	// back hop by hop.
	if err := fx.fab.Advertise("p1", p0[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	fx.publish(t, p0[0], "1110000000")
	fx.eng.Run()
	if fx.recv[p2[0]] != 1 {
		t.Errorf("late-advertised event not delivered: recv=%d", fx.recv[p2[0]])
	}
}

func TestRingFloodingTerminatesAndDeduplicates(t *testing.T) {
	g, err := topo.Ring(9, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.PartitionRing(g, 3); err != nil {
		t.Fatal(err)
	}
	fx := newFixture(t, g)
	h0 := g.HostsInPartition(0)[0]
	// Advertising in a cyclic partition graph must terminate (dedup kills
	// the flood) — reaching this line at all is most of the test.
	if err := fx.fab.Advertise("p1", h0, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2} {
		ctl, err := fx.fab.Controller(p)
		if err != nil {
			t.Fatal(err)
		}
		trees := ctl.Trees()
		var union dz.Set
		for _, tr := range trees {
			union = union.Union(tr.DZ)
		}
		if !union.Covers(dz.NewSet("1")) {
			t.Errorf("partition %d did not register the external advertisement: %v", p, union)
		}
	}
	// Delivery across the ring works.
	h2 := g.HostsInPartition(2)[1]
	if err := fx.fab.Subscribe("s1", h2, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	fx.publish(t, h0, "1010101010")
	fx.eng.Run()
	if fx.recv[h2] != 1 {
		t.Errorf("ring delivery failed: recv=%d", fx.recv[h2])
	}
}

func TestUnsubscribeRevivesCoveredSubscription(t *testing.T) {
	g := chainTopo(t, 2)
	fx := newFixture(t, g)
	p0 := g.HostsInPartition(0)
	p1 := g.HostsInPartition(1)

	if err := fx.fab.Advertise("pub", p0[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	// s1 covers s2: s2's forwarding is suppressed.
	if err := fx.fab.Subscribe("s1", p1[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Subscribe("s2", p1[1], dz.NewSet("10")); err != nil {
		t.Fatal(err)
	}
	if fx.fab.Stats().SuppressedByCovering == 0 {
		t.Fatal("s2 must be suppressed by s1's covering subscription")
	}
	// When s1 leaves, s2's inter-partition path must be rebuilt.
	if err := fx.fab.Unsubscribe("s1"); err != nil {
		t.Fatal(err)
	}
	fx.publish(t, p0[0], "1010101010")
	fx.eng.Run()
	if fx.recv[p1[1]] != 1 {
		t.Errorf("s2 lost its path after covering unsubscription: recv=%d", fx.recv[p1[1]])
	}
	if fx.recv[p1[0]] != 0 {
		t.Errorf("unsubscribed s1 must not receive: recv=%d", fx.recv[p1[0]])
	}
}

func TestUnadvertiseTearsDownRemotePaths(t *testing.T) {
	g := chainTopo(t, 2)
	fx := newFixture(t, g)
	p0 := g.HostsInPartition(0)
	p1 := g.HostsInPartition(1)

	if err := fx.fab.Advertise("pub", p0[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Subscribe("s1", p1[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Unadvertise("pub"); err != nil {
		t.Fatal(err)
	}
	// Both partitions' controllers must be flow-free.
	for _, p := range fx.fab.Partitions() {
		ctl, err := fx.fab.Controller(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := ctl.InstalledFlowCount(); got != 0 {
			t.Errorf("partition %d still has %d flows", p, got)
		}
	}
	fx.publish(t, p0[0], "1010101010")
	fx.eng.Run()
	if fx.recv[p1[0]] != 0 {
		t.Error("event delivered after unadvertise")
	}
}

func TestFabricValidation(t *testing.T) {
	g := chainTopo(t, 2)
	fx := newFixture(t, g)
	sw := g.Switches()[0]
	if err := fx.fab.Advertise("p", sw, dz.NewSet("1")); err == nil {
		t.Error("advertising from a switch must fail")
	}
	h := g.HostsInPartition(0)[0]
	if err := fx.fab.Advertise("p", h, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Advertise("p", h, dz.NewSet("0")); err == nil {
		t.Error("duplicate advertisement id must fail")
	}
	if err := fx.fab.Subscribe("s", h, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Subscribe("s", h, dz.NewSet("0")); err == nil {
		t.Error("duplicate subscription id must fail")
	}
	if err := fx.fab.Unsubscribe("ghost"); err == nil {
		t.Error("unknown unsubscribe must fail")
	}
	if err := fx.fab.Unadvertise("ghost"); err == nil {
		t.Error("unknown unadvertise must fail")
	}
}

func TestStatsAggregation(t *testing.T) {
	g := chainTopo(t, 3)
	fx := newFixture(t, g)
	p0 := g.HostsInPartition(0)
	p2 := g.HostsInPartition(2)
	if err := fx.fab.Advertise("p1", p0[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Subscribe("s1", p2[0], dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	st := fx.fab.Stats()
	if st.PerController[0].Internal != 1 {
		t.Errorf("P0 internal=%d, want 1", st.PerController[0].Internal)
	}
	if st.PerController[2].Internal != 1 {
		t.Errorf("P2 internal=%d, want 1", st.PerController[2].Internal)
	}
	if st.PerController[1].External != 2 { // adv passing + sub passing
		t.Errorf("P1 external=%d, want 2", st.PerController[1].External)
	}
	if st.TotalControlTraffic() != 2+st.MessagesSent {
		t.Errorf("TotalControlTraffic=%d", st.TotalControlTraffic())
	}
	if st.AverageControllerLoad() <= 0 {
		t.Error("average load must be positive")
	}
}

// TestLLDPDiscoveryMatchesStatic: the packet-based LLDP exchange must
// discover exactly the same border ports as the direct topology read, on
// both a partitioned ring and a partitioned fat-tree.
func TestLLDPDiscoveryMatchesStatic(t *testing.T) {
	build := func(t *testing.T, static bool) *Fabric {
		t.Helper()
		g, err := topo.Ring(12, topo.DefaultLinkParams)
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.PartitionRing(g, 4); err != nil {
			t.Fatal(err)
		}
		dp := netem.New(g, sim.NewEngine())
		opts := []Option{}
		if static {
			opts = append(opts, WithStaticDiscovery())
		}
		fab, err := NewFabric(g, dp, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return fab
	}
	lldp := build(t, false)
	static := build(t, true)
	for _, p := range lldp.Partitions() {
		for _, nb := range lldp.Neighbors(p) {
			a := lldp.BorderPorts(p, nb)
			b := static.BorderPorts(p, nb)
			if len(a) != len(b) {
				t.Fatalf("partition %d→%d: lldp=%v static=%v", p, nb, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("partition %d→%d border %d: lldp=%+v static=%+v", p, nb, i, a[i], b[i])
				}
			}
		}
	}
}

// TestLLDPDiscoveryFatTree exercises discovery on the pod-partitioned
// fat-tree, where partitions meet only at pod-to-core links.
func TestLLDPDiscoveryFatTree(t *testing.T) {
	g, err := topo.FatTree(4, 4, 1, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.PartitionFatTree(g, 3); err != nil {
		t.Fatal(err)
	}
	dp := netem.New(g, sim.NewEngine())
	fab, err := NewFabric(g, dp)
	if err != nil {
		t.Fatal(err)
	}
	// Partitions 1 and 2 (single pods) border only partition 0 (cores).
	for _, p := range []int{1, 2} {
		nbs := fab.Neighbors(p)
		if len(nbs) != 1 || nbs[0] != 0 {
			t.Errorf("partition %d neighbors=%v, want [0]", p, nbs)
		}
		bps := fab.BorderPorts(p, 0)
		if len(bps) == 0 {
			t.Errorf("partition %d has no border ports", p)
		}
		for _, bp := range bps {
			if g.Partition(bp.LocalSwitch) != p {
				t.Errorf("border local switch in wrong partition: %+v", bp)
			}
			if g.Partition(bp.RemoteSwitch) != 0 {
				t.Errorf("border remote switch in wrong partition: %+v", bp)
			}
		}
	}
	// Cross-partition delivery still works after LLDP discovery.
	sch, err := space.UniformSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	_ = sch
	h0 := g.HostsInPartition(1)[0]
	h1 := g.HostsInPartition(2)[0]
	if err := fab.Advertise("p", h0, dz.NewSet(dz.Whole)); err != nil {
		t.Fatal(err)
	}
	if err := fab.Subscribe("s", h1, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	recv := 0
	if err := dp.ConfigureHost(h1, netem.HostConfig{}, func(netem.Delivery) { recv++ }); err != nil {
		t.Fatal(err)
	}
	if err := dp.Publish(h0, "1111", space.Event{}, 64); err != nil {
		t.Fatal(err)
	}
	dp.Engine().Run()
	if recv != 1 {
		t.Errorf("cross-partition delivery after LLDP discovery: recv=%d", recv)
	}
}

func TestInBandSignalling(t *testing.T) {
	g := chainTopo(t, 2)
	fx := newFixture(t, g)
	fx.fab.EnableInBandSignalling(2 * time.Millisecond)
	p0 := g.HostsInPartition(0)
	p1 := g.HostsInPartition(1)

	if err := fx.fab.SendSignal(SignalRequest{
		Op: OpAdvertise, ID: "p", Host: p0[0], Set: dz.NewSet("1"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.SendSignal(SignalRequest{
		Op: OpSubscribe, ID: "s", Host: p1[0], Set: dz.NewSet("1"),
	}); err != nil {
		t.Fatal(err)
	}
	// Nothing has taken effect yet: the requests are in flight.
	if got := fx.fab.SignalStats().Handled; got != 0 {
		t.Errorf("handled before Run=%d", got)
	}
	fx.eng.Run()
	st := fx.fab.SignalStats()
	if st.Handled != 2 || st.Errors != 0 {
		t.Fatalf("signal stats=%+v", st)
	}
	// The activated paths deliver.
	fx.publish(t, p0[0], "1010101010")
	fx.eng.Run()
	if fx.recv[p1[0]] != 1 {
		t.Errorf("recv=%d after in-band activation", fx.recv[p1[0]])
	}
	// Unsubscribe in-band, too.
	if err := fx.fab.SendSignal(SignalRequest{Op: OpUnsubscribe, ID: "s", Host: p1[0]}); err != nil {
		t.Fatal(err)
	}
	fx.eng.Run()
	fx.publish(t, p0[0], "1110000000")
	fx.eng.Run()
	if fx.recv[p1[0]] != 1 {
		t.Errorf("delivery after in-band unsubscribe: recv=%d", fx.recv[p1[0]])
	}
}

func TestInBandSignallingErrors(t *testing.T) {
	g := chainTopo(t, 2)
	fx := newFixture(t, g)
	fx.fab.EnableInBandSignalling(time.Millisecond)
	p0 := g.HostsInPartition(0)
	// An unknown op is rejected synchronously by the wire codec.
	if err := fx.fab.SendSignal(SignalRequest{Op: "bogus", ID: "x", Host: p0[0]}); err == nil {
		t.Error("unknown op must fail to encode")
	}
	// An unknown unsubscribe travels the wire and fails at the controller.
	if err := fx.fab.SendSignal(SignalRequest{Op: OpUnsubscribe, ID: "ghost", Host: p0[0]}); err != nil {
		t.Fatal(err)
	}
	// Sending from a switch is rejected synchronously.
	if err := fx.fab.SendSignal(SignalRequest{Op: OpSubscribe, ID: "s", Host: g.Switches()[0]}); err == nil {
		t.Error("signal from a switch must fail")
	}
	fx.eng.Run()
	st := fx.fab.SignalStats()
	if st.Handled != 1 || st.Errors != 1 {
		t.Errorf("signal stats=%+v", st)
	}
}

func TestActivationLatencyObservable(t *testing.T) {
	// The time between sending an in-band subscription and the moment
	// events start arriving is positive and at least the processing delay.
	g := chainTopo(t, 2)
	fx := newFixture(t, g)
	const proc = 5 * time.Millisecond
	fx.fab.EnableInBandSignalling(proc)
	p0 := g.HostsInPartition(0)
	p1 := g.HostsInPartition(1)

	if err := fx.fab.SendSignal(SignalRequest{
		Op: OpAdvertise, ID: "p", Host: p0[0], Set: dz.NewSet("1"),
	}); err != nil {
		t.Fatal(err)
	}
	fx.eng.Run()

	sentAt := fx.eng.Now()
	if err := fx.fab.SendSignal(SignalRequest{
		Op: OpSubscribe, ID: "s", Host: p1[0], Set: dz.NewSet("1"),
	}); err != nil {
		t.Fatal(err)
	}
	// Publish a steady stream; only events after activation arrive.
	for i := 0; i < 100; i++ {
		at := sentAt + time.Duration(i)*200*time.Microsecond
		fx.eng.At(at, func() {
			_ = fx.dp.Publish(p0[0], "1010101010", space.Event{}, 64)
		})
	}
	fx.eng.Run()
	got := fx.recv[p1[0]]
	if got == 0 || got == 100 {
		t.Fatalf("activation must lose the leading events only: recv=%d", got)
	}
	missed := 100 - got
	if time.Duration(missed)*200*time.Microsecond < proc {
		t.Errorf("activation latency below processing delay: missed=%d", missed)
	}
}

// multiBorderTopo: two partitions joined by TWO parallel border links.
func multiBorderTopo(t *testing.T) *topo.Graph {
	t.Helper()
	g := topo.NewGraph()
	a1 := g.AddSwitch("A1")
	a2 := g.AddSwitch("A2")
	b1 := g.AddSwitch("B1")
	b2 := g.AddSwitch("B2")
	for _, sw := range []topo.NodeID{b1, b2} {
		if err := g.SetPartition(sw, 1); err != nil {
			t.Fatal(err)
		}
	}
	links := [][2]topo.NodeID{
		{a1, a2}, {b1, b2}, // intra-partition
		{a1, b1}, {a2, b2}, // two parallel borders
	}
	for _, l := range links {
		if _, _, err := g.Connect(l[0], l[1], topo.DefaultLinkParams); err != nil {
			t.Fatal(err)
		}
	}
	for i, sw := range []topo.NodeID{a1, a2, b1, b2} {
		h := g.AddHost(fmt.Sprintf("h%d", i))
		if _, _, err := g.Connect(h, sw, topo.DefaultLinkParams); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.InheritHostPartitions(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMultiBorderCanonicalCrossing(t *testing.T) {
	g := multiBorderTopo(t)
	fx := newFixture(t, g)

	// Both sides see two border ports, and index 0 refers to the SAME
	// physical link on both sides.
	a := fx.fab.BorderPorts(0, 1)
	b := fx.fab.BorderPorts(1, 0)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("border ports a=%v b=%v", a, b)
	}
	for i := range a {
		if a[i].LocalSwitch != b[i].RemoteSwitch || a[i].RemoteSwitch != b[i].LocalSwitch {
			t.Fatalf("border %d not symmetric: %+v vs %+v", i, a[i], b[i])
		}
	}

	// End-to-end delivery uses the canonical crossing exactly once.
	hosts := g.Hosts()
	var p0Host, p1Host topo.NodeID = -1, -1
	for _, h := range hosts {
		if g.Partition(h) == 0 && p0Host < 0 {
			p0Host = h
		}
		if g.Partition(h) == 1 && p1Host < 0 {
			p1Host = h
		}
	}
	if err := fx.fab.Advertise("p", p0Host, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	if err := fx.fab.Subscribe("s", p1Host, dz.NewSet("1")); err != nil {
		t.Fatal(err)
	}
	fx.publish(t, p0Host, "1010101010")
	fx.eng.Run()
	if fx.recv[p1Host] != 1 {
		t.Errorf("multi-border delivery: recv=%d, want exactly 1", fx.recv[p1Host])
	}
}

func TestWithControllerOptions(t *testing.T) {
	g := chainTopo(t, 2)
	dp := netem.New(g, sim.NewEngine())
	fab, err := NewFabric(g, dp,
		WithControllerOptions(core.WithMaxTrees(1)))
	if err != nil {
		t.Fatal(err)
	}
	h := g.HostsInPartition(0)
	// Two disjoint advertisements in partition 0 must merge into one tree.
	if err := fab.Advertise("p1", h[0], dz.NewSet("00")); err != nil {
		t.Fatal(err)
	}
	if err := fab.Advertise("p2", h[1], dz.NewSet("11")); err != nil {
		t.Fatal(err)
	}
	ctl, err := fab.Controller(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ctl.Trees()); got != 1 {
		t.Errorf("trees=%d, want 1 (merge threshold passed through)", got)
	}
}
