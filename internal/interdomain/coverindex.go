package interdomain

import "pleroma/internal/dz"

// coverIndex drives covering-based suppression (Section 4.2) for one
// (partition, neighbour, direction): it maintains the cumulative union of
// everything already forwarded as a canonical set plus a prefix trie over
// its members. The suppression question "is this whole set already
// forwarded?" then costs one CoversAny descent per member of the candidate
// set, instead of re-uniting every per-origin set and running quadratic
// set algebra on each forward — the same prefix-index engine the flow
// tables and the controller's tree index use.
type coverIndex struct {
	agg dz.Set // canonical cumulative union of forwarded subspaces
	// trie indexes agg's members that pack into keys; hasLong flags members
	// beyond dz.MaxKeyBits, which force the set-algebra fallback.
	trie    dz.Trie[struct{}]
	hasLong bool
}

// add folds a newly forwarded set into the index. Union can coarsen members
// non-locally (sibling merges cascade), so the trie is rebuilt from the new
// canonical aggregate rather than patched.
func (x *coverIndex) add(set dz.Set) {
	x.reset(x.agg.Union(set))
}

// reset reindexes the given cumulative aggregate from scratch.
func (x *coverIndex) reset(agg dz.Set) {
	x.agg = agg
	x.trie = dz.Trie[struct{}]{}
	x.hasLong = false
	for _, e := range agg {
		if k, ok := dz.KeyOf(e); ok {
			x.trie.Insert(k, struct{}{})
		} else {
			x.hasLong = true
		}
	}
}

// covers reports whether the already-forwarded region covers set entirely.
// For canonical operands each member of set must be covered by a single
// member of the aggregate (complete tiles merged during canonicalisation),
// which is exactly the trie's CoversAny probe. Stored keys are never
// truncated when hasLong is false, so probing with a truncated key of an
// overlong member is still exact.
func (x *coverIndex) covers(set dz.Set) bool {
	if x.hasLong {
		return x.agg.Covers(set)
	}
	for _, e := range set {
		k, _ := dz.KeyOf(e)
		if !x.trie.CoversAny(k) {
			return false
		}
	}
	return true
}

// cover returns the (lazily created) index for one neighbour.
func cover(m map[int]*coverIndex, nb int) *coverIndex {
	ci := m[nb]
	if ci == nil {
		ci = &coverIndex{}
		m[nb] = ci
	}
	return ci
}
