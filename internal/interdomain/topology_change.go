package interdomain

import (
	"errors"
	"fmt"

	"pleroma/internal/dz"
	"pleroma/internal/sortutil"
)

// HandleTopologyChange reacts to link failures or repairs: the fabric
// tears down every virtual replica, re-discovers the border ports (failed
// links drop the LLDP probes, so vanished adjacencies disappear on their
// own), rebuilds the partition spanning tree, lets every controller
// recompute its intra-partition trees, and finally re-propagates all
// advertisements and subscriptions in their original arrival order.
//
// With a redundant partition graph (e.g. a ring of partitions) traffic
// therefore survives the loss of a border link: the partition tree grows
// around the failure.
//
// The teardown phase is best-effort: a replica whose controller rejects
// the removal (e.g. a switch went away with the link) must not leave the
// fabric half-dismantled, because step 2 resets the bookkeeping the
// replica maps mirror either way. Teardown errors are collected and
// joined into the returned error after the rebuild has been attempted in
// full, and origins are processed in sorted order so a multi-error is
// deterministic.
func (f *Fabric) HandleTopologyChange() error {
	var errs []error

	// 1. Tear down all virtual replicas in every partition.
	for _, origin := range sortutil.Keys(f.advReplicas) {
		for _, r := range f.advReplicas[origin] {
			if _, err := f.parts[r.part].ctl.Unadvertise(r.id); err != nil {
				errs = append(errs, fmt.Errorf("interdomain: teardown adv replica %q: %w", r.id, err))
			}
		}
		delete(f.advReplicas, origin)
	}
	for _, origin := range sortutil.Keys(f.subReplicas) {
		for _, r := range f.subReplicas[origin] {
			if _, err := f.parts[r.part].ctl.Unsubscribe(r.id); err != nil {
				errs = append(errs, fmt.Errorf("interdomain: teardown sub replica %q: %w", r.id, err))
			}
		}
		delete(f.subReplicas, origin)
	}

	// 2. Reset inter-domain bookkeeping; local clients stay registered.
	for _, p := range f.order {
		ps := f.parts[p]
		ps.borders = make(map[int][]BorderPort)
		ps.extAdvs = nil
		ps.rcvdAdv = make(map[string]dz.Set)
		ps.rcvdSub = make(map[string]dz.Set)
		ps.fwdAdvByOrigin = make(map[int]map[string]dz.Set)
		ps.fwdSubByOrigin = make(map[int]map[string]dz.Set)
		ps.fwdAdvCover = make(map[int]*coverIndex)
		ps.fwdSubCover = make(map[int]*coverIndex)
		for id, set := range ps.localAdvs {
			ps.rcvdAdv[id] = set.Clone()
		}
		for id, set := range ps.localSubs {
			ps.rcvdSub[id] = set.Clone()
		}
	}

	// 3. Re-discover borders over the changed topology and rebuild the
	// partition spanning tree.
	if f.staticDiscovery {
		f.discoverBordersStatic()
	} else if err := f.discoverBordersLLDP(); err != nil {
		errs = append(errs, err)
		return errors.Join(errs...)
	}
	f.buildPartitionTree()

	// 4. Every controller recomputes its intra-partition trees and paths.
	for _, p := range f.order {
		if _, err := f.parts[p].ctl.RebuildTrees(); err != nil {
			errs = append(errs, fmt.Errorf("interdomain: rebuild partition %d: %w", p, err))
			return errors.Join(errs...)
		}
	}

	// 5. Re-propagate all requests along the new partition tree.
	for _, id := range f.advOrder {
		home := f.advHome[id]
		f.forwardAdv(home, id, f.parts[home].localAdvs[id], home)
	}
	for _, id := range f.subOrder {
		home := f.subHome[id]
		f.forwardSub(home, id, f.parts[home].localSubs[id], home)
	}
	return errors.Join(errs...)
}
