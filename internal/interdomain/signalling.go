package interdomain

import (
	"fmt"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/ipmc"
	"pleroma/internal/netem"
	"pleroma/internal/openflow"
	"pleroma/internal/topo"
	"pleroma/internal/wire"
)

// SignalOp is the kind of an in-band control request.
type SignalOp string

// In-band control operations.
const (
	OpAdvertise   SignalOp = "advertise"
	OpSubscribe   SignalOp = "subscribe"
	OpUnsubscribe SignalOp = "unsubscribe"
	OpUnadvertise SignalOp = "unadvertise"
)

// SignalRequest is the payload of an in-band control packet: hosts address
// it to the reserved IP_vir (Section 2 of the paper); no switch carries a
// flow for that address, so the first switch punts the packet to its
// partition's controller.
type SignalRequest struct {
	Op   SignalOp
	ID   string
	Host topo.NodeID
	Set  dz.Set
}

// SignalStats counts in-band control activity.
type SignalStats struct {
	Handled uint64
	Errors  uint64
}

// EnableInBandSignalling registers the fabric as the data plane's punt
// handler: IP_vir-addressed packets become control requests, executed
// after the given controller processing delay of simulated time. The
// fabric owns the punt handler from this point on.
func (f *Fabric) EnableInBandSignalling(processingDelay time.Duration) {
	f.signalDelay = processingDelay
	f.inBandEnabled = true
	f.dp.SetPuntHandler(f.handlePunt)
}

// SignalStats returns the in-band control counters.
func (f *Fabric) SignalStats() SignalStats { return f.signalStats }

// SendSignal emits an in-band control request from the request's host,
// serialised with the wire codec (package wire). The request takes effect
// only when the punted packet reaches the controller and its processing
// completes — the realistic activation latency of requirement 1.
func (f *Fabric) SendSignal(req SignalRequest) error {
	if _, err := f.homePartition(req.Host); err != nil {
		return err
	}
	payload, err := wire.EncodeSignal(wire.Signal{
		Op:   string(req.Op),
		ID:   req.ID,
		Host: uint32(req.Host),
		Set:  req.Set,
	})
	if err != nil {
		return fmt.Errorf("interdomain: encode signal: %w", err)
	}
	return f.dp.SendFromHost(req.Host, netem.Packet{
		Dst:       ipmc.SignalAddr,
		Publisher: req.Host,
		SizeBytes: len(payload) + 48, // payload + IPv6/UDP headers
		HopLimit:  netem.DefaultHopLimit,
		Control:   payload,
	})
}

// handlePunt dispatches punted packets: IP_vir control requests execute on
// the fabric after the processing delay; everything else (e.g. data-plane
// table misses) is dropped, as a controller without a matching
// subscription path would do.
func (f *Fabric) handlePunt(sw topo.NodeID, inPort openflow.PortID, pkt netem.Packet) {
	if !ipmc.IsSignal(pkt.Dst) {
		return
	}
	payload, ok := pkt.Control.([]byte)
	if !ok {
		return
	}
	decoded, err := wire.DecodeSignal(payload)
	if err != nil {
		f.signalStats.Errors++
		return
	}
	req := SignalRequest{
		Op:   SignalOp(decoded.Op),
		ID:   decoded.ID,
		Host: topo.NodeID(decoded.Host),
		Set:  decoded.Set,
	}
	f.dp.Engine().Schedule(f.signalDelay, func() {
		f.signalStats.Handled++
		if err := f.execSignal(req); err != nil {
			f.signalStats.Errors++
		}
	})
}

// execSignal runs one control request against the fabric.
func (f *Fabric) execSignal(req SignalRequest) error {
	switch req.Op {
	case OpAdvertise:
		return f.Advertise(req.ID, req.Host, req.Set)
	case OpSubscribe:
		return f.Subscribe(req.ID, req.Host, req.Set)
	case OpUnsubscribe:
		return f.Unsubscribe(req.ID)
	case OpUnadvertise:
		return f.Unadvertise(req.ID)
	default:
		return fmt.Errorf("interdomain: unknown signal op %q", req.Op)
	}
}
