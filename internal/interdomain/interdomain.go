// Package interdomain implements PLEROMA's interoperability layer for
// multiple independently controlled partitions (Section 4): border
// discovery (the LLDP extension of Section 4.1), controller-to-controller
// request forwarding through border switch-port tuples, virtual hosts for
// external advertisements and subscriptions, and covering-based
// suppression of redundant inter-partition control traffic (Section 4.2).
//
// A Fabric owns one core.Controller per partition of the topology and
// mediates every publish/subscribe request: local processing happens at
// the partition's own controller, then the request propagates to
// neighbouring partitions where it is replayed as a virtual client
// attached to the receiving border switch. Advertisements flood across all
// partitions; subscriptions follow the reverse paths of the overlapping
// advertisements they match.
package interdomain

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/netem"
	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/topo"
)

// BorderPort is one end of an inter-partition link as seen by the local
// partition's controller: the switch-port tuple packets to the neighbour
// leave through, plus the remote end learned during discovery.
type BorderPort struct {
	LocalSwitch  topo.NodeID
	LocalPort    openflow.PortID
	RemotePart   int
	RemoteSwitch topo.NodeID
	RemotePort   openflow.PortID
}

// ControllerLoad counts the control requests one controller received.
type ControllerLoad struct {
	// Internal requests arrive from end hosts of the own partition.
	Internal uint64
	// External requests arrive from neighbouring controllers.
	External uint64
}

// Total returns all requests handled by the controller.
func (l ControllerLoad) Total() uint64 { return l.Internal + l.External }

// Stats aggregates fabric-wide control-plane activity.
type Stats struct {
	// PerController maps partition id to its request load.
	PerController map[int]ControllerLoad
	// MessagesSent counts controller-to-controller messages.
	MessagesSent uint64
	// SuppressedByCovering counts forwardings skipped because a covering
	// request had already been sent to that neighbour.
	SuppressedByCovering uint64
}

// TotalControlTraffic returns internal + external message count — the
// quantity of Figure 7(h).
func (s Stats) TotalControlTraffic() uint64 {
	var t uint64
	for _, l := range s.PerController {
		t += l.Internal
	}
	return t + s.MessagesSent
}

// AverageControllerLoad returns the mean number of requests per
// controller — the quantity of Figure 7(g).
func (s Stats) AverageControllerLoad() float64 {
	if len(s.PerController) == 0 {
		return 0
	}
	var t uint64
	for _, l := range s.PerController {
		t += l.Total()
	}
	return float64(t) / float64(len(s.PerController))
}

// extAdv records an external advertisement known at one partition.
type extAdv struct {
	origin   string // original advertisement id
	set      dz.Set // subspaces received (cumulative)
	fromPart int    // neighbour partition it arrived from
}

// partitionState is the fabric's bookkeeping for one partition.
type partitionState struct {
	part int
	ctl  *core.Controller
	// borders maps neighbour partition -> ordered border ports (the first
	// one is the canonical crossing used for virtual clients).
	borders map[int][]BorderPort
	// treeNbs marks the neighbours on the partition spanning tree; only
	// these are used for request forwarding and event crossings.
	treeNbs map[int]bool
	// extAdvs lists external advertisements received, in arrival order.
	extAdvs []*extAdv
	// rcvdAdv/rcvdSub accumulate the subspaces already accepted per origin
	// id, so duplicate floodings (cycles in the partition graph) die out.
	rcvdAdv map[string]dz.Set
	rcvdSub map[string]dz.Set
	// fwdAdvByOrigin/fwdSubByOrigin record what was already forwarded per
	// neighbour and origin; per-origin tracking allows rebuilds after
	// removals. The cover indexes hold the cumulative unions per neighbour
	// and drive covering-based suppression via prefix-trie probes.
	fwdAdvByOrigin map[int]map[string]dz.Set
	fwdSubByOrigin map[int]map[string]dz.Set
	fwdAdvCover    map[int]*coverIndex
	fwdSubCover    map[int]*coverIndex
	// localAdvs/localSubs are the partition's own clients.
	localAdvs map[string]dz.Set
	localSubs map[string]dz.Set
	// virtual client counters for unique ids.
	vseq int
	load ControllerLoad
	// journal receives the partition controller's control ops when the
	// fabric runs with HA (WithHA); lastSnap holds the latest snapshot
	// taken through SnapshotPartition — together they are what a warm
	// standby promotes from (see ha.go). In-memory by default, file-backed
	// under WithHAJournal (the networked daemon's restart-with-state path).
	journal  core.CompactableJournal
	lastSnap []byte
}

// Option configures a Fabric.
type Option func(*Fabric)

// WithCovering toggles covering-based forwarding suppression (on by
// default; the ablation benchmark switches it off).
func WithCovering(enabled bool) Option {
	return func(f *Fabric) { f.covering = enabled }
}

// WithControllerOptions passes extra options to every per-partition
// controller.
func WithControllerOptions(opts ...core.Option) Option {
	return func(f *Fabric) { f.ctlOpts = append(f.ctlOpts, opts...) }
}

// WithStaticDiscovery replaces the LLDP probe exchange with a direct read
// of the topology (useful when the caller owns the data plane's punt
// handler or wants zero simulated discovery traffic).
func WithStaticDiscovery() Option {
	return func(f *Fabric) { f.staticDiscovery = true }
}

// WithObservability attaches the fabric's inter-partition control-traffic
// counters to reg and hands the registry and tracer down to every
// per-partition controller (core.WithObservability); the registry merges
// the per-controller instruments into fabric-wide totals at collect time.
func WithObservability(reg *obs.Registry, tracer *obs.Tracer) Option {
	return func(f *Fabric) {
		f.ctlOpts = append(f.ctlOpts, core.WithObservability(reg, tracer))
		if reg != nil {
			f.obsMessages = reg.Counter(obs.MInterdomainMessages, "Controller-to-controller messages sent between partitions.")
			f.obsSuppressed = reg.Counter(obs.MInterdomainSuppressed, "Inter-partition forwardings suppressed by covering (Section 4.2).")
			f.obsFailovers = obs.NewCounterVec()
			f.obsEpoch = obs.NewGaugeVec()
			reg.AttachCounterVec(obs.MFailovers, "Warm-standby controller takeovers, by partition.", "partition", f.obsFailovers)
			reg.AttachGaugeVec(obs.MControllerEpoch, "Controller incarnation number, by partition.", "partition", f.obsEpoch)
		}
	}
}

// WithFlowProgrammer makes every per-partition controller program switches
// through p instead of the data plane directly. The fault-injection layer
// uses this to interpose a netem.FaultyProgrammer between controllers and
// the emulated switches; event forwarding and discovery still use the
// underlying data plane.
func WithFlowProgrammer(p core.FlowProgrammer) Option {
	return func(f *Fabric) { f.prog = p }
}

// Fabric manages the controllers of all partitions of a topology.
type Fabric struct {
	g  *topo.Graph
	dp *netem.DataPlane
	// prog is the southbound interface handed to the controllers; it
	// defaults to dp and is overridden by WithFlowProgrammer (e.g. to
	// interpose fault injection).
	prog            core.FlowProgrammer
	parts           map[int]*partitionState
	order           []int
	covering        bool
	staticDiscovery bool
	ha              bool
	journalOpen     func(partition int) (core.CompactableJournal, error)
	ctlOpts         []core.Option

	messagesSent uint64
	suppressed   uint64
	// obsMessages/obsSuppressed mirror the two counters above into the
	// exported registry when WithObservability is used; nil otherwise.
	obsMessages   *obs.Counter
	obsSuppressed *obs.Counter
	// obsFailovers/obsEpoch export warm-standby takeovers and controller
	// incarnations per partition when observability is attached.
	obsFailovers  *obs.CounterVec
	obsEpoch      *obs.GaugeVec
	signalDelay   time.Duration
	signalStats   SignalStats
	inBandEnabled bool

	// registrations maps an origin client id to the virtual replicas
	// created in other partitions, for teardown.
	advReplicas map[string][]replica
	subReplicas map[string][]replica
	// advHome/subHome record the partition of the original client;
	// advOrder/subOrder preserve arrival order for rebuilds.
	advHome  map[string]int
	subHome  map[string]int
	advOrder []string
	subOrder []string
}

type replica struct {
	part int
	id   string
}

// NewFabric creates one controller per partition and performs border
// discovery. The graph must already be partitioned (topo.PartitionRing or
// topo.PartitionFatTree).
func NewFabric(g *topo.Graph, dp *netem.DataPlane, opts ...Option) (*Fabric, error) {
	f := &Fabric{
		g:           g,
		dp:          dp,
		parts:       make(map[int]*partitionState),
		covering:    true,
		advReplicas: make(map[string][]replica),
		subReplicas: make(map[string][]replica),
		advHome:     make(map[string]int),
		subHome:     make(map[string]int),
	}
	for _, opt := range opts {
		opt(f)
	}
	if f.prog == nil {
		f.prog = dp
	}
	for _, p := range g.Partitions() {
		var journal core.CompactableJournal
		if f.ha {
			if f.journalOpen != nil {
				var err error
				if journal, err = f.journalOpen(p); err != nil {
					return nil, fmt.Errorf("interdomain: open journal for partition %d: %w", p, err)
				}
			} else {
				journal = core.NewMemJournal()
			}
		}
		ctl, err := core.NewController(g, f.prog, f.controllerOpts(p, journal)...)
		if err != nil {
			return nil, fmt.Errorf("interdomain: controller for partition %d: %w", p, err)
		}
		f.parts[p] = &partitionState{
			part:           p,
			ctl:            ctl,
			journal:        journal,
			borders:        make(map[int][]BorderPort),
			rcvdAdv:        make(map[string]dz.Set),
			rcvdSub:        make(map[string]dz.Set),
			fwdAdvByOrigin: make(map[int]map[string]dz.Set),
			fwdSubByOrigin: make(map[int]map[string]dz.Set),
			fwdAdvCover:    make(map[int]*coverIndex),
			fwdSubCover:    make(map[int]*coverIndex),
			localAdvs:      make(map[string]dz.Set),
			localSubs:      make(map[string]dz.Set),
		}
		f.order = append(f.order, p)
	}
	sort.Ints(f.order)
	if f.staticDiscovery {
		f.discoverBordersStatic()
	} else if err := f.discoverBordersLLDP(); err != nil {
		return nil, err
	}
	f.buildPartitionTree()
	return f, nil
}

// buildPartitionTree restricts inter-partition request forwarding and
// event crossings to a spanning tree of the partition adjacency graph.
// With a cyclic partition graph, per-advertisement reverse paths recorded
// by different partitions can point opposite ways around a cycle; because
// flows merge by dz regardless of which path installed them, events would
// then circulate the cycle, duplicating deliveries until the hop limit.
// On a tree, non-backtracking walks are simple paths, and the canonical
// border (same physical link both ways) plus ingress-port suppression
// rules out the backtracking case — so every event crosses each partition
// at most once.
func (f *Fabric) buildPartitionTree() {
	for _, p := range f.order {
		f.parts[p].treeNbs = make(map[int]bool)
	}
	if len(f.order) == 0 {
		return
	}
	visited := map[int]bool{f.order[0]: true}
	queue := []int{f.order[0]}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, nb := range f.physicalNeighbors(p) {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			f.parts[p].treeNbs[nb] = true
			f.parts[nb].treeNbs[p] = true
			queue = append(queue, nb)
		}
	}
}

// physicalNeighbors lists every partition reachable over a border link.
func (f *Fabric) physicalNeighbors(partition int) []int {
	s, ok := f.parts[partition]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(s.borders))
	for p := range s.borders {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// discoverBordersStatic derives the border ports directly from the
// topology. It yields exactly the same result as the LLDP exchange (a
// property the tests assert) and both sort by the link-symmetric key so
// the two endpoint partitions agree on the canonical crossing.
func (f *Fabric) discoverBordersStatic() {
	links := f.g.BorderLinks()
	sort.Slice(links, func(i, j int) bool {
		return borderKey(links[i].A, links[i].B) < borderKey(links[j].A, links[j].B)
	})
	for _, l := range links {
		if l.Down {
			continue
		}
		pa := f.g.Partition(l.A)
		pb := f.g.Partition(l.B)
		if sa, ok := f.parts[pa]; ok {
			sa.borders[pb] = append(sa.borders[pb], BorderPort{
				LocalSwitch: l.A, LocalPort: l.APort, RemotePart: pb,
				RemoteSwitch: l.B, RemotePort: l.BPort,
			})
		}
		if sb, ok := f.parts[pb]; ok {
			sb.borders[pa] = append(sb.borders[pa], BorderPort{
				LocalSwitch: l.B, LocalPort: l.BPort, RemotePart: pa,
				RemoteSwitch: l.A, RemotePort: l.APort,
			})
		}
	}
}

// Controller returns the controller of one partition.
func (f *Fabric) Controller(partition int) (*core.Controller, error) {
	s, ok := f.parts[partition]
	if !ok {
		return nil, fmt.Errorf("interdomain: unknown partition %d", partition)
	}
	return s.ctl, nil
}

// Partitions returns the managed partition ids, ascending.
func (f *Fabric) Partitions() []int {
	return append([]int(nil), f.order...)
}

// Neighbors returns the partitions physically adjacent to one partition
// (discovered border links, whether or not they are on the forwarding
// tree).
func (f *Fabric) Neighbors(partition int) []int {
	return f.physicalNeighbors(partition)
}

// TreeNeighbors returns the neighbours used for request forwarding and
// event crossings: the partition's edges on the spanning tree of the
// partition graph.
func (f *Fabric) TreeNeighbors(partition int) []int {
	s, ok := f.parts[partition]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(s.treeNbs))
	for p := range s.treeNbs {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// BorderPorts returns the border ports of a partition towards a neighbour.
func (f *Fabric) BorderPorts(partition, neighbour int) []BorderPort {
	s, ok := f.parts[partition]
	if !ok {
		return nil
	}
	return append([]BorderPort(nil), s.borders[neighbour]...)
}

// Stats returns a snapshot of the fabric's control-plane counters.
func (f *Fabric) Stats() Stats {
	st := Stats{
		PerController:        make(map[int]ControllerLoad, len(f.parts)),
		MessagesSent:         f.messagesSent,
		SuppressedByCovering: f.suppressed,
	}
	for p, s := range f.parts {
		st.PerController[p] = s.load
	}
	return st
}

// RebuildTrees makes every partition controller recompute its spanning
// trees and reinstall its paths — the fabric-wide reaction to a topology
// change such as a link failure.
func (f *Fabric) RebuildTrees() error {
	for _, p := range f.order {
		if _, err := f.parts[p].ctl.RebuildTrees(); err != nil {
			return fmt.Errorf("interdomain: rebuild partition %d: %w", p, err)
		}
	}
	return nil
}

// ResyncAll runs the anti-entropy pass of every partition controller and
// merges the reports. Like the per-controller pass it is best-effort:
// permanent errors from different partitions are joined, transient
// stragglers stay quarantined for the next pass.
func (f *Fabric) ResyncAll() (core.ResyncReport, error) {
	var rr core.ResyncReport
	var errs []error
	for _, p := range f.order {
		one, err := f.parts[p].ctl.ResyncAll()
		if err != nil {
			errs = append(errs, fmt.Errorf("interdomain: resync partition %d: %w", p, err))
		}
		rr.Switches += one.Switches
		rr.FlowAdds += one.FlowAdds
		rr.FlowDeletes += one.FlowDeletes
		rr.FlowModifies += one.FlowModifies
		rr.Retries += one.Retries
		rr.Healed += one.Healed
		rr.SouthboundCalls += one.SouthboundCalls
		rr.StillDegraded = append(rr.StillDegraded, one.StillDegraded...)
	}
	return rr, errors.Join(errs...)
}

// DegradedSwitches returns the quarantined switches across all partition
// controllers, ordered by switch ID.
func (f *Fabric) DegradedSwitches() []core.DegradedSwitch {
	var out []core.DegradedSwitch
	for _, p := range f.order {
		out = append(out, f.parts[p].ctl.DegradedSwitches()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sw < out[j].Sw })
	return out
}

// VerifyTables cross-checks every partition controller's incremental flow
// state against the canonical derivation (and, through the FlowReader, the
// emulated switch tables); it returns the first inconsistency found.
func (f *Fabric) VerifyTables() error {
	for _, p := range f.order {
		if err := f.parts[p].ctl.VerifyTables(); err != nil {
			return fmt.Errorf("interdomain: partition %d: %w", p, err)
		}
	}
	return nil
}
