package interdomain

import (
	"fmt"
	"slices"

	"pleroma/internal/dz"
	"pleroma/internal/sortutil"
	"pleroma/internal/topo"
)

// Advertise processes an advertisement from a host: the local controller
// reconfigures its partition, then the advertisement floods to all other
// partitions (Section 4.2), suppressed where a covering advertisement was
// already forwarded. Existing subscriptions in remote partitions follow
// the new advertisement's reverse path back towards the publisher.
func (f *Fabric) Advertise(id string, host topo.NodeID, set dz.Set) error {
	home, err := f.homePartition(host)
	if err != nil {
		return err
	}
	if _, dup := f.advHome[id]; dup {
		return fmt.Errorf("interdomain: duplicate advertisement id %q", id)
	}
	s := f.parts[home]
	s.load.Internal++
	if _, err := s.ctl.Advertise(id, host, set); err != nil {
		return fmt.Errorf("interdomain: local advertise: %w", err)
	}
	f.advHome[id] = home
	f.advOrder = append(f.advOrder, id)
	s.localAdvs[id] = set.Clone()
	// Seed the home partition's received-set so the flood dies when it
	// comes back around a cycle of partitions.
	s.rcvdAdv[id] = set.Clone()
	f.forwardAdv(home, id, set, home)
	return nil
}

// Subscribe processes a subscription from a host: the local controller
// installs paths from local and virtual publishers, then the subscription
// follows the reverse paths of every overlapping external advertisement.
func (f *Fabric) Subscribe(id string, host topo.NodeID, set dz.Set) error {
	home, err := f.homePartition(host)
	if err != nil {
		return err
	}
	if _, dup := f.subHome[id]; dup {
		return fmt.Errorf("interdomain: duplicate subscription id %q", id)
	}
	s := f.parts[home]
	s.load.Internal++
	if _, err := s.ctl.Subscribe(id, host, set); err != nil {
		return fmt.Errorf("interdomain: local subscribe: %w", err)
	}
	f.subHome[id] = home
	f.subOrder = append(f.subOrder, id)
	s.localSubs[id] = set.Clone()
	s.rcvdSub[id] = set.Clone()
	f.forwardSub(home, id, set, home)
	return nil
}

// Unsubscribe removes a subscription everywhere. Because covering-based
// suppression may have let this subscription carry the inter-partition
// paths of finer ones, the fabric tears down all virtual subscriber
// replicas and re-propagates the surviving subscriptions.
func (f *Fabric) Unsubscribe(id string) error {
	home, ok := f.subHome[id]
	if !ok {
		return fmt.Errorf("interdomain: unknown subscription id %q", id)
	}
	s := f.parts[home]
	s.load.Internal++
	if _, err := s.ctl.Unsubscribe(id); err != nil {
		return fmt.Errorf("interdomain: local unsubscribe: %w", err)
	}
	delete(s.localSubs, id)
	delete(f.subHome, id)
	f.subOrder = removeString(f.subOrder, id)
	return f.rebuildSubPropagation()
}

// Unadvertise removes an advertisement everywhere and re-propagates the
// remaining subscriptions (their reverse paths may have changed).
func (f *Fabric) Unadvertise(id string) error {
	home, ok := f.advHome[id]
	if !ok {
		return fmt.Errorf("interdomain: unknown advertisement id %q", id)
	}
	s := f.parts[home]
	s.load.Internal++
	if _, err := s.ctl.Unadvertise(id); err != nil {
		return fmt.Errorf("interdomain: local unadvertise: %w", err)
	}
	delete(s.localAdvs, id)
	delete(f.advHome, id)
	f.advOrder = removeString(f.advOrder, id)

	// Tear down the advertisement's virtual replicas and its bookkeeping.
	for _, r := range f.advReplicas[id] {
		rs := f.parts[r.part]
		rs.load.External++
		f.messagesSent++
		f.obsMessages.Inc()
		if _, err := rs.ctl.Unadvertise(r.id); err != nil {
			return fmt.Errorf("interdomain: remove adv replica %q in partition %d: %w", r.id, r.part, err)
		}
	}
	delete(f.advReplicas, id)
	for _, p := range f.order {
		ps := f.parts[p]
		delete(ps.rcvdAdv, id)
		kept := ps.extAdvs[:0]
		for _, ea := range ps.extAdvs {
			if ea.origin != id {
				kept = append(kept, ea)
			}
		}
		ps.extAdvs = kept
		for _, nb := range sortutil.Keys(ps.fwdAdvByOrigin) {
			delete(ps.fwdAdvByOrigin[nb], id)
			// The removed origin's subspaces leave the forwarded region, so
			// the suppression index is rebuilt from the surviving origins.
			cover(ps.fwdAdvCover, nb).reset(unionOrigins(ps.fwdAdvByOrigin[nb]))
		}
	}
	return f.rebuildSubPropagation()
}

// rebuildSubPropagation removes every virtual subscriber replica and
// re-runs the inter-partition forwarding of all surviving subscriptions in
// their original arrival order.
func (f *Fabric) rebuildSubPropagation() error {
	for _, origin := range sortutil.Keys(f.subReplicas) {
		for _, r := range f.subReplicas[origin] {
			rs := f.parts[r.part]
			rs.load.External++
			f.messagesSent++
			f.obsMessages.Inc()
			if _, err := rs.ctl.Unsubscribe(r.id); err != nil {
				return fmt.Errorf("interdomain: remove sub replica %q in partition %d: %w", r.id, r.part, err)
			}
		}
		delete(f.subReplicas, origin)
	}
	for _, p := range f.order {
		ps := f.parts[p]
		ps.rcvdSub = make(map[string]dz.Set)
		ps.fwdSubByOrigin = make(map[int]map[string]dz.Set)
		ps.fwdSubCover = make(map[int]*coverIndex)
	}
	for _, origin := range f.subOrder {
		home := f.subHome[origin]
		set := f.parts[home].localSubs[origin]
		f.parts[home].rcvdSub[origin] = set.Clone()
		f.forwardSub(home, origin, set, home)
	}
	return nil
}

// HomePartition resolves the partition a host belongs to — the exported
// query the facade uses to label delivery latency by publisher partition.
func (f *Fabric) HomePartition(host topo.NodeID) (int, error) {
	return f.homePartition(host)
}

// homePartition resolves the partition a host belongs to.
func (f *Fabric) homePartition(host topo.NodeID) (int, error) {
	n, err := f.g.Node(host)
	if err != nil {
		return 0, err
	}
	if n.Kind != topo.KindHost {
		return 0, fmt.Errorf("interdomain: node %d (%s) is not a host", host, n.Name)
	}
	if _, ok := f.parts[n.Partition]; !ok {
		return 0, fmt.Errorf("interdomain: host %d in unmanaged partition %d", host, n.Partition)
	}
	return n.Partition, nil
}

// forwardAdv floods an advertisement from partition `from` to all its
// neighbours except `exclude`.
func (f *Fabric) forwardAdv(from int, origin string, set dz.Set, exclude int) {
	s := f.parts[from]
	for _, nb := range f.TreeNeighbors(from) {
		if nb == exclude {
			continue
		}
		if f.covering && cover(s.fwdAdvCover, nb).covers(set) {
			f.suppressed++
			f.obsSuppressed.Inc()
			continue
		}
		addOrigin(s.fwdAdvByOrigin, nb, origin, set)
		cover(s.fwdAdvCover, nb).add(set)
		f.messagesSent++
		f.obsMessages.Inc()
		f.receiveExternalAdv(nb, from, origin, set)
	}
}

// receiveExternalAdv handles an advertisement arriving at partition `at`
// from neighbouring partition `from`: the uncovered part is registered as
// a virtual publisher at the canonical border switch, flooded onward, and
// the subscriptions already known at `at` chase it back towards `from`.
func (f *Fabric) receiveExternalAdv(at, from int, origin string, set dz.Set) {
	s := f.parts[at]
	s.load.External++
	fresh := set.Subtract(s.rcvdAdv[origin])
	if fresh.IsEmpty() {
		return // duplicate flooding through a cycle dies out here
	}
	s.rcvdAdv[origin] = s.rcvdAdv[origin].Union(fresh)

	border, ok := f.canonicalBorder(at, from)
	if !ok {
		return
	}
	s.vseq++
	vid := fmt.Sprintf("xadv:%s#%d", origin, s.vseq)
	if _, err := s.ctl.AdvertiseVirtual(vid, border.LocalSwitch, border.LocalPort, fresh); err == nil {
		f.advReplicas[origin] = append(f.advReplicas[origin], replica{part: at, id: vid})
	}
	s.extAdvs = append(s.extAdvs, &extAdv{origin: origin, set: fresh, fromPart: from})

	f.forwardAdv(at, origin, fresh, from)

	// Reverse-path maintenance: subscriptions known here (local or
	// replicated) that overlap the fresh advertisement must follow it back.
	f.backPropagateSubs(at, from, fresh)
}

// backPropagateSubs forwards every subscription known at partition `at`
// that overlaps advSet one hop towards `toward` (the direction the fresh
// advertisement came from).
func (f *Fabric) backPropagateSubs(at, toward int, advSet dz.Set) {
	s := f.parts[at]
	type known struct {
		origin string
		set    dz.Set
	}
	var subs []known
	for _, origin := range sortutil.Keys(s.localSubs) {
		subs = append(subs, known{origin, s.localSubs[origin]})
	}
	for _, origin := range sortutil.Keys(s.rcvdSub) {
		subs = append(subs, known{origin, s.rcvdSub[origin]})
	}
	for _, k := range subs {
		ov := k.set.Intersect(advSet)
		if ov.IsEmpty() {
			continue
		}
		f.sendSubTo(at, toward, k.origin, ov)
	}
}

// forwardSub sends a subscription from partition `from` towards the
// sources of every overlapping external advertisement, except back to
// `exclude`.
func (f *Fabric) forwardSub(from int, origin string, set dz.Set, exclude int) {
	s := f.parts[from]
	targets := make(map[int]dz.Set)
	for _, ea := range s.extAdvs {
		if ea.fromPart == exclude {
			continue
		}
		ov := set.Intersect(ea.set)
		if ov.IsEmpty() {
			continue
		}
		targets[ea.fromPart] = targets[ea.fromPart].Union(ov)
	}
	nbs := make([]int, 0, len(targets))
	for nb := range targets {
		nbs = append(nbs, nb)
	}
	slices.Sort(nbs)
	for _, nb := range nbs {
		f.sendSubTo(from, nb, origin, targets[nb])
	}
}

// sendSubTo forwards one subscription to one neighbour, applying
// covering-based suppression.
func (f *Fabric) sendSubTo(from, nb int, origin string, set dz.Set) {
	s := f.parts[from]
	if f.covering && cover(s.fwdSubCover, nb).covers(set) {
		f.suppressed++
		f.obsSuppressed.Inc()
		return
	}
	addOrigin(s.fwdSubByOrigin, nb, origin, set)
	cover(s.fwdSubCover, nb).add(set)
	f.messagesSent++
	f.obsMessages.Inc()
	f.receiveExternalSub(nb, from, origin, set)
}

// receiveExternalSub handles a subscription arriving at partition `at`
// from neighbouring partition `from`: the uncovered part is registered as
// a virtual subscriber whose exit port crosses back towards `from`, and
// the subscription continues along the reverse advertisement paths.
func (f *Fabric) receiveExternalSub(at, from int, origin string, set dz.Set) {
	s := f.parts[at]
	s.load.External++
	fresh := set.Subtract(s.rcvdSub[origin])
	if fresh.IsEmpty() {
		return
	}
	s.rcvdSub[origin] = s.rcvdSub[origin].Union(fresh)

	border, ok := f.canonicalBorder(at, from)
	if !ok {
		return
	}
	s.vseq++
	vid := fmt.Sprintf("xsub:%s#%d", origin, s.vseq)
	if _, err := s.ctl.SubscribeVirtual(vid, border.LocalSwitch, border.LocalPort, fresh); err == nil {
		f.subReplicas[origin] = append(f.subReplicas[origin], replica{part: at, id: vid})
	}
	f.forwardSub(at, origin, fresh, from)
}

// canonicalBorder returns the agreed crossing between two partitions (the
// first border port in deterministic order). Both sides derive it from the
// same underlying links, so it is symmetric.
func (f *Fabric) canonicalBorder(at, neighbour int) (BorderPort, bool) {
	s := f.parts[at]
	bps := s.borders[neighbour]
	if len(bps) == 0 {
		return BorderPort{}, false
	}
	return bps[0], true
}

// unionOrigins re-unites the per-origin forwarded sets of one neighbour;
// used to rebuild a cover index after an origin is removed.
func unionOrigins(m map[string]dz.Set) dz.Set {
	var u dz.Set
	for _, set := range m {
		u = u.Union(set)
	}
	return u
}

func addOrigin(m map[int]map[string]dz.Set, nb int, origin string, set dz.Set) {
	inner := m[nb]
	if inner == nil {
		inner = make(map[string]dz.Set)
		m[nb] = inner
	}
	inner[origin] = inner[origin].Union(set)
}

func removeString(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
