package netem

import (
	"net/netip"
	"testing"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/ipmc"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// buildLine creates h1 - R1 - R2 - R3 - h2 with flows forwarding dz "1"
// from h1's side to h2.
func buildLine(t *testing.T) (*DataPlane, *sim.Engine, []topo.NodeID, []topo.NodeID) {
	t.Helper()
	g, err := topo.Linear(3, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dp := New(g, eng)
	hosts := g.Hosts()
	switches := g.Switches()

	path, err := g.ShortestPath(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	hops, err := g.RouteHops(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, hop := range hops {
		var actions []openflow.Action
		if i == len(hops)-1 {
			actions = []openflow.Action{{OutPort: hop.OutPort, SetDest: netip.MustParseAddr("fd00::2")}}
		} else {
			actions = []openflow.Action{{OutPort: hop.OutPort}}
		}
		f, err := openflow.NewFlow("1", 1, actions...)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := dp.Table(hop.Switch)
		if err != nil {
			t.Fatal(err)
		}
		tab.Add(f)
	}
	return dp, eng, hosts, switches
}

func TestEndToEndDelivery(t *testing.T) {
	dp, eng, hosts, _ := buildLine(t)
	var got []Delivery
	if err := dp.ConfigureHost(hosts[1], HostConfig{}, func(d Delivery) {
		got = append(got, d)
	}); err != nil {
		t.Fatal(err)
	}

	sch, err := space.UniformSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := sch.NewEvent(600, 5)
	if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if len(got) != 1 {
		t.Fatalf("deliveries=%d, want 1", len(got))
	}
	d := got[0]
	if d.Packet.Publisher != hosts[0] || d.Packet.Seq != 1 {
		t.Errorf("packet meta wrong: %+v", d.Packet)
	}
	if d.Packet.Dst != netip.MustParseAddr("fd00::2") {
		t.Errorf("terminal rewrite missing: dst=%v", d.Packet.Dst)
	}

	// Expected latency: 4 links × (latency + serialization) + 3 lookups.
	ser := time.Duration(64 * 8 * int64(time.Second) / topo.DefaultLinkParams.BandwidthBps)
	want := 4*(topo.DefaultLinkParams.Latency+ser) + 3*DefaultSwitchConfig.LookupDelay
	if d.At != want {
		t.Errorf("delivery at %v, want %v", d.At, want)
	}
	if dp.HostReceived(hosts[1]) != 1 {
		t.Errorf("HostReceived=%d", dp.HostReceived(hosts[1]))
	}
}

func TestTableMissCountsAndPunts(t *testing.T) {
	dp, eng, hosts, switches := buildLine(t)
	punted := 0
	dp.SetPuntHandler(func(sw topo.NodeID, inPort openflow.PortID, pkt Packet) {
		punted++
	})
	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1, 1)
	// dz "0" matches no installed flow.
	if err := dp.Publish(hosts[0], "0", ev, 64); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := dp.SwitchStatsFor(switches[0]).TableMisses; got != 1 {
		t.Errorf("misses=%d, want 1", got)
	}
	if punted != 1 {
		t.Errorf("punted=%d, want 1", punted)
	}
	if dp.HostReceived(hosts[1]) != 0 {
		t.Error("nothing must be delivered")
	}
}

func TestSignalPunt(t *testing.T) {
	dp, eng, hosts, switches := buildLine(t)
	var gotSw topo.NodeID
	var gotPkt Packet
	calls := 0
	dp.SetPuntHandler(func(sw topo.NodeID, inPort openflow.PortID, pkt Packet) {
		gotSw, gotPkt = sw, pkt
		calls++
	})
	pkt := Packet{
		Dst:       ipmc.SignalAddr,
		Publisher: hosts[0],
		SizeBytes: 64,
		HopLimit:  DefaultHopLimit,
	}
	if err := dp.SendFromHost(hosts[0], pkt); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if calls != 1 {
		t.Fatalf("punt calls=%d, want 1", calls)
	}
	if gotSw != switches[0] {
		t.Errorf("punted at %d, want first switch %d", gotSw, switches[0])
	}
	if !ipmc.IsSignal(gotPkt.Dst) {
		t.Error("punted packet must carry IP_vir")
	}
	if got := dp.SwitchStatsFor(switches[0]).Punted; got != 1 {
		t.Errorf("punt counter=%d", got)
	}
}

func TestHostSaturation(t *testing.T) {
	dp, eng, hosts, _ := buildLine(t)
	received := 0
	if err := dp.ConfigureHost(hosts[1], HostConfig{CapacityPerSec: 1000, MaxQueue: 10},
		func(Delivery) { received++ }); err != nil {
		t.Fatal(err)
	}
	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1, 1)
	// Burst of 100 packets back-to-back at t≈0: the 1k/s host can queue at
	// most 10; the rest must drop.
	for i := 0; i < 100; i++ {
		if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	rec := dp.HostReceived(hosts[1])
	drop := dp.HostDropped(hosts[1])
	if rec+drop != 100 {
		t.Fatalf("rec+drop=%d, want 100", rec+drop)
	}
	if drop == 0 {
		t.Error("saturated host must drop")
	}
	if rec == 0 {
		t.Error("host must deliver some packets")
	}
	if int(rec) != received {
		t.Errorf("callback count %d != received %d", received, rec)
	}
}

func TestUnlimitedHostNoDrops(t *testing.T) {
	dp, eng, hosts, _ := buildLine(t)
	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1, 1)
	for i := 0; i < 50; i++ {
		if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if dp.HostReceived(hosts[1]) != 50 || dp.HostDropped(hosts[1]) != 0 {
		t.Errorf("received=%d dropped=%d", dp.HostReceived(hosts[1]), dp.HostDropped(hosts[1]))
	}
}

func TestMulticastFanout(t *testing.T) {
	// One switch, one publisher, two subscribers: flow with two out ports.
	g := topo.NewGraph()
	sw := g.AddSwitch("R1")
	pub := g.AddHost("p")
	s1 := g.AddHost("s1")
	s2 := g.AddHost("s2")
	for _, h := range []topo.NodeID{pub, s1, s2} {
		if _, _, err := g.Connect(h, sw, topo.DefaultLinkParams); err != nil {
			t.Fatal(err)
		}
	}
	eng := sim.NewEngine()
	dp := New(g, eng)
	p1, _ := g.PortTowards(sw, s1)
	p2, _ := g.PortTowards(sw, s2)
	f, err := openflow.NewFlow("1", 1, openflow.Action{OutPort: p1}, openflow.Action{OutPort: p2})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := dp.Table(sw)
	tab.Add(f)

	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1023, 0)
	if err := dp.Publish(pub, "1", ev, 64); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if dp.HostReceived(s1) != 1 || dp.HostReceived(s2) != 1 {
		t.Errorf("fanout: s1=%d s2=%d", dp.HostReceived(s1), dp.HostReceived(s2))
	}
	if got := dp.SwitchStatsFor(sw).Forwarded; got != 2 {
		t.Errorf("forwarded=%d, want 2", got)
	}
	if got := dp.TotalLinkPackets(); got != 3 { // 1 in + 2 out
		t.Errorf("link packets=%d, want 3", got)
	}
}

func TestIngressPortSuppression(t *testing.T) {
	// Split horizon applies to trunk ports only: a flow listing the ingress
	// trunk must not bounce the packet back towards its upstream switch,
	// but a flow listing the ingress *host* port hairpins — that is how a
	// subscriber colocated with the publisher receives the event.
	g := topo.NewGraph()
	sw1 := g.AddSwitch("R1")
	sw2 := g.AddSwitch("R2")
	pub := g.AddHost("p")
	subHost := g.AddHost("s")
	if _, _, err := g.Connect(pub, sw1, topo.DefaultLinkParams); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Connect(sw1, sw2, topo.DefaultLinkParams); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Connect(subHost, sw2, topo.DefaultLinkParams); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dp := New(g, eng)

	// sw1: hairpin back to the publisher's own port plus the trunk onward.
	hairpin, _ := g.PortTowards(sw1, pub)
	trunkOut, _ := g.PortTowards(sw1, sw2)
	f1, err := openflow.NewFlow("1", 1,
		openflow.Action{OutPort: hairpin}, openflow.Action{OutPort: trunkOut})
	if err != nil {
		t.Fatal(err)
	}
	tab1, _ := dp.Table(sw1)
	tab1.Add(f1)

	// sw2: the ingress trunk appears among the out ports (unioned entry);
	// the packet must not bounce back towards sw1.
	trunkIn, _ := g.PortTowards(sw2, sw1)
	outPort, _ := g.PortTowards(sw2, subHost)
	f2, err := openflow.NewFlow("1", 1,
		openflow.Action{OutPort: trunkIn}, openflow.Action{OutPort: outPort})
	if err != nil {
		t.Fatal(err)
	}
	tab2, _ := dp.Table(sw2)
	tab2.Add(f2)

	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1, 1)
	if err := dp.Publish(pub, "1", ev, 64); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if dp.HostReceived(pub) != 1 {
		t.Errorf("publisher host hairpin: received %d, want 1", dp.HostReceived(pub))
	}
	if dp.HostReceived(subHost) != 1 {
		t.Errorf("subscriber received %d, want 1", dp.HostReceived(subHost))
	}
	// The trunk bounce at sw2 was suppressed: had it fired, the packet
	// would have re-entered sw1 and hairpinned to the publisher again.
	if got := dp.SwitchStatsFor(sw2).Forwarded; got != 1 {
		t.Errorf("sw2 forwarded %d, want 1 (split horizon on trunk)", got)
	}
}

func TestHopLimitBreaksLoops(t *testing.T) {
	// Three switches in a cycle, flows forwarding around the ring forever.
	g := topo.NewGraph()
	var sws []topo.NodeID
	for i := 0; i < 3; i++ {
		sws = append(sws, g.AddSwitch("R"))
	}
	pub := g.AddHost("p")
	if _, _, err := g.Connect(pub, sws[0], topo.DefaultLinkParams); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := g.Connect(sws[i], sws[(i+1)%3], topo.DefaultLinkParams); err != nil {
			t.Fatal(err)
		}
	}
	eng := sim.NewEngine()
	dp := New(g, eng)
	for i := 0; i < 3; i++ {
		port, _ := g.PortTowards(sws[i], sws[(i+1)%3])
		f, err := openflow.NewFlow("1", 1, openflow.Action{OutPort: port})
		if err != nil {
			t.Fatal(err)
		}
		tab, _ := dp.Table(sws[i])
		tab.Add(f)
	}
	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1, 1)
	if err := dp.Publish(pub, "1", ev, 64); err != nil {
		t.Fatal(err)
	}
	eng.Run() // must terminate thanks to the hop limit
	var exceeded uint64
	for _, sw := range sws {
		exceeded += dp.SwitchStatsFor(sw).HopExceeded
	}
	if exceeded != 1 {
		t.Errorf("hop-exceeded=%d, want 1", exceeded)
	}
}

func TestSoftwareSwitchPenaltyGrowsWithTableSize(t *testing.T) {
	mk := func(flows int) time.Duration {
		g, err := topo.Linear(1, topo.DefaultLinkParams)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		dp := New(g, eng)
		sw := g.Switches()[0]
		dp.SetAllSwitchConfigs(SwitchConfig{
			LookupDelay:    10 * time.Microsecond,
			PerFlowPenalty: time.Microsecond,
		})
		hosts := g.Hosts()
		tab, _ := dp.Table(sw)
		outPort, _ := g.PortTowards(sw, hosts[1])
		for i := 0; i < flows; i++ {
			f, err := openflow.NewFlow(fillerExpr(i), 0, openflow.Action{OutPort: 99})
			if err != nil {
				t.Fatal(err)
			}
			tab.Add(f)
		}
		f, err := openflow.NewFlow("1", 100, openflow.Action{OutPort: outPort})
		if err != nil {
			t.Fatal(err)
		}
		tab.Add(f)
		var at time.Duration
		if err := dp.ConfigureHost(hosts[1], HostConfig{}, func(d Delivery) { at = d.At }); err != nil {
			t.Fatal(err)
		}
		sch, _ := space.UniformSchema(2)
		ev, _ := sch.NewEvent(1, 1)
		if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return at
	}
	small := mk(10)
	big := mk(5000)
	if big <= small {
		t.Errorf("software switch must slow down with table size: %v vs %v", small, big)
	}
}

// fillerExpr generates distinct expressions for table-stuffing.
func fillerExpr(i int) dz.Expr {
	e := dz.Expr("0")
	for b := 0; b < 16; b++ {
		if i&(1<<b) != 0 {
			e += "1"
		} else {
			e += "0"
		}
	}
	return e
}

func TestTableErrors(t *testing.T) {
	g, err := topo.Linear(1, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	dp := New(g, sim.NewEngine())
	hosts := g.Hosts()
	if _, err := dp.Table(hosts[0]); err == nil {
		t.Error("Table on host must fail")
	}
	if err := dp.SetSwitchConfig(hosts[0], SwitchConfig{}); err == nil {
		t.Error("SetSwitchConfig on host must fail")
	}
	if err := dp.ConfigureHost(g.Switches()[0], HostConfig{}, nil); err == nil {
		t.Error("ConfigureHost on switch must fail")
	}
	if err := dp.Publish(hosts[0], "01x", space.Event{}, 64); err == nil {
		t.Error("invalid expr must fail")
	}
	if err := dp.SendFromHost(g.Switches()[0], Packet{}); err == nil {
		t.Error("SendFromHost on switch must fail")
	}
}

func TestLinkQueueTailDrop(t *testing.T) {
	// A slow, shallow link: a burst overruns the 2-packet queue.
	params := topo.LinkParams{
		Latency:      time.Millisecond,
		BandwidthBps: 64 * 8 * 10, // 10 packets/s at 64B
		QueuePackets: 2,
	}
	g := topo.NewGraph()
	sw := g.AddSwitch("R1")
	pub := g.AddHost("p")
	sub := g.AddHost("s")
	if _, _, err := g.Connect(pub, sw, topo.DefaultLinkParams); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Connect(sub, sw, params); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dp := New(g, eng)
	port, _ := g.PortTowards(sw, sub)
	f, err := openflow.NewFlow("1", 1, openflow.Action{OutPort: port})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := dp.Table(sw)
	tab.Add(f)

	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1, 1)
	for i := 0; i < 10; i++ {
		if err := dp.Publish(pub, "1", ev, 64); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	link, _ := g.LinkBetween(sw, sub)
	ls := dp.LinkStatsFor(link)
	if ls == nil {
		t.Fatal("no link stats")
	}
	if ls.Dropped[sw] == 0 {
		t.Error("shallow queue must tail-drop under a burst")
	}
	if ls.Packets[sw]+ls.Dropped[sw] != 10 {
		t.Errorf("sent+dropped=%d, want 10", ls.Packets[sw]+ls.Dropped[sw])
	}
	if got := dp.HostReceived(sub); got != ls.Packets[sw] {
		t.Errorf("received=%d, want %d (transmitted)", got, ls.Packets[sw])
	}
}

func TestUnboundedQueueNoDrops(t *testing.T) {
	dp, eng, hosts, _ := buildLine(t)
	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1, 1)
	for i := 0; i < 200; i++ {
		if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for _, l := range dp.Graph().Links() {
		if ls := dp.LinkStatsFor(l); ls != nil {
			for n, d := range ls.Dropped {
				if d != 0 {
					t.Errorf("unbounded link dropped %d at %d", d, n)
				}
			}
		}
	}
	if dp.HostReceived(hosts[1]) != 200 {
		t.Errorf("received=%d", dp.HostReceived(hosts[1]))
	}
}

func TestFlowProgrammerSurface(t *testing.T) {
	g, err := topo.Linear(2, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	dp := New(g, sim.NewEngine())
	sw := g.Switches()[0]
	host := g.Hosts()[0]

	f, err := openflow.NewFlow("10", 2, openflow.Action{OutPort: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := dp.AddFlow(sw, f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dp.AddFlow(host, f); err == nil {
		t.Error("AddFlow on host must fail")
	}
	if err := dp.ModifyFlow(sw, id, 3, []openflow.Action{{OutPort: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := dp.ModifyFlow(sw, openflow.FlowID(999), 3, nil); err == nil {
		t.Error("ModifyFlow unknown id must fail")
	}
	if err := dp.ModifyFlow(host, id, 3, nil); err == nil {
		t.Error("ModifyFlow on host must fail")
	}
	flows, err := dp.Flows(sw)
	if err != nil || len(flows) != 1 || flows[0].Priority != 3 {
		t.Fatalf("Flows=%v, %v", flows, err)
	}
	if _, err := dp.Flows(host); err == nil {
		t.Error("Flows on host must fail")
	}
	if got := dp.FlowModCount(); got != 2 { // add + modify
		t.Errorf("FlowModCount=%d, want 2", got)
	}
	if err := dp.DeleteFlow(sw, id); err != nil {
		t.Fatal(err)
	}
	if err := dp.DeleteFlow(sw, id); err == nil {
		t.Error("double delete must fail")
	}
	if err := dp.DeleteFlow(host, id); err == nil {
		t.Error("DeleteFlow on host must fail")
	}
}

func TestHostAddrUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := topo.NodeID(0); i < 100; i++ {
		a := HostAddr(i)
		if !a.Is6() {
			t.Fatalf("HostAddr(%d) not IPv6", i)
		}
		if seen[a.String()] {
			t.Fatalf("HostAddr(%d) collides: %v", i, a)
		}
		seen[a.String()] = true
	}
}

func TestSendFromSwitchPortErrors(t *testing.T) {
	g, err := topo.Linear(2, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	dp := New(g, sim.NewEngine())
	host := g.Hosts()[0]
	sw := g.Switches()[0]
	if err := dp.SendFromSwitchPort(host, 1, Packet{}); err == nil {
		t.Error("sending from a host must fail")
	}
	if err := dp.SendFromSwitchPort(sw, 99, Packet{}); err == nil {
		t.Error("bad port must fail")
	}
}

func TestSendFromSwitchPortDeliversToHost(t *testing.T) {
	g, err := topo.Linear(1, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dp := New(g, eng)
	sw := g.Switches()[0]
	host := g.Hosts()[0]
	port, _ := g.PortTowards(sw, host)
	got := 0
	if err := dp.ConfigureHost(host, HostConfig{}, func(Delivery) { got++ }); err != nil {
		t.Fatal(err)
	}
	if err := dp.SendFromSwitchPort(sw, port, Packet{SizeBytes: 64}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 1 {
		t.Errorf("host received %d, want 1", got)
	}
}

func TestEngineAccessor(t *testing.T) {
	g, _ := topo.Linear(1, topo.DefaultLinkParams)
	eng := sim.NewEngine()
	dp := New(g, eng)
	if dp.Engine() != eng {
		t.Error("Engine accessor wrong")
	}
	if dp.Graph() != g {
		t.Error("Graph accessor wrong")
	}
	if dp.SwitchStatsFor(topo.NodeID(999)) != (SwitchStats{}) {
		t.Error("unknown switch stats must be zero")
	}
	if dp.HostReceived(topo.NodeID(999)) != 0 || dp.HostDropped(topo.NodeID(999)) != 0 {
		t.Error("unknown host counters must be zero")
	}
	if err := dp.SetSwitchConfig(g.Switches()[0], SwitchConfig{LookupDelay: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
}

func TestPathRecording(t *testing.T) {
	dp, eng, hosts, switches := buildLine(t)
	dp.RecordPaths(true)
	var path []topo.NodeID
	if err := dp.ConfigureHost(hosts[1], HostConfig{}, func(d Delivery) {
		path = d.Packet.Path
	}); err != nil {
		t.Fatal(err)
	}
	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1, 1)
	if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(path) != len(switches) {
		t.Fatalf("path=%v, want all %d switches", path, len(switches))
	}
	for i, sw := range switches {
		if path[i] != sw {
			t.Fatalf("path=%v, want %v", path, switches)
		}
	}
}

func TestStampAndHopsRideTheDelivery(t *testing.T) {
	dp, eng, hosts, switches := buildLine(t)
	var got []Delivery
	if err := dp.ConfigureHost(hosts[1], HostConfig{}, func(d Delivery) {
		got = append(got, d)
	}); err != nil {
		t.Fatal(err)
	}
	sch, _ := space.UniformSchema(2)
	ev, _ := sch.NewEvent(1, 1)
	st := Stamp{TraceID: 0xfeed, SpanID: 0xf00d, OriginWall: 123456789, Tree: 7, Partition: 2}
	if err := dp.PublishStamped(hosts[0], "1", ev, 64, st); err != nil {
		t.Fatal(err)
	}
	if err := dp.PublishBatch(hosts[0], []Publication{{Expr: "1", Event: ev, Stamp: st}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("deliveries=%d, want 2", len(got))
	}
	for i, d := range got {
		if d.Packet.Stamp != st {
			t.Fatalf("delivery %d stamp = %+v, want %+v", i, d.Packet.Stamp, st)
		}
		if int(d.Packet.Hops) != len(switches) {
			t.Fatalf("delivery %d hops = %d, want %d", i, d.Packet.Hops, len(switches))
		}
	}
	// An unstamped publish delivers a zero stamp.
	got = nil
	if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 1 || got[0].Packet.Stamp != (Stamp{}) {
		t.Fatalf("unstamped delivery = %+v", got)
	}
}
