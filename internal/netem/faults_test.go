package netem

import (
	"errors"
	"sync"
	"testing"

	"pleroma/internal/dz"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/topo"
)

func newFaultTestDP(t *testing.T) (*DataPlane, topo.NodeID) {
	t.Helper()
	g, err := topo.Linear(3, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	return New(g, sim.NewEngine()), g.Switches()[0]
}

func faultTestFlow(t *testing.T, expr string) openflow.Flow {
	t.Helper()
	f, err := openflow.NewFlow(dz.Expr(expr), len(expr), openflow.Action{OutPort: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestScriptedFaultIsTransientSwitchDown(t *testing.T) {
	dp, sw := newFaultTestDP(t)
	fp := WithFaults(dp, FaultConfig{FailCalls: []uint64{1}})
	_, err := fp.AddFlow(sw, faultTestFlow(t, "1"))
	if err == nil {
		t.Fatal("scripted call 1 must fail")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("err=%T %v, want *InjectedError", err, err)
	}
	if !inj.Transient() {
		t.Error("injected switch-down must classify transient")
	}
	if !errors.Is(err, ErrSwitchDown) {
		t.Errorf("err=%v, want wrapped ErrSwitchDown", err)
	}
	// The fault never reached the real table.
	flows, err := dp.Flows(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 0 {
		t.Errorf("table has %d flows, want 0", len(flows))
	}
	// Unscripted call 2 succeeds.
	if _, err := fp.AddFlow(sw, faultTestFlow(t, "1")); err != nil {
		t.Fatalf("call 2: %v", err)
	}
	st := fp.Stats()
	if st.Calls != 2 || st.Injected != 1 || st.SwitchDowns != 1 {
		t.Errorf("stats=%+v, want 2 calls, 1 injected switch-down", st)
	}
}

func TestTableFullBurst(t *testing.T) {
	dp, sw := newFaultTestDP(t)
	fp := WithFaults(dp, FaultConfig{FailCalls: []uint64{1}, TableFullEvery: 1})
	_, err := fp.AddFlow(sw, faultTestFlow(t, "1"))
	if !errors.Is(err, openflow.ErrTableFull) {
		t.Fatalf("err=%v, want wrapped ErrTableFull", err)
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || !inj.Transient() {
		t.Errorf("err=%v, want transient injected error", err)
	}
	if st := fp.Stats(); st.TableFull != 1 {
		t.Errorf("stats=%+v, want 1 table-full burst", st)
	}
}

func TestDownWindowExpires(t *testing.T) {
	dp, sw := newFaultTestDP(t)
	fp := WithFaults(dp, FaultConfig{FailCalls: []uint64{1}, DownCalls: 2})
	if _, err := fp.AddFlow(sw, faultTestFlow(t, "1")); err == nil {
		t.Fatal("scripted fault must fire")
	}
	// The window keeps the switch down for the next two calls.
	for i := 0; i < 2; i++ {
		if _, err := fp.AddFlow(sw, faultTestFlow(t, "1")); !errors.Is(err, ErrSwitchDown) {
			t.Fatalf("call %d during window: err=%v, want ErrSwitchDown", i+2, err)
		}
	}
	// Then it recovers on its own.
	if _, err := fp.AddFlow(sw, faultTestFlow(t, "1")); err != nil {
		t.Fatalf("call after window: %v", err)
	}
}

func TestHealClosesDownWindow(t *testing.T) {
	dp, sw := newFaultTestDP(t)
	fp := WithFaults(dp, FaultConfig{FailCalls: []uint64{1}, DownCalls: 1 << 30})
	if _, err := fp.AddFlow(sw, faultTestFlow(t, "1")); err == nil {
		t.Fatal("scripted fault must fire")
	}
	if _, err := fp.AddFlow(sw, faultTestFlow(t, "1")); err == nil {
		t.Fatal("window must hold")
	}
	fp.Heal()
	if _, err := fp.AddFlow(sw, faultTestFlow(t, "1")); err != nil {
		t.Fatalf("call after Heal: %v", err)
	}
}

func TestBatchFaultAppliesPrefix(t *testing.T) {
	dp, sw := newFaultTestDP(t)
	fp := WithFaults(dp, FaultConfig{})
	ops := []openflow.FlowOp{
		openflow.AddOp(faultTestFlow(t, "00")),
		openflow.AddOp(faultTestFlow(t, "10")),
		openflow.AddOp(faultTestFlow(t, "110")),
	}
	fp.FailNextBatch(2)
	ids, err := fp.ApplyBatch(sw, ops)
	if err == nil {
		t.Fatal("armed batch fault must fire")
	}
	if len(ids) != 2 {
		t.Fatalf("acked %d ops, want 2", len(ids))
	}
	// The emulated table really holds exactly the acknowledged prefix.
	flows, err := fp.Flows(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Errorf("table has %d flows, want 2", len(flows))
	}
	// Disarmed afterwards: the remainder applies cleanly.
	if _, err := fp.ApplyBatch(sw, ops[2:]); err != nil {
		t.Fatalf("second batch: %v", err)
	}
}

func TestRandomFaultsAreSeededDeterministic(t *testing.T) {
	outcomes := func() []bool {
		dp, sw := newFaultTestDP(t)
		fp := WithFaults(dp, FaultConfig{Seed: 7, Rate: 0.3})
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := fp.AddFlow(sw, faultTestFlow(t, "1"))
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs across identically seeded runs", i)
		}
	}
	fails := 0
	for _, ok := range a {
		if !ok {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("fails=%d of %d, want a mix at rate 0.3", fails, len(a))
	}
}

// TestFlowModCountDuringMutations is the regression for the stats/mutation
// race: FlowModCount iterates the table map while programming calls mutate
// table state concurrently. Run with -race.
func TestFlowModCountDuringMutations(t *testing.T) {
	dp, _ := newFaultTestDP(t)
	sws := dp.g.Switches()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = dp.FlowModCount()
			}
		}
	}()
	for i := 0; i < 200; i++ {
		sw := sws[i%len(sws)]
		id, err := dp.AddFlow(sw, faultTestFlow(t, "1"))
		if err != nil {
			t.Fatal(err)
		}
		if err := dp.DeleteFlow(sw, id); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := dp.FlowModCount(); got == 0 {
		t.Error("FlowModCount must reflect the mutations")
	}
}
