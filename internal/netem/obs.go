package netem

import (
	"strconv"

	"pleroma/internal/obs"
)

// Instrument attaches the data plane's runtime metrics to reg:
// aggregate link transmission/drop counters, host delivery counters, and
// a per-switch flow-table occupancy gauge driven by the tables' size
// observers — ground truth straight from the emulated TCAMs, not the
// controller's belief about them.
//
// Call it once at setup, before the simulation runs: the counter fields
// are published to the forwarding path without synchronisation, relying
// on the happens-before edge of starting the run. Without instrumentation
// the fields stay nil and the forwarding hot path pays only nil checks.
func (dp *DataPlane) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	dp.obsLinkPackets = reg.Counter(obs.MLinkPackets, "Packets transmitted over links (all directions).")
	dp.obsLinkDrops = reg.Counter(obs.MLinkDrops, "Packets dropped at links (down links and full transmit queues).")
	dp.obsHostDeliveries = reg.Counter(obs.MHostDeliveries, "Packets handed to host applications.")
	if dp.Sharded() {
		dp.obsCrossMessages = reg.Counter(obs.MShardCrossMessages, "Packet hops that crossed a shard boundary through a barrier mailbox.")
		dp.obsMailboxDrained = reg.Gauge(obs.MShardMailbox, "Cross-shard mailbox backlog drained at the most recent barrier.")
	}

	occ := obs.NewGaugeVec()
	reg.AttachGaugeVec(obs.MFlowTableOccupancy, "Installed flows per switch (TCAM pressure), read from the emulated tables.", "switch", occ)
	for sw, table := range dp.tables {
		g := occ.With(strconv.Itoa(int(sw)))
		table.SetSizeObserver(func(n int) { g.Set(int64(n)) })
	}
}

// Instrument attaches the fault-injection counter to reg.
func (f *FaultyProgrammer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	f.mu.Lock()
	f.obsInjected = reg.Counter(obs.MInjectedFaults, "Failures injected by the southbound fault layer.")
	f.mu.Unlock()
}
