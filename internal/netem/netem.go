// Package netem emulates the data plane of an SDN network on top of the
// deterministic simulation engine: packets traverse links with propagation
// and serialization delay, switches match them against OpenFlow tables with
// a constant TCAM lookup cost, and end hosts ingest events at a bounded
// processing rate (the bottleneck observed in the paper's throughput
// experiment, Section 6.3).
//
// It substitutes for the paper's Open vSwitch testbed and Mininet: the
// observables of the evaluation — end-to-end delay, throughput saturation,
// link load — are functions of exactly the quantities modelled here.
package netem

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/ipmc"
	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// Packet is an event datagram travelling through the data plane.
type Packet struct {
	// Dst is the destination address: a dz-embedded multicast address for
	// events, a host address after terminal rewrite, or IP_vir for
	// control signalling.
	Dst netip.Addr
	// Expr is the dz-expression carried by the event (convenience copy of
	// the bits embedded in Dst when the packet was published).
	Expr dz.Expr
	// Event is the content payload, used by receivers for false-positive
	// accounting.
	Event space.Event
	// Publisher is the originating host.
	Publisher topo.NodeID
	// Seq numbers packets per publisher.
	Seq uint64
	// SizeBytes is the wire size (the paper uses up to 64-byte UDP
	// packets).
	SizeBytes int
	// SentAt is the simulated publish instant.
	SentAt time.Duration
	// HopLimit guards against forwarding loops.
	HopLimit int
	// Control carries controller-originated payloads (e.g. LLDP discovery
	// probes) opaque to the data plane.
	Control any
	// Path records the switches traversed when path recording is enabled.
	Path []topo.NodeID
}

// DefaultPacketSize is the event packet size used in the paper (≤64 bytes).
const DefaultPacketSize = 64

// DefaultHopLimit bounds the number of switch hops of a packet.
const DefaultHopLimit = 64

// SwitchConfig models the forwarding cost of a switch.
type SwitchConfig struct {
	// LookupDelay is the per-packet match cost. TCAM lookups are constant
	// time regardless of table occupancy — the property Figure 7(a)
	// demonstrates.
	LookupDelay time.Duration
	// PerFlowPenalty adds table-size-dependent cost per 1000 installed
	// flows, emulating a software switch with linear search. Zero for
	// hardware/TCAM behaviour.
	PerFlowPenalty time.Duration
}

// DefaultSwitchConfig models an Open vSwitch style fast path.
var DefaultSwitchConfig = SwitchConfig{LookupDelay: 10 * time.Microsecond}

// HostConfig models the event-processing capability of an end host.
type HostConfig struct {
	// CapacityPerSec is the sustained event ingestion rate; zero means
	// unlimited. The paper measures ~70–80k events/s on its end hosts and
	// ~170k on faster machines.
	CapacityPerSec int
	// MaxQueue is the ingress backlog (packets) before drops; zero uses
	// DefaultMaxQueue.
	MaxQueue int
}

// DefaultMaxQueue is the default host ingress queue depth.
const DefaultMaxQueue = 512

// Delivery reports one packet handed to application code on a host.
type Delivery struct {
	Host   topo.NodeID
	Packet Packet
	// At is the simulated delivery completion time.
	At time.Duration
}

// DeliverFunc consumes deliveries on a host.
type DeliverFunc func(Delivery)

// PuntFunc consumes packets addressed to IP_vir (control signalling) or
// packets without a matching flow; inPort is the switch ingress port.
type PuntFunc func(sw topo.NodeID, inPort openflow.PortID, pkt Packet)

// SwitchStats counts per-switch data-plane activity.
type SwitchStats struct {
	Forwarded   uint64
	TableMisses uint64
	HopExceeded uint64
	Punted      uint64
}

// LinkStats counts packets and bytes per link direction (indexed by the
// transmitting node).
type LinkStats struct {
	Packets map[topo.NodeID]uint64
	Bytes   map[topo.NodeID]uint64
	// Dropped counts tail-drops at a bounded transmit queue.
	Dropped map[topo.NodeID]uint64
}

type hostState struct {
	cfg       HostConfig
	busyUntil time.Duration
	queued    int
	received  uint64
	dropped   uint64
	deliver   DeliverFunc
}

// DataPlane wires a topology, per-switch flow tables, and host models onto
// a simulation engine.
//
// Concurrency: each switch's flow table carries its own lock, so
// control-plane reconfiguration (AddFlow/DeleteFlow/ModifyFlow/ApplyBatch,
// possibly from many controller goroutines touching disjoint switches) and
// data-plane forwarding interleave safely. Per-switch counters use atomics
// and the remaining shared state (link, host, and sequence counters) sits
// behind mu. The simulation engine itself stays single-threaded: packets
// are forwarded on the goroutine driving Engine.Run.
type DataPlane struct {
	g      *topo.Graph
	eng    *sim.Engine
	tables map[topo.NodeID]*openflow.Table

	// mu guards swCfg, hosts, busyUntil, queued, linkStats, seq, and
	// whole-map iteration over tables.
	mu    sync.Mutex
	swCfg map[topo.NodeID]SwitchConfig
	hosts map[topo.NodeID]*hostState
	// busyUntil tracks per-direction link availability for serialization;
	// queued tracks the per-direction transmit backlog for tail-drops.
	busyUntil map[linkDir]time.Duration
	queued    map[linkDir]int
	swStats   map[topo.NodeID]*SwitchStats
	linkStats map[*topo.Link]*LinkStats
	punt      PuntFunc
	seq       map[topo.NodeID]uint64
	// southbound counts controller→switch programming calls; a batch is
	// one call regardless of how many FlowMods it carries.
	southbound atomic.Uint64
	// recordPaths makes every packet accumulate the switches it visits.
	recordPaths bool

	// Observability counters, set once by Instrument before the simulation
	// runs and nil otherwise; the forwarding path pays a nil check when
	// instrumentation is off (obs instruments are nil-safe).
	obsLinkPackets    *obs.Counter
	obsLinkDrops      *obs.Counter
	obsHostDeliveries *obs.Counter
}

type linkDir struct {
	link *topo.Link
	from topo.NodeID
}

// New creates a data plane for the topology on the given engine. Every
// switch gets an empty flow table and DefaultSwitchConfig; every host gets
// an unlimited-capacity model until configured.
func New(g *topo.Graph, eng *sim.Engine) *DataPlane {
	dp := &DataPlane{
		g:         g,
		eng:       eng,
		tables:    make(map[topo.NodeID]*openflow.Table),
		swCfg:     make(map[topo.NodeID]SwitchConfig),
		hosts:     make(map[topo.NodeID]*hostState),
		busyUntil: make(map[linkDir]time.Duration),
		queued:    make(map[linkDir]int),
		swStats:   make(map[topo.NodeID]*SwitchStats),
		linkStats: make(map[*topo.Link]*LinkStats),
		seq:       make(map[topo.NodeID]uint64),
	}
	for _, sw := range g.Switches() {
		dp.tables[sw] = openflow.NewTable()
		dp.swCfg[sw] = DefaultSwitchConfig
		dp.swStats[sw] = &SwitchStats{}
	}
	for _, h := range g.Hosts() {
		dp.hosts[h] = &hostState{}
	}
	return dp
}

// Graph returns the underlying topology.
func (dp *DataPlane) Graph() *topo.Graph { return dp.g }

// Engine returns the simulation engine.
func (dp *DataPlane) Engine() *sim.Engine { return dp.eng }

// Table returns the flow table of a switch.
func (dp *DataPlane) Table(sw topo.NodeID) (*openflow.Table, error) {
	t, ok := dp.tables[sw]
	if !ok {
		return nil, fmt.Errorf("netem: node %d is not a switch", sw)
	}
	return t, nil
}

// SetSwitchConfig overrides the forwarding model of one switch.
func (dp *DataPlane) SetSwitchConfig(sw topo.NodeID, cfg SwitchConfig) error {
	if _, ok := dp.tables[sw]; !ok {
		return fmt.Errorf("netem: node %d is not a switch", sw)
	}
	dp.mu.Lock()
	dp.swCfg[sw] = cfg
	dp.mu.Unlock()
	return nil
}

// SetAllSwitchConfigs overrides the forwarding model of every switch.
func (dp *DataPlane) SetAllSwitchConfigs(cfg SwitchConfig) {
	dp.mu.Lock()
	for sw := range dp.swCfg {
		dp.swCfg[sw] = cfg
	}
	dp.mu.Unlock()
}

// ConfigureHost sets the processing model and delivery callback of a host.
func (dp *DataPlane) ConfigureHost(h topo.NodeID, cfg HostConfig, deliver DeliverFunc) error {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	hs, ok := dp.hosts[h]
	if !ok {
		return fmt.Errorf("netem: node %d is not a host", h)
	}
	hs.cfg = cfg
	hs.deliver = deliver
	return nil
}

// SetPuntHandler registers the controller-bound punt path.
func (dp *DataPlane) SetPuntHandler(f PuntFunc) { dp.punt = f }

// RecordPaths toggles per-packet path recording (each visited switch is
// appended to Packet.Path) — a debugging aid and the hook the forwarding
// invariants are tested against.
func (dp *DataPlane) RecordPaths(on bool) { dp.recordPaths = on }

// SwitchStatsFor returns a copy of the counters of one switch.
func (dp *DataPlane) SwitchStatsFor(sw topo.NodeID) SwitchStats {
	if s, ok := dp.swStats[sw]; ok {
		return SwitchStats{
			Forwarded:   atomic.LoadUint64(&s.Forwarded),
			TableMisses: atomic.LoadUint64(&s.TableMisses),
			HopExceeded: atomic.LoadUint64(&s.HopExceeded),
			Punted:      atomic.LoadUint64(&s.Punted),
		}
	}
	return SwitchStats{}
}

// HostReceived returns the number of packets delivered to the host
// application.
func (dp *DataPlane) HostReceived(h topo.NodeID) uint64 {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if hs, ok := dp.hosts[h]; ok {
		return hs.received
	}
	return 0
}

// HostDropped returns the number of packets dropped at host ingress.
func (dp *DataPlane) HostDropped(h topo.NodeID) uint64 {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if hs, ok := dp.hosts[h]; ok {
		return hs.dropped
	}
	return 0
}

// LinkStatsFor returns the counters of one link (may be nil if unused).
// The returned struct is shared with the data plane; read it only once the
// simulation has settled.
func (dp *DataPlane) LinkStatsFor(l *topo.Link) *LinkStats {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	return dp.linkStats[l]
}

// TotalLinkPackets sums packet transmissions over all links — the
// bandwidth-usage measure used by the tree-strategy ablation.
func (dp *DataPlane) TotalLinkPackets() uint64 {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	var total uint64
	for _, ls := range dp.linkStats {
		for _, c := range ls.Packets {
			total += c
		}
	}
	return total
}

// Publish injects an event packet from a host. The destination address is
// derived from the expression; the sequence number is assigned per
// publisher.
func (dp *DataPlane) Publish(host topo.NodeID, expr dz.Expr, ev space.Event, size int) error {
	addr, err := ipmc.EventAddr(expr)
	if err != nil {
		return fmt.Errorf("netem: publish: %w", err)
	}
	if size <= 0 {
		size = DefaultPacketSize
	}
	dp.mu.Lock()
	dp.seq[host]++
	seq := dp.seq[host]
	dp.mu.Unlock()
	pkt := Packet{
		Dst:       addr,
		Expr:      expr,
		Event:     ev,
		Publisher: host,
		Seq:       seq,
		SizeBytes: size,
		SentAt:    dp.eng.Now(),
		HopLimit:  DefaultHopLimit,
	}
	return dp.SendFromHost(host, pkt)
}

// SendFromHost transmits an arbitrary packet from a host onto its access
// link (also used for IP_vir control signalling).
func (dp *DataPlane) SendFromHost(host topo.NodeID, pkt Packet) error {
	sw, err := dp.g.AttachedSwitch(host)
	if err != nil {
		return fmt.Errorf("netem: send from host: %w", err)
	}
	link, ok := dp.g.LinkBetween(host, sw)
	if !ok {
		return fmt.Errorf("netem: host %d has no link to switch %d", host, sw)
	}
	inPort, _ := link.PortAt(sw)
	dp.transmit(link, host, pkt, func(p Packet) {
		dp.arriveAtSwitch(sw, inPort, p)
	})
	return nil
}

// SendFromSwitchPort transmits a packet out of a specific switch port — the
// OpenFlow packet-out primitive controllers use for LLDP discovery probes
// (Section 4.1 of the paper). The packet is not matched against the
// sending switch's table; it arrives at the peer as regular traffic.
func (dp *DataPlane) SendFromSwitchPort(sw topo.NodeID, port openflow.PortID, pkt Packet) error {
	if _, ok := dp.tables[sw]; !ok {
		return fmt.Errorf("netem: node %d is not a switch", sw)
	}
	peer, ok := dp.g.PortToPeer(sw, port)
	if !ok {
		return fmt.Errorf("netem: switch %d has no port %d", sw, port)
	}
	link, ok := dp.g.LinkBetween(sw, peer)
	if !ok {
		return fmt.Errorf("netem: switch %d: no link on port %d", sw, port)
	}
	if pkt.HopLimit <= 0 {
		pkt.HopLimit = DefaultHopLimit
	}
	if pkt.SizeBytes <= 0 {
		pkt.SizeBytes = DefaultPacketSize
	}
	peerNode, err := dp.g.Node(peer)
	if err != nil {
		return err
	}
	switch peerNode.Kind {
	case topo.KindSwitch:
		peerPort, _ := link.PortAt(peer)
		dp.transmit(link, sw, pkt, func(p Packet) {
			dp.arriveAtSwitch(peer, peerPort, p)
		})
	case topo.KindHost:
		dp.transmit(link, sw, pkt, func(p Packet) {
			dp.arriveAtHost(peer, p)
		})
	}
	return nil
}

// transmit models serialization + propagation of a packet over one link
// direction and schedules the arrival callback.
func (dp *DataPlane) transmit(link *topo.Link, from topo.NodeID, pkt Packet, arrive func(Packet)) {
	now := dp.eng.Now()
	dir := linkDir{link: link, from: from}
	dp.mu.Lock()
	ls := dp.linkStats[link]
	if ls == nil {
		ls = &LinkStats{
			Packets: make(map[topo.NodeID]uint64),
			Bytes:   make(map[topo.NodeID]uint64),
			Dropped: make(map[topo.NodeID]uint64),
		}
		dp.linkStats[link] = ls
	}
	if link.Down {
		ls.Dropped[from]++
		dp.mu.Unlock()
		dp.obsLinkDrops.Inc()
		return
	}
	if q := link.Params.QueuePackets; q > 0 && dp.queued[dir] >= q {
		ls.Dropped[from]++
		dp.mu.Unlock()
		dp.obsLinkDrops.Inc()
		return
	}
	var ser time.Duration
	if bw := link.Params.BandwidthBps; bw > 0 {
		ser = time.Duration(int64(pkt.SizeBytes) * 8 * int64(time.Second) / bw)
	}
	depart := now
	if b := dp.busyUntil[dir]; b > depart {
		depart = b
	}
	depart += ser
	dp.busyUntil[dir] = depart
	arriveAt := depart + link.Params.Latency

	dp.queued[dir]++
	ls.Packets[from]++
	ls.Bytes[from] += uint64(pkt.SizeBytes)
	dp.mu.Unlock()
	dp.obsLinkPackets.Inc()

	dp.eng.At(depart, func() {
		dp.mu.Lock()
		dp.queued[dir]--
		dp.mu.Unlock()
	})
	dp.eng.At(arriveAt, func() { arrive(pkt) })
}

// arriveAtSwitch performs the table lookup and fans the packet out.
func (dp *DataPlane) arriveAtSwitch(sw topo.NodeID, inPort openflow.PortID, pkt Packet) {
	stats := dp.swStats[sw]
	if pkt.HopLimit <= 0 {
		atomic.AddUint64(&stats.HopExceeded, 1)
		return
	}
	pkt.HopLimit--
	if dp.recordPaths {
		pkt.Path = append(append([]topo.NodeID(nil), pkt.Path...), sw)
	}

	if ipmc.IsSignal(pkt.Dst) {
		atomic.AddUint64(&stats.Punted, 1)
		if dp.punt != nil {
			dp.punt(sw, inPort, pkt)
		}
		return
	}

	dp.mu.Lock()
	cfg := dp.swCfg[sw]
	dp.mu.Unlock()
	table := dp.tables[sw]
	delay := cfg.LookupDelay
	if cfg.PerFlowPenalty > 0 {
		delay += cfg.PerFlowPenalty * time.Duration(table.Len()) / 1000
	}
	dp.eng.Schedule(delay, func() {
		flow, ok := table.Lookup(pkt.Dst)
		if !ok {
			atomic.AddUint64(&stats.TableMisses, 1)
			if dp.punt != nil {
				atomic.AddUint64(&stats.Punted, 1)
				dp.punt(sw, inPort, pkt)
			}
			return
		}
		for _, action := range flow.Actions {
			if action.OutPort == inPort {
				continue // never forward out the ingress port
			}
			peer, ok := dp.g.PortToPeer(sw, action.OutPort)
			if !ok {
				continue
			}
			link, ok := dp.g.LinkBetween(sw, peer)
			if !ok {
				continue
			}
			out := pkt
			if action.SetDest.IsValid() {
				out.Dst = action.SetDest
			}
			atomic.AddUint64(&stats.Forwarded, 1)
			peerNode, err := dp.g.Node(peer)
			if err != nil {
				continue
			}
			switch peerNode.Kind {
			case topo.KindSwitch:
				peerPort, _ := link.PortAt(peer)
				dp.transmit(link, sw, out, func(p Packet) {
					dp.arriveAtSwitch(peer, peerPort, p)
				})
			case topo.KindHost:
				dp.transmit(link, sw, out, func(p Packet) {
					dp.arriveAtHost(peer, p)
				})
			}
		}
	})
}

// arriveAtHost applies the host processing model and hands the packet to
// the application.
func (dp *DataPlane) arriveAtHost(h topo.NodeID, pkt Packet) {
	now := dp.eng.Now()
	dp.mu.Lock()
	hs := dp.hosts[h]
	if hs.cfg.CapacityPerSec <= 0 {
		hs.received++
		deliver := hs.deliver
		dp.mu.Unlock()
		dp.obsHostDeliveries.Inc()
		if deliver != nil {
			deliver(Delivery{Host: h, Packet: pkt, At: now})
		}
		return
	}
	maxQueue := hs.cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	if hs.queued >= maxQueue {
		hs.dropped++
		dp.mu.Unlock()
		return
	}
	service := time.Duration(int64(time.Second) / int64(hs.cfg.CapacityPerSec))
	start := now
	if hs.busyUntil > start {
		start = hs.busyUntil
	}
	done := start + service
	hs.busyUntil = done
	hs.queued++
	dp.mu.Unlock()
	dp.eng.At(done, func() {
		dp.mu.Lock()
		hs.queued--
		hs.received++
		deliver := hs.deliver
		dp.mu.Unlock()
		dp.obsHostDeliveries.Inc()
		if deliver != nil {
			deliver(Delivery{Host: h, Packet: pkt, At: dp.eng.Now()})
		}
	})
}
