// Package netem emulates the data plane of an SDN network on top of the
// deterministic simulation engine: packets traverse links with propagation
// and serialization delay, switches match them against OpenFlow tables with
// a constant TCAM lookup cost, and end hosts ingest events at a bounded
// processing rate (the bottleneck observed in the paper's throughput
// experiment, Section 6.3).
//
// It substitutes for the paper's Open vSwitch testbed and Mininet: the
// observables of the evaluation — end-to-end delay, throughput saturation,
// link load — are functions of exactly the quantities modelled here.
//
// # Fast path
//
// Forwarding runs on a precompiled plan instead of graph queries: at
// construction (and whenever the topology's structural version changes)
// the data plane compiles, per switch, a dense port → link-direction array
// whose entries point straight at per-direction link state and carry the
// peer's identity, kind, and ingress port. A packet hop therefore touches
// no maps, takes no global lock, and — because in-flight packets live in a
// free-listed slab addressed by the typed event payload — allocates
// nothing in steady state.
package netem

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/ipmc"
	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/sim/shard"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// Packet is an event datagram travelling through the data plane.
type Packet struct {
	// Dst is the destination address: a dz-embedded multicast address for
	// events, a host address after terminal rewrite, or IP_vir for
	// control signalling.
	Dst netip.Addr
	// Expr is the dz-expression carried by the event (convenience copy of
	// the bits embedded in Dst when the packet was published).
	Expr dz.Expr
	// Event is the content payload, used by receivers for false-positive
	// accounting.
	Event space.Event
	// Publisher is the originating host.
	Publisher topo.NodeID
	// Seq numbers packets per publisher.
	Seq uint64
	// SizeBytes is the wire size (the paper uses up to 64-byte UDP
	// packets).
	SizeBytes int
	// SentAt is the simulated publish instant.
	SentAt time.Duration
	// HopLimit guards against forwarding loops.
	HopLimit int
	// Control carries controller-originated payloads (e.g. LLDP discovery
	// probes) opaque to the data plane.
	Control any
	// Path records the switches traversed when path recording is enabled.
	Path []topo.NodeID
	// Stamp is the observability origin context (zero when unstamped).
	Stamp Stamp
	// Hops counts the switch hops taken so far.
	Hops uint16
}

// Stamp is the per-event observability origin context: the
// distributed-trace identity for cross-process span linking, the owning
// dissemination tree and publisher partition for latency labelling, and
// the publisher's wall-clock instant for wall-latency accounting. It is
// plain values and — like every Packet field — travels by value through
// the packet slab and cross-shard mailboxes, so stamping adds no
// allocations on the hot path. The zero Stamp means "unstamped".
type Stamp struct {
	// TraceID / SpanID link deliveries of this packet to a distributed
	// trace (0 = untraced).
	TraceID uint64
	SpanID  uint64
	// OriginWall is the publisher's wall clock at publish time (Unix
	// nanoseconds; 0 = unstamped). Only meaningful within the publishing
	// process's clock domain.
	OriginWall int64
	// Tree is the dissemination tree carrying the event (-1 or 0 when
	// unknown; tree ids are minted from 1).
	Tree int32
	// Partition is the publisher's controller partition (-1 unknown).
	Partition int32
}

// DefaultPacketSize is the event packet size used in the paper (≤64 bytes).
const DefaultPacketSize = 64

// DefaultHopLimit bounds the number of switch hops of a packet.
const DefaultHopLimit = 64

// SwitchConfig models the forwarding cost of a switch.
type SwitchConfig struct {
	// LookupDelay is the per-packet match cost. TCAM lookups are constant
	// time regardless of table occupancy — the property Figure 7(a)
	// demonstrates.
	LookupDelay time.Duration
	// PerFlowPenalty adds table-size-dependent cost per 1000 installed
	// flows, emulating a software switch with linear search. Zero for
	// hardware/TCAM behaviour.
	PerFlowPenalty time.Duration
}

// DefaultSwitchConfig models an Open vSwitch style fast path.
var DefaultSwitchConfig = SwitchConfig{LookupDelay: 10 * time.Microsecond}

// HostConfig models the event-processing capability of an end host.
type HostConfig struct {
	// CapacityPerSec is the sustained event ingestion rate; zero means
	// unlimited. The paper measures ~70–80k events/s on its end hosts and
	// ~170k on faster machines.
	CapacityPerSec int
	// MaxQueue is the ingress backlog (packets) before drops; zero uses
	// DefaultMaxQueue.
	MaxQueue int
}

// DefaultMaxQueue is the default host ingress queue depth.
const DefaultMaxQueue = 512

// Delivery reports one packet handed to application code on a host.
type Delivery struct {
	Host   topo.NodeID
	Packet Packet
	// At is the simulated delivery completion time.
	At time.Duration
}

// DeliverFunc consumes deliveries on a host.
type DeliverFunc func(Delivery)

// PuntFunc consumes packets addressed to IP_vir (control signalling) or
// packets without a matching flow; inPort is the switch ingress port.
type PuntFunc func(sw topo.NodeID, inPort openflow.PortID, pkt Packet)

// SwitchStats counts per-switch data-plane activity.
type SwitchStats struct {
	Forwarded   uint64
	TableMisses uint64
	HopExceeded uint64
	Punted      uint64
}

// LinkStats counts packets and bytes per link direction (indexed by the
// transmitting node).
type LinkStats struct {
	Packets map[topo.NodeID]uint64
	Bytes   map[topo.NodeID]uint64
	// Dropped counts tail-drops at a bounded transmit queue.
	Dropped map[topo.NodeID]uint64
}

// Publication is one event of a PublishBatch.
type Publication struct {
	Expr  dz.Expr
	Event space.Event
	// Size is the wire size; zero or negative uses DefaultPacketSize.
	Size int
	// Stamp is the observability origin context (zero when unstamped).
	Stamp Stamp
}

// dirState is the compiled state of one link direction. The plan points
// every switch port and host access link straight at its dirState, so a
// hop reads the link, updates the direction's serialization bookkeeping,
// and schedules arrival at the precompiled peer — no map, no graph query.
//
// busyUntil and queued are owned by the engine goroutine (the one driving
// injection and Engine.Run); the traffic counters are atomics so stats
// readers on other goroutines see sane values mid-run.
type dirState struct {
	link *topo.Link
	from topo.NodeID
	// idx is this direction's stable index in DataPlane.dirs, carried by
	// link-free events.
	idx int32
	// Precompiled arrival side.
	to     topo.NodeID
	toPort openflow.PortID
	toHost bool

	busyUntil time.Duration
	queued    int

	packets atomic.Uint64
	bytes   atomic.Uint64
	dropped atomic.Uint64
}

// switchPlan is the compiled forwarding view of one switch.
type switchPlan struct {
	table *openflow.Table
	stats *SwitchStats
	// cfg is replaceable mid-run (SetSwitchConfig) without locking the
	// forwarding path.
	cfg atomic.Pointer[SwitchConfig]
	// ports maps PortID (1-based; index 0 unused) to the outgoing link
	// direction, nil where no link is attached.
	ports []*dirState
}

func (p *switchPlan) dirFor(port openflow.PortID) *dirState {
	if int(port) <= 0 || int(port) >= len(p.ports) {
		return nil
	}
	return p.ports[port]
}

// hostState models one end host. busyUntil/queued/cfg/deliver are owned
// by the host's shard during a run (configuration happens between runs);
// the received/dropped counters are atomics so stats readers on other
// goroutines — and the facade's aggregate accounting — stay race-free
// when hosts on different shards deliver concurrently.
type hostState struct {
	cfg       HostConfig
	busyUntil time.Duration
	queued    int
	received  atomic.Uint64
	dropped   atomic.Uint64
	deliver   DeliverFunc
	// access is the compiled host→switch link direction (nil when the
	// host has no attached switch). Immutable after a plan build.
	access *dirState
}

// Typed event kinds the data plane schedules on the engine. The payload
// words are: A = dir index (link free) or node id (everything else),
// B = switch ingress port, Ref = packet slab slot.
const (
	evLinkFree uint8 = iota + 1
	evArriveSwitch
	evSwitchLookup
	evArriveHost
	evHostDone
)

// shardCtx is the execution context of one simulation shard: its engine,
// its private packet slab and free list (so the intra-shard fast path
// stays single-owner and allocation-free), and one outbound mailbox per
// peer shard. In single-engine mode the data plane has exactly one ctx
// and the hot path is unchanged. shardCtx is the sim.Handler the data
// plane schedules events on, so a typed event always executes against
// the slab that owns its Ref.
type shardCtx struct {
	dp  *DataPlane
	id  int32
	eng *sim.Engine

	// Packet slab: in-flight packets, addressed by event Ref; free is the
	// free list. Owned by this shard's goroutine during a run.
	slab []Packet
	free []uint32

	// out[dst] buffers packets whose next hop lands on another shard;
	// drained by flushMailboxes at every barrier. nil in single mode.
	out [][]crossMsg
}

// crossMsg is one cross-shard packet hop: the arrival event, flattened.
// The packet travels by value — the sending shard releases (or never
// allocates) its slab slot, and the receiving shard re-slabs it when the
// mailbox is drained, so no slab is ever touched by two goroutines.
type crossMsg struct {
	at   time.Duration
	kind uint8
	node int32
	port int32
	pkt  Packet
}

// DataPlane wires a topology, per-switch flow tables, and host models onto
// a simulation engine.
//
// Concurrency: each switch's flow table carries its own lock, so
// control-plane reconfiguration (AddFlow/DeleteFlow/ModifyFlow/ApplyBatch,
// possibly from many controller goroutines touching disjoint switches) and
// data-plane forwarding interleave safely. Per-switch counters, link
// counters, and host delivery/drop counters use atomics, the punt handler,
// path-recording flag, and switch configs are swapped atomically (safe to
// toggle mid-run), and mu guards publisher-sequence bookkeeping plus
// whole-map iteration over tables. In single-engine mode the simulation is
// single-threaded: packets are injected and forwarded on the goroutine
// driving Run, which also owns the packet slab and per-direction
// serialization state. Under EnableSharding each shard's worker owns the
// same state for its partition of the topology (slab, link directions
// transmitting from its nodes, its hosts), cross-shard hops travel through
// barrier-drained mailboxes, and injection is only legal between runs.
type DataPlane struct {
	g      *topo.Graph
	eng    *sim.Engine
	tables map[topo.NodeID]*openflow.Table

	// Compiled forwarding plan (engine goroutine; rebuilt when the graph's
	// structural version moves — see ensurePlan).
	plans       []*switchPlan // dense by NodeID, nil for non-switches
	hosts       []*hostState  // dense by NodeID, nil for non-hosts
	dirs        []*dirState   // append-only; dirState.idx indexes it
	dirByLink   map[*topo.Link]int32
	planVersion uint64
	planDirty   bool

	// Sharded execution (EnableSharding). local is the sole context in
	// single-engine mode and shard 0 otherwise; shardOf is the dense
	// NodeID→shard assignment (nil in single mode, so the fast path pays
	// one nil check); coord drives the barrier-window protocol.
	local   *shardCtx
	shards  []*shardCtx
	shardOf []int32
	coord   *shard.Coordinator

	// mu guards hosts' mutable state, pubSeq, swCfg, and iteration over
	// the tables map.
	mu     sync.Mutex
	swCfg  map[topo.NodeID]SwitchConfig
	pubSeq map[topo.NodeID]uint64

	swStats map[topo.NodeID]*SwitchStats

	punt        atomic.Pointer[PuntFunc]
	recordPaths atomic.Bool

	// southbound counts controller→switch programming calls; a batch is
	// one call regardless of how many FlowMods it carries.
	southbound atomic.Uint64

	// Observability counters, set once by Instrument before the simulation
	// runs and nil otherwise; the forwarding path pays a nil check when
	// instrumentation is off (obs instruments are nil-safe).
	obsLinkPackets    *obs.Counter
	obsLinkDrops      *obs.Counter
	obsHostDeliveries *obs.Counter
	obsCrossMessages  *obs.Counter
	obsMailboxDrained *obs.Gauge
}

// New creates a data plane for the topology on the given engine. Every
// switch gets an empty flow table and DefaultSwitchConfig; every host gets
// an unlimited-capacity model until configured. The forwarding plan is
// compiled immediately.
func New(g *topo.Graph, eng *sim.Engine) *DataPlane {
	dp := &DataPlane{
		g:         g,
		eng:       eng,
		tables:    make(map[topo.NodeID]*openflow.Table),
		swCfg:     make(map[topo.NodeID]SwitchConfig),
		pubSeq:    make(map[topo.NodeID]uint64),
		swStats:   make(map[topo.NodeID]*SwitchStats),
		dirByLink: make(map[*topo.Link]int32),
	}
	dp.local = &shardCtx{dp: dp, id: 0, eng: eng}
	dp.shards = []*shardCtx{dp.local}
	dp.rebuildPlan()
	return dp
}

// EnableSharding switches the data plane to parallel execution under the
// coordinator: assign maps every NodeID to a shard, shard 0 must be the
// engine the data plane was built on, and every host must share its
// attached switch's shard (so host arrivals and deliveries stay
// shard-local). With one shard this is a no-op and the classic
// single-engine path remains untouched.
//
// In sharded mode delivery and punt callbacks run on shard worker
// goroutines — at most one invocation per host at a time, but callbacks
// for hosts on different shards run concurrently and must synchronize
// any shared state.
func (dp *DataPlane) EnableSharding(coord *shard.Coordinator, assign []int32) error {
	n := coord.Shards()
	if n <= 1 {
		return nil
	}
	if coord.Engine(0) != dp.eng {
		return fmt.Errorf("netem: data plane must be built on shard 0's engine")
	}
	if err := topo.ValidateShardAssignment(dp.g, assign, n); err != nil {
		return fmt.Errorf("netem: %w", err)
	}
	dp.ensurePlan()
	shards := make([]*shardCtx, n)
	shards[0] = dp.local
	for i := 1; i < n; i++ {
		shards[i] = &shardCtx{dp: dp, id: int32(i), eng: coord.Engine(i)}
	}
	for _, c := range shards {
		c.out = make([][]crossMsg, n)
	}
	dp.shards = shards
	dp.shardOf = append([]int32(nil), assign...)
	dp.coord = coord
	coord.SetExchange(dp.flushMailboxes)
	return nil
}

// Sharded reports whether parallel execution is enabled.
func (dp *DataPlane) Sharded() bool { return dp.coord != nil }

// Run drains the simulation to quiescence: the coordinator's barrier
// drain in sharded mode, the engine's otherwise. Layers that drive the
// data plane (controllers, experiments) must use this instead of
// Engine().Run() so they work under both modes.
func (dp *DataPlane) Run() time.Duration {
	if dp.coord != nil {
		return dp.coord.Run()
	}
	return dp.eng.Run()
}

// RunUntil is Run bounded by a deadline; see sim.Engine.RunUntil.
func (dp *DataPlane) RunUntil(deadline time.Duration) time.Duration {
	if dp.coord != nil {
		return dp.coord.RunUntil(deadline)
	}
	return dp.eng.RunUntil(deadline)
}

// ctxFor returns the execution context owning a node.
func (dp *DataPlane) ctxFor(n topo.NodeID) *shardCtx {
	if dp.shardOf == nil {
		return dp.local
	}
	return dp.shards[dp.shardOf[n]]
}

// injectable rejects external packet injection while a sharded drain is
// in flight: delivery handlers run on shard goroutines, and scheduling
// from them would race the barrier protocol. Inject between runs (the
// classic driver pattern), or in single-engine mode where re-entrant
// injection remains supported.
func (dp *DataPlane) injectable() error {
	if dp.coord != nil && dp.coord.Running() {
		return fmt.Errorf("netem: cannot inject packets during a sharded run; inject between runs or use WithShards(1)")
	}
	return nil
}

// flushMailboxes moves every buffered cross-shard hop into its
// destination engine. Drain order is fixed — destination shard, then
// source shard, then FIFO within a mailbox — so the (time, seq) order
// each engine assigns to simultaneous arrivals is deterministic for a
// given shard count. Called by the coordinator at every barrier with all
// shards idle.
func (dp *DataPlane) flushMailboxes() bool {
	moved := 0
	for dst, dctx := range dp.shards {
		for _, sctx := range dp.shards {
			box := sctx.out[dst]
			if len(box) == 0 {
				continue
			}
			for i := range box {
				m := &box[i]
				slot := dctx.allocPkt(m.pkt)
				dctx.eng.AtEvent(m.at, dctx, sim.Event{Kind: m.kind, A: m.node, B: m.port, Ref: slot})
				box[i] = crossMsg{} // drop payload references
			}
			moved += len(box)
			sctx.out[dst] = box[:0]
		}
	}
	if moved > 0 {
		dp.obsCrossMessages.Add(uint64(moved))
	}
	dp.obsMailboxDrained.Set(int64(moved))
	return moved > 0
}

// InvalidatePlan discards the compiled forwarding plan; the next packet
// injection rebuilds it. Structural topology growth is detected
// automatically via the graph's version counter — this hook exists for
// mutations the version cannot see.
func (dp *DataPlane) InvalidatePlan() { dp.planDirty = true }

// ensurePlan recompiles the forwarding plan when the topology's structural
// version has moved past the compiled one. Called from injection entry
// points on the engine goroutine.
func (dp *DataPlane) ensurePlan() {
	if dp.planDirty || dp.planVersion != dp.g.Version() {
		dp.rebuildPlan()
	}
}

// rebuildPlan compiles the dense forwarding plan from the graph. Stats
// survive rebuilds: switch counters, link-direction counters, and host
// state are carried over by identity; only the dense index arrays are
// rebuilt.
func (dp *DataPlane) rebuildPlan() {
	g := dp.g
	nodes := g.Nodes()

	// Register per-link direction state (append-only so indices carried by
	// queued link-free events stay valid across rebuilds).
	for _, l := range g.Links() {
		if _, ok := dp.dirByLink[l]; ok {
			continue
		}
		base := int32(len(dp.dirs))
		dp.dirByLink[l] = base
		na, _ := g.Node(l.A)
		nb, _ := g.Node(l.B)
		dp.dirs = append(dp.dirs,
			&dirState{link: l, from: l.A, idx: base, to: l.B, toPort: l.BPort, toHost: nb.Kind == topo.KindHost},
			&dirState{link: l, from: l.B, idx: base + 1, to: l.A, toPort: l.APort, toHost: na.Kind == topo.KindHost},
		)
	}
	// dirFrom resolves the direction of l transmitting from node n.
	dirFrom := func(l *topo.Link, n topo.NodeID) *dirState {
		base := dp.dirByLink[l]
		if l.A == n {
			return dp.dirs[base]
		}
		return dp.dirs[base+1]
	}

	plans := make([]*switchPlan, len(nodes))
	hosts := make([]*hostState, len(nodes))
	dp.mu.Lock()
	oldHosts := dp.hosts
	for _, n := range nodes {
		switch n.Kind {
		case topo.KindSwitch:
			if dp.tables[n.ID] == nil {
				dp.tables[n.ID] = openflow.NewTable()
				dp.swCfg[n.ID] = DefaultSwitchConfig
				dp.swStats[n.ID] = &SwitchStats{}
			}
			p := &switchPlan{table: dp.tables[n.ID], stats: dp.swStats[n.ID]}
			cfg := dp.swCfg[n.ID]
			p.cfg.Store(&cfg)
			nbs := g.Neighbors(n.ID)
			maxPort := openflow.PortID(0)
			for _, nb := range nbs {
				if nb.Port > maxPort {
					maxPort = nb.Port
				}
			}
			p.ports = make([]*dirState, maxPort+1)
			for _, nb := range nbs {
				p.ports[nb.Port] = dirFrom(nb.Link, n.ID)
			}
			plans[n.ID] = p
		case topo.KindHost:
			hs := &hostState{}
			if int(n.ID) < len(oldHosts) && oldHosts[n.ID] != nil {
				hs = oldHosts[n.ID]
			}
			hs.access = nil
			for _, nb := range g.Neighbors(n.ID) {
				if nodes[nb.Peer].Kind == topo.KindSwitch {
					hs.access = dirFrom(nb.Link, n.ID)
					break
				}
			}
			hosts[n.ID] = hs
		}
	}
	dp.hosts = hosts
	dp.mu.Unlock()
	dp.plans = plans
	dp.planVersion = g.Version()
	dp.planDirty = false
}

// Graph returns the underlying topology.
func (dp *DataPlane) Graph() *topo.Graph { return dp.g }

// Engine returns the simulation engine.
func (dp *DataPlane) Engine() *sim.Engine { return dp.eng }

// Table returns the flow table of a switch.
func (dp *DataPlane) Table(sw topo.NodeID) (*openflow.Table, error) {
	t, ok := dp.tables[sw]
	if !ok {
		return nil, fmt.Errorf("netem: node %d is not a switch", sw)
	}
	return t, nil
}

func (dp *DataPlane) planFor(sw topo.NodeID) *switchPlan {
	if int(sw) < 0 || int(sw) >= len(dp.plans) {
		return nil
	}
	return dp.plans[sw]
}

// SetSwitchConfig overrides the forwarding model of one switch. Safe to
// call mid-run: the forwarding path picks up the new config atomically.
func (dp *DataPlane) SetSwitchConfig(sw topo.NodeID, cfg SwitchConfig) error {
	if _, ok := dp.tables[sw]; !ok {
		return fmt.Errorf("netem: node %d is not a switch", sw)
	}
	dp.mu.Lock()
	dp.swCfg[sw] = cfg
	dp.mu.Unlock()
	if p := dp.planFor(sw); p != nil {
		c := cfg
		p.cfg.Store(&c)
	}
	return nil
}

// SetAllSwitchConfigs overrides the forwarding model of every switch.
func (dp *DataPlane) SetAllSwitchConfigs(cfg SwitchConfig) {
	dp.mu.Lock()
	for sw := range dp.swCfg {
		dp.swCfg[sw] = cfg
	}
	dp.mu.Unlock()
	for _, p := range dp.plans {
		if p != nil {
			c := cfg
			p.cfg.Store(&c)
		}
	}
}

// ConfigureHost sets the processing model and delivery callback of a host.
func (dp *DataPlane) ConfigureHost(h topo.NodeID, cfg HostConfig, deliver DeliverFunc) error {
	dp.ensurePlan()
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if int(h) < 0 || int(h) >= len(dp.hosts) || dp.hosts[h] == nil {
		return fmt.Errorf("netem: node %d is not a host", h)
	}
	hs := dp.hosts[h]
	hs.cfg = cfg
	hs.deliver = deliver
	return nil
}

// SetPuntHandler registers the controller-bound punt path. Safe to call
// mid-run.
func (dp *DataPlane) SetPuntHandler(f PuntFunc) {
	if f == nil {
		dp.punt.Store(nil)
		return
	}
	dp.punt.Store(&f)
}

// RecordPaths toggles per-packet path recording (each visited switch is
// appended to Packet.Path) — a debugging aid and the hook the forwarding
// invariants are tested against. Safe to toggle mid-run.
func (dp *DataPlane) RecordPaths(on bool) { dp.recordPaths.Store(on) }

// SwitchStatsFor returns a copy of the counters of one switch.
func (dp *DataPlane) SwitchStatsFor(sw topo.NodeID) SwitchStats {
	if s, ok := dp.swStats[sw]; ok {
		return SwitchStats{
			Forwarded:   atomic.LoadUint64(&s.Forwarded),
			TableMisses: atomic.LoadUint64(&s.TableMisses),
			HopExceeded: atomic.LoadUint64(&s.HopExceeded),
			Punted:      atomic.LoadUint64(&s.Punted),
		}
	}
	return SwitchStats{}
}

// HostReceived returns the number of packets delivered to the host
// application.
func (dp *DataPlane) HostReceived(h topo.NodeID) uint64 {
	if int(h) >= 0 && int(h) < len(dp.hosts) && dp.hosts[h] != nil {
		return dp.hosts[h].received.Load()
	}
	return 0
}

// HostDropped returns the number of packets dropped at host ingress.
func (dp *DataPlane) HostDropped(h topo.NodeID) uint64 {
	if int(h) >= 0 && int(h) < len(dp.hosts) && dp.hosts[h] != nil {
		return dp.hosts[h].dropped.Load()
	}
	return 0
}

// LinkStatsFor returns the counters of one link, or nil if the link has
// carried (and dropped) nothing. The returned struct is a snapshot
// synthesized from the per-direction counters.
func (dp *DataPlane) LinkStatsFor(l *topo.Link) *LinkStats {
	base, ok := dp.dirByLink[l]
	if !ok {
		return nil
	}
	ls := &LinkStats{
		Packets: make(map[topo.NodeID]uint64),
		Bytes:   make(map[topo.NodeID]uint64),
		Dropped: make(map[topo.NodeID]uint64),
	}
	var total uint64
	for _, d := range []*dirState{dp.dirs[base], dp.dirs[base+1]} {
		if v := d.packets.Load(); v > 0 {
			ls.Packets[d.from] = v
			total += v
		}
		if v := d.bytes.Load(); v > 0 {
			ls.Bytes[d.from] = v
			total += v
		}
		if v := d.dropped.Load(); v > 0 {
			ls.Dropped[d.from] = v
			total += v
		}
	}
	if total == 0 {
		return nil
	}
	return ls
}

// TotalLinkPackets sums packet transmissions over all links — the
// bandwidth-usage measure used by the tree-strategy ablation.
func (dp *DataPlane) TotalLinkPackets() uint64 {
	var total uint64
	for _, d := range dp.dirs {
		total += d.packets.Load()
	}
	return total
}

// Publish injects an event packet from a host. The destination address is
// derived from the expression; the sequence number is assigned per
// publisher.
func (dp *DataPlane) Publish(host topo.NodeID, expr dz.Expr, ev space.Event, size int) error {
	return dp.PublishStamped(host, expr, ev, size, Stamp{})
}

// PublishStamped is Publish carrying an observability origin stamp; the
// stamp rides the packet by value to every delivery.
func (dp *DataPlane) PublishStamped(host topo.NodeID, expr dz.Expr, ev space.Event, size int, st Stamp) error {
	addr, err := ipmc.EventAddr(expr)
	if err != nil {
		return fmt.Errorf("netem: publish: %w", err)
	}
	if size <= 0 {
		size = DefaultPacketSize
	}
	dp.mu.Lock()
	dp.pubSeq[host]++
	seq := dp.pubSeq[host]
	dp.mu.Unlock()
	pkt := Packet{
		Dst:       addr,
		Expr:      expr,
		Event:     ev,
		Publisher: host,
		Seq:       seq,
		SizeBytes: size,
		SentAt:    dp.eng.Now(),
		HopLimit:  DefaultHopLimit,
		Stamp:     st,
	}
	return dp.SendFromHost(host, pkt)
}

// PublishBatch injects a burst of event packets from one host, assigning
// all sequence numbers under a single lock acquisition. The batch is
// validated up front: on error nothing is published. The resulting packet
// stream — sequence numbers, timestamps, event ordering — is identical to
// calling Publish once per publication at the same simulated instant.
func (dp *DataPlane) PublishBatch(host topo.NodeID, pubs []Publication) error {
	if len(pubs) == 0 {
		return nil
	}
	addrs := make([]netip.Addr, len(pubs))
	for i, pb := range pubs {
		addr, err := ipmc.EventAddr(pb.Expr)
		if err != nil {
			return fmt.Errorf("netem: publish: %w", err)
		}
		addrs[i] = addr
	}
	if err := dp.injectable(); err != nil {
		return err
	}
	dp.ensurePlan()
	d := dp.hostAccess(host)
	if d == nil {
		return dp.hostAccessErr(host)
	}
	c := dp.ctxFor(host)
	now := c.eng.Now()
	dp.mu.Lock()
	base := dp.pubSeq[host]
	dp.pubSeq[host] = base + uint64(len(pubs))
	dp.mu.Unlock()
	for i, pb := range pubs {
		size := pb.Size
		if size <= 0 {
			size = DefaultPacketSize
		}
		c.transmit(d, Packet{
			Dst:       addrs[i],
			Expr:      pb.Expr,
			Event:     pb.Event,
			Publisher: host,
			Seq:       base + uint64(i) + 1,
			SizeBytes: size,
			SentAt:    now,
			HopLimit:  DefaultHopLimit,
			Stamp:     pb.Stamp,
		})
	}
	return nil
}

// hostAccess resolves the compiled access-link direction of a host.
func (dp *DataPlane) hostAccess(host topo.NodeID) *dirState {
	if int(host) < 0 || int(host) >= len(dp.hosts) {
		return nil
	}
	hs := dp.hosts[host]
	if hs == nil {
		return nil
	}
	return hs.access
}

// hostAccessErr reproduces the precise error of the uncompiled lookup path
// for a host with no usable access link.
func (dp *DataPlane) hostAccessErr(host topo.NodeID) error {
	sw, err := dp.g.AttachedSwitch(host)
	if err != nil {
		return fmt.Errorf("netem: send from host: %w", err)
	}
	return fmt.Errorf("netem: host %d has no link to switch %d", host, sw)
}

// SendFromHost transmits an arbitrary packet from a host onto its access
// link (also used for IP_vir control signalling).
func (dp *DataPlane) SendFromHost(host topo.NodeID, pkt Packet) error {
	if err := dp.injectable(); err != nil {
		return err
	}
	dp.ensurePlan()
	d := dp.hostAccess(host)
	if d == nil {
		return dp.hostAccessErr(host)
	}
	dp.ctxFor(host).transmit(d, pkt)
	return nil
}

// SendFromSwitchPort transmits a packet out of a specific switch port — the
// OpenFlow packet-out primitive controllers use for LLDP discovery probes
// (Section 4.1 of the paper). The packet is not matched against the
// sending switch's table; it arrives at the peer as regular traffic.
func (dp *DataPlane) SendFromSwitchPort(sw topo.NodeID, port openflow.PortID, pkt Packet) error {
	if err := dp.injectable(); err != nil {
		return err
	}
	dp.ensurePlan()
	p := dp.planFor(sw)
	if p == nil {
		return fmt.Errorf("netem: node %d is not a switch", sw)
	}
	d := p.dirFor(port)
	if d == nil {
		if _, ok := dp.g.PortToPeer(sw, port); !ok {
			return fmt.Errorf("netem: switch %d has no port %d", sw, port)
		}
		return fmt.Errorf("netem: switch %d: no link on port %d", sw, port)
	}
	if pkt.HopLimit <= 0 {
		pkt.HopLimit = DefaultHopLimit
	}
	if pkt.SizeBytes <= 0 {
		pkt.SizeBytes = DefaultPacketSize
	}
	dp.ctxFor(sw).transmit(d, pkt)
	return nil
}

// allocPkt parks an in-flight packet in the shard's slab and returns its
// slot.
func (c *shardCtx) allocPkt(p Packet) uint32 {
	if n := len(c.free); n > 0 {
		slot := c.free[n-1]
		c.free = c.free[:n-1]
		c.slab[slot] = p
		return slot
	}
	c.slab = append(c.slab, p)
	return uint32(len(c.slab) - 1)
}

// releasePkt returns a slot to the free list, dropping payload references.
func (c *shardCtx) releasePkt(slot uint32) {
	c.slab[slot] = Packet{}
	c.free = append(c.free, slot)
}

// HandleEvent dispatches the data plane's typed simulation events for one
// shard. It implements sim.Handler and is invoked by the shard's engine
// only, so every touched structure — slab, free list, link directions and
// hosts assigned to this shard — has a single owner.
func (c *shardCtx) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case evLinkFree:
		c.dp.dirs[ev.A].queued--
	case evArriveSwitch:
		c.arriveAtSwitch(topo.NodeID(ev.A), openflow.PortID(ev.B), ev.Ref)
	case evSwitchLookup:
		c.lookupAndForward(topo.NodeID(ev.A), openflow.PortID(ev.B), ev.Ref)
	case evArriveHost:
		c.arriveAtHost(topo.NodeID(ev.A), ev.Ref)
	case evHostDone:
		c.hostDone(topo.NodeID(ev.A), ev.Ref)
	}
}

// transmit models serialization + propagation of a packet over one link
// direction and schedules the link-free and arrival events. The event
// order (link free first, then arrival) is load-bearing: it fixes the
// (time, seq) interleaving every recorded experiment depends on. The
// caller must be the context owning d.from; when the arrival side lives
// on another shard the hop is buffered as a mailbox message instead of a
// local event (the link-free stays local — the transmit queue belongs to
// the sending side).
func (c *shardCtx) transmit(d *dirState, pkt Packet) {
	dp := c.dp
	link := d.link
	if link.Down {
		d.dropped.Add(1)
		dp.obsLinkDrops.Inc()
		return
	}
	if q := link.Params.QueuePackets; q > 0 && d.queued >= q {
		d.dropped.Add(1)
		dp.obsLinkDrops.Inc()
		return
	}
	var ser time.Duration
	if bw := link.Params.BandwidthBps; bw > 0 {
		ser = time.Duration(int64(pkt.SizeBytes) * 8 * int64(time.Second) / bw)
	}
	depart := c.eng.Now()
	if d.busyUntil > depart {
		depart = d.busyUntil
	}
	depart += ser
	d.busyUntil = depart
	arriveAt := depart + link.Params.Latency

	d.queued++
	d.packets.Add(1)
	d.bytes.Add(uint64(pkt.SizeBytes))
	dp.obsLinkPackets.Inc()

	c.eng.AtEvent(depart, c, sim.Event{Kind: evLinkFree, A: d.idx})
	kind := evArriveSwitch
	if d.toHost {
		kind = evArriveHost
	}
	if so := dp.shardOf; so != nil {
		if dst := so[d.to]; dst != c.id {
			c.out[dst] = append(c.out[dst],
				crossMsg{at: arriveAt, kind: kind, node: int32(d.to), port: int32(d.toPort), pkt: pkt})
			return
		}
	}
	slot := c.allocPkt(pkt)
	c.eng.AtEvent(arriveAt, c, sim.Event{Kind: kind, A: int32(d.to), B: int32(d.toPort), Ref: slot})
}

// arriveAtSwitch charges hop accounting, punts signal traffic, and
// schedules the table lookup after the switch's lookup delay.
func (c *shardCtx) arriveAtSwitch(sw topo.NodeID, inPort openflow.PortID, slot uint32) {
	dp := c.dp
	p := dp.plans[sw]
	pkt := &c.slab[slot]
	if pkt.HopLimit <= 0 {
		atomic.AddUint64(&p.stats.HopExceeded, 1)
		c.releasePkt(slot)
		return
	}
	pkt.HopLimit--
	pkt.Hops++
	if dp.recordPaths.Load() {
		pkt.Path = append(append([]topo.NodeID(nil), pkt.Path...), sw)
	}

	if ipmc.IsSignal(pkt.Dst) {
		atomic.AddUint64(&p.stats.Punted, 1)
		punt := dp.punt.Load()
		out := *pkt
		c.releasePkt(slot)
		if punt != nil {
			(*punt)(sw, inPort, out)
		}
		return
	}

	cfg := p.cfg.Load()
	delay := cfg.LookupDelay
	if cfg.PerFlowPenalty > 0 {
		delay += cfg.PerFlowPenalty * time.Duration(p.table.Len()) / 1000
	}
	c.eng.ScheduleEvent(delay, c, sim.Event{Kind: evSwitchLookup, A: int32(sw), B: int32(inPort), Ref: slot})
}

// lookupAndForward performs the table lookup and fans the packet out over
// the compiled port array.
func (c *shardCtx) lookupAndForward(sw topo.NodeID, inPort openflow.PortID, slot uint32) {
	p := c.dp.plans[sw]
	pkt := c.slab[slot]
	c.releasePkt(slot)
	flow, ok := p.table.Lookup(pkt.Dst)
	if !ok {
		atomic.AddUint64(&p.stats.TableMisses, 1)
		if punt := c.dp.punt.Load(); punt != nil {
			atomic.AddUint64(&p.stats.Punted, 1)
			(*punt)(sw, inPort, pkt)
		}
		return
	}
	for _, action := range flow.Actions {
		d := p.dirFor(action.OutPort)
		if d == nil {
			continue
		}
		if action.OutPort == inPort && !d.toHost {
			// Split horizon on trunk ports: flow entries union the out-ports
			// of every established path, so the ingress trunk can appear in
			// the action set and bouncing the packet back would duplicate
			// deliveries or loop. Host-facing ports are exempt — a hairpin
			// out the ingress port is how a subscriber colocated with the
			// publisher receives the event.
			continue
		}
		out := pkt
		if action.SetDest.IsValid() {
			out.Dst = action.SetDest
		}
		atomic.AddUint64(&p.stats.Forwarded, 1)
		c.transmit(d, out)
	}
}

// arriveAtHost applies the host processing model and hands the packet to
// the application. Hosts always share their attached switch's shard, so
// arrivals are shard-local and the mutable host state needs no lock.
func (c *shardCtx) arriveAtHost(h topo.NodeID, slot uint32) {
	now := c.eng.Now()
	hs := c.dp.hosts[h]
	if hs.cfg.CapacityPerSec <= 0 {
		hs.received.Add(1)
		c.dp.obsHostDeliveries.Inc()
		pkt := c.slab[slot]
		c.releasePkt(slot)
		if hs.deliver != nil {
			hs.deliver(Delivery{Host: h, Packet: pkt, At: now})
		}
		return
	}
	maxQueue := hs.cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	if hs.queued >= maxQueue {
		hs.dropped.Add(1)
		c.releasePkt(slot)
		return
	}
	service := time.Duration(int64(time.Second) / int64(hs.cfg.CapacityPerSec))
	start := now
	if hs.busyUntil > start {
		start = hs.busyUntil
	}
	done := start + service
	hs.busyUntil = done
	hs.queued++
	c.eng.AtEvent(done, c, sim.Event{Kind: evHostDone, A: int32(h), Ref: slot})
}

// hostDone completes a queued host ingestion and delivers the packet.
func (c *shardCtx) hostDone(h topo.NodeID, slot uint32) {
	hs := c.dp.hosts[h]
	hs.queued--
	hs.received.Add(1)
	c.dp.obsHostDeliveries.Inc()
	pkt := c.slab[slot]
	c.releasePkt(slot)
	if hs.deliver != nil {
		hs.deliver(Delivery{Host: h, Packet: pkt, At: c.eng.Now()})
	}
}
