package netem

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"pleroma/internal/openflow"
	"pleroma/internal/topo"
)

// HostAddr derives the unicast address of a host node (fd00::<id+1>); the
// controller uses it for the terminal set-destination rewrite.
func HostAddr(h topo.NodeID) netip.Addr {
	var b [16]byte
	b[0] = 0xfd
	binary.BigEndian.PutUint64(b[8:], uint64(h)+1)
	return netip.AddrFrom16(b)
}

// AddFlow installs a flow on a switch (FlowProgrammer surface). It fails
// with openflow.ErrTableFull when the switch's TCAM budget is exhausted.
func (dp *DataPlane) AddFlow(sw topo.NodeID, f openflow.Flow) (openflow.FlowID, error) {
	t, err := dp.Table(sw)
	if err != nil {
		return 0, err
	}
	dp.southbound.Add(1)
	return t.TryAdd(f)
}

// DeleteFlow removes a flow from a switch.
func (dp *DataPlane) DeleteFlow(sw topo.NodeID, id openflow.FlowID) error {
	t, err := dp.Table(sw)
	if err != nil {
		return err
	}
	dp.southbound.Add(1)
	if !t.Delete(id) {
		return fmt.Errorf("netem: switch %d has no flow %d", sw, id)
	}
	return nil
}

// ModifyFlow updates priority and actions of an installed flow.
func (dp *DataPlane) ModifyFlow(sw topo.NodeID, id openflow.FlowID, priority int, actions []openflow.Action) error {
	t, err := dp.Table(sw)
	if err != nil {
		return err
	}
	dp.southbound.Add(1)
	if !t.Modify(id, priority, actions) {
		return fmt.Errorf("netem: switch %d has no flow %d", sw, id)
	}
	return nil
}

// ApplyBatch applies a whole batch of FlowMods to one switch in a single
// southbound call, modelling an OpenFlow bundle (core.BatchFlowProgrammer
// surface). Operations apply in order; on failure the returned slice tells
// the caller which prefix took effect.
func (dp *DataPlane) ApplyBatch(sw topo.NodeID, ops []openflow.FlowOp) ([]openflow.FlowID, error) {
	t, err := dp.Table(sw)
	if err != nil {
		return nil, err
	}
	dp.southbound.Add(1)
	return t.ApplyBatch(ops)
}

// SouthboundCalls returns the number of controller→switch programming
// calls made so far; a batch counts once however many FlowMods it carries.
func (dp *DataPlane) SouthboundCalls() uint64 { return dp.southbound.Load() }

// Flows lists the flows installed on a switch.
func (dp *DataPlane) Flows(sw topo.NodeID) ([]openflow.Flow, error) {
	t, err := dp.Table(sw)
	if err != nil {
		return nil, err
	}
	return t.Flows(), nil
}

// FlowModCount sums FlowMod operations over all switches. The iteration
// holds dp.mu so stats collection can never race a mutation of the table
// map (e.g. switch registration); per-table counters are read under each
// table's own lock.
func (dp *DataPlane) FlowModCount() uint64 {
	dp.mu.Lock()
	tables := make([]*openflow.Table, 0, len(dp.tables))
	for _, t := range dp.tables {
		tables = append(tables, t)
	}
	dp.mu.Unlock()
	var total uint64
	for _, t := range tables {
		total += t.Stats().Total()
	}
	return total
}
