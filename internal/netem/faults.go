package netem

import (
	"fmt"
	"math/rand"
	"sync"

	"pleroma/internal/obs"
	"pleroma/internal/openflow"
	"pleroma/internal/topo"
)

// This file implements the southbound fault-injection layer: a
// FaultyProgrammer wraps the DataPlane's flow-programming surface and
// injects switch unreachability, mid-batch bundle failures, and TCAM
// pressure (ErrTableFull bursts) — scripted for deterministic unit tests
// or seeded-random for soak runs. The controller's retry/quarantine/resync
// machinery (internal/core) is exercised entirely through this layer, so
// every recovery path is testable without real switch failures.

// InjectedError is the error a FaultyProgrammer returns for a fault it
// injected. It wraps the emulated cause (ErrSwitchDown or
// openflow.ErrTableFull) and reports whether a retry may succeed.
type InjectedError struct {
	// Sw is the switch the failed call addressed.
	Sw topo.NodeID
	// Err is the emulated cause.
	Err error
	// IsTransient marks faults that clear on their own (switch restarts,
	// bundle timeouts, short TCAM pressure bursts).
	IsTransient bool
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("netem: injected fault on switch %d: %v", e.Sw, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// Transient implements the core.TransientError classification.
func (e *InjectedError) Transient() bool { return e.IsTransient }

// ErrSwitchDown is the cause carried by injected unreachability faults.
var ErrSwitchDown = fmt.Errorf("switch unreachable")

// FaultConfig shapes the fault injection of a FaultyProgrammer.
type FaultConfig struct {
	// Seed drives the random fault source.
	Seed int64
	// Rate is the per-FlowMod probability of an injected fault in [0,1).
	// In a batch every operation rolls independently, so faults strike
	// mid-batch and exercise the prefix semantics.
	Rate float64
	// FailCalls scripts deterministic faults: the n-th southbound call
	// (1-based, counted across all switches) fails. Batches fail after
	// applying half their operations, so scripted faults always test the
	// partial-batch path.
	FailCalls []uint64
	// DownCalls keeps a switch unreachable for this many subsequent
	// southbound calls after an unreachability fault hits it (a transient
	// switch-down window). Zero injects isolated single-call faults.
	DownCalls int
	// TableFullEvery makes every n-th injected fault present as a
	// transient ErrTableFull burst instead of switch unreachability
	// (0 = never).
	TableFullEvery int
}

// FaultStats counts the faults a FaultyProgrammer injected.
type FaultStats struct {
	// Calls counts southbound calls that reached the layer.
	Calls uint64
	// Injected counts injected failures (including repeat failures while
	// a switch-down window is open).
	Injected uint64
	// SwitchDowns counts opened switch-down windows.
	SwitchDowns uint64
	// TableFull counts injected ErrTableFull bursts.
	TableFull uint64
}

// FaultyProgrammer interposes fault injection between a controller and the
// data plane. It implements the same programming surface as *DataPlane
// (core.FlowProgrammer, core.BatchFlowProgrammer, core.FlowReader); reads
// (Flows) are never faulted, modelling a controller that can always query
// switch state once the switch answers at all — the resync pass depends
// on that to compute repairs.
//
// It is safe for concurrent use; fault decisions serialise behind one
// mutex, so seeded runs are reproducible whenever the caller serialises
// its southbound calls (e.g. core.WithRefreshWorkers(1)).
type FaultyProgrammer struct {
	dp  *DataPlane
	cfg FaultConfig

	mu        sync.Mutex
	rng       *rand.Rand
	calls     uint64
	scripted  map[uint64]bool
	downUntil map[topo.NodeID]uint64
	oneShot   int // -1 when unarmed; otherwise op index for the next batch
	faults    uint64
	stats     FaultStats
	// obsInjected mirrors stats.Injected into an exported counter when the
	// layer is instrumented (see Instrument); nil otherwise.
	obsInjected *obs.Counter
}

// WithFaults wraps the data plane's programming surface in a
// fault-injection layer.
func WithFaults(dp *DataPlane, cfg FaultConfig) *FaultyProgrammer {
	f := &FaultyProgrammer{
		dp:        dp,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		scripted:  make(map[uint64]bool),
		downUntil: make(map[topo.NodeID]uint64),
		oneShot:   -1,
	}
	for _, c := range cfg.FailCalls {
		f.scripted[c] = true
	}
	return f
}

// FailNextBatch arms a one-shot scripted fault: the next ApplyBatch call
// fails after applying exactly opIndex operations (transient switch
// unreachability). Single-op calls treat any armed index as "fail now".
func (f *FaultyProgrammer) FailNextBatch(opIndex int) {
	f.mu.Lock()
	f.oneShot = opIndex
	f.mu.Unlock()
}

// Heal closes every open switch-down window.
func (f *FaultyProgrammer) Heal() {
	f.mu.Lock()
	f.downUntil = make(map[topo.NodeID]uint64)
	f.mu.Unlock()
}

// SetRate replaces the random fault probability (e.g. to stop injection
// before a convergence check).
func (f *FaultyProgrammer) SetRate(rate float64) {
	f.mu.Lock()
	f.cfg.Rate = rate
	f.mu.Unlock()
}

// Stats returns a snapshot of the injection counters.
func (f *FaultyProgrammer) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// newFault builds the injected error for one fault occurrence, opening a
// switch-down window unless the fault presents as a table-full burst.
// Callers hold f.mu.
func (f *FaultyProgrammer) newFault(sw topo.NodeID) *InjectedError {
	f.faults++
	f.stats.Injected++
	f.obsInjected.Inc()
	if f.cfg.TableFullEvery > 0 && f.faults%uint64(f.cfg.TableFullEvery) == 0 {
		f.stats.TableFull++
		return &InjectedError{Sw: sw, Err: openflow.ErrTableFull, IsTransient: true}
	}
	f.stats.SwitchDowns++
	if f.cfg.DownCalls > 0 {
		f.downUntil[sw] = f.calls + uint64(f.cfg.DownCalls)
	}
	return &InjectedError{Sw: sw, Err: ErrSwitchDown, IsTransient: true}
}

// admit charges one southbound call and returns a fault if the switch is
// inside a down window. Callers hold f.mu.
func (f *FaultyProgrammer) admit(sw topo.NodeID) *InjectedError {
	f.calls++
	f.stats.Calls++
	if until, down := f.downUntil[sw]; down {
		if f.calls <= until {
			f.stats.Injected++
			f.obsInjected.Inc()
			return &InjectedError{Sw: sw, Err: ErrSwitchDown, IsTransient: true}
		}
		delete(f.downUntil, sw)
	}
	return nil
}

// decide rolls the per-op fault sources for a single-op call. Callers
// hold f.mu.
func (f *FaultyProgrammer) decide(sw topo.NodeID) *InjectedError {
	if f.oneShot >= 0 {
		f.oneShot = -1
		return f.newFault(sw)
	}
	if f.scripted[f.calls] {
		return f.newFault(sw)
	}
	if f.cfg.Rate > 0 && f.rng.Float64() < f.cfg.Rate {
		return f.newFault(sw)
	}
	return nil
}

// decideBatch picks the cut position for a batch of n ops: n means no
// fault; otherwise ops[:cut] apply and the call fails. Callers hold f.mu.
func (f *FaultyProgrammer) decideBatch(sw topo.NodeID, n int) (int, *InjectedError) {
	if f.oneShot >= 0 {
		cut := f.oneShot
		f.oneShot = -1
		if cut > n {
			cut = n
		}
		return cut, f.newFault(sw)
	}
	if f.scripted[f.calls] {
		return n / 2, f.newFault(sw)
	}
	if f.cfg.Rate > 0 {
		for i := 0; i < n; i++ {
			if f.rng.Float64() < f.cfg.Rate {
				return i, f.newFault(sw)
			}
		}
	}
	return n, nil
}

// AddFlow implements core.FlowProgrammer with fault injection.
func (f *FaultyProgrammer) AddFlow(sw topo.NodeID, fl openflow.Flow) (openflow.FlowID, error) {
	f.mu.Lock()
	err := f.admit(sw)
	if err == nil {
		err = f.decide(sw)
	}
	f.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return f.dp.AddFlow(sw, fl)
}

// DeleteFlow implements core.FlowProgrammer with fault injection.
func (f *FaultyProgrammer) DeleteFlow(sw topo.NodeID, id openflow.FlowID) error {
	f.mu.Lock()
	err := f.admit(sw)
	if err == nil {
		err = f.decide(sw)
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.dp.DeleteFlow(sw, id)
}

// ModifyFlow implements core.FlowProgrammer with fault injection.
func (f *FaultyProgrammer) ModifyFlow(sw topo.NodeID, id openflow.FlowID, priority int, actions []openflow.Action) error {
	f.mu.Lock()
	err := f.admit(sw)
	if err == nil {
		err = f.decide(sw)
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.dp.ModifyFlow(sw, id, priority, actions)
}

// ApplyBatch implements core.BatchFlowProgrammer with mid-batch fault
// injection: a fault at op i applies ops[:i] to the real table and returns
// the acknowledged prefix alongside the injected error, exactly the
// OpenFlow-bundle failure shape the controller's prefix accounting
// handles.
func (f *FaultyProgrammer) ApplyBatch(sw topo.NodeID, ops []openflow.FlowOp) ([]openflow.FlowID, error) {
	f.mu.Lock()
	injErr := f.admit(sw)
	cut := len(ops)
	if injErr == nil {
		cut, injErr = f.decideBatch(sw, len(ops))
	} else {
		cut = 0
	}
	f.mu.Unlock()
	if cut == 0 && injErr != nil {
		return nil, injErr
	}
	applied, err := f.dp.ApplyBatch(sw, ops[:cut])
	if err != nil {
		return applied, err
	}
	if injErr != nil {
		return applied, injErr
	}
	return applied, nil
}

// Flows implements core.FlowReader; reads are never faulted.
func (f *FaultyProgrammer) Flows(sw topo.NodeID) ([]openflow.Flow, error) {
	return f.dp.Flows(sw)
}
