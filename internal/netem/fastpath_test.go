package netem

import (
	"sync"
	"testing"
	"time"

	"pleroma/internal/ipmc"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// TestToggleHandlersDuringRun is the -race regression for the unguarded
// recordPaths/punt fields: the forwarding path reads both on every switch
// arrival while other goroutines toggle them (and swap switch configs and
// read every stats surface) mid-run. The forwarding itself stays on the
// test goroutine — the engine is single-threaded by contract.
func TestToggleHandlersDuringRun(t *testing.T) {
	dp, eng, hosts, switches := buildLine(t)
	if err := dp.ConfigureHost(hosts[1], HostConfig{}, nil); err != nil {
		t.Fatal(err)
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := sch.NewEvent(600, 5)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	spin := func(body func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					body(i)
				}
			}
		}()
	}
	spin(func(i int) { dp.RecordPaths(i%2 == 0) })
	spin(func(i int) {
		if i%2 == 0 {
			dp.SetPuntHandler(func(topo.NodeID, openflow.PortID, Packet) {})
		} else {
			dp.SetPuntHandler(nil)
		}
	})
	spin(func(i int) {
		cfg := DefaultSwitchConfig
		if i%2 == 0 {
			cfg.PerFlowPenalty = time.Microsecond
		}
		if err := dp.SetSwitchConfig(switches[0], cfg); err != nil {
			panic(err)
		}
	})
	spin(func(int) {
		for _, sw := range switches {
			_ = dp.SwitchStatsFor(sw)
		}
		_ = dp.TotalLinkPackets()
		_ = dp.HostReceived(hosts[1])
		for _, l := range dp.Graph().Links() {
			_ = dp.LinkStatsFor(l)
		}
	})

	for i := 0; i < 300; i++ {
		if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	close(stop)
	wg.Wait()
	if dp.HostReceived(hosts[1]) == 0 {
		t.Error("no deliveries during toggle stress")
	}
}

// TestPublishBatchMatchesSequential pins the PublishBatch contract: the
// packet stream it produces — sequence numbers, deliveries, timestamps,
// final clock — is indistinguishable from sequential Publish calls at the
// same instant.
func TestPublishBatchMatchesSequential(t *testing.T) {
	run := func(batch bool) ([]Delivery, time.Duration) {
		dp, eng, hosts, _ := buildLine(t)
		var got []Delivery
		if err := dp.ConfigureHost(hosts[1], HostConfig{CapacityPerSec: 50_000, MaxQueue: 8},
			func(d Delivery) { got = append(got, d) }); err != nil {
			t.Fatal(err)
		}
		sch, err := space.UniformSchema(2)
		if err != nil {
			t.Fatal(err)
		}
		var pubs []Publication
		for i := 0; i < 20; i++ {
			ev, err := sch.NewEvent(uint32(i*30), uint32(i))
			if err != nil {
				t.Fatal(err)
			}
			pubs = append(pubs, Publication{Expr: "1", Event: ev})
		}
		if batch {
			if err := dp.PublishBatch(hosts[0], pubs); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, pb := range pubs {
				if err := dp.Publish(hosts[0], pb.Expr, pb.Event, pb.Size); err != nil {
					t.Fatal(err)
				}
			}
		}
		return got, eng.Run()
	}
	seq, seqEnd := run(false)
	bat, batEnd := run(true)
	if seqEnd != batEnd {
		t.Fatalf("final clock differs: sequential %v, batch %v", seqEnd, batEnd)
	}
	if len(seq) != len(bat) {
		t.Fatalf("delivery count differs: sequential %d, batch %d", len(seq), len(bat))
	}
	for i := range seq {
		a, b := seq[i], bat[i]
		if a.At != b.At || a.Packet.Seq != b.Packet.Seq ||
			a.Packet.SentAt != b.Packet.SentAt ||
			a.Packet.Event.Values[0] != b.Packet.Event.Values[0] {
			t.Fatalf("delivery %d differs:\nsequential %+v\nbatch      %+v", i, a, b)
		}
	}
}

// TestPublishBatchValidation: a bad expression anywhere in the batch
// rejects the whole batch before any packet is injected or sequence number
// consumed.
func TestPublishBatchValidation(t *testing.T) {
	dp, eng, hosts, _ := buildLine(t)
	sch, err := space.UniformSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := sch.NewEvent(1, 1)
	err = dp.PublishBatch(hosts[0], []Publication{
		{Expr: "1", Event: ev},
		{Expr: "01x2", Event: ev}, // invalid dz
	})
	if err == nil {
		t.Fatal("invalid expression must fail the batch")
	}
	if eng.Pending() != 0 {
		t.Errorf("failed batch injected %d events", eng.Pending())
	}
	if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if dp.HostReceived(hosts[1]) != 1 {
		t.Errorf("received=%d after failed batch + publish", dp.HostReceived(hosts[1]))
	}
}

// BenchmarkDataPlaneForward measures the pure forwarding hot path — one
// publish through three switch hops to one host per iteration, no facade,
// no matching — on the compiled plan. Steady state must be 0 allocs/op.
func BenchmarkDataPlaneForward(b *testing.B) {
	g, err := topo.Linear(3, topo.DefaultLinkParams)
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine()
	dp := New(g, eng)
	hosts := g.Hosts()
	path, err := g.ShortestPath(hosts[0], hosts[1])
	if err != nil {
		b.Fatal(err)
	}
	hops, err := g.RouteHops(path)
	if err != nil {
		b.Fatal(err)
	}
	for _, hop := range hops {
		f, err := openflow.NewFlow("1", 1, openflow.Action{OutPort: hop.OutPort})
		if err != nil {
			b.Fatal(err)
		}
		tab, err := dp.Table(hop.Switch)
		if err != nil {
			b.Fatal(err)
		}
		tab.Add(f)
	}
	if err := dp.ConfigureHost(hosts[1], HostConfig{}, nil); err != nil {
		b.Fatal(err)
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		b.Fatal(err)
	}
	ev, _ := sch.NewEvent(600, 5)
	addr, err := ipmc.EventAddr("1")
	if err != nil {
		b.Fatal(err)
	}
	pkt := Packet{Dst: addr, Expr: "1", Event: ev, Publisher: hosts[0],
		SizeBytes: DefaultPacketSize, HopLimit: DefaultHopLimit}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Seq = uint64(i)
		if err := dp.SendFromHost(hosts[0], pkt); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
	if dp.HostReceived(hosts[1]) == 0 {
		b.Fatal("no deliveries")
	}
}

// TestPlanRebuildOnTopologyGrowth: the compiled forwarding plan notices
// structural graph growth (new host and link after New) and recompiles, so
// traffic reaches nodes the plan has never seen.
func TestPlanRebuildOnTopologyGrowth(t *testing.T) {
	dp, eng, hosts, switches := buildLine(t)
	g := dp.Graph()
	h3 := g.AddHost("h3")
	swPort, _, err := g.Connect(switches[2], h3, topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	if err := dp.ConfigureHost(h3, HostConfig{}, func(Delivery) { got++ }); err != nil {
		t.Fatal(err)
	}
	tab, err := dp.Table(switches[2])
	if err != nil {
		t.Fatal(err)
	}
	flows := tab.Flows()
	if len(flows) != 1 {
		t.Fatalf("expected 1 flow on last switch, got %d", len(flows))
	}
	actions := append(append([]openflow.Action(nil), flows[0].Actions...),
		openflow.Action{OutPort: swPort, SetDest: HostAddr(h3)})
	if !tab.Modify(flows[0].ID, flows[0].Priority, actions) {
		t.Fatal("modify failed")
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := sch.NewEvent(600, 5)
	if err := dp.Publish(hosts[0], "1", ev, 64); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 1 {
		t.Errorf("new host got %d deliveries, want 1", got)
	}
	if dp.HostReceived(hosts[1]) != 1 {
		t.Errorf("original host received=%d, want 1", dp.HostReceived(hosts[1]))
	}
}
