package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestQueueShrinksAfterBurst pins the capacity-release behaviour: a burst
// far above steady state must not pin its peak backing array (and the
// per-slot closure/handler references) for the life of the engine.
func TestQueueShrinksAfterBurst(t *testing.T) {
	e := NewEngine()
	h := countHandler{n: new(int)}
	const burst = 100_000
	for i := 0; i < burst; i++ {
		e.ScheduleEvent(time.Duration(i), h, Event{Kind: 1})
	}
	peak := cap(e.queue.items)
	if peak < burst {
		t.Fatalf("burst capacity %d, want >= %d", peak, burst)
	}
	// Drain to a steady-state trickle: capacity must have been released.
	for e.Pending() > 64 {
		e.Step()
	}
	if c := cap(e.queue.items); c > shrinkFloor {
		t.Errorf("capacity %d still pinned after drain to %d events (shrink floor %d)",
			c, e.Pending(), shrinkFloor)
	}
	e.Run()
	if *h.n != burst {
		t.Fatalf("executed %d events, want %d", *h.n, burst)
	}
	// A small queue must never thrash allocation: below the floor the
	// capacity is retained.
	for i := 0; i < 128; i++ {
		e.ScheduleEvent(0, h, Event{})
	}
	c0 := cap(e.queue.items)
	e.Run()
	for i := 0; i < 128; i++ {
		e.ScheduleEvent(0, h, Event{})
	}
	if c := cap(e.queue.items); c != c0 {
		t.Errorf("small-queue capacity changed %d -> %d; steady state must reuse", c0, c)
	}
}

type countHandler struct{ n *int }

func (c countHandler) HandleEvent(Event) { *c.n++ }

// TestHeapPropertyAgainstSortOracle drives random interleaved push/pop
// sequences — with many equal timestamps — against a sort-based oracle:
// every pop must come out in exact (at, seq) order.
func TestHeapPropertyAgainstSortOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var q eventQueue
		var oracle []item
		seq := uint64(0)
		popOracle := func() item {
			sort.SliceStable(oracle, func(i, j int) bool { return before(&oracle[i], &oracle[j]) })
			top := oracle[0]
			oracle = oracle[1:]
			return top
		}
		for op := 0; op < 4000; op++ {
			if len(oracle) == 0 || r.Intn(3) > 0 {
				// Coarse timestamp quantization forces frequent ties, the
				// case where only the seq tiebreak keeps the order total.
				it := item{at: time.Duration(r.Intn(50)), seq: seq}
				seq++
				q.push(it)
				oracle = append(oracle, it)
			} else {
				got := q.pop()
				want := popOracle()
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("seed %d op %d: popped (at=%v seq=%d), oracle (at=%v seq=%d)",
						seed, op, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		for len(oracle) > 0 {
			got, want := q.pop(), popOracle()
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d drain: popped (at=%v seq=%d), oracle (at=%v seq=%d)",
					seed, got.at, got.seq, want.at, want.seq)
			}
		}
		if len(q.items) != 0 {
			t.Fatalf("seed %d: queue not empty after drain", seed)
		}
	}
}

// FuzzQueueOrdering is the fuzzing form of the oracle test: the input
// bytes script an interleaved push/pop sequence.
func FuzzQueueOrdering(f *testing.F) {
	f.Add([]byte{1, 7, 1, 7, 0, 1, 3, 0, 0})
	f.Add([]byte{1, 0, 1, 0, 1, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		var q eventQueue
		var oracle []item
		seq := uint64(0)
		for i := 0; i < len(script); i++ {
			if script[i]%2 == 1 && i+1 < len(script) {
				it := item{at: time.Duration(script[i+1] % 16), seq: seq}
				seq++
				i++
				q.push(it)
				oracle = append(oracle, it)
			} else if len(oracle) > 0 {
				sort.SliceStable(oracle, func(a, b int) bool { return before(&oracle[a], &oracle[b]) })
				want := oracle[0]
				oracle = oracle[1:]
				got := q.pop()
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("pop (at=%v seq=%d), oracle (at=%v seq=%d)",
						got.at, got.seq, want.at, want.seq)
				}
			}
		}
	})
}

// TestRunUntilBoundaryExactlyOnce pins the deadline-boundary contract:
// events scheduled exactly at the deadline execute during that RunUntil,
// exactly once, and never again on subsequent runs.
func TestRunUntilBoundaryExactlyOnce(t *testing.T) {
	e := NewEngine()
	execs := make(map[string]int)
	deadline := 100 * time.Microsecond
	e.At(deadline, func() { execs["at-boundary"]++ })
	e.At(deadline, func() { execs["at-boundary-2"]++ })
	e.At(deadline+1, func() { execs["after-boundary"]++ })
	e.At(deadline-1, func() { execs["before-boundary"]++ })

	if got := e.RunUntil(deadline); got != deadline {
		t.Fatalf("RunUntil returned %v, want %v", got, deadline)
	}
	if execs["before-boundary"] != 1 || execs["at-boundary"] != 1 || execs["at-boundary-2"] != 1 {
		t.Fatalf("boundary events not executed exactly once: %v", execs)
	}
	if execs["after-boundary"] != 0 {
		t.Fatalf("event after deadline executed early: %v", execs)
	}
	// Re-running to the same deadline must be a no-op for them.
	e.RunUntil(deadline)
	if execs["at-boundary"] != 1 || execs["at-boundary-2"] != 1 {
		t.Fatalf("boundary events re-executed: %v", execs)
	}
	e.Run()
	if execs["after-boundary"] != 1 {
		t.Fatalf("post-deadline event lost: %v", execs)
	}
}

// TestRunWindowLeavesClockAtLastEvent pins the shard primitive: RunWindow
// executes through the horizon inclusively but leaves the clock at the
// last executed event, and NextAt/AdvanceTo behave as the coordinator
// expects.
func TestRunWindowLeavesClockAtLastEvent(t *testing.T) {
	e := NewEngine()
	var ran []time.Duration
	for _, at := range []time.Duration{5, 10, 15, 20} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	if at, ok := e.NextAt(); !ok || at != 5 {
		t.Fatalf("NextAt = %v,%v, want 5,true", at, ok)
	}
	if n := e.RunWindow(15); n != 3 {
		t.Fatalf("RunWindow executed %d events, want 3", n)
	}
	if e.Now() != 15 {
		t.Fatalf("clock at %v after window, want 15 (not the horizon)", e.Now())
	}
	if at, ok := e.NextAt(); !ok || at != 20 {
		t.Fatalf("NextAt = %v,%v, want 20,true", at, ok)
	}
	e.AdvanceTo(17)
	if e.Now() != 17 {
		t.Fatalf("AdvanceTo(17) left clock at %v", e.Now())
	}
	e.AdvanceTo(3) // never backwards
	if e.Now() != 17 {
		t.Fatalf("AdvanceTo moved the clock backwards to %v", e.Now())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("ran %v, want all four events", ran)
	}
}
