package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30*time.Millisecond {
		t.Errorf("end=%v, want 30ms", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order=%v", got)
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events must run FIFO, got %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []time.Duration
	e.Schedule(time.Millisecond, func() {
		trace = append(trace, e.Now())
		e.Schedule(2*time.Millisecond, func() {
			trace = append(trace, e.Now())
		})
	})
	e.Run()
	if len(trace) != 2 || trace[0] != time.Millisecond || trace[1] != 3*time.Millisecond {
		t.Errorf("trace=%v", trace)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.Schedule(-time.Hour, func() {
			if e.Now() != time.Second {
				t.Errorf("clamped event ran at %v", e.Now())
			}
		})
	})
	e.Run()
}

func TestAtInPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.At(0, func() {
			if e.Now() != time.Second {
				t.Errorf("past event ran at %v", e.Now())
			}
		})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++ })
	e.Schedule(3*time.Millisecond, func() { ran++ })
	e.Schedule(10*time.Millisecond, func() { ran++ })
	now := e.RunUntil(5 * time.Millisecond)
	if now != 5*time.Millisecond {
		t.Errorf("now=%v", now)
	}
	if ran != 2 {
		t.Errorf("ran=%d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("pending=%d, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 {
		t.Errorf("ran=%d, want 3", ran)
	}
}

func TestStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue must return false")
	}
	if e.Now() != 0 {
		t.Error("clock must stay at zero")
	}
}

// TestPropertyMonotoneClock: for any set of scheduled delays, events run in
// nondecreasing time order and the final clock equals the max delay.
func TestPropertyMonotoneClock(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 1 + r.Intn(50)
		delays := make([]time.Duration, n)
		var times []time.Duration
		for i := range delays {
			delays[i] = time.Duration(r.Intn(1000)) * time.Microsecond
			e.Schedule(delays[i], func() { times = append(times, e.Now()) })
		}
		e.Run()
		if len(times) != n {
			return false
		}
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			return false
		}
		maxDelay := delays[0]
		for _, d := range delays[1:] {
			if d > maxDelay {
				maxDelay = d
			}
		}
		return e.Now() == maxDelay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// recorder implements Handler and logs each event with its instant.
type recorder struct {
	e   *Engine
	evs []Event
	ats []time.Duration
}

func (r *recorder) HandleEvent(ev Event) {
	r.evs = append(r.evs, ev)
	r.ats = append(r.ats, r.e.Now())
}

func TestTypedEventDelivery(t *testing.T) {
	e := NewEngine()
	r := &recorder{e: e}
	e.ScheduleEvent(2*time.Millisecond, r, Event{Kind: 7, A: -3, B: 42, Ref: 9})
	e.ScheduleEvent(time.Millisecond, r, Event{Kind: 1})
	e.AtEvent(3*time.Millisecond, r, Event{Kind: 2, Ref: 1})
	e.Run()
	if len(r.evs) != 3 {
		t.Fatalf("got %d events, want 3", len(r.evs))
	}
	if r.evs[0].Kind != 1 || r.evs[1].Kind != 7 || r.evs[2].Kind != 2 {
		t.Errorf("kinds out of order: %+v", r.evs)
	}
	if r.evs[1].A != -3 || r.evs[1].B != 42 || r.evs[1].Ref != 9 {
		t.Errorf("payload corrupted: %+v", r.evs[1])
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	for i, at := range r.ats {
		if at != want[i] {
			t.Errorf("event %d at %v, want %v", i, at, want[i])
		}
	}
}

// TestMixedFormsShareOrder: closures and typed events scheduled at the same
// instant interleave strictly by insertion order — one (time, seq) sequence.
func TestMixedFormsShareOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	r := &recorder{e: e}
	e.Schedule(time.Millisecond, func() { got = append(got, 0) })
	e.ScheduleEvent(time.Millisecond, handlerFunc(func(Event) { got = append(got, 1) }), Event{})
	e.Schedule(time.Millisecond, func() { got = append(got, 2) })
	e.ScheduleEvent(time.Millisecond, r, Event{Kind: 3})
	e.Schedule(time.Millisecond, func() { got = append(got, 4) })
	e.Run()
	if len(got) != 4 || got[0] != 0 || got[1] != 1 || got[2] != 2 || got[3] != 4 {
		t.Errorf("interleaving=%v", got)
	}
	if len(r.evs) != 1 || r.evs[0].Kind != 3 {
		t.Errorf("typed event lost: %+v", r.evs)
	}
}

type handlerFunc func(Event)

func (f handlerFunc) HandleEvent(ev Event) { f(ev) }

func TestTypedEventClamping(t *testing.T) {
	e := NewEngine()
	r := &recorder{e: e}
	e.Schedule(time.Second, func() {
		e.ScheduleEvent(-time.Hour, r, Event{Kind: 1})
		e.AtEvent(0, r, Event{Kind: 2})
	})
	e.Run()
	if len(r.ats) != 2 || r.ats[0] != time.Second || r.ats[1] != time.Second {
		t.Errorf("clamped typed events ran at %v", r.ats)
	}
}

// drain is a no-op handler for benchmarks: a pointer receiver so the
// Handler interface value carries an existing pointer, never boxing.
type drain struct{ n int }

func (d *drain) HandleEvent(Event) { d.n++ }

// BenchmarkEngineScheduleRun measures the typed steady-state hot path —
// schedule+run cycles against a warm queue. The free-listed inline heap
// must report 0 allocs/op.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	d := &drain{}
	// Warm the queue's backing array.
	for j := 0; j < 1024; j++ {
		e.ScheduleEvent(time.Duration(j%97)*time.Microsecond, d, Event{Kind: 1, Ref: uint32(j)})
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleEvent(time.Duration(i%97)*time.Microsecond, d, Event{Kind: 1, Ref: uint32(i)})
		e.Step()
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Microsecond, func() {})
		}
		e.Run()
	}
}
