package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30*time.Millisecond {
		t.Errorf("end=%v, want 30ms", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order=%v", got)
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events must run FIFO, got %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []time.Duration
	e.Schedule(time.Millisecond, func() {
		trace = append(trace, e.Now())
		e.Schedule(2*time.Millisecond, func() {
			trace = append(trace, e.Now())
		})
	})
	e.Run()
	if len(trace) != 2 || trace[0] != time.Millisecond || trace[1] != 3*time.Millisecond {
		t.Errorf("trace=%v", trace)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.Schedule(-time.Hour, func() {
			if e.Now() != time.Second {
				t.Errorf("clamped event ran at %v", e.Now())
			}
		})
	})
	e.Run()
}

func TestAtInPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.At(0, func() {
			if e.Now() != time.Second {
				t.Errorf("past event ran at %v", e.Now())
			}
		})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++ })
	e.Schedule(3*time.Millisecond, func() { ran++ })
	e.Schedule(10*time.Millisecond, func() { ran++ })
	now := e.RunUntil(5 * time.Millisecond)
	if now != 5*time.Millisecond {
		t.Errorf("now=%v", now)
	}
	if ran != 2 {
		t.Errorf("ran=%d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("pending=%d, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 {
		t.Errorf("ran=%d, want 3", ran)
	}
}

func TestStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue must return false")
	}
	if e.Now() != 0 {
		t.Error("clock must stay at zero")
	}
}

// TestPropertyMonotoneClock: for any set of scheduled delays, events run in
// nondecreasing time order and the final clock equals the max delay.
func TestPropertyMonotoneClock(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 1 + r.Intn(50)
		delays := make([]time.Duration, n)
		var times []time.Duration
		for i := range delays {
			delays[i] = time.Duration(r.Intn(1000)) * time.Microsecond
			e.Schedule(delays[i], func() { times = append(times, e.Now()) })
		}
		e.Run()
		if len(times) != n {
			return false
		}
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			return false
		}
		maxDelay := delays[0]
		for _, d := range delays[1:] {
			if d > maxDelay {
				maxDelay = d
			}
		}
		return e.Now() == maxDelay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Microsecond, func() {})
		}
		e.Run()
	}
}
