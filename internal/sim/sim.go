// Package sim provides a small deterministic discrete-event simulation
// engine. It replaces the paper's wall-clock testbed measurements with a
// simulated clock: every experiment schedules work at simulated instants
// and the engine executes events in (time, insertion) order, making all
// latency and throughput numbers exactly reproducible.
//
// The queue is built for the data-plane hot path: events are inline
// structs in a 4-ary implicit heap (no per-event heap node, no
// container/heap interface boxing), and the typed form — a small tagged
// payload dispatched to a Handler — schedules with zero allocations in
// steady state. The legacy closure form (Schedule/At with a func()) keeps
// working for control-plane and experiment code; both forms share one
// (time, seq) order, so interleavings are bit-for-bit reproducible
// regardless of which form a caller uses.
package sim

import (
	"time"
)

// Event is a typed, allocation-free scheduled occurrence. The engine does
// not interpret Kind or the payload words; they belong to the Handler that
// scheduled the event (the data plane packs packet-arrival, link-free and
// host-done variants into them). Payload layout:
//
//	Kind — the handler's tag (which variant this is)
//	A, B — two small words (node id, ingress port, …)
//	Ref  — a reference into handler-owned storage (e.g. a packet slab slot)
type Event struct {
	Kind uint8
	A, B int32
	Ref  uint32
}

// Handler consumes typed events at their simulated instant. Implementations
// are typically a single long-lived object (the data plane), so scheduling
// a typed event allocates nothing: the interface value boxes a pointer that
// already exists.
type Handler interface {
	HandleEvent(ev Event)
}

// Engine is a discrete-event scheduler. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after the given simulated delay. Negative delays are
// clamped to zero (i.e. "as soon as possible, after already queued work at
// the current instant").
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute simulated time. Times in the past are
// clamped to the current instant.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.push(item{at: t, seq: e.seq, fn: fn})
}

// ScheduleEvent is Schedule for the typed, zero-alloc form: h.HandleEvent(ev)
// runs after the given delay. Negative delays are clamped to zero.
func (e *Engine) ScheduleEvent(delay time.Duration, h Handler, ev Event) {
	if delay < 0 {
		delay = 0
	}
	e.AtEvent(e.now+delay, h, ev)
}

// AtEvent is At for the typed, zero-alloc form: h.HandleEvent(ev) runs at
// the given absolute simulated time (clamped to the current instant).
func (e *Engine) AtEvent(t time.Duration, h Handler, ev Event) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.push(item{at: t, seq: e.seq, h: h, ev: ev})
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue.items) == 0 {
		return false
	}
	it := e.queue.pop()
	e.now = it.at
	if it.fn != nil {
		it.fn()
	} else {
		it.h.HandleEvent(it.ev)
	}
	return true
}

// Run executes events until the queue is empty and returns the final
// simulated time.
func (e *Engine) Run() time.Duration {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps not after deadline, then sets
// the clock to deadline (if it has not advanced further) and returns it.
// Events scheduled after the deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	e.RunWindow(deadline)
	e.AdvanceTo(deadline)
	return e.now
}

// RunWindow executes every event with a timestamp not after horizon and
// returns the number executed. Unlike RunUntil it does not advance the
// clock to the horizon afterwards: the clock rests at the last executed
// event. This is the execution primitive of the parallel shard engine —
// a conservatively synchronized shard may run exactly up to the horizon
// its neighbours have committed, and no further.
func (e *Engine) RunWindow(horizon time.Duration) int {
	n := 0
	for len(e.queue.items) > 0 && e.queue.items[0].at <= horizon {
		e.Step()
		n++
	}
	return n
}

// NextAt returns the timestamp of the earliest queued event, or false if
// the queue is empty.
func (e *Engine) NextAt() (time.Duration, bool) {
	if len(e.queue.items) == 0 {
		return 0, false
	}
	return e.queue.items[0].at, true
}

// AdvanceTo moves the clock forward to t; it never moves it backwards.
// Used by the shard coordinator to align engine clocks at barriers.
func (e *Engine) AdvanceTo(t time.Duration) {
	if t > e.now {
		e.now = t
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue.items) }

// item is one queued occurrence: either a legacy closure (fn != nil) or a
// typed event for h. Items live inline in the queue slice — pushing never
// allocates a node, and in steady state (pop ≈ push) the slice's capacity
// is the free list, so typed scheduling is 0 allocs/op.
type item struct {
	at  time.Duration
	seq uint64
	fn  func()
	h   Handler
	ev  Event
}

// eventQueue is a 4-ary implicit min-heap over (at, seq). A 4-ary layout
// halves the tree depth of a binary heap, trading slightly more sibling
// comparisons per level for many fewer cache-missing levels — the winning
// trade for the data plane's push/pop-heavy usage. Ordering is a total
// order ((at, seq) with seq unique), so any correct min-heap executes the
// exact same sequence as the historical container/heap implementation.
type eventQueue struct {
	items []item
}

func (q *eventQueue) push(it item) {
	q.items = append(q.items, it)
	q.siftUp(len(q.items) - 1)
}

// shrinkFloor is the backing-array capacity below which the queue never
// shrinks: steady-state data-plane traffic reuses this much for free.
const shrinkFloor = 1024

func (q *eventQueue) pop() item {
	items := q.items
	top := items[0]
	n := len(items) - 1
	items[0] = items[n]
	items[n] = item{} // drop fn/handler references for GC
	q.items = items[:n]
	if n > 1 {
		q.siftDown(0)
	}
	// Release capacity pinned by a past burst: a 100k-event batch must not
	// hold its peak backing array — and a closure/handler reference slot
	// per entry — for the engine's lifetime. Shrinking to 2×occupancy when
	// occupancy falls under a quarter of capacity keeps the copy cost
	// amortized (another shrink needs occupancy to halve again).
	if c := cap(q.items); c > shrinkFloor && n < c/4 {
		newCap := n * 2
		if newCap < shrinkFloor {
			newCap = shrinkFloor
		}
		shrunk := make([]item, n, newCap)
		copy(shrunk, q.items)
		q.items = shrunk
	}
	return top
}

// before reports whether a must run before b.
func before(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) siftUp(i int) {
	items := q.items
	it := items[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !before(&it, &items[parent]) {
			break
		}
		items[i] = items[parent]
		i = parent
	}
	items[i] = it
}

func (q *eventQueue) siftDown(i int) {
	items := q.items
	n := len(items)
	it := items[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(&items[c], &items[best]) {
				best = c
			}
		}
		if !before(&items[best], &it) {
			break
		}
		items[i] = items[best]
		i = best
	}
	items[i] = it
}
