// Package sim provides a small deterministic discrete-event simulation
// engine. It replaces the paper's wall-clock testbed measurements with a
// simulated clock: every experiment schedules work at simulated instants
// and the engine executes callbacks in (time, insertion) order, making all
// latency and throughput numbers exactly reproducible.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a discrete-event scheduler. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now   time.Duration
	queue eventHeap
	seq   uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after the given simulated delay. Negative delays are
// clamped to zero (i.e. "as soon as possible, after already queued work at
// the current instant").
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute simulated time. Times in the past are
// clamped to the current instant.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev, _ := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty and returns the final
// simulated time.
func (e *Engine) Run() time.Duration {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps not after deadline, then sets
// the clock to deadline (if it has not advanced further) and returns it.
// Events scheduled after the deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	for e.queue.Len() > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
