// Package shard runs several sim.Engines in parallel under conservative
// (lookahead-based) synchronization — a multi-core discrete-event
// simulation in the classic Chandy-Misra-Bryant family, organised as
// barrier windows rather than per-link null messages.
//
// The model: the simulated world is partitioned into N shards, each owning
// a disjoint set of state and its own engine. Events an executing shard
// schedules for itself go straight onto its engine; events destined for
// another shard are buffered by the client (e.g. the data plane's typed
// mailboxes) and moved at the next barrier. Conservatism comes from the
// lookahead L: the minimum simulated delay any cross-shard interaction
// takes. Each window the coordinator computes the global minimum pending
// timestamp T and lets every shard execute events with timestamp ≤ T+L in
// parallel — any event generated for a neighbour during the window
// carries a timestamp ≥ T+L, so no shard can receive work in its past.
//
// Execution within a shard keeps the engine's (time, seq) total order, so
// a run is bit-for-bit deterministic for a fixed shard count: window
// horizons are a pure function of queue state, and the mailbox exchange
// drains senders in fixed shard order.
package shard

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pleroma/internal/obs"
	"pleroma/internal/sim"
)

// Coordinator drives N shard engines through barrier windows. It is
// created once, owns one long-lived worker goroutine per shard, and is
// driven from a single goroutine (the same discipline as sim.Engine).
type Coordinator struct {
	lookahead time.Duration
	engines   []*sim.Engine
	workers   []*workerCtx
	wg        *sync.WaitGroup
	// exchange moves client-buffered cross-shard events into the
	// destination engines at a barrier; it reports whether anything moved.
	exchange func() bool
	// running is observable by clients (e.g. the data plane's injection
	// guard): true while a Run/RunUntil drain is in flight.
	running atomic.Bool
	// lifeMu guards started/closed: Close must be idempotent and safe to
	// race with another Close (e.g. an explicit System.Close racing the
	// finalizer path) or with the lazy worker start.
	lifeMu  sync.Mutex
	started bool
	closed  bool

	// Observability (nil without Instrument; all instruments are
	// nil-safe).
	obsWindows *obs.Counter
	obsHorizon *obs.Gauge
	obsDepth   []*obs.Gauge
	obsStalls  []*obs.Counter
}

// workerCtx is the slice of coordinator state a worker goroutine is
// allowed to reference. Workers deliberately do not hold the Coordinator
// itself, so an abandoned Coordinator becomes unreachable, its finalizer
// closes start, and the workers exit instead of leaking.
type workerCtx struct {
	eng   *sim.Engine
	start chan time.Duration
	wg    *sync.WaitGroup
}

func runWorker(w *workerCtx) {
	for horizon := range w.start {
		w.eng.RunWindow(horizon)
		w.wg.Done()
	}
}

// New builds a coordinator over n fresh engines with the given lookahead.
// A lookahead of zero is legal (windows degrade to one timestamp at a
// time); negative lookahead is rejected.
func New(n int, lookahead time.Duration) (*Coordinator, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	if lookahead < 0 {
		return nil, fmt.Errorf("shard: negative lookahead %v", lookahead)
	}
	c := &Coordinator{
		lookahead: lookahead,
		engines:   make([]*sim.Engine, n),
		workers:   make([]*workerCtx, n),
		wg:        &sync.WaitGroup{},
	}
	for i := range c.engines {
		c.engines[i] = sim.NewEngine()
		c.workers[i] = &workerCtx{
			eng:   c.engines[i],
			start: make(chan time.Duration, 1),
			wg:    c.wg,
		}
	}
	// Backstop for callers that drop the coordinator without Close: the
	// workers hold only their workerCtx, so the coordinator is collectable
	// and the finalizer reaps the goroutines.
	runtime.SetFinalizer(c, (*Coordinator).Close)
	return c, nil
}

// Shards returns the number of shard engines.
func (c *Coordinator) Shards() int { return len(c.engines) }

// Lookahead returns the conservative synchronization lookahead.
func (c *Coordinator) Lookahead() time.Duration { return c.lookahead }

// Engine returns shard i's engine. Scheduling directly on it is only safe
// while no Run/RunUntil is in flight.
func (c *Coordinator) Engine(i int) *sim.Engine { return c.engines[i] }

// SetExchange registers the barrier exchange hook. It is called with all
// shard engines idle and must move every buffered cross-shard event into
// its destination engine, returning whether any event moved.
func (c *Coordinator) SetExchange(f func() bool) { c.exchange = f }

// Running reports whether a drain is in flight. Clients use it to reject
// unsafe re-entrant injection from delivery handlers.
func (c *Coordinator) Running() bool { return c.running.Load() }

// Instrument attaches per-shard health metrics to reg: queue depth and
// barrier-stall counters per shard, plus the committed horizon and the
// total window count. Gauges are sampled at barrier windows.
func (c *Coordinator) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.obsWindows = reg.Counter(obs.MShardWindows, "Barrier windows executed by the parallel simulation engine.")
	c.obsHorizon = reg.Gauge(obs.MShardHorizon, "Committed simulation horizon of the parallel engine (ns).")
	depth := obs.NewGaugeVec()
	stalls := obs.NewCounterVec()
	reg.AttachGaugeVec(obs.MShardQueueDepth, "Pending events per shard engine, sampled at barrier windows.", "shard", depth)
	reg.AttachCounterVec(obs.MShardStalls, "Windows in which a shard had no runnable event and stalled at the barrier.", "shard", stalls)
	c.obsDepth = make([]*obs.Gauge, len(c.engines))
	c.obsStalls = make([]*obs.Counter, len(c.engines))
	for i := range c.engines {
		c.obsDepth[i] = depth.With(strconv.Itoa(i))
		c.obsStalls[i] = stalls.With(strconv.Itoa(i))
	}
}

// ensureWorkers starts the worker goroutines on first use. A closed
// coordinator stays closed: no workers are started after Close.
func (c *Coordinator) ensureWorkers() {
	if len(c.engines) == 1 {
		return
	}
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.started || c.closed {
		return
	}
	c.started = true
	for _, w := range c.workers {
		go runWorker(w)
	}
}

// Close stops the worker goroutines. The coordinator must not be used
// afterwards. Idempotent and safe to call concurrently (an explicit close
// can race the finalizer-driven one); also installed as a finalizer.
func (c *Coordinator) Close() {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	runtime.SetFinalizer(c, nil)
	if c.started {
		for _, w := range c.workers {
			close(w.start)
		}
	}
}

// nextAt returns the earliest pending timestamp across all shards.
func (c *Coordinator) nextAt() (time.Duration, bool) {
	var tmin time.Duration
	ok := false
	for _, e := range c.engines {
		if at, has := e.NextAt(); has && (!ok || at < tmin) {
			tmin, ok = at, true
		}
	}
	return tmin, ok
}

// window runs one barrier window: every shard with a runnable event
// executes up to horizon in parallel; shards without one record a stall.
func (c *Coordinator) window(horizon time.Duration) {
	dispatched := 0
	last := -1
	for i, e := range c.engines {
		if at, ok := e.NextAt(); ok && at <= horizon {
			dispatched++
			last = i
		}
	}
	if dispatched == 1 {
		// A solo shard needs no barrier: run it inline and skip the
		// worker round-trip. This is the common case at workload edges
		// (e.g. a publisher's first hops before the tree fans out).
		c.engines[last].RunWindow(horizon)
		if c.obsStalls != nil {
			for i := range c.engines {
				if i != last {
					c.obsStalls[i].Inc()
				}
			}
		}
	} else {
		for i, e := range c.engines {
			if at, ok := e.NextAt(); ok && at <= horizon {
				c.wg.Add(1)
				c.workers[i].start <- horizon
			} else if c.obsStalls != nil {
				c.obsStalls[i].Inc()
			}
		}
		c.wg.Wait()
	}
	c.obsWindows.Inc()
	c.obsHorizon.Set(int64(horizon))
	if c.obsDepth != nil {
		for i, e := range c.engines {
			c.obsDepth[i].Set(int64(e.Pending()))
		}
	}
}

// Run executes windows until every shard queue and mailbox is empty, then
// aligns all shard clocks to the global maximum and returns it. With one
// shard it is exactly sim.Engine.Run.
func (c *Coordinator) Run() time.Duration {
	return c.run(0, false)
}

// RunUntil executes events with timestamps not after deadline, then sets
// every shard clock to the deadline (if not already past) and returns it.
func (c *Coordinator) RunUntil(deadline time.Duration) time.Duration {
	return c.run(deadline, true)
}

// Now returns the committed simulated time: the maximum shard clock. Only
// meaningful while no drain is in flight (clocks are aligned at the end
// of every Run/RunUntil).
func (c *Coordinator) Now() time.Duration {
	var now time.Duration
	for _, e := range c.engines {
		if e.Now() > now {
			now = e.Now()
		}
	}
	return now
}

// Pending returns the total number of queued events across shards.
func (c *Coordinator) Pending() int {
	n := 0
	for _, e := range c.engines {
		n += e.Pending()
	}
	return n
}

func (c *Coordinator) run(deadline time.Duration, bounded bool) time.Duration {
	if len(c.engines) == 1 {
		// Degenerate single-shard form: defer to the engine directly so
		// behaviour (and performance) is exactly the classic path.
		e := c.engines[0]
		if c.exchange != nil {
			c.exchange()
		}
		if bounded {
			return e.RunUntil(deadline)
		}
		return e.Run()
	}
	c.ensureWorkers()
	c.running.Store(true)
	for {
		if c.exchange != nil {
			c.exchange()
		}
		tmin, ok := c.nextAt()
		if !ok || (bounded && tmin > deadline) {
			// Nothing runnable; a final exchange already happened at the
			// top of this iteration, so the mailboxes are empty too.
			break
		}
		horizon := tmin + c.lookahead
		if bounded && horizon > deadline {
			horizon = deadline
		}
		c.window(horizon)
	}
	c.running.Store(false)
	end := c.Now()
	if bounded && deadline > end {
		end = deadline
	}
	for _, e := range c.engines {
		e.AdvanceTo(end)
	}
	return end
}
