// Package broker implements the baseline PLEROMA is compared against: a
// classical application-layer content-based publish/subscribe overlay in
// the style of SIENA/PADRES (references [2, 8] of the paper). Brokers run
// on every switch of the same physical topology, organised in a single
// spanning tree; subscriptions flood the tree with covering-based
// suppression, and events are matched in *software* at every broker hop.
//
// The baseline exposes the two costs the paper's introduction attributes
// to broker-based filtering: the per-hop software matching delay, and the
// detour/processing overhead compared to line-rate TCAM forwarding.
package broker

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// Config sets the broker processing model.
type Config struct {
	// BaseHopDelay is the fixed userspace forwarding overhead per broker.
	BaseHopDelay time.Duration
	// PerFilterCost is the matching cost per subscription filter
	// evaluated at a broker.
	PerFilterCost time.Duration
}

// DefaultConfig models a tuned software broker.
var DefaultConfig = Config{
	BaseHopDelay:  100 * time.Microsecond,
	PerFilterCost: 200 * time.Nanosecond,
}

// Delivery reports one event handed to a subscriber.
type Delivery struct {
	SubID string
	Host  topo.NodeID
	Event space.Event
	At    time.Duration
}

// DeliverFunc consumes deliveries.
type DeliverFunc func(Delivery)

// Stats counts overlay activity.
type Stats struct {
	// ControlMessages counts subscription propagation messages between
	// brokers.
	ControlMessages uint64
	// EventMessages counts event transmissions over physical links.
	EventMessages uint64
	// Deliveries counts events handed to subscribers.
	Deliveries uint64
	// FilterEvaluations counts subscription filters evaluated in software.
	FilterEvaluations uint64
	// SuppressedByCovering counts subscription forwardings skipped.
	SuppressedByCovering uint64
}

// subEntry is one subscription known at a broker for one direction.
type subEntry struct {
	id   string
	rect dz.Rect
}

// broker is the per-switch state.
type broker struct {
	node topo.NodeID
	// local subscriptions of hosts attached to this broker's switch.
	local []subEntry
	// remote maps tree-neighbour broker -> subscriptions reachable through
	// it.
	remote map[topo.NodeID][]subEntry
	// sent maps tree-neighbour -> subscription rects already forwarded
	// that way (for covering suppression).
	sent map[topo.NodeID][]dz.Rect
}

// Overlay is the broker network.
//
// Like core.Controller, an Overlay is safe for concurrent use — the
// broker-vs-SDN ablation stays apples-to-apples under concurrent churn.
// One lock guards routing tables and counters; the simulated event routing
// acquires it per broker hop, mimicking a per-broker critical section.
type Overlay struct {
	g       *topo.Graph
	eng     *sim.Engine
	cfg     Config
	tree    *topo.SpanningTree
	deliver DeliverFunc

	// mu guards brokers, stats, and the subscription registry.
	mu      sync.Mutex
	brokers map[topo.NodeID]*broker
	stats   Stats
	subHome map[string]topo.NodeID
	subRect map[string]dz.Rect
	// subOrder preserves registration order for re-propagation after an
	// unsubscription.
	subOrder []string
}

// New builds a broker overlay over all switches of the topology, embedded
// in a single spanning tree rooted at the lowest-ID switch (the classical
// single-tree design of Section 3.1).
func New(g *topo.Graph, eng *sim.Engine, cfg Config, deliver DeliverFunc) (*Overlay, error) {
	switches := g.Switches()
	if len(switches) == 0 {
		return nil, fmt.Errorf("broker: topology has no switches")
	}
	tree, err := g.ShortestPathTree(switches[0], func(n topo.NodeID) bool {
		node, err := g.Node(n)
		return err == nil && node.Kind == topo.KindSwitch
	})
	if err != nil {
		return nil, fmt.Errorf("broker: spanning tree: %w", err)
	}
	o := &Overlay{
		g:       g,
		eng:     eng,
		cfg:     cfg,
		tree:    tree,
		brokers: make(map[topo.NodeID]*broker, len(switches)),
		deliver: deliver,
		subHome: make(map[string]topo.NodeID),
		subRect: make(map[string]dz.Rect),
	}
	for _, sw := range switches {
		if !tree.Contains(sw) {
			return nil, fmt.Errorf("broker: switch %d unreachable from root", sw)
		}
		o.brokers[sw] = &broker{
			node:   sw,
			remote: make(map[topo.NodeID][]subEntry),
			sent:   make(map[topo.NodeID][]dz.Rect),
		}
	}
	return o, nil
}

// Stats returns a copy of the counters.
func (o *Overlay) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// treeNeighbors returns the tree-adjacent brokers of sw.
func (o *Overlay) treeNeighbors(sw topo.NodeID) []topo.NodeID {
	var out []topo.NodeID
	if p, ok := o.tree.Parent(sw); ok && p != sw {
		out = append(out, p)
	}
	for _, other := range o.g.Switches() {
		if p, ok := o.tree.Parent(other); ok && p == sw && other != sw {
			out = append(out, other)
		}
	}
	return out
}

// Subscribe registers a subscription at the broker of the host's switch
// and floods it through the tree with covering-based suppression.
func (o *Overlay) Subscribe(id string, host topo.NodeID, rect dz.Rect) error {
	sw, err := o.g.AttachedSwitch(host)
	if err != nil {
		return fmt.Errorf("broker: subscribe: %w", err)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.subHome[id]; dup {
		return fmt.Errorf("broker: duplicate subscription id %q", id)
	}
	b := o.brokers[sw]
	b.local = append(b.local, subEntry{id: id, rect: rect})
	o.subHome[id] = host
	o.subRect[id] = rect
	o.subOrder = append(o.subOrder, id)
	o.propagate(sw, 0, id, rect, true)
	return nil
}

// Unsubscribe removes a subscription. Because covering-based suppression
// may have let this subscription carry finer ones, the overlay rebuilds
// the routing tables by re-propagating the surviving subscriptions — the
// "expensive maintenance of subscription summaries" the paper's related
// work discusses; the control messages are counted accordingly.
func (o *Overlay) Unsubscribe(id string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	host, ok := o.subHome[id]
	if !ok {
		return fmt.Errorf("broker: unknown subscription id %q", id)
	}
	sw, err := o.g.AttachedSwitch(host)
	if err != nil {
		return err
	}
	b := o.brokers[sw]
	kept := b.local[:0]
	for _, e := range b.local {
		if e.id != id {
			kept = append(kept, e)
		}
	}
	b.local = kept
	delete(o.subHome, id)
	delete(o.subRect, id)
	order := o.subOrder[:0]
	for _, s := range o.subOrder {
		if s != id {
			order = append(order, s)
		}
	}
	o.subOrder = order

	// Rebuild all inter-broker routing state.
	for _, br := range o.brokers {
		br.remote = make(map[topo.NodeID][]subEntry)
		br.sent = make(map[topo.NodeID][]dz.Rect)
	}
	for _, sid := range o.subOrder {
		h := o.subHome[sid]
		swr, err := o.g.AttachedSwitch(h)
		if err != nil {
			return err
		}
		o.propagate(swr, 0, sid, o.subRect[sid], true)
	}
	return nil
}

// propagate floods a subscription from broker sw to all tree neighbours
// except `from` (0 meaning none).
func (o *Overlay) propagate(sw, from topo.NodeID, id string, rect dz.Rect, isOrigin bool) {
	for _, nb := range o.treeNeighbors(sw) {
		if !isOrigin && nb == from {
			continue
		}
		covered := false
		for _, prev := range o.brokers[sw].sent[nb] {
			if rectCovers(prev, rect) {
				covered = true
				break
			}
		}
		if covered {
			o.stats.SuppressedByCovering++
			continue
		}
		b := o.brokers[sw]
		b.sent[nb] = append(b.sent[nb], rect)
		o.stats.ControlMessages++
		nbBroker := o.brokers[nb]
		nbBroker.remote[sw] = append(nbBroker.remote[sw], subEntry{id: id, rect: rect})
		o.propagate(nb, sw, id, rect, false)
	}
}

// Publish injects an event at the publisher's broker and routes it through
// the overlay. Deliveries fire on the configured callback with simulated
// timestamps that include per-hop software matching delay.
func (o *Overlay) Publish(host topo.NodeID, ev space.Event) error {
	sw, err := o.g.AttachedSwitch(host)
	if err != nil {
		return fmt.Errorf("broker: publish: %w", err)
	}
	access, ok := o.g.LinkBetween(host, sw)
	if !ok {
		return fmt.Errorf("broker: host %d has no access link", host)
	}
	o.mu.Lock()
	o.stats.EventMessages++
	o.mu.Unlock()
	o.eng.Schedule(access.Params.Latency, func() {
		o.route(sw, 0, ev)
	})
	return nil
}

// route processes an event at one broker: match against local and remote
// subscription tables, deliver locally, and forward towards interested
// neighbours.
func (o *Overlay) route(sw, from topo.NodeID, ev space.Event) {
	o.mu.Lock()
	b := o.brokers[sw]
	evaluated := 0

	// Local deliveries.
	type localHit struct {
		id   string
		host topo.NodeID
	}
	var hits []localHit
	for _, e := range b.local {
		evaluated++
		if dz.RectContainsPoint(e.rect, ev.Values) {
			hits = append(hits, localHit{id: e.id, host: o.subHome[e.id]})
		}
	}
	// Forwarding decisions.
	var forwards []topo.NodeID
	for nb, entries := range b.remote {
		if nb == from {
			continue
		}
		match := false
		for _, e := range entries {
			evaluated++
			if dz.RectContainsPoint(e.rect, ev.Values) {
				match = true
				break
			}
		}
		if match {
			forwards = append(forwards, nb)
		}
	}
	sortNodeIDs(forwards)
	o.stats.FilterEvaluations += uint64(evaluated)
	o.mu.Unlock()

	procDelay := o.cfg.BaseHopDelay + time.Duration(evaluated)*o.cfg.PerFilterCost
	o.eng.Schedule(procDelay, func() {
		for _, h := range hits {
			h := h
			hostLink, ok := o.g.LinkBetween(sw, h.host)
			if !ok {
				continue
			}
			o.mu.Lock()
			o.stats.EventMessages++
			o.mu.Unlock()
			o.eng.Schedule(hostLink.Params.Latency, func() {
				o.mu.Lock()
				o.stats.Deliveries++
				deliver := o.deliver
				o.mu.Unlock()
				if deliver != nil {
					deliver(Delivery{SubID: h.id, Host: h.host, Event: ev, At: o.eng.Now()})
				}
			})
		}
		for _, nb := range forwards {
			nb := nb
			link, ok := o.g.LinkBetween(sw, nb)
			if !ok {
				continue
			}
			o.mu.Lock()
			o.stats.EventMessages++
			o.mu.Unlock()
			o.eng.Schedule(link.Params.Latency, func() {
				o.route(nb, sw, ev)
			})
		}
	})
}

func sortNodeIDs(ids []topo.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// rectCovers reports whether a contains b in every dimension.
func rectCovers(a, b dz.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if !a[d].ContainsInterval(b[d]) {
			return false
		}
	}
	return true
}
