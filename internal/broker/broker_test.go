package broker

import (
	"testing"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

func setup(t *testing.T) (*topo.Graph, *sim.Engine, *Overlay, *[]Delivery) {
	t.Helper()
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	var got []Delivery
	o, err := New(g, eng, DefaultConfig, func(d Delivery) { got = append(got, d) })
	if err != nil {
		t.Fatal(err)
	}
	return g, eng, o, &got
}

func rect(lo0, hi0, lo1, hi1 uint32) dz.Rect {
	return dz.Rect{{Lo: lo0, Hi: hi0}, {Lo: lo1, Hi: hi1}}
}

func TestBrokerDelivery(t *testing.T) {
	g, eng, o, got := setup(t)
	hosts := g.Hosts()
	if err := o.Subscribe("s1", hosts[5], rect(0, 500, 0, 1023)); err != nil {
		t.Fatal(err)
	}
	if err := o.Subscribe("s2", hosts[6], rect(600, 700, 0, 1023)); err != nil {
		t.Fatal(err)
	}
	if err := o.Publish(hosts[0], space.Event{Values: []uint32{100, 9}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(*got) != 1 {
		t.Fatalf("deliveries=%d, want 1", len(*got))
	}
	d := (*got)[0]
	if d.SubID != "s1" || d.Host != hosts[5] {
		t.Errorf("delivery=%+v", d)
	}
	if d.At <= 0 {
		t.Error("delivery must take simulated time")
	}
	st := o.Stats()
	if st.Deliveries != 1 {
		t.Errorf("stats deliveries=%d", st.Deliveries)
	}
	if st.FilterEvaluations == 0 {
		t.Error("software matching must be counted")
	}
}

func TestBrokerNoFalseDeliveries(t *testing.T) {
	g, eng, o, got := setup(t)
	hosts := g.Hosts()
	if err := o.Subscribe("s1", hosts[3], rect(0, 10, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := o.Publish(hosts[0], space.Event{Values: []uint32{500, 500}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(*got) != 0 {
		t.Fatalf("deliveries=%d, want 0", len(*got))
	}
}

func TestBrokerCoveringSuppression(t *testing.T) {
	g, _, o, _ := setup(t)
	hosts := g.Hosts()
	if err := o.Subscribe("wide", hosts[2], rect(0, 1023, 0, 1023)); err != nil {
		t.Fatal(err)
	}
	msgs := o.Stats().ControlMessages
	if msgs == 0 {
		t.Fatal("first subscription must propagate")
	}
	// A narrower subscription at the same host is fully covered.
	if err := o.Subscribe("narrow", hosts[2], rect(5, 6, 5, 6)); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.ControlMessages != msgs {
		t.Errorf("covered subscription must not propagate: %d -> %d", msgs, st.ControlMessages)
	}
	if st.SuppressedByCovering == 0 {
		t.Error("suppression must be counted")
	}
}

func TestBrokerCoveredSubscriptionStillDelivered(t *testing.T) {
	g, eng, o, got := setup(t)
	hosts := g.Hosts()
	if err := o.Subscribe("wide", hosts[2], rect(0, 1023, 0, 1023)); err != nil {
		t.Fatal(err)
	}
	if err := o.Subscribe("narrow", hosts[2], rect(0, 200, 0, 1023)); err != nil {
		t.Fatal(err)
	}
	if err := o.Publish(hosts[7], space.Event{Values: []uint32{100, 100}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(*got) != 2 {
		t.Fatalf("deliveries=%d, want 2 (both subscriptions match)", len(*got))
	}
}

func TestBrokerDuplicateID(t *testing.T) {
	g, _, o, _ := setup(t)
	hosts := g.Hosts()
	if err := o.Subscribe("x", hosts[0], rect(0, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := o.Subscribe("x", hosts[1], rect(0, 1, 0, 1)); err == nil {
		t.Error("duplicate id must fail")
	}
}

func TestBrokerValidation(t *testing.T) {
	g, eng, o, _ := setup(t)
	sw := g.Switches()[0]
	if err := o.Subscribe("s", sw, rect(0, 1, 0, 1)); err == nil {
		t.Error("subscribing from a switch must fail")
	}
	if err := o.Publish(sw, space.Event{Values: []uint32{0, 0}}); err == nil {
		t.Error("publishing from a switch must fail")
	}
	_ = eng
	// Topology without switches is rejected.
	empty := topo.NewGraph()
	empty.AddHost("h")
	if _, err := New(empty, sim.NewEngine(), DefaultConfig, nil); err == nil {
		t.Error("switchless topology must fail")
	}
}

func TestBrokerDelayGrowsWithFilterLoad(t *testing.T) {
	run := func(nSubs int) time.Duration {
		g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		var last time.Duration
		o, err := New(g, eng, DefaultConfig, func(d Delivery) {
			if d.SubID == "target" {
				last = d.At
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		hosts := g.Hosts()
		if err := o.Subscribe("target", hosts[7], rect(0, 100, 0, 1023)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nSubs; i++ {
			// Filters that never match but still cost evaluation time.
			if err := o.Subscribe(
				subID(i), hosts[1+i%6], rect(1000, 1023, 1000, 1023)); err != nil {
				t.Fatal(err)
			}
		}
		if err := o.Publish(hosts[0], space.Event{Values: []uint32{50, 50}}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return last
	}
	small := run(5)
	big := run(500)
	if big <= small {
		t.Errorf("broker delay must grow with filter load: %v vs %v", small, big)
	}
}

func subID(i int) string {
	return "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func TestBrokerMessagesNoDuplicates(t *testing.T) {
	// A single matching subscriber: the event must traverse each link at
	// most once (tree forwarding).
	g, eng, o, got := setup(t)
	hosts := g.Hosts()
	if err := o.Subscribe("s1", hosts[7], rect(0, 1023, 0, 1023)); err != nil {
		t.Fatal(err)
	}
	if err := o.Publish(hosts[0], space.Event{Values: []uint32{1, 1}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(*got) != 1 {
		t.Fatalf("deliveries=%d, want exactly 1", len(*got))
	}
	st := o.Stats()
	// Upper bound: one hop per switch plus access links.
	maxMsgs := uint64(len(g.Switches()) + 2)
	if st.EventMessages > maxMsgs {
		t.Errorf("event messages=%d, exceeds tree bound %d", st.EventMessages, maxMsgs)
	}
}

func TestBrokerUnsubscribe(t *testing.T) {
	g, eng, o, got := setup(t)
	hosts := g.Hosts()
	if err := o.Subscribe("s1", hosts[5], rect(0, 1023, 0, 1023)); err != nil {
		t.Fatal(err)
	}
	if err := o.Publish(hosts[0], space.Event{Values: []uint32{1, 1}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(*got) != 1 {
		t.Fatalf("deliveries=%d", len(*got))
	}
	if err := o.Unsubscribe("s1"); err != nil {
		t.Fatal(err)
	}
	if err := o.Publish(hosts[0], space.Event{Values: []uint32{2, 2}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(*got) != 1 {
		t.Errorf("delivery after unsubscribe: %d", len(*got))
	}
	if err := o.Unsubscribe("s1"); err == nil {
		t.Error("double unsubscribe must fail")
	}
}

func TestBrokerUnsubscribeRevivesCoveredSubscription(t *testing.T) {
	g, eng, o, got := setup(t)
	hosts := g.Hosts()
	// Wide covers narrow at the same host; narrow's propagation is
	// suppressed.
	if err := o.Subscribe("wide", hosts[5], rect(0, 1023, 0, 1023)); err != nil {
		t.Fatal(err)
	}
	if err := o.Subscribe("narrow", hosts[5], rect(0, 100, 0, 1023)); err != nil {
		t.Fatal(err)
	}
	if o.Stats().SuppressedByCovering == 0 {
		t.Fatal("narrow must be suppressed")
	}
	if err := o.Unsubscribe("wide"); err != nil {
		t.Fatal(err)
	}
	// narrow must still receive events after wide's removal.
	if err := o.Publish(hosts[0], space.Event{Values: []uint32{50, 50}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	found := false
	for _, d := range *got {
		if d.SubID == "narrow" {
			found = true
		}
		if d.SubID == "wide" {
			t.Error("removed subscription delivered")
		}
	}
	if !found {
		t.Error("covered subscription lost its routing after coverer left")
	}
}
