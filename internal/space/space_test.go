package space

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pleroma/internal/dz"
)

func mustSchema(t *testing.T, n int) *Schema {
	t.Helper()
	s, err := UniformSchema(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := NewSchema(Attribute{Name: "", Bits: 10}); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := NewSchema(
		Attribute{Name: "a", Bits: 10},
		Attribute{Name: "a", Bits: 10},
	); err == nil {
		t.Error("duplicate name must fail")
	}
	if _, err := NewSchema(
		Attribute{Name: "a", Bits: 10},
		Attribute{Name: "b", Bits: 8},
	); err == nil {
		t.Error("mixed widths must fail")
	}
	s, err := NewSchema(Attribute{Name: "x", Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.DomainMax() != 15 {
		t.Errorf("DomainMax=%d, want 15", s.DomainMax())
	}
}

func TestUniformSchema(t *testing.T) {
	s := mustSchema(t, 3)
	if s.Dims() != 3 {
		t.Fatalf("Dims=%d", s.Dims())
	}
	if s.Attribute(1).Name != "attr1" {
		t.Errorf("Attribute(1)=%q", s.Attribute(1).Name)
	}
	if i, ok := s.AttributeIndex("attr2"); !ok || i != 2 {
		t.Errorf("AttributeIndex=%d,%v", i, ok)
	}
	if _, ok := s.AttributeIndex("nope"); ok {
		t.Error("unknown attribute found")
	}
	if s.Geometry().MaxLen() != 30 {
		t.Errorf("MaxLen=%d", s.Geometry().MaxLen())
	}
}

func TestNewEvent(t *testing.T) {
	s := mustSchema(t, 2)
	if _, err := s.NewEvent(1); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := s.NewEvent(1, 5000); err == nil {
		t.Error("out-of-domain must fail")
	}
	e, err := s.NewEvent(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if e.Values[0] != 100 || e.Values[1] != 200 {
		t.Errorf("event values %v", e.Values)
	}
}

func TestFilterRectAndMatches(t *testing.T) {
	s := mustSchema(t, 2)
	f := NewFilter().Range("attr0", 100, 200)
	r, err := s.Rect(f)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != (dz.Interval{Lo: 100, Hi: 200}) {
		t.Errorf("rect[0]=%v", r[0])
	}
	if r[1] != (dz.Interval{Lo: 0, Hi: 1023}) {
		t.Errorf("rect[1]=%v (unconstrained must be full domain)", r[1])
	}

	in, _ := s.NewEvent(150, 999)
	out, _ := s.NewEvent(99, 0)
	if ok, err := s.Matches(f, in); err != nil || !ok {
		t.Errorf("Matches(in)=(%v,%v)", ok, err)
	}
	if ok, err := s.Matches(f, out); err != nil || ok {
		t.Errorf("Matches(out)=(%v,%v)", ok, err)
	}
}

func TestFilterValidation(t *testing.T) {
	s := mustSchema(t, 2)
	if _, err := s.Rect(NewFilter().Range("ghost", 0, 1)); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := s.Rect(NewFilter().Range("attr0", 5, 1)); err == nil {
		t.Error("empty range must fail")
	}
	if _, err := s.Rect(NewFilter().Range("attr0", 0, 4096)); err == nil {
		t.Error("out-of-domain range must fail")
	}
}

func TestFilterImmutableBuilder(t *testing.T) {
	base := NewFilter().Range("attr0", 0, 10)
	derived := base.Range("attr1", 5, 6)
	if len(base.Ranges) != 1 {
		t.Error("builder must not mutate the receiver")
	}
	if len(derived.Ranges) != 2 {
		t.Error("derived filter must hold both ranges")
	}
}

func TestDecomposePaperAdvertisement(t *testing.T) {
	// The Figure 2 advertisement on a 2-attribute schema.
	s := mustSchema(t, 2)
	f := NewFilter().Range("attr0", 512, 767)
	set, err := s.Decompose(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := dz.NewSet("110", "100")
	if !set.Equal(want) {
		t.Fatalf("Decompose=%v, want %v", set, want)
	}
}

func TestEncodeEvent(t *testing.T) {
	s := mustSchema(t, 2)
	e, _ := s.NewEvent(0, 1023)
	expr, err := s.Encode(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	if expr != "0101" {
		t.Errorf("Encode=%q, want 0101", expr)
	}
}

func TestProject(t *testing.T) {
	s := mustSchema(t, 4)
	p, err := s.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims() != 2 || p.Attribute(0).Name != "attr2" || p.Attribute(1).Name != "attr0" {
		t.Errorf("projection wrong: %v %v", p.Attribute(0), p.Attribute(1))
	}
	if _, err := s.Project(nil); err == nil {
		t.Error("empty projection must fail")
	}
	if _, err := s.Project([]int{9}); err == nil {
		t.Error("out-of-range projection must fail")
	}

	e, _ := s.NewEvent(1, 2, 3, 4)
	pe := e.Project([]int{2, 0})
	if pe.Values[0] != 3 || pe.Values[1] != 1 {
		t.Errorf("projected event %v", pe.Values)
	}
}

func TestFilterString(t *testing.T) {
	f := NewFilter().Range("b", 1, 2).Range("a", 3, 4)
	if got := f.String(); got != "a∈[3,4] ∧ b∈[1,2]" {
		t.Errorf("String()=%q", got)
	}
	if got := NewFilter().String(); got != "⊤" {
		t.Errorf("empty String()=%q", got)
	}
}

// TestPropertyDecomposeEnclosesMatches: any event matching the filter is
// covered by the filter's DZ set (no false negatives), for any maxLen.
func TestPropertyDecomposeEnclosesMatches(t *testing.T) {
	s := mustSchema(t, 3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		filt := NewFilter()
		for d := 0; d < 3; d++ {
			if r.Intn(2) == 0 {
				continue
			}
			a := uint32(r.Intn(1024))
			b := uint32(r.Intn(1024))
			if a > b {
				a, b = b, a
			}
			filt = filt.Range(s.Attribute(d).Name, a, b)
		}
		maxLen := 1 + r.Intn(20)
		set, err := s.Decompose(filt, maxLen)
		if err != nil {
			return false
		}
		rect, err := s.Rect(filt)
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			vals := make([]uint32, 3)
			for d := range vals {
				span := rect[d].Hi - rect[d].Lo + 1
				vals[d] = rect[d].Lo + uint32(r.Intn(int(span)))
			}
			ev := Event{Values: vals}
			expr, err := s.Encode(ev, s.Geometry().MaxLen())
			if err != nil {
				return false
			}
			if !set.Contains(expr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeRectAndLimitedVariants(t *testing.T) {
	s := mustSchema(t, 2)
	r, err := s.Rect(NewFilter().Range("attr0", 512, 767))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := s.DecomposeRect(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := s.DecomposeRectLimited(r, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Equal(limited) {
		t.Errorf("exact=%v limited=%v", exact, limited)
	}
	viaFilter, err := s.DecomposeLimited(NewFilter().Range("attr0", 512, 767), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !viaFilter.Equal(exact) {
		t.Errorf("filter path=%v, want %v", viaFilter, exact)
	}
	// Budget of 1 collapses to the whole space.
	one, err := s.DecomposeRectLimited(r, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Errorf("budget 1 gave %v", one)
	}
	// Error paths.
	if _, err := s.DecomposeLimited(NewFilter().Range("ghost", 0, 1), 3, 4); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := s.DecomposeRectLimited(r, 3, 0); err == nil {
		t.Error("zero budget must fail")
	}
	if _, err := s.DecomposeRect(dz.Rect{{Lo: 0, Hi: 1}}, 3); err == nil {
		t.Error("wrong dims must fail")
	}
}

func TestMatchesRectHelper(t *testing.T) {
	s := mustSchema(t, 2)
	r, err := s.Rect(NewFilter().Range("attr0", 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	in, _ := s.NewEvent(15, 999)
	out, _ := s.NewEvent(25, 0)
	if !MatchesRect(r, in) || MatchesRect(r, out) {
		t.Error("MatchesRect wrong")
	}
}

func TestMatchesErrorPath(t *testing.T) {
	s := mustSchema(t, 2)
	ev, _ := s.NewEvent(1, 1)
	if _, err := s.Matches(NewFilter().Range("ghost", 0, 1), ev); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := s.Encode(Event{Values: []uint32{1}}, 4); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := s.Decompose(NewFilter().Range("ghost", 0, 1), 4); err == nil {
		t.Error("decompose with unknown attribute must fail")
	}
}
