// Package space models the content-based event space of PLEROMA: a schema
// of named attributes with integer domains, events as attribute-value
// pairs, and subscriptions/advertisements as conjunctions of per-attribute
// range filters. It bridges the application-facing content model to the
// dz-expression spatial index of package dz (Section 2 of the paper).
package space

import (
	"fmt"
	"sort"
	"strings"

	"pleroma/internal/dz"
)

// Attribute describes one dimension of the event space.
type Attribute struct {
	// Name identifies the attribute, e.g. "price".
	Name string
	// Bits is the width of the attribute domain: values are in
	// [0, 2^Bits). The paper's evaluation uses domains of [0,1023],
	// i.e. 10 bits.
	Bits int
}

// Schema is an ordered list of attributes defining the event space Ω.
// The order determines the bisection cycle of the spatial index.
type Schema struct {
	attrs   []Attribute
	index   map[string]int
	geom    dz.Geometry
	uniform bool
}

// DefaultBits is the attribute width used by the paper's evaluation
// (domain [0, 1023]).
const DefaultBits = 10

// NewSchema builds a schema from the given attributes. All attributes must
// currently share the same bit width (the dz geometry bisects dimensions
// uniformly); mixed widths are rejected.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("space: schema needs at least one attribute")
	}
	index := make(map[string]int, len(attrs))
	bits := attrs[0].Bits
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("space: attribute %d has empty name", i)
		}
		if _, dup := index[a.Name]; dup {
			return nil, fmt.Errorf("space: duplicate attribute %q", a.Name)
		}
		if a.Bits != bits {
			return nil, fmt.Errorf("space: attribute %q has %d bits, expected uniform %d",
				a.Name, a.Bits, bits)
		}
		index[a.Name] = i
	}
	geom, err := dz.NewGeometry(len(attrs), bits)
	if err != nil {
		return nil, fmt.Errorf("space: %w", err)
	}
	return &Schema{
		attrs:   append([]Attribute(nil), attrs...),
		index:   index,
		geom:    geom,
		uniform: true,
	}, nil
}

// UniformSchema builds a schema of n attributes named "attr0".."attrN-1"
// with DefaultBits width each — the shape used throughout the paper's
// evaluation (up to 10 attributes, domain [0,1023]).
func UniformSchema(n int) (*Schema, error) {
	attrs := make([]Attribute, n)
	for i := range attrs {
		attrs[i] = Attribute{Name: fmt.Sprintf("attr%d", i), Bits: DefaultBits}
	}
	return NewSchema(attrs...)
}

// Dims returns the number of attributes.
func (s *Schema) Dims() int { return len(s.attrs) }

// Attribute returns the attribute at position i.
func (s *Schema) Attribute(i int) Attribute { return s.attrs[i] }

// AttributeIndex returns the position of the named attribute.
func (s *Schema) AttributeIndex(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Geometry returns the dz geometry induced by the schema.
func (s *Schema) Geometry() dz.Geometry { return s.geom }

// DomainMax returns the largest value of each attribute domain.
func (s *Schema) DomainMax() uint32 { return s.geom.DomainSize() - 1 }

// Project returns a schema restricted to the attribute positions in dims
// (in the given order). It is used by dimension selection (Section 5) to
// re-index the event space over the selected dimensions Ω_D.
func (s *Schema) Project(dims []int) (*Schema, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("space: projection needs at least one dimension")
	}
	attrs := make([]Attribute, len(dims))
	for i, d := range dims {
		if d < 0 || d >= len(s.attrs) {
			return nil, fmt.Errorf("space: projection dimension %d out of range [0,%d)", d, len(s.attrs))
		}
		attrs[i] = s.attrs[d]
	}
	return NewSchema(attrs...)
}

// Event is a point in the event space: one value per schema attribute.
type Event struct {
	// Values holds the attribute values in schema order.
	Values []uint32
}

// NewEvent constructs an event after validating it against the schema.
func (s *Schema) NewEvent(values ...uint32) (Event, error) {
	if len(values) != s.Dims() {
		return Event{}, fmt.Errorf("space: event has %d values, schema has %d attributes",
			len(values), s.Dims())
	}
	for i, v := range values {
		if v > s.DomainMax() {
			return Event{}, fmt.Errorf("space: value %d of attribute %q exceeds domain max %d",
				v, s.attrs[i].Name, s.DomainMax())
		}
	}
	return Event{Values: append([]uint32(nil), values...)}, nil
}

// Project maps the event into a projected schema given the dimension list
// used to build that schema.
func (e Event) Project(dims []int) Event {
	vals := make([]uint32, len(dims))
	for i, d := range dims {
		vals[i] = e.Values[d]
	}
	return Event{Values: vals}
}

// Encode returns the dz-expression of the given length enclosing the event.
// Events are published with a dz of maximum length (Section 2); shorter
// lengths model the Ldz address-space truncation.
func (s *Schema) Encode(e Event, length int) (dz.Expr, error) {
	expr, err := s.geom.EncodePoint(e.Values, length)
	if err != nil {
		return "", fmt.Errorf("space: encode event: %w", err)
	}
	return expr, nil
}

// Filter is a conjunction of closed per-attribute ranges. Attributes absent
// from the map are unconstrained. It is the application-level form of a
// subscription or advertisement.
type Filter struct {
	// Ranges maps attribute name to a closed [lo, hi] interval.
	Ranges map[string][2]uint32
}

// NewFilter builds a filter from alternating name, lo, hi triples expressed
// as a map literal; see Range for a fluent builder.
func NewFilter() Filter {
	return Filter{Ranges: make(map[string][2]uint32)}
}

// Range returns a copy of the filter with an additional range constraint.
func (f Filter) Range(attr string, lo, hi uint32) Filter {
	out := Filter{Ranges: make(map[string][2]uint32, len(f.Ranges)+1)}
	for k, v := range f.Ranges {
		out.Ranges[k] = v
	}
	out.Ranges[attr] = [2]uint32{lo, hi}
	return out
}

// Rect converts the filter to a hyperrectangle over the schema, leaving
// unconstrained attributes at their full domain.
func (s *Schema) Rect(f Filter) (dz.Rect, error) {
	r := s.geom.FullRect()
	for name, iv := range f.Ranges {
		i, ok := s.index[name]
		if !ok {
			return nil, fmt.Errorf("space: filter references unknown attribute %q", name)
		}
		if iv[0] > iv[1] {
			return nil, fmt.Errorf("space: filter range for %q is empty: [%d,%d]", name, iv[0], iv[1])
		}
		if iv[1] > s.DomainMax() {
			return nil, fmt.Errorf("space: filter range for %q exceeds domain max %d", name, s.DomainMax())
		}
		r[i] = dz.Interval{Lo: iv[0], Hi: iv[1]}
	}
	return r, nil
}

// Matches reports whether the event satisfies the filter exactly (the
// ground truth used to count false positives).
func (s *Schema) Matches(f Filter, e Event) (bool, error) {
	r, err := s.Rect(f)
	if err != nil {
		return false, err
	}
	return dz.RectContainsPoint(r, e.Values), nil
}

// MatchesRect reports whether the event lies in the hyperrectangle.
func MatchesRect(r dz.Rect, e Event) bool {
	return dz.RectContainsPoint(r, e.Values)
}

// Decompose converts the filter into its enclosing DZ set with
// dz-expressions of at most maxLen bits (Section 2: advertisements and
// subscriptions are approximated by sets of subspaces).
func (s *Schema) Decompose(f Filter, maxLen int) (dz.Set, error) {
	r, err := s.Rect(f)
	if err != nil {
		return nil, err
	}
	set, err := s.geom.Decompose(r, maxLen)
	if err != nil {
		return nil, fmt.Errorf("space: decompose filter: %w", err)
	}
	return set, nil
}

// DecomposeRect converts a hyperrectangle into its enclosing DZ set.
func (s *Schema) DecomposeRect(r dz.Rect, maxLen int) (dz.Set, error) {
	set, err := s.geom.Decompose(r, maxLen)
	if err != nil {
		return nil, fmt.Errorf("space: decompose rect: %w", err)
	}
	return set, nil
}

// String renders the filter deterministically (attributes sorted by name).
func (f Filter) String() string {
	if len(f.Ranges) == 0 {
		return "⊤"
	}
	names := make([]string, 0, len(f.Ranges))
	for n := range f.Ranges {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		iv := f.Ranges[n]
		parts[i] = fmt.Sprintf("%s∈[%d,%d]", n, iv[0], iv[1])
	}
	return strings.Join(parts, " ∧ ")
}

// DecomposeLimited converts the filter into an enclosing DZ set of at most
// maxSubspaces expressions of at most maxLen bits.
func (s *Schema) DecomposeLimited(f Filter, maxLen, maxSubspaces int) (dz.Set, error) {
	r, err := s.Rect(f)
	if err != nil {
		return nil, err
	}
	set, err := s.geom.DecomposeLimited(r, maxLen, maxSubspaces)
	if err != nil {
		return nil, fmt.Errorf("space: decompose filter: %w", err)
	}
	return set, nil
}

// DecomposeRectLimited converts a hyperrectangle into an enclosing DZ set
// of at most maxSubspaces expressions of at most maxLen bits.
func (s *Schema) DecomposeRectLimited(r dz.Rect, maxLen, maxSubspaces int) (dz.Set, error) {
	set, err := s.geom.DecomposeLimited(r, maxLen, maxSubspaces)
	if err != nil {
		return nil, fmt.Errorf("space: decompose rect: %w", err)
	}
	return set, nil
}
