package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type fakeHealth struct {
	degraded []string
	ready    bool
}

func (f *fakeHealth) DegradedSwitches() []string { return f.degraded }
func (f *fakeHealth) Ready() bool                { return f.ready }

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MDeliveries, "deliveries").Add(42)
	tr := NewTracer(4)
	sp := tr.StartSpan("advertise", "01*")
	sp.Event("case", "kind", "create")
	sp.End(nil)
	health := &fakeHealth{ready: true}

	srv := httptest.NewServer(Handler(reg, tr, health))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, MDeliveries+" 42") {
		t.Fatalf("/metrics = %d\n%s", code, body)
	}

	code, _ = get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}

	// Quarantine flips health to 503.
	health.degraded = []string{"7", "3"}
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "3, 7") {
		t.Fatalf("/healthz degraded = %d %q", code, body)
	}

	code, _ = get(t, srv, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	health.ready = false
	code, _ = get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz not-ready = %d, want 503", code)
	}

	code, body = get(t, srv, "/traces")
	if code != http.StatusOK || !strings.Contains(body, "op=advertise") || !strings.Contains(body, "kind=create") {
		t.Fatalf("/traces = %d\n%s", code, body)
	}

	code, body = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestTracesFilterByTraceID(t *testing.T) {
	tr := NewTracer(8)
	a := tr.StartSpan("publish", "p1")
	tr.StartRemoteSpan(a.TraceID, a.ID, "deliver", "s1").End(nil)
	a.End(nil)
	b := tr.StartSpan("publish", "p2")
	b.End(nil)

	srv := httptest.NewServer(Handler(nil, tr, nil))
	defer srv.Close()

	code, body := get(t, srv, fmt.Sprintf("/traces?trace=%d", a.TraceID))
	if code != http.StatusOK {
		t.Fatalf("/traces?trace= status %d", code)
	}
	if got := strings.Count(body, "op="); got != 2 {
		t.Fatalf("filtered trace has %d spans, want 2:\n%s", got, body)
	}
	if !strings.Contains(body, fmt.Sprintf("parent %d", a.ID)) {
		t.Fatalf("delivery span not parented to publish:\n%s", body)
	}

	code, body = get(t, srv, "/traces?trace=999999")
	if code != http.StatusOK || !strings.Contains(body, "no traces recorded") {
		t.Fatalf("unknown trace = %d %q", code, body)
	}
	code, _ = get(t, srv, "/traces?trace=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("bad trace id accepted: %d", code)
	}
}

func TestHandlerNilComponents(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil, nil))
	defer srv.Close()
	code, _ := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics nil registry = %d", code)
	}
	code, _ = get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz nil health = %d", code)
	}
	code, body := get(t, srv, "/traces")
	if code != http.StatusOK || !strings.Contains(body, "no traces") {
		t.Fatalf("/traces nil tracer = %d %q", code, body)
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge(MFlowTableOccupancy, "occupancy").Set(3)
	s, err := Serve("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), MFlowTableOccupancy+" 3") {
		t.Fatalf("metrics body:\n%s", body)
	}
	if resp.Header.Get("Content-Type") != ContentType {
		t.Fatalf("content type = %q", resp.Header.Get("Content-Type"))
	}
}
