package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLinking(t *testing.T) {
	tr := NewTracer(8)
	root := tr.StartSpan("publish", "p1")
	if root.TraceID == 0 {
		t.Fatal("root span without trace id")
	}
	if root.ParentID != 0 {
		t.Fatalf("root span parent = %d", root.ParentID)
	}
	child := tr.StartRemoteSpan(root.TraceID, root.ID, "deliver", "s1")
	if child.TraceID != root.TraceID {
		t.Fatalf("child trace = %d, want %d", child.TraceID, root.TraceID)
	}
	if child.ParentID != root.ID {
		t.Fatalf("child parent = %d, want %d", child.ParentID, root.ID)
	}
	child.End(nil)
	root.End(nil)
	other := tr.StartSpan("publish", "p2")
	other.End(nil)

	got := tr.SpansByTrace(root.TraceID)
	if len(got) != 2 {
		t.Fatalf("SpansByTrace returned %d spans, want 2", len(got))
	}
	for _, s := range got {
		if s.TraceID != root.TraceID {
			t.Fatalf("foreign span %+v in trace", s)
		}
	}
	if tr.SpansByTrace(0) != nil {
		t.Error("trace id 0 returned spans")
	}
	var b strings.Builder
	child.Format(&b)
	want := fmt.Sprintf("trace %d span %d parent %d", child.TraceID, child.ID, root.ID)
	if !strings.Contains(b.String(), want) {
		t.Errorf("format %q missing %q", b.String(), want)
	}
}

func TestRemoteSpanUntracedIsNoop(t *testing.T) {
	tr := NewTracer(4)
	if sp := tr.StartRemoteSpan(0, 7, "deliver", "s"); sp != nil {
		t.Fatalf("untraced remote span = %+v, want nil", sp)
	}
	var nilTracer *Tracer
	if sp := nilTracer.StartRemoteSpan(1, 2, "x", "y"); sp != nil {
		t.Fatal("nil tracer minted a span")
	}
}

func TestTracerTraceIDsDistinct(t *testing.T) {
	// Two tracers (two processes) must not mint colliding trace ids even
	// though both count spans from 1.
	a, b := NewTracer(4), NewTracer(4)
	sa, sb := a.StartSpan("publish", "x"), b.StartSpan("publish", "x")
	if sa.TraceID == sb.TraceID {
		t.Fatalf("tracers minted the same trace id %d", sa.TraceID)
	}
	if sa.ID != 1 || sb.ID != 1 {
		t.Fatalf("span ids = %d, %d, want 1, 1", sa.ID, sb.ID)
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 20*time.Millisecond, 40*time.Millisecond)
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		h.Observe(15 * time.Millisecond)
	}
	s := h.snapshot()
	if p50 := s.Quantile(0.5); p50 != 10*time.Millisecond {
		t.Errorf("p50 = %s, want 10ms", p50)
	}
	// p75 lands halfway through the (10ms, 20ms] bucket.
	if p75 := s.Quantile(0.75); p75 != 15*time.Millisecond {
		t.Errorf("p75 = %s, want 15ms", p75)
	}
	if p100 := s.Quantile(1); p100 != 20*time.Millisecond {
		t.Errorf("p100 = %s, want 20ms", p100)
	}
	var empty *HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("nil snapshot quantile != 0")
	}
	// Overflow samples report the last finite bound.
	h2 := NewHistogram(time.Millisecond)
	h2.Observe(time.Second)
	if q := h2.snapshot().Quantile(0.99); q != time.Millisecond {
		t.Errorf("overflow quantile = %s, want 1ms", q)
	}
}

func TestCountHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := NewCountHistogram(1, 2, 4)
	reg.AttachHistogram("pleroma_test_hops", "Hops.", "", "", h)
	h.ObserveCount(1)
	h.ObserveCount(3)
	h.ObserveCount(9)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pleroma_test_hops_bucket{le="1"} 0`,
		`pleroma_test_hops_bucket{le="2"} 1`,
		`pleroma_test_hops_bucket{le="4"} 2`,
		`pleroma_test_hops_bucket{le="+Inf"} 3`,
		"pleroma_test_hops_sum 13",
		"pleroma_test_hops_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSlowRingKeepsSlowest(t *testing.T) {
	r := NewSlowRing(3)
	for i := 1; i <= 10; i++ {
		r.Offer(DeliverySample{SubscriptionID: "s", Latency: time.Duration(i) * time.Millisecond})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i, want := range []time.Duration{10, 9, 8} {
		if got[i].Latency != want*time.Millisecond {
			t.Fatalf("slowest[%d] = %s, want %dms", i, got[i].Latency, want)
		}
	}
	// A fast sample against a full ring is rejected on the atomic gate.
	r.Offer(DeliverySample{Latency: time.Microsecond})
	if got := r.Snapshot(); got[2].Latency != 8*time.Millisecond {
		t.Fatalf("fast sample displaced the tail: %+v", got)
	}
	var nilRing *SlowRing
	nilRing.Offer(DeliverySample{})
	if nilRing.Snapshot() != nil {
		t.Error("nil ring snapshot != nil")
	}
}

func TestSlowRingConcurrent(t *testing.T) {
	r := NewSlowRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Offer(DeliverySample{Latency: time.Duration(g*1000 + i)})
			}
		}(g)
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	// The 8 slowest offered latencies are 3992..3999.
	for _, s := range got {
		if s.Latency < 3992 {
			t.Fatalf("retained non-tail sample %d", s.Latency)
		}
	}
}

func TestDeliveryLatencyRecord(t *testing.T) {
	reg := NewRegistry()
	l := NewDeliveryLatency(4)
	l.Attach(reg)
	l.Record(DeliverySample{
		SubscriptionID: "s1", Tree: 1, Partition: 0,
		Latency: 200 * time.Microsecond, WallLatency: time.Millisecond, Hops: 4,
	})
	l.Record(DeliverySample{
		SubscriptionID: "s2", Tree: 1, Partition: 2,
		Latency: 300 * time.Microsecond, Hops: 2,
	})
	l.Record(DeliverySample{SubscriptionID: "s3", Tree: -1, Partition: -1, Latency: time.Microsecond})

	trees := l.TreeSnapshots()
	if trees["1"] == nil || trees["1"].Count != 2 {
		t.Fatalf("tree snapshots = %+v", trees)
	}
	parts := l.PartitionSnapshots()
	if parts["0"] == nil || parts["0"].Count != 1 || parts["2"] == nil {
		t.Fatalf("partition snapshots = %+v", parts)
	}
	if l.Hops().Count() != 3 {
		t.Fatalf("hops count = %d", l.Hops().Count())
	}
	if l.Wall().Count() != 1 {
		t.Fatalf("wall count = %d", l.Wall().Count())
	}
	if got := l.Slowest(); len(got) != 3 || got[0].SubscriptionID != "s2" {
		t.Fatalf("slowest = %+v", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{MDeliveryLatencyByTree, MDeliveryLatencyByPartition, MDeliveryHops, MDeliveryWallLatency} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	var nilFam *DeliveryLatency
	nilFam.Record(DeliverySample{})
	nilFam.Attach(reg)
	if nilFam.Slowest() != nil || nilFam.Hops() != nil || nilFam.Wall() != nil {
		t.Error("nil family leaked state")
	}
}
