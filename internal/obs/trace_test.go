package obs

import (
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		sp := tr.StartSpan("advertise", "00*")
		sp.Event("step")
		sp.End(nil)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	// oldest first: IDs 3, 4, 5
	for i, want := range []uint64{3, 4, 5} {
		if spans[i].ID != want {
			t.Fatalf("span[%d].ID = %d, want %d", i, spans[i].ID, want)
		}
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.StartSpan("subscribe", "01*").End(nil)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Op != "subscribe" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestSpanEventsAndFormat(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.StartSpan("publish", "1101")
	sp.Event("case", "kind", "merge", "trees", "2")
	sp.Eventf("programmed %d switches", 3)
	sp.End(nil)
	evs := sp.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Attr["kind"] != "merge" || evs[0].Attr["trees"] != "2" {
		t.Fatalf("attrs = %+v", evs[0].Attr)
	}
	var b strings.Builder
	sp.Format(&b)
	out := b.String()
	for _, want := range []string{"op=publish", `target="1101"`, "kind=merge", "programmed 3 switches"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestSpanEventCapAndDoubleEnd(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.StartSpan("advertise", "0*")
	for i := 0; i < maxSpanEvents+10; i++ {
		sp.Event("e")
	}
	sp.End(nil)
	sp.End(nil) // idempotent
	sp.Event("after end ignored")
	if got := len(sp.Events()); got != maxSpanEvents {
		t.Fatalf("events = %d, want cap %d", got, maxSpanEvents)
	}
	var b strings.Builder
	sp.Format(&b)
	if !strings.Contains(b.String(), "10 events dropped") {
		t.Errorf("format missing drop note:\n%s", b.String())
	}
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestSpanErrAndSink(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(2)
	tr.SetSink(slog.New(slog.NewTextHandler(&buf, nil)))
	sp := tr.StartSpan("unsubscribe", "111*")
	sp.End(errTest("boom"))
	if sp.Err() != "boom" {
		t.Fatalf("err = %q", sp.Err())
	}
	out := buf.String()
	if !strings.Contains(out, "op=unsubscribe") || !strings.Contains(out, "err=boom") {
		t.Errorf("sink output: %s", out)
	}
	if !strings.Contains(out, "WARN") {
		t.Errorf("error span should log at warn: %s", out)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestSpanConcurrentEvents(t *testing.T) {
	// Refresh workers annotate the same span from many goroutines.
	tr := NewTracer(2)
	sp := tr.StartSpan("advertise", "0*")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				sp.Event("program", "switch", "1")
			}
		}()
	}
	wg.Wait()
	sp.End(nil)
	if got := len(sp.Events()); got != 160 {
		t.Fatalf("events = %d, want 160", got)
	}
}
