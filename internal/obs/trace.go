package obs

import (
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpanEvents bounds the event list of a single span so a pathological
// reconfiguration (thousands of switches touched) cannot grow a span
// without limit; past the cap events are counted but dropped.
const maxSpanEvents = 256

// Tracer assigns trace IDs to control-plane operations and keeps the most
// recent completed spans in a bounded ring buffer. A nil Tracer is a
// valid, disabled tracer: StartSpan returns a nil *Span whose methods are
// all no-ops.
type Tracer struct {
	next atomic.Uint64
	base uint64 // per-tracer scramble mixed into minted trace ids

	mu   sync.Mutex
	ring []*Span // ring buffer of completed spans
	pos  int     // next write position
	full bool

	sink *slog.Logger // optional; receives one record per completed span
}

// traceSeed differentiates tracers (and processes): span IDs are small
// per-tracer counters, but trace ids must be unique deployment-wide
// because a daemon files remote spans from many client processes into one
// ring, keyed by trace id.
var traceSeed atomic.Uint64

func init() { traceSeed.Store(uint64(time.Now().UnixNano())) }

// mix64 is splitmix64's finalizer: a cheap bijective scrambler.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTracer returns a tracer retaining the last capacity completed spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		base: mix64(traceSeed.Add(0x9e3779b97f4a7c15)),
		ring: make([]*Span, capacity),
	}
}

// SetSink mirrors every completed span as one structured log record.
func (t *Tracer) SetSink(l *slog.Logger) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = l
	t.mu.Unlock()
}

// StartSpan opens a span for one control operation. Op is the operation
// kind (advertise, subscribe, ...), target the primary argument rendered
// as text (typically the dz expression). The span must be finished with
// End to enter the ring buffer.
func (t *Tracer) StartSpan(op, target string) *Span {
	if t == nil {
		return nil
	}
	id := t.next.Add(1)
	tid := mix64(t.base + id)
	if tid == 0 {
		tid = 1
	}
	return &Span{
		tracer:  t,
		ID:      id,
		TraceID: tid,
		Op:      op,
		Target:  target,
		Start:   time.Now(),
	}
}

// StartRemoteSpan opens a span that continues a trace started elsewhere —
// another process across the transport boundary, or another span in this
// one: the new span joins traceID and is parented to parentID instead of
// minting a fresh trace. A zero traceID (untraced context) returns a nil
// no-op span.
func (t *Tracer) StartRemoteSpan(traceID, parentID uint64, op, target string) *Span {
	if t == nil || traceID == 0 {
		return nil
	}
	return &Span{
		tracer:   t,
		ID:       t.next.Add(1),
		TraceID:  traceID,
		ParentID: parentID,
		Op:       op,
		Target:   target,
		Start:    time.Now(),
	}
}

// record files a completed span.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	t.ring[t.pos] = s
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
		t.full = true
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		s.log(sink)
	}
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	if t.full {
		out = append(out, t.ring[t.pos:]...)
		out = append(out, t.ring[:t.pos]...)
	} else {
		out = append(out, t.ring[:t.pos]...)
	}
	return out
}

// SpansByTrace returns the retained spans belonging to one trace, oldest
// first.
func (t *Tracer) SpansByTrace(id uint64) []*Span {
	if t == nil || id == 0 {
		return nil
	}
	var out []*Span
	for _, s := range t.Spans() {
		if s.TraceID == id {
			out = append(out, s)
		}
	}
	return out
}

// Event is one structured step inside a span.
type Event struct {
	At   time.Duration // offset from span start
	Msg  string
	Attr map[string]string
}

// Span is the trace of one control-plane operation. The identifying
// fields are written once at StartSpan; the mutable state is guarded by
// mu because refresh fans out across worker goroutines that annotate the
// span concurrently.
type Span struct {
	tracer *Tracer

	ID uint64
	// TraceID groups the spans of one end-to-end operation, across
	// processes: a root span (StartSpan) mints it, a continuation span
	// (StartRemoteSpan) joins it.
	TraceID uint64
	// ParentID is the span this one is parented to (0 for a root). The
	// parent may live in another process's tracer.
	ParentID uint64
	Op       string
	Target   string
	Start    time.Time

	mu       sync.Mutex
	events   []Event
	dropped  int
	err      string
	duration time.Duration
	done     bool
}

// Event appends a structured event; attrs are alternating key, value
// strings (a trailing key without value is ignored).
func (s *Span) Event(msg string, attrs ...string) {
	if s == nil {
		return
	}
	var m map[string]string
	if len(attrs) >= 2 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	if len(s.events) >= maxSpanEvents {
		s.dropped++
		return
	}
	s.events = append(s.events, Event{At: time.Since(s.Start), Msg: msg, Attr: m})
}

// Eventf appends a formatted event with no attributes.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil {
		return
	}
	s.Event(fmt.Sprintf(format, args...))
}

// End closes the span, records the outcome, and files it in the tracer's
// ring buffer. Calling End twice is a no-op.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.duration = time.Since(s.Start)
	if err != nil {
		s.err = err.Error()
	}
	s.mu.Unlock()
	s.tracer.record(s)
}

// Duration returns the span's wall-clock duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duration
}

// Err returns the error message the span ended with ("" on success).
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Events returns a copy of the span's events.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// log emits the completed span as one slog record.
func (s *Span) log(l *slog.Logger) {
	s.mu.Lock()
	attrs := []slog.Attr{
		slog.Uint64("trace", s.TraceID),
		slog.Uint64("span", s.ID),
		slog.String("op", s.Op),
		slog.String("target", s.Target),
		slog.Duration("duration", s.duration),
		slog.Int("events", len(s.events)),
	}
	errMsg := s.err
	s.mu.Unlock()
	if errMsg != "" {
		attrs = append(attrs, slog.String("err", errMsg))
		l.LogAttrs(nil, slog.LevelWarn, "reconfig", attrs...)
		return
	}
	l.LogAttrs(nil, slog.LevelInfo, "reconfig", attrs...)
}

// Format renders the span as indented text for the /traces endpoint.
func (s *Span) Format(b *strings.Builder) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(b, "trace %d span %d", s.TraceID, s.ID)
	if s.ParentID != 0 {
		fmt.Fprintf(b, " parent %d", s.ParentID)
	}
	fmt.Fprintf(b, " op=%s target=%q duration=%s", s.Op, s.Target, s.duration)
	if s.err != "" {
		fmt.Fprintf(b, " err=%q", s.err)
	}
	b.WriteByte('\n')
	for _, e := range s.events {
		fmt.Fprintf(b, "  +%-12s %s", e.At, e.Msg)
		if len(e.Attr) > 0 {
			keys := make([]string, 0, len(e.Attr))
			for k := range e.Attr {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(b, " %s=%s", k, e.Attr[k])
			}
		}
		b.WriteByte('\n')
	}
	if s.dropped > 0 {
		fmt.Fprintf(b, "  ... %d events dropped (span cap %d)\n", s.dropped, maxSpanEvents)
	}
}
