package obs

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DeliverySample is one end-to-end delivery observation: everything the
// facade knows the moment an event reaches a subscriber. The struct is
// plain values (the only pointer is the subscription-id string header), so
// recording one costs no allocations.
type DeliverySample struct {
	// TraceID links the sample to its distributed trace (0 untraced).
	TraceID uint64
	// SubscriptionID names the receiving subscription.
	SubscriptionID string
	// Tree is the dissemination tree that carried the event (< 0 unknown).
	Tree int64
	// Partition is the publisher's controller partition (< 0 unknown).
	Partition int64
	// Latency is the simulated publish→delivery latency.
	Latency time.Duration
	// WallLatency is the real publish→delivery latency when the publish
	// carried a wall stamp (0 otherwise). Across machines it includes
	// clock skew.
	WallLatency time.Duration
	// Hops is the number of switch hops traversed.
	Hops int
	// At is the simulated delivery time.
	At time.Duration
	// FalsePositive marks deliveries outside the subscription filter.
	FalsePositive bool
}

// labelCache interns the label string for small integer ids (tree and
// partition numbers) so the per-delivery hot path formats each id once and
// then runs allocation-free.
type labelCache struct {
	mu sync.RWMutex
	m  map[int64]string
}

func (c *labelCache) get(id int64) string {
	c.mu.RLock()
	s, ok := c.m[id]
	c.mu.RUnlock()
	if ok {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok = c.m[id]; ok {
		return s
	}
	if c.m == nil {
		c.m = make(map[int64]string)
	}
	s = strconv.FormatInt(id, 10)
	c.m[id] = s
	return s
}

// SlowRing retains the N slowest delivery samples seen so far (by
// simulated latency) for tail forensics. It is a fixed-capacity min-heap
// with an atomic threshold gate: once full, samples faster than the
// current minimum are rejected without taking the lock, so the common case
// on a healthy system is one atomic load.
type SlowRing struct {
	gate    atomic.Int64 // latency a sample must exceed once full; -1 while filling
	mu      sync.Mutex
	entries []DeliverySample // min-heap on Latency
}

// NewSlowRing returns a ring retaining the capacity slowest samples
// (minimum 1).
func NewSlowRing(capacity int) *SlowRing {
	if capacity < 1 {
		capacity = 1
	}
	r := &SlowRing{entries: make([]DeliverySample, 0, capacity)}
	r.gate.Store(-1)
	return r
}

// Offer records a sample if it ranks among the slowest. Nil-safe.
func (r *SlowRing) Offer(s DeliverySample) {
	if r == nil {
		return
	}
	if int64(s.Latency) <= r.gate.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, s)
		r.siftUp(len(r.entries) - 1)
		if len(r.entries) == cap(r.entries) {
			r.gate.Store(int64(r.entries[0].Latency))
		}
		return
	}
	// Full: the gate may have admitted a racing sample that is no longer
	// slower than the minimum; re-check under the lock.
	if s.Latency <= r.entries[0].Latency {
		return
	}
	r.entries[0] = s
	r.siftDown(0)
	r.gate.Store(int64(r.entries[0].Latency))
}

func (r *SlowRing) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.entries[p].Latency <= r.entries[i].Latency {
			return
		}
		r.entries[p], r.entries[i] = r.entries[i], r.entries[p]
		i = p
	}
}

func (r *SlowRing) siftDown(i int) {
	n := len(r.entries)
	for {
		min, l, rt := i, 2*i+1, 2*i+2
		if l < n && r.entries[l].Latency < r.entries[min].Latency {
			min = l
		}
		if rt < n && r.entries[rt].Latency < r.entries[min].Latency {
			min = rt
		}
		if min == i {
			return
		}
		r.entries[i], r.entries[min] = r.entries[min], r.entries[i]
		i = min
	}
}

// Snapshot returns the retained samples, slowest first.
func (r *SlowRing) Snapshot() []DeliverySample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]DeliverySample(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Latency > out[j].Latency })
	return out
}

// DeliveryLatency is the delivery-latency instrument family: the
// per-tree and per-partition publish→delivery histograms, the hop-count
// histogram, the wall-latency histogram, and the slowest-events ring. A
// nil *DeliveryLatency is a valid disabled family.
type DeliveryLatency struct {
	byTree      *HistogramVec
	byPartition *HistogramVec
	hops        *Histogram
	wall        *Histogram
	slow        *SlowRing

	treeLabels labelCache
	partLabels labelCache
}

// NewDeliveryLatency builds the family, retaining the slowCapacity slowest
// deliveries (32 when <= 0).
func NewDeliveryLatency(slowCapacity int) *DeliveryLatency {
	if slowCapacity <= 0 {
		slowCapacity = 32
	}
	return &DeliveryLatency{
		byTree:      NewHistogramVec(),
		byPartition: NewHistogramVec(),
		hops:        NewCountHistogram(),
		wall:        NewHistogram(),
		slow:        NewSlowRing(slowCapacity),
	}
}

// Attach registers the family's instruments in reg.
func (l *DeliveryLatency) Attach(reg *Registry) {
	if l == nil || reg == nil {
		return
	}
	reg.AttachHistogramVec(MDeliveryLatencyByTree,
		"Simulated publish-to-delivery latency by dissemination tree.", "tree", l.byTree)
	reg.AttachHistogramVec(MDeliveryLatencyByPartition,
		"Simulated publish-to-delivery latency by publisher partition.", "partition", l.byPartition)
	reg.AttachHistogram(MDeliveryHops,
		"Switch hops traversed per delivered event.", "", "", l.hops)
	reg.AttachHistogram(MDeliveryWallLatency,
		"Wall-clock publish-to-delivery latency for stamped publishes.", "", "", l.wall)
}

// Record files one delivery observation. Nil-safe and allocation-free
// after each tree/partition label's first use.
func (l *DeliveryLatency) Record(s DeliverySample) {
	if l == nil {
		return
	}
	if s.Tree >= 0 {
		l.byTree.With(l.treeLabels.get(s.Tree)).Observe(s.Latency)
	}
	if s.Partition >= 0 {
		l.byPartition.With(l.partLabels.get(s.Partition)).Observe(s.Latency)
	}
	l.hops.ObserveCount(s.Hops)
	if s.WallLatency > 0 {
		l.wall.Observe(s.WallLatency)
	}
	l.slow.Offer(s)
}

// Slowest returns the retained tail samples, slowest first.
func (l *DeliveryLatency) Slowest() []DeliverySample {
	if l == nil {
		return nil
	}
	return l.slow.Snapshot()
}

// Hops returns the hop-count histogram (nil on a nil family).
func (l *DeliveryLatency) Hops() *Histogram {
	if l == nil {
		return nil
	}
	return l.hops
}

// Wall returns the wall-latency histogram (nil on a nil family).
func (l *DeliveryLatency) Wall() *Histogram {
	if l == nil {
		return nil
	}
	return l.wall
}

// TreeSnapshots returns per-tree histogram snapshots keyed by label.
func (l *DeliveryLatency) TreeSnapshots() map[string]*HistSnapshot {
	if l == nil {
		return nil
	}
	return l.byTree.snapshots()
}

// PartitionSnapshots returns per-partition histogram snapshots keyed by
// label.
func (l *DeliveryLatency) PartitionSnapshots() map[string]*HistSnapshot {
	if l == nil {
		return nil
	}
	return l.byPartition.snapshots()
}

// snapshots collects every member histogram of the vec.
func (v *HistogramVec) snapshots() map[string]*HistSnapshot {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]*HistSnapshot, len(v.m))
	for k, h := range v.m {
		out[k] = h.snapshot()
	}
	return out
}
