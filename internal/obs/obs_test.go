package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := NewGauge()
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	var r *Registry
	var tr *Tracer

	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Millisecond)
	cv.With("x").Inc()
	gv.With("x").Set(1)
	gv.Delete("x")
	hv.With("x").Observe(time.Second)
	r.AttachCounter("n", "h", "", "", NewCounter())
	_ = r.Counter("n", "h") // created but unexported
	_ = r.Snapshot()
	sp := tr.StartSpan("advertise", "dz")
	sp.Event("e", "k", "v")
	sp.Eventf("f %d", 1)
	sp.End(nil)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || sp.Duration() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer spans = %v, want nil", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // >= bound → bucket 1
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // overflow
	s := h.snapshot()
	want := []uint64{1, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if got := h.Sum(); got != time.Second+6*time.Millisecond+500*time.Microsecond {
		t.Fatalf("sum = %s", got)
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	h := NewHistogram(time.Second, time.Millisecond, time.Second)
	if len(h.bounds) != 2 || h.bounds[0] != time.Millisecond || h.bounds[1] != time.Second {
		t.Fatalf("bounds = %v", h.bounds)
	}
}

func TestRegistryMergesSameNameAttachments(t *testing.T) {
	// Two controllers attach their own counters under one family: the
	// snapshot must show the sum, while each controller's view stays
	// per-controller.
	r := NewRegistry()
	a, b := NewCounter(), NewCounter()
	r.AttachCounter(MSouthboundCalls, "calls", "", "", a)
	r.AttachCounter(MSouthboundCalls, "calls", "", "", b)
	a.Add(3)
	b.Add(4)
	snap := r.Snapshot()
	if v, ok := snap.Counter(MSouthboundCalls, ""); !ok || v != 7 {
		t.Fatalf("merged counter = %v, %v; want 7, true", v, ok)
	}
	if a.Value() != 3 || b.Value() != 4 {
		t.Fatal("attachment must not mutate the instruments")
	}
}

func TestRegistryVecsAndLabelOrder(t *testing.T) {
	r := NewRegistry()
	v := NewCounterVec()
	r.AttachCounterVec(MSwitchFlowMods, "per-switch flowmods", "switch", v)
	v.With("10").Add(2)
	v.With("2").Inc()
	snap := r.Snapshot()
	var fam *Family
	for i := range snap.Families {
		if snap.Families[i].Name == MSwitchFlowMods {
			fam = &snap.Families[i]
		}
	}
	if fam == nil {
		t.Fatal("family missing")
	}
	if fam.Label != "switch" || len(fam.Samples) != 2 {
		t.Fatalf("fam = %+v", fam)
	}
	// numeric label values sort numerically: 2 before 10
	if fam.Samples[0].LabelValue != "2" || fam.Samples[1].LabelValue != "10" {
		t.Fatalf("label order = %q, %q", fam.Samples[0].LabelValue, fam.Samples[1].LabelValue)
	}
	if got := snap.Total(MSwitchFlowMods); got != 3 {
		t.Fatalf("total = %v, want 3", got)
	}

	gv := NewGaugeVec()
	r.AttachGaugeVec(MTreeDzSize, "dz per tree", "tree", gv)
	gv.With("1").Set(5)
	gv.Delete("1")
	if vals := gv.Values(); len(vals) != 0 {
		t.Fatalf("after delete: %v", vals)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(MTreesCreated, "trees created").Add(2)
	r.Gauge(MFlowTableOccupancy, "occupancy").Set(9)
	h := r.Histogram(MReconfigDuration, "latency", time.Millisecond, time.Second)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Second)
	v := NewCounterVec()
	r.AttachCounterVec(MSwitchRetries, "retries", "switch", v)
	v.With(`sw"1`).Inc() // label escaping

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# HELP " + MTreesCreated + " trees created",
		"# TYPE " + MTreesCreated + " counter",
		MTreesCreated + " 2",
		"# TYPE " + MFlowTableOccupancy + " gauge",
		MFlowTableOccupancy + " 9",
		"# TYPE " + MReconfigDuration + " histogram",
		MReconfigDuration + `_bucket{le="0.001"} 0`,
		MReconfigDuration + `_bucket{le="1"} 1`,
		MReconfigDuration + `_bucket{le="+Inf"} 2`,
		MReconfigDuration + "_count 2",
		MSwitchRetries + `{switch="sw\"1"} 1`,
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q\n%s", w, out)
		}
	}
	// _sum is in seconds
	if !strings.Contains(out, MReconfigDuration+"_sum 2.002") {
		t.Errorf("histogram _sum not in seconds:\n%s", out)
	}
}

func TestHistogramVecSharedBounds(t *testing.T) {
	hv := NewHistogramVec(time.Millisecond)
	hv.With("a").Observe(2 * time.Millisecond)
	hv.With("b").Observe(time.Microsecond)
	r := NewRegistry()
	r.AttachHistogramVec(MReconfigDuration, "latency", "op", hv)
	snap := r.Snapshot()
	var fam *Family
	for i := range snap.Families {
		if snap.Families[i].Name == MReconfigDuration {
			fam = &snap.Families[i]
		}
	}
	if fam == nil || len(fam.Samples) != 2 {
		t.Fatalf("fam = %+v", fam)
	}
	for _, smp := range fam.Samples {
		if smp.Hist == nil || len(smp.Hist.Bounds) != 1 {
			t.Fatalf("sample %q hist = %+v", smp.LabelValue, smp.Hist)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(MDeliveries, "deliveries")
	v := NewCounterVec()
	r.AttachCounterVec(MSwitchFlowMods, "flowmods", "switch", v)
	h := r.Histogram(MDeliveryLatency, "latency")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("7").Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got, _ := snap.Counter(MDeliveries, ""); got != 8000 {
		t.Fatalf("deliveries = %v, want 8000", got)
	}
	if got, _ := snap.Counter(MSwitchFlowMods, "7"); got != 8000 {
		t.Fatalf("switch flowmods = %v, want 8000", got)
	}
}
