package obs

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// lintExposition is a promlint-style validator for the text exposition
// format (version 0.0.4): every series must be announced by a # HELP and
// # TYPE pair in that order, metric and label names must be legal,
// counters must end in _total, histograms must emit monotonically
// non-decreasing cumulative _bucket series ending in le="+Inf" whose count
// equals _count, plus a _sum — and label values must be properly escaped
// (an unescaped quote or newline corrupts the line structure this parser
// enforces).
func lintExposition(t *testing.T, text string) {
	t.Helper()
	var (
		metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		sampleRe   = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (\S+)$`)
		labelRe    = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"$`)
	)
	type fam struct {
		help, typ string
		samples   int
		// histogram accounting keyed by the non-le label signature
		buckets map[string][]float64 // le values in order of appearance
		cum     map[string][]uint64
		inf     map[string]uint64
		sum     map[string]bool
		count   map[string]uint64
	}
	fams := map[string]*fam{}
	order := []string{}
	get := func(name string) *fam {
		f := fams[name]
		if f == nil {
			f = &fam{buckets: map[string][]float64{}, cum: map[string][]uint64{},
				inf: map[string]uint64{}, sum: map[string]bool{}, count: map[string]uint64{}}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	base := func(name string) (string, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && fams[b] != nil && fams[b].typ == "histogram" {
				return b, suf
			}
		}
		return name, ""
	}

	var current string // family the last HELP/TYPE announced
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d: "+format+"\n%s", append([]any{line}, append(args, l)...)...)
		}
		switch {
		case strings.HasPrefix(l, "# HELP "):
			parts := strings.SplitN(l[len("# HELP "):], " ", 2)
			if len(parts) != 2 || !metricName.MatchString(parts[0]) || parts[1] == "" {
				fail("malformed HELP")
			}
			f := get(parts[0])
			if f.help != "" {
				fail("duplicate HELP for %s", parts[0])
			}
			f.help = parts[1]
			current = parts[0]
		case strings.HasPrefix(l, "# TYPE "):
			parts := strings.Fields(l[len("# TYPE "):])
			if len(parts) != 2 {
				fail("malformed TYPE")
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				fail("unknown type %q", typ)
			}
			f := get(name)
			if f.help == "" {
				fail("TYPE before HELP for %s", name)
			}
			if f.typ != "" {
				fail("duplicate TYPE for %s", name)
			}
			if name != current {
				fail("TYPE %s does not follow its HELP (current family %s)", name, current)
			}
			f.typ = typ
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				fail("counter %s does not end in _total", name)
			}
		case strings.HasPrefix(l, "#"):
			fail("unknown comment")
		case strings.TrimSpace(l) == "":
			fail("blank line")
		default:
			m := sampleRe.FindStringSubmatch(l)
			if m == nil {
				fail("malformed sample")
			}
			name, labels, valStr := m[1], m[2], m[3]
			famName, suffix := base(name)
			f := fams[famName]
			if f == nil || f.typ == "" {
				fail("sample for unannounced family %s", famName)
			}
			if famName != current {
				fail("sample for %s interleaved into family %s", famName, current)
			}
			if f.typ == "histogram" && suffix == "" {
				fail("bare sample %s under histogram family", name)
			}
			if f.typ != "histogram" && suffix != "" {
				fail("histogram suffix on %s family", f.typ)
			}
			val, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				fail("bad value %q", valStr)
			}
			var le string
			var rest []string
			if labels != "" {
				for _, lp := range splitLabels(labels) {
					lm := labelRe.FindStringSubmatch(lp)
					if lm == nil {
						fail("malformed or unescaped label %q", lp)
					}
					if lm[1] == "le" {
						le = lm[2]
					} else {
						rest = append(rest, lp)
					}
				}
			}
			sig := strings.Join(rest, ",")
			switch suffix {
			case "_bucket":
				if le == "" {
					fail("bucket without le")
				}
				leV := float64(0)
				if le == "+Inf" {
					f.inf[sig] = uint64(val)
					leV = 1e308
				} else if leV, err = strconv.ParseFloat(le, 64); err != nil {
					fail("bad le %q", le)
				}
				bs := f.buckets[sig]
				if len(bs) > 0 && leV <= bs[len(bs)-1] {
					fail("le %q not increasing", le)
				}
				cs := f.cum[sig]
				if len(cs) > 0 && uint64(val) < cs[len(cs)-1] {
					fail("bucket counts not cumulative")
				}
				f.buckets[sig] = append(bs, leV)
				f.cum[sig] = append(cs, uint64(val))
			case "_sum":
				f.sum[sig] = true
			case "_count":
				f.count[sig] = uint64(val)
			default:
				if f.typ == "counter" && val < 0 {
					fail("negative counter")
				}
			}
			f.samples++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		f := fams[name]
		if f.typ == "" {
			t.Fatalf("family %s announced HELP but no TYPE", name)
		}
		if f.typ != "histogram" {
			continue
		}
		if len(f.count) == 0 {
			t.Fatalf("histogram %s has no _count", name)
		}
		for sig, n := range f.count {
			inf, ok := f.inf[sig]
			if !ok {
				t.Fatalf("histogram %s{%s} missing +Inf bucket", name, sig)
			}
			if inf != n {
				t.Fatalf("histogram %s{%s}: +Inf bucket %d != count %d", name, sig, inf, n)
			}
			if !f.sum[sig] {
				t.Fatalf("histogram %s{%s} missing _sum", name, sig)
			}
		}
	}
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func TestPrometheusExpositionConformance(t *testing.T) {
	reg := NewRegistry()

	c := NewCounter()
	c.Add(3)
	reg.AttachCounter(MDeliveries, "Deliveries.", "", "", c)

	g := NewGauge()
	g.Set(-4)
	reg.AttachGauge(MFlowTableOccupancy, "Flows per switch.", "switch", "sw-1", g)

	// A label value exercising every escapeLabel case.
	hostile := NewCounter()
	hostile.Inc()
	reg.AttachCounter(MRequests, "Requests.", "op", "quote\" back\\slash\nnewline", hostile)

	h := NewHistogram(time.Millisecond, 10*time.Millisecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	reg.AttachHistogram(MDeliveryLatency, "Latency.", "", "", h)

	hv := NewHistogramVec(time.Millisecond)
	hv.With("t1").Observe(2 * time.Millisecond)
	hv.With("t2").Observe(time.Microsecond)
	reg.AttachHistogramVec(MDeliveryLatencyByTree, "Latency by tree.", "tree", hv)

	hops := NewCountHistogram(1, 2, 4)
	hops.ObserveCount(3)
	reg.AttachHistogram(MDeliveryHops, "Hops.", "", "", hops)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, b.String())

	// The validator must actually reject drift, or this test proves
	// nothing: feed it known-bad documents and expect failures.
	for name, bad := range map[string]string{
		"sample-before-type": "pleroma_x_total 1\n",
		"type-before-help":   "# TYPE pleroma_x_total counter\n# HELP pleroma_x_total x\npleroma_x_total 1\n",
		"counter-suffix":     "# HELP pleroma_x x\n# TYPE pleroma_x counter\npleroma_x 1\n",
		"unescaped-quote":    "# HELP pleroma_x_total x\n# TYPE pleroma_x_total counter\npleroma_x_total{op=\"a\"b\"} 1\n",
		"non-cumulative": "# HELP pleroma_h h\n# TYPE pleroma_h histogram\n" +
			"pleroma_h_bucket{le=\"1\"} 5\npleroma_h_bucket{le=\"2\"} 3\npleroma_h_bucket{le=\"+Inf\"} 5\npleroma_h_sum 9\npleroma_h_count 5\n",
		"missing-inf": "# HELP pleroma_h h\n# TYPE pleroma_h histogram\n" +
			"pleroma_h_bucket{le=\"1\"} 5\npleroma_h_sum 9\npleroma_h_count 5\n",
	} {
		rejected := didFail(func(ft *testing.T) { lintExposition(ft, bad) })
		if !rejected {
			t.Errorf("validator accepted known-bad document %q", name)
		}
	}
}

// didFail runs fn against a throwaway *testing.T in a goroutine (Fatalf
// calls runtime.Goexit) and reports whether it failed.
func didFail(fn func(*testing.T)) bool {
	sub := &testing.T{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn(sub)
	}()
	<-done
	return sub.Failed()
}
