package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// HealthSource reports the operational health of the system behind the
// endpoint. DegradedSwitches returns the identifiers of quarantined
// switches (datapath ids rendered as text); Ready reports whether the
// system has finished starting up.
type HealthSource interface {
	DegradedSwitches() []string
	Ready() bool
}

// Handler serves the operational surface:
//
//	/metrics        Prometheus text exposition of reg
//	/healthz        200 when no switch is quarantined, 503 otherwise
//	/readyz         200 once health.Ready(), 503 before
//	/traces         recent control-plane spans as indented text
//	/debug/pprof/*  net/http/pprof profiles
//
// Any of reg, tracer, health may be nil; the corresponding endpoint
// degrades gracefully (empty metrics, empty traces, always-healthy).
func Handler(reg *Registry, tracer *Tracer, health HealthSource) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var degraded []string
		if health != nil {
			degraded = health.DegradedSwitches()
		}
		if len(degraded) == 0 {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
			return
		}
		sort.Strings(degraded)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded switches: %s\n", strings.Join(degraded, ", "))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if health == nil || health.Ready() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var b strings.Builder
		var spans []*Span
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				fmt.Fprintf(w, "bad trace id %q\n", q)
				return
			}
			spans = tracer.SpansByTrace(id)
		} else {
			spans = tracer.Spans()
		}
		for _, s := range spans {
			s.Format(&b)
		}
		if len(spans) == 0 {
			b.WriteString("no traces recorded\n")
		}
		_, _ = w.Write([]byte(b.String()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the operational HTTP endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns once the listener is bound, so the caller
// can read Addr immediately.
func Serve(addr string, reg *Registry, tracer *Tracer, health HealthSource) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, tracer, health), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
