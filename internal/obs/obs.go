// Package obs is the runtime observability layer of the middleware: a
// concurrent metrics registry (atomic counters, gauges, and fixed-bucket
// histograms with cheap snapshots and Prometheus text exposition),
// control-plane tracing (per-reconfiguration spans collected in a bounded
// ring buffer, optionally mirrored to a log/slog sink), and the
// operational HTTP surface (/metrics, /healthz, /readyz, /traces, pprof).
//
// The paper's evaluation (Section 6) is built from quantities — flow-table
// occupancy, reconfiguration latency per Algorithm-1 case, false-positive
// rate, southbound retry churn — that previously existed only as post-hoc
// experiment tallies; this package makes them visible on a live System.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, vec, *Registry, *Tracer, or *Span are no-ops, so
// instrumented code points cost a nil check when observability is
// disabled. Instruments are standalone values owned by the component that
// populates them (a controller, the data plane); attaching them to a
// Registry only determines whether they appear in the exported snapshot.
// Several components may attach instruments under the same metric name —
// for example one controller per partition — and the registry sums
// same-name (and same-label-value) samples at collection time, so the
// exposition always shows deployment-wide totals.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical metric names. They are defined once here and shared by the
// controller's Stats view, the experiment harness, and the Prometheus
// exposition, so a counter can never drift between its report column and
// its scrape name.
const (
	// MRequests counts control requests by op (advertise, subscribe,
	// unsubscribe, unadvertise).
	MRequests = "pleroma_controller_requests_total"
	// MReconfigDuration is the wall-clock latency histogram of control
	// operations, by op.
	MReconfigDuration = "pleroma_reconfig_duration_seconds"
	// MFlowMods counts issued FlowMod messages by kind (add, delete,
	// modify).
	MFlowMods = "pleroma_flowmods_total"
	// MReconfigCases counts the incremental reconfiguration cases of
	// Algorithm 1 / Section 3.3.2 taken by the flow derivation.
	MReconfigCases = "pleroma_reconfig_cases_total"
	// MTreesCreated / MTreesMerged count dissemination-tree life-cycle
	// events.
	MTreesCreated = "pleroma_trees_created_total"
	MTreesMerged  = "pleroma_trees_merged_total"
	// MTreeDzSize gauges the DZ-set size per live dissemination tree.
	MTreeDzSize = "pleroma_tree_dz_size"
	// MStoredSubs counts subscriptions stored without a matching tree.
	MStoredSubs = "pleroma_stored_subscriptions_total"
	// MSouthboundCalls counts programmer invocations (a batch counts once).
	MSouthboundCalls = "pleroma_southbound_calls_total"
	// MSouthboundRetries counts southbound attempts repeated after
	// transient errors.
	MSouthboundRetries = "pleroma_southbound_retries_total"
	// MQuarantines counts switches that entered the degraded set.
	MQuarantines = "pleroma_switch_quarantines_total"
	// MResyncs counts anti-entropy passes over single switches.
	MResyncs = "pleroma_resync_passes_total"
	// MResyncRepaired counts FlowMods issued by resync passes.
	MResyncRepaired = "pleroma_resync_repaired_flows_total"
	// MSwitchFlowMods / MSwitchRetries / MSwitchFailures count per-switch
	// FlowMods acknowledged, retried, and abandoned.
	MSwitchFlowMods = "pleroma_switch_flowmods_total"
	MSwitchRetries  = "pleroma_switch_flowmod_retries_total"
	MSwitchFailures = "pleroma_switch_flowmod_failures_total"
	// MFlowTableOccupancy gauges installed flows per switch (TCAM
	// pressure), read from the emulated tables themselves.
	MFlowTableOccupancy = "pleroma_flow_table_occupancy"
	// MLinkPackets / MLinkDrops count data-plane transmissions and drops.
	MLinkPackets = "pleroma_link_packets_total"
	MLinkDrops   = "pleroma_link_drops_total"
	// MHostDeliveries counts packets handed to host applications.
	MHostDeliveries = "pleroma_host_deliveries_total"
	// MDeliveries / MFalsePositives count subscription deliveries and the
	// false positives among them (Section 6.4's FPR numerator).
	MDeliveries     = "pleroma_deliveries_total"
	MFalsePositives = "pleroma_false_positives_total"
	// MDeliveryLatency is the end-to-end (simulated) delivery latency
	// histogram.
	MDeliveryLatency = "pleroma_delivery_latency_seconds"
	// MInjectedFaults counts failures produced by the fault-injection
	// layer.
	MInjectedFaults = "pleroma_injected_faults_total"
	// MInterdomainMessages / MInterdomainSuppressed count
	// controller-to-controller messages and covering-suppressed
	// forwardings.
	MInterdomainMessages   = "pleroma_interdomain_messages_total"
	MInterdomainSuppressed = "pleroma_interdomain_suppressed_total"
	// MShardQueueDepth gauges pending events per shard engine, sampled at
	// barrier windows of the parallel simulation engine.
	MShardQueueDepth = "pleroma_shard_queue_depth"
	// MShardHorizon gauges the committed simulation horizon per shard
	// (nanoseconds): no shard has executed past it.
	MShardHorizon = "pleroma_shard_horizon_ns"
	// MShardWindows counts barrier windows executed by the parallel
	// engine.
	MShardWindows = "pleroma_shard_windows_total"
	// MShardStalls counts barrier stalls per shard: windows in which the
	// shard had no runnable event and sat at the barrier while its
	// neighbours worked.
	MShardStalls = "pleroma_shard_barrier_stalls_total"
	// MShardMailbox gauges the cross-shard mailbox backlog per receiving
	// shard, sampled when mailboxes are flushed at a barrier.
	MShardMailbox = "pleroma_shard_mailbox_backlog"
	// MShardCrossMessages counts packets that hopped between shards
	// through the mailbox exchange.
	MShardCrossMessages = "pleroma_shard_cross_messages_total"
	// MSnapshots counts controller state snapshots encoded; MSnapshotBytes
	// gauges the size of the last one.
	MSnapshots     = "pleroma_controller_snapshots_total"
	MSnapshotBytes = "pleroma_controller_snapshot_bytes"
	// MJournalRecords counts control ops appended to the op journal;
	// MJournalReplayed counts records replayed during standby promotion.
	MJournalRecords  = "pleroma_journal_records_total"
	MJournalReplayed = "pleroma_journal_replayed_total"
	// MFailovers counts warm-standby takeovers per partition, and
	// MControllerEpoch gauges each partition's controller incarnation.
	MFailovers       = "pleroma_controller_failovers_total"
	MControllerEpoch = "pleroma_controller_epoch"
	// MTransportFramesSent / MTransportFramesRecv and the byte twins count
	// framed messages crossing the TCP transport boundary (both roles).
	MTransportFramesSent = "pleroma_transport_frames_sent_total"
	MTransportFramesRecv = "pleroma_transport_frames_recv_total"
	MTransportBytesSent  = "pleroma_transport_bytes_sent_total"
	MTransportBytesRecv  = "pleroma_transport_bytes_recv_total"
	// MTransportReconnects counts client redials after a lost connection;
	// MTransportConns gauges the server's live connections and
	// MTransportInflight the requests currently being served.
	MTransportReconnects = "pleroma_transport_reconnects_total"
	MTransportConns      = "pleroma_transport_connections"
	MTransportInflight   = "pleroma_transport_inflight_requests"
	// Pipelined data path instruments. MTransportWriteBatchFrames samples
	// how many queued frames each writer wakeup drained into one syscall;
	// MTransportFlushes counts bufio flushes by reason ("idle", "close");
	// MTransportFrameBytes samples encoded frame sizes (the histogram the
	// buffer-pool size classes were chosen against); MTransportPublishWindow
	// gauges the async publish window occupancy (outstanding unacked
	// KindPublish frames); MTransportPublishCoalesced samples events packed
	// per coalesced PublishReq; MTransportDeliverBatch samples deliveries
	// packed per KindDeliverBatch frame.
	MTransportWriteBatchFrames = "pleroma_transport_write_batch_frames"
	MTransportFlushes          = "pleroma_transport_flushes_total"
	MTransportFrameBytes       = "pleroma_transport_frame_bytes"
	MTransportPublishWindow    = "pleroma_transport_publish_window"
	MTransportPublishCoalesced = "pleroma_transport_publish_coalesced_events"
	MTransportDeliverBatch     = "pleroma_transport_deliver_batch_events"
	// MDeliveryLatencyByTree / MDeliveryLatencyByPartition break the
	// publish→delivery (simulated) latency down by dissemination tree and
	// by the publisher's controller partition.
	MDeliveryLatencyByTree      = "pleroma_delivery_latency_tree_seconds"
	MDeliveryLatencyByPartition = "pleroma_delivery_latency_partition_seconds"
	// MDeliveryHops is the switch-hop-count histogram of delivered events.
	MDeliveryHops = "pleroma_delivery_hops"
	// MDeliveryWallLatency is the real (wall-clock) publish→delivery
	// latency histogram for publishes that carried an origin wall stamp.
	// Stamp and observation may come from different processes: across
	// machines the value includes clock skew (see DESIGN.md §7).
	MDeliveryWallLatency = "pleroma_delivery_wall_latency_seconds"
	// MClientDeliveryWallLatency is the client-side wall-clock
	// publish→delivery latency: stamped at publish and observed at
	// delivery receipt by the same process, so it is skew-free and
	// includes both transport crossings.
	MClientDeliveryWallLatency = "pleroma_client_delivery_wall_latency_seconds"
)

// DefaultHopBuckets spans the hop counts of data-center topologies (a
// fat-tree delivery crosses at most a handful of switches).
var DefaultHopBuckets = []int{1, 2, 3, 4, 5, 6, 8, 12, 16}

// DefaultLatencyBuckets spans the µs-to-seconds range control and delivery
// latencies live in.
var DefaultLatencyBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second,
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// NewGauge returns a zeroed gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket duration histogram safe for concurrent
// observation: bucket i counts samples below Bounds[i], with an implicit
// overflow bucket above the last bound.
type Histogram struct {
	bounds    []time.Duration
	counts    []atomic.Uint64 // len(bounds)+1; last is overflow
	count     atomic.Uint64
	sum       atomic.Int64 // nanoseconds
	countUnit bool         // bounds are plain integers, not durations
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (sorted and deduplicated; DefaultLatencyBuckets when empty).
func NewHistogram(bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	bs := append([]time.Duration(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
}

// NewCountHistogram builds a histogram over unitless integer bucket upper
// bounds (hop counts, queue depths; DefaultHopBuckets when empty).
// Samples are recorded with ObserveCount, and the Prometheus exposition
// renders le bounds and _sum as plain numbers rather than seconds.
func NewCountHistogram(bounds ...int) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultHopBuckets
	}
	ds := make([]time.Duration, len(bounds))
	for i, b := range bounds {
		ds[i] = time.Duration(b)
	}
	h := NewHistogram(ds...)
	h.countUnit = true
	return h
}

// ObserveCount records one unitless integer sample (count histograms).
func (h *Histogram) ObserveCount(n int) { h.Observe(time.Duration(n)) }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d >= h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Snapshot copies the histogram state (nil on a nil histogram).
func (h *Histogram) Snapshot() *HistSnapshot {
	if h == nil {
		return nil
	}
	return h.snapshot()
}

// snapshot copies the histogram state (counts may lag count/sum by
// in-flight observations; each bucket is individually consistent).
func (h *Histogram) snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Bounds:    append([]time.Duration(nil), h.bounds...),
		Counts:    make([]uint64, len(h.counts)),
		Count:     h.count.Load(),
		Sum:       time.Duration(h.sum.Load()),
		CountUnit: h.countUnit,
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is the collected state of one histogram: Counts[i] holds
// samples below Bounds[i], the final entry the overflow.
type HistSnapshot struct {
	Bounds []time.Duration
	Counts []uint64
	Count  uint64
	Sum    time.Duration
	// CountUnit marks unitless integer bounds (NewCountHistogram): the
	// exposition renders them as plain numbers instead of seconds.
	CountUnit bool
}

// merge adds another snapshot bucket-wise (equal bounds assumed; extra
// buckets on either side are ignored).
func (s *HistSnapshot) merge(o *HistSnapshot) {
	for i := range s.Counts {
		if i < len(o.Counts) {
			s.Counts[i] += o.Counts[i]
		}
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the winning bucket — the same estimate
// Prometheus's histogram_quantile computes. Samples in the overflow bucket
// report the last finite bound. Returns 0 on an empty histogram.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s == nil || s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := uint64(0)
	for i, b := range s.Bounds {
		n := s.Counts[i]
		if float64(cum)+float64(n) >= target {
			lo := time.Duration(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			if n == 0 {
				return b
			}
			frac := (target - float64(cum)) / float64(n)
			return lo + time.Duration(frac*float64(b-lo))
		}
		cum += n
	}
	return s.Bounds[len(s.Bounds)-1]
}

// CounterVec is a set of counters keyed by one label value.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// NewCounterVec returns an empty counter vector.
func NewCounterVec() *CounterVec { return &CounterVec{m: make(map[string]*Counter)} }

// With returns the counter for one label value, creating it on first use
// (nil on a nil vec).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = NewCounter()
		v.m[value] = c
	}
	return c
}

// Values returns a copy of the label-value → count map.
func (v *CounterVec) Values() map[string]uint64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Value()
	}
	return out
}

// GaugeVec is a set of gauges keyed by one label value.
type GaugeVec struct {
	mu sync.RWMutex
	m  map[string]*Gauge
}

// NewGaugeVec returns an empty gauge vector.
func NewGaugeVec() *GaugeVec { return &GaugeVec{m: make(map[string]*Gauge)} }

// With returns the gauge for one label value, creating it on first use
// (nil on a nil vec).
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g := v.m[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.m[value]; g == nil {
		g = NewGauge()
		v.m[value] = g
	}
	return g
}

// Delete removes one label value (e.g. a dismantled tree's gauge).
func (v *GaugeVec) Delete(value string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	delete(v.m, value)
	v.mu.Unlock()
}

// Values returns a copy of the label-value → value map.
func (v *GaugeVec) Values() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.m))
	for k, g := range v.m {
		out[k] = g.Value()
	}
	return out
}

// HistogramVec is a set of histograms keyed by one label value. All
// members share the bounds the vec was created with.
type HistogramVec struct {
	bounds []time.Duration
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// NewHistogramVec returns an empty histogram vector over the given bounds
// (DefaultLatencyBuckets when empty).
func NewHistogramVec(bounds ...time.Duration) *HistogramVec {
	return &HistogramVec{bounds: bounds, m: make(map[string]*Histogram)}
}

// With returns the histogram for one label value, creating it on first
// use (nil on a nil vec).
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.m[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[value]; h == nil {
		h = NewHistogram(v.bounds...)
		v.m[value] = h
	}
	return h
}

// metric kinds in the exposition.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// entry is one fixed attachment inside a family.
type entry struct {
	labelValue string
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// family aggregates every instrument attached under one metric name.
type family struct {
	name, help, kind string
	label            string // label name; "" for unlabelled metrics
	entries          []entry
	cvecs            []*CounterVec
	gvecs            []*GaugeVec
	hvecs            []*HistogramVec
}

// Registry is a concurrent metrics registry: components attach their
// instruments under canonical names, and Snapshot/WritePrometheus collect
// them on demand. Attaching is expected at setup time but is safe at any
// point; collection never blocks instrument updates (instruments are
// atomic).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

func (r *Registry) familyLocked(name, help, kind, label string) *family {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, label: label}
		r.fams[name] = f
	}
	return f
}

// AttachCounter exposes an existing counter under name. labelName/value
// may be empty for an unlabelled metric; multiple attachments under the
// same name (and label value) are summed at collection time.
func (r *Registry) AttachCounter(name, help, labelName, labelValue string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindCounter, labelName)
	f.entries = append(f.entries, entry{labelValue: labelValue, c: c})
}

// AttachGauge exposes an existing gauge under name.
func (r *Registry) AttachGauge(name, help, labelName, labelValue string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindGauge, labelName)
	f.entries = append(f.entries, entry{labelValue: labelValue, g: g})
}

// AttachHistogram exposes an existing histogram under name.
func (r *Registry) AttachHistogram(name, help, labelName, labelValue string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindHistogram, labelName)
	f.entries = append(f.entries, entry{labelValue: labelValue, h: h})
}

// AttachCounterVec exposes every member of the vec under name with the
// given label name.
func (r *Registry) AttachCounterVec(name, help, labelName string, v *CounterVec) {
	if r == nil || v == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindCounter, labelName)
	f.cvecs = append(f.cvecs, v)
}

// AttachGaugeVec exposes every member of the vec under name with the
// given label name.
func (r *Registry) AttachGaugeVec(name, help, labelName string, v *GaugeVec) {
	if r == nil || v == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindGauge, labelName)
	f.gvecs = append(f.gvecs, v)
}

// AttachHistogramVec exposes every member of the vec under name with the
// given label name.
func (r *Registry) AttachHistogramVec(name, help, labelName string, v *HistogramVec) {
	if r == nil || v == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindHistogram, labelName)
	f.hvecs = append(f.hvecs, v)
}

// Counter creates a counter and attaches it under name. On a nil registry
// the counter is created but exported nowhere.
func (r *Registry) Counter(name, help string) *Counter {
	c := NewCounter()
	r.AttachCounter(name, help, "", "", c)
	return c
}

// Gauge creates a gauge and attaches it under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := NewGauge()
	r.AttachGauge(name, help, "", "", g)
	return g
}

// Histogram creates a histogram over bounds (DefaultLatencyBuckets when
// empty) and attaches it under name.
func (r *Registry) Histogram(name, help string, bounds ...time.Duration) *Histogram {
	h := NewHistogram(bounds...)
	r.AttachHistogram(name, help, "", "", h)
	return h
}

// Sample is one collected time series of a family.
type Sample struct {
	// LabelValue is the value of the family's label ("" when unlabelled).
	LabelValue string
	// Value holds counter/gauge samples.
	Value float64
	// Hist holds histogram samples (nil otherwise).
	Hist *HistSnapshot
}

// Family is the collected state of one metric name.
type Family struct {
	Name, Help, Kind string
	// Label is the label name shared by the family's samples ("" when
	// unlabelled).
	Label   string
	Samples []Sample
}

// Snapshot is a point-in-time collection of every attached instrument.
type Snapshot struct {
	Families []Family
}

// Snapshot collects all families, sorted by name, samples sorted by label
// value (numeric label values sort numerically so switch/tree series read
// in order).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	snap := Snapshot{Families: make([]Family, 0, len(fams))}
	for _, f := range fams {
		snap.Families = append(snap.Families, f.collect())
	}
	return snap
}

// collect merges every attachment of the family into per-label samples.
func (f *family) collect() Family {
	out := Family{Name: f.name, Help: f.help, Kind: f.kind, Label: f.label}
	vals := make(map[string]float64)
	hists := make(map[string]*HistSnapshot)
	add := func(label string, v float64) { vals[label] += v }
	addHist := func(label string, h *Histogram) {
		s := h.snapshot()
		if prev, ok := hists[label]; ok {
			prev.merge(s)
		} else {
			hists[label] = s
		}
	}
	for _, e := range f.entries {
		switch {
		case e.c != nil:
			add(e.labelValue, float64(e.c.Value()))
		case e.g != nil:
			add(e.labelValue, float64(e.g.Value()))
		case e.h != nil:
			addHist(e.labelValue, e.h)
		}
	}
	for _, v := range f.cvecs {
		v.mu.RLock()
		for lv, c := range v.m {
			add(lv, float64(c.Value()))
		}
		v.mu.RUnlock()
	}
	for _, v := range f.gvecs {
		v.mu.RLock()
		for lv, g := range v.m {
			add(lv, float64(g.Value()))
		}
		v.mu.RUnlock()
	}
	for _, v := range f.hvecs {
		v.mu.RLock()
		for lv, h := range v.m {
			addHist(lv, h)
		}
		v.mu.RUnlock()
	}

	labels := make([]string, 0, len(vals)+len(hists))
	for l := range vals {
		labels = append(labels, l)
	}
	for l := range hists {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labelLess(labels[i], labels[j]) })
	for _, l := range labels {
		if h, ok := hists[l]; ok {
			out.Samples = append(out.Samples, Sample{LabelValue: l, Hist: h})
		} else {
			out.Samples = append(out.Samples, Sample{LabelValue: l, Value: vals[l]})
		}
	}
	return out
}

// labelLess orders label values numerically when both parse as integers
// (switch and tree ids), lexicographically otherwise.
func labelLess(a, b string) bool {
	ai, aerr := strconv.Atoi(a)
	bi, berr := strconv.Atoi(b)
	if aerr == nil && berr == nil {
		return ai < bi
	}
	return a < b
}

// Counter returns the summed value of a counter family's label-value
// series ("" for unlabelled) and whether the series exists.
func (s Snapshot) Counter(name, labelValue string) (float64, bool) {
	return s.value(name, labelValue)
}

// Gauge returns the value of a gauge family's label-value series.
func (s Snapshot) Gauge(name, labelValue string) (float64, bool) {
	return s.value(name, labelValue)
}

func (s Snapshot) value(name, labelValue string) (float64, bool) {
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, smp := range f.Samples {
			if smp.LabelValue == labelValue {
				return smp.Value, true
			}
		}
	}
	return 0, false
}

// Total sums every sample of one family (all label values).
func (s Snapshot) Total(name string) float64 {
	var t float64
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, smp := range f.Samples {
			t += smp.Value
		}
	}
	return t
}

// ContentType is the Prometheus text exposition content type served by
// the /metrics endpoint.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Histograms emit cumulative _bucket series plus
// _sum and _count; durations are exported in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, f := range snap.Families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Kind); err != nil {
			return err
		}
		for _, smp := range f.Samples {
			if smp.Hist != nil {
				if err := writeHist(w, f, smp); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelPair(f.Label, smp.LabelValue), formatFloat(smp.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, f Family, smp Sample) error {
	h := smp.Hist
	// Duration histograms export in seconds; count-unit histograms (hop
	// counts) export their bounds and sum as plain numbers.
	scale := func(d time.Duration) float64 {
		if h.CountUnit {
			return float64(d)
		}
		return d.Seconds()
	}
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		le := formatFloat(scale(b))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, bucketLabels(f.Label, smp.LabelValue, le), cum); err != nil {
			return err
		}
	}
	if len(h.Counts) > 0 {
		cum += h.Counts[len(h.Counts)-1]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, bucketLabels(f.Label, smp.LabelValue, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labelPair(f.Label, smp.LabelValue), formatFloat(scale(h.Sum))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelPair(f.Label, smp.LabelValue), h.Count)
	return err
}

// labelPair renders {name="value"} or "" when the family is unlabelled.
func labelPair(name, value string) string {
	if name == "" || value == "" && name == "" {
		return ""
	}
	if name == "" {
		return ""
	}
	return "{" + name + `="` + escapeLabel(value) + `"}`
}

// bucketLabels renders the label set of one histogram bucket including le.
func bucketLabels(name, value, le string) string {
	if name == "" {
		return `{le="` + le + `"}`
	}
	return "{" + name + `="` + escapeLabel(value) + `",le="` + le + `"}`
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a sample value with full precision.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
