// Package ipmc implements the embedding of dz-expressions into IPv6
// multicast addresses that PLEROMA uses so that content filters become
// CIDR prefix matches executable in switch TCAMs (Section 3.3.2).
//
// The reserved multicast block is ff0e::/16: the first 16 bits of every
// embedded address are 0xff0e, the following |dz| bits are the
// dz-expression, and the remainder is zero. A subspace maps to the prefix
// ff0e:<dz bits>::/(16+|dz|); an event carrying dz=101101 therefore matches
// a flow for dz=101 because ff0e:a000::/19 contains ff0e:b400::.
package ipmc

import (
	"fmt"
	"net/netip"

	"pleroma/internal/dz"
)

// MaxDzLen is the number of bits available for a dz-expression after the
// 16-bit ff0e prefix of an IPv6 address.
const MaxDzLen = 112

// basePrefixLen is the length of the reserved multicast prefix (ff0e).
const basePrefixLen = 16

// base returns the 16-byte ff0e::/16 address template.
func base() [16]byte {
	var b [16]byte
	b[0] = 0xff
	b[1] = 0x0e
	return b
}

// SignalAddr is the reserved address IP_vir to which hosts send
// advertisement and subscription requests; no switch installs a flow for
// it, so such packets are punted to the controller (Section 2). It lies
// outside the ff0e::/16 block so no dz flow can ever match it.
var SignalAddr = netip.AddrFrom16([16]byte{0xff, 0x0f, 0, 0, 0, 0, 0, 0,
	0, 0, 0, 0, 0, 0, 0, 0x01})

// FromExpr converts a dz-expression into its IPv6 multicast CIDR prefix.
func FromExpr(e dz.Expr) (netip.Prefix, error) {
	if err := e.Validate(); err != nil {
		return netip.Prefix{}, err
	}
	if e.Len() > MaxDzLen {
		return netip.Prefix{}, fmt.Errorf("ipmc: dz length %d exceeds %d bits", e.Len(), MaxDzLen)
	}
	b := base()
	for i := 0; i < e.Len(); i++ {
		if e[i] == '1' {
			bit := basePrefixLen + i
			b[bit/8] |= 1 << uint(7-bit%8)
		}
	}
	return netip.PrefixFrom(netip.AddrFrom16(b), basePrefixLen+e.Len()), nil
}

// EventAddr converts the dz-expression carried by an event into a concrete
// destination address (the prefix bits with a zero-padded suffix).
func EventAddr(e dz.Expr) (netip.Addr, error) {
	p, err := FromExpr(e)
	if err != nil {
		return netip.Addr{}, err
	}
	return p.Addr(), nil
}

// ToExpr recovers the dz-expression from a multicast prefix produced by
// FromExpr.
func ToExpr(p netip.Prefix) (dz.Expr, error) {
	if !p.Addr().Is6() {
		return "", fmt.Errorf("ipmc: prefix %v is not IPv6", p)
	}
	if p.Bits() < basePrefixLen {
		return "", fmt.Errorf("ipmc: prefix length %d shorter than the ff0e base", p.Bits())
	}
	b := p.Addr().As16()
	if b[0] != 0xff || b[1] != 0x0e {
		return "", fmt.Errorf("ipmc: address %v is outside ff0e::/16", p.Addr())
	}
	n := p.Bits() - basePrefixLen
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		bit := basePrefixLen + i
		if b[bit/8]&(1<<uint(7-bit%8)) != 0 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return dz.Expr(buf), nil
}

// ExprFromAddr extracts the first length dz bits from an event address.
func ExprFromAddr(addr netip.Addr, length int) (dz.Expr, error) {
	if !addr.Is6() {
		return "", fmt.Errorf("ipmc: address %v is not IPv6", addr)
	}
	if length < 0 || length > MaxDzLen {
		return "", fmt.Errorf("ipmc: dz length %d out of range [0,%d]", length, MaxDzLen)
	}
	b := addr.As16()
	if b[0] != 0xff || b[1] != 0x0e {
		return "", fmt.Errorf("ipmc: address %v is outside ff0e::/16", addr)
	}
	buf := make([]byte, length)
	for i := 0; i < length; i++ {
		bit := basePrefixLen + i
		if b[bit/8]&(1<<uint(7-bit%8)) != 0 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return dz.Expr(buf), nil
}

// KeyFromAddr packs the 112 dz bits of an event address directly into a
// prefix-index key, skipping the string form entirely — the packet-path
// converter for the flow-table fast path. ok is false for addresses outside
// the ff0e::/16 block (no dz flow can ever match those). It never
// allocates.
func KeyFromAddr(addr netip.Addr) (dz.Key, bool) {
	if !addr.Is6() {
		return dz.Key{}, false
	}
	b := addr.As16()
	if b[0] != 0xff || b[1] != 0x0e {
		return dz.Key{}, false
	}
	var bits [14]byte
	copy(bits[:], b[2:])
	return dz.KeyFromBits(bits, MaxDzLen), true
}

// Matches reports whether an event destination address matches the flow
// prefix of a (covering) dz-expression — the TCAM operation.
func Matches(flowPrefix netip.Prefix, eventAddr netip.Addr) bool {
	return flowPrefix.Contains(eventAddr)
}

// IsSignal reports whether the address is the reserved controller signal
// address IP_vir.
func IsSignal(addr netip.Addr) bool { return addr == SignalAddr }
