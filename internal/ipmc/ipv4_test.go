package ipmc

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"pleroma/internal/dz"
)

func TestFromExpr4Basics(t *testing.T) {
	tests := []struct {
		expr dz.Expr
		want string
	}{
		{dz.Whole, "239.0.0.0/8"},
		{"1", "239.128.0.0/9"},
		{"101", "239.160.0.0/11"},
		{"101101", "239.180.0.0/14"},
	}
	for _, tt := range tests {
		got, err := FromExpr4(tt.expr)
		if err != nil {
			t.Fatalf("FromExpr4(%q): %v", tt.expr, err)
		}
		if got.String() != tt.want {
			t.Errorf("FromExpr4(%q)=%v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestFromExpr4Validation(t *testing.T) {
	if _, err := FromExpr4("1x"); err == nil {
		t.Error("invalid expr must fail")
	}
	long := make([]byte, MaxDzLen4+1)
	for i := range long {
		long[i] = '1'
	}
	if _, err := FromExpr4(dz.Expr(long)); err == nil {
		t.Error("over-long expr must fail")
	}
	if _, err := FromExpr4(dz.Expr(long[:MaxDzLen4])); err != nil {
		t.Errorf("max-length expr must work: %v", err)
	}
}

func TestToExpr4Errors(t *testing.T) {
	if _, err := ToExpr4(netip.MustParsePrefix("ff0e::/16")); err == nil {
		t.Error("IPv6 must fail")
	}
	if _, err := ToExpr4(netip.MustParsePrefix("239.0.0.0/4")); err == nil {
		t.Error("short prefix must fail")
	}
	if _, err := ToExpr4(netip.MustParsePrefix("10.0.0.0/16")); err == nil {
		t.Error("non-239 must fail")
	}
}

func TestExprFromAddr4(t *testing.T) {
	addr, err := EventAddr4("10110")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExprFromAddr4(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != "101" {
		t.Errorf("ExprFromAddr4=%q", got)
	}
	if _, err := ExprFromAddr4(netip.MustParseAddr("ff0e::1"), 3); err == nil {
		t.Error("IPv6 must fail")
	}
	if _, err := ExprFromAddr4(addr, -1); err == nil {
		t.Error("negative length must fail")
	}
	if _, err := ExprFromAddr4(netip.MustParseAddr("10.1.2.3"), 3); err == nil {
		t.Error("non-239 must fail")
	}
}

// TestPropertyRoundTrip4 mirrors the IPv6 round-trip property.
func TestPropertyRoundTrip4(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, MaxDzLen4)
		p, err := FromExpr4(e)
		if err != nil {
			return false
		}
		back, err := ToExpr4(p)
		if err != nil {
			return false
		}
		return back == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCoverEquivalence4: dz covering ⟺ IPv4 prefix containment,
// under the events-carry-longer-dz invariant.
func TestPropertyCoverEquivalence4(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 16)
		var b dz.Expr
		if r.Intn(2) == 0 {
			b = a + randomExpr(r, 8)
		} else {
			b = randomExpr(r, MaxDzLen4)
			for b.Len() < a.Len() {
				b = b.Child(byte(r.Intn(2)))
			}
		}
		pa, err := FromExpr4(a)
		if err != nil {
			return false
		}
		addrB, err := EventAddr4(b)
		if err != nil {
			return false
		}
		return pa.Contains(addrB) == a.Covers(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
