package ipmc

import (
	"fmt"
	"net/netip"

	"pleroma/internal/dz"
)

// The paper notes that dz-expressions can be embedded in the IPv4 or the
// IPv6 multicast range. The IPv4 variant reserves the administratively
// scoped block 239.0.0.0/8 and places the dz bits directly after the
// 8-bit prefix, leaving at most 24 bits per expression — a much tighter
// L_dz budget than IPv6, which is why the evaluation (and this library's
// defaults) use IPv6.

// MaxDzLen4 is the number of dz bits available after the 239/8 prefix.
const MaxDzLen4 = 24

// base4PrefixLen is the length of the reserved IPv4 multicast prefix.
const base4PrefixLen = 8

// base4 is the first octet of the reserved block (239.0.0.0/8).
const base4 = 0xef

// FromExpr4 converts a dz-expression into its IPv4 multicast CIDR prefix.
func FromExpr4(e dz.Expr) (netip.Prefix, error) {
	if err := e.Validate(); err != nil {
		return netip.Prefix{}, err
	}
	if e.Len() > MaxDzLen4 {
		return netip.Prefix{}, fmt.Errorf("ipmc: dz length %d exceeds %d bits (IPv4)", e.Len(), MaxDzLen4)
	}
	var b [4]byte
	b[0] = base4
	for i := 0; i < e.Len(); i++ {
		if e[i] == '1' {
			bit := base4PrefixLen + i
			b[bit/8] |= 1 << uint(7-bit%8)
		}
	}
	return netip.PrefixFrom(netip.AddrFrom4(b), base4PrefixLen+e.Len()), nil
}

// EventAddr4 converts the dz-expression carried by an event into a
// concrete IPv4 destination address.
func EventAddr4(e dz.Expr) (netip.Addr, error) {
	p, err := FromExpr4(e)
	if err != nil {
		return netip.Addr{}, err
	}
	return p.Addr(), nil
}

// ToExpr4 recovers the dz-expression from a prefix produced by FromExpr4.
func ToExpr4(p netip.Prefix) (dz.Expr, error) {
	if !p.Addr().Is4() {
		return "", fmt.Errorf("ipmc: prefix %v is not IPv4", p)
	}
	if p.Bits() < base4PrefixLen {
		return "", fmt.Errorf("ipmc: prefix length %d shorter than the 239/8 base", p.Bits())
	}
	b := p.Addr().As4()
	if b[0] != base4 {
		return "", fmt.Errorf("ipmc: address %v is outside 239.0.0.0/8", p.Addr())
	}
	n := p.Bits() - base4PrefixLen
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		bit := base4PrefixLen + i
		if b[bit/8]&(1<<uint(7-bit%8)) != 0 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return dz.Expr(buf), nil
}

// ExprFromAddr4 extracts the first length dz bits from an IPv4 event
// address.
func ExprFromAddr4(addr netip.Addr, length int) (dz.Expr, error) {
	if !addr.Is4() {
		return "", fmt.Errorf("ipmc: address %v is not IPv4", addr)
	}
	if length < 0 || length > MaxDzLen4 {
		return "", fmt.Errorf("ipmc: dz length %d out of range [0,%d] (IPv4)", length, MaxDzLen4)
	}
	b := addr.As4()
	if b[0] != base4 {
		return "", fmt.Errorf("ipmc: address %v is outside 239.0.0.0/8", addr)
	}
	buf := make([]byte, length)
	for i := 0; i < length; i++ {
		bit := base4PrefixLen + i
		if b[bit/8]&(1<<uint(7-bit%8)) != 0 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return dz.Expr(buf), nil
}
