package ipmc

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"pleroma/internal/dz"
)

// TestPaperExamples checks the exact address embeddings given in
// Section 3.3.2 of the paper.
func TestPaperExamples(t *testing.T) {
	tests := []struct {
		expr dz.Expr
		want string
	}{
		{"101101", "ff0e:b400::/22"},
		{"101", "ff0e:a000::/19"},
		{"100", "ff0e:8000::/19"}, // Figure 3: 100* ⇒ ff0e:8000::/19
		{"1", "ff0e:8000::/17"},   // Figure 3: destIP = ff0e:8000::/17
		{dz.Whole, "ff0e::/16"},
	}
	for _, tt := range tests {
		got, err := FromExpr(tt.expr)
		if err != nil {
			t.Fatalf("FromExpr(%q): %v", tt.expr, err)
		}
		if got.String() != tt.want {
			t.Errorf("FromExpr(%q)=%v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestPaperMatchExample(t *testing.T) {
	// "an event dz = 101101 can be matched against a flow with dz = 101":
	// ff0e:a000::/19 ≥ ff0e:b400::/22.
	flow, err := FromExpr("101")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EventAddr("101101")
	if err != nil {
		t.Fatal(err)
	}
	if !Matches(flow, ev) {
		t.Error("flow 101 must match event 101101")
	}
	other, err := EventAddr("100101")
	if err != nil {
		t.Fatal(err)
	}
	if Matches(flow, other) {
		t.Error("flow 101 must not match event 100101")
	}
}

func TestFromExprValidation(t *testing.T) {
	if _, err := FromExpr("10x"); err == nil {
		t.Error("invalid expr must fail")
	}
	long := make([]byte, MaxDzLen+1)
	for i := range long {
		long[i] = '0'
	}
	if _, err := FromExpr(dz.Expr(long)); err == nil {
		t.Error("over-long expr must fail")
	}
	max := make([]byte, MaxDzLen)
	for i := range max {
		max[i] = '1'
	}
	if _, err := FromExpr(dz.Expr(max)); err != nil {
		t.Errorf("max-length expr must succeed: %v", err)
	}
}

func TestToExprErrors(t *testing.T) {
	if _, err := ToExpr(netip.MustParsePrefix("10.0.0.0/8")); err == nil {
		t.Error("IPv4 must fail")
	}
	if _, err := ToExpr(netip.MustParsePrefix("ff0e::/8")); err == nil {
		t.Error("short prefix must fail")
	}
	if _, err := ToExpr(netip.MustParsePrefix("fe80::/64")); err == nil {
		t.Error("non-ff0e must fail")
	}
}

func TestExprFromAddr(t *testing.T) {
	addr, err := EventAddr("10110")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExprFromAddr(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != "101" {
		t.Errorf("ExprFromAddr=%q, want 101", got)
	}
	if _, err := ExprFromAddr(netip.MustParseAddr("1.2.3.4"), 3); err == nil {
		t.Error("IPv4 must fail")
	}
	if _, err := ExprFromAddr(addr, -1); err == nil {
		t.Error("negative length must fail")
	}
	if _, err := ExprFromAddr(netip.MustParseAddr("fe80::1"), 3); err == nil {
		t.Error("non-ff0e must fail")
	}
}

func TestSignalAddr(t *testing.T) {
	if !IsSignal(SignalAddr) {
		t.Error("SignalAddr must be a signal")
	}
	ev, _ := EventAddr("0")
	if IsSignal(ev) {
		t.Error("event addr must not be a signal")
	}
}

func randomExpr(r *rand.Rand, maxLen int) dz.Expr {
	n := r.Intn(maxLen + 1)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte('0' + r.Intn(2))
	}
	return dz.Expr(buf)
}

// TestPropertyRoundTrip: ToExpr(FromExpr(e)) == e for all valid e.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, MaxDzLen)
		p, err := FromExpr(e)
		if err != nil {
			return false
		}
		back, err := ToExpr(p)
		if err != nil {
			return false
		}
		return back == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCoverEquivalence: dz covering ⟺ prefix containment of the
// embedded addresses, provided the event expression is at least as long as
// the flow expression (PLEROMA's invariant: events carry maximum-length dz,
// flows are truncated). This is the core claim that makes TCAM filtering
// equivalent to content filtering.
func TestPropertyCoverEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 24)
		// The event dz must be at least as long as the flow dz; bias half
		// the cases towards true coverage so both outcomes are exercised.
		var b dz.Expr
		if r.Intn(2) == 0 {
			b = a + randomExpr(r, 10)
		} else {
			b = randomExpr(r, 34)
			for b.Len() < a.Len() {
				b = b.Child(byte(r.Intn(2)))
			}
		}
		pa, err := FromExpr(a)
		if err != nil {
			return false
		}
		addrB, err := EventAddr(b)
		if err != nil {
			return false
		}
		// A flow for subspace a matches an event with dz b iff a covers b.
		return Matches(pa, addrB) == a.Covers(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFromExpr(b *testing.B) {
	e := dz.Expr("101101001110101010110010")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromExpr(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatches(b *testing.B) {
	p, _ := FromExpr("10110100111")
	a, _ := EventAddr("101101001110101010110010")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matches(p, a)
	}
}
