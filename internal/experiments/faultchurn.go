package experiments

import (
	"fmt"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/obs"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// RunExtFaultChurn sweeps the southbound fault rate under a churning
// workload and reports how the retry/quarantine/resync machinery absorbs
// it: how many faults were injected, how many retries and quarantines the
// controllers took, how many repair FlowMods the anti-entropy passes
// shipped, and whether the deployment converged back to a verified-clean
// flow state. The zero-rate row is the control: identical workload, no
// faults, zero repair work.
func RunExtFaultChurn(cfg Config) ([]*metrics.Table, error) {
	var rates []float64
	if cfg.Quick {
		rates = []float64{0, 0.02, 0.05}
	} else {
		rates = []float64{0, 0.01, 0.02, 0.05, 0.1}
	}
	opsPerWorker := pick(cfg, 30, 200)

	table := &metrics.Table{
		Title: "Extension: southbound fault tolerance under churn",
		Columns: []string{"fault-rate", "mutations", "injected", "retries",
			"quarantines", "resync-passes", "repaired", "converged"},
	}
	for _, rate := range rates {
		c, err := faultChurnRun(cfg.Seed, rate, opsPerWorker)
		if err != nil {
			return nil, fmt.Errorf("experiments: fault churn at rate %.2f: %w", rate, err)
		}
		table.AddRow(
			fmt.Sprintf("%.2f", rate),
			c.Get("mutations"),
			c.Get("injected"),
			c.Get("retries"),
			c.Get("quarantines"),
			c.Get("resync-passes"),
			c.Get("repaired"),
			c.Get("converged") == 1,
		)
	}
	return []*metrics.Table{table}, nil
}

// faultChurnRun drives one churn run against a single-partition controller
// behind a fault-injecting programmer and resyncs until the flow state
// verifies clean.
func faultChurnRun(seed int64, rate float64, opsPerWorker int) (*metrics.Counters, error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return nil, err
	}
	dp := netem.New(g, sim.NewEngine())
	faulty := netem.WithFaults(dp, netem.FaultConfig{Seed: seed, Rate: rate})
	// The run's tallies come off an obs registry instead of ad-hoc stats
	// reads, so the soak reports exactly what an operator would scrape.
	reg := obs.NewRegistry()
	faulty.Instrument(reg)
	ctl, err := core.NewController(g, faulty,
		core.WithHostAddr(netem.HostAddr),
		core.WithObservability(reg, nil),
		core.WithRefreshWorkers(1),
		core.WithRetryPolicy(core.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			Sleep:       func(time.Duration) {}, // simulated deployment: no wall-clock waits
		}))
	if err != nil {
		return nil, err
	}
	sch, err := space.UniformSchema(fig7bDims)
	if err != nil {
		return nil, err
	}
	hosts := g.Hosts()
	hostFor := func(id string) topo.NodeID {
		h := 0
		for _, ch := range id {
			h = h*31 + int(ch)
		}
		if h < 0 {
			h = -h
		}
		return hosts[h%len(hosts)]
	}
	churn, err := workload.RunChurn(sch, workload.ChurnConfig{
		Workers:      2,
		OpsPerWorker: opsPerWorker,
		Seed:         seed,
	}, workload.ChurnOps{
		Advertise: func(id string, rect dz.Rect) error {
			set, err := sch.DecomposeRectLimited(rect, fig7bMaxDzLen, fig7bMaxSubspaces)
			if err != nil {
				return err
			}
			_, err = ctl.Advertise(id, hostFor(id), set)
			return err
		},
		Unadvertise: func(id string) error {
			_, err := ctl.Unadvertise(id)
			return err
		},
		Subscribe: func(id string, rect dz.Rect) error {
			set, err := sch.DecomposeRectLimited(rect, fig7bMaxDzLen, fig7bMaxSubspaces)
			if err != nil {
				return err
			}
			_, err = ctl.Subscribe(id, hostFor(id), set)
			return err
		},
		Unsubscribe: func(id string) error {
			_, err := ctl.Unsubscribe(id)
			return err
		},
	})
	if err != nil {
		return nil, err
	}

	// Anti-entropy until the deployment converges: with ongoing random
	// injection each pass can fail again, so the bound scales with rate.
	converged := false
	passes := 0
	for ; passes < 100; passes++ {
		if _, err := ctl.ResyncAll(); err != nil {
			return nil, err
		}
		if len(ctl.DegradedSwitches()) == 0 {
			converged = true
			break
		}
	}
	if converged {
		if err := ctl.VerifyTables(); err != nil {
			return nil, fmt.Errorf("converged but inconsistent: %w", err)
		}
	}

	snap := reg.Snapshot()
	c := metrics.NewCounters()
	c.Add("mutations", churn.Mutations())
	c.Add("injected", uint64(snap.Total(obs.MInjectedFaults)))
	c.Add("retries", uint64(snap.Total(obs.MSouthboundRetries)))
	c.Add("quarantines", uint64(snap.Total(obs.MQuarantines)))
	c.Add("resync-passes", uint64(snap.Total(obs.MResyncs)))
	c.Add("repaired", uint64(snap.Total(obs.MResyncRepaired)))
	if converged {
		c.Add("converged", 1)
	} else {
		c.Add("converged", 0)
	}
	return c, nil
}
