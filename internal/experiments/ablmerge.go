package experiments

import (
	"fmt"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// RunAblationMergeThreshold sweeps the tree-merge threshold of Section
// 3.2: a low threshold folds everything into few coarse trees (cheap tree
// maintenance, all paths share one root's tree), a high threshold keeps
// one tree per advertisement (shorter publisher-rooted paths, more trees
// to maintain). The sweep reports the resulting tree count, the total
// FlowMod work, the installed flow footprint, and the mean delivery
// delay.
func RunAblationMergeThreshold(cfg Config) ([]*metrics.Table, error) {
	nAdvs := pick(cfg, 12, 24)
	nSubs := pick(cfg, 60, 240)
	nEvents := pick(cfg, 300, 2000)

	table := &metrics.Table{
		Title: "Ablation: tree-merge threshold (Section 3.2)",
		Columns: []string{"max-trees", "trees", "merges", "flow-ops",
			"installed-flows", "mean-delay"},
	}
	for _, maxTrees := range []int{1, 2, 4, 8, 0} {
		label := fmt.Sprint(maxTrees)
		if maxTrees == 0 {
			label = "unlimited"
		}
		res, err := ablMergeRun(cfg.Seed, maxTrees, nAdvs, nSubs, nEvents)
		if err != nil {
			return nil, err
		}
		table.AddRow(label, res.trees, res.merges, res.flowOps, res.installed, res.meanDelay)
	}
	return []*metrics.Table{table}, nil
}

type ablMergeResult struct {
	trees     int
	merges    uint64
	flowOps   uint64
	installed int
	meanDelay time.Duration
}

func ablMergeRun(seed int64, maxTrees, nAdvs, nSubs, nEvents int) (ablMergeResult, error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return ablMergeResult{}, err
	}
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	opts := []core.Option{core.WithHostAddr(netem.HostAddr)}
	if maxTrees > 0 {
		opts = append(opts, core.WithMaxTrees(maxTrees))
	}
	ctl, err := core.NewController(g, dp, opts...)
	if err != nil {
		return ablMergeResult{}, err
	}
	sch, err := space.UniformSchema(fig7bDims)
	if err != nil {
		return ablMergeResult{}, err
	}
	gen, err := workload.New(sch, workload.Zipfian, seed)
	if err != nil {
		return ablMergeResult{}, err
	}
	hosts := g.Hosts()

	type pubInfo struct {
		host topo.NodeID
		rect [][2]uint32 // unused; rect kept via decomposed set only
	}
	_ = pubInfo{}
	pubHosts := make([]topo.NodeID, 0, nAdvs)
	pubRects := make([][]uint32, 0, nAdvs) // sample point inside each adv
	for i := 0; i < nAdvs; i++ {
		rect := gen.SubscriptionRect()
		set, err := sch.DecomposeRectLimited(rect, fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return ablMergeResult{}, err
		}
		host := hosts[i%len(hosts)]
		if _, err := ctl.Advertise(fmt.Sprintf("p%d", i), host, set); err != nil {
			return ablMergeResult{}, err
		}
		pubHosts = append(pubHosts, host)
		sample := make([]uint32, sch.Dims())
		for d := range sample {
			sample[d] = rect[d].Lo + (rect[d].Hi-rect[d].Lo)/2
		}
		pubRects = append(pubRects, sample)
	}
	for i := 0; i < nSubs; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return ablMergeResult{}, err
		}
		if _, err := ctl.Subscribe(fmt.Sprintf("s%d", i), hosts[(i*5+1)%len(hosts)], set); err != nil {
			return ablMergeResult{}, err
		}
	}

	lat := &metrics.Latency{}
	for _, h := range hosts {
		h := h
		if err := dp.ConfigureHost(h, netem.HostConfig{}, func(d netem.Delivery) {
			lat.Add(d.At - d.Packet.SentAt)
		}); err != nil {
			return ablMergeResult{}, err
		}
	}
	maxLen := sch.Geometry().MaxLen()
	for i := 0; i < nEvents; i++ {
		pi := i % nAdvs
		// Publish near the advertisement's centre so the event lies inside
		// the advertised region.
		ev := space.Event{Values: pubRects[pi]}
		expr, err := sch.Encode(ev, maxLen)
		if err != nil {
			return ablMergeResult{}, err
		}
		at := time.Duration(i) * 100 * time.Microsecond
		host := pubHosts[pi]
		eng.At(at, func() {
			_ = dp.Publish(host, expr, ev, netem.DefaultPacketSize)
		})
	}
	eng.Run()

	st := ctl.Stats()
	return ablMergeResult{
		trees:     len(ctl.Trees()),
		merges:    st.TreesMerged,
		flowOps:   st.FlowOps(),
		installed: ctl.InstalledFlowCount(),
		meanDelay: lat.Mean(),
	}, nil
}
