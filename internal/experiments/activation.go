package experiments

import (
	"fmt"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/interdomain"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// fig7fProcessingDelay is the controller processing model used for the
// activation experiment (aligned with the Figure 7f cost model's base).
const activationProcessingDelay = 3 * time.Millisecond

// RunExtActivationLatency measures requirement 1 of the paper's
// introduction end to end: the time from a subscriber *sending* its
// subscription (as an in-band IP_vir request over the data plane) until
// the first matching event reaches it, while a publisher streams events
// continuously. The latency combines the punt path, controller
// processing, and flow installation — the "low latency until subscribers
// can react" that motivates SDN-based pub/sub over broker overlays.
func RunExtActivationLatency(cfg Config) ([]*metrics.Table, error) {
	deployed := pickInts(cfg, []int{50, 200}, []int{100, 1000, 5000})
	trials := pick(cfg, 10, 40)

	table := &metrics.Table{
		Title:   "Extension: subscription activation latency (requirement 1)",
		Columns: []string{"deployed", "activation-mean", "activation-p99"},
	}
	hist, err := metrics.NewHistogram(
		time.Millisecond, 2*time.Millisecond, 4*time.Millisecond,
		8*time.Millisecond, 16*time.Millisecond)
	if err != nil {
		return nil, err
	}
	var last *metrics.Latency
	for _, n := range deployed {
		lat, err := activationRun(cfg.Seed, n, trials)
		if err != nil {
			return nil, err
		}
		table.AddRow(n, lat.Mean(), lat.Percentile(0.99))
		last = lat
	}
	// Distribution of the heaviest configuration.
	for i := 0; i < last.Count(); i++ {
		hist.Add(last.Percentile(float64(i+1) / float64(last.Count())))
	}
	dist := &metrics.Table{
		Title:   "Activation latency distribution (largest deployment)",
		Columns: []string{"bucket", "count"},
	}
	for i, bk := range hist.Buckets() {
		label := "+inf"
		if bk.Bound > 0 || i < 5 {
			label = "<" + bk.Bound.String()
		}
		if bk.Bound == 0 {
			label = "+inf"
		}
		dist.AddRow(label, bk.Count)
	}
	return []*metrics.Table{table, dist}, nil
}

func activationRun(seed int64, deployed, trials int) (*metrics.Latency, error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	fab, err := interdomain.NewFabric(g, dp)
	if err != nil {
		return nil, err
	}
	fab.EnableInBandSignalling(activationProcessingDelay)
	sch, err := space.UniformSchema(fig7bDims)
	if err != nil {
		return nil, err
	}
	gen, err := workload.New(sch, workload.Zipfian, seed)
	if err != nil {
		return nil, err
	}
	hosts := g.Hosts()
	pub := hosts[0]

	whole, err := sch.DecomposeLimited(space.NewFilter(), fig7bMaxDzLen, fig7bMaxSubspaces)
	if err != nil {
		return nil, err
	}
	if err := fab.SendSignal(interdomain.SignalRequest{
		Op: interdomain.OpAdvertise, ID: "pub", Host: pub, Set: whole,
	}); err != nil {
		return nil, err
	}
	eng.Run()
	for i := 0; i < deployed; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return nil, err
		}
		if err := fab.SendSignal(interdomain.SignalRequest{
			Op: interdomain.OpSubscribe, ID: fmt.Sprintf("pre%d", i),
			Host: hosts[1+i%(len(hosts)-1)], Set: set,
		}); err != nil {
			return nil, err
		}
	}
	eng.Run()

	// A steady event stream on a dedicated probe subspace.
	probeExpr := dz.Expr("1111")
	const eventGap = 100 * time.Microsecond
	lat := &metrics.Latency{}

	for trial := 0; trial < trials; trial++ {
		probeHost := hosts[1+trial%(len(hosts)-1)]
		probeID := fmt.Sprintf("probe%d", trial)
		var firstDelivery time.Duration
		if err := dp.ConfigureHost(probeHost, netem.HostConfig{}, func(d netem.Delivery) {
			if firstDelivery == 0 && d.Packet.Expr.Truncate(4) == probeExpr {
				firstDelivery = d.At
			}
		}); err != nil {
			return nil, err
		}
		sentAt := eng.Now()
		if err := fab.SendSignal(interdomain.SignalRequest{
			Op: interdomain.OpSubscribe, ID: probeID,
			Host: probeHost, Set: dz.NewSet(probeExpr),
		}); err != nil {
			return nil, err
		}
		// Events keep flowing during activation.
		for i := 0; i < 200; i++ {
			at := sentAt + time.Duration(i)*eventGap
			eng.At(at, func() {
				_ = dp.Publish(pub, "111111111111", space.Event{}, netem.DefaultPacketSize)
			})
		}
		eng.Run()
		if firstDelivery == 0 {
			return nil, fmt.Errorf("activation: probe %d never received", trial)
		}
		lat.Add(firstDelivery - sentAt)
		// Tear the probe down for the next trial.
		if err := fab.SendSignal(interdomain.SignalRequest{
			Op: interdomain.OpUnsubscribe, ID: probeID, Host: probeHost,
		}); err != nil {
			return nil, err
		}
		eng.Run()
		if err := dp.ConfigureHost(probeHost, netem.HostConfig{}, nil); err != nil {
			return nil, err
		}
	}
	return lat, nil
}
