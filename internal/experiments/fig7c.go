package experiments

import (
	"fmt"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// Host ingestion capacities observed in the paper's Section 6.3: the
// standard end hosts saturate around 70–80k events/s; faster machines
// reach about 170k events/s.
const (
	fig7cStdCapacity  = 70000
	fig7cFastCapacity = 170000
)

// RunFig7cThroughput reproduces Figure 7(c): events received per second at
// the end hosts versus publish rate. Beyond the hosts' processing
// capacity the received rate saturates while the switch fabric keeps
// forwarding every event — the bottleneck is the end host, not the
// network.
func RunFig7cThroughput(cfg Config) ([]*metrics.Table, error) {
	rates := pickInts(cfg,
		[]int{10000, 40000, 80000},
		[]int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000})
	duration := 200 * time.Millisecond
	if !cfg.Quick {
		duration = time.Second
	}

	table := &metrics.Table{
		Title: "Figure 7(c): received event rate vs. publish rate (4 subscriber hosts)",
		Columns: []string{"sent/s", "received/s", "received/s-fast",
			"fabric-forwarded/s", "host-dropped/s"},
	}
	for _, rate := range rates {
		std, fwd, dropped, err := fig7cRun(cfg.Seed, rate, duration, fig7cStdCapacity)
		if err != nil {
			return nil, err
		}
		fast, _, _, err := fig7cRun(cfg.Seed, rate, duration, fig7cFastCapacity)
		if err != nil {
			return nil, err
		}
		table.AddRow(rate, std, fast, fwd, dropped)
	}
	return []*metrics.Table{table}, nil
}

// fig7cRun pushes events at the given rate for the duration and returns
// per-second received, fabric-forwarded (at the last hop), and dropped
// rates, normalised per subscriber host.
func fig7cRun(seed int64, rate int, duration time.Duration, capacity int) (received, forwarded, dropped float64, err error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return 0, 0, 0, err
	}
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	ctl, err := core.NewController(g, dp, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		return 0, 0, 0, err
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		return 0, 0, 0, err
	}
	gen, err := workload.New(sch, workload.Zipfian, seed)
	if err != nil {
		return 0, 0, 0, err
	}

	hosts := g.Hosts()
	pub := hosts[0]
	subscribers := hosts[1:5] // 4 end hosts as in the paper

	whole, err := sch.DecomposeLimited(space.NewFilter(), fig7bMaxDzLen, fig7bMaxSubspaces)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := ctl.Advertise("pub", pub, whole); err != nil {
		return 0, 0, 0, err
	}
	// Every subscriber host takes the full event stream: the experiment
	// stresses the ingestion path, so all events must reach all hosts.
	for i, h := range subscribers {
		if _, err := ctl.Subscribe(fmt.Sprintf("s%d", i), h, whole); err != nil {
			return 0, 0, 0, err
		}
		if err := dp.ConfigureHost(h, netem.HostConfig{CapacityPerSec: capacity}, nil); err != nil {
			return 0, 0, 0, err
		}
	}

	total := int(float64(rate) * duration.Seconds())
	interval := time.Duration(int64(time.Second) / int64(rate))
	maxLen := sch.Geometry().MaxLen()
	for i, ev := range gen.Events(total) {
		expr, encErr := sch.Encode(ev, maxLen)
		if encErr != nil {
			return 0, 0, 0, encErr
		}
		at := time.Duration(i) * interval
		eng.At(at, func() {
			_ = dp.Publish(pub, expr, ev, netem.DefaultPacketSize)
		})
	}
	// Let queued work drain fully.
	eng.Run()

	var recv, drop uint64
	for _, h := range subscribers {
		recv += dp.HostReceived(h)
		drop += dp.HostDropped(h)
	}
	// Fabric-forwarded: packets handed to subscriber access links.
	var fwd uint64
	for _, h := range subscribers {
		sw, err := g.AttachedSwitch(h)
		if err != nil {
			return 0, 0, 0, err
		}
		link, ok := g.LinkBetween(sw, h)
		if !ok {
			return 0, 0, 0, fmt.Errorf("fig7c: missing access link")
		}
		if ls := dp.LinkStatsFor(link); ls != nil {
			fwd += ls.Packets[sw]
		}
	}
	secs := duration.Seconds()
	n := float64(len(subscribers))
	return float64(recv) / secs / n, float64(fwd) / secs / n, float64(drop) / secs / n, nil
}
