package experiments

import (
	"fmt"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// fig7bDims is the schema width used by the delay experiments.
const fig7bDims = 3

// fig7bMaxDzLen bounds the dz length embedded in flow matches.
const fig7bMaxDzLen = 24

// fig7bMaxSubspaces caps the per-subscription DZ set size.
const fig7bMaxSubspaces = 16

// RunFig7bDelayVsSubscriptions reproduces Figure 7(b): average end-to-end
// delay from one publisher to all interested subscribers as the number of
// deployed subscriptions grows, for the uniform and zipfian workloads.
// The delay stays nearly constant: forwarding work per event is
// independent of the subscription count.
func RunFig7bDelayVsSubscriptions(cfg Config) ([]*metrics.Table, error) {
	subCounts := pickInts(cfg,
		[]int{100, 400, 1000},
		[]int{1000, 2000, 4000, 8000, 16000})
	events := pick(cfg, 300, 10000)

	table := &metrics.Table{
		Title:   "Figure 7(b): end-to-end delay vs. number of subscriptions",
		Columns: []string{"subscriptions", "uniform-mean", "zipfian-mean", "uniform-deliveries", "zipfian-deliveries"},
	}
	for _, n := range subCounts {
		uni, uniDel, err := fig7bRun(cfg.Seed, n, events, workload.Uniform)
		if err != nil {
			return nil, err
		}
		zipf, zipfDel, err := fig7bRun(cfg.Seed+1, n, events, workload.Zipfian)
		if err != nil {
			return nil, err
		}
		table.AddRow(n, uni.Mean(), zipf.Mean(), uniDel, zipfDel)
	}
	return []*metrics.Table{table}, nil
}

func fig7bRun(seed int64, nSubs, nEvents int, model workload.Model) (*metrics.Latency, uint64, error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return nil, 0, err
	}
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	ctl, err := core.NewController(g, dp, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		return nil, 0, err
	}
	sch, err := space.UniformSchema(fig7bDims)
	if err != nil {
		return nil, 0, err
	}
	gen, err := workload.New(sch, model, seed)
	if err != nil {
		return nil, 0, err
	}

	hosts := g.Hosts()
	pub := hosts[0]
	subs := hosts[1:]

	// The publisher advertises the whole space.
	whole, err := sch.DecomposeLimited(space.NewFilter(), fig7bMaxDzLen, fig7bMaxSubspaces)
	if err != nil {
		return nil, 0, err
	}
	if _, err := ctl.Advertise("pub", pub, whole); err != nil {
		return nil, 0, err
	}

	// Subscriptions divided among the end hosts (round-robin, as the
	// random division of the paper).
	for i, rect := range gen.SubscriptionRects(nSubs) {
		set, err := sch.DecomposeRectLimited(rect, fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return nil, 0, err
		}
		host := subs[i%len(subs)]
		if _, err := ctl.Subscribe(fmt.Sprintf("s%d", i), host, set); err != nil {
			return nil, 0, err
		}
	}

	lat := &metrics.Latency{}
	var deliveries uint64
	for _, h := range subs {
		if err := dp.ConfigureHost(h, netem.HostConfig{}, func(d netem.Delivery) {
			deliveries++
			lat.Add(d.At - d.Packet.SentAt)
		}); err != nil {
			return nil, 0, err
		}
	}

	interval := time.Millisecond
	maxLen := sch.Geometry().MaxLen()
	for i, ev := range gen.Events(nEvents) {
		expr, err := sch.Encode(ev, maxLen)
		if err != nil {
			return nil, 0, err
		}
		at := time.Duration(i) * interval
		eng.At(at, func() {
			_ = dp.Publish(pub, expr, ev, netem.DefaultPacketSize)
		})
	}
	eng.Run()
	return lat, deliveries, nil
}
