package experiments

import (
	"fmt"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// RunAblationFlowBudget quantifies requirement 3 of the paper's
// introduction: TCAM space is scarce (40k–180k entries per switch), so the
// controller must bound the flows it installs. The two knobs are the dz
// length L_dz and the per-subscription subspace budget; the sweep reports
// the resulting flow-table footprint against the false-positive rate they
// buy — the bandwidth-efficiency/TCAM trade-off.
func RunAblationFlowBudget(cfg Config) ([]*metrics.Table, error) {
	nSubs := pick(cfg, 200, 1000)
	nEvents := pick(cfg, 400, 3000)

	type knob struct {
		ldz    int
		budget int
	}
	knobs := []knob{
		{8, 4}, {12, 8}, {16, 16}, {20, 32}, {24, 64},
	}

	table := &metrics.Table{
		Title: "Ablation: flow-table footprint vs. filtering precision (requirement 3)",
		Columns: []string{"L_dz", "subspace-budget", "total-flows",
			"max-flows/switch", "fpr-%"},
	}
	for _, k := range knobs {
		total, maxPer, fpr, err := ablFlowsRun(cfg.Seed, k.ldz, k.budget, nSubs, nEvents)
		if err != nil {
			return nil, err
		}
		table.AddRow(k.ldz, k.budget, total, maxPer, fpr)
	}
	return []*metrics.Table{table}, nil
}

func ablFlowsRun(seed int64, ldz, budget, nSubs, nEvents int) (totalFlows, maxPerSwitch int, fpr float64, err error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return 0, 0, 0, err
	}
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	ctl, err := core.NewController(g, dp, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		return 0, 0, 0, err
	}
	sch, err := space.UniformSchema(fig7bDims)
	if err != nil {
		return 0, 0, 0, err
	}
	gen, err := workload.New(sch, workload.Zipfian, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	hosts := g.Hosts()
	pub := hosts[0]
	subsHosts := hosts[1:]

	whole, err := sch.DecomposeLimited(space.NewFilter(), ldz, budget)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := ctl.Advertise("pub", pub, whole); err != nil {
		return 0, 0, 0, err
	}
	hostRects := make(map[topo.NodeID][]dz.Rect)
	for i := 0; i < nSubs; i++ {
		rect := gen.SubscriptionRect()
		set, err := sch.DecomposeRectLimited(rect, ldz, budget)
		if err != nil {
			return 0, 0, 0, err
		}
		host := subsHosts[i%len(subsHosts)]
		if _, err := ctl.Subscribe(fmt.Sprintf("s%d", i), host, set); err != nil {
			return 0, 0, 0, err
		}
		hostRects[host] = append(hostRects[host], rect)
	}

	var fp metrics.FalsePositives
	for _, h := range subsHosts {
		h := h
		if err := dp.ConfigureHost(h, netem.HostConfig{}, func(d netem.Delivery) {
			matched := false
			for _, r := range hostRects[h] {
				if dz.RectContainsPoint(r, d.Packet.Event.Values) {
					matched = true
					break
				}
			}
			fp.Record(matched)
		}); err != nil {
			return 0, 0, 0, err
		}
	}
	for i, ev := range gen.Events(nEvents) {
		expr, encErr := sch.Encode(ev, ldz)
		if encErr != nil {
			return 0, 0, 0, encErr
		}
		at := time.Duration(i) * 50 * time.Microsecond
		eng.At(at, func() {
			_ = dp.Publish(pub, expr, ev, netem.DefaultPacketSize)
		})
	}
	eng.Run()

	totalFlows = ctl.InstalledFlowCount()
	for _, sw := range g.Switches() {
		if n := len(ctl.InstalledFlowsOn(sw)); n > maxPerSwitch {
			maxPerSwitch = n
		}
	}
	return totalFlows, maxPerSwitch, fp.Rate(), nil
}
