// Package experiments contains the harness that regenerates every figure
// of the paper's evaluation (Section 6, Figure 7 panels a–h) plus the
// ablation studies listed in DESIGN.md. Each experiment is a named runner
// producing one or more metrics.Tables whose rows correspond to the series
// of the original figure.
//
// Every runner accepts a Config: Quick mode shrinks the parameter sweeps
// to sizes suitable for unit tests and testing.B benchmarks, while the
// full mode (cmd/pleroma-sim) uses the paper's original scales.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"pleroma/internal/metrics"
)

// Config parameterises an experiment run.
type Config struct {
	// Seed drives every random generator of the run.
	Seed int64
	// Quick shrinks workloads for fast CI/bench runs.
	Quick bool
}

// DefaultConfig is the configuration used by tests and benchmarks.
var DefaultConfig = Config{Seed: 42, Quick: true}

// FullConfig reproduces the paper's original parameter scales.
var FullConfig = Config{Seed: 42, Quick: false}

// Runner executes one experiment.
type Runner func(Config) ([]*metrics.Table, error)

// registry maps experiment ids to runners and descriptions.
type registration struct {
	run  Runner
	desc string
}

var registry = map[string]registration{
	"fig7a":          {RunFig7aDelayVsFlows, "end-to-end delay vs. flow-table size (Figure 7a)"},
	"fig7b":          {RunFig7bDelayVsSubscriptions, "end-to-end delay vs. number of subscriptions (Figure 7b)"},
	"fig7c":          {RunFig7cThroughput, "event throughput vs. publish rate (Figure 7c)"},
	"fig7d":          {RunFig7dFPRVsDzLength, "false-positive rate vs. dz length (Figure 7d)"},
	"fig7e":          {RunFig7eFPRDimSelection, "false-positive rate under dimension selection (Figure 7e)"},
	"fig7f":          {RunFig7fReconfigDelay, "reconfiguration delay vs. deployed subscriptions (Figure 7f)"},
	"fig7g":          {RunFig7gControllerOverhead, "normalized controller overhead vs. number of controllers (Figure 7g)"},
	"fig7h":          {RunFig7hControlTraffic, "total control traffic vs. number of controllers (Figure 7h)"},
	"abl-broker":     {RunAblationBrokerVsSDN, "ablation: broker overlay vs. in-network filtering"},
	"abl-trees":      {RunAblationTreeStrategy, "ablation: single shared tree vs. per-publisher trees"},
	"abl-cover":      {RunAblationCoveringForwarding, "ablation: covering-based inter-domain forwarding on/off"},
	"abl-merge":      {RunAblationMergeThreshold, "ablation: tree-merge threshold sweep (Section 3.2)"},
	"abl-flows":      {RunAblationFlowBudget, "ablation: flow-table footprint vs. filtering precision"},
	"ext-activation": {RunExtActivationLatency, "extension: in-band subscription activation latency (requirement 1)"},
	"ext-faults":     {RunExtFaultChurn, "extension: southbound fault tolerance — retry/quarantine/resync under churn"},
	"ext-ha":         {RunExtHAFailover, "extension: controller failover — snapshot cadence vs. takeover replay"},
}

// IDs returns all experiment identifiers, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the human-readable description of an experiment.
func Describe(id string) (string, bool) {
	r, ok := registry[id]
	if !ok {
		return "", false
	}
	return r.desc, true
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) ([]*metrics.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r.run(cfg)
}

// RunAndPrint executes an experiment and renders its tables.
func RunAndPrint(id string, cfg Config, w io.Writer) error {
	tables, err := Run(id, cfg)
	if err != nil {
		return err
	}
	for i, t := range tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := t.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}

// pick returns q in quick mode, f otherwise.
func pick(cfg Config, q, f int) int {
	if cfg.Quick {
		return q
	}
	return f
}

func pickInts(cfg Config, q, f []int) []int {
	if cfg.Quick {
		return q
	}
	return f
}
