package experiments

import (
	"fmt"

	"pleroma/internal/dimsel"
	"pleroma/internal/dz"
	"pleroma/internal/metrics"
	"pleroma/internal/space"
	"pleroma/internal/workload"
)

// fig7eDims is the 7-attribute event space of the paper's dimension
// selection experiment.
const fig7eDims = 7

// fig7eLdz is the fixed dz-length budget shared by the selected
// dimensions; spreading it over fewer, well-chosen dimensions increases
// per-dimension granularity.
const fig7eLdz = 21

// fig7eWorkloads defines the three zipfian variants of Section 6.4: they
// differ in how many dimensions have their event variance restricted (and
// therefore carry no filtering information).
var fig7eWorkloads = []struct {
	name       string
	restricted map[int]float64
}{
	{"zipfian-1", nil},
	{"zipfian-2", map[int]float64{5: 0.02, 6: 0.02}},
	{"zipfian-3", map[int]float64{3: 0.02, 4: 0.02, 5: 0.02, 6: 0.02}},
}

// RunFig7eFPRDimSelection reproduces Figure 7(e): the false positive rate
// when spatial indexing runs only on the top-k dimensions chosen by the
// PCA selection of Section 5. For workloads whose event traffic varies
// only along a few dimensions, a small, well-chosen Ω_D filters better
// than indexing all seven attributes with the same address budget.
func RunFig7eFPRDimSelection(cfg Config) ([]*metrics.Table, error) {
	nSubs := pick(cfg, 200, 800)
	nEvents := pick(cfg, 400, 4000)
	window := pick(cfg, 100, 500)

	table := &metrics.Table{
		Title:   "Figure 7(e): false positive rate (%) vs. selected dimensions k",
		Columns: []string{"k"},
	}
	for _, w := range fig7eWorkloads {
		table.Columns = append(table.Columns, w.name)
	}

	results := make([][]float64, 0, len(fig7eWorkloads))
	for wi, w := range fig7eWorkloads {
		fprs, err := fig7eRun(cfg.Seed+int64(wi), nSubs, nEvents, window, w.restricted)
		if err != nil {
			return nil, fmt.Errorf("fig7e %s: %w", w.name, err)
		}
		results = append(results, fprs)
	}
	for k := 1; k <= fig7eDims; k++ {
		cells := []any{k}
		for _, fprs := range results {
			cells = append(cells, fprs[k-1])
		}
		table.AddRow(cells...)
	}
	return []*metrics.Table{table}, nil
}

// fig7eRun measures the FPR for each k = 1..7 on one workload: the PCA
// ranking orders the dimensions, the top-k are selected, subscriptions and
// events are re-indexed over the projected schema with the fixed L_dz
// budget, and deliveries are evaluated analytically against ground truth.
func fig7eRun(seed int64, nSubs, nEvents, window int, restricted map[int]float64) ([]float64, error) {
	sch, err := space.UniformSchema(fig7eDims)
	if err != nil {
		return nil, err
	}
	opts := []workload.Option{}
	if restricted != nil {
		opts = append(opts, workload.WithRestrictedDims(restricted))
	}
	gen, err := workload.New(sch, workload.Zipfian, seed, opts...)
	if err != nil {
		return nil, err
	}
	rects := gen.SubscriptionRects(nSubs)
	events := gen.Events(nEvents)

	// Rank dimensions from the recent traffic window (the controller's
	// periodic collection of Section 5).
	res, err := dimsel.SelectFromWorkload(rects, events[:window], 0.999999)
	if err != nil {
		return nil, err
	}

	hostRects := make([][]dz.Rect, fig7dHosts)
	for i, r := range rects {
		h := i % fig7dHosts
		hostRects[h] = append(hostRects[h], r)
	}

	out := make([]float64, 0, fig7eDims)
	for k := 1; k <= fig7eDims; k++ {
		dims := append([]int(nil), res.Ranking[:k]...)
		proj, err := sch.Project(dims)
		if err != nil {
			return nil, err
		}
		projectRect := func(r dz.Rect) dz.Rect {
			pr := make(dz.Rect, len(dims))
			for i, d := range dims {
				pr[i] = r[d]
			}
			return pr
		}
		hostSets := make([]dz.Set, fig7dHosts)
		for h, list := range hostRects {
			var union dz.Set
			for _, r := range list {
				set, err := proj.DecomposeRectLimited(projectRect(r), fig7eLdz, fig7dMaxSubspaces)
				if err != nil {
					return nil, err
				}
				union = union.Union(set)
			}
			hostSets[h] = union
		}
		var fp metrics.FalsePositives
		for _, ev := range events {
			pev := ev.Project(dims)
			expr, err := proj.Encode(pev, fig7eLdz)
			if err != nil {
				return nil, err
			}
			for h := 0; h < fig7dHosts; h++ {
				if !hostSets[h].Overlaps(expr) {
					continue
				}
				matched := false
				for _, r := range hostRects[h] {
					if dz.RectContainsPoint(r, ev.Values) {
						matched = true
						break
					}
				}
				fp.Record(matched)
			}
		}
		out = append(out, fp.Rate())
	}
	return out, nil
}
