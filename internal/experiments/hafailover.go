package experiments

import (
	"fmt"

	"pleroma/internal/core"
	"pleroma/internal/dz"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// RunExtHAFailover measures controller takeover along the Ravana-style
// snapshot/journal trade-off: the same seeded churn workload runs against
// a journaling controller under three checkpoint cadences (never, coarse,
// fine), the active controller then "crashes", and a warm standby
// promotes from the last snapshot plus the journal suffix. Tighter
// cadences shrink the replayed suffix at the cost of more snapshot work;
// in every configuration the promoted controller must verify clean
// against the inherited switches, and the takeover resync ships zero
// repairs because replay rebuilds exactly the crashed controller's
// canonical state.
func RunExtHAFailover(cfg Config) ([]*metrics.Table, error) {
	ops := pick(cfg, 60, 400)
	// The +1 offsets keep the cadence from dividing the op count exactly,
	// so the crash always strands a non-empty journal suffix to replay.
	cadences := []struct {
		label string
		every int // snapshot every n mutations; 0 = never
	}{
		{"never", 0},
		{"coarse", ops/2 + 1},
		{"fine", ops/8 + 1},
	}

	table := &metrics.Table{
		Title: "Extension: controller failover — snapshot cadence vs. takeover replay",
		Columns: []string{"snapshot-cadence", "mutations", "snapshots",
			"journal-at-crash", "from-snapshot", "replayed", "takeover-repairs",
			"verified", "state-digest"},
	}
	for _, c := range cadences {
		row, digest, err := haFailoverRun(cfg.Seed, ops, c.every)
		if err != nil {
			return nil, fmt.Errorf("experiments: ha failover cadence %s: %w", c.label, err)
		}
		table.AddRow(
			c.label,
			row.Get("mutations"),
			row.Get("snapshots"),
			row.Get("journal-at-crash"),
			row.Get("from-snapshot") == 1,
			row.Get("replayed"),
			row.Get("takeover-repairs"),
			row.Get("verified") == 1,
			digest,
		)
	}
	return []*metrics.Table{table}, nil
}

// haFailoverRun churns one journaling controller (single worker, so the
// operation sequence is a pure function of the seed), checkpoints every
// `every` mutations, crashes it, and promotes a warm standby. The
// returned digest fingerprints the promoted controller's reconstructed
// state: identical across cadences (replay converges on the same state
// no matter how it is split between snapshot and journal) and across
// runs of the same seed.
func haFailoverRun(seed int64, opsPerWorker, every int) (*metrics.Counters, string, error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return nil, "", err
	}
	dp := netem.New(g, sim.NewEngine())
	journal := core.NewMemJournal()
	ctl, err := core.NewController(g, dp,
		core.WithHostAddr(netem.HostAddr),
		core.WithJournal(journal))
	if err != nil {
		return nil, "", err
	}
	sch, err := space.UniformSchema(fig7bDims)
	if err != nil {
		return nil, "", err
	}
	hosts := g.Hosts()
	hostFor := func(id string) topo.NodeID {
		h := 0
		for _, ch := range id {
			h = h*31 + int(ch)
		}
		if h < 0 {
			h = -h
		}
		return hosts[h%len(hosts)]
	}

	// The standby's view of the checkpoint stream: the latest snapshot it
	// observed, refreshed every `every` mutations. Snapshotting also
	// compacts the journal, so the replayed suffix shrinks with cadence.
	var (
		lastSnap  []byte
		snapshots int
		mutations int
	)
	checkpoint := func() error {
		mutations++
		if every <= 0 || mutations%every != 0 {
			return nil
		}
		snap, err := ctl.EncodeSnapshot()
		if err != nil {
			return err
		}
		lastSnap = snap
		snapshots++
		journal.Truncate(ctl.JournalSeq())
		return nil
	}
	churn, err := workload.RunChurn(sch, workload.ChurnConfig{
		Workers:      1,
		OpsPerWorker: opsPerWorker,
		Seed:         seed,
	}, workload.ChurnOps{
		Advertise: func(id string, rect dz.Rect) error {
			set, err := sch.DecomposeRectLimited(rect, fig7bMaxDzLen, fig7bMaxSubspaces)
			if err != nil {
				return err
			}
			if _, err := ctl.Advertise(id, hostFor(id), set); err != nil {
				return err
			}
			return checkpoint()
		},
		Unadvertise: func(id string) error {
			if _, err := ctl.Unadvertise(id); err != nil {
				return err
			}
			return checkpoint()
		},
		Subscribe: func(id string, rect dz.Rect) error {
			set, err := sch.DecomposeRectLimited(rect, fig7bMaxDzLen, fig7bMaxSubspaces)
			if err != nil {
				return err
			}
			if _, err := ctl.Subscribe(id, hostFor(id), set); err != nil {
				return err
			}
			return checkpoint()
		},
		Unsubscribe: func(id string) error {
			if _, err := ctl.Unsubscribe(id); err != nil {
				return err
			}
			return checkpoint()
		},
	})
	if err != nil {
		return nil, "", err
	}
	journalAtCrash := journal.Len()

	// Crash and take over: the live instance is discarded unread.
	standby := core.NewStandby(g, dp, journal, core.WithHostAddr(netem.HostAddr))
	if lastSnap != nil {
		if err := standby.ObserveSnapshot(lastSnap); err != nil {
			return nil, "", err
		}
	}
	promoted, rep, err := standby.Promote()
	if err != nil {
		return nil, "", err
	}

	c := metrics.NewCounters()
	c.Add("mutations", churn.Mutations())
	c.Add("snapshots", uint64(snapshots))
	c.Add("journal-at-crash", uint64(journalAtCrash))
	if rep.FromSnapshot {
		c.Add("from-snapshot", 1)
	}
	c.Add("replayed", uint64(rep.Replayed))
	c.Add("takeover-repairs", uint64(rep.Resync.Repaired()))
	if err := promoted.VerifyTables(); err == nil {
		c.Add("verified", 1)
	}
	finalSnap, err := promoted.EncodeSnapshot()
	if err != nil {
		return nil, "", err
	}
	d, err := core.SnapshotDigest(finalSnap)
	if err != nil {
		return nil, "", err
	}
	return c, fmt.Sprintf("%x", d[:8]), nil
}
