package experiments

import (
	"fmt"
	"time"

	"pleroma/internal/dz"

	"pleroma/internal/broker"
	"pleroma/internal/core"
	"pleroma/internal/interdomain"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// RunAblationBrokerVsSDN compares PLEROMA's in-network filtering against
// the application-layer broker overlay baseline on identical topology and
// workload — quantifying the Section 1 motivation: broker hops add
// software matching delay on the data path.
func RunAblationBrokerVsSDN(cfg Config) ([]*metrics.Table, error) {
	nSubs := pick(cfg, 200, 1000)
	nEvents := pick(cfg, 200, 2000)

	sch, err := space.UniformSchema(fig7bDims)
	if err != nil {
		return nil, err
	}
	gen, err := workload.New(sch, workload.Zipfian, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rects := gen.SubscriptionRects(nSubs)
	events := gen.Events(nEvents)

	table := &metrics.Table{
		Title:   "Ablation: broker overlay vs. PLEROMA in-network filtering",
		Columns: []string{"system", "mean-delay", "p99-delay", "deliveries"},
	}

	// --- PLEROMA ---
	{
		g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
		if err != nil {
			return nil, err
		}
		eng := sim.NewEngine()
		dp := netem.New(g, eng)
		ctl, err := core.NewController(g, dp, core.WithHostAddr(netem.HostAddr))
		if err != nil {
			return nil, err
		}
		hosts := g.Hosts()
		pub := hosts[0]
		whole, err := sch.DecomposeLimited(space.NewFilter(), fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return nil, err
		}
		if _, err := ctl.Advertise("pub", pub, whole); err != nil {
			return nil, err
		}
		for i, r := range rects {
			set, err := sch.DecomposeRectLimited(r, fig7bMaxDzLen, fig7bMaxSubspaces)
			if err != nil {
				return nil, err
			}
			if _, err := ctl.Subscribe(fmt.Sprintf("s%d", i), hosts[1+i%(len(hosts)-1)], set); err != nil {
				return nil, err
			}
		}
		lat := &metrics.Latency{}
		for _, h := range hosts[1:] {
			if err := dp.ConfigureHost(h, netem.HostConfig{}, func(d netem.Delivery) {
				lat.Add(d.At - d.Packet.SentAt)
			}); err != nil {
				return nil, err
			}
		}
		maxLen := sch.Geometry().MaxLen()
		for i, ev := range events {
			expr, err := sch.Encode(ev, maxLen)
			if err != nil {
				return nil, err
			}
			at := time.Duration(i) * time.Millisecond
			eng.At(at, func() {
				_ = dp.Publish(pub, expr, ev, netem.DefaultPacketSize)
			})
		}
		eng.Run()
		table.AddRow("pleroma", lat.Mean(), lat.Percentile(0.99), lat.Count())
	}

	// --- broker overlay ---
	{
		g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
		if err != nil {
			return nil, err
		}
		eng := sim.NewEngine()
		lat := &metrics.Latency{}
		sent := make(map[uint64]time.Duration)
		o, err := broker.New(g, eng, broker.DefaultConfig, func(d broker.Delivery) {
			if t0, ok := sent[eventKey(d.Event)]; ok {
				lat.Add(d.At - t0)
			}
		})
		if err != nil {
			return nil, err
		}
		hosts := g.Hosts()
		pub := hosts[0]
		for i, r := range rects {
			if err := o.Subscribe(fmt.Sprintf("s%d", i), hosts[1+i%(len(hosts)-1)], r); err != nil {
				return nil, err
			}
		}
		for i, ev := range events {
			at := time.Duration(i) * time.Millisecond
			ev := ev
			eng.At(at, func() {
				sent[eventKey(ev)] = eng.Now()
				_ = o.Publish(pub, ev)
			})
		}
		eng.Run()
		table.AddRow("broker", lat.Mean(), lat.Percentile(0.99), lat.Count())
	}
	return []*metrics.Table{table}, nil
}

// eventKey packs an event's leading values into a map key.
func eventKey(ev space.Event) uint64 {
	var k uint64
	for _, v := range ev.Values {
		k = k*1024 + uint64(v)
	}
	return k
}

// RunAblationTreeStrategy quantifies the Section 3.1 design choice:
// per-publisher spanning trees versus one shared tree (forced by a
// merge threshold of 1). Multiple trees spread traffic over more links,
// reducing the load of the hottest link.
func RunAblationTreeStrategy(cfg Config) ([]*metrics.Table, error) {
	nEvents := pick(cfg, 400, 4000)

	table := &metrics.Table{
		Title: "Ablation: single shared tree vs. per-publisher trees",
		Columns: []string{"strategy", "trees", "max-link-packets",
			"total-link-packets", "mean-delay"},
	}
	for _, maxTrees := range []int{1, 0} { // 1 = forced single tree, 0 = unlimited
		name := "multi-tree"
		if maxTrees == 1 {
			name = "single-tree"
		}
		trees, maxLink, totalLink, mean, err := ablationTreesRun(cfg.Seed, maxTrees, nEvents)
		if err != nil {
			return nil, err
		}
		table.AddRow(name, trees, maxLink, totalLink, mean)
	}
	return []*metrics.Table{table}, nil
}

func ablationTreesRun(seed int64, maxTrees, nEvents int) (trees int, maxLink, totalLink uint64, mean time.Duration, err error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	opts := []core.Option{core.WithHostAddr(netem.HostAddr)}
	if maxTrees > 0 {
		opts = append(opts, core.WithMaxTrees(maxTrees))
	}
	ctl, err := core.NewController(g, dp, opts...)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	hosts := g.Hosts()

	// Four publishers in different pods, each owning one quadrant of the
	// event space; every remaining host subscribes to everything.
	quadrants := []dz.Expr{"00", "01", "10", "11"}
	pubs := []topo.NodeID{hosts[0], hosts[2], hosts[4], hosts[6]}
	for i, q := range quadrants {
		if _, err := ctl.Advertise(fmt.Sprintf("p%d", i), pubs[i], dz.NewSet(q)); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	subsHosts := []topo.NodeID{hosts[1], hosts[3], hosts[5], hosts[7]}
	for i, h := range subsHosts {
		if _, err := ctl.Subscribe(fmt.Sprintf("s%d", i), h, dz.NewSet(dz.Whole)); err != nil {
			return 0, 0, 0, 0, err
		}
	}

	lat := &metrics.Latency{}
	for _, h := range subsHosts {
		if err := dp.ConfigureHost(h, netem.HostConfig{}, func(d netem.Delivery) {
			lat.Add(d.At - d.Packet.SentAt)
		}); err != nil {
			return 0, 0, 0, 0, err
		}
	}

	gen, err := workload.New(sch, workload.Uniform, seed)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	maxLen := sch.Geometry().MaxLen()
	for i, ev := range gen.Events(nEvents) {
		expr, encErr := sch.Encode(ev, maxLen)
		if encErr != nil {
			return 0, 0, 0, 0, encErr
		}
		pub := pubs[quadrantOf(expr)]
		at := time.Duration(i) * 100 * time.Microsecond
		eng.At(at, func() {
			_ = dp.Publish(pub, expr, ev, netem.DefaultPacketSize)
		})
	}
	eng.Run()

	for _, l := range g.Links() {
		// Only switch-switch links reflect the tree embedding; host access
		// links carry all deliveries under either strategy.
		na, errA := g.Node(l.A)
		nb, errB := g.Node(l.B)
		if errA != nil || errB != nil ||
			na.Kind != topo.KindSwitch || nb.Kind != topo.KindSwitch {
			continue
		}
		if ls := dp.LinkStatsFor(l); ls != nil {
			var linkTotal uint64
			for _, c := range ls.Packets {
				linkTotal += c
			}
			totalLink += linkTotal
			if linkTotal > maxLink {
				maxLink = linkTotal
			}
		}
	}
	return len(ctl.Trees()), maxLink, totalLink, lat.Mean(), nil
}

// quadrantOf maps the first two dz bits to a publisher index.
func quadrantOf(expr dz.Expr) int {
	idx := 0
	if expr.Len() > 0 && expr[0] == '1' {
		idx += 2
	}
	if expr.Len() > 1 && expr[1] == '1' {
		idx++
	}
	return idx
}

// RunAblationCoveringForwarding toggles the covering-based suppression of
// inter-partition request forwarding (Section 4.2) and reports the
// control-message difference on a partitioned ring.
func RunAblationCoveringForwarding(cfg Config) ([]*metrics.Table, error) {
	nSubs := pick(cfg, 150, 400)

	table := &metrics.Table{
		Title:   "Ablation: covering-based inter-domain forwarding",
		Columns: []string{"covering", "messages-sent", "suppressed", "total-traffic"},
	}
	for _, covering := range []bool{true, false} {
		st, err := ablationCoveringRun(cfg.Seed, nSubs, covering)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(covering), st.MessagesSent, st.SuppressedByCovering, st.TotalControlTraffic())
	}
	return []*metrics.Table{table}, nil
}

func ablationCoveringRun(seed int64, nSubs int, covering bool) (interdomain.Stats, error) {
	g, err := topo.Ring(fig7gSwitches, topo.DefaultLinkParams)
	if err != nil {
		return interdomain.Stats{}, err
	}
	if err := topo.PartitionRing(g, 5); err != nil {
		return interdomain.Stats{}, err
	}
	dp := netem.New(g, sim.NewEngine())
	fab, err := interdomain.NewFabric(g, dp, interdomain.WithCovering(covering))
	if err != nil {
		return interdomain.Stats{}, err
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		return interdomain.Stats{}, err
	}
	gen, err := workload.New(sch, workload.Zipfian, seed)
	if err != nil {
		return interdomain.Stats{}, err
	}
	hosts := g.Hosts()
	whole, err := sch.DecomposeLimited(space.NewFilter(), fig7bMaxDzLen, fig7bMaxSubspaces)
	if err != nil {
		return interdomain.Stats{}, err
	}
	if err := fab.Advertise("pub", hosts[0], whole); err != nil {
		return interdomain.Stats{}, err
	}
	for i := 0; i < nSubs; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return interdomain.Stats{}, err
		}
		if err := fab.Subscribe(fmt.Sprintf("s%d", i), hosts[1+i%(len(hosts)-1)], set); err != nil {
			return interdomain.Stats{}, err
		}
	}
	return fab.Stats(), nil
}
