package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pleroma/internal/dz"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/openflow"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
)

// RunFig7aDelayVsFlows reproduces Figure 7(a): the average end-to-end
// delay between a publisher and a subscriber connected via the longest
// path of the testbed fat-tree, with the flow tables of every switch on
// the path filled with 5k–80k entries. Events are drawn to match random
// flow entries (uniformly or zipfian-popularly); the TCAM model serves
// lookups in constant time, so the delay stays flat — the paper's point.
func RunFig7aDelayVsFlows(cfg Config) ([]*metrics.Table, error) {
	flowCounts := pickInts(cfg,
		[]int{1000, 5000, 10000},
		[]int{5000, 10000, 20000, 40000, 80000})
	events := pick(cfg, 300, 10000)

	table := &metrics.Table{
		Title: "Figure 7(a): end-to-end delay vs. flow-table entries (longest path)",
		Columns: []string{"flows", "uniform-mean", "uniform-p99",
			"zipfian-mean", "zipfian-p99", "software-switch-mean"},
	}
	for _, n := range flowCounts {
		uni, err := fig7aRun(cfg.Seed, n, events, false, tcamSwitch)
		if err != nil {
			return nil, err
		}
		zipf, err := fig7aRun(cfg.Seed+1, n, events, true, tcamSwitch)
		if err != nil {
			return nil, err
		}
		// The contrast series the paper's footnote alludes to: a software
		// switch whose lookup cost grows with table occupancy.
		soft, err := fig7aRun(cfg.Seed, n, events, false, softwareSwitch)
		if err != nil {
			return nil, err
		}
		table.AddRow(n, uni.Mean(), uni.Percentile(0.99),
			zipf.Mean(), zipf.Percentile(0.99), soft.Mean())
	}
	return []*metrics.Table{table}, nil
}

// Switch models for the fig7a contrast.
var (
	tcamSwitch     = netem.DefaultSwitchConfig
	softwareSwitch = netem.SwitchConfig{
		LookupDelay:    10 * time.Microsecond,
		PerFlowPenalty: 2 * time.Microsecond, // per 1000 installed flows
	}
)

// fig7aRun measures delay over one table size for one event distribution
// and switch model.
func fig7aRun(seed int64, flowCount, events int, zipfian bool, swCfg netem.SwitchConfig) (*metrics.Latency, error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	dp := netem.New(g, eng)
	dp.SetAllSwitchConfigs(swCfg)
	hosts := g.Hosts()
	pub, sub := hosts[0], hosts[7] // opposite pods: the longest path

	path, err := g.ShortestPath(pub, sub)
	if err != nil {
		return nil, err
	}
	hops, err := g.RouteHops(path)
	if err != nil {
		return nil, err
	}

	// Fill every path switch with flowCount entries sharing the same match
	// expressions (17 dz bits give 128k distinct subspaces) but switch-
	// local out-ports towards the next hop.
	const exprBits = 17
	if flowCount > 1<<exprBits {
		return nil, fmt.Errorf("fig7a: flow count %d exceeds %d expressions", flowCount, 1<<exprBits)
	}
	exprs := make([]dz.Expr, flowCount)
	for i := range exprs {
		exprs[i] = fixedWidthExpr(uint64(i), exprBits)
	}
	for hi, hop := range hops {
		tab, err := dp.Table(hop.Switch)
		if err != nil {
			return nil, err
		}
		terminal := hi == len(hops)-1
		for _, e := range exprs {
			action := openflow.Action{OutPort: hop.OutPort}
			if terminal {
				action.SetDest = netem.HostAddr(sub)
			}
			f, err := openflow.NewFlow(e, e.Len(), action)
			if err != nil {
				return nil, err
			}
			tab.Add(f)
		}
	}

	lat := &metrics.Latency{}
	if err := dp.ConfigureHost(sub, netem.HostConfig{}, func(d netem.Delivery) {
		lat.Add(d.At - d.Packet.SentAt)
	}); err != nil {
		return nil, err
	}

	r := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if zipfian {
		zipf = rand.NewZipf(r, 1.3, 1, uint64(flowCount-1))
	}
	// Constant publish rate: 1000 events/s of simulated time.
	interval := time.Millisecond
	for i := 0; i < events; i++ {
		idx := uint64(r.Intn(flowCount))
		if zipf != nil {
			idx = zipf.Uint64()
		}
		// The event carries a maximum-length dz refined below the flow's
		// 17 bits.
		expr := exprs[idx] + fixedWidthExpr(uint64(r.Intn(1<<12)), 12)
		at := time.Duration(i) * interval
		eng.At(at, func() {
			_ = dp.Publish(pub, expr, space.Event{}, netem.DefaultPacketSize)
		})
	}
	eng.Run()
	if lat.Count() != events {
		return nil, fmt.Errorf("fig7a: delivered %d of %d events", lat.Count(), events)
	}
	return lat, nil
}

// fixedWidthExpr renders v as a dz-expression of exactly width bits.
func fixedWidthExpr(v uint64, width int) dz.Expr {
	buf := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		if v&1 != 0 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
		v >>= 1
	}
	return dz.Expr(buf)
}
