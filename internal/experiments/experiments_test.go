package experiments

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

func parseDuration(t *testing.T, s string) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("parse duration %q: %v", s, err)
	}
	return d
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse float %q: %v", s, err)
	}
	return f
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 16 {
		t.Errorf("IDs=%v, want 16 experiments", ids)
	}
	for _, id := range ids {
		if desc, ok := Describe(id); !ok || desc == "" {
			t.Errorf("Describe(%s)=%q,%v", id, desc, ok)
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Error("unknown experiment described")
	}
	if _, err := Run("nope", DefaultConfig); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunAndPrint(t *testing.T) {
	var sb strings.Builder
	if err := RunAndPrint("fig7d", DefaultConfig, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 7(d)") || !strings.Contains(out, "dz-length") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestFig7aDelayIsFlat(t *testing.T) {
	tables, err := RunFig7aDelayVsFlows(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) < 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	var min, max time.Duration
	for i, row := range tab.Rows {
		d := parseDuration(t, row[1]) // uniform-mean
		if i == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	// TCAM lookups are constant time: the delay curve must be flat.
	if float64(max) > 1.05*float64(min) {
		t.Errorf("fig7a delay not flat: min=%v max=%v", min, max)
	}
	// The software-switch contrast series must grow with the table size.
	softFirst := parseDuration(t, tab.Rows[0][5])
	softLast := parseDuration(t, tab.Rows[len(tab.Rows)-1][5])
	if softLast <= softFirst {
		t.Errorf("software switch must slow down with table size: %v -> %v", softFirst, softLast)
	}
}

func TestFig7bDelayNearlyConstant(t *testing.T) {
	tables, err := RunFig7bDelayVsSubscriptions(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	var min, max time.Duration
	for i, row := range tab.Rows {
		d := parseDuration(t, row[1])
		if i == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
		// Deliveries must actually happen.
		if n, err := strconv.Atoi(row[3]); err != nil || n == 0 {
			t.Errorf("row %v has no uniform deliveries", row)
		}
	}
	if float64(max) > 2.0*float64(min) {
		t.Errorf("fig7b delay varies too much: min=%v max=%v", min, max)
	}
}

func TestFig7cSaturation(t *testing.T) {
	tables, err := RunFig7cThroughput(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	// At the lowest rate everything is received; at the highest rate the
	// standard hosts saturate below the publish rate while the fabric
	// still forwards everything.
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]

	lowSent := parseFloat(t, first[0])
	lowRecv := parseFloat(t, first[1])
	if lowRecv < 0.95*lowSent {
		t.Errorf("low rate: received %.0f of %.0f", lowRecv, lowSent)
	}
	hiSent := parseFloat(t, last[0])
	hiRecv := parseFloat(t, last[1])
	hiFast := parseFloat(t, last[2])
	hiFwd := parseFloat(t, last[3])
	if hiRecv >= 0.95*hiSent {
		t.Errorf("high rate must saturate: received %.0f of %.0f", hiRecv, hiSent)
	}
	if hiFast <= hiRecv {
		t.Errorf("fast hosts must ingest more: %.0f vs %.0f", hiFast, hiRecv)
	}
	if hiFwd < 0.95*hiSent {
		t.Errorf("fabric must forward everything: %.0f of %.0f", hiFwd, hiSent)
	}
	if drop := parseFloat(t, last[4]); drop <= 0 {
		t.Error("saturation must come from host drops")
	}
}

func TestFig7dFPRDecreasesWithLength(t *testing.T) {
	tables, err := RunFig7dFPRVsDzLength(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) < 2 {
		t.Fatal("too few rows")
	}
	for col := 1; col < len(tab.Columns); col++ {
		first := parseFloat(t, tab.Rows[0][col])
		last := parseFloat(t, tab.Rows[len(tab.Rows)-1][col])
		if last > first {
			t.Errorf("column %s: FPR rose from %.1f to %.1f with longer dz",
				tab.Columns[col], first, last)
		}
		if first <= 0 {
			t.Errorf("column %s: FPR at shortest dz must be positive", tab.Columns[col])
		}
	}
}

func TestFig7eDimensionSelectionHelps(t *testing.T) {
	tables, err := RunFig7eFPRDimSelection(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != fig7eDims {
		t.Fatalf("rows=%d, want %d", len(tab.Rows), fig7eDims)
	}
	// For the restricted workloads, some k < 7 must beat (or match) using
	// all 7 dimensions: the budget concentrates on informative dimensions.
	for col := 2; col < len(tab.Columns); col++ { // restricted workloads
		all7 := parseFloat(t, tab.Rows[fig7eDims-1][col])
		best := all7
		for k := 0; k < fig7eDims-1; k++ {
			if v := parseFloat(t, tab.Rows[k][col]); v < best {
				best = v
			}
		}
		if best > all7 {
			t.Errorf("column %s: no k<7 beats all-dims FPR %.2f", tab.Columns[col], all7)
		}
	}
}

func TestFig7fReconfigThroughput(t *testing.T) {
	tables, err := RunFig7fReconfigDelay(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	for _, row := range tab.Rows {
		subsPerSec := parseFloat(t, row[5])
		if subsPerSec < 20 {
			t.Errorf("deployed=%s: %.1f subs/sec is below the paper's ballpark", row[0], subsPerSec)
		}
		if fm := parseFloat(t, row[4]); fm <= 0 {
			t.Errorf("deployed=%s: no flow mods measured", row[0])
		}
		if proc := parseDuration(t, row[1]); proc <= 0 {
			t.Errorf("deployed=%s: processing time not measured", row[0])
		}
	}
}

func TestFig7gOverheadDropsWithPartitioning(t *testing.T) {
	tables, err := RunFig7gControllerOverhead(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	for col := 1; col < len(tab.Columns); col++ {
		base := parseFloat(t, first[col])
		if base < 99 || base > 101 {
			t.Errorf("column %s: baseline not normalised to 100: %.1f", tab.Columns[col], base)
		}
		end := parseFloat(t, last[col])
		if end >= base {
			t.Errorf("column %s: overhead must drop with partitioning (%.1f -> %.1f)",
				tab.Columns[col], base, end)
		}
	}
}

func TestFig7hTrafficGrowsWithPartitioning(t *testing.T) {
	tables, err := RunFig7hControlTraffic(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	for _, col := range []int{1, 3, 5} { // totals per subscription count
		base := parseFloat(t, first[col])
		end := parseFloat(t, last[col])
		if end <= base {
			t.Errorf("column %s: traffic must grow with partitions (%.0f -> %.0f)",
				tab.Columns[col], base, end)
		}
	}
	// Relative growth must shrink as the workload grows (covering).
	growth := func(col int) float64 {
		return parseFloat(t, last[col]) / parseFloat(t, first[col])
	}
	if growth(5) > growth(1) {
		t.Errorf("relative traffic growth must shrink with more subscriptions: 100subs=%.2f 400subs=%.2f",
			growth(1), growth(5))
	}
}

func TestAblationBrokerSlower(t *testing.T) {
	tables, err := RunAblationBrokerVsSDN(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	pleroma := parseDuration(t, tab.Rows[0][1])
	brokerD := parseDuration(t, tab.Rows[1][1])
	if brokerD <= pleroma {
		t.Errorf("broker overlay must be slower: pleroma=%v broker=%v", pleroma, brokerD)
	}
}

func TestAblationTreeStrategyBalancesLoad(t *testing.T) {
	tables, err := RunAblationTreeStrategy(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	singleMax := parseFloat(t, tab.Rows[0][2])
	multiMax := parseFloat(t, tab.Rows[1][2])
	if multiMax > singleMax {
		t.Errorf("multi-tree must not concentrate more load: single=%v multi=%v", singleMax, multiMax)
	}
	singleTrees := parseFloat(t, tab.Rows[0][1])
	multiTrees := parseFloat(t, tab.Rows[1][1])
	if singleTrees != 1 || multiTrees <= 1 {
		t.Errorf("tree counts wrong: single=%v multi=%v", singleTrees, multiTrees)
	}
}

func TestAblationCoveringSavesMessages(t *testing.T) {
	tables, err := RunAblationCoveringForwarding(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	onMsgs := parseFloat(t, tab.Rows[0][1])
	offMsgs := parseFloat(t, tab.Rows[1][1])
	if onMsgs >= offMsgs {
		t.Errorf("covering must save messages: on=%v off=%v", onMsgs, offMsgs)
	}
	if suppressed := parseFloat(t, tab.Rows[0][2]); suppressed <= 0 {
		t.Error("covering run must suppress something")
	}
}

func TestAblationMergeThreshold(t *testing.T) {
	tables, err := RunAblationMergeThreshold(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// max-trees=1 collapses to a single tree; unlimited keeps more.
	single := parseFloat(t, tab.Rows[0][1])
	unlimited := parseFloat(t, tab.Rows[len(tab.Rows)-1][1])
	if single != 1 {
		t.Errorf("max-trees=1 yielded %v trees", single)
	}
	if unlimited <= single {
		t.Errorf("unlimited must keep more trees: %v vs %v", unlimited, single)
	}
	// Merging must actually have happened for the tight thresholds.
	if m := parseFloat(t, tab.Rows[0][2]); m == 0 {
		t.Error("max-trees=1 must merge")
	}
	if m := parseFloat(t, tab.Rows[len(tab.Rows)-1][2]); m != 0 {
		t.Error("unlimited must not merge")
	}
	// Deliveries must flow in every configuration.
	for _, row := range tab.Rows {
		if d := parseDuration(t, row[5]); d <= 0 {
			t.Errorf("max-trees=%s: no deliveries measured", row[0])
		}
	}
}

func TestAblationFlowBudget(t *testing.T) {
	tables, err := RunAblationFlowBudget(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// Flows grow and FPR shrinks as the budget loosens.
	firstFlows := parseFloat(t, tab.Rows[0][2])
	lastFlows := parseFloat(t, tab.Rows[len(tab.Rows)-1][2])
	if lastFlows <= firstFlows {
		t.Errorf("flows must grow with precision: %v -> %v", firstFlows, lastFlows)
	}
	firstFPR := parseFloat(t, tab.Rows[0][4])
	lastFPR := parseFloat(t, tab.Rows[len(tab.Rows)-1][4])
	if lastFPR >= firstFPR {
		t.Errorf("FPR must fall with precision: %v -> %v", firstFPR, lastFPR)
	}
	for _, row := range tab.Rows {
		if mps := parseFloat(t, row[3]); mps <= 0 {
			t.Errorf("L_dz=%s: max-flows/switch must be positive", row[0])
		}
	}
}

func TestExtFaultChurnConverges(t *testing.T) {
	tables, err := RunExtFaultChurn(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) == 0 {
		t.Fatal("fault churn produced no rows")
	}
	sawInjection := false
	for _, row := range tab.Rows {
		rate := parseFloat(t, row[0])
		injected := parseFloat(t, row[2])
		repaired := parseFloat(t, row[6])
		converged := row[7]
		if converged != "true" {
			t.Errorf("rate=%s: converged=%s, want true", row[0], converged)
		}
		if rate == 0 {
			if injected != 0 || repaired != 0 {
				t.Errorf("control row: injected=%v repaired=%v, want 0/0",
					injected, repaired)
			}
		}
		if injected > 0 {
			sawInjection = true
		}
	}
	if !sawInjection {
		t.Error("no row injected any faults; the sweep exercised nothing")
	}
}

func TestExtHAFailover(t *testing.T) {
	tables, err := RunExtHAFailover(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d, want 3 cadences", len(tab.Rows))
	}
	replayed := make(map[string]float64)
	for _, row := range tab.Rows {
		cadence := row[0]
		replayed[cadence] = parseFloat(t, row[5])
		// Replay reconstructs the crashed controller's exact canonical
		// state, so the takeover resync must find nothing to repair.
		if repairs := parseFloat(t, row[6]); repairs != 0 {
			t.Errorf("cadence=%s: takeover shipped %v repairs, want 0", cadence, repairs)
		}
		if row[7] != "true" {
			t.Errorf("cadence=%s: promoted controller failed verification", cadence)
		}
		fromSnap := row[4] == "true"
		if cadence == "never" && fromSnap {
			t.Error("cadence=never must promote from the journal alone")
		}
		if cadence != "never" && !fromSnap {
			t.Errorf("cadence=%s must promote from a snapshot", cadence)
		}
	}
	// Tighter checkpointing must shrink the replayed suffix.
	if !(replayed["fine"] < replayed["coarse"] && replayed["coarse"] < replayed["never"]) {
		t.Errorf("replay must shrink with cadence: never=%v coarse=%v fine=%v",
			replayed["never"], replayed["coarse"], replayed["fine"])
	}
	// Every cadence must converge on the same reconstructed state: the
	// split between snapshot and journal is an implementation detail.
	for _, row := range tab.Rows[1:] {
		if row[8] != tab.Rows[0][8] {
			t.Errorf("cadence=%s: state digest %s differs from %s", row[0], row[8], tab.Rows[0][8])
		}
	}
}

// TestExperimentSameSeedDeterministic pins the seeded-randomness audit:
// an experiment run is a pure function of its Config. ext-ha drives the
// full churn → journal → snapshot → failover pipeline single-threaded,
// so its tables must be bit-identical across runs.
func TestExperimentSameSeedDeterministic(t *testing.T) {
	a, err := RunExtHAFailover(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExtHAFailover(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different tables:\n%+v\nvs\n%+v", a, b)
	}
	c, err := RunExtHAFailover(Config{Seed: 43, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical tables")
	}
}

func TestExtActivationLatency(t *testing.T) {
	tables, err := RunExtActivationLatency(DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	for _, row := range tab.Rows {
		mean := parseDuration(t, row[1])
		if mean < activationProcessingDelay {
			t.Errorf("deployed=%s: activation %v below the processing delay %v",
				row[0], mean, activationProcessingDelay)
		}
		if mean > 100*time.Millisecond {
			t.Errorf("deployed=%s: activation %v implausibly high", row[0], mean)
		}
	}
}
