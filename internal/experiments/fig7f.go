package experiments

import (
	"fmt"
	"time"

	"pleroma/internal/core"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// CostModel converts a ReconfigReport into a reconfiguration delay. The
// constants model an OpenFlow control channel: a fixed request-handling
// cost, a per-FlowMod installation round trip, and a per-route
// computation cost. They are calibrated so a lightly loaded controller
// processes a few hundred subscriptions per second and a heavily loaded
// one tens per second, matching the ~54 subs/s at 25k deployed
// subscriptions the paper reports.
type CostModel struct {
	Base       time.Duration
	PerFlowMod time.Duration
	PerRoute   time.Duration
}

// DefaultCostModel calibrates against the paper's controller throughput.
var DefaultCostModel = CostModel{
	Base:       2 * time.Millisecond,
	PerFlowMod: 1500 * time.Microsecond,
	PerRoute:   200 * time.Microsecond,
}

// Delay returns the modelled reconfiguration time of one operation.
func (m CostModel) Delay(rep core.ReconfigReport) time.Duration {
	return m.Base +
		time.Duration(rep.FlowOps())*m.PerFlowMod +
		time.Duration(rep.RoutesComputed)*m.PerRoute
}

// RunFig7fReconfigDelay reproduces Figure 7(f): the average time a
// controller needs to process a new subscription after N subscriptions
// are already deployed. The delay tracks the number of flows that must be
// added or modified, which depends on subscriber position and workload
// overlap rather than N directly.
func RunFig7fReconfigDelay(cfg Config) ([]*metrics.Table, error) {
	deployed := pickInts(cfg,
		[]int{200, 600, 1000},
		[]int{5000, 10000, 15000, 20000, 25000})
	probes := pick(cfg, 50, 200)

	table := &metrics.Table{
		Title: "Figure 7(f): reconfiguration delay vs. deployed subscriptions",
		Columns: []string{"deployed", "proc-mean", "install-mean", "total-mean",
			"mean-flowmods", "subs/sec"},
	}
	for _, n := range deployed {
		proc, install, flowMods, err := fig7fRun(cfg.Seed, n, probes)
		if err != nil {
			return nil, err
		}
		total := proc.Mean() + install.Mean()
		subsPerSec := 0.0
		if total > 0 {
			subsPerSec = float64(time.Second) / float64(total)
		}
		table.AddRow(n, proc.Mean(), install.Mean(), total, flowMods, subsPerSec)
	}
	return []*metrics.Table{table}, nil
}

// fig7fRun returns two delay components per probe subscription: the
// measured wall-clock controller processing time (route computation, tree
// bookkeeping, flow derivation — real work that grows with deployed
// state), and the modelled FlowMod installation time on the control
// channel.
func fig7fRun(seed int64, deployed, probes int) (proc, install *metrics.Latency, flowMods float64, err error) {
	g, err := topo.TestbedFatTree(topo.DefaultLinkParams)
	if err != nil {
		return nil, nil, 0, err
	}
	dp := netem.New(g, sim.NewEngine())
	ctl, err := core.NewController(g, dp, core.WithHostAddr(netem.HostAddr))
	if err != nil {
		return nil, nil, 0, err
	}
	sch, err := space.UniformSchema(fig7bDims)
	if err != nil {
		return nil, nil, 0, err
	}
	gen, err := workload.New(sch, workload.Zipfian, seed)
	if err != nil {
		return nil, nil, 0, err
	}
	hosts := g.Hosts()

	// A few publishers advertising hotspot regions plus one broad one.
	whole, err := sch.DecomposeLimited(space.NewFilter(), fig7bMaxDzLen, fig7bMaxSubspaces)
	if err != nil {
		return nil, nil, 0, err
	}
	if _, err := ctl.Advertise("pub-broad", hosts[0], whole); err != nil {
		return nil, nil, 0, err
	}
	for i := 1; i <= 2; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return nil, nil, 0, err
		}
		if _, err := ctl.Advertise(fmt.Sprintf("pub%d", i), hosts[i], set); err != nil {
			return nil, nil, 0, err
		}
	}

	subscribe := func(i int) (core.ReconfigReport, error) {
		rect := gen.SubscriptionRect()
		set, err := sch.DecomposeRectLimited(rect, fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return core.ReconfigReport{}, err
		}
		host := hosts[1+i%(len(hosts)-1)]
		return ctl.Subscribe(fmt.Sprintf("s%d", i), host, set)
	}

	for i := 0; i < deployed; i++ {
		if _, err := subscribe(i); err != nil {
			return nil, nil, 0, err
		}
	}

	proc = &metrics.Latency{}
	install = &metrics.Latency{}
	totalOps := 0
	for i := 0; i < probes; i++ {
		start := time.Now()
		rep, err := subscribe(deployed + i)
		if err != nil {
			return nil, nil, 0, err
		}
		proc.Add(time.Since(start))
		install.Add(DefaultCostModel.Delay(rep))
		totalOps += rep.FlowOps()
	}
	return proc, install, float64(totalOps) / float64(probes), nil
}
