package experiments

import (
	"pleroma/internal/dz"
	"pleroma/internal/metrics"
	"pleroma/internal/space"
	"pleroma/internal/workload"
)

// fig7dDims is the schema width of the false-positive experiments.
const fig7dDims = 5

// fig7dHosts is the number of end hosts subscriptions are divided among.
const fig7dHosts = 8

// fig7dMaxSubspaces caps per-subscription DZ set size. The cap must be
// generous enough that the dz length, not the budget, dominates the
// approximation error under study.
const fig7dMaxSubspaces = 512

// RunFig7dFPRVsDzLength reproduces Figure 7(d): the false positive rate as
// a function of the dz length L_dz, for 100/400/1600 subscriptions under
// the uniform and zipfian models. Longer dz-expressions refine the
// subspace granularity and cut false positives; more subscriptions per
// host also reduce the *measured* FPR because a truncation-matched event
// often matches a sibling subscription exactly (Section 6.4's argument).
func RunFig7dFPRVsDzLength(cfg Config) ([]*metrics.Table, error) {
	subCounts := pickInts(cfg, []int{100, 400}, []int{100, 400, 1600})
	lengths := pickInts(cfg, []int{5, 10, 15, 20, 25}, []int{5, 10, 15, 20, 25})
	events := pick(cfg, 500, 5000)

	table := &metrics.Table{
		Title:   "Figure 7(d): false positive rate (%) vs. dz length",
		Columns: []string{"dz-length"},
	}
	for _, model := range []workload.Model{workload.Uniform, workload.Zipfian} {
		for _, n := range subCounts {
			table.Columns = append(table.Columns, columnName(n, model))
		}
	}

	type cell struct{ fpr float64 }
	rows := make(map[int][]cell, len(lengths))
	for _, model := range []workload.Model{workload.Uniform, workload.Zipfian} {
		for _, n := range subCounts {
			fprs, err := fig7dRun(cfg.Seed, n, events, lengths, model)
			if err != nil {
				return nil, err
			}
			for i, l := range lengths {
				rows[l] = append(rows[l], cell{fpr: fprs[i]})
			}
		}
	}
	for _, l := range lengths {
		cells := make([]any, 0, len(rows[l])+1)
		cells = append(cells, l)
		for _, c := range rows[l] {
			cells = append(cells, c.fpr)
		}
		table.AddRow(cells...)
	}
	return []*metrics.Table{table}, nil
}

func columnName(n int, m workload.Model) string {
	return m.String() + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// fig7dRun computes the FPR for each dz length over one workload. The
// dissemination model is evaluated analytically (no network needed): a
// host receives an event iff the truncated dz of the event is covered by
// the truncated DZ set of any of its subscriptions; the delivery is a
// false positive iff no subscription on that host matches the event
// exactly.
func fig7dRun(seed int64, nSubs, nEvents int, lengths []int, model workload.Model) ([]float64, error) {
	sch, err := space.UniformSchema(fig7dDims)
	if err != nil {
		return nil, err
	}
	gen, err := workload.New(sch, model, seed)
	if err != nil {
		return nil, err
	}
	rects := gen.SubscriptionRects(nSubs)
	events := gen.Events(nEvents)

	// Assign subscriptions to hosts round-robin (the random division of
	// the paper).
	hostRects := make([][]dz.Rect, fig7dHosts)
	for i, r := range rects {
		h := i % fig7dHosts
		hostRects[h] = append(hostRects[h], r)
	}

	out := make([]float64, 0, len(lengths))
	for _, ldz := range lengths {
		// Per-host truncated DZ region (union over its subscriptions).
		hostSets := make([]dz.Set, fig7dHosts)
		for h, list := range hostRects {
			var union dz.Set
			for _, r := range list {
				set, err := sch.DecomposeRectLimited(r, ldz, fig7dMaxSubspaces)
				if err != nil {
					return nil, err
				}
				union = union.Union(set)
			}
			hostSets[h] = union
		}
		var fp metrics.FalsePositives
		for _, ev := range events {
			expr, err := sch.Encode(ev, ldz)
			if err != nil {
				return nil, err
			}
			for h := 0; h < fig7dHosts; h++ {
				if !hostSets[h].Overlaps(expr) {
					continue // not delivered
				}
				matched := false
				for _, r := range hostRects[h] {
					if dz.RectContainsPoint(r, ev.Values) {
						matched = true
						break
					}
				}
				fp.Record(matched)
			}
		}
		out = append(out, fp.Rate())
	}
	return out, nil
}
