package experiments

import (
	"fmt"

	"pleroma/internal/interdomain"
	"pleroma/internal/metrics"
	"pleroma/internal/netem"
	"pleroma/internal/sim"
	"pleroma/internal/space"
	"pleroma/internal/topo"
	"pleroma/internal/workload"
)

// fig7gSwitches is the Mininet scale of the paper (20 switches).
const fig7gSwitches = 20

// fig7gSubCounts are the subscription workloads of Figures 7(g) and 7(h).
var fig7gSubCounts = []int{100, 200, 400}

// RunFig7gControllerOverhead reproduces Figure 7(g): the average request
// load per controller, normalised to the single-controller case, as the
// 20-switch ring is split into 1–10 partitions. Partitioning spreads
// internal requests across controllers and covering-based forwarding
// keeps the external traffic sub-linear, so the normalised overhead
// drops — the more subscriptions, the bigger the benefit.
func RunFig7gControllerOverhead(cfg Config) ([]*metrics.Table, error) {
	controllers := pickInts(cfg, []int{1, 2, 4, 10}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})

	table := &metrics.Table{
		Title:   "Figure 7(g): normalized avg controller overhead vs. number of controllers",
		Columns: []string{"controllers"},
	}
	for _, n := range fig7gSubCounts {
		table.Columns = append(table.Columns, itoa(n)+"-subs")
	}

	// Baselines: average load at 1 controller per subscription count.
	base := make(map[int]float64, len(fig7gSubCounts))
	for _, subs := range fig7gSubCounts {
		st, err := fig7ghRun(cfg.Seed, 1, subs)
		if err != nil {
			return nil, err
		}
		base[subs] = st.AverageControllerLoad()
	}
	for _, nc := range controllers {
		cells := []any{nc}
		for _, subs := range fig7gSubCounts {
			st, err := fig7ghRun(cfg.Seed, nc, subs)
			if err != nil {
				return nil, err
			}
			norm := 0.0
			if base[subs] > 0 {
				norm = st.AverageControllerLoad() / base[subs] * 100
			}
			cells = append(cells, norm)
		}
		table.AddRow(cells...)
	}
	return []*metrics.Table{table}, nil
}

// RunFig7hControlTraffic reproduces Figure 7(h): total control traffic
// (end-host requests plus controller-to-controller messages) versus the
// number of partitions. Partitioning adds inter-controller messages, but
// the relative increase shrinks for larger subscription workloads because
// covering-based forwarding suppresses more of them.
func RunFig7hControlTraffic(cfg Config) ([]*metrics.Table, error) {
	controllers := pickInts(cfg, []int{1, 2, 4, 10}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})

	table := &metrics.Table{
		Title:   "Figure 7(h): total control traffic vs. number of controllers",
		Columns: []string{"controllers"},
	}
	for _, n := range fig7gSubCounts {
		table.Columns = append(table.Columns,
			itoa(n)+"-subs-total", itoa(n)+"-suppressed")
	}
	for _, nc := range controllers {
		cells := []any{nc}
		for _, subs := range fig7gSubCounts {
			st, err := fig7ghRun(cfg.Seed, nc, subs)
			if err != nil {
				return nil, err
			}
			cells = append(cells, st.TotalControlTraffic(), st.SuppressedByCovering)
		}
		table.AddRow(cells...)
	}
	return []*metrics.Table{table}, nil
}

// fig7ghRun deploys publishers and a uniform subscription workload on a
// 20-switch ring split into nControllers partitions and returns the
// fabric's control-plane statistics.
func fig7ghRun(seed int64, nControllers, nSubs int) (interdomain.Stats, error) {
	g, err := topo.Ring(fig7gSwitches, topo.DefaultLinkParams)
	if err != nil {
		return interdomain.Stats{}, err
	}
	if err := topo.PartitionRing(g, nControllers); err != nil {
		return interdomain.Stats{}, err
	}
	dp := netem.New(g, sim.NewEngine())
	fab, err := interdomain.NewFabric(g, dp)
	if err != nil {
		return interdomain.Stats{}, err
	}
	sch, err := space.UniformSchema(2)
	if err != nil {
		return interdomain.Stats{}, err
	}
	gen, err := workload.New(sch, workload.Uniform, seed)
	if err != nil {
		return interdomain.Stats{}, err
	}
	hosts := g.Hosts()

	// Four publishers spread around the ring advertise broad regions.
	for i := 0; i < 4; i++ {
		rect := gen.SubscriptionRect()
		// Broaden the advertisement so most subscriptions overlap it.
		for d := range rect {
			rect[d].Lo = rect[d].Lo / 2
			hi := rect[d].Hi + (sch.DomainMax()-rect[d].Hi)/2
			rect[d].Hi = hi
		}
		set, err := sch.DecomposeRectLimited(rect, fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return interdomain.Stats{}, err
		}
		if err := fab.Advertise(fmt.Sprintf("p%d", i), hosts[(i*len(hosts))/4], set); err != nil {
			return interdomain.Stats{}, err
		}
	}
	for i := 0; i < nSubs; i++ {
		set, err := sch.DecomposeRectLimited(gen.SubscriptionRect(), fig7bMaxDzLen, fig7bMaxSubspaces)
		if err != nil {
			return interdomain.Stats{}, err
		}
		host := hosts[int(gen.Event().Values[0])%len(hosts)]
		if err := fab.Subscribe(fmt.Sprintf("s%d", i), host, set); err != nil {
			return interdomain.Stats{}, err
		}
	}
	return fab.Stats(), nil
}
