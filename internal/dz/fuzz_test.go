package dz

import (
	"strings"
	"testing"
)

// sanitize maps arbitrary fuzz bytes onto a valid dz expression.
func sanitize(s string, maxLen int) Expr {
	var b strings.Builder
	for i := 0; i < len(s) && b.Len() < maxLen; i++ {
		if s[i]%2 == 0 {
			b.WriteByte('0')
		} else {
			b.WriteByte('1')
		}
	}
	return Expr(b.String())
}

// FuzzExprAlgebra checks the core identities of the expression algebra on
// arbitrary inputs.
func FuzzExprAlgebra(f *testing.F) {
	f.Add("", "")
	f.Add("0", "000")
	f.Add("101", "1")
	f.Add("1100", "0011")
	f.Fuzz(func(t *testing.T, rawA, rawB string) {
		a := sanitize(rawA, 24)
		b := sanitize(rawB, 24)

		// Overlap symmetry.
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("overlap not symmetric: %q %q", a, b)
		}
		// Cover ⇒ overlap, and overlap result is the longer expression.
		if a.Covers(b) && !a.Overlaps(b) {
			t.Fatalf("cover without overlap: %q %q", a, b)
		}
		if ov, ok := a.Overlap(b); ok {
			if ov != a && ov != b {
				t.Fatalf("overlap %q is neither input (%q, %q)", ov, a, b)
			}
			if ov.Len() < a.Len() || ov.Len() < b.Len() {
				t.Fatalf("overlap %q shorter than an input", ov)
			}
		}
		// Subtraction: difference never overlaps the subtrahend, and
		// difference ∪ intersection == minuend.
		diff := NewSet(a.Subtract(b)...)
		for _, m := range diff {
			if m.Overlaps(b) {
				t.Fatalf("difference member %q overlaps %q", m, b)
			}
		}
		inter := Set{a}.IntersectExpr(b)
		if !diff.Union(inter).Equal(NewSet(a)) {
			t.Fatalf("subtract/intersect not a partition of %q (b=%q)", a, b)
		}
	})
}

// FuzzSetCanonical checks that canonicalisation is stable and lossless.
func FuzzSetCanonical(f *testing.F) {
	f.Add("0", "1", "01")
	f.Add("0000", "0001", "001")
	f.Fuzz(func(t *testing.T, rawA, rawB, rawC string) {
		s := NewSet(sanitize(rawA, 16), sanitize(rawB, 16), sanitize(rawC, 16))
		if !s.Canonical().Equal(s) {
			t.Fatalf("canonical not idempotent: %v", s)
		}
		// Membership of the inputs is preserved.
		for _, e := range []Expr{sanitize(rawA, 16), sanitize(rawB, 16), sanitize(rawC, 16)} {
			if !s.Contains(e) {
				t.Fatalf("canonical set %v lost member %q", s, e)
			}
		}
		// Binary-search lookups agree with linear scans.
		probe := sanitize(rawA+rawB, 20)
		linear := false
		for _, m := range s {
			if m.Covers(probe) {
				linear = true
			}
		}
		if s.Contains(probe) != linear {
			t.Fatalf("Contains(%q) diverges from linear scan on %v", probe, s)
		}
	})
}

// FuzzDecomposeEncloses checks the enclosing property of the spatial index
// for arbitrary rectangles and budgets.
func FuzzDecomposeEncloses(f *testing.F) {
	f.Add(uint32(0), uint32(7), uint32(3), uint32(5), 6, 8)
	f.Fuzz(func(t *testing.T, lo0, hi0, lo1, hi1 uint32, maxLen, budget int) {
		g := Geometry{Dims: 2, BitsPerDim: 3}
		max := g.DomainSize() - 1
		r := Rect{
			{Lo: lo0 % (max + 1), Hi: hi0 % (max + 1)},
			{Lo: lo1 % (max + 1), Hi: hi1 % (max + 1)},
		}
		for d := range r {
			if r[d].Lo > r[d].Hi {
				r[d].Lo, r[d].Hi = r[d].Hi, r[d].Lo
			}
		}
		if maxLen < 0 {
			maxLen = -maxLen
		}
		maxLen %= g.MaxLen() + 1
		if budget < 1 {
			budget = 1
		}
		budget = budget%64 + 1
		set, err := g.DecomposeLimited(r, maxLen, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) > budget {
			t.Fatalf("budget exceeded: %d > %d", len(set), budget)
		}
		// Every corner of the rectangle must be enclosed.
		corners := [][]uint32{
			{r[0].Lo, r[1].Lo}, {r[0].Lo, r[1].Hi},
			{r[0].Hi, r[1].Lo}, {r[0].Hi, r[1].Hi},
		}
		for _, c := range corners {
			e, err := g.EncodePoint(c, g.MaxLen())
			if err != nil {
				t.Fatal(err)
			}
			if !set.Contains(e) {
				t.Fatalf("corner %v escapes decomposition %v of %v", c, set, r)
			}
		}
	})
}
