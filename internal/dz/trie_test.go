package dz

import (
	"math/rand"
	"strings"
	"testing"
)

func mustKey(t testing.TB, e Expr) Key {
	t.Helper()
	k, ok := KeyOf(e)
	if !ok {
		t.Fatalf("KeyOf(%q) overflowed", e)
	}
	return k
}

func TestKeyRoundTrip(t *testing.T) {
	for _, e := range []Expr{"", "0", "1", "01", "10110", "0000000011111111",
		Expr(strings.Repeat("10", 56))} {
		k := mustKey(t, e)
		if k.Len() != e.Len() {
			t.Fatalf("Len(%q)=%d", e, k.Len())
		}
		if got := k.Expr(); got != e {
			t.Fatalf("round trip %q -> %q", e, got)
		}
		for i := 0; i < e.Len(); i++ {
			want := byte(0)
			if e[i] == '1' {
				want = 1
			}
			if k.Bit(i) != want {
				t.Fatalf("bit %d of %q = %d", i, e, k.Bit(i))
			}
		}
	}
}

func TestKeyOfOverflow(t *testing.T) {
	long := Expr(strings.Repeat("1", MaxKeyBits+1))
	k, ok := KeyOf(long)
	if ok {
		t.Fatal("oversized expr must not pack ok")
	}
	if k.Len() != MaxKeyBits {
		t.Fatalf("truncated len=%d", k.Len())
	}
}

func TestKeyNormalised(t *testing.T) {
	// Keys packed from different sources must compare equal with ==.
	a := mustKey(t, "1011")
	var raw [14]byte
	raw[0] = 0b10111111 // garbage beyond bit 4 must be masked away
	raw[5] = 0xff
	b := KeyFromBits(raw, 4)
	if a != b {
		t.Fatalf("normalisation failed: %v != %v", a, b)
	}
	if a.Prefix(2) != mustKey(t, "10") {
		t.Fatal("Prefix not normalised")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b Expr
		want int
	}{
		{"", "", 0},
		{"", "1010", 0},
		{"101", "101", 3},
		{"101", "1011", 3},
		{"1010", "1000", 2},
		{"11111111", "11111110", 7},
		{Expr(strings.Repeat("1", 20)), Expr(strings.Repeat("1", 19) + "0"), 19},
	}
	for _, c := range cases {
		got := commonPrefixLen(mustKey(t, c.a), mustKey(t, c.b))
		if got != c.want {
			t.Errorf("cpl(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
		if rev := commonPrefixLen(mustKey(t, c.b), mustKey(t, c.a)); rev != got {
			t.Errorf("cpl not symmetric for %q,%q", c.a, c.b)
		}
	}
}

func TestTrieBasics(t *testing.T) {
	var tr Trie[int]
	exprs := []Expr{"", "0", "010", "0101", "0111", "1", "1000"}
	for i, e := range exprs {
		if !tr.Insert(mustKey(t, e), i) {
			t.Fatalf("insert %q not new", e)
		}
	}
	if tr.Len() != len(exprs) {
		t.Fatalf("Len=%d", tr.Len())
	}
	// Replacement is not a new insert.
	if tr.Insert(mustKey(t, "010"), 42) {
		t.Fatal("replacement reported as new")
	}
	if v, ok := tr.Get(mustKey(t, "010")); !ok || v != 42 {
		t.Fatalf("Get(010)=%d,%v", v, ok)
	}
	if _, ok := tr.Get(mustKey(t, "01")); ok {
		t.Fatal("path-only node must not Get")
	}
	// Longest prefix.
	k, v, ok := tr.LongestPrefix(mustKey(t, "010111"))
	if !ok || k.Expr() != "0101" || v != 3 {
		t.Fatalf("LongestPrefix=%q,%d,%v", k.Expr(), v, ok)
	}
	// Walk yields lexicographic order.
	var got []Expr
	tr.Walk(func(k Key, _ int) bool {
		got = append(got, k.Expr())
		return true
	})
	want := []Expr{"", "0", "010", "0101", "0111", "1", "1000"}
	if len(got) != len(want) {
		t.Fatalf("walk=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
	// Delete and re-compress.
	if !tr.Delete(mustKey(t, "0101")) || tr.Delete(mustKey(t, "0101")) {
		t.Fatal("delete bookkeeping wrong")
	}
	if !tr.Delete(mustKey(t, "01")) == false {
		t.Fatal("deleting path-only key must fail")
	}
	k, v, ok = tr.LongestPrefix(mustKey(t, "010111"))
	if !ok || k.Expr() != "010" || v != 42 {
		t.Fatalf("after delete LongestPrefix=%q,%d,%v", k.Expr(), v, ok)
	}
}

func TestTrieVisitPrefixesAndCovered(t *testing.T) {
	var tr Trie[string]
	for _, e := range []Expr{"", "01", "0101", "011", "10"} {
		tr.Insert(mustKey(t, e), string(e))
	}
	var pres []Expr
	tr.VisitPrefixes(mustKey(t, "01011"), func(k Key, _ string) bool {
		pres = append(pres, k.Expr())
		return true
	})
	if len(pres) != 3 || pres[0] != "" || pres[1] != "01" || pres[2] != "0101" {
		t.Fatalf("VisitPrefixes=%v", pres)
	}
	var cov []Expr
	tr.WalkCovered(mustKey(t, "01"), func(k Key, _ string) bool {
		cov = append(cov, k.Expr())
		return true
	})
	if len(cov) != 3 || cov[0] != "01" || cov[1] != "0101" || cov[2] != "011" {
		t.Fatalf("WalkCovered=%v", cov)
	}
	if !tr.CoversAny(mustKey(t, "111")) { // "" covers everything
		t.Fatal("CoversAny must see the whole-space entry")
	}
	tr.Delete(mustKey(t, ""))
	if tr.CoversAny(mustKey(t, "111")) {
		t.Fatal("nothing covers 111 anymore")
	}
}

func TestTrieZeroValue(t *testing.T) {
	var tr Trie[int]
	if tr.Len() != 0 || tr.CoversAny(Key{}) {
		t.Fatal("zero trie must be empty")
	}
	if _, _, ok := tr.LongestPrefix(mustKey(t, "0101")); ok {
		t.Fatal("empty trie matched")
	}
	tr.Walk(func(Key, int) bool { t.Fatal("walk on empty"); return false })
}

// TestTrieRandomisedVsNaive drives random insert/delete churn and checks
// every query against a naive map + string-prefix implementation.
func TestTrieRandomisedVsNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	randExpr := func(maxLen int) Expr {
		l := r.Intn(maxLen + 1)
		buf := make([]byte, l)
		for i := range buf {
			buf[i] = byte('0' + r.Intn(2))
		}
		return Expr(buf)
	}
	for trial := 0; trial < 50; trial++ {
		var tr Trie[int]
		naive := make(map[Expr]int)
		for op := 0; op < 200; op++ {
			e := randExpr(16)
			k := mustKey(t, e)
			switch r.Intn(3) {
			case 0, 1:
				_, existed := naive[e]
				naive[e] = op
				if tr.Insert(k, op) != !existed {
					t.Fatalf("insert %q newness diverges", e)
				}
			case 2:
				_, existed := naive[e]
				delete(naive, e)
				if tr.Delete(k) != existed {
					t.Fatalf("delete %q diverges", e)
				}
			}
			if tr.Len() != len(naive) {
				t.Fatalf("size %d != %d", tr.Len(), len(naive))
			}
			// Probe queries.
			probe := randExpr(20)
			pk := mustKey(t, probe)
			var bestE Expr
			bestL, found := -1, false
			for m := range naive {
				if strings.HasPrefix(string(probe), string(m)) && m.Len() > bestL {
					bestE, bestL, found = m, m.Len(), true
				}
			}
			gk, gv, gok := tr.LongestPrefix(pk)
			if gok != found {
				t.Fatalf("LongestPrefix(%q) found=%v want %v", probe, gok, found)
			}
			if found && (gk.Expr() != bestE || gv != naive[bestE]) {
				t.Fatalf("LongestPrefix(%q)=%q,%d want %q,%d", probe, gk.Expr(), gv, bestE, naive[bestE])
			}
			if tr.CoversAny(pk) != found {
				t.Fatalf("CoversAny(%q) diverges", probe)
			}
			// Covered walk vs naive scan.
			want := 0
			for m := range naive {
				if strings.HasPrefix(string(m), string(probe)) {
					want++
				}
			}
			got := 0
			tr.WalkCovered(pk, func(Key, int) bool { got++; return true })
			if got != want {
				t.Fatalf("WalkCovered(%q)=%d want %d", probe, got, want)
			}
		}
	}
}

func TestTrieLongestPrefixNoAlloc(t *testing.T) {
	var tr Trie[int]
	for _, e := range []Expr{"0", "0101", "01011110", "1", "111"} {
		tr.Insert(mustKey(t, e), 1)
	}
	k := mustKey(t, "010111101010")
	allocs := testing.AllocsPerRun(100, func() {
		tr.LongestPrefix(k)
		tr.CoversAny(k)
	})
	if allocs != 0 {
		t.Fatalf("lookup allocates %v/op", allocs)
	}
}
